// Scheduler benchmark suite: calendar-queue EventQueue vs the preserved
// legacy binary-heap queue, measured side by side on the workload shapes
// the simulator actually produces.
//
//   hold              -- Vaucher's hold model: steady-state pop-then-push at
//                        constant queue size, the standard DES scheduler
//                        throughput metric and the regime Simulation actually
//                        runs in during a long cluster simulation
//   push_pop_trivial  -- N stateless events at random times, full drain
//   push_pop_capture  -- same, but each event carries a 40-byte capture
//                        (this-pointer + ids: the real call-site shape)
//   cancel_heavy      -- every second event is cancelled before it fires
//                        (TCP retransmission timers, prober reschedules)
//   same_time_burst   -- events arrive in same-timestamp bursts (parallel
//                        suspends, cluster-wide probe rounds)
//   mixed_horizon     -- microsecond TCP events interleaved with week-scale
//                        rejuvenation timers, partial drains in between
//
// Emits BENCH_sched.json (machine-readable; schema documented in
// EXPERIMENTS.md) so the scheduler's perf trajectory is tracked from PR 1
// onward. Usage:
//
//   sched_bench [--budget-seconds S] [--out PATH] [--events N]
//
// The wall-clock budget bounds total runtime (CI smoke uses 2 s); each
// workload runs as many repetitions as fit its share of the budget and
// reports the best repetition (lowest noise floor).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "simcore/event_queue.hpp"
#include "simcore/legacy_heap_queue.hpp"
#include "simcore/random.hpp"
#include "simcore/types.hpp"

namespace {

using namespace rh;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Sink the callback side effects so the optimizer cannot delete the events.
volatile std::uint64_t g_sink = 0;

struct Result {
  std::uint64_t events = 0;  // events fired per repetition
  double best_seconds = 1e100;
  [[nodiscard]] double events_per_sec() const {
    return static_cast<double>(events) / best_seconds;
  }
};

// Each workload is a template running identically against both queue types,
// returning the number of events fired.
template <typename Queue>
std::uint64_t run_hold(std::size_t n) {
  Queue q;
  sim::Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    q.push(static_cast<sim::SimTime>(rng.next() % 1000000), [] { ++g_sink; });
  }
  // Steady state: every fired event schedules a successor a random interval
  // ahead, holding the queue at exactly n events -- the pattern the
  // simulator's timer-driven models produce for hours of simulated time.
  const std::size_t holds = 4 * n;
  std::uint64_t fired = 0;
  for (std::size_t i = 0; i < holds; ++i) {
    auto ev = q.pop();
    ev.fn();
    ++fired;
    q.push(ev.time + 1 + static_cast<sim::SimTime>(rng.next() % 1000000),
           [] { ++g_sink; });
  }
  q.clear();
  return fired;
}

template <typename Queue>
std::uint64_t run_push_pop_trivial(std::size_t n) {
  Queue q;
  sim::Rng rng(1);
  for (std::size_t i = 0; i < n; ++i) {
    q.push(static_cast<sim::SimTime>(rng.next() % 1000000), [] { ++g_sink; });
  }
  std::uint64_t fired = 0;
  while (!q.empty()) {
    auto ev = q.pop();
    ev.fn();
    ++fired;
  }
  return fired;
}

template <typename Queue>
std::uint64_t run_push_pop_capture(std::size_t n) {
  Queue q;
  sim::Rng rng(2);
  std::uint64_t a = 1, b = 2, c = 3;
  std::uint64_t* sink_words[1] = {&a};
  for (std::size_t i = 0; i < n; ++i) {
    // 40 bytes of capture: a pointer and four 64-bit values, the shape of
    // `[this, id, deadline, seq]`-style closures across src/.
    q.push(static_cast<sim::SimTime>(rng.next() % 1000000),
           [p = sink_words[0], a, b, c, i] { g_sink += *p + a + b + c + i; });
  }
  std::uint64_t fired = 0;
  while (!q.empty()) {
    auto ev = q.pop();
    ev.fn();
    ++fired;
  }
  return fired;
}

template <typename Queue>
std::uint64_t run_cancel_heavy(std::size_t n) {
  Queue q;
  sim::Rng rng(3);
  std::vector<std::uint64_t> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(static_cast<std::uint64_t>(
        q.push(static_cast<sim::SimTime>(rng.next() % 1000000), [] { ++g_sink; })));
  }
  for (std::size_t i = 0; i < n; i += 2) q.cancel(ids[i]);
  std::uint64_t fired = 0;
  while (!q.empty()) {
    auto ev = q.pop();
    ev.fn();
    ++fired;
  }
  return fired;
}

template <typename Queue>
std::uint64_t run_same_time_burst(std::size_t n) {
  Queue q;
  constexpr std::size_t kBurst = 64;
  sim::SimTime t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % kBurst == 0) t += 100;
    q.push(t, [] { ++g_sink; });
  }
  std::uint64_t fired = 0;
  while (!q.empty()) {
    auto ev = q.pop();
    ev.fn();
    ++fired;
  }
  return fired;
}

template <typename Queue>
std::uint64_t run_mixed_horizon(std::size_t n) {
  Queue q;
  sim::Rng rng(4);
  std::uint64_t fired = 0;
  sim::SimTime base = 0;
  const std::size_t rounds = 8;
  const std::size_t per_round = n / rounds;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < per_round; ++i) {
      const auto v = rng.next();
      sim::SimTime t = 0;
      switch (v % 4) {
        case 0:
          t = base + static_cast<sim::SimTime>((v >> 8) % 200);  // RTT scale
          break;
        case 1:
          t = base + static_cast<sim::SimTime>(sim::kSecond + (v >> 8) % sim::kSecond);
          break;
        case 2:
          t = base + static_cast<sim::SimTime>(sim::kHour + (v >> 8) % sim::kDay);
          break;
        default:
          t = base + static_cast<sim::SimTime>((v >> 8) % 50000);
          break;
      }
      q.push(t, [] { ++g_sink; });
    }
    const std::size_t pops = q.size() / 2;
    for (std::size_t i = 0; i < pops; ++i) {
      auto ev = q.pop();
      ev.fn();
      ++fired;
    }
    base += 25000;
  }
  while (!q.empty()) {
    auto ev = q.pop();
    ev.fn();
    ++fired;
  }
  return fired;
}

using WorkloadFn = std::uint64_t (*)(std::size_t);

struct Workload {
  const char* name;
  WorkloadFn legacy;
  WorkloadFn calendar;
};

// Run both implementations with interleaved repetitions (legacy, calendar,
// legacy, ...) and take each side's best. The host this runs on shows
// multi-second throughput swings; pairing the repetitions in time means both
// sides sample the same noise episodes, so the ratio is far more stable than
// measuring one side after the other.
std::pair<Result, Result> measure_pair(const Workload& w, std::size_t n,
                                       double budget_seconds) {
  Result legacy;
  Result calendar;
  const auto t0 = Clock::now();
  int reps = 0;
  // Always complete at least one repetition of each; then repeat while the
  // budget lasts (capped so a fast machine doesn't spin forever).
  do {
    auto s0 = Clock::now();
    legacy.events = w.legacy(n);
    legacy.best_seconds = std::min(legacy.best_seconds, seconds_since(s0));
    s0 = Clock::now();
    calendar.events = w.calendar(n);
    calendar.best_seconds = std::min(calendar.best_seconds, seconds_since(s0));
    ++reps;
  } while (seconds_since(t0) < budget_seconds && reps < 50);
  return {legacy, calendar};
}

}  // namespace

int main(int argc, char** argv) {
  double budget_seconds = 10.0;
  std::size_t events = 1 << 16;
  std::string out_path = "BENCH_sched.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--budget-seconds") == 0 && i + 1 < argc) {
      budget_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      events = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--budget-seconds S] [--out PATH] [--events N]\n",
                   argv[0]);
      return 2;
    }
  }

  const Workload workloads[] = {
      {"hold", &run_hold<sim::LegacyHeapQueue>, &run_hold<sim::EventQueue>},
      {"push_pop_trivial", &run_push_pop_trivial<sim::LegacyHeapQueue>,
       &run_push_pop_trivial<sim::EventQueue>},
      {"push_pop_capture", &run_push_pop_capture<sim::LegacyHeapQueue>,
       &run_push_pop_capture<sim::EventQueue>},
      {"cancel_heavy", &run_cancel_heavy<sim::LegacyHeapQueue>,
       &run_cancel_heavy<sim::EventQueue>},
      {"same_time_burst", &run_same_time_burst<sim::LegacyHeapQueue>,
       &run_same_time_burst<sim::EventQueue>},
      {"mixed_horizon", &run_mixed_horizon<sim::LegacyHeapQueue>,
       &run_mixed_horizon<sim::EventQueue>},
  };
  const std::size_t n_workloads = std::size(workloads);
  const double per_measure = budget_seconds / static_cast<double>(n_workloads);

  std::printf("scheduler benchmark: %zu events/workload, %.1f s budget\n\n",
              events, budget_seconds);
  std::printf("%-18s %15s %15s %9s\n", "workload", "legacy ev/s", "calendar ev/s",
              "speedup");

  std::string json = "{\n  \"benchmark\": \"scheduler\",\n";
  json += "  \"events_per_workload\": " + std::to_string(events) + ",\n";
  // legacy_heap below IS the pre-change baseline: LegacyHeapQueue preserves
  // the seed scheduler (std::function + std::priority_queue + tombstone set)
  // verbatim, so every workload records baseline and new throughput from the
  // same binary and the same interleaved run.
  json += "  \"baseline\": \"legacy_heap == pre-change scheduler "
          "(std::function + binary heap + tombstone set), measured in-binary\",\n";
  json += "  \"workloads\": [\n";
  double geomean = 1.0;
  for (std::size_t w = 0; w < n_workloads; ++w) {
    const auto [legacy, calendar] = measure_pair(workloads[w], events, per_measure);
    const double speedup = calendar.events_per_sec() / legacy.events_per_sec();
    geomean *= speedup;
    std::printf("%-18s %15.0f %15.0f %8.2fx\n", workloads[w].name,
                legacy.events_per_sec(), calendar.events_per_sec(), speedup);
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"events_fired\": %llu,\n"
                  "     \"legacy_heap\":   {\"events_per_sec\": %.0f, \"best_seconds\": %.6f},\n"
                  "     \"calendar_queue\": {\"events_per_sec\": %.0f, \"best_seconds\": %.6f},\n"
                  "     \"speedup\": %.3f}%s\n",
                  workloads[w].name,
                  static_cast<unsigned long long>(calendar.events),
                  legacy.events_per_sec(), legacy.best_seconds,
                  calendar.events_per_sec(), calendar.best_seconds, speedup,
                  w + 1 < n_workloads ? "," : "");
    json += buf;
  }
  geomean = std::pow(geomean, 1.0 / static_cast<double>(n_workloads));
  json += "  ],\n";
  char tail[128];
  std::snprintf(tail, sizeof(tail), "  \"geomean_speedup\": %.3f\n}\n", geomean);
  json += tail;

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\ngeomean speedup: %.2fx  (written to %s)\n", geomean, out_path.c_str());
  return 0;
}
