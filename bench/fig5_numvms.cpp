// Figure 5: time for pre- and post-reboot tasks vs the number of VMs
// (1 GiB each). Series: on-memory suspend/resume (RootHammer), Xen's
// disk-backed save/restore, and plain shutdown/boot.
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace rh;
using bench::Testbed;

struct Row {
  int n = 0;
  double susp = 0, resume = 0;      // on-memory
  double save = 0, restore = 0;     // Xen
  double shutdown = 0, boot = 0;    // plain
};

Row measure(int n) {
  Row row;
  row.n = n;
  {  // --- on-memory suspend / resume
    Testbed tb;
    tb.add_vms(n, sim::kGiB, Testbed::ServiceMix::kSsh);
    sim::SimTime t0 = tb.sim.now();
    bool done = false;
    tb.host->vmm().suspend_all_on_memory([&] { done = true; });
    while (!done) tb.sim.step();
    row.susp = sim::to_seconds(tb.sim.now() - t0);
    t0 = tb.sim.now();
    int resumed = 0;
    for (auto& g : tb.guests) {
      tb.host->vmm().resume_domain_on_memory(g->name(), g.get(),
                                             [&](DomainId) { ++resumed; });
    }
    while (resumed < n) tb.sim.step();
    row.resume = sim::to_seconds(tb.sim.now() - t0);
  }
  {  // --- Xen save / restore (via disk)
    Testbed tb;
    tb.add_vms(n, sim::kGiB, Testbed::ServiceMix::kSsh);
    sim::SimTime t0 = tb.sim.now();
    int saved = 0;
    for (auto& g : tb.guests) {
      tb.host->vmm().save_domain_to_disk(g->domain_id(), tb.host->images(),
                                         [&] { ++saved; });
    }
    while (saved < n) tb.sim.step();
    row.save = sim::to_seconds(tb.sim.now() - t0);
    t0 = tb.sim.now();
    int restored = 0;
    for (auto& g : tb.guests) {
      tb.host->vmm().restore_domain_from_disk(g->name(), tb.host->images(),
                                              g.get(),
                                              [&](DomainId) { ++restored; });
    }
    while (restored < n) tb.sim.step();
    row.restore = sim::to_seconds(tb.sim.now() - t0);
  }
  {  // --- plain shutdown / boot
    Testbed tb;
    tb.add_vms(n, sim::kGiB, Testbed::ServiceMix::kSsh);
    sim::SimTime t0 = tb.sim.now();
    int down = 0;
    for (auto& g : tb.guests) {
      g->shutdown([&] { ++down; });
    }
    while (down < n) tb.sim.step();
    row.shutdown = sim::to_seconds(tb.sim.now() - t0);
    t0 = tb.sim.now();
    int up = 0;
    for (auto& g : tb.guests) {
      g->create_and_boot([&] { ++up; });
    }
    while (up < n) tb.sim.step();
    row.boot = sim::to_seconds(tb.sim.now() - t0);
  }
  return row;
}

}  // namespace

int main() {
  rh::bench::print_header(
      "Figure 5: pre/post-reboot task time vs number of VMs (1 GiB each)\n"
      "paper anchors at n=11: on-memory 0.04 s / 4.2 s; Xen ~200 s / ~155 s;\n"
      "boot grows steeply with n (3.4 n + 2.8)");
  std::printf(
      "  n   onmem-susp  onmem-res   xen-save  xen-restore   shutdown    boot\n");
  for (int n = 1; n <= 11; n += 2) {
    const Row r = measure(n);
    std::printf("  %-2d  %9.2fs  %8.2fs  %8.1fs  %10.1fs  %8.1fs  %6.1fs\n",
                r.n, r.susp, r.resume, r.save, r.restore, r.shutdown, r.boot);
  }
  return 0;
}
