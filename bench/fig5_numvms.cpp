// Figure 5: time for pre- and post-reboot tasks vs the number of VMs
// (1 GiB each). Series: on-memory suspend/resume (RootHammer), Xen's
// disk-backed save/restore, and plain shutdown/boot.
//
// Replicated sweep on exp::run_grid; cells are mean±95 % CI.
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace rh;
using bench::Testbed;

struct Row {
  int n = 0;
  double susp = 0, resume = 0;      // on-memory
  double save = 0, restore = 0;     // Xen
  double shutdown = 0, boot = 0;    // plain
};

Row measure(int n, sim::Rng rng) {
  Row row;
  row.n = n;
  {  // --- on-memory suspend / resume
    Testbed tb(rng.next());
    tb.add_vms(n, sim::kGiB, Testbed::ServiceMix::kSsh);
    sim::SimTime t0 = tb.sim.now();
    bool done = false;
    tb.host->vmm().suspend_all_on_memory([&] { done = true; });
    while (!done) tb.sim.step();
    row.susp = sim::to_seconds(tb.sim.now() - t0);
    t0 = tb.sim.now();
    int resumed = 0;
    for (auto& g : tb.guests) {
      tb.host->vmm().resume_domain_on_memory(g->name(), g.get(),
                                             [&](DomainId) { ++resumed; });
    }
    while (resumed < n) tb.sim.step();
    row.resume = sim::to_seconds(tb.sim.now() - t0);
  }
  {  // --- Xen save / restore (via disk)
    Testbed tb(rng.next());
    tb.add_vms(n, sim::kGiB, Testbed::ServiceMix::kSsh);
    sim::SimTime t0 = tb.sim.now();
    int saved = 0;
    for (auto& g : tb.guests) {
      tb.host->vmm().save_domain_to_disk(g->domain_id(), tb.host->images(),
                                         [&] { ++saved; });
    }
    while (saved < n) tb.sim.step();
    row.save = sim::to_seconds(tb.sim.now() - t0);
    t0 = tb.sim.now();
    int restored = 0;
    for (auto& g : tb.guests) {
      tb.host->vmm().restore_domain_from_disk(g->name(), tb.host->images(),
                                              g.get(),
                                              [&](DomainId) { ++restored; });
    }
    while (restored < n) tb.sim.step();
    row.restore = sim::to_seconds(tb.sim.now() - t0);
  }
  {  // --- plain shutdown / boot
    Testbed tb(rng.next());
    tb.add_vms(n, sim::kGiB, Testbed::ServiceMix::kSsh);
    sim::SimTime t0 = tb.sim.now();
    int down = 0;
    for (auto& g : tb.guests) {
      g->shutdown([&] { ++down; });
    }
    while (down < n) tb.sim.step();
    row.shutdown = sim::to_seconds(tb.sim.now() - t0);
    t0 = tb.sim.now();
    int up = 0;
    for (auto& g : tb.guests) {
      g->create_and_boot([&] { ++up; });
    }
    while (up < n) tb.sim.step();
    row.boot = sim::to_seconds(tb.sim.now() - t0);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = rh::bench::SweepOptions::parse(argc, argv);
  rh::bench::print_header(
      "Figure 5: pre/post-reboot task time vs number of VMs (1 GiB each)\n"
      "paper anchors at n=11: on-memory 0.04 s / 4.2 s; Xen ~200 s / ~155 s;\n"
      "boot grows steeply with n (3.4 n + 2.8)");

  const std::vector<int> counts = {1, 3, 5, 7, 9, 11};
  enum Metric { kSusp, kResume, kSave, kRestore, kShutdown, kBoot };
  const auto result = exp::run_grid(
      opt.grid(counts.size()), [&](const exp::ReplicationContext& ctx) {
        const Row r = measure(counts[ctx.point_index], ctx.rng);
        exp::ReplicationResult out;
        out.values = {r.susp, r.resume, r.save, r.restore, r.shutdown, r.boot};
        return out;
      });

  rh::bench::print_sweep_banner(result, opt);
  std::printf(
      "  n      onmem-susp     onmem-res       xen-save    xen-restore"
      "       shutdown           boot   (s)\n");
  for (std::size_t p = 0; p < counts.size(); ++p) {
    const auto& red = result.point(p);
    std::printf("  %-2d   %12s  %12s  %13s  %13s  %13s  %13s\n", counts[p],
                rh::bench::fmt_ci(red.mean(kSusp), red.ci95(kSusp)).c_str(),
                rh::bench::fmt_ci(red.mean(kResume), red.ci95(kResume)).c_str(),
                rh::bench::fmt_ci(red.mean(kSave), red.ci95(kSave), "%.1f").c_str(),
                rh::bench::fmt_ci(red.mean(kRestore), red.ci95(kRestore), "%.1f").c_str(),
                rh::bench::fmt_ci(red.mean(kShutdown), red.ci95(kShutdown), "%.1f").c_str(),
                rh::bench::fmt_ci(red.mean(kBoot), red.ci95(kBoot), "%.1f").c_str());
  }
  return 0;
}
