// Section 5.2: effect of quick reload. The paper measures the time from
// shutdown-script completion to "the reboot of the VMM completed":
// 11 s with quick reload vs 59 s with a hardware reset (48 s saved).
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace rh;
using bench::Testbed;

double vmm_reboot_seconds(bool quick_reload) {
  Testbed tb;
  if (quick_reload) {
    bool loaded = false;
    tb.host->vmm().xexec_load([&] { loaded = true; });
    while (!loaded) tb.sim.step();
  }
  bool down = false;
  tb.host->shutdown_dom0([&] { down = true; });
  while (!down) tb.sim.step();
  const sim::SimTime shutdown_complete = tb.sim.now();
  bool up = false;
  if (quick_reload) {
    tb.host->quick_reload([&] { up = true; });
  } else {
    tb.host->hardware_reboot([&] { up = true; });
  }
  while (!up) tb.sim.step();
  return sim::to_seconds(tb.host->vmm_ready_at() - shutdown_complete);
}

}  // namespace

int main() {
  rh::bench::print_header(
      "Section 5.2: VMM reboot time, shutdown complete -> reboot complete");
  const double quick = vmm_reboot_seconds(true);
  const double reset = vmm_reboot_seconds(false);
  rh::bench::print_row("quick reload", 11.0, quick, "s");
  rh::bench::print_row("hardware reset", 59.0, reset, "s");
  rh::bench::print_row("speed-up (saved)", 48.0, reset - quick, "s");

  // POST composition (the reset_hw term).
  Testbed tb;
  const double post = sim::to_seconds(
      tb.host->machine().bios().post_duration(tb.host->calib().machine.ram));
  const double bootloader = sim::to_seconds(tb.host->calib().bootloader);
  std::printf("\n  hardware reset composition: POST(12 GiB) = %.1f s, "
              "boot loader = %.1f s  => reset_hw = %.1f s (paper: 43-48 s)\n",
              post, bootloader, post + bootloader);
  return 0;
}
