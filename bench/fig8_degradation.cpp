// Figure 8: throughput of file reads and web accesses just before and just
// after the VMM reboot.
//
// (a) Reading a fully-cached 512 MB file in an 11 GiB VM: after a cold
//     reboot the first read misses everywhere and is disk-bound (paper:
//     -91 %); after a warm reboot the cache is intact (-0 %). The second
//     read is fast in all cases.
// (b) An Apache server with 10,000 x 512 KiB files, all cached, each
//     requested once by 10 parallel connections: cold -69 %, warm -0 %.
#include <cstdio>

#include "bench_util.hpp"
#include "workload/http_client.hpp"

namespace {

using namespace rh;
using bench::Testbed;

// --------------------------------------------------------------- (a)

double read_throughput_mbps(Testbed& tb, guest::GuestOs& g, std::int64_t file) {
  const sim::SimTime t0 = tb.sim.now();
  bool done = false;
  guest::Vfs::ReadResult result;
  g.vfs().read(file, [&](const guest::Vfs::ReadResult& r) {
    result = r;
    done = true;
  });
  while (!done) tb.sim.step();
  const double secs = sim::to_seconds(tb.sim.now() - t0);
  return sim::to_mib(result.bytes) / secs;
}

struct FileReadRow {
  double before1 = 0, before2 = 0, after1 = 0, after2 = 0, degradation = 0;
};

FileReadRow file_read_experiment(rejuv::RebootKind kind, std::uint64_t seed) {
  Testbed tb(seed);
  auto& g = tb.add_vm("vm", 11 * sim::kGiB, Testbed::ServiceMix::kSsh);
  const auto file = g.vfs().create_file("big", 512 * sim::kMiB);

  FileReadRow row;
  // Populate the cache, then measure the cached baseline.
  read_throughput_mbps(tb, g, file);
  row.before1 = read_throughput_mbps(tb, g, file);
  row.before2 = read_throughput_mbps(tb, g, file);

  tb.rejuvenate(kind);

  row.after1 = read_throughput_mbps(tb, g, file);
  row.after2 = read_throughput_mbps(tb, g, file);
  row.degradation = 1.0 - row.after1 / row.before1;
  return row;
}

// --------------------------------------------------------------- (b)

struct WebRun {
  double rate = 0.0;       // req/s
  double p50_ms = 0.0;     // median request latency
  double p99_ms = 0.0;
};

WebRun web_run(Testbed& tb, guest::GuestOs& g, guest::ApacheService& apache,
               const std::vector<std::int64_t>& files) {
  workload::HttpClientFleet fleet(g, apache, files,
                                  {/*connections=*/10,
                                   /*retry_interval=*/sim::kSecond,
                                   /*cycle=*/false});
  const sim::SimTime t0 = tb.sim.now();
  fleet.start();
  while (!fleet.finished() && tb.sim.pending_events() > 0) tb.sim.step();
  const double secs = sim::to_seconds(tb.sim.now() - t0);
  WebRun run;
  run.rate = static_cast<double>(files.size()) / secs;
  run.p50_ms = sim::to_seconds(fleet.latencies().percentile(50)) * 1e3;
  run.p99_ms = sim::to_seconds(fleet.latencies().percentile(99)) * 1e3;
  return run;
}

struct WebRow {
  WebRun before, after;
  double degradation = 0;
};

WebRow web_experiment(rejuv::RebootKind kind, std::uint64_t seed) {
  Testbed tb(seed);
  auto& g = tb.add_vm("vm", 11 * sim::kGiB, Testbed::ServiceMix::kApache);
  auto* apache = static_cast<guest::ApacheService*>(g.find_service("httpd"));
  std::vector<std::int64_t> files;
  for (int f = 0; f < 10000; ++f) {
    files.push_back(g.vfs().create_file("doc" + std::to_string(f),
                                        512 * sim::kKiB));
  }
  WebRow row;
  // Fill the cache (every file requested once), then the cached baseline.
  web_run(tb, g, *apache, files);
  row.before = web_run(tb, g, *apache, files);

  tb.rejuvenate(kind);
  tb.sim.run_for(30 * sim::kSecond);  // let any creation artifact pass

  row.after = web_run(tb, g, *apache, files);
  row.degradation = 1.0 - row.after.rate / row.before.rate;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = rh::bench::SweepOptions::parse(argc, argv);
  rh::bench::print_header(
      "Figure 8: file-read and web throughput before/after the reboot");
  using rh::bench::fmt_ci;

  const struct {
    rejuv::RebootKind kind;
    double paper_file, paper_web;
  } kinds[] = {{rejuv::RebootKind::kWarm, 0.0, 0.0},
               {rejuv::RebootKind::kCold, 0.91, 0.69}};

  // (a) 512 MB file read: one grid point per reboot kind.
  enum { kB1, kB2, kA1, kA2, kDeg };
  const auto file_grid =
      exp::run_grid(opt.grid(2), [&](const exp::ReplicationContext& ctx) {
        const FileReadRow r =
            file_read_experiment(kinds[ctx.point_index].kind, ctx.seed);
        exp::ReplicationResult out;
        out.values = {r.before1, r.before2, r.after1, r.after2, r.degradation};
        return out;
      });
  rh::bench::print_sweep_banner(file_grid, opt);
  for (std::size_t p = 0; p < 2; ++p) {
    const auto& red = file_grid.point(p);
    std::printf("\n  (a) 512 MB file read, %s:\n",
                rejuv::to_string(kinds[p].kind));
    std::printf("      before: 1st %s MB/s, 2nd %s MB/s\n",
                fmt_ci(red.mean(kB1), red.ci95(kB1), "%.0f").c_str(),
                fmt_ci(red.mean(kB2), red.ci95(kB2), "%.0f").c_str());
    std::printf("      after:  1st %s MB/s, 2nd %s MB/s\n",
                fmt_ci(red.mean(kA1), red.ci95(kA1), "%.0f").c_str(),
                fmt_ci(red.mean(kA2), red.ci95(kA2), "%.0f").c_str());
    std::printf("      first-read degradation: %s %% (paper: %.0f %%)\n",
                fmt_ci(red.mean(kDeg) * 100.0, red.ci95(kDeg) * 100.0, "%.0f").c_str(),
                kinds[p].paper_file * 100.0);
  }

  // (b) Apache over 10,000 cached files: one grid point per reboot kind.
  enum { kRateB, kRateA, kWebDeg, kP50B, kP99B, kP50A, kP99A };
  const auto web_grid =
      exp::run_grid(opt.grid(2), [&](const exp::ReplicationContext& ctx) {
        const WebRow r = web_experiment(kinds[ctx.point_index].kind, ctx.seed);
        exp::ReplicationResult out;
        out.values = {r.before.rate, r.after.rate, r.degradation,
                      r.before.p50_ms, r.before.p99_ms, r.after.p50_ms,
                      r.after.p99_ms};
        return out;
      });
  for (std::size_t p = 0; p < 2; ++p) {
    const auto& red = web_grid.point(p);
    std::printf("\n  (b) web server, 10,000 x 512 KiB files each requested once, %s:\n",
                rejuv::to_string(kinds[p].kind));
    std::printf("      before %s req/s, after %s req/s -> degradation %s %% "
                "(paper: %.0f %%)\n",
                fmt_ci(red.mean(kRateB), red.ci95(kRateB), "%.0f").c_str(),
                fmt_ci(red.mean(kRateA), red.ci95(kRateA), "%.0f").c_str(),
                fmt_ci(red.mean(kWebDeg) * 100.0, red.ci95(kWebDeg) * 100.0, "%.0f").c_str(),
                kinds[p].paper_web * 100.0);
    std::printf("      request latency p50/p99: before %s/%s ms, after %s/%s ms\n",
                fmt_ci(red.mean(kP50B), red.ci95(kP50B), "%.0f").c_str(),
                fmt_ci(red.mean(kP99B), red.ci95(kP99B), "%.0f").c_str(),
                fmt_ci(red.mean(kP50A), red.ci95(kP50A), "%.0f").c_str(),
                fmt_ci(red.mean(kP99A), red.ci95(kP99A), "%.0f").c_str());
  }
  return 0;
}
