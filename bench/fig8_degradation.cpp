// Figure 8: throughput of file reads and web accesses just before and just
// after the VMM reboot.
//
// (a) Reading a fully-cached 512 MB file in an 11 GiB VM: after a cold
//     reboot the first read misses everywhere and is disk-bound (paper:
//     -91 %); after a warm reboot the cache is intact (-0 %). The second
//     read is fast in all cases.
// (b) An Apache server with 10,000 x 512 KiB files, all cached, each
//     requested once by 10 parallel connections: cold -69 %, warm -0 %.
#include <cstdio>

#include "bench_util.hpp"
#include "workload/http_client.hpp"

namespace {

using namespace rh;
using bench::Testbed;

// --------------------------------------------------------------- (a)

double read_throughput_mbps(Testbed& tb, guest::GuestOs& g, std::int64_t file) {
  const sim::SimTime t0 = tb.sim.now();
  bool done = false;
  guest::Vfs::ReadResult result;
  g.vfs().read(file, [&](const guest::Vfs::ReadResult& r) {
    result = r;
    done = true;
  });
  while (!done) tb.sim.step();
  const double secs = sim::to_seconds(tb.sim.now() - t0);
  return sim::to_mib(result.bytes) / secs;
}

void file_read_experiment(rejuv::RebootKind kind, double paper_degradation) {
  Testbed tb;
  auto& g = tb.add_vm("vm", 11 * sim::kGiB, Testbed::ServiceMix::kSsh);
  const auto file = g.vfs().create_file("big", 512 * sim::kMiB);

  // Populate the cache, then measure the cached baseline.
  read_throughput_mbps(tb, g, file);
  const double before1 = read_throughput_mbps(tb, g, file);
  const double before2 = read_throughput_mbps(tb, g, file);

  tb.rejuvenate(kind);

  const double after1 = read_throughput_mbps(tb, g, file);
  const double after2 = read_throughput_mbps(tb, g, file);
  const double degradation = 1.0 - after1 / before1;

  std::printf("\n  (a) 512 MB file read, %s:\n", rejuv::to_string(kind));
  std::printf("      before: 1st %.0f MB/s, 2nd %.0f MB/s\n", before1, before2);
  std::printf("      after:  1st %.0f MB/s, 2nd %.0f MB/s\n", after1, after2);
  std::printf("      first-read degradation: %.0f %% (paper: %.0f %%)\n",
              degradation * 100.0, paper_degradation * 100.0);
}

// --------------------------------------------------------------- (b)

struct WebRun {
  double rate = 0.0;       // req/s
  double p50_ms = 0.0;     // median request latency
  double p99_ms = 0.0;
};

WebRun web_run(Testbed& tb, guest::GuestOs& g, guest::ApacheService& apache,
               const std::vector<std::int64_t>& files) {
  workload::HttpClientFleet fleet(g, apache, files,
                                  {/*connections=*/10,
                                   /*retry_interval=*/sim::kSecond,
                                   /*cycle=*/false});
  const sim::SimTime t0 = tb.sim.now();
  fleet.start();
  while (!fleet.finished() && tb.sim.pending_events() > 0) tb.sim.step();
  const double secs = sim::to_seconds(tb.sim.now() - t0);
  WebRun run;
  run.rate = static_cast<double>(files.size()) / secs;
  run.p50_ms = sim::to_seconds(fleet.latencies().percentile(50)) * 1e3;
  run.p99_ms = sim::to_seconds(fleet.latencies().percentile(99)) * 1e3;
  return run;
}

void web_experiment(rejuv::RebootKind kind, double paper_degradation) {
  Testbed tb;
  auto& g = tb.add_vm("vm", 11 * sim::kGiB, Testbed::ServiceMix::kApache);
  auto* apache = static_cast<guest::ApacheService*>(g.find_service("httpd"));
  std::vector<std::int64_t> files;
  for (int f = 0; f < 10000; ++f) {
    files.push_back(g.vfs().create_file("doc" + std::to_string(f),
                                        512 * sim::kKiB));
  }
  // Fill the cache (every file requested once), then the cached baseline.
  web_run(tb, g, *apache, files);
  const WebRun before = web_run(tb, g, *apache, files);

  tb.rejuvenate(kind);
  tb.sim.run_for(30 * sim::kSecond);  // let any creation artifact pass

  const WebRun after = web_run(tb, g, *apache, files);
  const double degradation = 1.0 - after.rate / before.rate;
  std::printf("\n  (b) web server, 10,000 x 512 KiB files each requested once, %s:\n",
              rejuv::to_string(kind));
  std::printf("      before %.0f req/s, after %.0f req/s -> degradation %.0f %% "
              "(paper: %.0f %%)\n",
              before.rate, after.rate, degradation * 100.0,
              paper_degradation * 100.0);
  std::printf("      request latency p50/p99: before %.0f/%.0f ms, after "
              "%.0f/%.0f ms\n",
              before.p50_ms, before.p99_ms, after.p50_ms, after.p99_ms);
}

}  // namespace

int main() {
  rh::bench::print_header(
      "Figure 8: file-read and web throughput before/after the reboot");
  file_read_experiment(rejuv::RebootKind::kWarm, 0.0);
  file_read_experiment(rejuv::RebootKind::kCold, 0.91);
  web_experiment(rejuv::RebootKind::kWarm, 0.0);
  web_experiment(rejuv::RebootKind::kCold, 0.69);
  return 0;
}
