// Related-work comparison (Section 7): the warm-VM reboot against the
// speed-up-the-disk alternatives -- compressed save images (Windows XP
// hibernation style) and a battery-backed RAM disk (GIGABYTE i-RAM) -- and
// against the dom0-only restart extension for privileged-VM aging.
//
// The paper's argument: every one of these still copies the whole memory
// image twice and still pays the hardware reset; only the warm-VM reboot
// does neither.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"

namespace {

using namespace rh;
using bench::Testbed;

double downtime_for(rejuv::RebootKind kind, Calibration calib, int n) {
  Testbed tb(calib);
  tb.add_vms(n, sim::kGiB, Testbed::ServiceMix::kSsh);
  auto& g = *tb.guests[0];
  auto* ssh = g.find_service("sshd");
  workload::Prober prober(tb.sim, {}, [&] { return g.service_reachable(*ssh); });
  prober.start();
  tb.sim.run_for(sim::kSecond);
  const sim::SimTime start = tb.sim.now();
  tb.rejuvenate(kind);
  tb.sim.run_for(5 * sim::kSecond);
  return sim::to_seconds(prober.outage_after(start).value_or(0));
}

}  // namespace

int main() {
  rh::bench::print_header(
      "Related work (Sec. 7): downtime of alternatives, 4 x 1 GiB VMs");
  const int n = 4;

  const double warm = downtime_for(rejuv::RebootKind::kWarm, {}, n);
  const double cold = downtime_for(rejuv::RebootKind::kCold, {}, n);
  const double saved = downtime_for(rejuv::RebootKind::kSaved, {}, n);

  Calibration compressed;
  compressed.xen_save_compression_ratio = 0.45;
  const double saved_comp =
      downtime_for(rejuv::RebootKind::kSaved, compressed, n);

  Calibration ramdisk;
  ramdisk.save_to_ram_disk = true;
  const double saved_ram = downtime_for(rejuv::RebootKind::kSaved, ramdisk, n);

  std::printf("  %-44s %8.1f s\n", "warm-VM reboot (RootHammer)", warm);
  std::printf("  %-44s %8.1f s\n", "saved-VM reboot (plain Xen save/restore)",
              saved);
  std::printf("  %-44s %8.1f s\n",
              "saved-VM + compressed images (XP hibernation)", saved_comp);
  std::printf("  %-44s %8.1f s\n", "saved-VM + i-RAM (battery-backed RAM disk)",
              saved_ram);
  std::printf("  %-44s %8.1f s\n", "cold-VM reboot", cold);
  std::printf("\n  faster media and compression shave the copy cost but keep "
              "both the\n  copy and the hardware reset; the warm-VM reboot "
              "eliminates both.\n");

  // Privileged-VM aging: dom0-only restart (the paper's future work).
  rh::bench::print_header(
      "Extension: dom0-only restart vs full warm reboot (xenstored aging)");
  Testbed tb;
  tb.add_vms(n, sim::kGiB, Testbed::ServiceMix::kSsh);
  auto& g = *tb.guests[0];
  auto* ssh = g.find_service("sshd");
  workload::Prober prober(tb.sim, {}, [&] { return g.service_reachable(*ssh); });
  prober.start();
  tb.sim.run_for(sim::kSecond);
  const sim::SimTime start = tb.sim.now();
  bool up = false;
  tb.host->restart_dom0([&up] { up = true; });
  while (!up) tb.sim.step();
  tb.sim.run_for(5 * sim::kSecond);
  const double dom0_only =
      sim::to_seconds(prober.outage_after(start).value_or(0));
  std::printf("  %-44s %8.1f s\n", "dom0-only restart (VMs keep running)",
              dom0_only);
  std::printf("  %-44s %8.1f s\n", "full warm-VM reboot", warm);
  std::printf("\n  when only the privileged VM has aged, restarting dom0 alone"
              " avoids\n  suspending the domains at all.\n");
  return 0;
}
