// Helper for the full-warm-reboot microbenchmark: one self-contained run.
#pragma once

#include "bench_util.hpp"

namespace rh::bench_support {

struct WarmRebootRun {
  double downtime_seconds = 0.0;

  explicit WarmRebootRun(int vms) {
    rh::bench::Testbed tb;
    tb.add_vms(vms, rh::sim::kGiB, rh::bench::Testbed::ServiceMix::kSsh);
    const auto t0 = tb.sim.now();
    tb.rejuvenate(rh::rejuv::RebootKind::kWarm);
    downtime_seconds = rh::sim::to_seconds(tb.sim.now() - t0);
  }
};

}  // namespace rh::bench_support
