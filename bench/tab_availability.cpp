// Section 5.3's availability table: weekly OS rejuvenation + 4-weekly VMM
// rejuvenation for 11 JBoss VMs. Paper: 99.993 % (warm, four 9s),
// 99.985 % (cold), 99.977 % (saved) with alpha = 0.5.
//
// We (1) measure the component downtimes in the simulator, (2) evaluate
// the closed-form availability with them, and (3) cross-check the warm
// case with a brute-force 4-week policy simulation under a prober.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "rejuv/availability.hpp"
#include "rejuv/policy.hpp"

namespace {

using namespace rh;
using bench::Testbed;

/// Downtime of one OS rejuvenation: reboot vm0 while 10 other VMs run.
double measure_os_downtime(std::uint64_t seed) {
  Testbed tb(seed);
  tb.add_vms(11, sim::kGiB, Testbed::ServiceMix::kJboss);
  auto& g = *tb.guests[0];
  auto* jboss = g.find_service("jboss");
  workload::Prober prober(tb.sim, {},
                          [&] { return g.service_reachable(*jboss); });
  prober.start();
  tb.sim.run_for(sim::kSecond);
  const sim::SimTime start = tb.sim.now();
  bool done = false;
  g.shutdown([&] { g.create_and_boot([&] { done = true; }); });
  while (!done) tb.sim.step();
  tb.sim.run_for(2 * sim::kSecond);
  prober.stop();
  return sim::to_seconds(prober.outage_after(start).value_or(0));
}

/// Mean VMM-rejuvenation downtime at n=11 (JBoss), per reboot kind.
double measure_vmm_downtime(rejuv::RebootKind kind, std::uint64_t seed) {
  Testbed tb(seed);
  tb.add_vms(11, sim::kGiB, Testbed::ServiceMix::kJboss);
  std::vector<std::unique_ptr<workload::Prober>> probers;
  for (auto& g : tb.guests) {
    auto* svc = g->find_service("jboss");
    probers.push_back(std::make_unique<workload::Prober>(
        tb.sim, workload::Prober::Config{},
        [g = g.get(), svc] { return g->service_reachable(*svc); }));
    probers.back()->start();
  }
  tb.sim.run_for(sim::kSecond);
  const sim::SimTime start = tb.sim.now();
  tb.rejuvenate(kind);
  tb.sim.run_for(2 * sim::kSecond);
  double total = 0;
  for (auto& p : probers) {
    p->stop();
    total += sim::to_seconds(p->outage_after(start).value_or(0));
  }
  return total / static_cast<double>(probers.size());
}

/// Brute force: run the policy for 4 weeks + margin, probing vm0 at 1 s.
double simulate_availability(rejuv::RebootKind kind, std::uint64_t seed) {
  Testbed tb(seed);
  tb.add_vms(11, sim::kGiB, Testbed::ServiceMix::kJboss);
  auto& g = *tb.guests[0];
  auto* jboss = g.find_service("jboss");
  workload::Prober prober(tb.sim, {/*interval=*/sim::kSecond},
                          [&] { return g.service_reachable(*jboss); });
  prober.start();
  rejuv::RejuvenationPolicy::Config cfg;
  cfg.vmm_reboot_kind = kind;
  rejuv::RejuvenationPolicy policy(*tb.host, tb.guest_ptrs(), cfg);
  const sim::SimTime start = tb.sim.now();
  policy.start();
  const sim::SimTime end = start + 4 * sim::kWeek + sim::kDay;
  tb.sim.run_until(end);
  prober.stop();
  const auto downtime = prober.total_downtime(start, end);
  return 1.0 - static_cast<double>(downtime) / static_cast<double>(end - start);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = rh::bench::SweepOptions::parse(argc, argv);
  rh::bench::print_header(
      "Section 5.3: availability with weekly OS / 4-weekly VMM rejuvenation");
  using rh::bench::fmt_ci;

  struct KindRow {
    rejuv::RebootKind kind;
    double paper_avail;
    bool includes_os;
  };
  const KindRow rows[] = {
      {rejuv::RebootKind::kWarm, 99.993, false},
      {rejuv::RebootKind::kCold, 99.985, true},
      {rejuv::RebootKind::kSaved, 99.977, false},
  };

  // One replicated grid covering the component measurements: point 0 is
  // the OS rejuvenation, points 1..3 the VMM rejuvenation per reboot kind.
  const auto comp_grid =
      exp::run_grid(opt.grid(4), [&](const exp::ReplicationContext& ctx) {
        exp::ReplicationResult out;
        out.values = {ctx.point_index == 0
                          ? measure_os_downtime(ctx.seed)
                          : measure_vmm_downtime(rows[ctx.point_index - 1].kind,
                                                 ctx.seed)};
        return out;
      });
  rh::bench::print_sweep_banner(comp_grid, opt);
  const double os_dt = comp_grid.point(0).mean(0);
  std::printf("  one OS rejuvenation downtime: %s s (paper: 33.6 s)\n\n",
              fmt_ci(os_dt, comp_grid.point(0).ci95(0), "%.1f").c_str());

  for (std::size_t k = 0; k < 3; ++k) {
    const auto& red = comp_grid.point(k + 1);
    const double vmm_dt = red.mean(0);
    rejuv::AvailabilityParams p;
    p.os_downtime_s = os_dt;
    p.vmm_downtime_s = vmm_dt;
    p.vmm_reboot_includes_os = rows[k].includes_os;
    const double avail = rejuv::availability(p);
    std::printf("  %-16s VMM downtime %12s s -> availability %s (%d nines; "
                "paper: %.3f %%)\n",
                rejuv::to_string(rows[k].kind),
                fmt_ci(vmm_dt, red.ci95(0), "%.1f").c_str(),
                rejuv::format_availability(avail).c_str(),
                rejuv::count_nines(avail), rows[k].paper_avail);
  }

  // Brute-force cross-check, replicated: each seed runs its own 4-week
  // policy simulation.
  const auto bf_grid =
      exp::run_grid(opt.grid(1), [](const exp::ReplicationContext& ctx) {
        exp::ReplicationResult out;
        out.values = {
            simulate_availability(rejuv::RebootKind::kWarm, ctx.seed)};
        return out;
      });
  const double warm_sim = bf_grid.point(0).mean(0);
  std::printf("\n  brute-force 4-week policy simulation (vm0, 1 s probes, %zu "
              "replications):\n", opt.reps);
  std::printf("  warm-VM reboot: measured availability %s (%d nines), "
              "CI half-width %.5f points\n",
              rejuv::format_availability(warm_sim).c_str(),
              rejuv::count_nines(warm_sim), bf_grid.point(0).ci95(0) * 100.0);
  return 0;
}
