// Section 5.3's availability table: weekly OS rejuvenation + 4-weekly VMM
// rejuvenation for 11 JBoss VMs. Paper: 99.993 % (warm, four 9s),
// 99.985 % (cold), 99.977 % (saved) with alpha = 0.5.
//
// We (1) measure the component downtimes in the simulator, (2) evaluate
// the closed-form availability with them, and (3) cross-check the warm
// case with a brute-force 4-week policy simulation under a prober.
//
// --fault-rate R0,R1,... switches the bench into the failing-world sweep:
// every mechanism fails with probability R (fault::FaultConfig::uniform)
// while a rejuv::Supervisor walks the recovery ladder, and the bench
// reports per-VM availability over a one-hour window per reboot kind,
// mean +- 95 % CI across replications. --out FILE additionally writes the
// sweep as JSON (the CI smoke artifact).
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "rejuv/availability.hpp"
#include "rejuv/policy.hpp"
#include "rejuv/supervisor.hpp"

namespace {

using namespace rh;
using bench::Testbed;

/// Downtime of one OS rejuvenation: reboot vm0 while 10 other VMs run.
double measure_os_downtime(std::uint64_t seed) {
  Testbed tb(seed);
  tb.add_vms(11, sim::kGiB, Testbed::ServiceMix::kJboss);
  auto& g = *tb.guests[0];
  auto* jboss = g.find_service("jboss");
  workload::Prober prober(tb.sim, {},
                          [&] { return g.service_reachable(*jboss); });
  prober.start();
  tb.sim.run_for(sim::kSecond);
  const sim::SimTime start = tb.sim.now();
  bool done = false;
  g.shutdown([&] { g.create_and_boot([&] { done = true; }); });
  while (!done) tb.sim.step();
  tb.sim.run_for(2 * sim::kSecond);
  prober.stop();
  return sim::to_seconds(prober.outage_after(start).value_or(0));
}

/// Mean VMM-rejuvenation downtime at n=11 (JBoss), per reboot kind.
double measure_vmm_downtime(rejuv::RebootKind kind, std::uint64_t seed) {
  Testbed tb(seed);
  tb.add_vms(11, sim::kGiB, Testbed::ServiceMix::kJboss);
  std::vector<std::unique_ptr<workload::Prober>> probers;
  for (auto& g : tb.guests) {
    auto* svc = g->find_service("jboss");
    probers.push_back(std::make_unique<workload::Prober>(
        tb.sim, workload::Prober::Config{},
        [g = g.get(), svc] { return g->service_reachable(*svc); }));
    probers.back()->start();
  }
  tb.sim.run_for(sim::kSecond);
  const sim::SimTime start = tb.sim.now();
  tb.rejuvenate(kind);
  tb.sim.run_for(2 * sim::kSecond);
  double total = 0;
  for (auto& p : probers) {
    p->stop();
    total += sim::to_seconds(p->outage_after(start).value_or(0));
  }
  return total / static_cast<double>(probers.size());
}

/// Brute force: run the policy for 4 weeks + margin, probing vm0 at 1 s.
double simulate_availability(rejuv::RebootKind kind, std::uint64_t seed) {
  Testbed tb(seed);
  tb.add_vms(11, sim::kGiB, Testbed::ServiceMix::kJboss);
  auto& g = *tb.guests[0];
  auto* jboss = g.find_service("jboss");
  workload::Prober prober(tb.sim, {/*interval=*/sim::kSecond},
                          [&] { return g.service_reachable(*jboss); });
  prober.start();
  rejuv::RejuvenationPolicy::Config cfg;
  cfg.vmm_reboot_kind = kind;
  rejuv::RejuvenationPolicy policy(*tb.host, tb.guest_ptrs(), cfg);
  const sim::SimTime start = tb.sim.now();
  policy.start();
  const sim::SimTime end = start + 4 * sim::kWeek + sim::kDay;
  tb.sim.run_until(end);
  prober.stop();
  const auto downtime = prober.total_downtime(start, end);
  return 1.0 - static_cast<double>(downtime) / static_cast<double>(end - start);
}

// ------------------------------------------------- fault-rate sweep

/// Per-VM availability over a one-hour window containing one *supervised*
/// rejuvenation, with every mechanism failing at `rate`. VMs the recovery
/// ladder cannot bring back stay down to the end of the window, so their
/// loss shows up as availability, not as a hang. The host's observer is
/// enabled so the supervisor's recovery-action counters ride back in the
/// result's metrics registry (merged per point by the exp::Reducer).
exp::ReplicationResult supervised_replication(rejuv::RebootKind kind,
                                              double rate,
                                              std::uint64_t seed) {
  Testbed tb(seed);
  tb.host->obs().set_enabled(true);
  tb.add_vms(4, sim::kGiB, Testbed::ServiceMix::kJboss);
  std::vector<std::unique_ptr<workload::Prober>> probers;
  for (auto& g : tb.guests) {
    auto* svc = g->find_service("jboss");
    probers.push_back(std::make_unique<workload::Prober>(
        tb.sim, workload::Prober::Config{},
        [g = g.get(), svc] { return g->service_reachable(*svc); }));
    probers.back()->start();
  }
  tb.sim.run_for(sim::kSecond);
  // Arm faults only now: the sweep injects into the rejuvenation pass,
  // not into the initial provisioning.
  tb.host->configure_faults(fault::FaultConfig::uniform(rate));
  rejuv::SupervisorConfig scfg;
  scfg.preferred = kind;
  rejuv::Supervisor sup(*tb.host, tb.guest_ptrs(), scfg);
  const sim::SimTime start = tb.sim.now();
  const sim::SimTime end = start + sim::kHour;
  sup.run([](const rejuv::SupervisorReport&) {});
  tb.sim.run_until(end);
  double downtime = 0;
  for (auto& p : probers) {
    p->stop();
    downtime += static_cast<double>(p->total_downtime(start, end));
  }
  const double window =
      static_cast<double>(end - start) * static_cast<double>(probers.size());
  exp::ReplicationResult out;
  out.values = {1.0 - downtime / window};
  out.metrics = std::move(tb.host->obs().metrics());
  return out;
}

/// Sums the "supervisor.recovery.*" counters of one point's merged
/// registry, optionally rendering each action as "name xN".
std::uint64_t recovery_actions(const obs::MetricsRegistry& m,
                               std::string* rendered) {
  constexpr std::string_view kPrefix = "supervisor.recovery.";
  std::uint64_t total = 0;
  for (const auto& c : m.counters()) {
    if (c.name.rfind(kPrefix, 0) != 0 || c.value == 0) continue;
    total += c.value;
    if (rendered != nullptr) {
      if (!rendered->empty()) *rendered += ", ";
      *rendered += c.name.substr(kPrefix.size()) + " x" +
                   std::to_string(c.value);
    }
  }
  return total;
}

void run_fault_sweep(const std::vector<double>& rates,
                     const std::string& out_path,
                     const rh::bench::SweepOptions& opt) {
  rh::bench::print_header(
      "Failing world: availability vs fault rate under supervised recovery");
  std::printf("  [4 JBoss VMs, 1 h window with one supervised rejuvenation; "
              "every mechanism fails at the given rate; cells are per-VM "
              "availability %%, mean±95%% CI over %zu replications]\n\n",
              opt.reps);
  const rejuv::RebootKind kinds[] = {rejuv::RebootKind::kWarm,
                                     rejuv::RebootKind::kSaved,
                                     rejuv::RebootKind::kCold};
  // One grid per reboot kind, sharing the root seed: point p of each grid
  // is rate p, so all kinds face the same replication substreams.
  exp::GridResult grids[3];
  for (std::size_t k = 0; k < 3; ++k) {
    grids[k] = exp::run_grid(
        opt.grid(rates.size()), [&, k](const exp::ReplicationContext& ctx) {
          return supervised_replication(kinds[k], rates[ctx.point_index],
                                        ctx.seed);
        });
  }
  std::printf("  %-12s %-22s %-22s %-22s\n", "fault rate", "warm", "saved",
              "cold");
  for (std::size_t p = 0; p < rates.size(); ++p) {
    std::printf("  %-12.3f", rates[p]);
    for (std::size_t k = 0; k < 3; ++k) {
      std::printf(" %-22s",
                  rh::bench::fmt_ci(grids[k].point(p).mean(0) * 100.0,
                                    grids[k].point(p).ci95(0) * 100.0, "%.4f")
                      .c_str());
    }
    std::printf("\n");
  }

  std::printf("\n  supervisor recovery actions (summed over %zu replications, "
              "read from the\n  merged observer metrics, not bespoke "
              "accounting):\n", opt.reps);
  const char* kind_names[] = {"warm", "saved", "cold"};
  for (std::size_t p = 0; p < rates.size(); ++p) {
    for (std::size_t k = 0; k < 3; ++k) {
      std::string line;
      recovery_actions(grids[k].point(p).merged_metrics(), &line);
      if (line.empty()) line = "none";
      std::printf("  rate %-7.3f %-6s %s\n", rates[p], kind_names[k],
                  line.c_str());
    }
  }

  if (out_path.empty()) return;
  std::string json = "{\n  \"benchmark\": \"availability_fault_sweep\",\n";
  json += "  \"workload\": \"supervised rejuvenation of 4 JBoss VMs, 1 h "
          "window, uniform per-mechanism fault rate\",\n";
  json += "  \"replications_per_point\": " + std::to_string(opt.reps) + ",\n";
  json += "  \"root_seed\": " + std::to_string(opt.root_seed) + ",\n";
  json += "  \"points\": [\n";
  char buf[160];
  for (std::size_t p = 0; p < rates.size(); ++p) {
    std::snprintf(buf, sizeof buf, "    {\"fault_rate\": %.6f", rates[p]);
    json += buf;
    const char* names[] = {"warm", "saved", "cold"};
    for (std::size_t k = 0; k < 3; ++k) {
      std::snprintf(buf, sizeof buf,
                    ", \"%s_availability\": %.8f, \"%s_ci95\": %.8f"
                    ", \"%s_recovery_actions\": %llu",
                    names[k], grids[k].point(p).mean(0), names[k],
                    grids[k].point(p).ci95(0), names[k],
                    static_cast<unsigned long long>(recovery_actions(
                        grids[k].point(p).merged_metrics(), nullptr)));
      json += buf;
    }
    json += p + 1 < rates.size() ? "},\n" : "}\n";
  }
  json += "  ]\n}\n";
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    std::exit(1);
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\n  wrote %s\n", out_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the sweep-specific flags, then hand the rest to SweepOptions.
  std::vector<double> fault_rates;
  std::string out_path;
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fault-rate") == 0 && i + 1 < argc) {
      fault_rates = rh::bench::parse_value_list("--fault-rate", argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  const auto opt = rh::bench::SweepOptions::parse(
      static_cast<int>(rest.size()), rest.data());
  if (!fault_rates.empty()) {
    run_fault_sweep(fault_rates, out_path, opt);
    return 0;
  }
  rh::bench::print_header(
      "Section 5.3: availability with weekly OS / 4-weekly VMM rejuvenation");
  using rh::bench::fmt_ci;

  struct KindRow {
    rejuv::RebootKind kind;
    double paper_avail;
    bool includes_os;
  };
  const KindRow rows[] = {
      {rejuv::RebootKind::kWarm, 99.993, false},
      {rejuv::RebootKind::kCold, 99.985, true},
      {rejuv::RebootKind::kSaved, 99.977, false},
  };

  // One replicated grid covering the component measurements: point 0 is
  // the OS rejuvenation, points 1..3 the VMM rejuvenation per reboot kind.
  const auto comp_grid =
      exp::run_grid(opt.grid(4), [&](const exp::ReplicationContext& ctx) {
        exp::ReplicationResult out;
        out.values = {ctx.point_index == 0
                          ? measure_os_downtime(ctx.seed)
                          : measure_vmm_downtime(rows[ctx.point_index - 1].kind,
                                                 ctx.seed)};
        return out;
      });
  rh::bench::print_sweep_banner(comp_grid, opt);
  const double os_dt = comp_grid.point(0).mean(0);
  std::printf("  one OS rejuvenation downtime: %s s (paper: 33.6 s)\n\n",
              fmt_ci(os_dt, comp_grid.point(0).ci95(0), "%.1f").c_str());

  for (std::size_t k = 0; k < 3; ++k) {
    const auto& red = comp_grid.point(k + 1);
    const double vmm_dt = red.mean(0);
    rejuv::AvailabilityParams p;
    p.os_downtime_s = os_dt;
    p.vmm_downtime_s = vmm_dt;
    p.vmm_reboot_includes_os = rows[k].includes_os;
    const double avail = rejuv::availability(p);
    std::printf("  %-16s VMM downtime %12s s -> availability %s (%d nines; "
                "paper: %.3f %%)\n",
                rejuv::to_string(rows[k].kind),
                fmt_ci(vmm_dt, red.ci95(0), "%.1f").c_str(),
                rejuv::format_availability(avail).c_str(),
                rejuv::count_nines(avail), rows[k].paper_avail);
  }

  // Brute-force cross-check, replicated: each seed runs its own 4-week
  // policy simulation.
  const auto bf_grid =
      exp::run_grid(opt.grid(1), [](const exp::ReplicationContext& ctx) {
        exp::ReplicationResult out;
        out.values = {
            simulate_availability(rejuv::RebootKind::kWarm, ctx.seed)};
        return out;
      });
  const double warm_sim = bf_grid.point(0).mean(0);
  std::printf("\n  brute-force 4-week policy simulation (vm0, 1 s probes, %zu "
              "replications):\n", opt.reps);
  std::printf("  warm-VM reboot: measured availability %s (%d nines), "
              "CI half-width %.5f points\n",
              rejuv::format_availability(warm_sim).c_str(),
              rejuv::count_nines(warm_sim), bf_grid.point(0).ci95(0) * 100.0);
  return 0;
}
