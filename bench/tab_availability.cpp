// Section 5.3's availability table: weekly OS rejuvenation + 4-weekly VMM
// rejuvenation for 11 JBoss VMs. Paper: 99.993 % (warm, four 9s),
// 99.985 % (cold), 99.977 % (saved) with alpha = 0.5.
//
// We (1) measure the component downtimes in the simulator, (2) evaluate
// the closed-form availability with them, and (3) cross-check the warm
// case with a brute-force 4-week policy simulation under a prober.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "rejuv/availability.hpp"
#include "rejuv/policy.hpp"

namespace {

using namespace rh;
using bench::Testbed;

/// Downtime of one OS rejuvenation: reboot vm0 while 10 other VMs run.
double measure_os_downtime() {
  Testbed tb;
  tb.add_vms(11, sim::kGiB, Testbed::ServiceMix::kJboss);
  auto& g = *tb.guests[0];
  auto* jboss = g.find_service("jboss");
  workload::Prober prober(tb.sim, {},
                          [&] { return g.service_reachable(*jboss); });
  prober.start();
  tb.sim.run_for(sim::kSecond);
  const sim::SimTime start = tb.sim.now();
  bool done = false;
  g.shutdown([&] { g.create_and_boot([&] { done = true; }); });
  while (!done) tb.sim.step();
  tb.sim.run_for(2 * sim::kSecond);
  prober.stop();
  return sim::to_seconds(prober.outage_after(start).value_or(0));
}

/// Mean VMM-rejuvenation downtime at n=11 (JBoss), per reboot kind.
double measure_vmm_downtime(rejuv::RebootKind kind) {
  Testbed tb;
  tb.add_vms(11, sim::kGiB, Testbed::ServiceMix::kJboss);
  std::vector<std::unique_ptr<workload::Prober>> probers;
  for (auto& g : tb.guests) {
    auto* svc = g->find_service("jboss");
    probers.push_back(std::make_unique<workload::Prober>(
        tb.sim, workload::Prober::Config{},
        [g = g.get(), svc] { return g->service_reachable(*svc); }));
    probers.back()->start();
  }
  tb.sim.run_for(sim::kSecond);
  const sim::SimTime start = tb.sim.now();
  tb.rejuvenate(kind);
  tb.sim.run_for(2 * sim::kSecond);
  double total = 0;
  for (auto& p : probers) {
    p->stop();
    total += sim::to_seconds(p->outage_after(start).value_or(0));
  }
  return total / static_cast<double>(probers.size());
}

/// Brute force: run the policy for 4 weeks + margin, probing vm0 at 1 s.
double simulate_availability(rejuv::RebootKind kind) {
  Testbed tb;
  tb.add_vms(11, sim::kGiB, Testbed::ServiceMix::kJboss);
  auto& g = *tb.guests[0];
  auto* jboss = g.find_service("jboss");
  workload::Prober prober(tb.sim, {/*interval=*/sim::kSecond},
                          [&] { return g.service_reachable(*jboss); });
  prober.start();
  rejuv::RejuvenationPolicy::Config cfg;
  cfg.vmm_reboot_kind = kind;
  rejuv::RejuvenationPolicy policy(*tb.host, tb.guest_ptrs(), cfg);
  const sim::SimTime start = tb.sim.now();
  policy.start();
  const sim::SimTime end = start + 4 * sim::kWeek + sim::kDay;
  tb.sim.run_until(end);
  prober.stop();
  const auto downtime = prober.total_downtime(start, end);
  return 1.0 - static_cast<double>(downtime) / static_cast<double>(end - start);
}

}  // namespace

int main() {
  rh::bench::print_header(
      "Section 5.3: availability with weekly OS / 4-weekly VMM rejuvenation");

  const double os_dt = measure_os_downtime();
  std::printf("  one OS rejuvenation downtime: %.1f s (paper: 33.6 s)\n\n", os_dt);

  struct KindRow {
    rejuv::RebootKind kind;
    double paper_avail;
    bool includes_os;
  };
  const KindRow rows[] = {
      {rejuv::RebootKind::kWarm, 99.993, false},
      {rejuv::RebootKind::kCold, 99.985, true},
      {rejuv::RebootKind::kSaved, 99.977, false},
  };
  for (const auto& row : rows) {
    const double vmm_dt = measure_vmm_downtime(row.kind);
    rejuv::AvailabilityParams p;
    p.os_downtime_s = os_dt;
    p.vmm_downtime_s = vmm_dt;
    p.vmm_reboot_includes_os = row.includes_os;
    const double avail = rejuv::availability(p);
    std::printf("  %-16s VMM downtime %6.1f s -> availability %s (%d nines; "
                "paper: %.3f %%)\n",
                rejuv::to_string(row.kind), vmm_dt,
                rejuv::format_availability(avail).c_str(),
                rejuv::count_nines(avail), row.paper_avail);
  }

  std::printf("\n  brute-force 4-week policy simulation (vm0, 1 s probes):\n");
  const double warm_sim = simulate_availability(rejuv::RebootKind::kWarm);
  std::printf("  warm-VM reboot: measured availability %s (%d nines)\n",
              rejuv::format_availability(warm_sim).c_str(),
              rejuv::count_nines(warm_sim));
  return 0;
}
