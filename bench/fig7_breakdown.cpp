// Figure 7: breakdown of the downtime due to VMM rejuvenation, with the
// throughput of a web server (on one of 11 VMs) sampled around the reboot.
// The reboot command is issued at t = 20 s, as in the paper.
//
// Paper anchors: warm -- web server stops at t~34 s (it keeps serving
// through dom0's shutdown), ~4 s total suspend+resume, no hardware reset,
// throughput restored after reboot (with a ~25 s dip caused by Xen's
// simultaneous-VM-creation artifact). Cold -- server stops at t~27 s,
// 43 s hardware reset, 63 s of OS shutdown+boot, and an ~8 s post-reboot
// dip from file-cache misses.
#include <cstdio>
#include <cstring>
#include <memory>

#include "bench_util.hpp"
#include "obs/observer.hpp"
#include "workload/http_client.hpp"
#include "workload/throughput_recorder.hpp"

namespace {

using namespace rh;
using bench::Testbed;

/// The breakdown as recorded by the observability layer: the kStep
/// children of the driver's pass span, in open order. Cross-checked
/// against the driver's own bespoke accounting -- the span tree and
/// RebootDriver::breakdown() must agree to the microsecond, or the
/// instrumentation has drifted from the control flow it claims to mirror.
std::vector<const obs::SpanRecord*> span_breakdown(
    const obs::SpanRecorder& spans, const rejuv::RebootDriver& driver) {
  obs::SpanId pass = obs::kNoSpan;
  for (std::size_t i = 0; i < spans.records().size(); ++i) {
    if (spans.records()[i].phase == obs::Phase::kPass) {
      pass = static_cast<obs::SpanId>(i);
    }
  }
  ensure(pass != obs::kNoSpan, "fig7: no pass span recorded");
  std::vector<const obs::SpanRecord*> steps;
  for (obs::SpanId c : spans.children_of(pass)) {
    if (spans.records()[c].phase == obs::Phase::kStep) {
      steps.push_back(&spans.records()[c]);
    }
  }
  const auto& legacy = driver.breakdown();
  ensure(steps.size() == legacy.size(),
         "fig7: span step count != driver breakdown count");
  for (std::size_t i = 0; i < steps.size(); ++i) {
    ensure(steps[i]->start == legacy[i].start &&
               steps[i]->end == legacy[i].end &&
               std::strcmp(steps[i]->label, legacy[i].label.c_str()) == 0,
           "fig7: span step disagrees with driver breakdown");
  }
  return steps;
}

void run(rejuv::RebootKind kind) {
  Testbed tb;
  tb.host->obs().set_enabled(true);
  // 11 VMs; vm0 additionally runs the Apache server under test.
  tb.add_vm("vm0", sim::kGiB, Testbed::ServiceMix::kApache);
  for (int i = 1; i < 11; ++i) {
    tb.add_vm("vm" + std::to_string(i), sim::kGiB, Testbed::ServiceMix::kSsh);
  }
  auto& web = *tb.guests[0];
  auto* apache = static_cast<guest::ApacheService*>(web.find_service("httpd"));

  // 500 x 512 KiB documents, requested cyclically by 10 connections.
  std::vector<std::int64_t> files;
  for (int f = 0; f < 500; ++f) {
    files.push_back(web.vfs().create_file("doc" + std::to_string(f),
                                          512 * sim::kKiB));
  }
  workload::HttpClientFleet fleet(web, *apache, files, {});
  fleet.start();

  // Warm the cache, then set "t=0" 20 s before the reboot command.
  tb.sim.run_for(60 * sim::kSecond);
  const sim::SimTime t0 = tb.sim.now() - 20 * sim::kSecond;

  auto driver = rejuv::make_reboot_driver(kind, *tb.host, tb.guest_ptrs());
  bool done = false;
  driver->run([&done] { done = true; });
  while (!done) tb.sim.step();
  const sim::SimTime restored = tb.sim.now();
  tb.sim.run_for(60 * sim::kSecond);
  fleet.stop();

  std::printf("\n--- %s ---\n", rejuv::to_string(kind));
  std::printf("  operation breakdown (reboot command at t=20 s):\n");
  for (const auto* s : span_breakdown(tb.host->obs().spans(), *driver)) {
    std::printf("    %-36s t=%6.1f .. %6.1f  (%6.2f s)\n", s->label,
                sim::to_seconds(s->start - t0), sim::to_seconds(s->end - t0),
                sim::to_seconds(s->duration()));
  }

  const auto& rec = fleet.completions();
  // The server "stopped" at the start of the first >= 5 s completion gap
  // after the reboot command.
  for (sim::SimTime t = t0 + 20 * sim::kSecond; t < restored; t += sim::kSecond) {
    const auto next = rec.first_event_at_or_after(t);
    if (!next || *next - t >= 5 * sim::kSecond) {
      const auto last = rec.last_event_before(t);
      std::printf(
          "  web server stopped at t=%.1f s (paper: warm ~34 s, cold ~27 s)\n",
          sim::to_seconds(last.value_or(t) - t0));
      break;
    }
  }
  const auto report = workload::ThroughputAnalyzer::analyze(
      rec, t0 + 20 * sim::kSecond, restored, tb.sim.now());
  std::printf("  baseline %.0f req/s; restored %.0f req/s; degraded window %.0f s\n",
              report.baseline_rate, report.restored_rate,
              sim::to_seconds(report.degraded_window));

  std::printf("  throughput timeline (5 s bins, req/s):\n   ");
  const auto series =
      rec.rate_series(t0, restored + 60 * sim::kSecond, 5 * sim::kSecond);
  int col = 0;
  for (const auto& s : series) {
    std::printf(" t=%3.0f:%4.0f", sim::to_seconds(s.time - t0), s.value);
    if (++col % 6 == 0) std::printf("\n   ");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  rh::bench::print_header(
      "Figure 7: downtime breakdown + web throughput around the reboot");
  run(rejuv::RebootKind::kWarm);
  run(rejuv::RebootKind::kCold);
  return 0;
}
