// Steady faults at datacenter scale: the PR-8 single-host crossover
// (micro-recovery vs the legacy warm/saved/cold ladders under steady
// unplanned VMM crashes), scaled out to the 1000-host fig9 scenario.
//
// For each (steady fault rate x recovery ladder) cell the full scale run
// is rebuilt: H slim hosts behind S balancer shards, a struct-of-arrays
// SessionFleet of closed-loop sessions, wave-based rolling rejuvenation
// with failure-reactive admission, and a per-host SteadyFaultProcess +
// RecoveryDriver crashing and recovering hosts *while* the waves and the
// fleet are in flight. The fleet attributes every session outage as
// planned (wave) or unplanned (crash); the crossover figure is per-ladder
// p99 availability vs fault rate.
//
// Writes BENCH_crashscale.json (the CI smoke artifact); the regression
// gate tracks `p99_availability_at_base_rate` = the micro ladder's p99
// availability at the highest swept rate. Every cell prints a
// worker-count-invariant digest and the run ends with an aggregate
// `digest=` line CI can diff across --workers 1 vs 4.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "cluster/session_fleet.hpp"
#include "simcore/parallel.hpp"

namespace {

using namespace rh;

struct Ladder {
  const char* name;
  rejuv::RebootKind kind;
  bool micro;
};

// Same rungs as tab_microrecovery: micro differs from warm only once a
// crash actually happens, so the rate-0 column is the control.
constexpr Ladder kLadders[] = {
    {"micro", rejuv::RebootKind::kWarm, true},
    {"warm", rejuv::RebootKind::kWarm, false},
    {"saved", rejuv::RebootKind::kSaved, false},
    {"cold", rejuv::RebootKind::kCold, false},
};

struct Options {
  int hosts = 1000;
  int shards = 8;
  int wave = 25;
  int vms_per_host = 2;
  std::uint64_t sessions = 0;  ///< 0: 1100 per host
  double sim_seconds = 90.0;
  double check_interval_s = 2.0;
  std::vector<double> rates = {0.0, 0.1, 0.4};
  std::size_t workers = 1;
  std::uint64_t seed = rh::bench::kLegacyBenchSeed;
  std::string out = "BENCH_crashscale.json";
};

struct Cell {
  double rate = 0;
  cluster::SessionFleet::Stats stats;
  cluster::Cluster::UnplannedReport unplanned;
  std::size_t waves_started = 0;
  std::size_t hosts_rejuvenated = 0;
  std::size_t admission_pauses = 0;
  std::size_t deferred_turns = 0;
  sim::Duration wave_planned_downtime = 0;
  std::uint64_t federated = 0;
  std::uint64_t rejected = 0;
  std::uint64_t crash_broadcasts = 0;
  std::uint64_t digest = 0;
  double wall = 0;
};

Cell run_cell(const Options& o, const Ladder& ladder, double rate) {
  const auto wall_start = std::chrono::steady_clock::now();
  sim::ParallelSimulation engine(
      {.partitions = 1 + o.shards + o.hosts, .workers = o.workers});
  cluster::Cluster::Config cfg;
  cfg.hosts = o.hosts;
  cfg.vms_per_host = o.vms_per_host;
  cfg.seed = o.seed;
  cfg.shards = o.shards;
  cfg.engine = &engine;
  // Same slim per-host calibration as the fig9 scale mode, so the rate-0
  // cells measure the identical fault-free scenario.
  cfg.calib.machine.ram = sim::kGiB;
  cfg.calib.dom0_memory = 256 * sim::kMiB;
  cfg.vm_memory = 128 * sim::kMiB;
  cfg.files_per_vm = 4;
  cfg.file_size = 32 * sim::kKiB;
  cfg.calib.link.latency = 500 * sim::kMicrosecond;
  // Hangs ride at half the crash rate, like tab_microrecovery.
  cfg.faults.vmm_crash_rate = rate;
  cfg.faults.vmm_hang_rate = rate / 2.0;
  cluster::Cluster cl(engine.partition(0), cfg);

  const std::uint64_t sessions =
      o.sessions != 0 ? o.sessions
                      : 1100ull * static_cast<std::uint64_t>(o.hosts);
  cluster::SessionFleet::Config fc;
  fc.sessions = sessions;
  fc.think_base = 20 * sim::kSecond;
  fc.think_spread = 20 * sim::kSecond;
  fc.retry_interval = sim::kSecond;
  fc.tick = 250 * sim::kMillisecond;
  cluster::SessionFleet fleet(*cl.sharded_balancer(), fc);

  bool ready = false;
  cl.start([&ready] { ready = true; });
  engine.run_while([&ready] { return !ready; });
  fleet.start(engine);

  rejuv::SupervisorConfig scfg;
  scfg.preferred = ladder.kind;
  if (ladder.micro) {
    scfg.micro.enabled = true;
    scfg.micro.success_rate = 0.85;  // ReHype's reported recovery rate
  }
  cluster::Cluster::SteadyFaultsConfig sfc;
  sfc.process.check_interval = sim::from_seconds(o.check_interval_s);
  sfc.supervisor = scfg;
  cl.start_steady_faults(sfc);

  engine.run_until(engine.partition(0).now() + 2 * sim::kSecond);
  const sim::SimTime meas_start = engine.partition(0).now();
  fleet.begin_window(meas_start);

  cluster::Cluster::WaveConfig wc;
  wc.wave_size = o.wave;
  wc.kind = ladder.kind;
  wc.supervisor = scfg;
  engine.run_on(0, [&cl, wc] {
    cl.rolling_rejuvenation_waves(
        wc, [](const cluster::Cluster::WaveReport&) {});
  });
  engine.run_until(meas_start + sim::from_seconds(o.sim_seconds));
  const sim::SimTime meas_end = engine.partition(0).now();

  Cell cell;
  cell.rate = rate;
  cell.stats = fleet.stats(meas_end);
  cell.unplanned = cl.unplanned_report();
  const auto& waves = cl.last_wave_report();
  cell.waves_started = waves.waves.size();
  cell.hosts_rejuvenated = cl.rejuvenation_durations().size();
  cell.admission_pauses = waves.admission_pauses;
  cell.deferred_turns = waves.deferred_turns;
  cell.wave_planned_downtime = waves.planned_downtime;
  cell.federated = cl.sharded_balancer()->federated();
  cell.rejected = cl.sharded_balancer()->rejected();
  cell.crash_broadcasts = cl.sharded_balancer()->crash_broadcasts();

  std::uint64_t digest = 0;
  const auto mix = [&digest](std::uint64_t v) {
    digest ^= v + 0x9e3779b97f4a7c15ull + (digest << 6) + (digest >> 2);
  };
  for (std::int32_t p = 0; p < engine.partition_count(); ++p) {
    mix(static_cast<std::uint64_t>(engine.partition(p).now()));
    mix(engine.partition(p).executed_events());
  }
  mix(fleet.state_digest());
  mix(cl.sharded_balancer()->state_digest());
  mix(cell.unplanned.failures);
  mix(cell.unplanned.absorbed);
  mix(cell.unplanned.recoveries);
  mix(cell.unplanned.micro_recoveries);
  mix(cell.unplanned.unrecovered);
  mix(static_cast<std::uint64_t>(cell.unplanned.downtime));
  for (const auto& w : waves.waves) {
    mix(static_cast<std::uint64_t>(w.started));
    mix(static_cast<std::uint64_t>(w.finished));
    for (const auto h : w.hosts) mix(h);
  }
  for (const auto d : cl.rejuvenation_durations()) {
    mix(static_cast<std::uint64_t>(d));
  }
  mix(engine.messages_routed());
  cell.digest = digest;
  cell.wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            wall_start)
                  .count();
  return cell;
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--hosts H] [--shards S] [--wave K] [--sessions M]\n"
      "          [--sim-seconds T] [--check-interval-s C]\n"
      "          [--fault-rate r1,r2,...] [--workers W] [--out FILE]\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&i, argc, argv]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--hosts") == 0) {
      if (const char* v = next()) o.hosts = std::atoi(v);
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      if (const char* v = next()) o.shards = std::atoi(v);
    } else if (std::strcmp(argv[i], "--wave") == 0) {
      if (const char* v = next()) o.wave = std::atoi(v);
    } else if (std::strcmp(argv[i], "--sessions") == 0) {
      if (const char* v = next()) o.sessions = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--sim-seconds") == 0) {
      if (const char* v = next()) o.sim_seconds = std::atof(v);
    } else if (std::strcmp(argv[i], "--check-interval-s") == 0) {
      if (const char* v = next()) o.check_interval_s = std::atof(v);
    } else if (std::strcmp(argv[i], "--fault-rate") == 0) {
      if (const char* v = next()) {
        o.rates.clear();
        std::string s(v);
        std::size_t pos = 0;
        while (pos < s.size()) {
          std::size_t comma = s.find(',', pos);
          if (comma == std::string::npos) comma = s.size();
          o.rates.push_back(std::atof(s.substr(pos, comma - pos).c_str()));
          pos = comma + 1;
        }
      }
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      if (const char* v = next()) o.workers = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      if (const char* v = next()) o.seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      if (const char* v = next()) o.out = v;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (o.hosts < 1 || o.shards < 1 || o.wave < 1 || o.workers < 1 ||
      o.rates.empty()) {
    usage(argv[0]);
    return 2;
  }

  const auto wall_start = std::chrono::steady_clock::now();
  std::printf("fig_crashscale: hosts=%d shards=%d wave=%d workers=%zu "
              "check=%.1fs window=%.1fs\n",
              o.hosts, o.shards, o.wave, o.workers, o.check_interval_s,
              o.sim_seconds);

  const double base_rate = o.rates.back();
  double micro_p99_at_base = 0.0;
  double cold_p99_at_base = 0.0;
  std::uint64_t digest = 0;
  const auto mix = [&digest](std::uint64_t v) {
    digest ^= v + 0x9e3779b97f4a7c15ull + (digest << 6) + (digest >> 2);
  };

  std::vector<std::vector<Cell>> cells(std::size(kLadders));
  for (std::size_t l = 0; l < std::size(kLadders); ++l) {
    for (const double rate : o.rates) {
      const Cell c = run_cell(o, kLadders[l], rate);
      std::printf("  %-5s rate=%.2f: pooled=%.6f p99=%.6f p999=%.6f "
                  "unplanned(f=%llu r=%llu u=%llu) pauses=%zu "
                  "digest=%016llx (%.1fs)\n",
                  kLadders[l].name, rate, c.stats.pooled_availability,
                  c.stats.availability_p99, c.stats.availability_p999,
                  static_cast<unsigned long long>(c.unplanned.failures),
                  static_cast<unsigned long long>(c.unplanned.recoveries),
                  static_cast<unsigned long long>(c.unplanned.unrecovered),
                  c.admission_pauses,
                  static_cast<unsigned long long>(c.digest), c.wall);
      mix(c.digest);
      if (rate == base_rate) {
        if (std::strcmp(kLadders[l].name, "micro") == 0) {
          micro_p99_at_base = c.stats.availability_p99;
        } else if (std::strcmp(kLadders[l].name, "cold") == 0) {
          cold_p99_at_base = c.stats.availability_p99;
        }
      }
      cells[l].push_back(c);
    }
  }
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();
  std::printf("  crossover at rate %.2f: micro p99=%.6f vs cold p99=%.6f\n",
              base_rate, micro_p99_at_base, cold_p99_at_base);
  std::printf("  aggregate digest=%016llx (%.1f wall-s)\n",
              static_cast<unsigned long long>(digest), wall);

  std::ofstream js(o.out);
  if (!js) {
    std::fprintf(stderr, "cannot write %s\n", o.out.c_str());
    return 1;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(digest));
  js << "{\n"
     << "  \"benchmark\": \"fig_crashscale\",\n"
     << "  \"hosts\": " << o.hosts << ",\n"
     << "  \"shards\": " << o.shards << ",\n"
     << "  \"wave_size\": " << o.wave << ",\n"
     << "  \"vms_per_host\": " << o.vms_per_host << ",\n"
     << "  \"workers\": " << o.workers << ",\n"
     << "  \"concurrent_sessions\": "
     << (o.sessions != 0 ? o.sessions
                         : 1100ull * static_cast<std::uint64_t>(o.hosts))
     << ",\n"
     << "  \"sim_seconds\": " << o.sim_seconds << ",\n"
     << "  \"check_interval_s\": " << o.check_interval_s << ",\n"
     << "  \"base_rate\": " << base_rate << ",\n"
     << "  \"p99_availability_at_base_rate\": " << micro_p99_at_base << ",\n"
     << "  \"cold_p99_availability_at_base_rate\": " << cold_p99_at_base
     << ",\n"
     << "  \"wall_seconds\": " << wall << ",\n"
     << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
     << ",\n"
     << "  \"ladders\": [\n";
  for (std::size_t l = 0; l < std::size(kLadders); ++l) {
    js << "    {\"name\": \"" << kLadders[l].name << "\", \"points\": [\n";
    for (std::size_t i = 0; i < cells[l].size(); ++i) {
      const Cell& c = cells[l][i];
      char cell_digest[64];
      std::snprintf(cell_digest, sizeof cell_digest, "%016llx",
                    static_cast<unsigned long long>(c.digest));
      js << "      {\"rate\": " << c.rate
         << ", \"pooled_availability\": " << c.stats.pooled_availability
         << ", \"p99_availability\": " << c.stats.availability_p99
         << ", \"p999_availability\": " << c.stats.availability_p999
         << ", \"completions\": " << c.stats.completions
         << ", \"failures\": " << c.stats.failures
         << ", \"planned_downtime_us\": " << c.stats.planned_downtime
         << ", \"unplanned_downtime_us\": " << c.stats.unplanned_downtime
         << ", \"unplanned_failures\": " << c.unplanned.failures
         << ", \"unplanned_absorbed\": " << c.unplanned.absorbed
         << ", \"unplanned_recoveries\": " << c.unplanned.recoveries
         << ", \"micro_recoveries\": " << c.unplanned.micro_recoveries
         << ", \"unrecovered_hosts\": " << c.unplanned.unrecovered
         << ", \"host_unplanned_downtime_us\": " << c.unplanned.downtime
         << ", \"wave_planned_downtime_us\": " << c.wave_planned_downtime
         << ", \"waves_started\": " << c.waves_started
         << ", \"hosts_rejuvenated\": " << c.hosts_rejuvenated
         << ", \"admission_pauses\": " << c.admission_pauses
         << ", \"deferred_turns\": " << c.deferred_turns
         << ", \"federated_dispatches\": " << c.federated
         << ", \"rejected_dispatches\": " << c.rejected
         << ", \"crash_broadcasts\": " << c.crash_broadcasts
         << ", \"wall_seconds\": " << c.wall
         << ", \"digest\": \"" << cell_digest << "\"}"
         << (i + 1 < cells[l].size() ? ",\n" : "\n");
    }
    js << "    ]}" << (l + 1 < std::size(kLadders) ? ",\n" : "\n");
  }
  js << "  ],\n"
     << "  \"digest\": \"" << buf << "\"\n"
     << "}\n";
  std::printf("  wrote %s\n", o.out.c_str());
  return 0;
}
