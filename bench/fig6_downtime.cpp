// Figure 6: downtime of networked services (ssh, JBoss) during VMM
// rejuvenation, vs number of VMs, for the warm-VM, saved-VM and cold-VM
// reboots. Downtime is measured client-side by a prober, exactly as in
// the paper (Sec. 5.3). For the saved and cold reboots the prober's
// per-VM outages differ (saves/restores are serialised), so we report the
// mean across VMs, which is what the paper plots ("in average").
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace rh;
using bench::Testbed;

double mean_downtime(int n, Testbed::ServiceMix mix, rejuv::RebootKind kind,
                     std::uint64_t seed) {
  Testbed tb(seed);
  tb.add_vms(n, sim::kGiB, mix);

  // One prober per VM against its most demanding service.
  const char* svc_name = mix == Testbed::ServiceMix::kJboss ? "jboss" : "sshd";
  std::vector<std::unique_ptr<workload::Prober>> probers;
  for (auto& g : tb.guests) {
    auto* svc = g->find_service(svc_name);
    probers.push_back(std::make_unique<workload::Prober>(
        tb.sim, workload::Prober::Config{},
        [g = g.get(), svc] { return g->service_reachable(*svc); }));
    probers.back()->start();
  }
  tb.sim.run_for(2 * sim::kSecond);
  const sim::SimTime reboot_start = tb.sim.now();
  tb.rejuvenate(kind);
  tb.sim.run_for(5 * sim::kSecond);

  double total = 0;
  int counted = 0;
  for (auto& p : probers) {
    p->stop();
    if (const auto outage = p->outage_after(reboot_start)) {
      total += sim::to_seconds(*outage);
      ++counted;
    }
  }
  return counted > 0 ? total / counted : 0.0;
}

// One grid point per (service mix, VM count); metrics are the three
// reboot kinds, each measured on its own seeded testbed.
struct Point {
  Testbed::ServiceMix mix;
  int n;
};

void print_series(const char* title, const exp::GridResult& result,
                  const std::vector<Point>& points, Testbed::ServiceMix mix,
                  double paper_warm, double paper_saved, double paper_cold) {
  std::printf("\n  %s (paper at n=11: warm %.0f s, saved %.0f s, cold %.0f s)\n",
              title, paper_warm, paper_saved, paper_cold);
  std::printf("  n        warm-VM       saved-VM        cold-VM   (s)\n");
  for (std::size_t p = 0; p < points.size(); ++p) {
    if (points[p].mix != mix) continue;
    const auto& red = result.point(p);
    std::printf("  %-2d  %12s  %13s  %13s\n", points[p].n,
                rh::bench::fmt_ci(red.mean(0), red.ci95(0), "%.1f").c_str(),
                rh::bench::fmt_ci(red.mean(1), red.ci95(1), "%.1f").c_str(),
                rh::bench::fmt_ci(red.mean(2), red.ci95(2), "%.1f").c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = rh::bench::SweepOptions::parse(argc, argv);
  rh::bench::print_header("Figure 6: service downtime during VMM rejuvenation");

  std::vector<Point> points;
  for (const auto mix : {Testbed::ServiceMix::kSsh, Testbed::ServiceMix::kJboss}) {
    for (int n = 1; n <= 11; n += 2) points.push_back({mix, n});
  }
  const auto result = exp::run_grid(
      opt.grid(points.size()), [&](const exp::ReplicationContext& ctx) {
        const Point& pt = points[ctx.point_index];
        sim::Rng rng = ctx.rng;
        exp::ReplicationResult out;
        out.values = {
            mean_downtime(pt.n, pt.mix, rejuv::RebootKind::kWarm, rng.next()),
            mean_downtime(pt.n, pt.mix, rejuv::RebootKind::kSaved, rng.next()),
            mean_downtime(pt.n, pt.mix, rejuv::RebootKind::kCold, rng.next())};
        return out;
      });

  rh::bench::print_sweep_banner(result, opt);
  print_series("(a) ssh", result, points, Testbed::ServiceMix::kSsh, 42, 429, 157);
  print_series("(b) JBoss", result, points, Testbed::ServiceMix::kJboss, 42, 429, 241);
  return 0;
}
