// Figure 6: downtime of networked services (ssh, JBoss) during VMM
// rejuvenation, vs number of VMs, for the warm-VM, saved-VM and cold-VM
// reboots. Downtime is measured client-side by a prober, exactly as in
// the paper (Sec. 5.3). For the saved and cold reboots the prober's
// per-VM outages differ (saves/restores are serialised), so we report the
// mean across VMs, which is what the paper plots ("in average").
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace rh;
using bench::Testbed;

double mean_downtime(int n, Testbed::ServiceMix mix, rejuv::RebootKind kind) {
  Testbed tb;
  tb.add_vms(n, sim::kGiB, mix);

  // One prober per VM against its most demanding service.
  const char* svc_name = mix == Testbed::ServiceMix::kJboss ? "jboss" : "sshd";
  std::vector<std::unique_ptr<workload::Prober>> probers;
  for (auto& g : tb.guests) {
    auto* svc = g->find_service(svc_name);
    probers.push_back(std::make_unique<workload::Prober>(
        tb.sim, workload::Prober::Config{},
        [g = g.get(), svc] { return g->service_reachable(*svc); }));
    probers.back()->start();
  }
  tb.sim.run_for(2 * sim::kSecond);
  const sim::SimTime reboot_start = tb.sim.now();
  tb.rejuvenate(kind);
  tb.sim.run_for(5 * sim::kSecond);

  double total = 0;
  int counted = 0;
  for (auto& p : probers) {
    p->stop();
    if (const auto outage = p->outage_after(reboot_start)) {
      total += sim::to_seconds(*outage);
      ++counted;
    }
  }
  return counted > 0 ? total / counted : 0.0;
}

void run_series(const char* title, Testbed::ServiceMix mix, double paper_warm,
                double paper_saved, double paper_cold) {
  std::printf("\n  %s (paper at n=11: warm %.0f s, saved %.0f s, cold %.0f s)\n",
              title, paper_warm, paper_saved, paper_cold);
  std::printf("  n    warm-VM    saved-VM    cold-VM\n");
  for (int n = 1; n <= 11; n += 2) {
    const double w = mean_downtime(n, mix, rejuv::RebootKind::kWarm);
    const double s = mean_downtime(n, mix, rejuv::RebootKind::kSaved);
    const double c = mean_downtime(n, mix, rejuv::RebootKind::kCold);
    std::printf("  %-2d  %7.1f s  %8.1f s  %8.1f s\n", n, w, s, c);
  }
}

}  // namespace

int main() {
  rh::bench::print_header("Figure 6: service downtime during VMM rejuvenation");
  run_series("(a) ssh", Testbed::ServiceMix::kSsh, 42, 429, 157);
  run_series("(b) JBoss", Testbed::ServiceMix::kJboss, 42, 429, 241);
  return 0;
}
