// Ablations of the design choices DESIGN.md calls out:
//   1. suspend-by-VMM-after-dom0-shutdown vs original-Xen ordering
//      (the ~7 s of extra service uptime in Fig. 7)
//   2. honouring the preserved-region registry vs plain kexec
//      (without it, frozen images are corrupted)
//   3. the Xen simultaneous-creation artifact on/off
//      (the 25 s post-resume network dip in Fig. 7)
//   4. quick reload vs hardware reset as the warm reboot's reload step
//      (on-memory suspend fundamentally requires quick reload)
#include <cstdio>

#include "bench_util.hpp"
#include "workload/http_client.hpp"
#include "workload/throughput_recorder.hpp"

namespace {

using namespace rh;
using bench::Testbed;

// ------------------------------------------------- 1: suspend ordering

void suspend_ordering() {
  std::printf("\n  [1] suspend ordering (when does the service stop?)\n");
  for (const bool by_vmm : {true, false}) {
    Calibration calib;
    calib.suspend_by_vmm_after_dom0_shutdown = by_vmm;
    Testbed tb(calib);
    tb.add_vms(3, sim::kGiB, Testbed::ServiceMix::kSsh);
    auto& g = *tb.guests[0];
    auto* ssh = g.find_service("sshd");
    workload::Prober prober(tb.sim, {},
                            [&] { return g.service_reachable(*ssh); });
    prober.start();
    tb.sim.run_for(sim::kSecond);
    const sim::SimTime start = tb.sim.now();
    tb.rejuvenate(rejuv::RebootKind::kWarm);
    prober.stop();
    const auto down_at = prober.down_at_after(start);
    const auto outage = prober.outage_after(start);
    std::printf("    %-42s service stops %5.1f s after command, downtime %5.1f s\n",
                by_vmm ? "VMM suspends after dom0 shutdown (RootHammer):"
                       : "dom0 suspends before its shutdown (orig. Xen):",
                sim::to_seconds(down_at.value_or(start) - start),
                sim::to_seconds(outage.value_or(0)));
  }
}

// -------------------------------- 2: preserved-region registry honoured?

void registry_honoured() {
  std::printf("\n  [2] preserved-region registry across the reload\n");
  for (const bool honor : {true, false}) {
    Calibration calib;
    calib.honor_preserved_regions = honor;
    Testbed tb(calib);
    tb.add_vms(2, sim::kGiB, Testbed::ServiceMix::kSsh);
    bool corrupted = false;
    try {
      tb.rejuvenate(rejuv::RebootKind::kWarm);
      for (auto& g : tb.guests) corrupted |= !g->integrity_ok();
    } catch (const InvariantViolation&) {
      corrupted = true;  // frames were handed out before resume could claim
    }
    std::printf("    honor=%-5s -> guest images %s\n", honor ? "true" : "false",
                corrupted ? "CORRUPTED (guests crash)" : "intact");
  }
}

// ------------------------------------------- 3: creation artifact on/off

void creation_artifact() {
  std::printf("\n  [3] Xen simultaneous-VM-creation artifact (Fig. 7 warm dip)\n");
  for (const bool model_artifact : {true, false}) {
    Calibration calib;
    calib.model_xen_creation_artifact = model_artifact;
    Testbed tb(calib);
    tb.add_vm("vm0", sim::kGiB, Testbed::ServiceMix::kApache);
    for (int i = 1; i < 6; ++i) {
      tb.add_vm("vm" + std::to_string(i), sim::kGiB, Testbed::ServiceMix::kSsh);
    }
    auto& web = *tb.guests[0];
    auto* apache = static_cast<guest::ApacheService*>(web.find_service("httpd"));
    std::vector<std::int64_t> files;
    for (int f = 0; f < 200; ++f) {
      files.push_back(web.vfs().create_file("d" + std::to_string(f),
                                            512 * sim::kKiB));
    }
    workload::HttpClientFleet fleet(web, *apache, files, {});
    fleet.start();
    tb.sim.run_for(30 * sim::kSecond);
    const sim::SimTime cmd = tb.sim.now();
    tb.rejuvenate(rejuv::RebootKind::kWarm);
    const sim::SimTime restored = tb.sim.now();
    tb.sim.run_for(60 * sim::kSecond);
    fleet.stop();
    const auto rep = workload::ThroughputAnalyzer::analyze(
        fleet.completions(), cmd, restored, tb.sim.now());
    std::printf("    artifact=%-5s -> post-resume degraded window %4.0f s "
                "(restored at %.0f%% of baseline)\n",
                model_artifact ? "on" : "off",
                sim::to_seconds(rep.degraded_window),
                100.0 * (1.0 - rep.degradation));
  }
}

// ------------------------- 4: on-memory suspend requires quick reload

void reload_vs_reset() {
  std::printf("\n  [4] on-memory suspend + hardware reset (instead of quick "
              "reload)\n");
  Testbed tb;
  tb.add_vms(2, sim::kGiB, Testbed::ServiceMix::kSsh);
  bool suspended = false;
  tb.host->vmm().suspend_all_on_memory([&] { suspended = true; });
  while (!suspended) tb.sim.step();
  bool down = false;
  tb.host->shutdown_dom0([&] { down = true; });
  while (!down) tb.sim.step();
  bool up = false;
  tb.host->hardware_reboot([&] { up = true; });
  while (!up) tb.sim.step();
  std::printf("    after the reset the preserved registry holds %zu regions "
              "(was 2): the frozen images are gone;\n"
              "    resume is impossible and the VMs must cold-boot -- quick "
              "reload is not an optional optimisation.\n",
              tb.host->preserved().size());
}

// -------------------------------- 5: driver domains raise warm downtime

void driver_domains() {
  std::printf("\n  [5] driver domains (cannot be suspended; Sec. 7)\n");
  for (const int drivers : {0, 1, 2}) {
    Testbed tb;
    tb.add_vms(4, sim::kGiB, Testbed::ServiceMix::kSsh);
    for (int i = 0; i < drivers; ++i) tb.guests[static_cast<std::size_t>(i)]
        ->set_driver_domain(true);
    auto driver = tb.rejuvenate(rejuv::RebootKind::kWarm);
    std::printf("    %d driver domain(s) -> warm reboot takes %6.1f s\n",
                drivers, sim::to_seconds(driver->total_duration()));
  }
}

}  // namespace

int main() {
  rh::bench::print_header("Ablations: why each mechanism is load-bearing");
  suspend_ordering();
  registry_honoured();
  creation_artifact();
  reload_vs_reset();
  driver_domains();
  return 0;
}
