// Observability overhead benchmark: the zero-cost contract, measured.
//
//   micro        -- per-call cost of the typed Observer, disabled and
//                   enabled, against the legacy string-building Tracer
//   cluster      -- the fig9 DES cluster rolling pass run twice, observer
//                   off and on, with a digest over every deterministic
//                   output: the digests must match (enabling observability
//                   changes nothing the simulation computes) and the
//                   disabled run's wall time is the number the "free when
//                   off" claim stands on
//
// Emits BENCH_obs.json. Usage:
//
//   obs_bench [--budget-seconds S] [--out PATH] [--ops N]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "cluster/cluster.hpp"
#include "obs/observer.hpp"
#include "simcore/trace.hpp"

namespace {

using namespace rh;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

volatile std::uint64_t g_sink = 0;

// ------------------------------------------------------------- micro

double ns_per_op(std::uint64_t ops, double seconds) {
  return seconds / static_cast<double>(ops) * 1e9;
}

/// Typed emit with the observer disabled: the cost every fault-free hot
/// run pays per instrumentation site (one predicted branch).
double run_emit_disabled(std::uint64_t ops) {
  obs::Observer obs;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    obs.emit(static_cast<sim::SimTime>(i), obs::Category::kVmm,
             obs::EventKind::kLifecycle, "domain created",
             static_cast<std::int32_t>(i), i, i + 1);
    g_sink = g_sink + i;
  }
  return ns_per_op(ops, seconds_since(t0));
}

/// Typed emit with the observer enabled: POD store into the slab ring.
double run_emit_enabled(std::uint64_t ops) {
  obs::Observer obs;
  obs.set_enabled(true);
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    obs.emit(static_cast<sim::SimTime>(i), obs::Category::kVmm,
             obs::EventKind::kLifecycle, "domain created",
             static_cast<std::int32_t>(i), i, i + 1);
    g_sink = g_sink + i;
  }
  const double ns = ns_per_op(ops, seconds_since(t0));
  g_sink = g_sink + obs.events().size();
  return ns;
}

/// One open/close span pair, enabled.
double run_span_pair_enabled(std::uint64_t ops) {
  obs::Observer obs;
  obs.set_enabled(true);
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const auto id = obs.span_open(static_cast<sim::SimTime>(2 * i),
                                  obs::Phase::kStep, "on-memory suspend");
    obs.span_close(id, static_cast<sim::SimTime>(2 * i + 1));
  }
  const double ns = ns_per_op(ops, seconds_since(t0));
  g_sink = g_sink + obs.spans().records().size();
  return ns;
}

/// The legacy narrative path: an enabled Tracer fed a dynamically built
/// message, i.e. what every hot-path trace call cost before the typed
/// layer (and still costs wherever narration is wanted).
double run_legacy_tracer(std::uint64_t ops) {
  sim::Tracer tracer;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    tracer.emit(static_cast<sim::SimTime>(i), "vmm",
                "created domain " + std::to_string(i) + " (" +
                    std::to_string(i % 32) + " GiB)");
    if (tracer.records().size() > 100000) tracer.clear();
  }
  const double ns = ns_per_op(ops, seconds_since(t0));
  g_sink = g_sink + tracer.records().size();
  return ns;
}

// ----------------------------------------------------------- cluster

struct ClusterRun {
  double wall_seconds = 0;
  std::uint64_t digest = 0;
  std::uint64_t spans = 0;
  std::uint64_t events = 0;
};

void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
}

/// The fig9 scenario (3 hosts x 4 VMs, rolling warm rejuvenation) with a
/// digest over everything deterministic the run produces. Observability
/// must not move a single one of these bits.
ClusterRun cluster_once(bool observe) {
  const auto t0 = Clock::now();
  sim::Simulation s;
  cluster::Cluster::Config cfg;
  cfg.hosts = 3;
  cfg.vms_per_host = 4;
  cfg.observe = observe;
  cluster::Cluster cl(s, cfg);
  bool ready = false;
  cl.start([&ready] { ready = true; });
  while (!ready) s.step();
  cluster::ClusterClientFleet fleet(s, cl.balancer(), {});
  fleet.start();
  s.run_for(30 * sim::kSecond);
  bool done = false;
  cl.rolling_rejuvenation(rejuv::RebootKind::kWarm, [&done] { done = true; });
  while (!done) s.step();
  s.run_for(60 * sim::kSecond);
  fleet.stop();

  ClusterRun run;
  run.wall_seconds = seconds_since(t0);
  mix(run.digest, static_cast<std::uint64_t>(s.now()));
  mix(run.digest, static_cast<std::uint64_t>(fleet.completions().total()));
  mix(run.digest, cl.balancer().rejected());
  for (const auto d : cl.rejuvenation_durations()) {
    mix(run.digest, static_cast<std::uint64_t>(d));
  }
  for (int h = 0; h < cfg.hosts; ++h) {
    run.spans += cl.host(h).obs().spans().records().size();
    run.events += cl.host(h).obs().events().size();
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  double budget_seconds = 10.0;
  std::uint64_t ops = 1 << 22;
  std::string out_path = "BENCH_obs.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--budget-seconds") == 0 && i + 1 < argc) {
      budget_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
      ops = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--budget-seconds S] [--out PATH] [--ops N]\n",
                   argv[0]);
      return 2;
    }
  }

  struct Micro {
    const char* name;
    double (*fn)(std::uint64_t);
    double best_ns = 1e100;
  };
  Micro micros[] = {
      {"emit_disabled", &run_emit_disabled},
      {"emit_enabled", &run_emit_enabled},
      {"span_pair_enabled", &run_span_pair_enabled},
      {"legacy_tracer_string", &run_legacy_tracer},
  };
  // The string-building workload is far slower per op; give it fewer.
  const std::uint64_t tracer_ops = std::max<std::uint64_t>(ops / 16, 1);

  std::printf("observability benchmark: %llu ops/micro, %.1f s budget\n\n",
              static_cast<unsigned long long>(ops), budget_seconds);
  const auto t0 = Clock::now();
  int reps = 0;
  do {
    for (auto& m : micros) {
      const std::uint64_t n =
          std::strcmp(m.name, "legacy_tracer_string") == 0 ? tracer_ops : ops;
      m.best_ns = std::min(m.best_ns, m.fn(n));
    }
    ++reps;
  } while (seconds_since(t0) < budget_seconds * 0.5 && reps < 20);
  for (const auto& m : micros) {
    std::printf("  %-24s %8.3f ns/op\n", m.name, m.best_ns);
  }

  // End-to-end: interleave off/on repetitions so both sample the same
  // machine noise, keep each side's best wall time.
  ClusterRun off = cluster_once(false);
  ClusterRun on = cluster_once(true);
  const auto t1 = Clock::now();
  while (seconds_since(t1) < budget_seconds * 0.5) {
    const ClusterRun off2 = cluster_once(false);
    const ClusterRun on2 = cluster_once(true);
    off.wall_seconds = std::min(off.wall_seconds, off2.wall_seconds);
    on.wall_seconds = std::min(on.wall_seconds, on2.wall_seconds);
  }
  const bool digest_equal = off.digest == on.digest;
  std::printf("\n  fig9 cluster pass: observer off %.3f s, on %.3f s "
              "(+%.1f %%), digests %s\n",
              off.wall_seconds, on.wall_seconds,
              (on.wall_seconds / off.wall_seconds - 1.0) * 100.0,
              digest_equal ? "EQUAL" : "DIFFER");
  std::printf("  observed run recorded %llu spans, %llu events; "
              "unobserved recorded %llu/%llu\n",
              static_cast<unsigned long long>(on.spans),
              static_cast<unsigned long long>(on.events),
              static_cast<unsigned long long>(off.spans),
              static_cast<unsigned long long>(off.events));

  std::string json = "{\n  \"benchmark\": \"observability\",\n";
  json += "  \"contract\": \"observer off = one predicted branch per site, "
          "zero RNG draws, zero scheduled events; the cluster digests below "
          "must be equal\",\n";
  json += "  \"micro\": [\n";
  char buf[256];
  for (std::size_t i = 0; i < std::size(micros); ++i) {
    std::snprintf(buf, sizeof buf, "    {\"name\": \"%s\", \"ns_per_op\": %.4f}%s\n",
                  micros[i].name, micros[i].best_ns,
                  i + 1 < std::size(micros) ? "," : "");
    json += buf;
  }
  json += "  ],\n  \"cluster\": {\n";
  std::snprintf(buf, sizeof buf,
                "    \"disabled_wall_seconds\": %.4f,\n"
                "    \"enabled_wall_seconds\": %.4f,\n",
                off.wall_seconds, on.wall_seconds);
  json += buf;
  std::snprintf(buf, sizeof buf,
                "    \"digest_disabled\": \"%016llx\",\n"
                "    \"digest_enabled\": \"%016llx\",\n"
                "    \"digest_equal\": %s,\n",
                static_cast<unsigned long long>(off.digest),
                static_cast<unsigned long long>(on.digest),
                digest_equal ? "true" : "false");
  json += buf;
  std::snprintf(buf, sizeof buf,
                "    \"enabled_spans\": %llu,\n    \"enabled_events\": %llu\n"
                "  }\n}\n",
                static_cast<unsigned long long>(on.spans),
                static_cast<unsigned long long>(on.events));
  json += buf;

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\n  written to %s\n", out_path.c_str());
  return digest_equal ? 0 : 1;
}
