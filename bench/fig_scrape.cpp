// Scraped-like-production telemetry plane at datacenter scale: what does
// it cost to run the control plane off scraped metrics instead of the
// simulator's omniscient wire-tap, and how fast does scraping *see*
// failures?
//
// For each steady fault rate the fig9-scale scenario (H slim hosts
// behind S balancer shards, a closed-loop SessionFleet, wave-based
// rolling rejuvenation with the micro-recovery ladder) runs once as a
// *baseline* -- scraping off, waves ordered from the wire-tap -- and
// once per scrape interval with the full telemetry plane on: per-host
// /metrics exporters answering over the simulated links, the control
// scraper paying latency both ways and timing out on dead hosts, waves
// ordered from the scraped TimeSeriesStore alone, and the SLO evaluator
// pausing admission on burn rate. Every cell prints a
// worker-count-invariant digest; CI diffs the aggregate across
// --workers 1 vs 4.
//
// Reported per cell: scrape plane overhead (executed simulation events
// vs the baseline -- deterministic -- plus wall clock, informational),
// scrape bandwidth, detection latency percentiles (dark transition vs
// the watchdog's ground truth), dark hosts, SLO admission pauses, and
// at fault rate 0 the wave-order fidelity (positional agreement of the
// scraped-signal wave sequence with the wire-tap baseline's).
//
// Writes BENCH_scrape.json; the regression gate tracks inverted ratios
// of `detection_latency_p99_us` and `event_overhead_pct` (see
// check_regression.py). Unrecovered hosts get their telemetry dumped by
// the flight recorder into a sidecar JSON artifact.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "cluster/metrics_scraper.hpp"
#include "cluster/session_fleet.hpp"
#include "simcore/parallel.hpp"

namespace {

using namespace rh;

struct Options {
  int hosts = 1000;
  int shards = 8;
  int wave = 25;
  int vms_per_host = 2;
  std::uint64_t sessions = 0;  ///< 0: 1100 per host
  double sim_seconds = 60.0;
  double check_interval_s = 2.0;
  std::vector<double> rates = {0.0, 0.4};
  std::vector<double> intervals_s = {5.0, 15.0};
  std::size_t workers = 1;
  std::uint64_t seed = rh::bench::kLegacyBenchSeed;
  std::size_t max_flight_records = 3;
  std::string out = "BENCH_scrape.json";
  std::string flight_out = "BENCH_scrape_flight.json";
};

struct Cell {
  double rate = 0;
  double interval_s = 0;  ///< 0: baseline, scraping off
  cluster::SessionFleet::Stats stats;
  cluster::Cluster::UnplannedReport unplanned;
  std::size_t waves_started = 0;
  std::size_t hosts_rejuvenated = 0;
  std::size_t admission_pauses = 0;
  std::vector<std::vector<std::size_t>> waves;  ///< host picks per wave
  // Scraped cells only:
  cluster::MetricsScraper::Stats scrape;
  double detection_p50_us = 0;
  double detection_p99_us = 0;
  std::size_t dark_hosts = 0;
  double burn_rate = 0;
  std::size_t flight_records = 0;
  std::uint64_t executed_events = 0;
  std::uint64_t digest = 0;
  double wall = 0;
};

/// One full scale run. interval_s == 0: baseline, scraping off. idle:
/// no session fleet at all -- used for the exact wave-order fidelity
/// pair, where the only difference between baseline and scraped must be
/// the signal path, not fleet noise.
Cell run_cell(const Options& o, double rate, double interval_s,
              std::vector<std::string>* flight_dumps, bool idle = false) {
  const auto wall_start = std::chrono::steady_clock::now();
  const bool scraped = interval_s > 0;
  sim::ParallelSimulation engine(
      {.partitions = 1 + o.shards + o.hosts, .workers = o.workers});
  cluster::Cluster::Config cfg;
  cfg.hosts = o.hosts;
  cfg.vms_per_host = o.vms_per_host;
  cfg.seed = o.seed;
  cfg.shards = o.shards;
  cfg.engine = &engine;
  // Same slim per-host calibration as fig_crashscale, so the baseline
  // cells measure the identical wire-tap scenario.
  cfg.calib.machine.ram = sim::kGiB;
  cfg.calib.dom0_memory = 256 * sim::kMiB;
  cfg.vm_memory = 128 * sim::kMiB;
  cfg.files_per_vm = 4;
  cfg.file_size = 32 * sim::kKiB;
  cfg.calib.link.latency = 500 * sim::kMicrosecond;
  cfg.faults.vmm_crash_rate = rate;
  cfg.faults.vmm_hang_rate = rate / 2.0;
  cluster::Cluster cl(engine.partition(0), cfg);

  std::unique_ptr<cluster::SessionFleet> fleet;
  if (!idle) {
    const std::uint64_t sessions =
        o.sessions != 0 ? o.sessions
                        : 1100ull * static_cast<std::uint64_t>(o.hosts);
    cluster::SessionFleet::Config fc;
    fc.sessions = sessions;
    fc.think_base = 20 * sim::kSecond;
    fc.think_spread = 20 * sim::kSecond;
    fc.retry_interval = sim::kSecond;
    fc.tick = 250 * sim::kMillisecond;
    fleet = std::make_unique<cluster::SessionFleet>(*cl.sharded_balancer(),
                                                    fc);
  }

  bool ready = false;
  cl.start([&ready] { ready = true; });
  engine.run_while([&ready] { return !ready; });
  if (fleet != nullptr) fleet->start(engine);

  rejuv::SupervisorConfig scfg;
  scfg.preferred = rejuv::RebootKind::kWarm;
  scfg.micro.enabled = true;
  scfg.micro.success_rate = 0.85;  // ReHype's reported recovery rate
  if (rate > 0) {
    cluster::Cluster::SteadyFaultsConfig sfc;
    sfc.process.check_interval = sim::from_seconds(o.check_interval_s);
    sfc.supervisor = scfg;
    cl.start_steady_faults(sfc);
  }
  if (scraped) {
    cluster::Cluster::ScrapeConfig sc;
    sc.interval = sim::from_seconds(interval_s);
    sc.timeout = std::min<sim::Duration>(2 * sim::kSecond, sc.interval / 2);
    // The pass's own planned downtime (wave/hosts of the fleet missing
    // scrapes at any instant) must sit below the pause threshold, or the
    // gate would freeze planned maintenance on its own shadow; 8x the
    // error budget is above any sane wave fraction but well below a
    // fault storm's miss rate.
    sc.slo.pause_burn_rate = 8.0;
    // The idle fidelity pair isolates the signal path: gating off so a
    // pause can't desynchronise the wave sequences being compared.
    if (idle) sc.gate_admission = false;
    cl.start_scraping(sc);
  }

  // Warm up past the longest scrape interval so every cell's wave pass
  // starts at the same sim time with a populated TSDB (the baseline
  // shares the warmup so wave orders are comparable).
  double warmup_s = 2.0;
  for (const double is : o.intervals_s) {
    warmup_s = std::max(warmup_s, is + 1.0);
  }
  engine.run_until(engine.partition(0).now() + sim::from_seconds(warmup_s));
  const sim::SimTime meas_start = engine.partition(0).now();
  if (fleet != nullptr) fleet->begin_window(meas_start);

  cluster::Cluster::WaveConfig wc;
  wc.wave_size = o.wave;
  wc.kind = rejuv::RebootKind::kWarm;
  wc.supervisor = scfg;
  if (scraped) {
    wc.signals = cluster::Cluster::WaveSignalSource::kScraped;
  }
  engine.run_on(0, [&cl, wc] {
    cl.rolling_rejuvenation_waves(
        wc, [](const cluster::Cluster::WaveReport&) {});
  });
  engine.run_until(meas_start + sim::from_seconds(o.sim_seconds));
  const sim::SimTime meas_end = engine.partition(0).now();

  Cell cell;
  cell.rate = rate;
  cell.interval_s = interval_s;
  if (fleet != nullptr) cell.stats = fleet->stats(meas_end);
  cell.unplanned = cl.unplanned_report();
  const auto& waves = cl.last_wave_report();
  cell.waves_started = waves.waves.size();
  cell.hosts_rejuvenated = cl.rejuvenation_durations().size();
  cell.admission_pauses = waves.admission_pauses;
  for (const auto& w : waves.waves) {
    cell.waves.emplace_back(w.hosts.begin(), w.hosts.end());
  }

  std::uint64_t digest = 0;
  const auto mix = [&digest](std::uint64_t v) {
    digest ^= v + 0x9e3779b97f4a7c15ull + (digest << 6) + (digest >> 2);
  };
  for (std::int32_t p = 0; p < engine.partition_count(); ++p) {
    mix(static_cast<std::uint64_t>(engine.partition(p).now()));
    mix(engine.partition(p).executed_events());
    cell.executed_events += engine.partition(p).executed_events();
  }
  if (fleet != nullptr) mix(fleet->state_digest());
  mix(cl.sharded_balancer()->state_digest());
  mix(cell.unplanned.failures);
  mix(cell.unplanned.recoveries);
  mix(cell.unplanned.unrecovered);
  for (const auto& w : waves.waves) {
    mix(static_cast<std::uint64_t>(w.started));
    for (const auto h : w.hosts) mix(h);
  }

  if (scraped) {
    const cluster::MetricsScraper& sc = *cl.scraper();
    cell.scrape = sc.stats();
    cell.detection_p50_us =
        static_cast<double>(sc.detection_latency().percentile(50));
    cell.detection_p99_us =
        static_cast<double>(sc.detection_latency().percentile(99));
    cell.dark_hosts = sc.slo().dark_hosts();
    cell.burn_rate = sc.slo().burn_rate();
    cell.flight_records = sc.flight_records().size();
    mix(sc.state_digest());
    if (flight_dumps != nullptr) {
      for (const auto& fr : sc.flight_records()) {
        if (flight_dumps->size() >= o.max_flight_records) break;
        std::ostringstream os;
        sc.write_flight_record(os, fr.host);
        flight_dumps->push_back(os.str());
      }
    }
  }
  mix(engine.messages_routed());
  cell.digest = digest;
  cell.wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            wall_start)
                  .count();
  return cell;
}

/// Mean per-wave Jaccard overlap between the scraped-signal pass's host
/// picks and the wire-tap baseline's: did the control plane choose the
/// same hosts for each wave when it could only see the telemetry? A
/// wave present in one run but not the other scores 0.
double wave_order_fidelity(const std::vector<std::vector<std::size_t>>& base,
                           const std::vector<std::vector<std::size_t>>& got) {
  const std::size_t n = std::max(base.size(), got.size());
  if (n == 0) return 1.0;
  double total = 0;
  for (std::size_t i = 0; i < std::min(base.size(), got.size()); ++i) {
    std::vector<std::size_t> a = base[i];
    std::vector<std::size_t> b = got[i];
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<std::size_t> inter;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(inter));
    const std::size_t uni = a.size() + b.size() - inter.size();
    total += uni == 0 ? 1.0
                      : static_cast<double>(inter.size()) /
                            static_cast<double>(uni);
  }
  return total / static_cast<double>(n);
}

void parse_list(const char* v, std::vector<double>* out) {
  out->clear();
  std::string s(v);
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out->push_back(std::atof(s.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--hosts H] [--shards S] [--wave K] [--sessions M]\n"
      "          [--sim-seconds T] [--check-interval-s C]\n"
      "          [--fault-rate r1,r2,...] [--interval-s i1,i2,...]\n"
      "          [--workers W] [--out FILE] [--flight-out FILE]\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&i, argc, argv]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--hosts") == 0) {
      if (const char* v = next()) o.hosts = std::atoi(v);
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      if (const char* v = next()) o.shards = std::atoi(v);
    } else if (std::strcmp(argv[i], "--wave") == 0) {
      if (const char* v = next()) o.wave = std::atoi(v);
    } else if (std::strcmp(argv[i], "--sessions") == 0) {
      if (const char* v = next()) o.sessions = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--sim-seconds") == 0) {
      if (const char* v = next()) o.sim_seconds = std::atof(v);
    } else if (std::strcmp(argv[i], "--check-interval-s") == 0) {
      if (const char* v = next()) o.check_interval_s = std::atof(v);
    } else if (std::strcmp(argv[i], "--fault-rate") == 0) {
      if (const char* v = next()) parse_list(v, &o.rates);
    } else if (std::strcmp(argv[i], "--interval-s") == 0) {
      if (const char* v = next()) parse_list(v, &o.intervals_s);
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      if (const char* v = next()) o.workers = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      if (const char* v = next()) o.seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      if (const char* v = next()) o.out = v;
    } else if (std::strcmp(argv[i], "--flight-out") == 0) {
      if (const char* v = next()) o.flight_out = v;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (o.hosts < 1 || o.shards < 1 || o.wave < 1 || o.workers < 1 ||
      o.rates.empty() || o.intervals_s.empty()) {
    usage(argv[0]);
    return 2;
  }
  for (const double is : o.intervals_s) {
    if (is <= 0) {
      std::fprintf(stderr, "--interval-s values must be positive\n");
      return 2;
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  std::printf("fig_scrape: hosts=%d shards=%d wave=%d workers=%zu "
              "check=%.1fs window=%.1fs\n",
              o.hosts, o.shards, o.wave, o.workers, o.check_interval_s,
              o.sim_seconds);

  const double base_rate = o.rates.back();
  const double tight_interval = o.intervals_s.front();
  double headline_detection_p99 = 0.0;
  double headline_overhead_pct = 0.0;
  std::uint64_t digest = 0;
  const auto mix = [&digest](std::uint64_t v) {
    digest ^= v + 0x9e3779b97f4a7c15ull + (digest << 6) + (digest >> 2);
  };

  // Exact wave-order fidelity: with no fleet (so no load noise) and no
  // faults, a pass ordered from the scraped TSDB alone must pick exactly
  // the same waves as the wire-tap. This is the bench-scale twin of the
  // deterministic unit test; any mismatch is a real signal-path bug.
  const Cell idle_base =
      run_cell(o, 0.0, 0.0, nullptr, /*idle=*/true);
  const Cell idle_scraped =
      run_cell(o, 0.0, tight_interval, nullptr, /*idle=*/true);
  const double headline_fidelity =
      wave_order_fidelity(idle_base.waves, idle_scraped.waves);
  std::printf("  idle fidelity pair: baseline waves=%zu scraped waves=%zu "
              "fidelity=%.3f\n",
              idle_base.waves.size(), idle_scraped.waves.size(),
              headline_fidelity);
  mix(idle_base.digest);
  mix(idle_scraped.digest);

  std::vector<std::string> flight_dumps;
  struct Row {
    Cell baseline;
    std::vector<Cell> scraped;
    std::vector<double> event_overhead_pct;
    std::vector<double> wall_overhead_pct;
    std::vector<double> fidelity;
  };
  std::vector<Row> rows;
  for (const double rate : o.rates) {
    Row row;
    row.baseline = run_cell(o, rate, 0.0, nullptr);
    std::printf("  baseline rate=%.2f: pooled=%.6f p99=%.6f events=%llu "
                "digest=%016llx (%.1fs)\n",
                rate, row.baseline.stats.pooled_availability,
                row.baseline.stats.availability_p99,
                static_cast<unsigned long long>(row.baseline.executed_events),
                static_cast<unsigned long long>(row.baseline.digest),
                row.baseline.wall);
    mix(row.baseline.digest);
    for (const double interval : o.intervals_s) {
      const Cell c = run_cell(o, rate, interval, &flight_dumps);
      const double ev_overhead =
          row.baseline.executed_events == 0
              ? 0.0
              : (static_cast<double>(c.executed_events) /
                     static_cast<double>(row.baseline.executed_events) -
                 1.0) *
                    100.0;
      const double wall_overhead =
          row.baseline.wall <= 0.0
              ? 0.0
              : (c.wall / row.baseline.wall - 1.0) * 100.0;
      const double fidelity =
          wave_order_fidelity(row.baseline.waves, c.waves);
      std::printf(
          "  scraped  rate=%.2f int=%.0fs: ok=%llu fail=%llu kB=%llu "
          "dark=%zu pauses=%zu det_p99=%.0fus ev_ovh=%.2f%% fid=%.3f "
          "digest=%016llx (%.1fs)\n",
          rate, interval,
          static_cast<unsigned long long>(c.scrape.scrapes_ok),
          static_cast<unsigned long long>(c.scrape.scrapes_failed),
          static_cast<unsigned long long>(c.scrape.bytes_transferred / 1024),
          c.dark_hosts, c.admission_pauses, c.detection_p99_us, ev_overhead,
          fidelity, static_cast<unsigned long long>(c.digest), c.wall);
      mix(c.digest);
      if (rate == base_rate && interval == tight_interval) {
        headline_detection_p99 = c.detection_p99_us;
      }
      if (rate == o.rates.front() && interval == tight_interval) {
        headline_overhead_pct = ev_overhead;
      }
      row.event_overhead_pct.push_back(ev_overhead);
      row.wall_overhead_pct.push_back(wall_overhead);
      row.fidelity.push_back(fidelity);
      row.scraped.push_back(c);
    }
    rows.push_back(std::move(row));
  }
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();
  std::printf("  headline: det_p99=%.0fus overhead=%.2f%% fidelity=%.3f\n",
              headline_detection_p99, headline_overhead_pct,
              headline_fidelity);
  std::printf("  aggregate digest=%016llx (%.1f wall-s)\n",
              static_cast<unsigned long long>(digest), wall);

  if (!flight_dumps.empty()) {
    std::ofstream fj(o.flight_out);
    if (fj) {
      fj << "{\n  \"benchmark\": \"fig_scrape\",\n  \"records\": [\n";
      for (std::size_t i = 0; i < flight_dumps.size(); ++i) {
        fj << flight_dumps[i]
           << (i + 1 < flight_dumps.size() ? ",\n" : "\n");
      }
      fj << "  ]\n}\n";
      std::printf("  wrote %s (%zu flight records)\n", o.flight_out.c_str(),
                  flight_dumps.size());
    }
  }

  std::ofstream js(o.out);
  if (!js) {
    std::fprintf(stderr, "cannot write %s\n", o.out.c_str());
    return 1;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(digest));
  js << "{\n"
     << "  \"benchmark\": \"fig_scrape\",\n"
     << "  \"hosts\": " << o.hosts << ",\n"
     << "  \"shards\": " << o.shards << ",\n"
     << "  \"wave_size\": " << o.wave << ",\n"
     << "  \"vms_per_host\": " << o.vms_per_host << ",\n"
     << "  \"workers\": " << o.workers << ",\n"
     << "  \"concurrent_sessions\": "
     << (o.sessions != 0 ? o.sessions
                         : 1100ull * static_cast<std::uint64_t>(o.hosts))
     << ",\n"
     << "  \"sim_seconds\": " << o.sim_seconds << ",\n"
     << "  \"check_interval_s\": " << o.check_interval_s << ",\n"
     << "  \"base_rate\": " << base_rate << ",\n"
     << "  \"tight_interval_s\": " << tight_interval << ",\n"
     << "  \"detection_latency_p99_us\": " << headline_detection_p99 << ",\n"
     << "  \"event_overhead_pct\": " << headline_overhead_pct << ",\n"
     << "  \"wave_order_fidelity\": " << headline_fidelity << ",\n"
     << "  \"flight_records\": " << flight_dumps.size() << ",\n"
     << "  \"wall_seconds\": " << wall << ",\n"
     << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
     << ",\n"
     << "  \"rates\": [\n";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const Row& row = rows[r];
    js << "    {\"rate\": " << row.baseline.rate << ", \"baseline\": "
       << "{\"pooled_availability\": "
       << row.baseline.stats.pooled_availability
       << ", \"p99_availability\": " << row.baseline.stats.availability_p99
       << ", \"executed_events\": " << row.baseline.executed_events
       << ", \"waves_started\": " << row.baseline.waves_started
       << ", \"hosts_rejuvenated\": " << row.baseline.hosts_rejuvenated
       << ", \"admission_pauses\": " << row.baseline.admission_pauses
       << ", \"unplanned_failures\": " << row.baseline.unplanned.failures
       << ", \"unrecovered_hosts\": " << row.baseline.unplanned.unrecovered
       << ", \"wall_seconds\": " << row.baseline.wall << "},\n"
       << "     \"scraped\": [\n";
    for (std::size_t i = 0; i < row.scraped.size(); ++i) {
      const Cell& c = row.scraped[i];
      char cell_digest[64];
      std::snprintf(cell_digest, sizeof cell_digest, "%016llx",
                    static_cast<unsigned long long>(c.digest));
      js << "      {\"interval_s\": " << c.interval_s
         << ", \"pooled_availability\": " << c.stats.pooled_availability
         << ", \"p99_availability\": " << c.stats.availability_p99
         << ", \"rounds_completed\": " << c.scrape.rounds_completed
         << ", \"scrapes_ok\": " << c.scrape.scrapes_ok
         << ", \"scrapes_failed\": " << c.scrape.scrapes_failed
         << ", \"bytes_transferred\": " << c.scrape.bytes_transferred
         << ", \"detections\": " << c.scrape.detections
         << ", \"detection_p50_us\": " << c.detection_p50_us
         << ", \"detection_p99_us\": " << c.detection_p99_us
         << ", \"dark_hosts\": " << c.dark_hosts
         << ", \"burn_rate\": " << c.burn_rate
         << ", \"admission_pauses\": " << c.admission_pauses
         << ", \"waves_started\": " << c.waves_started
         << ", \"hosts_rejuvenated\": " << c.hosts_rejuvenated
         << ", \"flight_records\": " << c.flight_records
         << ", \"executed_events\": " << c.executed_events
         << ", \"event_overhead_pct\": " << row.event_overhead_pct[i]
         << ", \"wall_overhead_pct\": " << row.wall_overhead_pct[i]
         << ", \"wave_order_fidelity\": " << row.fidelity[i]
         << ", \"unplanned_failures\": " << c.unplanned.failures
         << ", \"unrecovered_hosts\": " << c.unplanned.unrecovered
         << ", \"wall_seconds\": " << c.wall
         << ", \"digest\": \"" << cell_digest << "\"}"
         << (i + 1 < row.scraped.size() ? ",\n" : "\n");
    }
    js << "    ]}" << (r + 1 < rows.size() ? ",\n" : "\n");
  }
  js << "  ],\n"
     << "  \"digest\": \"" << buf << "\"\n"
     << "}\n";
  std::printf("  wrote %s\n", o.out.c_str());
  if (headline_fidelity != 1.0) {
    std::fprintf(stderr,
                 "FAIL: scraped wave order diverged from the wire-tap on "
                 "the idle fault-free pair (fidelity %.3f)\n",
                 headline_fidelity);
    return 1;
  }
  return 0;
}
