// Section 5.6: regress the simulator's measurements into the paper's
// linear model functions and derive r(n), the downtime reduced by the
// warm-VM reboot.
//
// Paper fits: reboot_vmm(n) = -0.55 n + 43,  resume(n) = 0.43 n - 0.07,
//             reboot_os(n) = 3.8 n + 13,     boot(n) = 3.4 n + 2.8,
//             reset_hw = 47   =>   r(n) = 3.9 n + 60 - 17 alpha  (> 0).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "rejuv/downtime_model.hpp"
#include "simcore/stats.hpp"

namespace {

using namespace rh;
using bench::Testbed;

struct Measurements {
  std::vector<double> n, reboot_vmm, resume, shutdown, boot, reboot_os, d_warm;
};

void measure_at(int n, Measurements& out) {
  // Warm path: drive a warm reboot and dissect its breakdown.
  {
    Testbed tb;
    tb.add_vms(n, sim::kGiB, Testbed::ServiceMix::kSsh);
    auto driver = tb.rejuvenate(rejuv::RebootKind::kWarm);
    const auto& steps = driver->breakdown();
    double suspend_s = 0, reload_s = 0, resume_s = 0;
    for (const auto& s : steps) {
      if (s.label == "on-memory suspend") suspend_s = sim::to_seconds(s.duration());
      if (s.label == "quick reload + VMM/dom0 boot")
        reload_s = sim::to_seconds(s.duration());
      if (s.label == "on-memory resume") resume_s = sim::to_seconds(s.duration());
    }
    out.reboot_vmm.push_back(reload_s);
    out.resume.push_back(suspend_s + resume_s);
    out.d_warm.push_back(suspend_s + reload_s + resume_s);
  }
  // OS shutdown/boot path.
  {
    Testbed tb;
    tb.add_vms(n, sim::kGiB, Testbed::ServiceMix::kSsh);
    sim::SimTime t0 = tb.sim.now();
    int done = 0;
    for (auto& g : tb.guests) g->shutdown([&] { ++done; });
    while (done < n) tb.sim.step();
    const double shutdown_s = sim::to_seconds(tb.sim.now() - t0);
    t0 = tb.sim.now();
    done = 0;
    for (auto& g : tb.guests) g->create_and_boot([&] { ++done; });
    while (done < n) tb.sim.step();
    const double boot_s = sim::to_seconds(tb.sim.now() - t0);
    out.shutdown.push_back(shutdown_s);
    out.boot.push_back(boot_s);
    out.reboot_os.push_back(shutdown_s + boot_s);
  }
  out.n.push_back(n);
}

void print_fit(const char* name, const sim::LinearFit& fit,
               const rejuv::LinearFn& paper) {
  std::printf("  %-14s measured: %-18s paper: %-18s (R^2 %.3f)\n", name,
              fit.to_string().c_str(), paper.to_string().c_str(),
              fit.r_squared);
}

}  // namespace

int main() {
  rh::bench::print_header("Section 5.6: fitted model functions and r(n)");

  Measurements m;
  for (int n = 1; n <= 11; n += 2) measure_at(n, m);

  const auto paper = rejuv::DowntimeModel::paper();
  const auto fit_vmm = sim::fit_linear(m.n, m.reboot_vmm);
  const auto fit_resume = sim::fit_linear(m.n, m.resume);
  const auto fit_ros = sim::fit_linear(m.n, m.reboot_os);
  const auto fit_boot = sim::fit_linear(m.n, m.boot);

  print_fit("reboot_vmm(n)", fit_vmm, paper.reboot_vmm);
  print_fit("resume(n)", fit_resume, paper.resume);
  print_fit("reboot_os(n)", fit_ros, paper.reboot_os);
  print_fit("boot(n)", fit_boot, paper.boot);

  Testbed tb;
  const double reset_hw =
      sim::to_seconds(tb.host->machine().bios().post_duration(
          tb.host->calib().machine.ram)) +
      sim::to_seconds(tb.host->calib().bootloader);
  std::printf("  %-14s measured: %-18.1f paper: %.1f\n", "reset_hw", reset_hw,
              paper.reset_hw);

  rejuv::DowntimeModel ours;
  ours.reboot_vmm = rejuv::LinearFn::from_fit(fit_vmm);
  ours.resume = rejuv::LinearFn::from_fit(fit_resume);
  ours.reboot_os = rejuv::LinearFn::from_fit(fit_ros);
  ours.boot = rejuv::LinearFn::from_fit(fit_boot);
  ours.reset_hw = reset_hw;

  std::printf("\n  r(n) at alpha=1.0: measured %s, paper %s\n",
              ours.reduction_fn(1.0).to_string().c_str(),
              paper.reduction_fn(1.0).to_string().c_str());
  std::printf("  r(n) at alpha=0.5: measured %s, paper %s\n",
              ours.reduction_fn(0.5).to_string().c_str(),
              paper.reduction_fn(0.5).to_string().c_str());
  std::printf("  r(n) > 0 for all n in [1, 11], alpha in (0, 1]: %s (paper: yes)\n",
              ours.always_positive(11, 1.0) && ours.always_positive(11, 0.01)
                  ? "yes"
                  : "NO");

  std::printf("\n  cross-check: analytic d_w(n) vs measured warm downtime\n");
  for (std::size_t i = 0; i < m.n.size(); ++i) {
    std::printf("    n=%-2.0f analytic %.1f s, measured %.1f s\n", m.n[i],
                ours.d_warm(m.n[i]), m.d_warm[i]);
  }
  return 0;
}
