#!/usr/bin/env python3
"""Soft perf-regression gate over the checked-in bench JSONs.

Compares a freshly generated BENCH_sched.json / BENCH_runner.json against
the committed ones and exits non-zero when the geometric-mean throughput
ratio (fresh / baseline) drops by more than the threshold (default 15 %).

Only metrics present in BOTH files are compared, so CI smoke runs (tiny
budgets, fewer thread points) still line up with the full checked-in
sweeps. CI wires this as a soft gate (continue-on-error): shared runners
are too noisy for a hard fail, but the log line makes a real regression
visible the day it lands.

Usage:
  check_regression.py [--baseline-dir DIR] [--fresh-dir DIR]
                      [--threshold 0.15]
"""

import argparse
import json
import math
import os
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"  [skip] {path}: {e}")
        return None


def sched_metrics(doc):
    """workload name -> calendar-queue events/s."""
    out = {}
    for w in doc.get("workloads", []):
        eps = w.get("calendar_queue", {}).get("events_per_sec")
        if eps:
            out[f"sched/{w['name']}"] = float(eps)
    return out


def runner_metrics(doc):
    """thread count -> speedup vs sequential (portable across machines,
    unlike raw wall seconds)."""
    out = {}
    for s in doc.get("scaling", []):
        sp = s.get("speedup_vs_sequential")
        if sp and s.get("threads"):
            out[f"runner/threads={s['threads']}"] = float(sp)
    return out


def compare(name, baseline, fresh, extract):
    if baseline is None or fresh is None:
        return []
    base, new = extract(baseline), extract(fresh)
    pairs = []
    for key in sorted(base.keys() & new.keys()):
        ratio = new[key] / base[key]
        pairs.append((key, ratio))
        print(f"  {key:<28} baseline {base[key]:>12.2f}  "
              f"fresh {new[key]:>12.2f}  ratio {ratio:.3f}")
    if not pairs:
        print(f"  [skip] {name}: no comparable metrics")
    return pairs


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline-dir", default=".",
                    help="directory holding the checked-in BENCH_*.json")
    ap.add_argument("--fresh-dir", default=".",
                    help="directory holding the freshly generated ones")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max tolerated geomean regression (0.15 = 15%%)")
    args = ap.parse_args()

    suites = [
        ("BENCH_sched.json", sched_metrics),
        ("BENCH_runner.json", runner_metrics),
    ]
    pairs = []
    for fname, extract in suites:
        print(f"{fname}:")
        pairs += compare(
            fname,
            load(os.path.join(args.baseline_dir, fname)),
            load(os.path.join(args.fresh_dir, fname)),
            extract,
        )
    if not pairs:
        print("nothing to compare; passing")
        return 0

    geomean = math.exp(sum(math.log(r) for _, r in pairs) / len(pairs))
    floor = 1.0 - args.threshold
    print(f"\ngeomean throughput ratio (fresh/baseline): {geomean:.3f} "
          f"over {len(pairs)} metrics (floor {floor:.2f})")
    if geomean < floor:
        worst = min(pairs, key=lambda p: p[1])
        print(f"REGRESSION: geomean below floor; worst metric "
              f"{worst[0]} at {worst[1]:.3f}")
        return 1
    print("OK: within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
