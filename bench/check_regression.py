#!/usr/bin/env python3
"""Perf-regression gate over the bench JSONs.

Each CI run appends its fresh BENCH_*.json files to a history directory
(one snapshot per run id, persisted through the actions cache). The
baseline for every metric is the *trailing median* over the most recent
snapshots (up to 5): a single noisy run can neither fail the gate nor
poison the baseline, so the gate is HARD -- a geometric-mean drop beyond
the threshold exits non-zero and fails CI.

Soft mode happens exactly once per cold cache: when the history directory
holds no usable snapshots there is nothing trustworthy to compare
against, so the script warns, optionally seeds the history, and passes.

Only metrics present in both the baseline and the fresh files are
compared, so CI smoke runs (tiny budgets, fewer thread points) still
line up with fuller sweeps.

Usage:
  check_regression.py [--history-dir DIR] [--fresh-dir DIR]
                      [--threshold 0.15] [--append-history RUN_ID]
                      [--keep 10]
"""

import argparse
import json
import math
import os
import shutil
import statistics
import sys

SUITE_FILES = ["BENCH_sched.json", "BENCH_runner.json", "BENCH_pdes.json",
               "BENCH_scale.json", "BENCH_microrec.json",
               "BENCH_crashscale.json", "BENCH_scrape.json"]
MEDIAN_WINDOW = 5


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"  [skip] {path}: {e}")
        return None


def sched_metrics(doc):
    """workload name -> calendar-queue events/s."""
    out = {}
    for w in doc.get("workloads", []):
        eps = w.get("calendar_queue", {}).get("events_per_sec")
        if eps:
            out[f"sched/{w['name']}"] = float(eps)
    return out


def runner_metrics(doc):
    """thread count -> speedup vs sequential (portable across machines,
    unlike raw wall seconds)."""
    out = {}
    if doc.get("degenerate_scaling"):
        return out
    for s in doc.get("scaling", []):
        sp = s.get("speedup_vs_sequential")
        if sp and s.get("threads"):
            out[f"runner/threads={s['threads']}"] = float(sp)
    return out


def pdes_metrics(doc):
    """worker count -> committed events per wall-second through the
    parallel engine. Speedups are skipped on single-core machines
    (degenerate_scaling), but throughput still catches engine-side
    slowdowns there."""
    out = {}
    degenerate = doc.get("degenerate_scaling", False)
    for s in doc.get("strong_scaling", []):
        w, wall = s.get("workers"), s.get("wall_seconds")
        if not w or not wall:
            continue
        if s.get("events"):
            out[f"pdes/eps_workers={w}"] = float(s["events"]) / float(wall)
        if not degenerate and s.get("speedup_vs_1"):
            out[f"pdes/speedup_workers={w}"] = float(s["speedup_vs_1"])
    return out


def scale_metrics(doc):
    """Datacenter-scale fig9 run: completed sessions per wall-second (the
    headline throughput) and the p99 pooled availability. Both are
    higher-is-better ratios, so they drop straight into the geomean; the
    availability ratio hovers at 1.0 and only moves when the sharded
    control plane starts dropping sessions it used to absorb."""
    out = {}
    sps = doc.get("sessions_per_sec")
    if sps:
        out["scale/sessions_per_sec"] = float(sps)
    p99 = doc.get("p99_availability")
    if p99:
        out["scale/p99_availability"] = float(p99)
    return out


def microrec_metrics(doc):
    """Micro-recovery ladder: availability of the micro rung at the
    highest swept fault rate. A higher-is-better ratio pinned near 1.0;
    it moves only when the in-place recovery path stops absorbing
    crashes it used to, which is exactly the regression to catch."""
    out = {}
    avail = doc.get("availability_at_base_rate")
    if avail:
        out["microrec/availability_at_base_rate"] = float(avail)
    return out


def crashscale_metrics(doc):
    """Fleet-level crossover: the micro ladder's p99 session availability
    at the base steady fault rate, 1000 hosts. Higher is better and sits
    near 1.0; it collapses when failure-reactive admission, the recovery
    drivers, or crash-evict/readmit stop holding the fleet up under
    steady unplanned VMM failures."""
    out = {}
    p99 = doc.get("p99_availability_at_base_rate")
    if p99:
        out["crashscale/p99_availability_at_base_rate"] = float(p99)
    return out


def scrape_metrics(doc):
    """Telemetry plane. Both headline numbers are lower-is-better, so
    they enter the geomean as inverted ratios pinned in (0, 1]:

    - detection_latency_p99: 1e6 / (1e6 + p99_us) -- how fast a dead
      host goes scrape-dark vs the watchdog's ground truth. Falls when
      the scraper/SLO path starts taking extra rounds to notice.
    - overhead_pct: 1 / (1 + max(0, overhead)/100) -- executed-event
      overhead of the scrape plane vs the wire-tap baseline at the
      tightest interval. Deterministic (event counts, not wall time);
      falls when the plane starts costing more simulation work."""
    out = {}
    p99 = doc.get("detection_latency_p99_us")
    if p99 is not None and float(p99) > 0:
        out["scrape/detection_latency_p99"] = 1e6 / (1e6 + float(p99))
    ovh = doc.get("event_overhead_pct")
    if ovh is not None:
        out["scrape/overhead_pct"] = 1.0 / (1.0 + max(0.0, float(ovh)) / 100.0)
    return out


EXTRACTORS = {
    "BENCH_sched.json": sched_metrics,
    "BENCH_runner.json": runner_metrics,
    "BENCH_pdes.json": pdes_metrics,
    "BENCH_scale.json": scale_metrics,
    "BENCH_microrec.json": microrec_metrics,
    "BENCH_crashscale.json": crashscale_metrics,
    "BENCH_scrape.json": scrape_metrics,
}


def snapshot_ids(history_dir):
    """Snapshot directories, oldest first. GitHub run ids are increasing
    integers; fall back to lexicographic order for anything else."""
    if not os.path.isdir(history_dir):
        return []
    ids = [d for d in os.listdir(history_dir)
           if os.path.isdir(os.path.join(history_dir, d))]

    def key(d):
        return (0, int(d)) if d.isdigit() else (1, d)

    return sorted(ids, key=key)


def history_metrics(history_dir):
    """metric -> trailing median over the last MEDIAN_WINDOW snapshots."""
    samples = {}
    ids = snapshot_ids(history_dir)[-MEDIAN_WINDOW:]
    for run_id in ids:
        for fname, extract in EXTRACTORS.items():
            doc = load(os.path.join(history_dir, run_id, fname))
            if doc is None:
                continue
            for metric, value in extract(doc).items():
                samples.setdefault(metric, []).append(value)
    if ids:
        print(f"history: {len(ids)} snapshot(s) "
              f"[{ids[0]} .. {ids[-1]}], median window {MEDIAN_WINDOW}")
    return {m: statistics.median(vs) for m, vs in samples.items()}


def fresh_metrics(fresh_dir):
    out = {}
    for fname, extract in EXTRACTORS.items():
        doc = load(os.path.join(fresh_dir, fname))
        if doc is not None:
            out.update(extract(doc))
    return out


def append_history(history_dir, fresh_dir, run_id, keep):
    dst = os.path.join(history_dir, str(run_id))
    os.makedirs(dst, exist_ok=True)
    copied = 0
    for fname in SUITE_FILES:
        src = os.path.join(fresh_dir, fname)
        if os.path.isfile(src):
            shutil.copy2(src, os.path.join(dst, fname))
            copied += 1
    print(f"appended snapshot '{run_id}' ({copied} file(s)) to {history_dir}")
    for stale in snapshot_ids(history_dir)[:-keep]:
        shutil.rmtree(os.path.join(history_dir, stale), ignore_errors=True)
        print(f"pruned stale snapshot '{stale}'")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--history-dir", default="bench-history",
                    help="directory of per-run BENCH_*.json snapshots")
    ap.add_argument("--fresh-dir", default=".",
                    help="directory holding the freshly generated JSONs")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max tolerated geomean regression (0.15 = 15%%)")
    ap.add_argument("--append-history", metavar="RUN_ID", default=None,
                    help="after comparing, store the fresh JSONs as "
                         "snapshot RUN_ID")
    ap.add_argument("--keep", type=int, default=10,
                    help="snapshots to retain when appending")
    args = ap.parse_args()

    baseline = history_metrics(args.history_dir)
    fresh = fresh_metrics(args.fresh_dir)

    status = 0
    if not baseline:
        print("WARNING: no usable history snapshots -- nothing trustworthy "
              "to gate against; passing (soft). The gate hardens once a "
              "snapshot exists.")
    else:
        pairs = []
        for key in sorted(baseline.keys() & fresh.keys()):
            ratio = fresh[key] / baseline[key]
            pairs.append((key, ratio))
            print(f"  {key:<28} baseline {baseline[key]:>12.2f}  "
                  f"fresh {fresh[key]:>12.2f}  ratio {ratio:.3f}")
        if not pairs:
            print("WARNING: history exists but shares no metrics with the "
                  "fresh run; passing (soft)")
        else:
            geomean = math.exp(
                sum(math.log(r) for _, r in pairs) / len(pairs))
            floor = 1.0 - args.threshold
            print(f"\ngeomean throughput ratio (fresh/median-baseline): "
                  f"{geomean:.3f} over {len(pairs)} metrics "
                  f"(floor {floor:.2f})")
            if geomean < floor:
                worst = min(pairs, key=lambda p: p[1])
                print(f"REGRESSION (hard gate): geomean below floor; worst "
                      f"metric {worst[0]} at {worst[1]:.3f}")
                status = 1
            else:
                print("OK: within threshold")

    if args.append_history is not None and status == 0:
        append_history(args.history_dir, args.fresh_dir,
                       args.append_history, max(1, args.keep))
    elif args.append_history is not None:
        print("not appending a regressed run to history")
    return status


if __name__ == "__main__":
    sys.exit(main())
