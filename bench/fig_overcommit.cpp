// Overcommit sweep: availability and rejuvenation downtime vs the memory
// overcommit ratio, per reboot kind, under preserved-memory admission
// control (DESIGN.md §9).
//
// Six VMs share one host. At overcommit ratio R each VM's nominal memory
// is R * (usable / 6) but it boots with a reduced allocation (Xen's
// memory= < maxmem=) covering its working set, min(0.7 * R, 0.93) of its
// share -- guests fault in more of their nominal memory the more the host
// is overcommitted, until physical RAM saturates. The preserved-frame
// budget is fixed at 0.72 * usable, so the warm path degrades with R:
//
//   R = 1.0   everything fits; all six VMs resume warm
//   R = 1.2   admission covers the shortfall by ballooning alone
//   R = 1.5   ballooning is not enough; one VM demotes to the disk path
//   R = 2.0   page caches (sized to *nominal* memory) have swallowed the
//             reclaim-safe margin; two VMs demote
//
// Saved and cold runs of the same testbed are the baselines: their
// downtime grows with the working set no matter what admission does.
// Output: per-VM availability over a 1 h window containing one supervised
// rejuvenation, and the pass's total duration, mean +- 95 % CI across
// replications. --out FILE writes BENCH_overcommit.json.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "rejuv/supervisor.hpp"
#include "workload/prober.hpp"

namespace {

using namespace rh;

constexpr int kVms = 6;

sim::Bytes page_align(double bytes) {
  return (static_cast<sim::Bytes>(bytes) / sim::kPageSize) * sim::kPageSize;
}

struct RunResult {
  double availability = 0;  ///< per-VM mean over the 1 h window
  double pass_seconds = 0;  ///< supervised pass duration
  double demotions = 0;     ///< VMs demoted (saved + cold)
};

RunResult run_one(rejuv::RebootKind kind, double ratio, std::uint64_t seed) {
  Calibration c = bench::replication_calibration();
  // Guests size their page cache to the memory they *think* they have, so
  // at high overcommit the cache region swallows the reclaim-safe margin.
  c.page_cache_fraction = 0.45;
  const sim::Bytes usable =
      c.machine.ram - c.vmm_reserved_memory - c.dom0_memory;
  const sim::Bytes share = usable / kVms;
  c.preserved_frame_budget =
      page_align(0.72 * static_cast<double>(usable)) / sim::kPageSize;

  sim::Simulation sim;
  auto host = std::make_unique<vmm::Host>(sim, c, seed);
  host->instant_start();

  const sim::Bytes nominal = page_align(ratio * static_cast<double>(share));
  const sim::Bytes working_set = page_align(
      std::min(0.7 * ratio, 0.93) * static_cast<double>(share));
  std::vector<std::unique_ptr<guest::GuestOs>> guests;
  for (int v = 0; v < kVms; ++v) {
    auto g = std::make_unique<guest::GuestOs>(
        *host, "vm" + std::to_string(v), nominal);
    g->add_service(std::make_unique<guest::JbossService>());
    g->set_boot_allocation(working_set);
    bool up = false;
    g->create_and_boot([&up] { up = true; });
    sim.run_until(sim.now() + sim::kHour);
    if (!up) throw InvariantViolation("fig_overcommit: VM failed to boot");
    guests.push_back(std::move(g));
  }

  std::vector<guest::GuestOs*> ptrs;
  for (auto& g : guests) ptrs.push_back(g.get());
  std::vector<std::unique_ptr<workload::Prober>> probers;
  for (auto& g : guests) {
    auto* svc = g->find_service("jboss");
    probers.push_back(std::make_unique<workload::Prober>(
        sim, workload::Prober::Config{},
        [g = g.get(), svc] { return g->service_reachable(*svc); }));
    probers.back()->start();
  }
  sim.run_for(sim::kSecond);

  rejuv::SupervisorConfig scfg;
  scfg.preferred = kind;
  scfg.admission.enabled = true;
  scfg.admission.balloon_reclaim_fraction = 0.5;
  rejuv::Supervisor sup(*host, ptrs, scfg);
  const sim::SimTime start = sim.now();
  const sim::SimTime end = start + sim::kHour;
  sup.run([](const rejuv::SupervisorReport&) {});
  sim.run_until(end);

  RunResult out;
  double downtime = 0;
  for (auto& p : probers) {
    p->stop();
    downtime += static_cast<double>(p->total_downtime(start, end));
  }
  out.availability = 1.0 - downtime / (static_cast<double>(end - start) *
                                       static_cast<double>(probers.size()));
  const auto& rep = sup.report();
  out.pass_seconds = sim::to_seconds(rep.total_duration());
  out.demotions = static_cast<double>(rep.pressure.demoted_saved +
                                      rep.pressure.demoted_cold);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<double> ratios = {1.0, 1.2, 1.5, 2.0};
  std::string out_path;
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--overcommit") == 0 && i + 1 < argc) {
      ratios = rh::bench::parse_value_list("--overcommit", argv[++i]);
      for (const double r : ratios) {
        if (r < 1.0) {
          std::fprintf(stderr, "--overcommit: ratio %g below 1.0\n", r);
          return 2;
        }
      }
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  const auto opt = rh::bench::SweepOptions::parse(
      static_cast<int>(rest.size()), rest.data());

  rh::bench::print_header(
      "Overcommit sweep: availability and downtime vs overcommit ratio "
      "under preserved-memory admission");
  std::printf("  [%d JBoss VMs, 1 h window with one supervised "
              "rejuvenation; preserved budget 0.72 x usable; cells are "
              "mean±95%% CI over %zu replications]\n\n",
              kVms, opt.reps);

  const rejuv::RebootKind kinds[] = {rejuv::RebootKind::kWarm,
                                     rejuv::RebootKind::kSaved,
                                     rejuv::RebootKind::kCold};
  const char* names[] = {"warm", "saved", "cold"};
  // One grid per reboot kind sharing the root seed, so every kind faces
  // the same replication substreams (same layout as tab_availability).
  exp::GridResult grids[3];
  for (std::size_t k = 0; k < 3; ++k) {
    grids[k] = exp::run_grid(
        opt.grid(ratios.size()), [&, k](const exp::ReplicationContext& ctx) {
          exp::ReplicationResult out;
          const auto r = run_one(kinds[k], ratios[ctx.point_index], ctx.seed);
          out.values = {r.availability, r.pass_seconds, r.demotions};
          return out;
        });
  }

  for (std::size_t k = 0; k < 3; ++k) {
    std::printf("  -- %s --\n", names[k]);
    std::printf("  %-10s %-24s %-22s %s\n", "ratio", "availability %",
                "pass duration s", "demotions");
    for (std::size_t p = 0; p < ratios.size(); ++p) {
      const auto& pt = grids[k].point(p);
      std::printf("  %-10.2f %-24s %-22s %.1f\n", ratios[p],
                  rh::bench::fmt_ci(pt.mean(0) * 100.0, pt.ci95(0) * 100.0,
                                    "%.4f")
                      .c_str(),
                  rh::bench::fmt_ci(pt.mean(1), pt.ci95(1), "%.1f").c_str(),
                  pt.mean(2));
    }
    std::printf("\n");
  }

  if (out_path.empty()) return 0;
  std::string json = "{\n  \"benchmark\": \"overcommit_sweep\",\n";
  json += "  \"workload\": \"supervised rejuvenation of " +
          std::to_string(kVms) +
          " JBoss VMs, 1 h window, preserved budget 0.72 x usable\",\n";
  json += "  \"replications_per_point\": " + std::to_string(opt.reps) + ",\n";
  json += "  \"root_seed\": " + std::to_string(opt.root_seed) + ",\n";
  json += "  \"points\": [\n";
  char buf[200];
  for (std::size_t p = 0; p < ratios.size(); ++p) {
    std::snprintf(buf, sizeof buf, "    {\"overcommit\": %.4f", ratios[p]);
    json += buf;
    for (std::size_t k = 0; k < 3; ++k) {
      const auto& pt = grids[k].point(p);
      std::snprintf(
          buf, sizeof buf,
          ", \"%s_availability\": %.8f, \"%s_availability_ci95\": %.8f"
          ", \"%s_pass_s\": %.4f, \"%s_pass_s_ci95\": %.4f"
          ", \"%s_demotions\": %.2f",
          names[k], pt.mean(0), names[k], pt.ci95(0), names[k], pt.mean(1),
          names[k], pt.ci95(1), names[k], pt.mean(2));
      json += buf;
    }
    json += p + 1 < ratios.size() ? "},\n" : "}\n";
  }
  json += "  ]\n}\n";
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("  wrote %s\n", out_path.c_str());
  return 0;
}
