// Unplanned-crash resilience: availability vs steady VMM fault rate for
// four recovery ladders, extending tab_availability's --fault-rate sweep
// to failures that arrive *during service*, not just during the planned
// rejuvenation pass.
//
//   micro  kWarm planned pass + in-place micro-recovery of VMM crashes
//   warm   kWarm planned pass, crashes take the legacy hardware reboot
//   saved  kSaved planned pass, legacy crash handling
//   cold   kCold planned pass, legacy crash handling
//
// Each replication is a one-hour window over 4 probed JBoss VMs: one
// supervised rejuvenation at the start, then a SteadyFaultProcess rolling
// kVmmCrash / kVmmHang at the swept rate; every hit goes through a
// rejuv::RecoveryDriver (a fresh Supervisor ladder per failure, arrivals
// absorbed while any ladder owns the host). At rate 0 micro and warm are the same
// run byte-for-byte (micro-recovery costs nothing until a crash happens);
// the figure of interest is the rate region where micro strictly
// dominates warm while warm still dominates saved/cold.
//
// Writes BENCH_microrec.json (the CI smoke artifact); the regression gate
// tracks `availability_at_base_rate` = micro's mean at the highest rate.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "rejuv/recovery_driver.hpp"
#include "rejuv/supervisor.hpp"

namespace {

using namespace rh;
using bench::Testbed;

struct Ladder {
  const char* name;
  rejuv::RebootKind planned;
  bool micro;
};

constexpr Ladder kLadders[] = {
    {"micro", rejuv::RebootKind::kWarm, true},
    {"warm", rejuv::RebootKind::kWarm, false},
    {"saved", rejuv::RebootKind::kSaved, false},
    {"cold", rejuv::RebootKind::kCold, false},
};
constexpr std::size_t kLadderCount = 4;

/// Per-VM availability over a one-hour window: one planned supervised
/// rejuvenation, then steady unplanned VMM crashes/hangs at `rate` per
/// check, each answered by a fresh Supervisor ladder. The observer rides
/// along so micro-attempt counters reach the merged point metrics.
exp::ReplicationResult microrec_replication(const Ladder& ladder, double rate,
                                            std::uint64_t seed) {
  Testbed tb(seed);
  tb.host->obs().set_enabled(true);
  tb.add_vms(4, sim::kGiB, Testbed::ServiceMix::kJboss);
  std::vector<std::unique_ptr<workload::Prober>> probers;
  for (auto& g : tb.guests) {
    auto* svc = g->find_service("jboss");
    probers.push_back(std::make_unique<workload::Prober>(
        tb.sim, workload::Prober::Config{},
        [g = g.get(), svc] { return g->service_reachable(*svc); }));
    probers.back()->start();
  }
  tb.sim.run_for(sim::kSecond);

  // Arm only the steady VMM kinds: this sweep is about unplanned failures,
  // not about the planned pass's own mechanisms misbehaving. Hangs are
  // modelled at half the crash rate -- rarer, and costlier to detect.
  fault::FaultConfig faults;
  faults.vmm_crash_rate = rate;
  faults.vmm_hang_rate = rate / 2.0;
  tb.host->configure_faults(faults);

  rejuv::SupervisorConfig scfg;
  scfg.preferred = ladder.planned;
  if (ladder.micro) {
    scfg.micro.enabled = true;
    scfg.micro.success_rate = 0.85;  // ReHype's reported recovery rate
  }

  const sim::SimTime start = tb.sim.now();
  const sim::SimTime end = start + sim::kHour;

  // The planned pass owns its Supervisor; unplanned arrivals go through
  // the reusable recovery driver (absorb while any ladder owns the host,
  // else a fresh Supervisor per failure).
  rejuv::Supervisor planned(*tb.host, tb.guest_ptrs(), scfg);
  planned.run([](const rejuv::SupervisorReport&) {});

  rejuv::RecoveryDriver driver(*tb.host, tb.guest_ptrs(), scfg);
  fault::SteadyFaultProcess steady(
      tb.sim, tb.host->faults(),
      {.check_interval = 2 * sim::kMinute});
  steady.start([&](fault::FaultKind kind) {
    driver.on_failure(kind, [&steady](const rejuv::RecoveryDriver::Outcome&) {
      steady.resume();
    });
  });
  tb.sim.run_until(end);
  steady.stop();

  double downtime = 0;
  for (auto& p : probers) {
    p->stop();
    downtime += static_cast<double>(p->total_downtime(start, end));
  }
  const double window =
      static_cast<double>(end - start) * static_cast<double>(probers.size());
  exp::ReplicationResult out;
  out.values = {1.0 - downtime / window};
  out.metrics = std::move(tb.host->obs().metrics());
  return out;
}

/// Renders the micro-recovery counters of one point's merged registry.
std::string micro_counters(const obs::MetricsRegistry& m) {
  std::string out;
  for (const auto& c : m.counters()) {
    const bool micro = c.name == "supervisor.micro_attempts" ||
                       c.name == "supervisor.micro_recoveries" ||
                       c.name.rfind("supervisor.recovery.micro", 0) == 0;
    if (!micro || c.value == 0) continue;
    if (!out.empty()) out += ", ";
    out += c.name.substr(std::strlen("supervisor.")) + " x" +
           std::to_string(c.value);
  }
  return out.empty() ? "none" : out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<double> rates = {0.0, 0.05, 0.1, 0.2, 0.4};
  std::string out_path = "BENCH_microrec.json";
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fault-rate") == 0 && i + 1 < argc) {
      rates = rh::bench::parse_value_list("--fault-rate", argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  const auto opt = rh::bench::SweepOptions::parse(
      static_cast<int>(rest.size()), rest.data());

  rh::bench::print_header(
      "Unplanned-crash resilience: availability vs steady VMM fault rate");
  std::printf("  [4 JBoss VMs, 1 h window; one planned supervised "
              "rejuvenation plus steady\n   kVmmCrash (rate) / kVmmHang "
              "(rate/2) arrivals every 2 min; cells are per-VM\n   "
              "availability %%, mean±95%% CI over %zu replications]\n\n",
              opt.reps);

  // One grid per ladder sharing the root seed: point p of every grid is
  // rate p, so all ladders face the same replication substreams and the
  // micro-vs-warm comparison is paired, not just averaged.
  exp::GridResult grids[kLadderCount];
  for (std::size_t k = 0; k < kLadderCount; ++k) {
    grids[k] = exp::run_grid(
        opt.grid(rates.size()), [&, k](const exp::ReplicationContext& ctx) {
          return microrec_replication(kLadders[k], rates[ctx.point_index],
                                      ctx.seed);
        });
  }
  rh::bench::print_sweep_banner(grids[0], opt);

  std::printf("\n  %-12s", "fault rate");
  for (const auto& l : kLadders) std::printf(" %-22s", l.name);
  std::printf("\n");
  for (std::size_t p = 0; p < rates.size(); ++p) {
    std::printf("  %-12.3f", rates[p]);
    for (std::size_t k = 0; k < kLadderCount; ++k) {
      std::printf(" %-22s",
                  rh::bench::fmt_ci(grids[k].point(p).mean(0) * 100.0,
                                    grids[k].point(p).ci95(0) * 100.0, "%.4f")
                      .c_str());
    }
    std::printf("\n");
  }

  std::printf("\n  micro ladder recovery counters (summed over %zu "
              "replications, from the\n  merged observer metrics):\n",
              opt.reps);
  for (std::size_t p = 0; p < rates.size(); ++p) {
    std::printf("  rate %-7.3f %s\n", rates[p],
                micro_counters(grids[0].point(p).merged_metrics()).c_str());
  }

  // The gate metric: micro's availability at the highest swept rate. This
  // is where the rungs separate most, so a regression in the in-place
  // recovery path moves it first.
  const std::size_t base = rates.size() - 1;
  std::printf("\n  availability_at_base_rate (micro @ rate %.3f): %.6f\n",
              rates[base], grids[0].point(base).mean(0));

  if (out_path.empty()) return 0;
  std::string json = "{\n  \"benchmark\": \"microrecovery_fault_sweep\",\n";
  json += "  \"workload\": \"planned supervised rejuvenation of 4 JBoss VMs "
          "plus steady VMM crash/hang arrivals, 1 h window\",\n";
  json += "  \"replications_per_point\": " + std::to_string(opt.reps) + ",\n";
  json += "  \"root_seed\": " + std::to_string(opt.root_seed) + ",\n";
  char buf[160];
  std::snprintf(buf, sizeof buf, "  \"base_fault_rate\": %.6f,\n",
                rates[base]);
  json += buf;
  std::snprintf(buf, sizeof buf, "  \"availability_at_base_rate\": %.8f,\n",
                grids[0].point(base).mean(0));
  json += buf;
  json += "  \"points\": [\n";
  for (std::size_t p = 0; p < rates.size(); ++p) {
    std::snprintf(buf, sizeof buf, "    {\"fault_rate\": %.6f", rates[p]);
    json += buf;
    for (std::size_t k = 0; k < kLadderCount; ++k) {
      std::snprintf(buf, sizeof buf,
                    ", \"%s_availability\": %.8f, \"%s_ci95\": %.8f",
                    kLadders[k].name, grids[k].point(p).mean(0),
                    kLadders[k].name, grids[k].point(p).ci95(0));
      json += buf;
    }
    json += p + 1 < rates.size() ? "},\n" : "}\n";
  }
  json += "  ]\n}\n";
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("  wrote %s\n", out_path.c_str());
  return 0;
}
