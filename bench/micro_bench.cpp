// Microbenchmarks of the simulator's hot paths (google-benchmark).
//
// These measure *wall-clock* performance of the simulation substrate --
// event queue, P2M table, frame allocator, page cache, and a full warm
// reboot -- so regressions in the simulator itself are visible.
#include <benchmark/benchmark.h>

#include "guest/page_cache.hpp"
#include "mm/frame_allocator.hpp"
#include "mm/p2m_table.hpp"
#include "simcore/event_queue.hpp"
#include "simcore/legacy_heap_queue.hpp"
#include "simcore/random.hpp"
#include "simcore/simulation.hpp"
#include "warm_run_support.hpp"

namespace {

using namespace rh;

// Scheduler benchmarks are templated over the queue so the calendar queue and
// the preserved legacy binary-heap queue run the identical workload; compare
// BM_EventQueue* against BM_LegacyHeapQueue* for the speedup. sched_bench
// runs the same comparison standalone and emits BENCH_sched.json.
template <typename Queue>
void BM_QueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Queue q;
    sim::Rng rng(1);
    for (std::size_t i = 0; i < n; ++i) {
      q.push(static_cast<sim::SimTime>(rng.next() % 1000000), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QueuePushPop<sim::EventQueue>)
    ->Name("BM_EventQueuePushPop")
    ->Arg(1024)
    ->Arg(65536);
BENCHMARK(BM_QueuePushPop<sim::LegacyHeapQueue>)
    ->Name("BM_LegacyHeapQueuePushPop")
    ->Arg(1024)
    ->Arg(65536);

template <typename Queue>
void BM_QueueCancelHeavy(benchmark::State& state) {
  // Retransmission-timer pattern: most scheduled events are cancelled
  // before they fire.
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> ids(n);
  for (auto _ : state) {
    Queue q;
    sim::Rng rng(3);
    for (std::size_t i = 0; i < n; ++i) {
      ids[i] = static_cast<std::uint64_t>(
          q.push(static_cast<sim::SimTime>(rng.next() % 1000000), [] {}));
    }
    for (std::size_t i = 0; i < n; i += 2) benchmark::DoNotOptimize(q.cancel(ids[i]));
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QueueCancelHeavy<sim::EventQueue>)
    ->Name("BM_EventQueueCancelHeavy")
    ->Arg(65536);
BENCHMARK(BM_QueueCancelHeavy<sim::LegacyHeapQueue>)
    ->Name("BM_LegacyHeapQueueCancelHeavy")
    ->Arg(65536);

template <typename Queue>
void BM_QueueSameTimeBurst(benchmark::State& state) {
  // Cluster-wide probe rounds and parallel suspends schedule bursts at the
  // same timestamp; FIFO order within a burst is part of the contract.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Queue q;
    sim::SimTime t = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i % 64 == 0) t += 100;
      q.push(t, [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QueueSameTimeBurst<sim::EventQueue>)
    ->Name("BM_EventQueueSameTimeBurst")
    ->Arg(65536);
BENCHMARK(BM_QueueSameTimeBurst<sim::LegacyHeapQueue>)
    ->Name("BM_LegacyHeapQueueSameTimeBurst")
    ->Arg(65536);

template <typename Queue>
void BM_QueueMixedHorizon(benchmark::State& state) {
  // Microsecond TCP timers interleaved with hour/day-scale rejuvenation
  // timers, with partial drains -- the distribution the cluster runs produce.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Queue q;
    sim::Rng rng(4);
    sim::SimTime base = 0;
    for (int round = 0; round < 8; ++round) {
      for (std::size_t i = 0; i < n / 8; ++i) {
        const auto v = rng.next();
        sim::SimTime t = base;
        switch (v % 4) {
          case 0: t += static_cast<sim::SimTime>((v >> 8) % 200); break;
          case 1: t += sim::kSecond + static_cast<sim::SimTime>((v >> 8) % sim::kSecond); break;
          case 2: t += sim::kHour + static_cast<sim::SimTime>((v >> 8) % sim::kDay); break;
          default: t += static_cast<sim::SimTime>((v >> 8) % 50000); break;
        }
        q.push(t, [] {});
      }
      for (std::size_t i = q.size() / 2; i > 0; --i) {
        benchmark::DoNotOptimize(q.pop().time);
      }
      base += 25000;
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QueueMixedHorizon<sim::EventQueue>)
    ->Name("BM_EventQueueMixedHorizon")
    ->Arg(65536);
BENCHMARK(BM_QueueMixedHorizon<sim::LegacyHeapQueue>)
    ->Name("BM_LegacyHeapQueueMixedHorizon")
    ->Arg(65536);

void BM_SimulationEventChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int remaining = 100000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sim.after(1, tick);
    };
    sim.after(1, tick);
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_SimulationEventChain);

void BM_P2mPopulate(benchmark::State& state) {
  const auto pages = static_cast<mm::Pfn>(state.range(0));
  for (auto _ : state) {
    mm::P2mTable t(pages);
    for (mm::Pfn p = 0; p < pages; ++p) t.add(p, p + 7);
    benchmark::DoNotOptimize(t.populated());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * pages);
}
BENCHMARK(BM_P2mPopulate)->Arg(262144);  // 1 GiB worth of pages

void BM_FrameAllocatorCycle(benchmark::State& state) {
  mm::FrameAllocator alloc(3145728);  // 12 GiB of frames
  for (auto _ : state) {
    const auto frames = alloc.allocate(1, 262144);
    benchmark::DoNotOptimize(frames.size());
    alloc.release_all(1);
  }
}
BENCHMARK(BM_FrameAllocatorCycle);

class NullBacking final : public guest::GuestMemoryBacking {
 public:
  void mem_write(mm::Pfn pfn, hw::ContentToken token) override {
    store_[pfn] = token;
  }
  [[nodiscard]] hw::ContentToken mem_read(mm::Pfn pfn) const override {
    const auto it = store_.find(pfn);
    return it == store_.end() ? hw::kScrubbed : it->second;
  }

 private:
  std::unordered_map<mm::Pfn, hw::ContentToken> store_;
};

void BM_PageCacheLookup(benchmark::State& state) {
  NullBacking backing;
  guest::PageCache cache(backing, 0, 16384, 16);
  for (std::int64_t b = 0; b < 16384; ++b) cache.insert({1, b});
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup({1, i++ % 16384}));
  }
}
BENCHMARK(BM_PageCacheLookup);

void BM_FullWarmReboot(benchmark::State& state) {
  // Wall-clock cost of simulating one complete warm-VM reboot of a host
  // with 4 x 1 GiB VMs (setup included).
  for (auto _ : state) {
    bench_support::WarmRebootRun run(4);
    benchmark::DoNotOptimize(run.downtime_seconds);
  }
}
BENCHMARK(BM_FullWarmReboot)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
