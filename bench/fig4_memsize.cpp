// Figure 4: time for pre- and post-reboot tasks vs the memory size of a
// single VM (1..11 GiB). The paper's key contrast: Xen's suspend/resume
// scales with the image size (disk-bound), the on-memory mechanism does
// not (0.08 s / 0.9 s at 11 GiB = 0.06 % / 0.7 % of Xen's).
//
// The sweep is a replication grid on exp::run_grid: every memory size is
// replicated under independent seeds and each cell reports mean±95 % CI.
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace rh;
using bench::Testbed;

struct Row {
  int gib = 0;
  double susp = 0, resume = 0;
  double save = 0, restore = 0;
  double shutdown = 0, boot = 0;
};

Row measure(int gib, sim::Rng rng) {
  const sim::Bytes memory = static_cast<sim::Bytes>(gib) * sim::kGiB;
  Row row;
  row.gib = gib;
  {  // on-memory
    Testbed tb(rng.next());
    auto& g = tb.add_vm("vm", memory, Testbed::ServiceMix::kSsh);
    sim::SimTime t0 = tb.sim.now();
    bool done = false;
    tb.host->vmm().suspend_domain_on_memory(g.domain_id(), [&] { done = true; });
    while (!done) tb.sim.step();
    row.susp = sim::to_seconds(tb.sim.now() - t0);
    t0 = tb.sim.now();
    done = false;
    tb.host->vmm().resume_domain_on_memory("vm", &g, [&](DomainId) { done = true; });
    while (!done) tb.sim.step();
    row.resume = sim::to_seconds(tb.sim.now() - t0);
  }
  {  // Xen save/restore
    Testbed tb(rng.next());
    auto& g = tb.add_vm("vm", memory, Testbed::ServiceMix::kSsh);
    sim::SimTime t0 = tb.sim.now();
    bool done = false;
    tb.host->vmm().save_domain_to_disk(g.domain_id(), tb.host->images(),
                                       [&] { done = true; });
    while (!done) tb.sim.step();
    row.save = sim::to_seconds(tb.sim.now() - t0);
    t0 = tb.sim.now();
    done = false;
    tb.host->vmm().restore_domain_from_disk("vm", tb.host->images(), &g,
                                            [&](DomainId) { done = true; });
    while (!done) tb.sim.step();
    row.restore = sim::to_seconds(tb.sim.now() - t0);
  }
  {  // plain shutdown/boot
    Testbed tb(rng.next());
    auto& g = tb.add_vm("vm", memory, Testbed::ServiceMix::kSsh);
    sim::SimTime t0 = tb.sim.now();
    bool done = false;
    g.shutdown([&] { done = true; });
    while (!done) tb.sim.step();
    row.shutdown = sim::to_seconds(tb.sim.now() - t0);
    t0 = tb.sim.now();
    done = false;
    g.create_and_boot([&] { done = true; });
    while (!done) tb.sim.step();
    row.boot = sim::to_seconds(tb.sim.now() - t0);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = rh::bench::SweepOptions::parse(argc, argv);
  rh::bench::print_header(
      "Figure 4: pre/post-reboot task time vs VM memory size (one VM)\n"
      "paper anchors at 11 GiB: on-memory 0.08 s / 0.9 s; Xen ~133 s / ~129 s;\n"
      "shutdown/boot independent of memory size");

  const std::vector<int> gibs = {1, 3, 5, 7, 9, 11};
  enum Metric { kSusp, kResume, kSave, kRestore, kShutdown, kBoot };
  const auto result =
      exp::run_grid(opt.grid(gibs.size()), [&](const exp::ReplicationContext& ctx) {
        const Row r = measure(gibs[ctx.point_index], ctx.rng);
        exp::ReplicationResult out;
        out.values = {r.susp, r.resume, r.save, r.restore, r.shutdown, r.boot};
        return out;
      });

  rh::bench::print_sweep_banner(result, opt);
  std::printf(
      "  GiB    onmem-susp     onmem-res       xen-save    xen-restore"
      "       shutdown           boot   (s)\n");
  for (std::size_t p = 0; p < gibs.size(); ++p) {
    const auto& red = result.point(p);
    std::printf("  %-3d  %12s  %12s  %13s  %13s  %13s  %13s\n", gibs[p],
                rh::bench::fmt_ci(red.mean(kSusp), red.ci95(kSusp)).c_str(),
                rh::bench::fmt_ci(red.mean(kResume), red.ci95(kResume)).c_str(),
                rh::bench::fmt_ci(red.mean(kSave), red.ci95(kSave), "%.1f").c_str(),
                rh::bench::fmt_ci(red.mean(kRestore), red.ci95(kRestore), "%.1f").c_str(),
                rh::bench::fmt_ci(red.mean(kShutdown), red.ci95(kShutdown), "%.1f").c_str(),
                rh::bench::fmt_ci(red.mean(kBoot), red.ci95(kBoot), "%.1f").c_str());
  }
  return 0;
}
