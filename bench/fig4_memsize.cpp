// Figure 4: time for pre- and post-reboot tasks vs the memory size of a
// single VM (1..11 GiB). The paper's key contrast: Xen's suspend/resume
// scales with the image size (disk-bound), the on-memory mechanism does
// not (0.08 s / 0.9 s at 11 GiB = 0.06 % / 0.7 % of Xen's).
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace rh;
using bench::Testbed;

struct Row {
  int gib = 0;
  double susp = 0, resume = 0;
  double save = 0, restore = 0;
  double shutdown = 0, boot = 0;
};

Row measure(int gib) {
  const sim::Bytes memory = static_cast<sim::Bytes>(gib) * sim::kGiB;
  Row row;
  row.gib = gib;
  {  // on-memory
    Testbed tb;
    auto& g = tb.add_vm("vm", memory, Testbed::ServiceMix::kSsh);
    sim::SimTime t0 = tb.sim.now();
    bool done = false;
    tb.host->vmm().suspend_domain_on_memory(g.domain_id(), [&] { done = true; });
    while (!done) tb.sim.step();
    row.susp = sim::to_seconds(tb.sim.now() - t0);
    t0 = tb.sim.now();
    done = false;
    tb.host->vmm().resume_domain_on_memory("vm", &g, [&](DomainId) { done = true; });
    while (!done) tb.sim.step();
    row.resume = sim::to_seconds(tb.sim.now() - t0);
  }
  {  // Xen save/restore
    Testbed tb;
    auto& g = tb.add_vm("vm", memory, Testbed::ServiceMix::kSsh);
    sim::SimTime t0 = tb.sim.now();
    bool done = false;
    tb.host->vmm().save_domain_to_disk(g.domain_id(), tb.host->images(),
                                       [&] { done = true; });
    while (!done) tb.sim.step();
    row.save = sim::to_seconds(tb.sim.now() - t0);
    t0 = tb.sim.now();
    done = false;
    tb.host->vmm().restore_domain_from_disk("vm", tb.host->images(), &g,
                                            [&](DomainId) { done = true; });
    while (!done) tb.sim.step();
    row.restore = sim::to_seconds(tb.sim.now() - t0);
  }
  {  // plain shutdown/boot
    Testbed tb;
    auto& g = tb.add_vm("vm", memory, Testbed::ServiceMix::kSsh);
    sim::SimTime t0 = tb.sim.now();
    bool done = false;
    g.shutdown([&] { done = true; });
    while (!done) tb.sim.step();
    row.shutdown = sim::to_seconds(tb.sim.now() - t0);
    t0 = tb.sim.now();
    done = false;
    g.create_and_boot([&] { done = true; });
    while (!done) tb.sim.step();
    row.boot = sim::to_seconds(tb.sim.now() - t0);
  }
  return row;
}

}  // namespace

int main() {
  rh::bench::print_header(
      "Figure 4: pre/post-reboot task time vs VM memory size (one VM)\n"
      "paper anchors at 11 GiB: on-memory 0.08 s / 0.9 s; Xen ~133 s / ~129 s;\n"
      "shutdown/boot independent of memory size");
  std::printf(
      "  GiB  onmem-susp  onmem-res   xen-save  xen-restore   shutdown   boot\n");
  for (int gib = 1; gib <= 11; gib += 2) {
    const Row r = measure(gib);
    std::printf("  %-3d  %9.2fs  %8.2fs  %8.1fs  %10.1fs  %8.1fs  %5.1fs\n",
                r.gib, r.susp, r.resume, r.save, r.restore, r.shutdown, r.boot);
  }
  return 0;
}
