// Figure 2: the timing of OS rejuvenation around a VMM rejuvenation.
//
// (a) With the warm-VM reboot, the VMM rejuvenation is independent: the
//     OS rejuvenation timers keep their phase.
// (b) With the cold-VM reboot, the VMM rejuvenation doubles as an OS
//     rejuvenation and *reschedules* the OS timers.
//
// We run the actual policy for six weeks (OS weekly, VMM at week 4) and
// print the resulting event timeline for one VM.
#include <cstdio>

#include "bench_util.hpp"
#include "rejuv/policy.hpp"

namespace {

using namespace rh;
using bench::Testbed;

void run(rejuv::RebootKind kind) {
  Testbed tb;
  tb.add_vms(2, sim::kGiB, Testbed::ServiceMix::kSsh);
  rejuv::RejuvenationPolicy::Config cfg;
  cfg.os_interval = sim::kWeek;
  cfg.vmm_interval = 4 * sim::kWeek;
  cfg.os_stagger = sim::kHour;
  cfg.vmm_reboot_kind = kind;
  rejuv::RejuvenationPolicy policy(*tb.host, tb.guest_ptrs(), cfg);
  const sim::SimTime t0 = tb.sim.now();
  policy.start();
  tb.sim.run_until(t0 + 6 * sim::kWeek + sim::kDay);

  std::printf("\n--- %s ---\n", rejuv::to_string(kind));
  std::printf("  events for vm0 (days since start):\n");
  for (const auto& e : policy.events()) {
    if (!e.is_vmm && e.guest != 0) continue;
    std::printf("    day %5.2f  %-18s (%.0f s)\n",
                sim::to_seconds(e.start - t0) / 86400.0,
                e.is_vmm ? "VMM rejuvenation" : "OS rejuvenation",
                sim::to_seconds(e.duration));
  }
  std::printf("  (paper Fig. 2: with the cold reboot the post-VMM OS timer\n"
              "   restarts from the VMM rejuvenation; with the warm reboot\n"
              "   it keeps its weekly phase)\n");
}

}  // namespace

int main() {
  rh::bench::print_header(
      "Figure 2: rejuvenation scheduling, warm vs cold VMM reboot");
  run(rejuv::RebootKind::kWarm);
  run(rejuv::RebootKind::kCold);
  return 0;
}
