// Figure 9: total throughput of an m-host cluster while one host's VMM is
// rejuvenated -- warm-VM reboot vs cold-VM reboot vs live migration.
//
// Part 1 instantiates the paper's analytic model with this simulator's
// measured host-level numbers. Part 2 runs an actual DES cluster behind a
// load balancer through a rolling warm rejuvenation and reports the
// observed throughput dip.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "cluster/throughput_model.hpp"
#include "cluster/vm_migrator.hpp"
#include "guest/sshd.hpp"
#include "obs/export.hpp"
#include "simcore/parallel.hpp"

namespace {

using namespace rh;

void analytic_part() {
  cluster::ClusterThroughputParams p;
  p.hosts = 4;
  p.per_host_throughput = 1.0;
  // The paper's measured inputs: warm 42 s, cold 241 s (11 JBoss VMs),
  // delta = 0.69, migration 17 min at 12 % degradation.
  cluster::ClusterThroughputModel model(p);

  std::printf("\n  analytic timelines (m=4, p=1; total throughput):\n");
  std::printf("  %8s %12s %12s %12s\n", "t (s)", "warm", "cold", "migration");
  for (const double t : {0.0, 30.0, 41.9, 42.0, 120.0, 240.9, 241.0, 248.0,
                         249.5, 600.0, 1019.0, 1021.0}) {
    std::printf("  %8.1f %12.2f %12.2f %12.2f\n", t,
                model.throughput_at(cluster::ClusterStrategy::kWarm, t),
                model.throughput_at(cluster::ClusterStrategy::kCold, t),
                model.throughput_at(cluster::ClusterStrategy::kLiveMigration, t));
  }
  std::printf("\n  lost work over 30 min (throughput-seconds vs ideal m*p):\n");
  for (const auto s :
       {cluster::ClusterStrategy::kWarm, cluster::ClusterStrategy::kCold,
        cluster::ClusterStrategy::kLiveMigration}) {
    std::printf("    %-18s %10.1f\n", cluster::to_string(s),
                model.lost_work(s, 1800.0));
  }

  const auto est = cluster::estimate_migration(800 * sim::kMiB, {});
  std::printf("\n  live-migration model check: 800 MiB VM migrates in %.0f s "
              "(paper/Clark: 72 s), stop-and-copy %.2f s, %d rounds\n",
              sim::to_seconds(est.total), sim::to_seconds(est.stop_and_copy),
              est.rounds);
  const auto evac = cluster::estimate_host_evacuation(11, sim::kGiB, {});
  std::printf("  evacuating 11 x 1 GiB: %.1f min (paper: ~17 min)\n",
              sim::to_seconds(evac) / 60.0);
}

struct SimRow {
  double baseline = 0, during = 0, after = 0;
  double longest_host_s = 0;
  std::uint64_t deferred = 0;
};

SimRow simulated_once(std::uint64_t seed, const std::string& trace_path = "") {
  sim::Simulation s;
  cluster::Cluster::Config cfg;
  cfg.hosts = 3;
  cfg.vms_per_host = 4;
  cfg.seed = seed;
  cfg.calib.timing_jitter = bench::g_replication_jitter;
  // Observability is free when off and RNG-free when on, so the --trace
  // run measures the same numbers as the default one.
  cfg.observe = !trace_path.empty();
  cluster::Cluster cl(s, cfg);
  bool ready = false;
  cl.start([&ready] { ready = true; });
  while (!ready) s.step();

  cluster::ClusterClientFleet fleet(s, cl.balancer(), {});
  fleet.start();
  s.run_for(30 * sim::kSecond);
  const sim::SimTime t0 = s.now();
  const double baseline = fleet.completions().rate_between(
      t0 - 20 * sim::kSecond, t0);

  bool done = false;
  cl.rolling_rejuvenation(rejuv::RebootKind::kWarm, [&done] { done = true; });
  while (!done) s.step();
  const sim::SimTime t1 = s.now();
  s.run_for(60 * sim::kSecond);
  fleet.stop();

  SimRow row;
  row.baseline = baseline;
  row.during = fleet.completions().rate_between(t0, t1);
  // Skip the last host's 25 s creation-artifact window for the "after"
  // sample.
  row.after =
      fleet.completions().rate_between(t1 + 26 * sim::kSecond, t1 + 56 * sim::kSecond);
  for (const auto d : cl.rejuvenation_durations()) {
    row.longest_host_s = std::max(row.longest_host_s, sim::to_seconds(d));
  }
  row.deferred = cl.balancer().rejected();
  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    obs::ChromeTraceWriter writer(os);
    for (int h = 0; h < cfg.hosts; ++h) {
      writer.add_process(h, "host" + std::to_string(h), cl.host(h).obs());
    }
  }
  return row;
}

// --workers N: the same scenario on the conservative parallel engine
// (DESIGN.md §11), one partition per host plus the control plane. Prints
// a deterministic digest so CI can diff `--workers 1` against
// `--workers 4` -- equal digests mean the worker count is unobservable.
void parallel_once(std::size_t workers, std::uint64_t seed) {
  const int hosts = 3;
  sim::ParallelSimulation engine({.partitions = hosts + 1, .workers = workers});
  cluster::Cluster::Config cfg;
  cfg.hosts = hosts;
  cfg.vms_per_host = 4;
  cfg.seed = seed;
  cfg.engine = &engine;
  cluster::Cluster cl(engine.partition(0), cfg);
  cluster::ClusterClientFleet fleet(engine.partition(0), cl.balancer(), {});

  bool ready = false;
  cl.start([&ready] { ready = true; });
  engine.run_while([&ready] { return !ready; });
  engine.run_on(0, [&fleet] { fleet.start(); });
  engine.run_until(engine.partition(0).now() + 30 * sim::kSecond);
  bool done = false;
  engine.run_on(0, [&cl, &done] {
    cl.rolling_rejuvenation(rejuv::RebootKind::kWarm, [&done] { done = true; });
  });
  engine.run_while([&done] { return !done; });
  engine.run_until(engine.partition(0).now() + 60 * sim::kSecond);

  std::uint64_t digest = 0;
  const auto mix = [&digest](std::uint64_t v) {
    digest ^= v + 0x9e3779b97f4a7c15ull + (digest << 6) + (digest >> 2);
  };
  for (std::int32_t p = 0; p < engine.partition_count(); ++p) {
    mix(static_cast<std::uint64_t>(engine.partition(p).now()));
    mix(engine.partition(p).executed_events());
  }
  mix(static_cast<std::uint64_t>(fleet.completions().total()));
  mix(cl.balancer().dispatched());
  mix(cl.balancer().rejected());
  for (const auto d : cl.rejuvenation_durations()) {
    mix(static_cast<std::uint64_t>(d));
  }
  mix(engine.messages_routed());
  std::printf("  parallel DES cluster: hosts=%d workers=%zu windows=%llu "
              "messages=%llu events=%llu digest=%016llx\n",
              hosts, workers,
              static_cast<unsigned long long>(engine.windows_executed()),
              static_cast<unsigned long long>(engine.messages_routed()),
              static_cast<unsigned long long>(engine.total_executed_events()),
              static_cast<unsigned long long>(digest));
}

// The paper's stated future work: empirically evaluate migration-based
// rejuvenation. Evacuate a host to a spare by live migration, rejuvenate
// the (now empty) host, migrate everything back.
struct MigrationRow {
  double total_min = 0;
  double worst_downtime_s = 0;
};

MigrationRow migration_based_once(sim::Rng rng) {
  sim::Simulation s;
  const Calibration calib = bench::replication_calibration();
  vmm::Host active(s, calib, rng.next());
  vmm::Host spare(s, calib, rng.next());
  active.instant_start();
  spare.instant_start();
  constexpr int kVms = 4;
  std::vector<std::unique_ptr<guest::GuestOs>> vms;
  int booted = 0;
  for (int i = 0; i < kVms; ++i) {
    vms.push_back(std::make_unique<guest::GuestOs>(
        active, "vm" + std::to_string(i), sim::kGiB));
    vms.back()->add_service(std::make_unique<guest::SshService>());
    vms.back()->create_and_boot([&booted] { ++booted; });
  }
  while (booted < kVms) s.step();

  std::vector<std::unique_ptr<workload::Prober>> probers;
  for (auto& vm : vms) {
    auto* ssh = vm->find_service("sshd");
    probers.push_back(std::make_unique<workload::Prober>(
        s, workload::Prober::Config{10 * sim::kMillisecond},
        [vm = vm.get(), ssh] { return vm->service_reachable(*ssh); }));
    probers.back()->start();
  }
  const sim::SimTime start = s.now();

  // Evacuate, rejuvenate, return -- sequentially, like xm migrate would.
  cluster::VmMigrator migrator;
  std::function<void(std::size_t, vmm::Host&, vmm::Host&, std::function<void()>)>
      move_all = [&](std::size_t i, vmm::Host& from, vmm::Host& to,
                     std::function<void()> done) {
        if (i == vms.size()) {
          done();
          return;
        }
        (void)from;
        migrator.migrate(*vms[i], to,
                         [&, i, done](const cluster::VmMigrator::Result&) {
                           move_all(i + 1, from, to, std::move(done));
                         });
      };
  bool finished = false;
  move_all(0, active, spare, [&] {
    // The active host is empty: plain reboot (nothing to preserve), then
    // bring every VM home.
    active.shutdown_dom0([&] {
      active.hardware_reboot([&] {
        move_all(0, spare, active, [&] { finished = true; });
      });
    });
  });
  while (!finished && s.pending_events() > 0) s.step();
  s.run_for(sim::kSecond);

  MigrationRow row;
  for (auto& p : probers) {
    p->stop();
    row.worst_downtime_s =
        std::max(row.worst_downtime_s,
                 sim::to_seconds(p->total_downtime(start, s.now())));
  }
  row.total_min = sim::to_seconds(s.now() - start) / 60.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  // --trace FILE: additionally run one observed cluster pass and write a
  // Perfetto-loadable Chrome trace there. --workers N: run ONLY the
  // partitioned-engine scenario and print its digest (CI diffs N=1 vs
  // N=4). Both are stripped before SweepOptions so the default
  // invocation (and its output) is untouched.
  std::string trace_path;
  std::size_t par_workers = 0;
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      par_workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else {
      rest.push_back(argv[i]);
    }
  }
  const auto opt = rh::bench::SweepOptions::parse(
      static_cast<int>(rest.size()), rest.data());
  if (par_workers > 0) {
    parallel_once(par_workers, opt.root_seed);
    return 0;
  }
  rh::bench::print_header(
      "Figure 9 / Section 6: cluster throughput during rejuvenation");
  using rh::bench::fmt_ci;

  // The analytic model is closed-form: one evaluation, no replication.
  analytic_part();

  // DES cluster: one grid point, replicated under independent seeds.
  enum { kBase, kDuring, kAfter, kLongest, kDeferred };
  const auto sim_grid =
      exp::run_grid(opt.grid(1), [](const exp::ReplicationContext& ctx) {
        const SimRow r = simulated_once(ctx.seed);
        exp::ReplicationResult out;
        out.values = {r.baseline, r.during, r.after, r.longest_host_s,
                      static_cast<double>(r.deferred)};
        return out;
      });
  const auto& sg = sim_grid.point(0);
  std::printf("\n  DES cluster (m=3 hosts x 4 VMs, rolling warm rejuvenation; "
              "%zu replications, %zu threads):\n",
              opt.reps, sim_grid.threads_used);
  std::printf("    baseline %s req/s; during rolling rejuvenation %s req/s "
              "(expect ~(m-1)/m = %.0f); after %s req/s\n",
              fmt_ci(sg.mean(kBase), sg.ci95(kBase), "%.0f").c_str(),
              fmt_ci(sg.mean(kDuring), sg.ci95(kDuring), "%.0f").c_str(),
              sg.mean(kBase) * 2.0 / 3.0,
              fmt_ci(sg.mean(kAfter), sg.ci95(kAfter), "%.0f").c_str());
  std::printf("    longest per-host rejuvenation: %s s\n",
              fmt_ci(sg.mean(kLongest), sg.ci95(kLongest), "%.1f").c_str());
  std::printf("    service downtime at the load balancer: zero requests were "
              "permanently failed; %s were deferred and retried\n",
              fmt_ci(sg.mean(kDeferred), sg.ci95(kDeferred), "%.0f").c_str());
  if (!trace_path.empty()) {
    simulated_once(opt.root_seed, trace_path);
    std::printf("    wrote Chrome trace of one observed pass to %s\n",
                trace_path.c_str());
  }

  // Migration-based rejuvenation (the paper's future work), replicated.
  enum { kTotalMin, kWorstDt };
  const auto mig_grid =
      exp::run_grid(opt.grid(1), [](const exp::ReplicationContext& ctx) {
        const MigrationRow r = migration_based_once(ctx.rng);
        exp::ReplicationResult out;
        out.values = {r.total_min, r.worst_downtime_s};
        return out;
      });
  const auto& mg = mig_grid.point(0);
  std::printf("\n  migration-based rejuvenation, measured (1 host + 1 spare, "
              "4 x 1 GiB VMs; %zu replications):\n", opt.reps);
  std::printf("    total procedure (evacuate + reboot + return): %s min\n",
              fmt_ci(mg.mean(kTotalMin), mg.ci95(kTotalMin), "%.1f").c_str());
  std::printf("    worst per-VM service downtime: %s s (stop-and-copy only "
              "-- vs 42 s warm, 241 s cold)\n",
              fmt_ci(mg.mean(kWorstDt), mg.ci95(kWorstDt), "%.2f").c_str());
  std::printf("    but a spare host was occupied the whole time: cluster "
              "capacity (m-1)p throughout.\n");
  return 0;
}
