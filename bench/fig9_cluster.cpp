// Figure 9: total throughput of an m-host cluster while one host's VMM is
// rejuvenated -- warm-VM reboot vs cold-VM reboot vs live migration.
//
// Part 1 instantiates the paper's analytic model with this simulator's
// measured host-level numbers. Part 2 runs an actual DES cluster behind a
// load balancer through a rolling warm rejuvenation and reports the
// observed throughput dip.
#include <cstdio>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "cluster/throughput_model.hpp"
#include "cluster/vm_migrator.hpp"
#include "guest/sshd.hpp"

namespace {

using namespace rh;

void analytic_part() {
  cluster::ClusterThroughputParams p;
  p.hosts = 4;
  p.per_host_throughput = 1.0;
  // The paper's measured inputs: warm 42 s, cold 241 s (11 JBoss VMs),
  // delta = 0.69, migration 17 min at 12 % degradation.
  cluster::ClusterThroughputModel model(p);

  std::printf("\n  analytic timelines (m=4, p=1; total throughput):\n");
  std::printf("  %8s %12s %12s %12s\n", "t (s)", "warm", "cold", "migration");
  for (const double t : {0.0, 30.0, 41.9, 42.0, 120.0, 240.9, 241.0, 248.0,
                         249.5, 600.0, 1019.0, 1021.0}) {
    std::printf("  %8.1f %12.2f %12.2f %12.2f\n", t,
                model.throughput_at(cluster::ClusterStrategy::kWarm, t),
                model.throughput_at(cluster::ClusterStrategy::kCold, t),
                model.throughput_at(cluster::ClusterStrategy::kLiveMigration, t));
  }
  std::printf("\n  lost work over 30 min (throughput-seconds vs ideal m*p):\n");
  for (const auto s :
       {cluster::ClusterStrategy::kWarm, cluster::ClusterStrategy::kCold,
        cluster::ClusterStrategy::kLiveMigration}) {
    std::printf("    %-18s %10.1f\n", cluster::to_string(s),
                model.lost_work(s, 1800.0));
  }

  const auto est = cluster::estimate_migration(800 * sim::kMiB, {});
  std::printf("\n  live-migration model check: 800 MiB VM migrates in %.0f s "
              "(paper/Clark: 72 s), stop-and-copy %.2f s, %d rounds\n",
              sim::to_seconds(est.total), sim::to_seconds(est.stop_and_copy),
              est.rounds);
  const auto evac = cluster::estimate_host_evacuation(11, sim::kGiB, {});
  std::printf("  evacuating 11 x 1 GiB: %.1f min (paper: ~17 min)\n",
              sim::to_seconds(evac) / 60.0);
}

void simulated_part() {
  sim::Simulation s;
  cluster::Cluster::Config cfg;
  cfg.hosts = 3;
  cfg.vms_per_host = 4;
  cluster::Cluster cl(s, cfg);
  bool ready = false;
  cl.start([&ready] { ready = true; });
  while (!ready) s.step();

  cluster::ClusterClientFleet fleet(s, cl.balancer(), {});
  fleet.start();
  s.run_for(30 * sim::kSecond);
  const sim::SimTime t0 = s.now();
  const double baseline = fleet.completions().rate_between(
      t0 - 20 * sim::kSecond, t0);

  bool done = false;
  cl.rolling_rejuvenation(rejuv::RebootKind::kWarm, [&done] { done = true; });
  while (!done) s.step();
  const sim::SimTime t1 = s.now();
  s.run_for(60 * sim::kSecond);
  fleet.stop();

  const double during = fleet.completions().rate_between(t0, t1);
  // Skip the last host's 25 s creation-artifact window for the "after"
  // sample.
  const double after =
      fleet.completions().rate_between(t1 + 26 * sim::kSecond, t1 + 56 * sim::kSecond);
  std::printf("\n  DES cluster (m=3 hosts x 4 VMs, rolling warm rejuvenation):\n");
  std::printf("    baseline %.0f req/s; during rolling rejuvenation %.0f req/s "
              "(expect ~(m-1)/m = %.0f); after %.0f req/s\n",
              baseline, during, baseline * 2.0 / 3.0, after);
  std::printf("    per-host rejuvenation durations:");
  for (const auto d : cl.rejuvenation_durations()) {
    std::printf(" %.1f s", sim::to_seconds(d));
  }
  std::printf("\n    service downtime at the load balancer: zero requests were "
              "permanently failed; %llu were deferred and retried\n",
              static_cast<unsigned long long>(cl.balancer().rejected()));
}

// The paper's stated future work: empirically evaluate migration-based
// rejuvenation. Evacuate a host to a spare by live migration, rejuvenate
// the (now empty) host, migrate everything back.
void migration_based_part() {
  sim::Simulation s;
  vmm::Host active(s, Calibration::paper_testbed(), 1);
  vmm::Host spare(s, Calibration::paper_testbed(), 2);
  active.instant_start();
  spare.instant_start();
  constexpr int kVms = 4;
  std::vector<std::unique_ptr<guest::GuestOs>> vms;
  int booted = 0;
  for (int i = 0; i < kVms; ++i) {
    vms.push_back(std::make_unique<guest::GuestOs>(
        active, "vm" + std::to_string(i), sim::kGiB));
    vms.back()->add_service(std::make_unique<guest::SshService>());
    vms.back()->create_and_boot([&booted] { ++booted; });
  }
  while (booted < kVms) s.step();

  std::vector<std::unique_ptr<workload::Prober>> probers;
  for (auto& vm : vms) {
    auto* ssh = vm->find_service("sshd");
    probers.push_back(std::make_unique<workload::Prober>(
        s, workload::Prober::Config{10 * sim::kMillisecond},
        [vm = vm.get(), ssh] { return vm->service_reachable(*ssh); }));
    probers.back()->start();
  }
  const sim::SimTime start = s.now();

  // Evacuate, rejuvenate, return -- sequentially, like xm migrate would.
  cluster::VmMigrator migrator;
  std::function<void(std::size_t, vmm::Host&, vmm::Host&, std::function<void()>)>
      move_all = [&](std::size_t i, vmm::Host& from, vmm::Host& to,
                     std::function<void()> done) {
        if (i == vms.size()) {
          done();
          return;
        }
        (void)from;
        migrator.migrate(*vms[i], to,
                         [&, i, done](const cluster::VmMigrator::Result&) {
                           move_all(i + 1, from, to, std::move(done));
                         });
      };
  bool finished = false;
  move_all(0, active, spare, [&] {
    // The active host is empty: plain reboot (nothing to preserve), then
    // bring every VM home.
    active.shutdown_dom0([&] {
      active.hardware_reboot([&] {
        move_all(0, spare, active, [&] { finished = true; });
      });
    });
  });
  while (!finished && s.pending_events() > 0) s.step();
  s.run_for(sim::kSecond);

  double worst_downtime = 0;
  for (auto& p : probers) {
    p->stop();
    worst_downtime =
        std::max(worst_downtime,
                 sim::to_seconds(p->total_downtime(start, s.now())));
  }
  std::printf("\n  migration-based rejuvenation, measured (1 host + 1 spare, "
              "%d x 1 GiB VMs):\n", kVms);
  std::printf("    total procedure (evacuate + reboot + return): %.1f min\n",
              sim::to_seconds(s.now() - start) / 60.0);
  std::printf("    worst per-VM service downtime: %.2f s (stop-and-copy only "
              "-- vs 42 s warm, 241 s cold)\n", worst_downtime);
  std::printf("    but a spare host was occupied the whole time: cluster "
              "capacity (m-1)p throughout.\n");
}

}  // namespace

int main() {
  rh::bench::print_header(
      "Figure 9 / Section 6: cluster throughput during rejuvenation");
  analytic_part();
  simulated_part();
  migration_based_part();
  return 0;
}
