// Figure 9: total throughput of an m-host cluster while one host's VMM is
// rejuvenated -- warm-VM reboot vs cold-VM reboot vs live migration.
//
// Part 1 instantiates the paper's analytic model with this simulator's
// measured host-level numbers. Part 2 runs an actual DES cluster behind a
// load balancer through a rolling warm rejuvenation and reports the
// observed throughput dip.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "cluster/session_fleet.hpp"
#include "cluster/throughput_model.hpp"
#include "cluster/vm_migrator.hpp"
#include "guest/sshd.hpp"
#include "obs/export.hpp"
#include "simcore/parallel.hpp"

namespace {

using namespace rh;

void analytic_part() {
  cluster::ClusterThroughputParams p;
  p.hosts = 4;
  p.per_host_throughput = 1.0;
  // The paper's measured inputs: warm 42 s, cold 241 s (11 JBoss VMs),
  // delta = 0.69, migration 17 min at 12 % degradation.
  cluster::ClusterThroughputModel model(p);

  std::printf("\n  analytic timelines (m=4, p=1; total throughput):\n");
  std::printf("  %8s %12s %12s %12s\n", "t (s)", "warm", "cold", "migration");
  for (const double t : {0.0, 30.0, 41.9, 42.0, 120.0, 240.9, 241.0, 248.0,
                         249.5, 600.0, 1019.0, 1021.0}) {
    std::printf("  %8.1f %12.2f %12.2f %12.2f\n", t,
                model.throughput_at(cluster::ClusterStrategy::kWarm, t),
                model.throughput_at(cluster::ClusterStrategy::kCold, t),
                model.throughput_at(cluster::ClusterStrategy::kLiveMigration, t));
  }
  std::printf("\n  lost work over 30 min (throughput-seconds vs ideal m*p):\n");
  for (const auto s :
       {cluster::ClusterStrategy::kWarm, cluster::ClusterStrategy::kCold,
        cluster::ClusterStrategy::kLiveMigration}) {
    std::printf("    %-18s %10.1f\n", cluster::to_string(s),
                model.lost_work(s, 1800.0));
  }

  const auto est = cluster::estimate_migration(800 * sim::kMiB, {});
  std::printf("\n  live-migration model check: 800 MiB VM migrates in %.0f s "
              "(paper/Clark: 72 s), stop-and-copy %.2f s, %d rounds\n",
              sim::to_seconds(est.total), sim::to_seconds(est.stop_and_copy),
              est.rounds);
  const auto evac = cluster::estimate_host_evacuation(11, sim::kGiB, {});
  std::printf("  evacuating 11 x 1 GiB: %.1f min (paper: ~17 min)\n",
              sim::to_seconds(evac) / 60.0);
}

struct SimRow {
  double baseline = 0, during = 0, after = 0;
  double longest_host_s = 0;
  std::uint64_t deferred = 0;
};

SimRow simulated_once(std::uint64_t seed, const std::string& trace_path = "") {
  sim::Simulation s;
  cluster::Cluster::Config cfg;
  cfg.hosts = 3;
  cfg.vms_per_host = 4;
  cfg.seed = seed;
  cfg.calib.timing_jitter = bench::g_replication_jitter;
  // Observability is free when off and RNG-free when on, so the --trace
  // run measures the same numbers as the default one.
  cfg.observe = !trace_path.empty();
  cluster::Cluster cl(s, cfg);
  bool ready = false;
  cl.start([&ready] { ready = true; });
  while (!ready) s.step();

  cluster::ClusterClientFleet fleet(s, cl.balancer(), {});
  fleet.start();
  s.run_for(30 * sim::kSecond);
  const sim::SimTime t0 = s.now();
  const double baseline = fleet.completions().rate_between(
      t0 - 20 * sim::kSecond, t0);

  bool done = false;
  cl.rolling_rejuvenation(rejuv::RebootKind::kWarm, [&done] { done = true; });
  while (!done) s.step();
  const sim::SimTime t1 = s.now();
  s.run_for(60 * sim::kSecond);
  fleet.stop();

  SimRow row;
  row.baseline = baseline;
  row.during = fleet.completions().rate_between(t0, t1);
  // Skip the last host's 25 s creation-artifact window for the "after"
  // sample.
  row.after =
      fleet.completions().rate_between(t1 + 26 * sim::kSecond, t1 + 56 * sim::kSecond);
  for (const auto d : cl.rejuvenation_durations()) {
    row.longest_host_s = std::max(row.longest_host_s, sim::to_seconds(d));
  }
  row.deferred = cl.balancer().rejected();
  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    obs::ChromeTraceWriter writer(os);
    for (int h = 0; h < cfg.hosts; ++h) {
      writer.add_process(h, "host" + std::to_string(h), cl.host(h).obs());
    }
  }
  return row;
}

// --workers N: the same scenario on the conservative parallel engine
// (DESIGN.md §11), one partition per host plus the control plane. Prints
// a deterministic digest so CI can diff `--workers 1` against
// `--workers 4` -- equal digests mean the worker count is unobservable.
void parallel_once(std::size_t workers, std::uint64_t seed) {
  const int hosts = 3;
  sim::ParallelSimulation engine({.partitions = hosts + 1, .workers = workers});
  cluster::Cluster::Config cfg;
  cfg.hosts = hosts;
  cfg.vms_per_host = 4;
  cfg.seed = seed;
  cfg.engine = &engine;
  cluster::Cluster cl(engine.partition(0), cfg);
  cluster::ClusterClientFleet fleet(engine.partition(0), cl.balancer(), {});

  bool ready = false;
  cl.start([&ready] { ready = true; });
  engine.run_while([&ready] { return !ready; });
  engine.run_on(0, [&fleet] { fleet.start(); });
  engine.run_until(engine.partition(0).now() + 30 * sim::kSecond);
  bool done = false;
  engine.run_on(0, [&cl, &done] {
    cl.rolling_rejuvenation(rejuv::RebootKind::kWarm, [&done] { done = true; });
  });
  engine.run_while([&done] { return !done; });
  engine.run_until(engine.partition(0).now() + 60 * sim::kSecond);

  std::uint64_t digest = 0;
  const auto mix = [&digest](std::uint64_t v) {
    digest ^= v + 0x9e3779b97f4a7c15ull + (digest << 6) + (digest >> 2);
  };
  for (std::int32_t p = 0; p < engine.partition_count(); ++p) {
    mix(static_cast<std::uint64_t>(engine.partition(p).now()));
    mix(engine.partition(p).executed_events());
  }
  mix(static_cast<std::uint64_t>(fleet.completions().total()));
  mix(cl.balancer().dispatched());
  mix(cl.balancer().rejected());
  for (const auto d : cl.rejuvenation_durations()) {
    mix(static_cast<std::uint64_t>(d));
  }
  mix(engine.messages_routed());
  std::printf("  parallel DES cluster: hosts=%d workers=%zu windows=%llu "
              "messages=%llu events=%llu digest=%016llx\n",
              hosts, workers,
              static_cast<unsigned long long>(engine.windows_executed()),
              static_cast<unsigned long long>(engine.messages_routed()),
              static_cast<unsigned long long>(engine.total_executed_events()),
              static_cast<unsigned long long>(digest));
}

// --hosts/--shards: the datacenter-scale scenario (DESIGN.md §12). H
// hosts of slimmed-down VMs behind S balancer shards (one partition
// each), a struct-of-arrays SessionFleet holding the closed-loop
// sessions, and wave-based rolling rejuvenation running through the
// measurement window. Emits pooled p99/p999 availability and session
// throughput into BENCH_scale.json plus a worker-count-invariant digest
// line (CI diffs --workers 1 vs 4 at both --shards 1 and --shards 8).
struct ScaleOptions {
  int hosts = 100;
  int shards = 4;
  int wave = 8;
  int vms_per_host = 2;
  std::uint64_t sessions = 0;  ///< 0: 1100 per host (>= 1M at 1000 hosts)
  double sim_seconds = 6.0;
  std::size_t workers = 1;
  std::uint64_t seed = rh::bench::kLegacyBenchSeed;
  std::string out = "BENCH_scale.json";
};

int run_scale(const ScaleOptions& o) {
  const auto wall_start = std::chrono::steady_clock::now();
  sim::ParallelSimulation engine(
      {.partitions = 1 + o.shards + o.hosts, .workers = o.workers});
  cluster::Cluster::Config cfg;
  cfg.hosts = o.hosts;
  cfg.vms_per_host = o.vms_per_host;
  cfg.seed = o.seed;
  cfg.shards = o.shards;
  cfg.engine = &engine;
  // Slim per-host footprint so 1000 hosts fit: small machines, small VMs,
  // little replicated content. The figure measures control-plane scaling,
  // not per-host memory realism.
  cfg.calib.machine.ram = sim::kGiB;
  cfg.calib.dom0_memory = 256 * sim::kMiB;
  cfg.vm_memory = 128 * sim::kMiB;
  cfg.files_per_vm = 4;
  cfg.file_size = 32 * sim::kKiB;
  // A fatter lookahead (500 us one-way) keeps the window count -- and the
  // per-window barrier cost across 1000+ partitions -- affordable.
  cfg.calib.link.latency = 500 * sim::kMicrosecond;
  cluster::Cluster cl(engine.partition(0), cfg);

  const std::uint64_t sessions =
      o.sessions != 0 ? o.sessions
                      : 1100ull * static_cast<std::uint64_t>(o.hosts);
  cluster::SessionFleet::Config fc;
  fc.sessions = sessions;
  fc.think_base = 20 * sim::kSecond;
  fc.think_spread = 20 * sim::kSecond;
  fc.retry_interval = sim::kSecond;
  fc.tick = 250 * sim::kMillisecond;
  cluster::SessionFleet fleet(*cl.sharded_balancer(), fc);

  bool ready = false;
  cl.start([&ready] { ready = true; });
  engine.run_while([&ready] { return !ready; });
  fleet.start(engine);
  // Warm-up: let the staggered first requests reach steady state before
  // the measurement window opens.
  engine.run_until(engine.partition(0).now() + 2 * sim::kSecond);
  const sim::SimTime meas_start = engine.partition(0).now();
  fleet.begin_window(meas_start);

  cluster::Cluster::WaveConfig wc;
  wc.wave_size = o.wave;
  wc.kind = rejuv::RebootKind::kWarm;
  bool waves_done = false;
  engine.run_on(0, [&cl, wc, &waves_done] {
    cl.rolling_rejuvenation_waves(
        wc, [&waves_done](const cluster::Cluster::WaveReport&) {
          waves_done = true;
        });
  });
  engine.run_until(meas_start + sim::from_seconds(o.sim_seconds));
  const sim::SimTime meas_end = engine.partition(0).now();
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();

  const auto stats = fleet.stats(meas_end);
  const auto& waves = cl.last_wave_report();

  std::uint64_t digest = 0;
  const auto mix = [&digest](std::uint64_t v) {
    digest ^= v + 0x9e3779b97f4a7c15ull + (digest << 6) + (digest >> 2);
  };
  for (std::int32_t p = 0; p < engine.partition_count(); ++p) {
    mix(static_cast<std::uint64_t>(engine.partition(p).now()));
    mix(engine.partition(p).executed_events());
  }
  mix(fleet.state_digest());
  mix(cl.sharded_balancer()->state_digest());
  for (const auto& w : waves.waves) {
    mix(static_cast<std::uint64_t>(w.started));
    mix(static_cast<std::uint64_t>(w.finished));
    for (const auto h : w.hosts) mix(h);
  }
  for (const auto d : cl.rejuvenation_durations()) {
    mix(static_cast<std::uint64_t>(d));
  }
  mix(engine.messages_routed());

  const double sim_window = sim::to_seconds(meas_end - meas_start);
  const double sessions_per_sec =
      wall > 0 ? static_cast<double>(stats.completions) / wall : 0.0;
  std::printf("  scale: hosts=%d shards=%d wave=%d sessions=%llu workers=%zu "
              "digest=%016llx\n",
              o.hosts, o.shards, o.wave,
              static_cast<unsigned long long>(sessions), o.workers,
              static_cast<unsigned long long>(digest));
  std::printf("    window %.1f sim-s in %.1f wall-s; %llu completions "
              "(%.0f sessions/s wall, %.0f/sim-s), %llu failures\n",
              sim_window, wall,
              static_cast<unsigned long long>(stats.completions),
              sessions_per_sec,
              sim_window > 0
                  ? static_cast<double>(stats.completions) / sim_window
                  : 0.0,
              static_cast<unsigned long long>(stats.failures));
  std::printf("    pooled availability %.6f; per-session p99 %.6f p999 %.6f "
              "(downtime p99 %.0f ms, p999 %.0f ms); %zu sessions still "
              "down\n",
              stats.pooled_availability, stats.availability_p99,
              stats.availability_p999,
              static_cast<double>(stats.session_downtime.percentile(99.0)) /
                  sim::kMillisecond,
              static_cast<double>(stats.session_downtime.percentile(99.9)) /
                  sim::kMillisecond,
              static_cast<std::size_t>(stats.sessions_down_at_end));
  std::printf("    waves: %zu started, %zu hosts rejuvenated (K=%d)%s; "
              "federated dispatches %llu, rejected %llu\n",
              waves.waves.size(), cl.rejuvenation_durations().size(), o.wave,
              waves_done ? ", pass complete" : ", pass still rolling",
              static_cast<unsigned long long>(
                  cl.sharded_balancer()->federated()),
              static_cast<unsigned long long>(
                  cl.sharded_balancer()->rejected()));
  std::printf("    engine: %llu windows, %llu messages, %llu events "
              "(%.2fM events/s)\n",
              static_cast<unsigned long long>(engine.windows_executed()),
              static_cast<unsigned long long>(engine.messages_routed()),
              static_cast<unsigned long long>(engine.total_executed_events()),
              wall > 0 ? static_cast<double>(engine.total_executed_events()) /
                             wall / 1e6
                       : 0.0);

  std::ofstream js(o.out);
  if (!js) {
    std::fprintf(stderr, "cannot write %s\n", o.out.c_str());
    return 1;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(digest));
  js << "{\n"
     << "  \"benchmark\": \"fig9_scale\",\n"
     << "  \"hosts\": " << o.hosts << ",\n"
     << "  \"shards\": " << o.shards << ",\n"
     << "  \"vms_per_host\": " << o.vms_per_host << ",\n"
     << "  \"wave_size\": " << o.wave << ",\n"
     << "  \"workers\": " << o.workers << ",\n"
     << "  \"concurrent_sessions\": " << sessions << ",\n"
     << "  \"lookahead_us\": "
     << static_cast<long long>(cfg.calib.link.latency) << ",\n"
     << "  \"sim_seconds\": " << sim_window << ",\n"
     << "  \"wall_seconds\": " << wall << ",\n"
     << "  \"completions\": " << stats.completions << ",\n"
     << "  \"failures\": " << stats.failures << ",\n"
     << "  \"sessions_per_sec\": " << sessions_per_sec << ",\n"
     << "  \"sessions_per_sim_sec\": "
     << (sim_window > 0
             ? static_cast<double>(stats.completions) / sim_window
             : 0.0)
     << ",\n"
     << "  \"pooled_availability\": " << stats.pooled_availability << ",\n"
     << "  \"p99_availability\": " << stats.availability_p99 << ",\n"
     << "  \"p999_availability\": " << stats.availability_p999 << ",\n"
     << "  \"planned_downtime_us\": " << stats.planned_downtime << ",\n"
     << "  \"unplanned_downtime_us\": " << stats.unplanned_downtime << ",\n"
     << "  \"p99_session_downtime_us\": "
     << stats.session_downtime.percentile(99.0) << ",\n"
     << "  \"p999_session_downtime_us\": "
     << stats.session_downtime.percentile(99.9) << ",\n"
     << "  \"p99_request_latency_us\": "
     << stats.request_latency.percentile(99.0) << ",\n"
     << "  \"waves_started\": " << waves.waves.size() << ",\n"
     << "  \"hosts_rejuvenated\": " << cl.rejuvenation_durations().size()
     << ",\n"
     << "  \"federated_dispatches\": " << cl.sharded_balancer()->federated()
     << ",\n"
     << "  \"rejected_dispatches\": " << cl.sharded_balancer()->rejected()
     << ",\n"
     << "  \"events\": " << engine.total_executed_events() << ",\n"
     << "  \"windows\": " << engine.windows_executed() << ",\n"
     << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
     << ",\n"
     << "  \"digest\": \"" << buf << "\"\n"
     << "}\n";
  std::printf("    wrote %s\n", o.out.c_str());
  return 0;
}

// The paper's stated future work: empirically evaluate migration-based
// rejuvenation. Evacuate a host to a spare by live migration, rejuvenate
// the (now empty) host, migrate everything back.
struct MigrationRow {
  double total_min = 0;
  double worst_downtime_s = 0;
};

MigrationRow migration_based_once(sim::Rng rng) {
  sim::Simulation s;
  const Calibration calib = bench::replication_calibration();
  vmm::Host active(s, calib, rng.next());
  vmm::Host spare(s, calib, rng.next());
  active.instant_start();
  spare.instant_start();
  constexpr int kVms = 4;
  std::vector<std::unique_ptr<guest::GuestOs>> vms;
  int booted = 0;
  for (int i = 0; i < kVms; ++i) {
    vms.push_back(std::make_unique<guest::GuestOs>(
        active, "vm" + std::to_string(i), sim::kGiB));
    vms.back()->add_service(std::make_unique<guest::SshService>());
    vms.back()->create_and_boot([&booted] { ++booted; });
  }
  while (booted < kVms) s.step();

  std::vector<std::unique_ptr<workload::Prober>> probers;
  for (auto& vm : vms) {
    auto* ssh = vm->find_service("sshd");
    probers.push_back(std::make_unique<workload::Prober>(
        s, workload::Prober::Config{10 * sim::kMillisecond},
        [vm = vm.get(), ssh] { return vm->service_reachable(*ssh); }));
    probers.back()->start();
  }
  const sim::SimTime start = s.now();

  // Evacuate, rejuvenate, return -- sequentially, like xm migrate would.
  cluster::VmMigrator migrator;
  std::function<void(std::size_t, vmm::Host&, vmm::Host&, std::function<void()>)>
      move_all = [&](std::size_t i, vmm::Host& from, vmm::Host& to,
                     std::function<void()> done) {
        if (i == vms.size()) {
          done();
          return;
        }
        (void)from;
        migrator.migrate(*vms[i], to,
                         [&, i, done](const cluster::VmMigrator::Result&) {
                           move_all(i + 1, from, to, std::move(done));
                         });
      };
  bool finished = false;
  move_all(0, active, spare, [&] {
    // The active host is empty: plain reboot (nothing to preserve), then
    // bring every VM home.
    active.shutdown_dom0([&] {
      active.hardware_reboot([&] {
        move_all(0, spare, active, [&] { finished = true; });
      });
    });
  });
  while (!finished && s.pending_events() > 0) s.step();
  s.run_for(sim::kSecond);

  MigrationRow row;
  for (auto& p : probers) {
    p->stop();
    row.worst_downtime_s =
        std::max(row.worst_downtime_s,
                 sim::to_seconds(p->total_downtime(start, s.now())));
  }
  row.total_min = sim::to_seconds(s.now() - start) / 60.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  // --trace FILE: additionally run one observed cluster pass and write a
  // Perfetto-loadable Chrome trace there. --workers N: run ONLY the
  // partitioned-engine scenario and print its digest (CI diffs N=1 vs
  // N=4). --hosts/--shards/...: run ONLY the datacenter-scale scenario
  // (sharded balancer + session fleet + waves) and write BENCH_scale.json.
  // All are stripped before SweepOptions so the default invocation (and
  // its output) is untouched.
  std::string trace_path;
  std::size_t par_workers = 0;
  ScaleOptions scale;
  bool scale_mode = false;
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      par_workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--hosts") == 0 && i + 1 < argc) {
      scale.hosts = std::atoi(argv[++i]);
      scale_mode = true;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      scale.shards = std::atoi(argv[++i]);
      scale_mode = true;
    } else if (std::strcmp(argv[i], "--wave") == 0 && i + 1 < argc) {
      scale.wave = std::atoi(argv[++i]);
      scale_mode = true;
    } else if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      scale.sessions = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      scale_mode = true;
    } else if (std::strcmp(argv[i], "--sim-seconds") == 0 && i + 1 < argc) {
      scale.sim_seconds = std::atof(argv[++i]);
      scale_mode = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      scale.out = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  const auto opt = rh::bench::SweepOptions::parse(
      static_cast<int>(rest.size()), rest.data());
  if (scale_mode) {
    if (scale.hosts < 1 || scale.shards < 1 || scale.wave < 1 ||
        scale.sim_seconds <= 0) {
      std::fprintf(stderr, "scale mode needs hosts/shards/wave >= 1 and "
                           "sim-seconds > 0\n");
      return 2;
    }
    scale.workers = par_workers > 0 ? par_workers : 1;
    scale.seed = opt.root_seed;
    return run_scale(scale);
  }
  if (par_workers > 0) {
    parallel_once(par_workers, opt.root_seed);
    return 0;
  }
  rh::bench::print_header(
      "Figure 9 / Section 6: cluster throughput during rejuvenation");
  using rh::bench::fmt_ci;

  // The analytic model is closed-form: one evaluation, no replication.
  analytic_part();

  // DES cluster: one grid point, replicated under independent seeds.
  enum { kBase, kDuring, kAfter, kLongest, kDeferred };
  const auto sim_grid =
      exp::run_grid(opt.grid(1), [](const exp::ReplicationContext& ctx) {
        const SimRow r = simulated_once(ctx.seed);
        exp::ReplicationResult out;
        out.values = {r.baseline, r.during, r.after, r.longest_host_s,
                      static_cast<double>(r.deferred)};
        return out;
      });
  const auto& sg = sim_grid.point(0);
  std::printf("\n  DES cluster (m=3 hosts x 4 VMs, rolling warm rejuvenation; "
              "%zu replications, %zu threads):\n",
              opt.reps, sim_grid.threads_used);
  std::printf("    baseline %s req/s; during rolling rejuvenation %s req/s "
              "(expect ~(m-1)/m = %.0f); after %s req/s\n",
              fmt_ci(sg.mean(kBase), sg.ci95(kBase), "%.0f").c_str(),
              fmt_ci(sg.mean(kDuring), sg.ci95(kDuring), "%.0f").c_str(),
              sg.mean(kBase) * 2.0 / 3.0,
              fmt_ci(sg.mean(kAfter), sg.ci95(kAfter), "%.0f").c_str());
  std::printf("    longest per-host rejuvenation: %s s\n",
              fmt_ci(sg.mean(kLongest), sg.ci95(kLongest), "%.1f").c_str());
  std::printf("    service downtime at the load balancer: zero requests were "
              "permanently failed; %s were deferred and retried\n",
              fmt_ci(sg.mean(kDeferred), sg.ci95(kDeferred), "%.0f").c_str());
  if (!trace_path.empty()) {
    simulated_once(opt.root_seed, trace_path);
    std::printf("    wrote Chrome trace of one observed pass to %s\n",
                trace_path.c_str());
  }

  // Migration-based rejuvenation (the paper's future work), replicated.
  enum { kTotalMin, kWorstDt };
  const auto mig_grid =
      exp::run_grid(opt.grid(1), [](const exp::ReplicationContext& ctx) {
        const MigrationRow r = migration_based_once(ctx.rng);
        exp::ReplicationResult out;
        out.values = {r.total_min, r.worst_downtime_s};
        return out;
      });
  const auto& mg = mig_grid.point(0);
  std::printf("\n  migration-based rejuvenation, measured (1 host + 1 spare, "
              "4 x 1 GiB VMs; %zu replications):\n", opt.reps);
  std::printf("    total procedure (evacuate + reboot + return): %s min\n",
              fmt_ci(mg.mean(kTotalMin), mg.ci95(kTotalMin), "%.1f").c_str());
  std::printf("    worst per-VM service downtime: %s s (stop-and-copy only "
              "-- vs 42 s warm, 241 s cold)\n",
              fmt_ci(mg.mean(kWorstDt), mg.ci95(kWorstDt), "%.2f").c_str());
  std::printf("    but a spare host was occupied the whole time: cluster "
              "capacity (m-1)p throughout.\n");
  return 0;
}
