// Strong-scaling benchmark of the parallel replication runner (src/exp/).
//
// The workload is the real thing, not a synthetic spin loop: every
// replication builds a private Testbed (host + n SSH VMs) and runs a warm
// rejuvenation to completion, exactly like the figure benches do. The
// grid is points (VM counts) x replications, at least 32 tasks in the
// default configuration.
//
// The same grid runs once sequentially (run_grid_sequential, the
// baseline) and once per requested thread count, and every parallel run
// is checked for *bitwise* agreement with the sequential reduction --
// the determinism contract the runner exists to provide.
//
// Emits BENCH_runner.json (schema documented in EXPERIMENTS.md). Note
// that speedup is bounded by the hardware the bench runs on; the JSON
// records hardware_concurrency so a 1-core CI container's ~1x is
// interpretable. Usage:
//
//   runner_bench [--threads T] [--reps R] [--quick] [--out PATH]
//
// --threads T restricts the scaling sweep to the single count T
// (CI smoke: --threads 2 --quick); default sweeps 1, 2, 4, 8.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "exp/runner.hpp"

namespace {

using namespace rh;
using bench::Testbed;

/// VM count per grid point: the sweep dimension.
std::vector<int> vm_counts(bool quick) {
  if (quick) return {1, 2};
  return {1, 2, 3, 4};
}

/// One replication: private simulation, warm rejuvenation, downtime-free
/// duration metrics. Returns {total rejuvenation seconds, per-VM resume
/// seconds mean} so the reduction exercises multi-metric merging.
exp::ReplicationResult replicate(const exp::ReplicationContext& ctx, int vms) {
  Testbed tb(ctx.seed);
  tb.add_vms(vms, sim::kGiB, Testbed::ServiceMix::kSsh);
  const sim::SimTime start = tb.sim.now();
  auto driver = tb.rejuvenate(rejuv::RebootKind::kWarm);
  exp::ReplicationResult out;
  out.values = {sim::to_seconds(driver->total_duration()),
                sim::to_seconds(tb.sim.now() - start)};
  return out;
}

/// Bitwise comparison of two grid reductions: every point's per-metric
/// mean and CI must match to the last ULP. Floating-point summation is
/// not associative, so this only holds because the runner reduces in a
/// fixed replication-index order regardless of completion order.
bool bitwise_equal(const exp::GridResult& a, const exp::GridResult& b) {
  if (a.points.size() != b.points.size()) return false;
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    const auto& ra = a.points[p];
    const auto& rb = b.points[p];
    if (ra.metrics().size() != rb.metrics().size()) return false;
    for (std::size_t m = 0; m < ra.metrics().size(); ++m) {
      const double ma = ra.mean(m), mb = rb.mean(m);
      const double ca = ra.ci95(m), cb = rb.ci95(m);
      if (std::memcmp(&ma, &mb, sizeof ma) != 0) return false;
      if (std::memcmp(&ca, &cb, sizeof ca) != 0) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::size_t reps = 8;
  std::string out_path = "BENCH_runner.json";
  std::vector<std::size_t> thread_counts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts = {static_cast<std::size_t>(std::atoll(argv[++i]))};
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads T] [--reps R] [--quick] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (thread_counts.empty()) thread_counts = {1, 2, 4, 8};
  if (quick && reps == 8) reps = 3;
  if (reps == 0) reps = 1;

  // Jitter on, so replications genuinely differ and the merge paths are
  // exercised on distinct values.
  bench::g_replication_jitter = 0.02;

  const std::vector<int> counts = vm_counts(quick);
  exp::GridSpec spec;
  spec.points = counts.size();
  spec.replications = reps;
  spec.root_seed = bench::kLegacyBenchSeed;

  const auto body = [&counts](const exp::ReplicationContext& ctx) {
    return replicate(ctx, counts[ctx.point_index]);
  };

  const std::size_t tasks = spec.points * spec.replications;
  const unsigned hw = std::thread::hardware_concurrency();
  const bool degenerate = hw <= 1;
  if (degenerate) {
    std::fprintf(stderr,
                 "WARNING: hardware_concurrency() == %u -- every thread "
                 "count shares one core, so the speedups below are "
                 "degenerate (~1.0x) and say nothing about the runner. "
                 "Recording \"degenerate_scaling\": true.\n",
                 hw);
  }
  std::printf("replication-runner strong scaling: %zu points x %zu reps = "
              "%zu replications, hardware_concurrency %u\n\n",
              spec.points, spec.replications, tasks, hw);

  const auto seq = exp::run_grid_sequential(spec, body);
  std::printf("  %-12s %10.2f s   (baseline)\n", "sequential",
              seq.wall_seconds);

  struct Row {
    std::size_t threads;
    double wall = 0, speedup = 0;
    bool deterministic = false;
  };
  std::vector<Row> rows;
  for (const std::size_t t : thread_counts) {
    exp::GridSpec s = spec;
    s.threads = t;
    const auto par = exp::run_grid(s, body);
    Row row;
    row.threads = par.threads_used;
    row.wall = par.wall_seconds;
    row.speedup = seq.wall_seconds / par.wall_seconds;
    row.deterministic = bitwise_equal(seq, par);
    rows.push_back(row);
    std::printf("  %zu threads %12.2f s   speedup %5.2fx   bitwise-equal "
                "to sequential: %s\n",
                row.threads, row.wall, row.speedup,
                row.deterministic ? "yes" : "NO");
  }

  // Sanity line: the measured quantity itself, so the JSON's workload is
  // interpretable without re-running.
  std::printf("\n  workload check (largest point): warm rejuvenation of %d "
              "VMs takes %s s per replication\n",
              counts.back(),
              bench::fmt_ci(seq.points.back().mean(0),
                            seq.points.back().ci95(0), "%.2f")
                  .c_str());

  std::string json = "{\n  \"benchmark\": \"replication_runner\",\n";
  json += "  \"workload\": \"warm rejuvenation of n SSH VMs per "
          "replication\",\n";
  json += "  \"points\": " + std::to_string(spec.points) + ",\n";
  json += "  \"replications_per_point\": " + std::to_string(spec.replications) +
          ",\n";
  json += "  \"total_replications\": " + std::to_string(tasks) + ",\n";
  json += "  \"hardware_concurrency\": " + std::to_string(hw) + ",\n";
  json += std::string("  \"degenerate_scaling\": ") +
          (degenerate ? "true" : "false") + ",\n";
  char buf[160];
  std::snprintf(buf, sizeof buf, "  \"sequential_seconds\": %.4f,\n",
                seq.wall_seconds);
  json += buf;
  json += "  \"scaling\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::snprintf(buf, sizeof buf,
                  "    {\"threads\": %zu, \"wall_seconds\": %.4f, "
                  "\"speedup_vs_sequential\": %.3f, \"bitwise_deterministic\": "
                  "%s}%s\n",
                  rows[i].threads, rows[i].wall, rows[i].speedup,
                  rows[i].deterministic ? "true" : "false",
                  i + 1 < rows.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\n  wrote %s\n", out_path.c_str());

  // Determinism is a hard requirement: fail the bench (and CI smoke) if
  // any thread count diverged from the sequential reduction.
  for (const auto& r : rows) {
    if (!r.deterministic) return 1;
  }
  return 0;
}
