// Parallel-in-run DES engine benchmark (DESIGN.md §11): strong scaling
// of one fig9-shaped cluster run -- H hosts x V VMs behind the load
// balancer, client fleet in steady state, a rolling warm rejuvenation in
// flight -- executed by the conservative windowed engine at 1/2/4/8
// workers, plus a lookahead-sensitivity sweep over the link latency
// (the lookahead *is* the minimum link latency, so shrinking it shrinks
// the safe window and raises the barrier rate).
//
// Every worker count must produce a bitwise-identical digest; the binary
// exits non-zero otherwise. Emits BENCH_pdes.json. Usage:
//
//   pdes_bench [--hosts H] [--vms V] [--sim-seconds S] [--connections C]
//              [--workers LIST] [--lookahead-us LIST] [--reps N]
//              [--out PATH] [--quick]
//
// Each strong-scaling row is the minimum wall time over --reps identical
// runs (default 3): the min is the standard noise filter for a shared
// machine, and since every repetition must reproduce the same digest the
// extra runs double as a determinism soak.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "simcore/parallel.hpp"

namespace {

using namespace rh;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
}

struct RunConfig {
  int hosts = 100;
  int vms_per_host = 4;
  int connections = 0;  // 0 = 2 per host
  double sim_seconds = 20.0;
  sim::Duration link_latency_us = 200;
  std::size_t workers = 1;
};

struct RunResult {
  double wall_seconds = 0;
  std::uint64_t digest = 0;
  std::uint64_t windows = 0;
  std::uint64_t messages = 0;
  std::uint64_t events = 0;
};

/// One fig9-shaped run under the parallel engine. Wall time covers the
/// engine-driven phases only (boot windows + steady state + rolling pass
/// in flight), not object construction.
RunResult run_once(const RunConfig& rc) {
  sim::ParallelSimulation engine(
      {.partitions = rc.hosts + 1, .workers = rc.workers});
  cluster::Cluster::Config cfg;
  cfg.hosts = rc.hosts;
  cfg.vms_per_host = rc.vms_per_host;
  cfg.files_per_vm = 8;
  cfg.file_size = 64 * sim::kKiB;
  cfg.calib.link.latency = rc.link_latency_us;
  cfg.engine = &engine;
  cluster::Cluster cl(engine.partition(0), cfg);
  cluster::ClusterClientFleet fleet(
      engine.partition(0), cl.balancer(),
      {.connections = rc.connections > 0 ? rc.connections : 2 * rc.hosts});

  const auto t0 = Clock::now();
  bool ready = false;
  cl.start([&ready] { ready = true; });
  engine.run_while([&ready] { return !ready; });
  engine.run_on(0, [&cl, &fleet] {
    fleet.start();
    // Kick the rolling pass; at bench horizons it is typically still in
    // flight when the run ends, which is exactly the mixed steady-state +
    // rejuvenation event load the headline figure simulates.
    cl.rolling_rejuvenation(rejuv::RebootKind::kWarm, [] {});
  });
  engine.run_until(engine.partition(0).now() +
                   static_cast<sim::Duration>(rc.sim_seconds * sim::kSecond));

  RunResult r;
  r.wall_seconds = seconds_since(t0);
  r.windows = engine.windows_executed();
  r.messages = engine.messages_routed();
  r.events = engine.total_executed_events();
  for (std::int32_t p = 0; p < engine.partition_count(); ++p) {
    mix(r.digest, static_cast<std::uint64_t>(engine.partition(p).now()));
    mix(r.digest, engine.partition(p).executed_events());
  }
  mix(r.digest, static_cast<std::uint64_t>(fleet.completions().total()));
  mix(r.digest, cl.balancer().dispatched());
  mix(r.digest, cl.balancer().rejected());
  for (const auto d : cl.rejuvenation_durations()) {
    mix(r.digest, static_cast<std::uint64_t>(d));
  }
  mix(r.digest, r.messages);
  return r;
}

/// Runs the same configuration `reps` times and keeps the fastest wall
/// time. All repetitions must agree bit-for-bit on the digest (same
/// config, same engine, zero tolerance); a mismatch poisons the digest so
/// the cross-worker equality check below fails loudly.
RunResult run_best_of(const RunConfig& rc, int reps) {
  RunResult best = run_once(rc);
  for (int rep = 1; rep < reps; ++rep) {
    RunResult r = run_once(rc);
    if (r.digest != best.digest) {
      std::fprintf(stderr,
                   "ERROR: repetition %d of workers=%zu produced digest "
                   "%016llx, expected %016llx -- run is nondeterministic\n",
                   rep + 1, rc.workers,
                   static_cast<unsigned long long>(r.digest),
                   static_cast<unsigned long long>(best.digest));
      best.digest = ~best.digest;
      return best;
    }
    if (r.wall_seconds < best.wall_seconds) best = r;
  }
  return best;
}

std::vector<long> parse_list(const char* s) {
  std::vector<long> out;
  while (*s != '\0') {
    char* end = nullptr;
    out.push_back(std::strtol(s, &end, 10));
    s = *end == ',' ? end + 1 : end;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  RunConfig base;
  std::vector<long> workers = {1, 2, 4, 8};
  std::vector<long> lookaheads = {50, 100, 200, 400, 800};
  int reps = 3;
  std::string out_path = "BENCH_pdes.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hosts") == 0 && i + 1 < argc) {
      base.hosts = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--vms") == 0 && i + 1 < argc) {
      base.vms_per_host = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--sim-seconds") == 0 && i + 1 < argc) {
      base.sim_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--connections") == 0 && i + 1 < argc) {
      base.connections = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = parse_list(argv[++i]);
    } else if (std::strcmp(argv[i], "--lookahead-us") == 0 && i + 1 < argc) {
      lookaheads = parse_list(argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      base.hosts = 12;
      base.sim_seconds = 5.0;
      workers = {1, 2};
      lookaheads = {100, 400};
      reps = 1;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--hosts H] [--vms V] [--sim-seconds S] "
                   "[--connections C] [--workers LIST] [--lookahead-us LIST] "
                   "[--reps N] [--out PATH] [--quick]\n",
                   argv[0]);
      return 2;
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const bool degenerate = hw <= 1;
  if (degenerate) {
    std::fprintf(stderr,
                 "WARNING: hardware_concurrency() == %u -- every worker "
                 "count shares one core, so the speedups below are "
                 "degenerate (~1.0x) and say nothing about the engine. "
                 "Recording \"degenerate_scaling\": true.\n",
                 hw);
  }

  std::printf("parallel DES engine: %d hosts x %d VMs, %.1f simulated "
              "seconds, lookahead %lld us (hw threads: %u)\n\n",
              base.hosts, base.vms_per_host, base.sim_seconds,
              static_cast<long long>(base.link_latency_us), hw);

  // ------------------------------------------------------ strong scaling
  std::printf("  strong scaling (min of %d rep%s per row, varying workers):\n",
              reps, reps == 1 ? "" : "s");
  std::printf("  %8s %12s %10s %12s %12s %10s\n", "workers", "wall (s)",
              "speedup", "windows", "messages", "digest");
  std::vector<RunResult> scaling;
  for (const long w : workers) {
    RunConfig rc = base;
    rc.workers = static_cast<std::size_t>(std::max(1l, w));
    scaling.push_back(run_best_of(rc, reps));
    const RunResult& r = scaling.back();
    std::printf("  %8ld %12.3f %9.2fx %12llu %12llu   %08llx\n", w,
                r.wall_seconds, scaling.front().wall_seconds / r.wall_seconds,
                static_cast<unsigned long long>(r.windows),
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.digest & 0xffffffffull));
  }
  bool digests_equal = true;
  for (const auto& r : scaling) {
    digests_equal = digests_equal && r.digest == scaling.front().digest;
  }
  std::printf("  digests across worker counts: %s\n",
              digests_equal ? "EQUAL (bitwise deterministic)" : "DIFFER");

  // --------------------------------------------------- lookahead sweep
  const std::size_t sweep_workers =
      static_cast<std::size_t>(std::max(1l, *std::max_element(
          workers.begin(), workers.end())));
  std::printf("\n  lookahead sensitivity (link latency sweep, %zu workers; "
              "smaller lookahead = narrower safe window = more barriers):\n",
              sweep_workers);
  std::printf("  %14s %12s %12s %16s\n", "lookahead (us)", "wall (s)",
              "windows", "events/window");
  struct SweepRow {
    long lookahead_us = 0;
    RunResult r;
  };
  std::vector<SweepRow> sweep;
  for (const long la : lookaheads) {
    RunConfig rc = base;
    rc.workers = sweep_workers;
    rc.link_latency_us = static_cast<sim::Duration>(std::max(1l, la));
    sweep.push_back({la, run_once(rc)});
    const RunResult& r = sweep.back().r;
    std::printf("  %14ld %12.3f %12llu %16.1f\n", la, r.wall_seconds,
                static_cast<unsigned long long>(r.windows),
                r.windows > 0 ? static_cast<double>(r.events) /
                                    static_cast<double>(r.windows)
                              : 0.0);
  }

  // --------------------------------------------------------------- JSON
  std::string json = "{\n  \"benchmark\": \"pdes\",\n";
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "  \"hosts\": %d,\n  \"vms_per_host\": %d,\n"
                "  \"sim_seconds\": %.2f,\n  \"connections\": %d,\n"
                "  \"lookahead_us_default\": %lld,\n"
                "  \"reps\": %d,\n"
                "  \"hardware_concurrency\": %u,\n"
                "  \"degenerate_scaling\": %s,\n",
                base.hosts, base.vms_per_host, base.sim_seconds,
                base.connections > 0 ? base.connections : 2 * base.hosts,
                static_cast<long long>(base.link_latency_us), reps, hw,
                degenerate ? "true" : "false");
  json += buf;
  json += "  \"strong_scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const RunResult& r = scaling[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"workers\": %ld, \"wall_seconds\": %.4f, "
                  "\"speedup_vs_1\": %.3f, \"windows\": %llu, "
                  "\"messages\": %llu, \"events\": %llu, "
                  "\"digest\": \"%016llx\"}%s\n",
                  workers[i], r.wall_seconds,
                  scaling.front().wall_seconds / r.wall_seconds,
                  static_cast<unsigned long long>(r.windows),
                  static_cast<unsigned long long>(r.messages),
                  static_cast<unsigned long long>(r.events),
                  static_cast<unsigned long long>(r.digest),
                  i + 1 < scaling.size() ? "," : "");
    json += buf;
  }
  std::snprintf(buf, sizeof buf,
                "  ],\n  \"digests_equal\": %s,\n  \"lookahead_sweep\": [\n",
                digests_equal ? "true" : "false");
  json += buf;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const RunResult& r = sweep[i].r;
    std::snprintf(buf, sizeof buf,
                  "    {\"lookahead_us\": %ld, \"workers\": %zu, "
                  "\"wall_seconds\": %.4f, \"windows\": %llu, "
                  "\"events\": %llu, \"events_per_window\": %.2f}%s\n",
                  sweep[i].lookahead_us, sweep_workers, r.wall_seconds,
                  static_cast<unsigned long long>(r.windows),
                  static_cast<unsigned long long>(r.events),
                  r.windows > 0 ? static_cast<double>(r.events) /
                                      static_cast<double>(r.windows)
                                : 0.0,
                  i + 1 < sweep.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\n  written to %s\n", out_path.c_str());
  return digests_equal ? 0 : 1;
}
