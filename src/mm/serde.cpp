#include "mm/serde.hpp"

namespace rh::mm {

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  for (char c : s) u8(static_cast<std::uint8_t>(c));
}

void ByteWriter::i64_vector(const std::vector<std::int64_t>& v) {
  u64(v.size());
  for (auto x : v) i64(x);
}

std::uint8_t ByteReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(buf_[pos_++]);
}

std::uint32_t ByteReader::u32() {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
  return v;
}

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s;
  s.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) s.push_back(static_cast<char>(u8()));
  return s;
}

std::vector<std::int64_t> ByteReader::i64_vector() {
  const std::uint64_t n = u64();
  need(static_cast<std::size_t>(n) * 8);
  std::vector<std::int64_t> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(i64());
  return v;
}

}  // namespace rh::mm
