// Domain identifiers, shared between the memory manager and the VMM.
#pragma once

#include <cstdint>

namespace rh {

/// Identifies a domain (VM). Domain 0 is the privileged control domain.
using DomainId = std::int32_t;

inline constexpr DomainId kNoDomain = -1;
/// Frames owned by the VMM itself (hypervisor text/heap, preserved regions).
inline constexpr DomainId kVmmOwner = -2;
inline constexpr DomainId kDomain0 = 0;

}  // namespace rh
