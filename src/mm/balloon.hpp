// Balloon driver model (Waldspurger-style memory overcommit).
//
// Section 4.1 of the paper notes the P2M table "can maintain the mapping
// properly" even when pseudo-physical memory exceeds machine memory due to
// ballooning. This model exercises exactly that: inflating the balloon
// removes P2M entries (machine frames go back to the VMM), deflating adds
// them back, and the table tolerates holes throughout -- including across
// a warm-VM reboot of a partially-ballooned domain.
#pragma once

#include "mm/frame_allocator.hpp"
#include "mm/p2m_table.hpp"

namespace rh::mm {

class BalloonDriver {
 public:
  /// Operates on one domain's P2M table, returning frames to / taking
  /// frames from the shared machine-frame allocator.
  BalloonDriver(DomainId domain, FrameAllocator& allocator, P2mTable& p2m)
      : domain_(domain), allocator_(allocator), p2m_(p2m) {}

  /// Inflates the balloon by `frames` pages: the domain gives up that many
  /// populated pages (highest populated PFNs first). Returns the number
  /// actually released (bounded by the populated count).
  std::int64_t inflate(std::int64_t frames);

  /// Deflates by `frames` pages: re-populates holes (lowest PFNs first)
  /// with freshly allocated machine frames.
  ///
  /// Partial-success guarantee: never throws for lack of memory. The
  /// request is clamped upfront to min(holes, allocator free frames) and
  /// the clamped allocation is made in one call, so either all of those
  /// pages are populated or -- if the allocator is exhausted -- none are.
  /// The P2M table is never left half-updated mid-request. Returns the
  /// number of pages actually re-populated (possibly 0, possibly less
  /// than `frames`); callers that need all-or-nothing compare the return
  /// value to their request.
  std::int64_t deflate(std::int64_t frames);

  /// Pages currently ballooned out (holes in the P2M table).
  [[nodiscard]] std::int64_t ballooned_pages() const {
    return p2m_.pfn_count() - p2m_.populated();
  }

 private:
  DomainId domain_;
  FrameAllocator& allocator_;
  P2mTable& p2m_;
};

}  // namespace rh::mm
