// Minimal binary serialisation for preserved-memory payloads.
//
// The real RootHammer writes domain metadata (P2M table, execution state,
// device configuration) into reserved machine frames that the next VMM
// instance parses during initialisation. We mirror that: metadata is
// serialised into byte blobs stored in the PreservedRegionRegistry, and
// the post-reload VMM must successfully deserialise them to resume VMs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "simcore/check.hpp"

namespace rh::mm {

/// Appends little-endian encoded values to a byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(const std::string& s);
  void i64_vector(const std::vector<std::int64_t>& v);

  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

/// Reads values written by ByteWriter; throws InvariantViolation on
/// truncated or malformed input.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::byte>& buf) : buf_(buf) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::string str();
  std::vector<std::int64_t> i64_vector();

  [[nodiscard]] bool exhausted() const { return pos_ == buf_.size(); }

 private:
  void need(std::size_t n) const {
    ensure(pos_ + n <= buf_.size(), "ByteReader: truncated payload");
  }

  const std::vector<std::byte>& buf_;
  std::size_t pos_ = 0;
};

}  // namespace rh::mm
