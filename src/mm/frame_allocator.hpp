// Machine-frame allocator: tracks ownership of every machine page frame.
//
// The VMM allocates machine frames to domains at creation, frees them at
// destruction, and -- after a quick reload -- *re-claims* the exact frames
// recorded in each suspended domain's P2M table, so the new VMM instance
// never hands a frozen frame to anyone else and never scrubs it.
#pragma once

#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "hw/machine_memory.hpp"
#include "mm/domain_id.hpp"
#include "simcore/types.hpp"

namespace rh::mm {

/// Thrown when an allocation cannot be satisfied.
class OutOfMachineMemory : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class FrameAllocator {
 public:
  explicit FrameAllocator(std::int64_t frame_count);

  /// Allocates `count` free frames to `owner`; throws OutOfMachineMemory if
  /// fewer than `count` frames are free.
  std::vector<hw::FrameNumber> allocate(DomainId owner, std::int64_t count);

  /// Allocates `count` *contiguous* free frames (one ascending MFN run) to
  /// `owner`. Throws OutOfMachineMemory when no run is long enough -- the
  /// message distinguishes genuine exhaustion from fragmentation, since a
  /// preserved-region metadata placement can fail with plenty of scattered
  /// free frames (DESIGN.md §9).
  std::vector<hw::FrameNumber> allocate_contiguous(DomainId owner,
                                                   std::int64_t count);

  /// Claims the exact given frames for `owner`. Every frame must currently
  /// be free; throws InvariantViolation otherwise. Used after quick reload
  /// to re-attach preserved memory images.
  void claim(DomainId owner, std::span<const hw::FrameNumber> frames);

  /// Returns one frame to the free pool. It must be owned.
  void release(hw::FrameNumber mfn);

  /// Frees every frame owned by `owner`; returns how many were freed.
  std::int64_t release_all(DomainId owner);

  [[nodiscard]] DomainId owner_of(hw::FrameNumber mfn) const;
  [[nodiscard]] std::int64_t total_frames() const { return total_; }
  [[nodiscard]] std::int64_t free_frames() const { return free_; }
  [[nodiscard]] std::int64_t owned_frames(DomainId owner) const;

  /// All frames currently owned by `owner`, in ascending MFN order.
  [[nodiscard]] std::vector<hw::FrameNumber> frames_owned_by(DomainId owner) const;

  /// All currently-free frames, in ascending MFN order. Used by the VMM's
  /// boot-time scrubber.
  [[nodiscard]] std::vector<hw::FrameNumber> free_frame_list() const;

  /// Length of the longest run of consecutive free MFNs.
  [[nodiscard]] std::int64_t largest_free_run() const;

  /// External-fragmentation score in [0,1]: 1 - largest_free_run / free.
  /// 0 when all free memory is one run (or nothing is free).
  [[nodiscard]] double fragmentation() const;

  /// Lowest free MFN >= `hint`, or -1 when none. Lets callers walk the
  /// free pool in ascending order without rescanning from zero (the
  /// compaction pass passes the previous result + 1 as the next hint).
  [[nodiscard]] hw::FrameNumber lowest_free_from(hw::FrameNumber hint) const;

  /// Conservation check: the cached free counter and per-owner counts
  /// agree with the owner map. Cheap enough to run after every reload.
  [[nodiscard]] bool accounting_ok() const;

 private:
  void check_mfn(hw::FrameNumber mfn) const;

  std::vector<DomainId> owner_;  // indexed by MFN; kNoDomain == free
  std::int64_t total_ = 0;
  std::int64_t free_ = 0;
  std::int64_t cursor_ = 0;  // next-fit allocation cursor
  std::unordered_map<DomainId, std::int64_t> owned_counts_;
};

}  // namespace rh::mm
