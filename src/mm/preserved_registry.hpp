// Registry of memory regions preserved across a quick reload.
//
// This models the contract between the outgoing and incoming VMM
// instances: the outgoing VMM records (a) metadata payloads -- serialised
// P2M tables, execution state, domain configuration -- and (b) the set of
// *frozen* machine frames holding suspended domains' memory images. The
// incoming VMM, when booted via quick reload, re-reserves everything
// recorded here before it scrubs free memory.
//
// The registry's contents live in RAM: a power cycle (hardware reset)
// destroys them, a quick reload does not. The Host enforces that tie-in.
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "hw/machine_memory.hpp"
#include "mm/domain_id.hpp"
#include "simcore/types.hpp"

namespace rh::mm {

/// One preserved region: a metadata payload plus the frozen frames it
/// governs (empty for pure-metadata regions).
struct PreservedRegion {
  std::string name;
  std::vector<std::byte> payload;
  std::vector<hw::FrameNumber> frozen_frames;
  /// FNV-1a over the payload, stamped by the registry at put() time. A
  /// reader that recomputes a different value is looking at a record that
  /// rotted (or was tampered with) after it was preserved.
  std::uint64_t checksum = 0;
};

/// FNV-1a over a payload; the checksum PreservedRegionRegistry stamps.
[[nodiscard]] std::uint64_t payload_checksum(const std::vector<std::byte>& payload);

/// Thrown when a put()/replace() would push the registry past its
/// configured preserved-frame budget (DESIGN.md §9). The region is NOT
/// recorded; the caller decides how to degrade.
class PreservedBudgetExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class PreservedRegionRegistry {
 public:
  /// Inserts a region by name, stamping its checksum. Throws
  /// InvariantViolation if a region with that name already exists --
  /// silently overwriting would leak the old region's frozen frames,
  /// which stay claimed in the allocator with nobody left to release
  /// them. Use replace() to overwrite deliberately.
  void put(PreservedRegion region);

  /// Replaces an *existing* region by name (checksum restamped, insertion
  /// order kept). Throws InvariantViolation if the name is absent. The
  /// caller owns the frame-accounting consequences of dropping the old
  /// record.
  void replace(PreservedRegion region);

  [[nodiscard]] bool contains(const std::string& name) const {
    return regions_.find(name) != regions_.end();
  }

  /// Looks up a region; nullptr if absent.
  [[nodiscard]] const PreservedRegion* find(const std::string& name) const;

  /// Whether the region's payload still matches its stamped checksum.
  /// Precondition: the region exists.
  [[nodiscard]] bool intact(const std::string& name) const;

  /// Flips one payload byte *without* restamping the checksum -- bit-rot
  /// in RAM, as injected by fault::FaultKind::kCorruptPreservedImage.
  /// Precondition: the region exists and has a non-empty payload.
  void corrupt_payload(const std::string& name);

  /// Removes a region; returns true if it existed.
  bool erase(const std::string& name);

  /// All region names, in insertion order.
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] bool empty() const { return regions_.empty(); }
  [[nodiscard]] std::size_t size() const { return regions_.size(); }

  /// Union of all regions' frozen frames.
  [[nodiscard]] std::vector<hw::FrameNumber> all_frozen_frames() const;

  /// Total metadata bytes held (payloads only, not frozen frames).
  [[nodiscard]] sim::Bytes payload_bytes() const;

  /// Machine frames one region costs: its frozen frames plus the metadata
  /// frames the incoming VMM must allocate for the payload
  /// (ceil(payload / kPageSize)) -- the same arithmetic
  /// Vmm::reserve_preserved_regions uses at reload.
  [[nodiscard]] static std::int64_t frames_of(const PreservedRegion& region);

  /// Sum of frames_of over every recorded region: what a quick reload
  /// will have to find before it can scrub.
  [[nodiscard]] std::int64_t reserved_frames() const;

  /// Caps reserved_frames(): a put()/replace() that would exceed the
  /// budget throws PreservedBudgetExceeded instead of recording. 0 (the
  /// default) means unlimited. The budget is a property of the preserved-
  /// memory contract, not of its contents, so clear() keeps it.
  void set_frame_budget(std::int64_t frames);
  [[nodiscard]] std::int64_t frame_budget() const { return frame_budget_; }

  /// Destroys every region (models power loss); keeps the budget.
  void clear();

 private:
  void check_budget(const PreservedRegion& incoming,
                    std::int64_t replaced_frames) const;

  std::vector<std::string> order_;
  std::unordered_map<std::string, PreservedRegion> regions_;
  std::int64_t frame_budget_ = 0;  // 0 == unlimited
};

}  // namespace rh::mm
