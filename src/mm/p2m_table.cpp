#include "mm/p2m_table.hpp"

#include "simcore/check.hpp"

namespace rh::mm {

P2mTable::P2mTable(Pfn pfn_count) {
  ensure(pfn_count >= 0, "P2mTable: negative size");
  map_.assign(static_cast<std::size_t>(pfn_count), kNoFrame);
}

void P2mTable::check_pfn(Pfn pfn) const {
  ensure(pfn >= 0 && pfn < pfn_count(), "P2mTable: PFN out of range");
}

void P2mTable::grow(Pfn new_pfn_count) {
  ensure(new_pfn_count >= pfn_count(), "P2mTable::grow: cannot shrink");
  map_.resize(static_cast<std::size_t>(new_pfn_count), kNoFrame);
}

void P2mTable::add(Pfn pfn, hw::FrameNumber mfn) {
  check_pfn(pfn);
  ensure(mfn >= 0, "P2mTable::add: invalid MFN");
  ensure(map_[static_cast<std::size_t>(pfn)] == kNoFrame,
         "P2mTable::add: PFN already mapped");
  map_[static_cast<std::size_t>(pfn)] = mfn;
  ++populated_;
}

hw::FrameNumber P2mTable::remove(Pfn pfn) {
  check_pfn(pfn);
  const hw::FrameNumber mfn = map_[static_cast<std::size_t>(pfn)];
  ensure(mfn != kNoFrame, "P2mTable::remove: PFN is a hole");
  map_[static_cast<std::size_t>(pfn)] = kNoFrame;
  --populated_;
  return mfn;
}

hw::FrameNumber P2mTable::mfn_of(Pfn pfn) const {
  check_pfn(pfn);
  return map_[static_cast<std::size_t>(pfn)];
}

std::vector<hw::FrameNumber> P2mTable::mapped_frames() const {
  std::vector<hw::FrameNumber> out;
  out.reserve(static_cast<std::size_t>(populated_));
  for (const auto mfn : map_) {
    if (mfn != kNoFrame) out.push_back(mfn);
  }
  return out;
}

Pfn P2mTable::first_populated_pfn() const {
  for (std::size_t i = 0; i < map_.size(); ++i) {
    if (map_[i] != kNoFrame) return static_cast<Pfn>(i);
  }
  return -1;
}

void P2mTable::serialize(ByteWriter& w) const {
  w.i64_vector(map_);
}

P2mTable P2mTable::deserialize(ByteReader& r) {
  P2mTable t;
  t.map_ = r.i64_vector();
  t.populated_ = 0;
  for (const auto mfn : t.map_) {
    ensure(mfn == kNoFrame || mfn >= 0, "P2mTable::deserialize: bad MFN");
    if (mfn != kNoFrame) ++t.populated_;
  }
  return t;
}

}  // namespace rh::mm
