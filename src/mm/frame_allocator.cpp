#include "mm/frame_allocator.hpp"

#include <string>

#include "simcore/check.hpp"

namespace rh::mm {

FrameAllocator::FrameAllocator(std::int64_t frame_count)
    : total_(frame_count), free_(frame_count) {
  ensure(frame_count > 0, "FrameAllocator: no frames");
  owner_.assign(static_cast<std::size_t>(frame_count), kNoDomain);
}

void FrameAllocator::check_mfn(hw::FrameNumber mfn) const {
  ensure(mfn >= 0 && mfn < total_, "FrameAllocator: MFN out of range");
}

std::vector<hw::FrameNumber> FrameAllocator::allocate(DomainId owner,
                                                      std::int64_t count) {
  ensure(owner != kNoDomain, "FrameAllocator::allocate: invalid owner");
  ensure(count >= 0, "FrameAllocator::allocate: negative count");
  if (count > free_) {
    throw OutOfMachineMemory("FrameAllocator: requested " + std::to_string(count) +
                             " frames, only " + std::to_string(free_) + " free");
  }
  std::vector<hw::FrameNumber> out;
  out.reserve(static_cast<std::size_t>(count));
  // Next-fit scan from the cursor; wraps at most once.
  std::int64_t scanned = 0;
  while (std::int64_t(out.size()) < count && scanned <= total_) {
    if (cursor_ >= total_) cursor_ = 0;
    if (owner_[static_cast<std::size_t>(cursor_)] == kNoDomain) {
      owner_[static_cast<std::size_t>(cursor_)] = owner;
      out.push_back(cursor_);
    }
    ++cursor_;
    ++scanned;
  }
  ensure(std::int64_t(out.size()) == count,
         "FrameAllocator: free count inconsistent with owner map");
  free_ -= count;
  owned_counts_[owner] += count;
  return out;
}

void FrameAllocator::claim(DomainId owner, std::span<const hw::FrameNumber> frames) {
  ensure(owner != kNoDomain, "FrameAllocator::claim: invalid owner");
  for (const auto mfn : frames) {
    check_mfn(mfn);
    ensure(owner_[static_cast<std::size_t>(mfn)] == kNoDomain,
           "FrameAllocator::claim: frame " + std::to_string(mfn) + " not free");
  }
  for (const auto mfn : frames) owner_[static_cast<std::size_t>(mfn)] = owner;
  free_ -= static_cast<std::int64_t>(frames.size());
  owned_counts_[owner] += static_cast<std::int64_t>(frames.size());
}

void FrameAllocator::release(hw::FrameNumber mfn) {
  check_mfn(mfn);
  const DomainId owner = owner_[static_cast<std::size_t>(mfn)];
  ensure(owner != kNoDomain, "FrameAllocator::release: frame already free");
  owner_[static_cast<std::size_t>(mfn)] = kNoDomain;
  ++free_;
  --owned_counts_[owner];
}

std::int64_t FrameAllocator::release_all(DomainId owner) {
  std::int64_t freed = 0;
  for (std::size_t i = 0; i < owner_.size(); ++i) {
    if (owner_[i] == owner) {
      owner_[i] = kNoDomain;
      ++freed;
    }
  }
  free_ += freed;
  owned_counts_.erase(owner);
  return freed;
}

DomainId FrameAllocator::owner_of(hw::FrameNumber mfn) const {
  check_mfn(mfn);
  return owner_[static_cast<std::size_t>(mfn)];
}

std::int64_t FrameAllocator::owned_frames(DomainId owner) const {
  const auto it = owned_counts_.find(owner);
  return it == owned_counts_.end() ? 0 : it->second;
}

std::vector<hw::FrameNumber> FrameAllocator::frames_owned_by(DomainId owner) const {
  std::vector<hw::FrameNumber> out;
  for (std::size_t i = 0; i < owner_.size(); ++i) {
    if (owner_[i] == owner) out.push_back(static_cast<hw::FrameNumber>(i));
  }
  return out;
}

std::vector<hw::FrameNumber> FrameAllocator::free_frame_list() const {
  std::vector<hw::FrameNumber> out;
  out.reserve(static_cast<std::size_t>(free_));
  for (std::size_t i = 0; i < owner_.size(); ++i) {
    if (owner_[i] == kNoDomain) out.push_back(static_cast<hw::FrameNumber>(i));
  }
  return out;
}

}  // namespace rh::mm
