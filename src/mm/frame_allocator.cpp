#include "mm/frame_allocator.hpp"

#include <string>

#include "simcore/check.hpp"

namespace rh::mm {

FrameAllocator::FrameAllocator(std::int64_t frame_count)
    : total_(frame_count), free_(frame_count) {
  ensure(frame_count > 0, "FrameAllocator: no frames");
  owner_.assign(static_cast<std::size_t>(frame_count), kNoDomain);
}

void FrameAllocator::check_mfn(hw::FrameNumber mfn) const {
  ensure(mfn >= 0 && mfn < total_, "FrameAllocator: MFN out of range");
}

std::vector<hw::FrameNumber> FrameAllocator::allocate(DomainId owner,
                                                      std::int64_t count) {
  ensure(owner != kNoDomain, "FrameAllocator::allocate: invalid owner");
  ensure(count >= 0, "FrameAllocator::allocate: negative count");
  if (count > free_) {
    throw OutOfMachineMemory("FrameAllocator: requested " + std::to_string(count) +
                             " frames, only " + std::to_string(free_) + " free");
  }
  std::vector<hw::FrameNumber> out;
  out.reserve(static_cast<std::size_t>(count));
  // Next-fit scan from the cursor; wraps at most once.
  std::int64_t scanned = 0;
  while (std::int64_t(out.size()) < count && scanned <= total_) {
    if (cursor_ >= total_) cursor_ = 0;
    if (owner_[static_cast<std::size_t>(cursor_)] == kNoDomain) {
      owner_[static_cast<std::size_t>(cursor_)] = owner;
      out.push_back(cursor_);
    }
    ++cursor_;
    ++scanned;
  }
  ensure(std::int64_t(out.size()) == count,
         "FrameAllocator: free count inconsistent with owner map");
  free_ -= count;
  owned_counts_[owner] += count;
  return out;
}

std::vector<hw::FrameNumber> FrameAllocator::allocate_contiguous(
    DomainId owner, std::int64_t count) {
  ensure(owner != kNoDomain, "FrameAllocator::allocate_contiguous: invalid owner");
  ensure(count >= 0, "FrameAllocator::allocate_contiguous: negative count");
  if (count == 0) return {};
  if (count > free_) {
    throw OutOfMachineMemory(
        "FrameAllocator: requested " + std::to_string(count) +
        " contiguous frames, only " + std::to_string(free_) + " free");
  }
  // First-fit over ascending MFN runs.
  std::int64_t run_start = -1;
  std::int64_t run_len = 0;
  for (std::int64_t mfn = 0; mfn < total_; ++mfn) {
    if (owner_[static_cast<std::size_t>(mfn)] == kNoDomain) {
      if (run_len == 0) run_start = mfn;
      if (++run_len == count) {
        std::vector<hw::FrameNumber> out;
        out.reserve(static_cast<std::size_t>(count));
        for (std::int64_t f = run_start; f < run_start + count; ++f) {
          owner_[static_cast<std::size_t>(f)] = owner;
          out.push_back(f);
        }
        free_ -= count;
        owned_counts_[owner] += count;
        return out;
      }
    } else {
      run_len = 0;
    }
  }
  throw OutOfMachineMemory(
      "FrameAllocator: no contiguous run of " + std::to_string(count) +
      " frames (" + std::to_string(free_) + " free, largest run " +
      std::to_string(largest_free_run()) + "): machine memory is fragmented");
}

void FrameAllocator::claim(DomainId owner, std::span<const hw::FrameNumber> frames) {
  ensure(owner != kNoDomain, "FrameAllocator::claim: invalid owner");
  for (const auto mfn : frames) {
    check_mfn(mfn);
    ensure(owner_[static_cast<std::size_t>(mfn)] == kNoDomain,
           "FrameAllocator::claim: frame " + std::to_string(mfn) + " not free");
  }
  for (const auto mfn : frames) owner_[static_cast<std::size_t>(mfn)] = owner;
  free_ -= static_cast<std::int64_t>(frames.size());
  owned_counts_[owner] += static_cast<std::int64_t>(frames.size());
}

void FrameAllocator::release(hw::FrameNumber mfn) {
  check_mfn(mfn);
  const DomainId owner = owner_[static_cast<std::size_t>(mfn)];
  ensure(owner != kNoDomain, "FrameAllocator::release: frame already free");
  owner_[static_cast<std::size_t>(mfn)] = kNoDomain;
  ++free_;
  --owned_counts_[owner];
}

std::int64_t FrameAllocator::release_all(DomainId owner) {
  std::int64_t freed = 0;
  for (std::size_t i = 0; i < owner_.size(); ++i) {
    if (owner_[i] == owner) {
      owner_[i] = kNoDomain;
      ++freed;
    }
  }
  free_ += freed;
  owned_counts_.erase(owner);
  return freed;
}

DomainId FrameAllocator::owner_of(hw::FrameNumber mfn) const {
  check_mfn(mfn);
  return owner_[static_cast<std::size_t>(mfn)];
}

std::int64_t FrameAllocator::owned_frames(DomainId owner) const {
  const auto it = owned_counts_.find(owner);
  return it == owned_counts_.end() ? 0 : it->second;
}

std::vector<hw::FrameNumber> FrameAllocator::frames_owned_by(DomainId owner) const {
  std::vector<hw::FrameNumber> out;
  for (std::size_t i = 0; i < owner_.size(); ++i) {
    if (owner_[i] == owner) out.push_back(static_cast<hw::FrameNumber>(i));
  }
  return out;
}

std::vector<hw::FrameNumber> FrameAllocator::free_frame_list() const {
  std::vector<hw::FrameNumber> out;
  out.reserve(static_cast<std::size_t>(free_));
  for (std::size_t i = 0; i < owner_.size(); ++i) {
    if (owner_[i] == kNoDomain) out.push_back(static_cast<hw::FrameNumber>(i));
  }
  return out;
}

std::int64_t FrameAllocator::largest_free_run() const {
  std::int64_t best = 0;
  std::int64_t run = 0;
  for (std::size_t i = 0; i < owner_.size(); ++i) {
    if (owner_[i] == kNoDomain) {
      if (++run > best) best = run;
    } else {
      run = 0;
    }
  }
  return best;
}

double FrameAllocator::fragmentation() const {
  if (free_ == 0) return 0.0;
  return 1.0 - static_cast<double>(largest_free_run()) /
                   static_cast<double>(free_);
}

hw::FrameNumber FrameAllocator::lowest_free_from(hw::FrameNumber hint) const {
  for (std::int64_t mfn = hint < 0 ? 0 : hint; mfn < total_; ++mfn) {
    if (owner_[static_cast<std::size_t>(mfn)] == kNoDomain) return mfn;
  }
  return -1;
}

bool FrameAllocator::accounting_ok() const {
  std::int64_t seen_free = 0;
  std::unordered_map<DomainId, std::int64_t> seen_counts;
  for (std::size_t i = 0; i < owner_.size(); ++i) {
    if (owner_[i] == kNoDomain) {
      ++seen_free;
    } else {
      ++seen_counts[owner_[i]];
    }
  }
  if (seen_free != free_) return false;
  for (const auto& [owner, count] : seen_counts) {
    const auto it = owned_counts_.find(owner);
    if (it == owned_counts_.end() || it->second != count) return false;
  }
  // No phantom owners: every cached non-zero count must be backed by frames.
  for (const auto& [owner, count] : owned_counts_) {
    if (count == 0) continue;
    const auto it = seen_counts.find(owner);
    if (it == seen_counts.end() || it->second != count) return false;
  }
  return true;
}

}  // namespace rh::mm
