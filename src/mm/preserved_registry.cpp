#include "mm/preserved_registry.hpp"

#include <algorithm>

#include "simcore/check.hpp"

namespace rh::mm {

void PreservedRegionRegistry::put(PreservedRegion region) {
  ensure(!region.name.empty(), "PreservedRegionRegistry: region needs a name");
  const auto it = regions_.find(region.name);
  if (it == regions_.end()) order_.push_back(region.name);
  regions_[region.name] = std::move(region);
}

const PreservedRegion* PreservedRegionRegistry::find(const std::string& name) const {
  const auto it = regions_.find(name);
  return it == regions_.end() ? nullptr : &it->second;
}

bool PreservedRegionRegistry::erase(const std::string& name) {
  const auto it = regions_.find(name);
  if (it == regions_.end()) return false;
  regions_.erase(it);
  order_.erase(std::remove(order_.begin(), order_.end(), name), order_.end());
  return true;
}

std::vector<std::string> PreservedRegionRegistry::names() const { return order_; }

std::vector<hw::FrameNumber> PreservedRegionRegistry::all_frozen_frames() const {
  std::vector<hw::FrameNumber> out;
  for (const auto& name : order_) {
    const auto& r = regions_.at(name);
    out.insert(out.end(), r.frozen_frames.begin(), r.frozen_frames.end());
  }
  return out;
}

sim::Bytes PreservedRegionRegistry::payload_bytes() const {
  sim::Bytes total = 0;
  for (const auto& [name, r] : regions_) {
    total += static_cast<sim::Bytes>(r.payload.size());
  }
  return total;
}

void PreservedRegionRegistry::clear() {
  regions_.clear();
  order_.clear();
}

}  // namespace rh::mm
