#include "mm/preserved_registry.hpp"

#include <algorithm>

#include "simcore/check.hpp"

namespace rh::mm {

std::uint64_t payload_checksum(const std::vector<std::byte>& payload) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  for (const std::byte b : payload) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

void PreservedRegionRegistry::put(PreservedRegion region) {
  ensure(!region.name.empty(), "PreservedRegionRegistry: region needs a name");
  ensure(regions_.find(region.name) == regions_.end(),
         "PreservedRegionRegistry::put: duplicate region '" + region.name +
             "' (use replace() to overwrite deliberately)");
  check_budget(region, /*replaced_frames=*/0);
  region.checksum = payload_checksum(region.payload);
  order_.push_back(region.name);
  regions_[region.name] = std::move(region);
}

void PreservedRegionRegistry::replace(PreservedRegion region) {
  ensure(!region.name.empty(), "PreservedRegionRegistry: region needs a name");
  const auto it = regions_.find(region.name);
  ensure(it != regions_.end(),
         "PreservedRegionRegistry::replace: no region '" + region.name + "'");
  check_budget(region, frames_of(it->second));
  region.checksum = payload_checksum(region.payload);
  it->second = std::move(region);
}

bool PreservedRegionRegistry::intact(const std::string& name) const {
  const auto it = regions_.find(name);
  ensure(it != regions_.end(), "PreservedRegionRegistry::intact: no such region");
  return payload_checksum(it->second.payload) == it->second.checksum;
}

void PreservedRegionRegistry::corrupt_payload(const std::string& name) {
  const auto it = regions_.find(name);
  ensure(it != regions_.end(),
         "PreservedRegionRegistry::corrupt_payload: no such region");
  auto& payload = it->second.payload;
  ensure(!payload.empty(), "PreservedRegionRegistry::corrupt_payload: empty payload");
  payload[payload.size() / 2] ^= std::byte{0x01};
}

const PreservedRegion* PreservedRegionRegistry::find(const std::string& name) const {
  const auto it = regions_.find(name);
  return it == regions_.end() ? nullptr : &it->second;
}

bool PreservedRegionRegistry::erase(const std::string& name) {
  const auto it = regions_.find(name);
  if (it == regions_.end()) return false;
  regions_.erase(it);
  order_.erase(std::remove(order_.begin(), order_.end(), name), order_.end());
  return true;
}

std::vector<std::string> PreservedRegionRegistry::names() const { return order_; }

std::vector<hw::FrameNumber> PreservedRegionRegistry::all_frozen_frames() const {
  std::vector<hw::FrameNumber> out;
  for (const auto& name : order_) {
    const auto& r = regions_.at(name);
    out.insert(out.end(), r.frozen_frames.begin(), r.frozen_frames.end());
  }
  return out;
}

sim::Bytes PreservedRegionRegistry::payload_bytes() const {
  sim::Bytes total = 0;
  for (const auto& [name, r] : regions_) {
    total += static_cast<sim::Bytes>(r.payload.size());
  }
  return total;
}

std::int64_t PreservedRegionRegistry::frames_of(const PreservedRegion& region) {
  const auto payload_frames =
      (static_cast<std::int64_t>(region.payload.size()) + sim::kPageSize - 1) /
      sim::kPageSize;
  return static_cast<std::int64_t>(region.frozen_frames.size()) + payload_frames;
}

std::int64_t PreservedRegionRegistry::reserved_frames() const {
  std::int64_t total = 0;
  for (const auto& [name, r] : regions_) total += frames_of(r);
  return total;
}

void PreservedRegionRegistry::set_frame_budget(std::int64_t frames) {
  ensure(frames >= 0, "PreservedRegionRegistry: negative frame budget");
  frame_budget_ = frames;
}

void PreservedRegionRegistry::check_budget(const PreservedRegion& incoming,
                                           std::int64_t replaced_frames) const {
  if (frame_budget_ == 0) return;
  const std::int64_t after =
      reserved_frames() - replaced_frames + frames_of(incoming);
  if (after > frame_budget_) {
    throw PreservedBudgetExceeded(
        "PreservedRegionRegistry: region '" + incoming.name + "' needs " +
        std::to_string(frames_of(incoming)) + " frames; registry would hold " +
        std::to_string(after) + " of a " + std::to_string(frame_budget_) +
        "-frame budget");
  }
}

void PreservedRegionRegistry::clear() {
  regions_.clear();
  order_.clear();
  // frame_budget_ survives: it models the contract, not the contents.
}

}  // namespace rh::mm
