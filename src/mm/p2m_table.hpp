// P2M mapping table: pseudo-physical frame number -> machine frame number.
//
// Each domain sees contiguous pseudo-physical memory; the VMM records which
// machine frame backs each pseudo-physical frame. The table is the key
// piece of preserved state in the warm-VM reboot: it is what allows the
// post-reload VMM to re-attach exactly the right machine frames to each
// suspended domain. As in the paper, it costs 8 bytes per pseudo-physical
// page -- 2 MiB per GiB of domain memory -- and it stays correct under
// ballooning, where pseudo-physical memory can exceed populated machine
// memory (holes are legal).
#pragma once

#include <cstdint>
#include <vector>

#include "hw/machine_memory.hpp"
#include "mm/serde.hpp"
#include "simcore/types.hpp"

namespace rh::mm {

/// Pseudo-physical frame number, consecutive from 0 within a domain.
using Pfn = std::int64_t;

inline constexpr hw::FrameNumber kNoFrame = -1;

class P2mTable {
 public:
  P2mTable() = default;

  /// Creates a table spanning `pfn_count` pseudo-physical frames, all holes.
  explicit P2mTable(Pfn pfn_count);

  /// Number of pseudo-physical frames the table spans (including holes).
  [[nodiscard]] Pfn pfn_count() const { return static_cast<Pfn>(map_.size()); }

  /// Number of entries currently populated (machine frames mapped).
  [[nodiscard]] std::int64_t populated() const { return populated_; }

  /// Grows the pseudo-physical space (new entries are holes).
  void grow(Pfn new_pfn_count);

  /// Records that `pfn` is backed by machine frame `mfn`. The slot must be
  /// a hole.
  void add(Pfn pfn, hw::FrameNumber mfn);

  /// Removes the mapping at `pfn` (e.g. the balloon driver returned the
  /// page); returns the machine frame that backed it.
  hw::FrameNumber remove(Pfn pfn);

  /// Machine frame backing `pfn`, or kNoFrame for a hole.
  [[nodiscard]] hw::FrameNumber mfn_of(Pfn pfn) const;

  [[nodiscard]] bool is_hole(Pfn pfn) const { return mfn_of(pfn) == kNoFrame; }

  /// All mapped machine frames in PFN order (the domain's memory image).
  [[nodiscard]] std::vector<hw::FrameNumber> mapped_frames() const;

  /// First populated PFN, or -1 when empty. (The VMM stamps a signature
  /// token into this frame at suspend time.)
  [[nodiscard]] Pfn first_populated_pfn() const;

  /// Table size in bytes: 8 bytes per pseudo-physical frame, as the paper
  /// reports (2 MiB per GiB).
  [[nodiscard]] sim::Bytes size_bytes() const {
    return static_cast<sim::Bytes>(map_.size()) * 8;
  }

  void serialize(ByteWriter& w) const;
  static P2mTable deserialize(ByteReader& r);

  bool operator==(const P2mTable&) const = default;

 private:
  void check_pfn(Pfn pfn) const;

  std::vector<hw::FrameNumber> map_;
  std::int64_t populated_ = 0;
};

}  // namespace rh::mm
