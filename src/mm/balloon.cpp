#include "mm/balloon.hpp"

#include <algorithm>

namespace rh::mm {

std::int64_t BalloonDriver::inflate(std::int64_t frames) {
  std::int64_t released = 0;
  for (Pfn pfn = p2m_.pfn_count() - 1; pfn >= 0 && released < frames; --pfn) {
    if (!p2m_.is_hole(pfn)) {
      const hw::FrameNumber mfn = p2m_.remove(pfn);
      allocator_.release(mfn);
      ++released;
    }
  }
  return released;
}

std::int64_t BalloonDriver::deflate(std::int64_t frames) {
  // Clamp to what the allocator can actually give before touching the
  // P2M table, then collect exactly that many target holes: the single
  // allocate() below can no longer fail, so the table is updated for
  // every allocated frame or not at all (the documented partial-success
  // guarantee -- no half-updated P2M, no OutOfMachineMemory escaping).
  const std::int64_t want = std::min(frames, allocator_.free_frames());
  std::vector<Pfn> holes;
  for (Pfn pfn = 0;
       pfn < p2m_.pfn_count() && std::int64_t(holes.size()) < want; ++pfn) {
    if (p2m_.is_hole(pfn)) holes.push_back(pfn);
  }
  const auto got =
      allocator_.allocate(domain_, static_cast<std::int64_t>(holes.size()));
  for (std::size_t i = 0; i < holes.size(); ++i) p2m_.add(holes[i], got[i]);
  return static_cast<std::int64_t>(holes.size());
}

}  // namespace rh::mm
