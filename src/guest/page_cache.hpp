// Guest page cache (file cache) backed by real simulated machine frames.
//
// The cache does not merely remember *that* a block is cached -- it
// remembers *where* (which guest pseudo-physical frame) and *what* (the
// content token written there). A lookup succeeds only if the backing
// frame still holds the expected token. This is what makes the paper's
// headline result emergent rather than scripted: a warm-VM reboot leaves
// the frames intact, so every lookup still hits; a cold reboot scrubs
// them, so the first access to every file misses (Fig. 8).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>

#include "hw/machine_memory.hpp"
#include "mm/p2m_table.hpp"
#include "simcore/types.hpp"

namespace rh::guest {

/// Identifies one cache block of one file.
struct FileBlock {
  std::int64_t file_id = 0;
  std::int64_t block = 0;

  bool operator==(const FileBlock&) const = default;
};

struct FileBlockHash {
  std::size_t operator()(const FileBlock& b) const {
    return std::hash<std::int64_t>{}(b.file_id * 1000003 + b.block);
  }
};

/// Read/write access to the guest's pseudo-physical memory; implemented by
/// GuestOs (which resolves the current VMM instance and domain id).
class GuestMemoryBacking {
 public:
  virtual ~GuestMemoryBacking() = default;
  virtual void mem_write(mm::Pfn pfn, hw::ContentToken token) = 0;
  [[nodiscard]] virtual hw::ContentToken mem_read(mm::Pfn pfn) const = 0;
};

/// LRU page cache over a fixed region of guest memory.
class PageCache {
 public:
  /// `region_start_pfn` .. start + capacity_blocks*pages_per_block is the
  /// guest memory region dedicated to the cache.
  PageCache(GuestMemoryBacking& backing, mm::Pfn region_start_pfn,
            std::int64_t capacity_blocks, std::int64_t pages_per_block);

  /// True if the block is cached *and* the backing frame still holds the
  /// expected content (i.e. the cached data survived whatever happened to
  /// machine memory in the meantime). A stale entry counts as a miss and
  /// is evicted.
  bool lookup(const FileBlock& key);

  /// Inserts a block (after a miss was served from disk), evicting the
  /// least-recently-used entry if full.
  void insert(const FileBlock& key);

  /// Drops every entry (e.g. on OS reboot the cache starts cold).
  void clear();

  [[nodiscard]] std::int64_t capacity_blocks() const { return capacity_; }
  [[nodiscard]] std::int64_t cached_blocks() const {
    return static_cast<std::int64_t>(map_.size());
  }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t stale_hits() const { return stale_; }

 private:
  struct Entry {
    FileBlock key;
    std::int64_t slot = 0;
    hw::ContentToken token = hw::kScrubbed;
  };
  using LruList = std::list<Entry>;

  [[nodiscard]] mm::Pfn slot_pfn(std::int64_t slot) const {
    return region_start_ + slot * pages_per_block_;
  }
  hw::ContentToken next_token() { return ++token_counter_ << 8 | 0x5a; }

  GuestMemoryBacking& backing_;
  mm::Pfn region_start_;
  std::int64_t capacity_;
  std::int64_t pages_per_block_;
  LruList lru_;  // front = most recent
  std::unordered_map<FileBlock, LruList::iterator, FileBlockHash> map_;
  std::vector<std::int64_t> free_slots_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t stale_ = 0;
  std::uint64_t token_counter_ = 0;
};

}  // namespace rh::guest
