#include "guest/page_cache.hpp"

#include "simcore/check.hpp"

namespace rh::guest {

PageCache::PageCache(GuestMemoryBacking& backing, mm::Pfn region_start_pfn,
                     std::int64_t capacity_blocks, std::int64_t pages_per_block)
    : backing_(backing),
      region_start_(region_start_pfn),
      capacity_(capacity_blocks),
      pages_per_block_(pages_per_block) {
  ensure(capacity_blocks > 0, "PageCache: capacity must be positive");
  ensure(pages_per_block > 0, "PageCache: pages_per_block must be positive");
  free_slots_.reserve(static_cast<std::size_t>(capacity_blocks));
  for (std::int64_t s = capacity_blocks - 1; s >= 0; --s) free_slots_.push_back(s);
}

bool PageCache::lookup(const FileBlock& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  // Verify the backing frame still holds what we cached. If machine memory
  // was scrubbed (hardware reset) or reassigned, this is a miss.
  const Entry& e = *it->second;
  if (backing_.mem_read(slot_pfn(e.slot)) != e.token) {
    ++stale_;
    ++misses_;
    free_slots_.push_back(e.slot);
    lru_.erase(it->second);
    map_.erase(it);
    return false;
  }
  ++hits_;
  // Move to MRU position.
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void PageCache::insert(const FileBlock& key) {
  if (map_.count(key) > 0) return;  // raced in by a concurrent read
  std::int64_t slot = 0;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    // Evict LRU.
    const Entry victim = lru_.back();
    map_.erase(victim.key);
    lru_.pop_back();
    slot = victim.slot;
  }
  Entry e{key, slot, next_token()};
  backing_.mem_write(slot_pfn(slot), e.token);
  lru_.push_front(e);
  map_[key] = lru_.begin();
}

void PageCache::clear() {
  for (const auto& e : lru_) free_slots_.push_back(e.slot);
  lru_.clear();
  map_.clear();
}

}  // namespace rh::guest
