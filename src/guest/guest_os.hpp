// Guest operating system: the paravirtualised Linux kernel model.
//
// One GuestOs object models one VM's operating system across its whole
// life, including across VMM reboots: on-memory suspend/resume and
// disk-backed save/restore keep the object's state (that is the point --
// nothing of the OS is lost), while a cold reboot re-creates the domain
// and re-runs boot(), which resets volatile state (page cache, service
// processes) exactly as a real reboot would.
//
// The OS implements the VMM's GuestHooks (suspend/resume handlers, as in
// the XenoLinux kernel) and the page cache's memory backing. At boot it
// stamps a signature token into its first page and re-checks it on every
// resume: if the memory image was corrupted (e.g. the quick-reload
// mechanism failed to preserve frames), the guest crashes -- observable,
// not silent.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "guest/page_cache.hpp"
#include "guest/service.hpp"
#include "guest/vfs.hpp"
#include "vmm/host.hpp"

namespace rh::guest {

enum class OsState : std::uint8_t {
  kHalted,
  kBooting,
  kRunning,
  kShuttingDown,
  kSuspending,
  kSuspended,
  kResuming,
  kCrashed,
};

[[nodiscard]] const char* to_string(OsState s);

class GuestOs : public vmm::GuestHooks, public GuestMemoryBacking {
 public:
  /// PFN where the kernel stamps its integrity signature.
  static constexpr mm::Pfn kSignaturePfn = 0;
  /// First PFN of the page-cache region (kernel text/data below).
  static constexpr mm::Pfn kCacheRegionStart = 4096;  // 16 MiB in

  GuestOs(vmm::Host& host, std::string name, sim::Bytes memory);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Bytes memory() const { return memory_; }

  /// Configures a reduced initial allocation (Xen's memory= < maxmem=):
  /// the domain is created with only this much populated, the rest of the
  /// nominal `memory()` starting as balloon holes -- how an overcommitted
  /// VM boots at all. 0 (default) populates everything. The kernel image
  /// and the page-cache region must still fit. Valid while halted.
  void set_boot_allocation(sim::Bytes bytes);
  [[nodiscard]] sim::Bytes boot_allocation() const { return boot_allocation_; }

  /// One past the last PFN the OS itself uses (kernel + page cache).
  /// Frames above this are reclaim-safe: a balloon inflate that only takes
  /// pages above it never steals a cache or kernel page.
  [[nodiscard]] mm::Pfn cache_region_end_pfn() const;
  [[nodiscard]] OsState state() const { return state_; }
  [[nodiscard]] DomainId domain_id() const { return domain_id_; }
  [[nodiscard]] vmm::Host& host() { return *host_; }
  [[nodiscard]] const vmm::Host& host() const { return *host_; }

  /// Rebinds this guest to another physical host. Only live migration may
  /// call this, at the switch-over point: the OS must be suspended (its
  /// image is in flight) and the new host must be up.
  void rebind_host(vmm::Host& new_host);
  [[nodiscard]] Vfs& vfs() { return vfs_; }
  [[nodiscard]] PageCache& cache() { return cache_; }

  /// True unless a resume found the memory image corrupted.
  [[nodiscard]] bool integrity_ok() const { return integrity_ok_; }

  /// Marks this guest as a driver domain (a domain U running device
  /// drivers, Sec. 7 of the paper). Driver domains cannot be suspended:
  /// a warm-VM reboot must shut them down and boot them like a cold
  /// reboot would, which is why their presence increases downtime.
  void set_driver_domain(bool is_driver) { driver_domain_ = is_driver; }
  [[nodiscard]] bool driver_domain() const { return driver_domain_; }

  // ----------------------------------------------------------- services
  /// Registers a service (started in registration order at each boot).
  Service& add_service(std::unique_ptr<Service> service);
  [[nodiscard]] Service* find_service(const std::string& name);
  [[nodiscard]] const std::vector<std::unique_ptr<Service>>& services() const {
    return services_;
  }

  /// Whether a request to `service` would currently be answered: the host
  /// network path is up, this OS is running, and the service is running.
  [[nodiscard]] bool service_reachable(const Service& service) const;

  // ---------------------------------------------------------- lifecycle
  /// Creates the domain (through xend) and boots the OS + services.
  /// Valid from kHalted. `on_up` fires when every service is up.
  void create_and_boot(std::function<void()> on_up);

  /// Graceful shutdown: stops services, halts, destroys the domain.
  void shutdown(std::function<void()> on_halted);

  /// Pulls the virtual power cord: valid from any non-halted state, takes
  /// zero simulated time, never calls back. Services are force-stopped,
  /// in-flight boot/shutdown continuations are abandoned (epoch bump), and
  /// the domain -- if it still exists -- is destroyed. This is the
  /// supervisor's recovery hammer for hung boots, corrupted images and
  /// crashed VMMs (where the domain is already gone).
  void force_power_off();

  /// The VMM died underneath this running guest, but its memory image was
  /// preserved in RAM (micro-recovery, DESIGN.md §13): the virtual CPUs
  /// simply stop being scheduled. No suspend event is delivered -- the
  /// kernel never ran its handler -- so the transition is instant:
  /// kRunning -> kSuspended, services left in their running configuration
  /// (unreachable while suspended, exactly as across an on-memory
  /// suspend), ready for resume_domain_on_memory against the rebuilt VMM.
  void interrupt_for_vmm_failure();

  // ------------------------------------------------- VMM hooks (kernel)
  void on_suspend_event(std::function<void()> suspend_hypercall) override;
  void on_resume(DomainId new_id, std::function<void()> done) override;

  // ----------------------------------------------- page-cache backing
  void mem_write(mm::Pfn pfn, hw::ContentToken token) override;
  [[nodiscard]] hw::ContentToken mem_read(mm::Pfn pfn) const override;

 private:
  void boot_sequence(std::function<void()> on_up);
  void start_services_from(std::size_t index, std::function<void()> done);
  void stop_services_from(std::size_t index, std::function<void()> done);
  [[nodiscard]] bool memory_accessible() const;
  void trace(const std::string& msg);

  vmm::Host* host_;  // never null; rebindable only via rebind_host()
  std::string name_;
  sim::Bytes memory_;
  sim::Bytes boot_allocation_ = 0;  // 0 == populate all of memory_
  bool driver_domain_ = false;
  OsState state_ = OsState::kHalted;
  DomainId domain_id_ = kNoDomain;
  /// Bumped by force_power_off(); boot/shutdown continuations capture the
  /// epoch they were scheduled under and become no-ops if it moved on.
  std::uint64_t epoch_ = 0;
  bool integrity_ok_ = true;
  hw::ContentToken signature_ = hw::kScrubbed;
  std::vector<std::unique_ptr<Service>> services_;
  Vfs vfs_;
  PageCache cache_;
};

}  // namespace rh::guest
