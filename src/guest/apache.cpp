#include "guest/apache.hpp"

#include <utility>

#include "guest/guest_os.hpp"
#include "simcore/check.hpp"

namespace rh::guest {

void ApacheService::serve_file(GuestOs& os, std::int64_t file_id,
                               std::function<void(bool)> done) {
  ensure(static_cast<bool>(done), "serve_file: callback required");
  if (!os.service_reachable(*this)) {
    ++refused_;
    done(false);
    return;
  }
  const sim::Bytes size = os.vfs().file(file_id).size;
  os.host().sim().after(kRequestCpu, [this, &os, file_id, size,
                                      done = std::move(done)]() mutable {
    os.vfs().read(file_id, [this, &os, size, done = std::move(done)](
                               const Vfs::ReadResult&) mutable {
      if (!os.service_reachable(*this)) {
        ++refused_;
        done(false);
        return;
      }
      // Response leaves through the host NIC; the Xen creation artifact
      // (if active) inflates the effective cost.
      const auto effective = static_cast<sim::Bytes>(
          static_cast<double>(size) / os.host().throughput_factor());
      os.host().machine().nic().transmit(effective, [this, done = std::move(done)] {
        ++served_;
        done(true);
      });
    });
  });
}

}  // namespace rh::guest
