// Base class for services running inside a guest OS.
//
// A service's lifecycle (start cost, stop cost) is what differentiates the
// paper's workloads: sshd starts in under a second, JBoss takes tens of
// seconds -- which is exactly why the cold-VM reboot's downtime grows with
// the services deployed (Fig. 6b) while warm/saved reboots, which never
// restart services, do not.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "simcore/types.hpp"

namespace rh::guest {

class GuestOs;

class Service {
 public:
  struct Spec {
    std::string name;
    sim::Duration start_cpu = 500 * sim::kMillisecond;
    sim::Bytes start_io = 0;          ///< disk reads during startup
    sim::Duration stop_wait = 300 * sim::kMillisecond;
  };

  explicit Service(Spec spec) : spec_(std::move(spec)) {}
  virtual ~Service() = default;
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  [[nodiscard]] const std::string& name() const { return spec_.name; }
  [[nodiscard]] const Spec& spec() const { return spec_; }
  [[nodiscard]] bool running() const { return running_; }

  /// Increments on every (re)start. A TCP connection established against
  /// generation g receives RST from generation g+1 (state lost).
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// Starts the service: CPU (contended) plus startup disk reads.
  /// Called by GuestOs during boot; `done` fires when the service accepts
  /// requests.
  void start(GuestOs& os, std::function<void()> done);

  /// Stops the service gracefully. The service refuses requests from the
  /// moment stop begins (it closes listening sockets first).
  void stop(GuestOs& os, std::function<void()> done);

  /// Kills the service instantly (the VM lost power): no graceful close,
  /// no stop wait, and any in-flight start() is abandoned -- its completion
  /// callback never fires. Synchronous; safe to call in any state.
  void force_stop();

 protected:
  /// Subclass hook invoked when the service finishes starting.
  virtual void on_started(GuestOs& os) { (void)os; }

 private:
  Spec spec_;
  bool running_ = false;
  std::uint64_t generation_ = 0;
  /// Bumped by force_stop(); in-flight start() completions from an older
  /// epoch are stale and must not mark the service running.
  std::uint64_t interrupt_epoch_ = 0;
};

}  // namespace rh::guest
