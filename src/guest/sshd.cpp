#include "guest/sshd.hpp"

#include "guest/guest_os.hpp"

namespace rh::guest {

net::SegmentOutcome SshService::segment_outcome(
    const GuestOs& os, std::uint64_t session_generation) const {
  // No network path, or the OS is not executing: the segment vanishes and
  // the client retransmits. This covers suspension, save/restore windows
  // and the whole VMM reboot.
  const bool os_executing = os.state() == OsState::kRunning ||
                            os.state() == OsState::kShuttingDown;
  if (!os.host().network_path_up() || !os_executing) {
    return net::SegmentOutcome::kDropped;
  }
  // OS is up but the server was stopped gracefully (cold-reboot shutdown
  // path closes sessions).
  if (!running()) return net::SegmentOutcome::kFin;
  // Server is up but has no memory of this session: it was restarted.
  if (generation() != session_generation) return net::SegmentOutcome::kRst;
  return net::SegmentOutcome::kAck;
}

}  // namespace rh::guest
