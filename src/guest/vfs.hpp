// Minimal guest filesystem: named files on the VM's virtual disk, read
// through the guest page cache.
//
// The virtual disk is one physical partition of the host disk (as in the
// paper's setup), so uncached reads contend with every other VM's I/O.
// File metadata persists across guest reboots (it lives on disk); cache
// state does not survive a cold reboot (it lives in frames that get
// scrubbed).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "simcore/types.hpp"

namespace rh::guest {

class GuestOs;

struct File {
  std::int64_t id = 0;
  std::string name;
  sim::Bytes size = 0;
};

class Vfs {
 public:
  explicit Vfs(GuestOs& os) : os_(os) {}
  Vfs(const Vfs&) = delete;
  Vfs& operator=(const Vfs&) = delete;

  /// Creates a file of the given size; returns its id.
  std::int64_t create_file(std::string name, sim::Bytes size);

  [[nodiscard]] const File& file(std::int64_t id) const;
  [[nodiscard]] std::size_t file_count() const { return files_.size(); }

  struct ReadResult {
    std::int64_t hit_blocks = 0;
    std::int64_t miss_blocks = 0;
    sim::Bytes bytes = 0;

    [[nodiscard]] bool fully_cached() const { return miss_blocks == 0; }
  };

  /// Reads the whole file through the page cache: cached blocks are served
  /// at memory-copy speed, missing blocks go to the (shared) host disk and
  /// are then inserted into the cache. `done` fires at completion.
  void read(std::int64_t file_id, std::function<void(ReadResult)> done);

 private:
  GuestOs& os_;
  std::vector<File> files_;
};

}  // namespace rh::guest
