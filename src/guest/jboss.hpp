// The JBoss application server: the paper's heavyweight service (Fig. 6b).
//
// JBoss's long startup (deploying EARs, initialising subsystems, reading
// hundreds of MiB of jars) is what makes the cold-VM reboot's downtime
// grow with the deployed services: warm and saved reboots never restart
// it, so their downtime is identical to the ssh case.
#pragma once

#include "guest/service.hpp"

namespace rh::guest {

class JbossService : public Service {
 public:
  JbossService()
      : Service({/*name=*/"jboss",
                 /*start_cpu=*/16 * sim::kSecond,
                 /*start_io=*/420 * sim::kMiB,
                 /*stop_wait=*/2 * sim::kSecond}) {}
};

}  // namespace rh::guest
