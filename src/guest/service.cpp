#include "guest/service.hpp"

#include "guest/guest_os.hpp"
#include "simcore/check.hpp"

namespace rh::guest {

void Service::start(GuestOs& os, std::function<void()> done) {
  ensure(static_cast<bool>(done), "Service::start: callback required");
  ensure(!running_, "Service::start: '" + spec_.name + "' already running");
  auto finish = [this, &os, epoch = interrupt_epoch_, done = std::move(done)] {
    // A force_stop() while we were starting means the VM lost power: the
    // half-started process is gone, and the boot chain that requested the
    // start was abandoned with it.
    if (epoch != interrupt_epoch_) return;
    running_ = true;
    ++generation_;
    on_started(os);
    done();
  };
  os.host().machine().cpu().run(
      spec_.start_cpu, [this, &os, finish = std::move(finish)]() mutable {
        if (spec_.start_io > 0) {
          os.host().machine().disk().read(spec_.start_io,
                                          hw::Disk::Access::kSequential,
                                          std::move(finish));
        } else {
          finish();
        }
      });
}

void Service::force_stop() {
  ++interrupt_epoch_;
  running_ = false;
}

void Service::stop(GuestOs& os, std::function<void()> done) {
  ensure(static_cast<bool>(done), "Service::stop: callback required");
  if (!running_) {
    done();
    return;
  }
  // Listening sockets close first: requests are refused from this moment.
  running_ = false;
  os.host().sim().after(spec_.stop_wait, std::move(done));
}

}  // namespace rh::guest
