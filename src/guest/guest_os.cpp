#include "guest/guest_os.hpp"

#include <utility>

#include "simcore/check.hpp"

namespace rh::guest {

const char* to_string(OsState s) {
  switch (s) {
    case OsState::kHalted: return "halted";
    case OsState::kBooting: return "booting";
    case OsState::kRunning: return "running";
    case OsState::kShuttingDown: return "shutting-down";
    case OsState::kSuspending: return "suspending";
    case OsState::kSuspended: return "suspended";
    case OsState::kResuming: return "resuming";
    case OsState::kCrashed: return "crashed";
  }
  return "unknown";
}

namespace {

std::int64_t cache_capacity_blocks(const Calibration& calib, sim::Bytes memory) {
  const auto usable = static_cast<sim::Bytes>(
      static_cast<double>(memory) * calib.page_cache_fraction);
  return std::max<sim::Bytes>(1, usable / calib.cache_block_size);
}

}  // namespace

GuestOs::GuestOs(vmm::Host& host, std::string name, sim::Bytes memory)
    : host_(&host),
      name_(std::move(name)),
      memory_(memory),
      vfs_(*this),
      cache_(*this, kCacheRegionStart,
             cache_capacity_blocks(host.calib(), memory),
             host.calib().cache_block_size / sim::kPageSize) {
  const auto cache_pages =
      cache_capacity_blocks(host.calib(), memory) *
      (host.calib().cache_block_size / sim::kPageSize);
  ensure(kCacheRegionStart + cache_pages <= memory / sim::kPageSize,
         "GuestOs: cache region exceeds domain memory");
}

void GuestOs::set_boot_allocation(sim::Bytes bytes) {
  ensure(state_ == OsState::kHalted,
         "GuestOs::set_boot_allocation: OS must be halted");
  ensure(bytes >= 0 && bytes <= memory_,
         "GuestOs::set_boot_allocation: out of [0, memory]");
  if (bytes > 0) {
    ensure(cache_region_end_pfn() <= bytes / sim::kPageSize,
           "GuestOs::set_boot_allocation: kernel + page cache do not fit");
  }
  boot_allocation_ = bytes;
}

mm::Pfn GuestOs::cache_region_end_pfn() const {
  return kCacheRegionStart +
         cache_capacity_blocks(host_->calib(), memory_) *
             (host_->calib().cache_block_size / sim::kPageSize);
}

void GuestOs::trace(const std::string& msg) {
  if (!host_->tracer().enabled()) return;
  host_->tracer().emit(host_->sim().now(), "guest/" + name_, msg);
}

Service& GuestOs::add_service(std::unique_ptr<Service> service) {
  ensure(service != nullptr, "GuestOs::add_service: null service");
  services_.push_back(std::move(service));
  return *services_.back();
}

Service* GuestOs::find_service(const std::string& name) {
  for (auto& s : services_) {
    if (s->name() == name) return s.get();
  }
  return nullptr;
}

bool GuestOs::service_reachable(const Service& service) const {
  // During the early shutdown grace phase the OS still answers requests;
  // the service itself goes down when its stop begins.
  const bool os_executing =
      state_ == OsState::kRunning || state_ == OsState::kShuttingDown;
  return host_->network_path_up() && os_executing && service.running();
}

bool GuestOs::memory_accessible() const {
  // The guest only touches its memory while its virtual CPUs execute; a
  // suspended, halted or crashed guest cannot (late I/O-completion
  // callbacks land here and are dropped).
  const bool executing =
      state_ == OsState::kBooting || state_ == OsState::kRunning ||
      state_ == OsState::kShuttingDown || state_ == OsState::kResuming;
  if (!executing || domain_id_ == kNoDomain || !host_->vmm_running()) {
    return false;
  }
  return host_->vmm().find_domain(domain_id_) != nullptr;
}

void GuestOs::mem_write(mm::Pfn pfn, hw::ContentToken token) {
  // A guest that is not executing cannot touch memory; late I/O completion
  // callbacks land here harmlessly.
  if (!memory_accessible()) return;
  host_->vmm().guest_write(domain_id_, pfn, token);
}

hw::ContentToken GuestOs::mem_read(mm::Pfn pfn) const {
  if (!memory_accessible()) return hw::kScrubbed;
  return host_->vmm().guest_read(domain_id_, pfn);
}

void GuestOs::rebind_host(vmm::Host& new_host) {
  ensure(state_ == OsState::kSuspended,
         "rebind_host: guest must be suspended for migration (is " +
             std::string(to_string(state_)) + ")");
  ensure(new_host.up(), "rebind_host: destination host is not up");
  host_ = &new_host;
  domain_id_ = kNoDomain;  // the destination assigns a new domain id
  trace("switched to destination host");
}

void GuestOs::create_and_boot(std::function<void()> on_up) {
  ensure(static_cast<bool>(on_up), "create_and_boot: callback required");
  ensure(state_ == OsState::kHalted,
         "create_and_boot: OS must be halted (is " + std::string(to_string(state_)) + ")");
  ensure(host_->up(), "create_and_boot: host is not up");
  state_ = OsState::kBooting;
  host_->vmm().create_domain(name_, memory_, this,
                            [this, on_up = std::move(on_up)](DomainId id) {
                              domain_id_ = id;
                              boot_sequence(std::move(on_up));
                            },
                            boot_allocation_);
}

void GuestOs::boot_sequence(std::function<void()> on_up) {
  trace("kernel booting");
  // Injected boot hang: the kernel wedges before init (bad device handshake,
  // a driver spinning on a lost interrupt). Nothing further is scheduled --
  // the OS sits in kBooting until a watchdog force-powers it off.
  if (host_->faults().roll(fault::FaultKind::kGuestBootHang,
                           host_->sim().now(), "boot:" + name_)) {
    trace("kernel boot HUNG (injected); only a power-off can recover");
    return;
  }
  // A fresh boot starts with a cold cache and a new kernel image layout.
  cache_.clear();
  const Calibration& calib = host_->calib();
  const auto epoch = epoch_;
  host_->machine().cpu().run(calib.os_kernel_boot_cpu, [this, &calib, epoch,
                                                       on_up = std::move(on_up)]() mutable {
    if (epoch != epoch_) return;
    // Boot-time disk reads (kernel modules, init, service binaries) go
    // through the shared host disk -- the source of parallel-boot
    // contention.
    host_->machine().disk().read(
        calib.os_boot_io, hw::Disk::Access::kSequential,
        [this, &calib, epoch, on_up = std::move(on_up)]() mutable {
          if (epoch != epoch_) return;
          host_->sim().after(host_->jittered(calib.os_userland_wait), [this, epoch,
                                                     on_up = std::move(on_up)]() mutable {
            if (epoch != epoch_) return;
            // Stamp the integrity signature.
            signature_ = host_->rng().next() | 1;
            integrity_ok_ = true;
            mem_write(kSignaturePfn, signature_);
            start_services_from(0, [this, epoch, on_up = std::move(on_up)] {
              if (epoch != epoch_) return;
              state_ = OsState::kRunning;
              if (host_->tracer().enabled()) {
                trace("up (" + std::to_string(services_.size()) + " services)");
              }
              on_up();
            });
          });
        });
  });
}

void GuestOs::start_services_from(std::size_t index, std::function<void()> done) {
  if (index == services_.size()) {
    done();
    return;
  }
  Service& svc = *services_[index];
  svc.start(*this, [this, index, done = std::move(done)]() mutable {
    start_services_from(index + 1, std::move(done));
  });
}

void GuestOs::stop_services_from(std::size_t index, std::function<void()> done) {
  if (index == services_.size()) {
    done();
    return;
  }
  Service& svc = *services_[index];
  svc.stop(*this, [this, index, done = std::move(done)]() mutable {
    stop_services_from(index + 1, std::move(done));
  });
}

void GuestOs::shutdown(std::function<void()> on_halted) {
  ensure(static_cast<bool>(on_halted), "shutdown: callback required");
  ensure(state_ == OsState::kRunning || state_ == OsState::kCrashed,
         "shutdown: OS not running (is " + std::string(to_string(state_)) + ")");
  state_ = OsState::kShuttingDown;
  trace("shutting down");
  const Calibration& calib = host_->calib();
  const auto epoch = epoch_;
  // Early shutdown scripts run before services are stopped; requests are
  // still answered during the grace phase (the OS is merely state-changed,
  // services remain up).
  host_->sim().after(calib.os_shutdown_grace, [this, &calib, epoch,
                                              on_halted = std::move(on_halted)]() mutable {
  if (epoch != epoch_) return;
  stop_services_from(0, [this, &calib, epoch, on_halted = std::move(on_halted)]() mutable {
    if (epoch != epoch_) return;
    host_->sim().after(host_->jittered(calib.os_shutdown_wait), [this, &calib, epoch,
                                               on_halted = std::move(on_halted)]() mutable {
      if (epoch != epoch_) return;
      host_->machine().cpu().run(
          calib.os_shutdown_cpu,
          [this, &calib, epoch, on_halted = std::move(on_halted)]() mutable {
            host_->machine().disk().write(
                calib.os_shutdown_io, hw::Disk::Access::kSequential,
                [this, epoch, on_halted = std::move(on_halted)] {
                  if (epoch != epoch_) return;
                  state_ = OsState::kHalted;
                  trace("halted");
                  // The VMM tears the halted domain down (xm destroy).
                  if (host_->vmm_running() &&
                      host_->vmm().find_domain(domain_id_) != nullptr) {
                    host_->vmm().destroy_domain(domain_id_);
                  }
                  domain_id_ = kNoDomain;
                  on_halted();
                });
          });
    });
  });
  });
}

void GuestOs::force_power_off() {
  if (state_ == OsState::kHalted) return;
  if (host_->tracer().enabled()) {
    trace("forced power-off (state was " + std::string(to_string(state_)) + ")");
  }
  ++epoch_;
  for (auto& s : services_) s->force_stop();
  if (host_->vmm_running() && domain_id_ != kNoDomain &&
      host_->vmm().find_domain(domain_id_) != nullptr) {
    host_->vmm().destroy_domain(domain_id_);
  }
  domain_id_ = kNoDomain;
  state_ = OsState::kHalted;
}

void GuestOs::interrupt_for_vmm_failure() {
  ensure(state_ == OsState::kRunning,
         "interrupt_for_vmm_failure: OS not running (is " +
             std::string(to_string(state_)) + ")");
  ++epoch_;  // abandon in-flight continuations; the vCPUs stopped cold
  domain_id_ = kNoDomain;  // the domain object died with the VMM
  state_ = OsState::kSuspended;
  trace("frozen mid-flight: VMM failed, memory image preserved");
}

void GuestOs::on_suspend_event(std::function<void()> suspend_hypercall) {
  ensure(state_ == OsState::kRunning,
         "on_suspend_event: OS not running (is " + std::string(to_string(state_)) + ")");
  state_ = OsState::kSuspending;
  trace("suspend handler: detaching devices");
  host_->sim().after(host_->calib().suspend_handler,
                    [this, hypercall = std::move(suspend_hypercall)] {
                      state_ = OsState::kSuspended;
                      hypercall();
                    });
}

void GuestOs::on_resume(DomainId new_id, std::function<void()> done) {
  ensure(state_ == OsState::kSuspended,
         "on_resume: OS not suspended (is " + std::string(to_string(state_)) + ")");
  domain_id_ = new_id;
  state_ = OsState::kResuming;
  host_->sim().after(host_->calib().resume_handler, [this, done = std::move(done)] {
    // Verify the memory image survived. If the VMM failed to preserve the
    // frozen frames, the kernel's own pages are gone and the guest
    // crashes rather than running on corrupted state.
    if (mem_read(kSignaturePfn) != signature_) {
      integrity_ok_ = false;
      state_ = OsState::kCrashed;
      trace("RESUME FAILED: memory image corrupted");
      done();
      return;
    }
    // Re-establish the communication channels to the VMM (resume handler
    // re-binds its event channels) and reattach devices.
    if (memory_accessible()) {
      auto& evch = host_->vmm().domain(domain_id_).event_channels();
      const auto port = evch.alloc_unbound(kDomain0);
      evch.bind(port);
      evch.close(port);  // transient re-handshake port
    }
    state_ = OsState::kRunning;
    trace("resumed; services continue without restart");
    done();
  });
}

}  // namespace rh::guest
