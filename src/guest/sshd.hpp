// The ssh server: the paper's lightweight service (Fig. 6a).
#pragma once

#include "guest/service.hpp"
#include "net/tcp.hpp"

namespace rh::guest {

class SshService : public Service {
 public:
  SshService()
      : Service({/*name=*/"sshd",
                 /*start_cpu=*/500 * sim::kMillisecond,
                 /*start_io=*/4 * sim::kMiB,
                 /*stop_wait=*/300 * sim::kMillisecond}) {}

  /// Fate of a TCP segment arriving now for a session established against
  /// service generation `session_generation` (Sec. 5.3):
  ///  - host unreachable / OS not running  -> silently dropped (retransmit)
  ///  - service stopped gracefully         -> FIN (session ends)
  ///  - service restarted (new generation) -> RST (state lost)
  ///  - otherwise                          -> ACK
  [[nodiscard]] net::SegmentOutcome segment_outcome(
      const GuestOs& os, std::uint64_t session_generation) const;

  /// Server-side response latency for an interactive probe.
  [[nodiscard]] sim::Duration probe_response_time() const {
    return 1 * sim::kMillisecond;
  }
};

}  // namespace rh::guest
