// The Apache web server: serves files through the guest page cache
// (Figures 7 and 8b).
#pragma once

#include <cstdint>
#include <functional>

#include "guest/service.hpp"

namespace rh::guest {

class ApacheService : public Service {
 public:
  ApacheService()
      : Service({/*name=*/"httpd",
                 /*start_cpu=*/1 * sim::kSecond,
                 /*start_io=*/20 * sim::kMiB,
                 /*stop_wait=*/500 * sim::kMillisecond}) {}

  /// Serves one file: request parsing (CPU), file read through the page
  /// cache (memory copy or disk), then the response through the host NIC,
  /// whose effective bandwidth reflects the host's current throughput
  /// factor. `done(true)` on success; `done(false)` if the service was
  /// unreachable when the request arrived or went down mid-request.
  void serve_file(GuestOs& os, std::int64_t file_id,
                  std::function<void(bool ok)> done);

  [[nodiscard]] std::uint64_t requests_served() const { return served_; }
  [[nodiscard]] std::uint64_t requests_refused() const { return refused_; }

 private:
  /// Per-request parsing/dispatch overhead.
  static constexpr sim::Duration kRequestCpu = 300;  // microseconds

  std::uint64_t served_ = 0;
  std::uint64_t refused_ = 0;
};

}  // namespace rh::guest
