#include "guest/vfs.hpp"

#include <utility>

#include "guest/guest_os.hpp"
#include "simcore/check.hpp"

namespace rh::guest {

std::int64_t Vfs::create_file(std::string name, sim::Bytes size) {
  ensure(size > 0, "Vfs::create_file: size must be positive");
  const auto id = static_cast<std::int64_t>(files_.size());
  files_.push_back({id, std::move(name), size});
  return id;
}

const File& Vfs::file(std::int64_t id) const {
  ensure(id >= 0 && static_cast<std::size_t>(id) < files_.size(),
         "Vfs::file: no such file");
  return files_[static_cast<std::size_t>(id)];
}

void Vfs::read(std::int64_t file_id, std::function<void(ReadResult)> done) {
  ensure(static_cast<bool>(done), "Vfs::read: callback required");
  const File& f = file(file_id);
  const Calibration& calib = os_.host().calib();
  const sim::Bytes bs = calib.cache_block_size;
  const std::int64_t blocks = (f.size + bs - 1) / bs;

  ReadResult result;
  result.bytes = f.size;
  std::vector<FileBlock> missing;
  sim::Bytes miss_bytes = 0;
  for (std::int64_t b = 0; b < blocks; ++b) {
    const FileBlock key{file_id, b};
    const sim::Bytes span = std::min(bs, f.size - b * bs);
    if (os_.cache().lookup(key)) {
      ++result.hit_blocks;
    } else {
      ++result.miss_blocks;
      missing.push_back(key);
      miss_bytes += span;
    }
  }

  // Cached blocks are copied out of memory; missing blocks are fetched
  // from the shared host disk (one access, then sequential within the
  // file) and inserted into the cache.
  const auto hit_time = sim::transfer_time(result.hit_blocks * bs, calib.mem_copy_bps);
  os_.host().sim().after(hit_time, [this, result, missing = std::move(missing),
                                    miss_bytes, done = std::move(done)]() mutable {
    if (missing.empty()) {
      done(result);
      return;
    }
    os_.host().machine().disk().read(
        miss_bytes, hw::Disk::Access::kRandom,
        [this, result, missing = std::move(missing), done = std::move(done)] {
          for (const auto& key : missing) os_.cache().insert(key);
          done(result);
        });
  });
}

}  // namespace rh::guest
