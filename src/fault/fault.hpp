// Deterministic fault injection: the "failing world" the recovery layer
// is tested against.
//
// The paper's availability argument assumes every warm reboot, disk
// save/restore and migration succeeds; ReHype (Le & Tamir) shows the
// interesting regime is exactly when the rejuvenation mechanism itself
// fails, and Garg et al.'s checkpoint work shows saved images can be lost
// or corrupted. The FaultInjector gives every host a *fault plan*: a
// per-mechanism failure probability evaluated at well-defined injection
// points (see FaultKind). Draws come from a private RNG substream split
// off the host's generator with Rng::split(), so a fault schedule is
//  - deterministic per seed: the same seed produces the same faults at
//    the same simulated times, and
//  - independent of experiment scheduling: exp::run_grid derives one
//    substream per replication on the calling thread, so the merged
//    output is byte-identical at any --threads value.
//
// A disabled injector (any rate == 0 for that kind) never draws from its
// stream, so default configurations reproduce pre-fault outputs exactly.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "simcore/random.hpp"
#include "simcore/simulation.hpp"
#include "simcore/types.hpp"

namespace rh::fault {

/// Every injection point in the simulator, i.e. the fault taxonomy of
/// DESIGN.md §8. Keep kCount last.
enum class FaultKind : std::uint8_t {
  kXexecLoadFailure,       ///< quick-reload image load fails (warm path)
  kVmmCrash,               ///< sudden VMM crash: aging hits before the timer
  kDiskWriteError,         ///< save_to_disk write fails; image lost
  kDiskReadError,          ///< restore_from_disk read fails; image unusable
  kCorruptPreservedImage,  ///< preserved image corrupted; caught by checksum
  kMigrationAbort,         ///< pre-copy round aborts mid-migration
  kGuestBootHang,          ///< guest OS boot hangs (watchdog territory)
  kPreservedRegionLeak,    ///< incoming VMM fails to release a stale region
  kFrameAllocFailure,      ///< frame allocation fails mid-suspend; no image
  kBalloonReclaimFailure,  ///< balloon inflate reclaims nothing under pressure
  kVmmHang,                ///< VMM wedges (livelock); caught by the watchdog
  kCount,
};

[[nodiscard]] const char* to_string(FaultKind k);

/// Per-mechanism failure probabilities, evaluated independently at each
/// injection point. All-zero (the default) disables injection entirely.
struct FaultConfig {
  double xexec_failure_rate = 0.0;
  double vmm_crash_rate = 0.0;
  double disk_write_error_rate = 0.0;
  double disk_read_error_rate = 0.0;
  double image_corruption_rate = 0.0;
  double migration_abort_rate = 0.0;
  double boot_hang_rate = 0.0;
  double preserved_region_leak_rate = 0.0;
  double frame_alloc_failure_rate = 0.0;
  double balloon_reclaim_failure_rate = 0.0;
  double vmm_hang_rate = 0.0;

  [[nodiscard]] double rate_of(FaultKind k) const;
  [[nodiscard]] bool enabled() const;

  /// Every mechanism fails with the same probability -- the x-axis of the
  /// availability-vs-fault-rate sweep.
  [[nodiscard]] static FaultConfig uniform(double rate);
};

/// One injected fault, for post-mortem accounting and determinism tests.
struct FaultRecord {
  FaultKind kind = FaultKind::kCount;
  sim::SimTime at = 0;
  std::string where;
};

/// Per-host fault plan. Mechanisms call roll() at their injection point;
/// a hit is recorded and the mechanism then misbehaves accordingly.
class FaultInjector {
 public:
  /// Disabled injector: no rates, never draws.
  FaultInjector() = default;

  /// `stream` must be a private substream (e.g. host_rng.split()) so the
  /// fault schedule never perturbs, and is never perturbed by, other
  /// draws on the host.
  FaultInjector(FaultConfig config, sim::Rng stream)
      : config_(config), stream_(stream) {}

  [[nodiscard]] bool enabled() const { return config_.enabled(); }
  [[nodiscard]] const FaultConfig& config() const { return config_; }

  /// Draws the injection decision for one arrival at an injection point.
  /// Never draws (and always returns false) when the kind's rate is zero,
  /// so disabled kinds leave the stream untouched.
  bool roll(FaultKind kind, sim::SimTime now, const std::string& where);

  [[nodiscard]] const std::vector<FaultRecord>& injected() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t count(FaultKind kind) const;
  [[nodiscard]] std::uint64_t total_injected() const { return records_.size(); }

  /// "kind@t:where;..." -- a compact schedule fingerprint for determinism
  /// assertions across thread counts.
  [[nodiscard]] std::string schedule_fingerprint() const;

 private:
  FaultConfig config_;
  sim::Rng stream_;
  std::vector<FaultRecord> records_;
  std::array<std::uint64_t, static_cast<std::size_t>(FaultKind::kCount)>
      counts_{};
};

/// Steady-state VMM failure arrivals: crashes that strike *between*
/// rejuvenation passes, not only at the pre-rejuvenation injection point.
///
/// Every check_interval the process polls the injector once for kVmmCrash
/// and, if that misses, once for kVmmHang, both at the "steady-state"
/// site. On a hit it pauses itself and hands the kind to the handler --
/// the recovery path decides how to respond and calls resume() when the
/// host is healthy again, re-arming the next check. start() schedules
/// nothing at all while both steady rates are zero, so a disabled process
/// draws nothing and leaves the fault schedule untouched (the same
/// zero-draw hygiene contract as FaultInjector::roll).
class SteadyFaultProcess {
 public:
  struct Config {
    sim::Duration check_interval = sim::kMinute;
  };

  /// `injector` must outlive the process. Host::configure_faults replaces
  /// the injector's *value*, not the object, so a reference into the host
  /// stays valid across re-arming.
  SteadyFaultProcess(sim::Simulation& sim, FaultInjector& injector,
                     Config config);

  /// Arms the process. The handler is invoked at most once per pause
  /// window, with the kind that struck. No-op when both steady rates are
  /// zero at the time of the call.
  void start(std::function<void(FaultKind)> on_fault);

  /// Cancels any pending check; the handler is dropped.
  void stop();

  /// Re-arms after a handled fault (next check is one interval from now).
  /// No-op when a check is already pending, so overlapping recovery paths
  /// (absorbed arrival + completed ladder) can both call it safely.
  void resume();

  /// Whether a check is currently scheduled.
  [[nodiscard]] bool armed() const { return pending_ != sim::kInvalidEventId; }

  /// Whether the process is started and not stopped. A recovery ladder
  /// that completes after stop() must not resume() a dropped handler.
  [[nodiscard]] bool running() const { return static_cast<bool>(on_fault_); }

 private:
  void schedule_next();
  void tick();
  [[nodiscard]] bool rates_enabled() const;

  sim::Simulation& sim_;
  FaultInjector& injector_;
  Config config_;
  std::function<void(FaultKind)> on_fault_;
  sim::EventId pending_ = sim::kInvalidEventId;
};

}  // namespace rh::fault
