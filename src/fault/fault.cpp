#include "fault/fault.hpp"

#include "simcore/check.hpp"

namespace rh::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kXexecLoadFailure: return "xexec-load-failure";
    case FaultKind::kVmmCrash: return "vmm-crash";
    case FaultKind::kDiskWriteError: return "disk-write-error";
    case FaultKind::kDiskReadError: return "disk-read-error";
    case FaultKind::kCorruptPreservedImage: return "corrupt-preserved-image";
    case FaultKind::kMigrationAbort: return "migration-abort";
    case FaultKind::kGuestBootHang: return "guest-boot-hang";
    case FaultKind::kPreservedRegionLeak: return "preserved-region-leak";
    case FaultKind::kFrameAllocFailure: return "frame-alloc-failure";
    case FaultKind::kBalloonReclaimFailure: return "balloon-reclaim-failure";
    case FaultKind::kVmmHang: return "vmm-hang";
    case FaultKind::kCount: break;
  }
  return "unknown";
}

double FaultConfig::rate_of(FaultKind k) const {
  switch (k) {
    case FaultKind::kXexecLoadFailure: return xexec_failure_rate;
    case FaultKind::kVmmCrash: return vmm_crash_rate;
    case FaultKind::kDiskWriteError: return disk_write_error_rate;
    case FaultKind::kDiskReadError: return disk_read_error_rate;
    case FaultKind::kCorruptPreservedImage: return image_corruption_rate;
    case FaultKind::kMigrationAbort: return migration_abort_rate;
    case FaultKind::kGuestBootHang: return boot_hang_rate;
    case FaultKind::kPreservedRegionLeak: return preserved_region_leak_rate;
    case FaultKind::kFrameAllocFailure: return frame_alloc_failure_rate;
    case FaultKind::kBalloonReclaimFailure: return balloon_reclaim_failure_rate;
    case FaultKind::kVmmHang: return vmm_hang_rate;
    case FaultKind::kCount: break;
  }
  throw InvariantViolation("FaultConfig::rate_of: bad kind");
}

bool FaultConfig::enabled() const {
  for (std::size_t k = 0; k < static_cast<std::size_t>(FaultKind::kCount); ++k) {
    if (rate_of(static_cast<FaultKind>(k)) > 0.0) return true;
  }
  return false;
}

FaultConfig FaultConfig::uniform(double rate) {
  ensure(rate >= 0.0 && rate <= 1.0, "FaultConfig::uniform: rate out of [0,1]");
  FaultConfig c;
  c.xexec_failure_rate = rate;
  c.vmm_crash_rate = rate;
  c.disk_write_error_rate = rate;
  c.disk_read_error_rate = rate;
  c.image_corruption_rate = rate;
  c.migration_abort_rate = rate;
  c.boot_hang_rate = rate;
  c.preserved_region_leak_rate = rate;
  c.frame_alloc_failure_rate = rate;
  c.balloon_reclaim_failure_rate = rate;
  c.vmm_hang_rate = rate;
  return c;
}

bool FaultInjector::roll(FaultKind kind, sim::SimTime now,
                         const std::string& where) {
  const double rate = config_.rate_of(kind);
  if (rate <= 0.0) return false;  // disabled kinds leave the stream untouched
  if (!stream_.chance(rate)) return false;
  ++counts_[static_cast<std::size_t>(kind)];
  records_.push_back({kind, now, where});
  return true;
}

std::uint64_t FaultInjector::count(FaultKind kind) const {
  ensure(kind != FaultKind::kCount, "FaultInjector::count: bad kind");
  return counts_[static_cast<std::size_t>(kind)];
}

std::string FaultInjector::schedule_fingerprint() const {
  std::string out;
  for (const auto& r : records_) {
    out += to_string(r.kind);
    out += '@';
    out += std::to_string(r.at);
    out += ':';
    out += r.where;
    out += ';';
  }
  return out;
}

SteadyFaultProcess::SteadyFaultProcess(sim::Simulation& sim,
                                       FaultInjector& injector, Config config)
    : sim_(sim), injector_(injector), config_(config) {
  ensure(config_.check_interval > 0,
         "SteadyFaultProcess: check_interval must be positive");
}

bool SteadyFaultProcess::rates_enabled() const {
  return injector_.config().rate_of(FaultKind::kVmmCrash) > 0.0 ||
         injector_.config().rate_of(FaultKind::kVmmHang) > 0.0;
}

void SteadyFaultProcess::start(std::function<void(FaultKind)> on_fault) {
  ensure(static_cast<bool>(on_fault), "SteadyFaultProcess::start: callback required");
  ensure(!armed(), "SteadyFaultProcess::start: already armed");
  on_fault_ = std::move(on_fault);
  if (!rates_enabled()) return;  // zero-draw: schedule nothing at all
  schedule_next();
}

void SteadyFaultProcess::stop() {
  if (armed()) {
    sim_.cancel(pending_);
    pending_ = sim::kInvalidEventId;
  }
  on_fault_ = nullptr;
}

void SteadyFaultProcess::resume() {
  ensure(static_cast<bool>(on_fault_),
         "SteadyFaultProcess::resume: not started");
  // A recovery driver may resume once per absorbed arrival *and* once per
  // completed ladder; the second call finds the next check already armed.
  if (armed()) return;
  if (!rates_enabled()) return;
  schedule_next();
}

void SteadyFaultProcess::schedule_next() {
  pending_ = sim_.after(config_.check_interval, [this] {
    pending_ = sim::kInvalidEventId;
    tick();
  });
}

void SteadyFaultProcess::tick() {
  // Crash wins the race when both would strike this interval; the hang
  // roll is skipped on a crash so a hit costs exactly one extra draw.
  if (injector_.roll(FaultKind::kVmmCrash, sim_.now(), "steady-state")) {
    on_fault_(FaultKind::kVmmCrash);  // paused until resume()
    return;
  }
  if (injector_.roll(FaultKind::kVmmHang, sim_.now(), "steady-state")) {
    on_fault_(FaultKind::kVmmHang);
    return;
  }
  schedule_next();
}

}  // namespace rh::fault
