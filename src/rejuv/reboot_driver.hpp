// Reboot drivers: the three VMM-rejuvenation strategies of the paper.
//
//  - warm-VM reboot  (RootHammer): on-memory suspend + quick reload
//  - saved-VM reboot (original Xen): save/restore via disk + hardware reset
//  - cold-VM reboot  (plain): shut down & reboot every OS + hardware reset
//
// A driver owns the orchestration Script; its per-step timing records are
// the operation breakdown the paper superimposes on Figure 7.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "guest/guest_os.hpp"
#include "simcore/script.hpp"
#include "vmm/host.hpp"

namespace rh::rejuv {

enum class RebootKind : std::uint8_t { kWarm, kSaved, kCold };

[[nodiscard]] const char* to_string(RebootKind k);

class RebootDriver {
 public:
  /// The driver rejuvenates `host`'s VMM; `guests` are the VMs that must
  /// survive (or be rebooted through) the procedure.
  RebootDriver(vmm::Host& host, std::vector<guest::GuestOs*> guests);
  virtual ~RebootDriver() = default;
  RebootDriver(const RebootDriver&) = delete;
  RebootDriver& operator=(const RebootDriver&) = delete;

  [[nodiscard]] virtual RebootKind kind() const = 0;

  /// Runs the full rejuvenation cycle. On completion the VMM has been
  /// rebooted and every guest's services answer again. One-shot.
  void run(std::function<void()> on_complete);

  [[nodiscard]] bool completed() const { return completed_; }
  [[nodiscard]] sim::SimTime started_at() const { return started_at_; }
  [[nodiscard]] sim::SimTime finished_at() const { return finished_at_; }
  [[nodiscard]] sim::Duration total_duration() const {
    return finished_at_ - started_at_;
  }

  /// Per-operation timing breakdown (Fig. 7's superimposed bars).
  [[nodiscard]] const std::vector<sim::StepRecord>& breakdown() const;

  /// Span id of this pass in the host observer's span tree (kNoSpan when
  /// the observer was disabled or the driver has not run).
  [[nodiscard]] obs::SpanId pass_span() const { return pass_span_; }

 protected:
  /// Subclasses append their steps to the script.
  virtual void build(sim::Script& script) = 0;

  // -------------------------------------------------- shared step bodies
  using GuestList = std::vector<guest::GuestOs*>;

  /// Resumes guests from preserved in-memory images (parallel; xend
  /// serialises the per-domain part).
  void resume_on_memory(const GuestList& guests, std::function<void()> done);
  /// Saves guests' domains to disk (suspends all immediately; image
  /// writes serialise on the disk).
  void save_to_disk(const GuestList& guests, std::function<void()> done);
  /// Restores guests from their disk images.
  void restore_from_disk(const GuestList& guests, std::function<void()> done);
  /// Gracefully shuts down guest OSes (parallel).
  void shutdown_guests(const GuestList& guests, std::function<void()> done);
  /// Re-creates and boots guest OSes (parallel; xend/disk serialise).
  void boot_guests(const GuestList& guests, std::function<void()> done);

  /// Guests whose images can be preserved (everything but driver domains).
  [[nodiscard]] GuestList suspendable_guests() const;
  /// Driver domains: must be shut down and rebooted even by warm/saved
  /// reboots (they cannot be suspended; Sec. 7).
  [[nodiscard]] GuestList driver_domain_guests() const;

  vmm::Host& host_;
  GuestList guests_;

 private:
  std::unique_ptr<sim::Script> script_;
  bool started_ = false;
  bool completed_ = false;
  sim::SimTime started_at_ = 0;
  sim::SimTime finished_at_ = 0;
  obs::SpanId pass_span_ = obs::kNoSpan;
  obs::SpanId outer_ambient_ = obs::kNoSpan;
};

/// Warm-VM reboot: the paper's contribution.
class WarmVmReboot final : public RebootDriver {
 public:
  using RebootDriver::RebootDriver;
  [[nodiscard]] RebootKind kind() const override { return RebootKind::kWarm; }

 protected:
  void build(sim::Script& script) override;
};

/// Saved-VM reboot: Xen's disk-backed suspend/resume around a hardware
/// reset (the paper's slow baseline).
class SavedVmReboot final : public RebootDriver {
 public:
  using RebootDriver::RebootDriver;
  [[nodiscard]] RebootKind kind() const override { return RebootKind::kSaved; }

 protected:
  void build(sim::Script& script) override;
};

/// Cold-VM reboot: a plain reboot of everything (the paper's "normal
/// reboot" baseline).
class ColdVmReboot final : public RebootDriver {
 public:
  using RebootDriver::RebootDriver;
  [[nodiscard]] RebootKind kind() const override { return RebootKind::kCold; }

 protected:
  void build(sim::Script& script) override;
};

/// Factory by kind.
[[nodiscard]] std::unique_ptr<RebootDriver> make_reboot_driver(
    RebootKind kind, vmm::Host& host, std::vector<guest::GuestOs*> guests);

}  // namespace rh::rejuv
