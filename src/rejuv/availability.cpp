#include "rejuv/availability.hpp"

#include <cmath>
#include <cstdio>

#include "simcore/check.hpp"

namespace rh::rejuv {

double expected_downtime_s(const AvailabilityParams& p) {
  ensure(p.os_interval > 0 && p.vmm_interval > 0,
         "availability: intervals must be positive");
  ensure(p.vmm_interval % p.os_interval == 0,
         "availability: vmm_interval must be a multiple of os_interval");
  ensure(p.alpha > 0.0 && p.alpha <= 1.0, "availability: alpha out of (0, 1]");
  const double k = static_cast<double>(p.vmm_interval) /
                   static_cast<double>(p.os_interval);
  const double os_reboots = p.vmm_reboot_includes_os ? k - p.alpha : k;
  return p.os_downtime_s * os_reboots + p.vmm_downtime_s;
}

double availability(const AvailabilityParams& p) {
  const double downtime = expected_downtime_s(p);
  const double window = sim::to_seconds(p.vmm_interval);
  return 1.0 - downtime / window;
}

int count_nines(double avail) {
  ensure(avail >= 0.0 && avail < 1.0, "count_nines: availability out of [0,1)");
  int nines = 0;
  double u = 1.0 - avail;
  while (u <= 0.1 + 1e-12 && nines < 12) {
    ++nines;
    u *= 10.0;
  }
  return nines;
}

std::string format_availability(double avail) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f %%", avail * 100.0);
  return buf;
}

}  // namespace rh::rejuv
