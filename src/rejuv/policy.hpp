// Time-based rejuvenation policy (Garg et al.; the paper's Sec. 3.2 usage
// model): each guest OS is rejuvenated on its own fixed interval, and the
// VMM on a longer one. The policy reproduces the scheduling interaction
// the downtime model captures: a cold-VM reboot doubles as an OS
// rejuvenation and *reschedules* the OS timers (Fig. 2b), while a warm or
// saved reboot leaves them alone (Fig. 2a).
//
// Optionally, the policy also watches hypervisor heap pressure and
// triggers an early VMM rejuvenation (proactive aging counteraction).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rejuv/reboot_driver.hpp"

namespace rh::rejuv {

class RejuvenationPolicy {
 public:
  struct Config {
    sim::Duration os_interval = sim::kWeek;
    sim::Duration vmm_interval = 4 * sim::kWeek;
    RebootKind vmm_reboot_kind = RebootKind::kWarm;
    /// Offset between successive guests' OS timers so single-OS reboots do
    /// not contend with each other (matches the paper's measurement of
    /// one-VM-at-a-time OS rejuvenation).
    sim::Duration os_stagger = sim::kHour;
    /// Base retry delay when a rejuvenation must wait for another in
    /// progress. Consecutive deferrals of the same rejuvenation back off
    /// exponentially: the k-th retry waits min(retry_delay_cap,
    /// retry_delay * 2^k), times a jitter factor in [1-j, 1+j]. The first
    /// retry always waits exactly retry_delay, and retry_jitter == 0
    /// draws nothing from the host RNG, so existing seeds reproduce
    /// their pre-backoff schedules exactly.
    sim::Duration retry_delay = 10 * sim::kMinute;
    sim::Duration retry_delay_cap = 80 * sim::kMinute;
    double retry_jitter = 0.0;
    /// If > 0, rejuvenate the VMM early when heap pressure reaches this
    /// fraction (checked every heap_check_interval).
    double heap_pressure_threshold = 0.0;
    sim::Duration heap_check_interval = sim::kHour;
    /// Optional load probe in [0, 1]. When set, a due VMM rejuvenation is
    /// deferred while load exceeds `load_defer_threshold` (Garg et al.'s
    /// time-AND-load policy: rejuvenate on schedule, but in a trough).
    std::function<double()> load_probe;
    double load_defer_threshold = 1.0;
    /// Bound on deferral: after waiting this long past the due time, the
    /// rejuvenation proceeds regardless of load.
    sim::Duration max_load_defer = sim::kDay;
  };

  struct Event {
    sim::SimTime start = 0;
    sim::Duration duration = 0;
    bool is_vmm = false;      ///< false: OS rejuvenation
    std::size_t guest = 0;    ///< index, for OS rejuvenations
    bool heap_triggered = false;
    /// Times this rejuvenation was deferred (busy peer, load) before it
    /// finally ran; each deferral waited one backoff step.
    std::uint64_t deferrals = 0;
  };

  RejuvenationPolicy(vmm::Host& host, std::vector<guest::GuestOs*> guests,
                     Config config);
  RejuvenationPolicy(const RejuvenationPolicy&) = delete;
  RejuvenationPolicy& operator=(const RejuvenationPolicy&) = delete;

  /// Arms all timers, measured from now.
  void start();

  [[nodiscard]] std::uint64_t os_rejuvenations() const { return os_count_; }
  [[nodiscard]] std::uint64_t vmm_rejuvenations() const { return vmm_count_; }
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] bool vmm_rejuvenation_in_progress() const { return vmm_busy_; }
  /// Times a due VMM rejuvenation was deferred because of load.
  [[nodiscard]] std::uint64_t load_deferrals() const { return load_deferrals_; }

 private:
  void schedule_os(std::size_t i, sim::SimTime when);
  void run_os_rejuvenation(std::size_t i);
  void schedule_vmm(sim::SimTime when);
  void run_vmm_rejuvenation(bool heap_triggered);
  void check_heap();
  /// Delay before the (k+1)-th consecutive retry of the same rejuvenation.
  [[nodiscard]] sim::Duration retry_backoff(std::uint64_t k);

  vmm::Host& host_;
  std::vector<guest::GuestOs*> guests_;
  Config config_;
  std::vector<sim::EventId> os_timers_;
  /// Consecutive deferrals of each guest's pending OS rejuvenation (reset
  /// when it runs); drives the exponential backoff and the Event record.
  std::vector<std::uint64_t> os_deferrals_;
  std::uint64_t vmm_deferrals_ = 0;
  sim::EventId vmm_timer_ = sim::kInvalidEventId;
  std::unique_ptr<RebootDriver> active_driver_;
  bool vmm_busy_ = false;
  std::size_t os_busy_count_ = 0;
  std::uint64_t os_count_ = 0;
  std::uint64_t vmm_count_ = 0;
  std::uint64_t load_deferrals_ = 0;
  sim::SimTime vmm_due_since_ = -1;  ///< -1: not currently deferring
  std::vector<Event> events_;
};

}  // namespace rh::rejuv
