#include "rejuv/recovery_driver.hpp"

#include <utility>

#include "simcore/check.hpp"
#include "vmm/host.hpp"

namespace rh::rejuv {

RecoveryDriver::RecoveryDriver(vmm::Host& host,
                               std::vector<guest::GuestOs*> guests,
                               SupervisorConfig supervisor)
    : host_(host), guests_(std::move(guests)), config_(supervisor) {}

bool RecoveryDriver::would_absorb() const {
  return !host_.up() || host_.recovery_in_progress();
}

void RecoveryDriver::on_failure(fault::FaultKind kind,
                                std::function<void(const Outcome&)> done) {
  ensure(static_cast<bool>(done), "RecoveryDriver::on_failure: callback required");
  ++handled_;
  if (would_absorb()) {
    // A ladder already owns the host (a planned wave turn, or the previous
    // unplanned one): this arrival is covered by the in-flight recovery.
    ++absorbed_;
    Outcome out;
    out.kind = kind;
    out.absorbed = true;
    done(out);
    return;
  }
  // Retire the previous ladder now, outside its own completion callback.
  retired_.reset();
  active_ = std::make_unique<Supervisor>(host_, guests_, config_);
  active_->respond_to_failure(
      kind, [this, kind, done = std::move(done)](const SupervisorReport& r) {
        if (r.success) {
          ++recoveries_;
          if (r.micro_recovered) ++micro_;
        } else {
          ++unrecovered_;
        }
        retired_ = std::move(active_);
        Outcome out;
        out.kind = kind;
        out.report = &r;
        done(out);
      });
}

}  // namespace rh::rejuv
