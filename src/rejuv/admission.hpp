// Preserved-memory admission control: the resource rung of the ladder.
//
// A warm-VM reboot only works if every frozen memory image, P2M table and
// execution-state record actually fits in preserved memory across the
// quick reload (paper Sec. 4.1 calls out ballooning-driven overcommit as
// the stress case). The AdmissionController is consulted by the
// Supervisor before each warm pass: it compares the preserved-frame
// demand of every suspendable VM against the budget the incoming VMM can
// honour, and -- under shortfall -- plans a graceful degradation:
//
//   1. balloon-reclaim: inflate the balloon of the largest VMs, shrinking
//      their frozen images (reclaim-safe pages only -- never a kernel or
//      page-cache page);
//   2. demote-to-saved: the largest VMs take the slow disk path this
//      pass, freeing their whole preserved demand; state is kept;
//   3. demote-to-cold: beyond the saved-demotion limit (or when the disk
//      path is disallowed), the VM is shut down and cold-booted; state is
//      lost but its siblings stay warm.
//
// plan() is pure: it mutates nothing and draws nothing from any RNG, so a
// disabled admission controller leaves runs byte-identical. The
// Supervisor executes the plan and emits a typed RecoveryEvent per action
// (DESIGN.md §9).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "guest/guest_os.hpp"
#include "vmm/host.hpp"

namespace rh::rejuv {

struct AdmissionConfig {
  /// Off (default) = never consulted, zero extra work, zero RNG draws.
  bool enabled = false;
  /// Fraction of a VM's reclaim-safe pages (populated pages above its
  /// kernel + page-cache region) one admission pass may balloon out.
  double balloon_reclaim_fraction = 0.5;
  /// If false, demotions skip the disk rung and go straight to cold.
  bool demote_to_saved = true;
  /// Max VMs demoted to saved per pass; -1 = unlimited. Once spent,
  /// further demotions are cold.
  int max_saved_demotions = -1;
  /// Run a frame-compaction pass (Vmm::compact_memory) before suspend, so
  /// the reloading VMM finds compact free runs for region metadata. Time
  /// is charged at moved-bytes / Calibration::mem_copy_bps.
  bool compact_before_suspend = false;
};

/// Per-VM slice of an admission plan.
struct AdmissionReclaim {
  guest::GuestOs* guest = nullptr;
  std::int64_t frames = 0;  ///< balloon pages to reclaim from this VM
};

/// What the Supervisor should do before suspending for a warm reboot.
struct AdmissionPlan {
  std::int64_t budget_frames = 0;  ///< frames available for new images
  std::int64_t demand_frames = 0;  ///< frames all candidates would need
  std::vector<AdmissionReclaim> reclaims;  ///< rung 1, largest VMs first
  std::vector<guest::GuestOs*> demote_saved;  ///< rung 2
  std::vector<guest::GuestOs*> demote_cold;   ///< rung 3
  /// Warm survivors with their (post-reclaim) preserved-frame demand,
  /// largest first -- the escalation order if an executed reclaim
  /// under-delivers (e.g. an injected balloon-reclaim failure).
  std::vector<std::pair<guest::GuestOs*, std::int64_t>> warm;

  [[nodiscard]] bool pressured() const { return demand_frames > budget_frames; }
};

/// Plans (but never executes) preserved-memory admission for one host.
class AdmissionController {
 public:
  AdmissionController(vmm::Host& host, AdmissionConfig config);

  /// Preserved frames domain `name`'s warm image would reserve right now:
  /// its populated pages (frozen in place) plus a conservative estimate
  /// of the serialised-metadata frames. Slightly over-estimating is safe
  /// (admission refuses a fit the registry would have accepted); under-
  /// estimating would let a suspend fail its budget check and silently
  /// lose the image.
  [[nodiscard]] std::int64_t preserved_frames_for(
      const guest::GuestOs& g) const;

  /// Populated pages of `g` that can be ballooned out without touching
  /// the kernel image or the page-cache region.
  [[nodiscard]] std::int64_t reclaim_safe_pages(const guest::GuestOs& g) const;

  /// Frames the incoming VMM can devote to preserved regions: the
  /// configured registry budget (if any) capped by physical capacity
  /// (total - VMM-reserved - dom0), minus what the registry already
  /// holds (leaked stale regions eat the budget).
  [[nodiscard]] std::int64_t available_budget_frames() const;

  /// Pure planning over the running, non-driver candidates. No mutation,
  /// no RNG draws.
  [[nodiscard]] AdmissionPlan plan(
      const std::vector<guest::GuestOs*>& candidates) const;

 private:
  vmm::Host& host_;
  AdmissionConfig config_;
};

}  // namespace rh::rejuv
