#include "rejuv/supervisor.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "mm/balloon.hpp"
#include "simcore/check.hpp"

namespace rh::rejuv {

const char* to_string(RecoveryAction a) {
  switch (a) {
    case RecoveryAction::kStepRetry: return "step-retry";
    case RecoveryAction::kWatchdogPowerOff: return "watchdog-power-off";
    case RecoveryAction::kFallbackToSaved: return "fallback-to-saved";
    case RecoveryAction::kFallbackToCold: return "fallback-to-cold";
    case RecoveryAction::kColdBootSingleVm: return "cold-boot-single-vm";
    case RecoveryAction::kHardwareRebootAfterCrash:
      return "hardware-reboot-after-crash";
    case RecoveryAction::kGaveUp: return "gave-up";
    case RecoveryAction::kBalloonReclaim: return "balloon-reclaim";
    case RecoveryAction::kCompactionPass: return "compaction-pass";
    case RecoveryAction::kDemoteToSaved: return "demote-to-saved";
    case RecoveryAction::kDemoteToCold: return "demote-to-cold";
    case RecoveryAction::kPreservedImageLost: return "preserved-image-lost";
    case RecoveryAction::kMicroRecoveryAttempt: return "micro-recovery-attempt";
    case RecoveryAction::kMicroRecoverySucceeded:
      return "micro-recovery-succeeded";
    case RecoveryAction::kMicroRecoveryFailed: return "micro-recovery-failed";
    case RecoveryAction::kMicroRecoveryMetadataCorrupt:
      return "micro-recovery-metadata-corrupt";
  }
  return "unknown";
}

std::size_t SupervisorReport::recovery_count(RecoveryAction a) const {
  std::size_t n = 0;
  for (const auto& r : recoveries) {
    if (r.action == a) ++n;
  }
  return n;
}

Supervisor::Supervisor(vmm::Host& host, std::vector<guest::GuestOs*> guests,
                       SupervisorConfig config)
    : host_(host), guests_(std::move(guests)), config_(config) {
  ensure(config_.max_step_retries >= 0, "Supervisor: negative retry count");
  ensure(config_.backoff_base > 0 && config_.backoff_cap >= config_.backoff_base,
         "Supervisor: backoff cap must be >= base > 0");
  ensure(config_.boot_watchdog > 0, "Supervisor: watchdog must be positive");
  ensure(config_.hang_detection >= 0, "Supervisor: negative hang detection");
  if (config_.micro.enabled) {
    ensure(config_.micro.max_attempts >= 1,
           "Supervisor: micro-recovery needs at least one attempt");
    ensure(config_.micro.success_rate >= 0.0 &&
               config_.micro.success_rate <= 1.0,
           "Supervisor: micro-recovery success rate out of [0, 1]");
    ensure(config_.micro.attempt_base >= 0,
           "Supervisor: negative micro-recovery attempt base");
  }
  for (const auto* g : guests_) ensure(g != nullptr, "Supervisor: null guest");
}

void Supervisor::trace(const std::string& msg) {
  if (!host_.tracer().enabled()) return;
  host_.tracer().emit(host_.sim().now(), "supervisor", msg);
}

void Supervisor::record(RecoveryAction action, const std::string& subject,
                        const std::string& detail) {
  report_.recoveries.push_back({action, host_.sim().now(), subject, detail});
  if (host_.tracer().enabled()) {
    trace(std::string(to_string(action)) + " [" + subject + "]: " + detail);
  }
  // Mirror the typed RecoveryEvent into the trace stream and bump the
  // per-action counter that the availability sweeps aggregate.
  obs::Observer& obs = host_.obs();
  if (obs.enabled()) {
    obs.emit(host_.sim().now(), obs::Category::kSupervisor,
             obs::EventKind::kRecovery, to_string(action), -1,
             static_cast<std::uint64_t>(action));
    ++obs.metrics().counter(std::string("supervisor.recovery.") +
                            to_string(action));
  }
}

void Supervisor::open_rung(const char* label) {
  obs::Observer& obs = host_.obs();
  if (!obs.enabled()) return;
  if (rung_span_ != obs::kNoSpan) {
    obs.span_close(rung_span_, host_.sim().now());
  }
  rung_span_ = obs.span_open_under(host_.sim().now(), obs::Phase::kLadderRung,
                                   label, pass_span_);
  obs.set_ambient(rung_span_);
}

sim::Duration Supervisor::backoff(int attempt) {
  double d = static_cast<double>(config_.backoff_base) *
             std::ldexp(1.0, attempt);
  d = std::min(d, static_cast<double>(config_.backoff_cap));
  if (config_.backoff_jitter > 0.0) {
    const double u = host_.rng().uniform01();
    d *= 1.0 + config_.backoff_jitter * (2.0 * u - 1.0);
  }
  return std::max<sim::Duration>(1, static_cast<sim::Duration>(d));
}

Supervisor::GuestList Supervisor::suspendable_guests() const {
  GuestList out;
  for (auto* g : guests_) {
    if (!g->driver_domain()) out.push_back(g);
  }
  return out;
}

Supervisor::GuestList Supervisor::driver_domain_guests() const {
  GuestList out;
  for (auto* g : guests_) {
    if (g->driver_domain()) out.push_back(g);
  }
  return out;
}

void Supervisor::for_each_parallel(
    const GuestList& guests,
    const std::function<void(guest::GuestOs&, std::function<void()>)>& fn,
    std::function<void()> done) {
  if (guests.empty()) {
    host_.sim().after(0, std::move(done));
    return;
  }
  auto remaining = std::make_shared<std::size_t>(guests.size());
  auto shared_done = std::make_shared<std::function<void()>>(std::move(done));
  for (auto* g : guests) {
    fn(*g, [remaining, shared_done] {
      if (--*remaining == 0) (*shared_done)();
    });
  }
}

void Supervisor::run(std::function<void(const SupervisorReport&)> done) {
  ensure(static_cast<bool>(done), "Supervisor::run: callback required");
  ensure(!started_, "Supervisor::run: supervisors are one-shot");
  ensure(host_.up(), "Supervisor::run: host is not up");
  host_.begin_recovery();
  started_ = true;
  done_ = std::move(done);
  report_.attempted = config_.preferred;
  report_.started_at = host_.sim().now();
  trace(std::string("begin supervised ") + to_string(config_.preferred));
  if (host_.obs().enabled()) {
    outer_ambient_ = host_.obs().ambient();
    pass_span_ = host_.obs().span_open(
        report_.started_at, obs::Phase::kPass,
        std::string("supervised ") + to_string(config_.preferred));
    host_.obs().set_ambient(pass_span_);
  }

  // Aging can win the race against the rejuvenation timer: the VMM dies
  // right as (or before) the pass begins, taking every domain with it.
  // This is the quiescent point -- no mechanism is mid-flight -- so the
  // crash tears down state without leaving dangling continuations.
  if (host_.faults().roll(fault::FaultKind::kVmmCrash, host_.sim().now(),
                          "pre-rejuvenation")) {
    handle_vmm_failure(fault::FaultKind::kVmmCrash);
    return;
  }
  // A wedge instead of a clean crash: same quiescent point, but the
  // response only starts once the external watchdog notices. Zero draws
  // when the hang rate is not configured.
  if (host_.faults().roll(fault::FaultKind::kVmmHang, host_.sim().now(),
                          "pre-rejuvenation")) {
    handle_vmm_failure(fault::FaultKind::kVmmHang);
    return;
  }

  switch (config_.preferred) {
    case RebootKind::kWarm: start_warm(); return;
    case RebootKind::kSaved: start_saved(); return;
    case RebootKind::kCold: start_cold(); return;
  }
  throw InvariantViolation("Supervisor::run: bad reboot kind");
}

void Supervisor::recover(std::function<void(const SupervisorReport&)> done) {
  ensure(static_cast<bool>(done), "Supervisor::recover: callback required");
  ensure(!started_, "Supervisor::recover: supervisors are one-shot");
  ensure(host_.up(), "Supervisor::recover: host is not up");
  host_.begin_recovery();
  started_ = true;
  done_ = std::move(done);
  report_.attempted = config_.preferred;
  report_.started_at = host_.sim().now();
  GuestList halted;
  for (auto* g : guests_) {
    if (g->state() == guest::OsState::kHalted) halted.push_back(g);
  }
  if (host_.tracer().enabled()) {
    trace("begin recovery of " + std::to_string(halted.size()) +
          " halted guest(s)");
  }
  if (host_.obs().enabled()) {
    outer_ambient_ = host_.obs().ambient();
    pass_span_ = host_.obs().span_open(report_.started_at, obs::Phase::kPass,
                                       "supervised recovery");
    host_.obs().set_ambient(pass_span_);
  }
  boot_cold(halted, [this] { finish(config_.preferred); });
}

// ----------------------------------------------------------- VMM failure

void Supervisor::respond_to_failure(
    fault::FaultKind kind, std::function<void(const SupervisorReport&)> done) {
  ensure(static_cast<bool>(done),
         "Supervisor::respond_to_failure: callback required");
  ensure(!started_, "Supervisor::respond_to_failure: supervisors are one-shot");
  ensure(host_.up(), "Supervisor::respond_to_failure: host is not up");
  ensure(kind == fault::FaultKind::kVmmCrash ||
             kind == fault::FaultKind::kVmmHang,
         "Supervisor::respond_to_failure: not a VMM failure kind");
  host_.begin_recovery();
  started_ = true;
  done_ = std::move(done);
  report_.attempted = config_.preferred;
  report_.started_at = host_.sim().now();
  trace(std::string("begin failure response (") + fault::to_string(kind) +
        ")");
  if (host_.obs().enabled()) {
    outer_ambient_ = host_.obs().ambient();
    pass_span_ = host_.obs().span_open(
        report_.started_at, obs::Phase::kPass,
        std::string("failure response (") + fault::to_string(kind) + ")");
    host_.obs().set_ambient(pass_span_);
  }
  handle_vmm_failure(kind);
}

void Supervisor::handle_vmm_failure(fault::FaultKind kind) {
  report_.vmm_crashed = true;
  auto proceed = [this, kind] {
    if (config_.micro.enabled) {
      start_micro(kind);
    } else {
      crash_fallback(kind, /*micro_exhausted=*/false);
    }
  };
  if (kind == fault::FaultKind::kVmmHang) {
    // A crash announces itself instantly; a wedged hypervisor is only
    // visible once the external watchdog fires, so the response starts
    // after the detection latency (the teardown is modelled at the
    // detection point).
    trace("VMM hang suspected; waiting out watchdog detection");
    host_.sim().after(host_.jittered(config_.hang_detection),
                      std::move(proceed));
    return;
  }
  proceed();
}

void Supervisor::crash_fallback(fault::FaultKind kind, bool micro_exhausted) {
  open_rung("hardware-reboot-after-crash");
  if (micro_exhausted) {
    // Micro-recovery gave up; whatever preserved state the attempts were
    // working over is abandoned before the power cycle.
    host_.abandon_recovery();
  } else {
    host_.crash_vmm();
  }
  // Every domain died with the hypervisor; the guest objects must observe
  // that before they can be cold-booted.
  for (auto* g : guests_) g->force_power_off();
  const char* detail =
      micro_exhausted
          ? "micro-recovery exhausted; hardware reboot and cold boot of "
            "every VM"
          : (kind == fault::FaultKind::kVmmHang
                 ? "VMM hang detected by the watchdog; hardware reboot and "
                   "cold boot of every VM"
                 : "VMM crashed before rejuvenation could run; hardware "
                   "reboot and cold boot of every VM");
  record(RecoveryAction::kHardwareRebootAfterCrash, "vmm", detail);
  host_.hardware_reboot([this] {
    boot_cold(guests_, [this] { finish(RebootKind::kCold); });
  });
}

// -------------------------------- in-place micro-recovery (DESIGN.md §13)

sim::Bytes Supervisor::micro_repair_bytes() const {
  // The rebuild walks every crash snapshot (to re-link P2M and event-
  // channel state into the new instance) plus per-domain heap metadata.
  sim::Bytes total = 0;
  for (const auto& name : host_.preserved().names()) {
    if (name.rfind(vmm::Vmm::kRegionPrefix, 0) != 0) continue;
    if (const auto* region = host_.preserved().find(name)) {
      total += static_cast<sim::Bytes>(region->payload.size()) +
               vmm::Vmm::kDomainHeapCost;
    }
  }
  return total;
}

void Supervisor::start_micro(fault::FaultKind kind) {
  open_rung("micro-recovery");
  // Cut crash snapshots and take the instance down; RAM (and with it the
  // registry) survives for the rebuild.
  host_.fail_vmm(kind);
  // The vCPUs stopped cold under every guest. Memory-preserved guests are
  // frozen in place for a later resume; driver domains lose their backend
  // hardware state with the instance, so they go down for a cold boot
  // exactly as on the warm rung.
  for (auto* g : guests_) {
    if (!g->driver_domain() && g->state() == guest::OsState::kRunning) {
      g->interrupt_for_vmm_failure();
    } else {
      g->force_power_off();
    }
  }
  micro_attempt(kind, 0);
}

void Supervisor::micro_attempt(fault::FaultKind kind, int attempt) {
  ++report_.micro_attempts;
  record(RecoveryAction::kMicroRecoveryAttempt, "vmm",
         "in-place rebuild attempt " + std::to_string(attempt + 1) + " of " +
             std::to_string(config_.micro.max_attempts));
  const sim::Duration repair =
      config_.micro.attempt_base +
      sim::transfer_time(micro_repair_bytes(), host_.calib().mem_copy_bps);
  const obs::SpanId span =
      host_.obs().span_open(host_.sim().now(), obs::Phase::kMicroRecovery,
                            "micro-recovery attempt");
  host_.sim().after(host_.jittered(repair), [this, kind, attempt, span] {
    host_.obs().span_close(span, host_.sim().now());
    if (host_.rng().uniform01() >= config_.micro.success_rate) {
      record(RecoveryAction::kMicroRecoveryFailed, "vmm",
             "heap/domain-metadata rebuild failed (attempt " +
                 std::to_string(attempt + 1) + ")");
      if (attempt + 1 < config_.micro.max_attempts) {
        micro_attempt(kind, attempt + 1);
      } else {
        crash_fallback(kind, /*micro_exhausted=*/true);
      }
      return;
    }
    const vmm::Vmm::MicroRecoveryReport vr = host_.micro_recover_vmm();
    if (!vr.ok()) {
      record(RecoveryAction::kMicroRecoveryMetadataCorrupt, "vmm",
             "rebuilt state unusable (" +
                 std::to_string(vr.corrupt_domains.size()) +
                 " corrupt snapshot(s), frames " +
                 (vr.frames_consistent ? "consistent" : "inconsistent") +
                 "); falling to hardware reboot");
      crash_fallback(kind, /*micro_exhausted=*/true);
      return;
    }
    record(RecoveryAction::kMicroRecoverySucceeded, "vmm",
           "VMM rebuilt in place; " + std::to_string(vr.intact_regions) +
               " of " + std::to_string(vr.regions_checked) +
               " crash snapshot(s) intact");
    report_.micro_recovered = true;
    micro_resume_phase();
  });
}

void Supervisor::micro_resume_phase() {
  sweep_stale_regions();
  // Driver domains never resume over a rebuilt VMM; their crash snapshots
  // are dead weight in the registry.
  for (auto* g : driver_domain_guests()) {
    if (host_.vmm().has_preserved_image(g->name())) {
      discard_preserved_image(g->name());
    }
  }
  // Same per-VM ladder as the warm resume: a missing or corrupt snapshot
  // degrades that VM alone to a cold boot while its siblings resume.
  GuestList intact;
  for (auto* g : suspendable_guests()) {
    if (g->state() != guest::OsState::kSuspended) continue;
    if (!host_.vmm().has_preserved_image(g->name())) {
      record(RecoveryAction::kPreservedImageLost, g->name(),
             "no crash snapshot survived the failure; cold-booting this VM "
             "only");
      g->force_power_off();
      cold_list_.push_back(g);
    } else if (host_.vmm().preserved_image_intact(g->name())) {
      intact.push_back(g);
    } else {
      record(RecoveryAction::kColdBootSingleVm, g->name(),
             "crash snapshot failed its checksum; cold-booting this VM "
             "only");
      discard_preserved_image(g->name());
      g->force_power_off();
      cold_list_.push_back(g);
    }
  }
  const int count = static_cast<int>(intact.size());
  const obs::SpanId resume = host_.obs().span_open(
      host_.sim().now(), obs::Phase::kResume, "micro-recovery resume");
  for_each_parallel(
      intact,
      [this](guest::GuestOs& g, std::function<void()> guest_done) {
        host_.vmm().resume_domain_on_memory(
            g.name(), &g,
            [guest_done = std::move(guest_done)](DomainId) { guest_done(); });
      },
      [this, count, resume] {
        host_.note_simultaneous_creations(count);
        report_.resumed_vms = static_cast<std::size_t>(count);
        host_.obs().span_close(resume, host_.sim().now());
        GuestList to_boot = cold_list_;
        const GuestList drivers = driver_domain_guests();
        to_boot.insert(to_boot.end(), drivers.begin(), drivers.end());
        boot_cold(to_boot, [this] { finish(RebootKind::kWarm); });
      });
}

// ------------------------------------------------------------------ warm

void Supervisor::start_warm() {
  open_rung("warm-VM reboot");
  attempt_xexec(0);
}

void Supervisor::attempt_xexec(int attempt) {
  const obs::SpanId load = host_.obs().span_open(
      host_.sim().now(), obs::Phase::kXexecLoad, "xexec load");
  host_.vmm().xexec_load([this, load, attempt] {
    host_.obs().span_close(load, host_.sim().now());
    if (host_.vmm().xexec_loaded()) {
      warm_after_xexec();
      return;
    }
    if (attempt < config_.max_step_retries) {
      record(RecoveryAction::kStepRetry, "xexec",
             "image load failed (attempt " + std::to_string(attempt + 1) +
                 "); retrying after backoff");
      host_.sim().after(backoff(attempt),
                        [this, attempt] { attempt_xexec(attempt + 1); });
      return;
    }
    // Nothing has been disturbed yet -- every guest still answers -- so
    // degrading to the saved-VM reboot is a clean restart of the ladder.
    record(RecoveryAction::kFallbackToSaved, "xexec",
           "image load failed " + std::to_string(attempt + 1) +
               " times; degrading to saved-VM reboot");
    start_saved();
  });
}

void Supervisor::warm_after_xexec() {
  auto proceed = [this] {
    auto after_drivers = [this] {
      if (host_.calib().suspend_by_vmm_after_dom0_shutdown) {
        host_.shutdown_dom0([this] {
          const obs::SpanId susp = host_.obs().span_open(
              host_.sim().now(), obs::Phase::kSuspend, "on-memory suspend");
          host_.vmm().suspend_all_on_memory([this, susp] {
            host_.obs().span_close(susp, host_.sim().now());
            host_.quick_reload([this] { warm_resume_phase(); });
          });
        });
      } else {
        const obs::SpanId susp = host_.obs().span_open(
            host_.sim().now(), obs::Phase::kSuspend, "on-memory suspend");
        host_.vmm().suspend_all_on_memory([this, susp] {
          host_.obs().span_close(susp, host_.sim().now());
          host_.shutdown_dom0([this] {
            host_.quick_reload([this] { warm_resume_phase(); });
          });
        });
      }
    };
    const GuestList drivers = driver_domain_guests();
    if (drivers.empty()) {
      after_drivers();
      return;
    }
    for_each_parallel(
        drivers,
        [](guest::GuestOs& g, std::function<void()> guest_done) {
          g.shutdown(std::move(guest_done));
        },
        std::move(after_drivers));
  };
  // Preserved-memory admission happens before anything is disturbed:
  // reclaims and demotions need xend (and for saves, the disk path)
  // while dom0 is still up. Disabled admission takes the historical path
  // verbatim -- no extra events, no extra RNG draws.
  if (config_.admission.enabled) {
    run_admission(std::move(proceed));
  } else {
    proceed();
  }
}

// ------------------------------------------- preserved-memory admission

std::int64_t Supervisor::escalate_demotion(AdmissionPlan& plan) {
  if (plan.warm.empty()) return 0;
  auto [g, demand] = plan.warm.front();
  plan.warm.erase(plan.warm.begin());
  const bool saved_allowed =
      config_.admission.demote_to_saved &&
      (config_.admission.max_saved_demotions < 0 ||
       static_cast<int>(plan.demote_saved.size()) <
           config_.admission.max_saved_demotions);
  (saved_allowed ? plan.demote_saved : plan.demote_cold).push_back(g);
  return demand;
}

void Supervisor::run_admission(std::function<void()> done) {
  if (host_.obs().enabled()) {
    const obs::SpanId adm = host_.obs().span_open(
        host_.sim().now(), obs::Phase::kAdmission, "admission");
    done = [this, adm, inner = std::move(done)] {
      host_.obs().span_close(adm, host_.sim().now());
      inner();
    };
  }
  AdmissionController controller(host_, config_.admission);
  AdmissionPlan plan = controller.plan(suspendable_guests());
  report_.pressure.consulted = true;
  report_.pressure.budget_frames = plan.budget_frames;
  report_.pressure.demand_frames = plan.demand_frames;
  report_.pressure.pressured = plan.pressured();

  // Rung 1: execute the planned balloon reclaims. An injected reclaim
  // failure (or a short inflate) leaves a residual shortfall that
  // escalates into further demotions, largest surviving warm VM first.
  std::int64_t residual = 0;
  for (const auto& r : plan.reclaims) {
    if (host_.faults().roll(fault::FaultKind::kBalloonReclaimFailure,
                            host_.sim().now(),
                            "admission:" + r.guest->name())) {
      record(RecoveryAction::kBalloonReclaim, r.guest->name(),
             "balloon reclaim FAILED (injected); 0 of " +
                 std::to_string(r.frames) + " frames reclaimed");
      residual += r.frames;
      continue;
    }
    auto* d = host_.vmm().find_domain_by_name(r.guest->name());
    ensure(d != nullptr, "run_admission: reclaim target has no domain");
    mm::BalloonDriver balloon(d->id(), host_.vmm().allocator(), d->p2m());
    const std::int64_t got = balloon.inflate(r.frames);
    report_.pressure.reclaimed_frames += got;
    residual += r.frames - got;
    record(RecoveryAction::kBalloonReclaim, r.guest->name(),
           "ballooned out " + std::to_string(got) + " of " +
               std::to_string(r.frames) + " frames for admission");
  }
  while (residual > 0) {
    const std::int64_t freed = escalate_demotion(plan);
    if (freed == 0) break;  // nothing left to demote; suspend will shed
    residual -= freed;
  }

  auto execute_demotions = [this, done = std::move(done)]() mutable {
    for_each_parallel(
        admit_saved_,
        [this](guest::GuestOs& g, std::function<void()> guest_done) {
          host_.vmm().save_domain_to_disk(
              g.domain_id(), host_.images(),
              [this, &g, guest_done = std::move(guest_done)] {
                if (host_.images().find(g.name()) == nullptr) {
                  record(RecoveryAction::kFallbackToCold, g.name(),
                         "demotion save lost to a disk write error; VM "
                         "will cold boot");
                  g.force_power_off();
                  cold_list_.push_back(&g);
                }
                guest_done();
              });
        },
        [this, done = std::move(done)]() mutable {
          for_each_parallel(
              admit_cold_,
              [this](guest::GuestOs& g, std::function<void()> guest_done) {
                g.shutdown(std::move(guest_done));
              },
              std::move(done));
        });
  };

  report_.pressure.demoted_saved = plan.demote_saved.size();
  report_.pressure.demoted_cold = plan.demote_cold.size();
  admit_saved_ = plan.demote_saved;
  admit_cold_ = plan.demote_cold;
  for (auto* g : admit_saved_) {
    record(RecoveryAction::kDemoteToSaved, g->name(),
           "preserved-memory shortfall; this VM takes the disk path while "
           "its siblings stay warm");
  }
  for (auto* g : admit_cold_) {
    record(RecoveryAction::kDemoteToCold, g->name(),
           "preserved-memory shortfall; this VM cold boots while its "
           "siblings stay warm");
    cold_list_.push_back(g);
  }

  if (config_.admission.compact_before_suspend) {
    const std::int64_t moved = host_.vmm().compact_memory();
    report_.pressure.compacted_frames = moved;
    const auto copy_time = sim::transfer_time(moved * sim::kPageSize,
                                              host_.calib().mem_copy_bps);
    if (moved > 0) {
      record(RecoveryAction::kCompactionPass, "vmm",
             "compacted " + std::to_string(moved) +
                 " frames before suspend so frozen images and reload "
                 "metadata sit in contiguous runs");
    }
    host_.sim().after(copy_time, std::move(execute_demotions));
  } else {
    execute_demotions();
  }
}

void Supervisor::sweep_stale_regions() {
  std::vector<std::string> stale;
  for (const auto& name : host_.preserved().names()) {
    if (name.rfind("stale/", 0) == 0) stale.push_back(name);
  }
  for (const auto& name : stale) {
    if (host_.faults().roll(fault::FaultKind::kPreservedRegionLeak,
                            host_.sim().now(), "sweep:" + name)) {
      if (host_.tracer().enabled()) {
        trace("stale region '" + name + "' survived the sweep (injected)");
      }
      continue;
    }
    discard_region(name);
    if (host_.tracer().enabled()) {
      trace("released stale region '" + name + "'");
    }
  }
}

void Supervisor::discard_region(const std::string& region_name) {
  if (const auto* region = host_.preserved().find(region_name)) {
    // The incoming VMM re-reserved the region's frozen frames; give them
    // back so replacement boots can use the memory.
    auto& alloc = host_.vmm().allocator();
    for (const auto mfn : region->frozen_frames) {
      if (alloc.owner_of(mfn) == kVmmOwner) alloc.release(mfn);
    }
  }
  host_.preserved().erase(region_name);
}

void Supervisor::discard_preserved_image(const std::string& guest_name) {
  const std::string region_name =
      std::string(vmm::Vmm::kRegionPrefix) + guest_name;
  const auto* region = host_.preserved().find(region_name);
  if (region != nullptr &&
      host_.faults().roll(fault::FaultKind::kPreservedRegionLeak,
                          host_.sim().now(), "discard:" + guest_name)) {
    // The release is lost: the frames stay reserved and the record keeps
    // eating the preserved-frame budget until a later sweep gets to it.
    // Renaming frees the canonical slot so the guest's next suspend can
    // record a fresh image.
    mm::PreservedRegion stale;
    stale.name =
        "stale/" + guest_name + "#" + std::to_string(host_.sim().now());
    stale.payload = region->payload;
    stale.frozen_frames = region->frozen_frames;
    const std::string stale_name = stale.name;
    host_.preserved().erase(region_name);
    host_.preserved().put(std::move(stale));
    if (host_.tracer().enabled()) {
      trace("preserved region for '" + guest_name +
            "' LEAKED (injected); parked as '" + stale_name + "'");
    }
    return;
  }
  discard_region(region_name);
}

void Supervisor::warm_resume_phase() {
  // The reload rebuilt frame ownership from the registry; catch a
  // double-owned or dropped frame here, before any guest touches its
  // memory again.
  ensure(host_.vmm().frame_conservation_report().ok(),
         "Supervisor: frame conservation violated after quick reload");
  sweep_stale_regions();

  // Verify every preserved image before resuming anything: a checksum
  // mismatch means that VM's image rotted in RAM, and resuming it would
  // hand the guest corrupted state. The ladder for that VM alone is a
  // fresh cold boot; its siblings still get the fast on-memory resume.
  GuestList intact;
  const auto demoted = [this](guest::GuestOs* g) {
    return std::find(admit_saved_.begin(), admit_saved_.end(), g) !=
               admit_saved_.end() ||
           std::find(admit_cold_.begin(), admit_cold_.end(), g) !=
               admit_cold_.end();
  };
  for (auto* g : suspendable_guests()) {
    if (demoted(g)) continue;  // takes the disk or cold path below
    if (!host_.vmm().has_preserved_image(g->name())) {
      // The suspend never recorded an image (injected allocation failure
      // or a budget rejection): this VM's RAM state is gone, but only
      // this VM's.
      record(RecoveryAction::kPreservedImageLost, g->name(),
             "no preserved image survived the reload; cold-booting this "
             "VM only");
      g->force_power_off();
      cold_list_.push_back(g);
    } else if (host_.vmm().preserved_image_intact(g->name())) {
      intact.push_back(g);
    } else {
      record(RecoveryAction::kColdBootSingleVm, g->name(),
             "preserved image failed its checksum; cold-booting this VM "
             "only");
      discard_preserved_image(g->name());
      g->force_power_off();
      cold_list_.push_back(g);
    }
  }
  const int count = static_cast<int>(intact.size());
  const obs::SpanId resume = host_.obs().span_open(
      host_.sim().now(), obs::Phase::kResume, "on-memory resume");
  for_each_parallel(
      intact,
      [this](guest::GuestOs& g, std::function<void()> guest_done) {
        host_.vmm().resume_domain_on_memory(
            g.name(), &g,
            [guest_done = std::move(guest_done)](DomainId) { guest_done(); });
      },
      [this, count, resume] {
        host_.note_simultaneous_creations(count);
        report_.resumed_vms = static_cast<std::size_t>(count);
        host_.obs().span_close(resume, host_.sim().now());
        warm_restore_demoted();
      });
}

void Supervisor::warm_restore_demoted() {
  GuestList to_restore;
  for (auto* g : admit_saved_) {
    if (host_.images().find(g->name()) != nullptr) to_restore.push_back(g);
  }
  auto boot_rest = [this] {
    GuestList to_boot = cold_list_;
    const GuestList drivers = driver_domain_guests();
    to_boot.insert(to_boot.end(), drivers.begin(), drivers.end());
    boot_cold(to_boot, [this] { finish(RebootKind::kWarm); });
  };
  if (to_restore.empty()) {
    // Nothing took the disk path (in particular: admission disabled). Go
    // straight to the cold boots -- no extra event, the exact schedule
    // from before admission existed.
    boot_rest();
    return;
  }
  const obs::SpanId restore = host_.obs().span_open(
      host_.sim().now(), obs::Phase::kRestore, "restore demoted");
  for_each_parallel(
      to_restore,
      [this](guest::GuestOs& g, std::function<void()> guest_done) {
        host_.vmm().restore_domain_from_disk(
            g.name(), host_.images(), &g,
            [this, &g, guest_done = std::move(guest_done)](DomainId id) {
              if (id == kNoDomain) {
                record(RecoveryAction::kFallbackToCold, g.name(),
                       "demotion restore failed with a disk read error; VM "
                       "will cold boot");
                g.force_power_off();
                cold_list_.push_back(&g);
              } else {
                ++report_.restored_vms;
              }
              guest_done();
            });
      },
      [this, restore, boot_rest = std::move(boot_rest)] {
        host_.obs().span_close(restore, host_.sim().now());
        boot_rest();
      });
}

// ----------------------------------------------------------------- saved

void Supervisor::start_saved() {
  // Reached either as the preferred mechanism or as the fallback from a
  // failed warm attempt; in both cases every guest is still running.
  open_rung("saved-VM reboot");
  const obs::SpanId save = host_.obs().span_open(
      host_.sim().now(), obs::Phase::kSaveToDisk, "save VMs to disk");
  for_each_parallel(
      suspendable_guests(),
      [this](guest::GuestOs& g, std::function<void()> guest_done) {
        host_.vmm().save_domain_to_disk(
            g.domain_id(), host_.images(),
            [this, &g, guest_done = std::move(guest_done)] {
              if (host_.images().find(g.name()) == nullptr) {
                // The write failed after the domain was torn down: the
                // VM's state is gone. Next rung: cold boot that VM.
                record(RecoveryAction::kFallbackToCold, g.name(),
                       "saved image lost to a disk write error; VM will "
                       "cold boot");
                g.force_power_off();
                cold_list_.push_back(&g);
              }
              guest_done();
            });
      },
      [this, save] {
        host_.obs().span_close(save, host_.sim().now());
        for_each_parallel(
            driver_domain_guests(),
            [](guest::GuestOs& g, std::function<void()> guest_done) {
              g.shutdown(std::move(guest_done));
            },
            [this] {
              host_.shutdown_dom0([this] {
                host_.hardware_reboot([this] { saved_restore_phase(); });
              });
            });
      });
}

void Supervisor::saved_restore_phase() {
  GuestList to_restore;
  for (auto* g : suspendable_guests()) {
    if (host_.images().find(g->name()) != nullptr) to_restore.push_back(g);
  }
  const obs::SpanId restore = host_.obs().span_open(
      host_.sim().now(), obs::Phase::kRestore, "restore VMs from disk");
  for_each_parallel(
      to_restore,
      [this](guest::GuestOs& g, std::function<void()> guest_done) {
        host_.vmm().restore_domain_from_disk(
            g.name(), host_.images(), &g,
            [this, &g, guest_done = std::move(guest_done)](DomainId id) {
              if (id == kNoDomain) {
                record(RecoveryAction::kFallbackToCold, g.name(),
                       "restore failed with a disk read error; VM will "
                       "cold boot");
                g.force_power_off();
                cold_list_.push_back(&g);
              } else {
                ++report_.restored_vms;
              }
              guest_done();
            });
      },
      [this, restore] {
        host_.obs().span_close(restore, host_.sim().now());
        GuestList to_boot = cold_list_;
        const GuestList drivers = driver_domain_guests();
        to_boot.insert(to_boot.end(), drivers.begin(), drivers.end());
        boot_cold(to_boot, [this] { finish(RebootKind::kSaved); });
      });
}

// ------------------------------------------------------------------ cold

void Supervisor::start_cold() {
  open_rung("cold-VM reboot");
  for_each_parallel(
      guests_,
      [](guest::GuestOs& g, std::function<void()> guest_done) {
        g.shutdown(std::move(guest_done));
      },
      [this] {
        host_.shutdown_dom0([this] {
          host_.hardware_reboot([this] {
            boot_cold(guests_, [this] { finish(RebootKind::kCold); });
          });
        });
      });
}

// --------------------------------------------------- supervised booting

void Supervisor::supervised_boot(guest::GuestOs& g, int attempt,
                                 std::function<void(bool)> done) {
  auto settled = std::make_shared<bool>(false);
  auto shared_done =
      std::make_shared<std::function<void(bool)>>(std::move(done));
  const sim::EventId watchdog = host_.sim().after(
      config_.boot_watchdog, [this, &g, attempt, settled, shared_done] {
        if (*settled) return;
        *settled = true;
        record(RecoveryAction::kWatchdogPowerOff, g.name(),
               "boot hung past the watchdog (attempt " +
                   std::to_string(attempt + 1) + "); forced power-off");
        g.force_power_off();
        if (attempt < config_.max_step_retries) {
          host_.sim().after(backoff(attempt), [this, &g, attempt,
                                               shared_done] {
            supervised_boot(g, attempt + 1, std::move(*shared_done));
          });
          return;
        }
        record(RecoveryAction::kGaveUp, g.name(),
               "boot hung " + std::to_string(attempt + 1) +
                   " times; leaving the VM down");
        report_.unrecovered_vms.push_back(g.name());
        (*shared_done)(false);
      });
  g.create_and_boot([this, settled, watchdog, shared_done] {
    if (*settled) return;
    *settled = true;
    host_.sim().cancel(watchdog);
    (*shared_done)(true);
  });
}

void Supervisor::boot_cold(const GuestList& guests,
                           std::function<void()> done) {
  obs::SpanId boot = obs::kNoSpan;
  if (!guests.empty()) {
    boot = host_.obs().span_open(host_.sim().now(), obs::Phase::kGuestBoot,
                                 "supervised guest boots");
  }
  for_each_parallel(
      guests,
      [this](guest::GuestOs& g, std::function<void()> guest_done) {
        supervised_boot(g, 0, [this, guest_done = std::move(guest_done)](
                                  bool ok) {
          if (ok) ++report_.cold_booted_vms;
          guest_done();
        });
      },
      [this, boot, done = std::move(done)] {
        host_.obs().span_close(boot, host_.sim().now());
        done();
      });
}

// ---------------------------------------------------------------- finish

void Supervisor::finish(RebootKind completed_kind) {
  report_.completed = completed_kind;
  report_.success = report_.unrecovered_vms.empty();
  report_.finished_at = host_.sim().now();
  completed_ = true;
  if (host_.tracer().enabled()) {
    trace(std::string("completed (") + to_string(completed_kind) + ", " +
          (report_.success ? "all VMs recovered" :
                             std::to_string(report_.unrecovered_vms.size()) +
                                 " VM(s) unrecovered") +
          ", " + std::to_string(report_.recoveries.size()) + " recoveries, " +
          std::to_string(sim::to_seconds(report_.total_duration())) + " s)");
  }
  obs::Observer& obs = host_.obs();
  if (obs.enabled()) {
    obs.span_close(rung_span_, report_.finished_at);
    obs.span_close(pass_span_, report_.finished_at);
    obs.set_ambient(outer_ambient_);
    rung_span_ = obs::kNoSpan;
    obs::MetricsRegistry& m = obs.metrics();
    m.counter("supervisor.passes") += 1;
    m.counter("supervisor.vms_resumed") += report_.resumed_vms;
    m.counter("supervisor.vms_restored") += report_.restored_vms;
    m.counter("supervisor.vms_cold_booted") += report_.cold_booted_vms;
    m.counter("supervisor.vms_unrecovered") += report_.unrecovered_vms.size();
    if (!report_.success) m.counter("supervisor.failed_passes") += 1;
    if (report_.micro_attempts > 0) {
      m.counter("supervisor.micro_attempts") += report_.micro_attempts;
    }
    if (report_.micro_recovered) m.counter("supervisor.micro_recoveries") += 1;
    m.histogram("supervisor.pass_duration_us").add(report_.total_duration());
  }
  host_.end_recovery();
  auto done = std::move(done_);
  done(report_);
}

}  // namespace rh::rejuv
