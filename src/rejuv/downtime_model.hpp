// The analytic downtime model of Section 3.2, plus the paper's Section 5.6
// fitted instantiation.
//
//   d_w(n) = reboot_vmm(n) + resume(n)
//   d_c(n) = reset_hw + reboot_vmm(0) + reboot_os(n) - reboot_os(1) * alpha
//   r(n)   = d_c(n) - d_w(n)
//
// All component functions are linear in the number of VMs n; the benches
// regress them from simulated measurements and instantiate this model,
// cross-validating the analytic r(n) against directly measured downtimes.
#pragma once

#include <string>

#include "simcore/stats.hpp"

namespace rh::rejuv {

/// A linear component function f(n) = slope * n + intercept (seconds).
struct LinearFn {
  double slope = 0.0;
  double intercept = 0.0;

  [[nodiscard]] double at(double n) const { return slope * n + intercept; }
  [[nodiscard]] static LinearFn from_fit(const sim::LinearFit& fit) {
    return {fit.slope, fit.intercept};
  }
  [[nodiscard]] std::string to_string(const std::string& var = "n") const;
};

struct DowntimeModel {
  LinearFn reboot_vmm;  ///< suspend-point -> dom0 ready, n VMs preserved
  LinearFn resume;      ///< on-memory suspend + resume of n VMs
  LinearFn reboot_os;   ///< shut down + boot n OSes in parallel
  LinearFn boot;        ///< boot n OSes in parallel
  double reset_hw = 0.0;  ///< hardware reset (POST + boot loader), seconds

  /// Downtime increase of the warm-VM reboot (seconds).
  [[nodiscard]] double d_warm(double n) const;

  /// Downtime increase of the cold-VM reboot; alpha in (0, 1] is the
  /// elapsed fraction of the OS-rejuvenation interval (Sec. 3.2).
  [[nodiscard]] double d_cold(double n, double alpha) const;

  /// Downtime reduced by the warm-VM reboot: r(n) = d_c(n) - d_w(n).
  [[nodiscard]] double reduction(double n, double alpha) const;

  /// r(n) expressed as a linear function of n for fixed alpha (the paper
  /// reports r(n) = 3.9 n + 60 - 17 alpha).
  [[nodiscard]] LinearFn reduction_fn(double alpha) const;

  /// True if the warm-VM reboot wins for every n in [1, max_n] at the
  /// given alpha (the paper: r(n) always positive for alpha <= 1).
  [[nodiscard]] bool always_positive(int max_n, double alpha) const;

  /// The constants fitted in the paper's Section 5.6.
  [[nodiscard]] static DowntimeModel paper();
};

}  // namespace rh::rejuv
