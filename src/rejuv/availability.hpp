// Availability arithmetic of Section 5.3.
//
// OS rejuvenation runs every os_interval; VMM rejuvenation every
// vmm_interval. Over one VMM interval the expected service downtime is
//
//   D = os_downtime * (k - [vmm reboot also rejuvenates the OS] * alpha)
//     + vmm_downtime,            where k = vmm_interval / os_interval
//
// because a cold-VM reboot doubles as an OS rejuvenation and reschedules
// the OS timer (saving an expected alpha of one OS reboot), while warm and
// saved reboots leave the OS untouched. Availability = 1 - D/vmm_interval.
// With the paper's numbers this yields 99.993 % / 99.985 % / 99.977 % for
// warm / cold / saved.
#pragma once

#include <string>

#include "simcore/types.hpp"

namespace rh::rejuv {

struct AvailabilityParams {
  sim::Duration os_interval = sim::kWeek;
  sim::Duration vmm_interval = 4 * sim::kWeek;
  double os_downtime_s = 33.6;   ///< one OS rejuvenation (paper's JBoss VM)
  double vmm_downtime_s = 0.0;   ///< one VMM rejuvenation with the chosen reboot
  /// Expected elapsed fraction of the OS interval at VMM-rejuvenation time.
  double alpha = 0.5;
  /// True for the cold-VM reboot (the VMM reboot reboots the OSes too and
  /// reschedules their timers).
  bool vmm_reboot_includes_os = false;
};

/// Availability in [0, 1].
[[nodiscard]] double availability(const AvailabilityParams& params);

/// Expected downtime (seconds) per VMM interval.
[[nodiscard]] double expected_downtime_s(const AvailabilityParams& params);

/// Number of leading nines, e.g. 0.99993 -> 4 ("four 9s").
[[nodiscard]] int count_nines(double avail);

/// "99.993 %"-style formatting.
[[nodiscard]] std::string format_availability(double avail);

}  // namespace rh::rejuv
