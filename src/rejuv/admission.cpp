#include "rejuv/admission.hpp"

#include <algorithm>

#include "simcore/check.hpp"

namespace rh::rejuv {

namespace {

struct Candidate {
  guest::GuestOs* guest = nullptr;
  std::int64_t demand = 0;      // preserved frames if suspended now
  std::int64_t reclaimable = 0; // balloon pages admission may take
};

}  // namespace

AdmissionController::AdmissionController(vmm::Host& host, AdmissionConfig config)
    : host_(host), config_(config) {
  ensure(config_.balloon_reclaim_fraction >= 0.0 &&
             config_.balloon_reclaim_fraction <= 1.0,
         "AdmissionController: balloon_reclaim_fraction out of [0,1]");
  ensure(config_.max_saved_demotions >= -1,
         "AdmissionController: max_saved_demotions must be >= -1");
}

std::int64_t AdmissionController::preserved_frames_for(
    const guest::GuestOs& g) const {
  const auto* d = host_.vmm().find_domain_by_name(g.name());
  ensure(d != nullptr, "AdmissionController: guest '" + g.name() +
                           "' has no domain");
  // Frozen frames are exactly the populated pages. The metadata payload is
  // dominated by the serialised P2M (8 B per nominal PFN); the execution
  // state, event channels and name ride in a couple of frames of slack --
  // a deliberate over-estimate (see header).
  const sim::Bytes meta_bytes = d->p2m().size_bytes() +
                                vmm::ExecState::kFootprint + 2 * sim::kPageSize;
  return d->p2m().populated() + (meta_bytes + sim::kPageSize - 1) / sim::kPageSize;
}

std::int64_t AdmissionController::reclaim_safe_pages(
    const guest::GuestOs& g) const {
  const auto* d = host_.vmm().find_domain_by_name(g.name());
  ensure(d != nullptr, "AdmissionController: guest '" + g.name() +
                           "' has no domain");
  // Populated pages always form a PFN prefix in this model (creation
  // populates from the bottom, inflate takes the highest populated page,
  // deflate refills the lowest hole), so everything above the kernel +
  // page-cache region is reclaim-safe.
  return std::max<std::int64_t>(0, d->p2m().populated() - g.cache_region_end_pfn());
}

std::int64_t AdmissionController::available_budget_frames() const {
  const auto& calib = host_.calib();
  const std::int64_t total = host_.vmm().allocator().total_frames();
  const std::int64_t vmm_reserved = calib.vmm_reserved_memory / sim::kPageSize;
  const std::int64_t dom0 = vmm::Domain::pages_for(calib.dom0_memory);
  const std::int64_t capacity = total - vmm_reserved - dom0;
  const std::int64_t configured = host_.preserved().frame_budget();
  const std::int64_t budget =
      configured > 0 ? std::min(configured, capacity) : capacity;
  // Regions already recorded (leaked stale regions, unreleased images)
  // occupy the budget before this pass records anything.
  return budget - host_.preserved().reserved_frames();
}

AdmissionPlan AdmissionController::plan(
    const std::vector<guest::GuestOs*>& candidates) const {
  AdmissionPlan out;
  out.budget_frames = available_budget_frames();

  std::vector<Candidate> entries;
  for (auto* g : candidates) {
    ensure(g != nullptr, "AdmissionController::plan: null guest");
    if (g->state() != guest::OsState::kRunning || g->driver_domain()) continue;
    Candidate c;
    c.guest = g;
    c.demand = preserved_frames_for(*g);
    c.reclaimable = static_cast<std::int64_t>(
        static_cast<double>(reclaim_safe_pages(*g)) *
        config_.balloon_reclaim_fraction);
    out.demand_frames += c.demand;
    entries.push_back(c);
  }
  // Largest demand first; names break ties so the plan is a pure function
  // of simulator state.
  std::sort(entries.begin(), entries.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.demand != b.demand) return a.demand > b.demand;
              return a.guest->name() < b.guest->name();
            });

  std::int64_t need = out.demand_frames - out.budget_frames;

  // Rung 1: balloon-reclaim from the largest VMs until the shortfall is
  // covered or nothing reclaim-safe remains.
  std::vector<std::int64_t> taken(entries.size(), 0);
  for (std::size_t i = 0; i < entries.size() && need > 0; ++i) {
    const std::int64_t take = std::min(entries[i].reclaimable, need);
    if (take > 0) {
      taken[i] = take;
      need -= take;
    }
  }

  // Rungs 2-3: demote the largest remainers outright. A demoted VM's
  // planned reclaim is pointless (its whole demand leaves the preserved
  // path), so it is credited back first.
  std::vector<bool> demoted(entries.size(), false);
  int saved_used = 0;
  for (std::size_t i = 0; i < entries.size() && need > 0; ++i) {
    need += taken[i];
    taken[i] = 0;
    demoted[i] = true;
    need -= entries[i].demand;
    const bool saved_allowed =
        config_.demote_to_saved &&
        (config_.max_saved_demotions < 0 ||
         saved_used < config_.max_saved_demotions);
    if (saved_allowed) {
      out.demote_saved.push_back(entries[i].guest);
      ++saved_used;
    } else {
      out.demote_cold.push_back(entries[i].guest);
    }
  }

  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (demoted[i]) continue;
    if (taken[i] > 0) out.reclaims.push_back({entries[i].guest, taken[i]});
    out.warm.emplace_back(entries[i].guest, entries[i].demand - taken[i]);
  }
  return out;
}

}  // namespace rh::rejuv
