// Supervised rejuvenation: the recovery layer over the reboot drivers.
//
// The RebootDriver classes assume a cooperating world: xexec images load,
// disks read back what was written, preserved images stay intact and
// guests finish booting. The Supervisor assumes none of that. It runs the
// same phases as the drivers but checks every postcondition, retries
// failing steps with capped jittered exponential backoff, arms a watchdog
// over every guest boot, and -- when a mechanism is beyond retry -- walks
// a graceful-degradation ladder:
//
//   warm-VM reboot   --xexec load keeps failing-->   saved-VM reboot
//   saved-VM reboot  --image lost/unreadable---->    cold boot (that VM)
//   preserved image corrupt (checksum mismatch) -->  cold boot (that VM),
//                                                    siblings still resume
//   VMM crash (aging won the race) ------------->    hardware reboot +
//                                                    cold boot of all VMs
//
// Every recovery decision is recorded as a typed RecoveryEvent so tests
// (and the cluster layer) can assert the exact ladder taken, and so the
// fault-rate sweeps can attribute availability loss to causes.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "rejuv/admission.hpp"
#include "rejuv/reboot_driver.hpp"

namespace rh::rejuv {

/// What the supervisor did to keep the pass alive.
enum class RecoveryAction : std::uint8_t {
  kStepRetry,              ///< a failing step was retried after backoff
  kWatchdogPowerOff,       ///< a hung guest boot was forced off by the watchdog
  kFallbackToSaved,        ///< warm path abandoned; saved-VM reboot instead
  kFallbackToCold,         ///< saved image lost/unreadable; that VM cold boots
  kColdBootSingleVm,       ///< corrupt preserved image; that VM cold boots
  kHardwareRebootAfterCrash,  ///< VMM crashed; full reset + cold boots
  kGaveUp,                 ///< retries exhausted; VM left unrecovered
  // --- preserved-memory pressure (DESIGN.md §9) ---
  kBalloonReclaim,     ///< admission ballooned pages out of a VM pre-suspend
  kCompactionPass,     ///< frames compacted before suspend
  kDemoteToSaved,      ///< admission sent this VM down the disk path
  kDemoteToCold,       ///< admission shut this VM down for a cold boot
  kPreservedImageLost, ///< suspended VM came back with no image; cold boot
  // --- in-place micro-recovery (DESIGN.md §13) ---
  kMicroRecoveryAttempt,    ///< in-place VMM rebuild attempt started
  kMicroRecoverySucceeded,  ///< VMM rebuilt in place; preserved VMs resume
  kMicroRecoveryFailed,     ///< one rebuild attempt failed its success draw
  kMicroRecoveryMetadataCorrupt,  ///< rebuilt state unusable; fall to cold
};

[[nodiscard]] const char* to_string(RecoveryAction a);

/// One recovery decision, for post-mortem accounting and assertions.
struct RecoveryEvent {
  RecoveryAction action = RecoveryAction::kStepRetry;
  sim::SimTime at = 0;
  std::string subject;  ///< step name or VM name
  std::string detail;
};

struct SupervisorConfig {
  /// The mechanism to attempt first; the ladder only descends from here.
  RebootKind preferred = RebootKind::kWarm;
  /// Retries per failing step (xexec load, guest boot) before degrading.
  int max_step_retries = 2;
  /// Backoff before retry k is min(cap, base * 2^k), times a jitter factor
  /// in [1-j, 1+j]. jitter == 0 draws nothing from the host RNG.
  sim::Duration backoff_base = 2 * sim::kSecond;
  sim::Duration backoff_cap = 5 * sim::kMinute;
  double backoff_jitter = 0.0;
  /// A guest boot that has not completed after this long is declared hung
  /// and force-powered off (kGuestBootHang never completes on its own).
  sim::Duration boot_watchdog = 10 * sim::kMinute;
  /// Latency before a kVmmHang is acted on: a crash announces itself, a
  /// wedged hypervisor is only visible once the external watchdog fires.
  sim::Duration hang_detection = sim::kSecond;
  /// Preserved-memory admission control (disabled by default: no extra
  /// work, no extra RNG draws -- pre-pressure runs stay byte-identical).
  AdmissionConfig admission;
  /// ReHype-style in-place micro-recovery: the rung *above* warm
  /// (DESIGN.md §13). Disabled by default, so a VMM failure takes the
  /// hardware-reboot path verbatim and no extra RNG draws ever happen.
  struct MicroRecoveryConfig {
    bool enabled = false;
    /// Rebuild attempts before falling down to hardware reboot + cold.
    int max_attempts = 2;
    /// Per-attempt probability that the heap/domain-metadata rebuild
    /// succeeds (ReHype reports ~90 %; the default is conservative).
    double success_rate = 0.85;
    /// Fixed per-attempt cost on top of the metadata copy time, which is
    /// charged at registry bytes / Calibration::mem_copy_bps.
    sim::Duration attempt_base = 200 * sim::kMillisecond;
  };
  MicroRecoveryConfig micro;
};

/// Preserved-memory accounting of one supervised pass.
struct MemoryPressure {
  bool consulted = false;            ///< admission ran this pass
  bool pressured = false;            ///< demand exceeded the budget
  std::int64_t budget_frames = 0;    ///< frames available for new images
  std::int64_t demand_frames = 0;    ///< frames the VMs wanted
  std::int64_t reclaimed_frames = 0; ///< frames ballooned out pre-suspend
  std::int64_t compacted_frames = 0; ///< frames moved by compaction
  std::size_t demoted_saved = 0;     ///< VMs sent down the disk path
  std::size_t demoted_cold = 0;      ///< VMs shut down for cold boot
};

struct SupervisorReport {
  RebootKind attempted = RebootKind::kWarm;
  /// The mechanism that actually carried the pass to completion (kSaved
  /// after a warm fallback; kCold after a VMM crash).
  RebootKind completed = RebootKind::kWarm;
  /// True iff every guest answers again (no VM left unrecovered).
  bool success = false;
  bool vmm_crashed = false;
  sim::SimTime started_at = 0;
  sim::SimTime finished_at = 0;
  [[nodiscard]] sim::Duration total_duration() const {
    return finished_at - started_at;
  }
  std::size_t resumed_vms = 0;   ///< on-memory resumes (state kept)
  std::size_t restored_vms = 0;  ///< disk restores (state kept)
  std::size_t cold_booted_vms = 0;  ///< boots from scratch (state lost)
  std::size_t micro_attempts = 0;   ///< in-place rebuild attempts made
  /// True iff an in-place micro-recovery carried the pass (the VMM was
  /// rebuilt over preserved RAM and the frozen VMs resumed).
  bool micro_recovered = false;
  std::vector<std::string> unrecovered_vms;
  std::vector<RecoveryEvent> recoveries;
  MemoryPressure pressure;

  [[nodiscard]] std::size_t recovery_count(RecoveryAction a) const;
};

/// Runs one supervised rejuvenation pass over a host and its guests.
/// One-shot, like the drivers it supersedes.
class Supervisor {
 public:
  Supervisor(vmm::Host& host, std::vector<guest::GuestOs*> guests,
             SupervisorConfig config);
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Runs the pass; `done` receives the report (which remains readable via
  /// report() afterwards). Requires the host to be up.
  void run(std::function<void(const SupervisorReport&)> done);

  /// Recovery-only entry point (mutually exclusive with run(), same
  /// one-shot rule): boots every guest currently halted, each under the
  /// boot watchdog, without disturbing running guests. The cluster layer
  /// uses this to retry a host whose earlier pass left VMs unrecovered.
  void recover(std::function<void(const SupervisorReport&)> done);

  /// Unplanned-failure entry point (same one-shot rule): an *in-service*
  /// VMM failure was detected (fault::SteadyFaultProcess) and this
  /// supervisor owns the response. With micro-recovery enabled the ladder
  /// starts at the in-place rung; disabled, it is the hardware-reboot +
  /// cold-boot path a pre-rejuvenation crash takes. `kind` must be
  /// kVmmCrash or kVmmHang and the host must still be up (the failure is
  /// performed here, at its detection point).
  void respond_to_failure(fault::FaultKind kind,
                          std::function<void(const SupervisorReport&)> done);

  [[nodiscard]] const SupervisorReport& report() const { return report_; }
  [[nodiscard]] bool completed() const { return completed_; }

 private:
  using GuestList = std::vector<guest::GuestOs*>;

  // ---- phase drivers (one per rung of the ladder)
  void handle_vmm_failure(fault::FaultKind kind);
  void start_warm();
  void attempt_xexec(int attempt);
  void warm_after_xexec();
  void warm_resume_phase();
  void warm_restore_demoted();
  void start_saved();

  // ---- preserved-memory admission (DESIGN.md §9)
  /// Plans and executes admission before the warm suspend: balloon
  /// reclaims (with injected-failure escalation), optional compaction
  /// (charging moved-bytes/mem_copy_bps), then the demotions -- saves to
  /// disk while dom0 is still up, graceful shutdowns for cold. `done`
  /// fires when the surviving warm set is ready to suspend.
  void run_admission(std::function<void()> done);
  /// Demotes one more warm VM (largest first) when an executed reclaim
  /// under-delivered; returns the freed demand (0 = nothing left).
  std::int64_t escalate_demotion(AdmissionPlan& plan);
  /// Post-reload housekeeping: re-attempts release of leaked stale
  /// regions (each sweep can itself leak again under fault injection).
  void sweep_stale_regions();
  /// Frees a registry region's re-reserved frames and erases the record.
  void discard_region(const std::string& region_name);
  void saved_restore_phase();
  void start_cold();
  void finish(RebootKind completed_kind);

  // ---- in-place micro-recovery rung (DESIGN.md §13)
  /// Freezes the guests in RAM (fail_vmm + interrupt) and starts attempt 0.
  void start_micro(fault::FaultKind kind);
  /// One rebuild attempt: charges attempt_base + metadata/mem_copy_bps,
  /// then draws success. Failure retries up to max_attempts, then falls to
  /// crash_fallback; success validates metadata and resumes.
  void micro_attempt(fault::FaultKind kind, int attempt);
  /// Resumes every frozen guest whose preserved image survived; per-VM
  /// corruption degrades that VM to a cold boot (siblings still resume).
  void micro_resume_phase();
  /// The bottom of the ladder for unplanned failures: hardware reboot and
  /// cold boot of every VM. `micro_exhausted` distinguishes "never tried
  /// micro" (the legacy crash path, byte-identical) from "micro gave up"
  /// (preserved state must be abandoned first).
  void crash_fallback(fault::FaultKind kind, bool micro_exhausted);
  /// Bytes the rebuild must walk: every crash snapshot in the registry
  /// plus per-domain heap metadata.
  [[nodiscard]] sim::Bytes micro_repair_bytes() const;

  // ---- supervised building blocks
  /// Boots one guest under a watchdog; retries hung boots with backoff.
  /// `done(false)` means retries were exhausted (VM left unrecovered).
  void supervised_boot(guest::GuestOs& g, int attempt,
                       std::function<void(bool)> done);
  /// Boots a list in parallel (each under its own watchdog); successful
  /// boots are counted as cold-booted VMs.
  void boot_cold(const GuestList& guests, std::function<void()> done);
  /// Drops a corrupt preserved image: frees the frozen frames the new VMM
  /// re-reserved for it and erases the registry record.
  void discard_preserved_image(const std::string& guest_name);

  void for_each_parallel(
      const GuestList& guests,
      const std::function<void(guest::GuestOs&, std::function<void()>)>& fn,
      std::function<void()> done);
  [[nodiscard]] GuestList suspendable_guests() const;
  [[nodiscard]] GuestList driver_domain_guests() const;
  [[nodiscard]] sim::Duration backoff(int attempt);
  void record(RecoveryAction action, const std::string& subject,
              const std::string& detail);
  void trace(const std::string& msg);
  /// Closes the current ladder-rung span (if any) and opens a new one
  /// under the pass span; every mechanism the ladder descends through gets
  /// its own kLadderRung window.
  void open_rung(const char* label);

  vmm::Host& host_;
  GuestList guests_;
  SupervisorConfig config_;
  std::function<void(const SupervisorReport&)> done_;
  SupervisorReport report_;
  GuestList cold_list_;  ///< accumulated per-VM degradations this pass
  GuestList admit_saved_;  ///< demoted to the disk path by admission
  GuestList admit_cold_;   ///< demoted to cold boot by admission
  obs::SpanId pass_span_ = obs::kNoSpan;
  obs::SpanId rung_span_ = obs::kNoSpan;
  obs::SpanId outer_ambient_ = obs::kNoSpan;
  bool started_ = false;
  bool completed_ = false;
};

}  // namespace rh::rejuv
