#include "rejuv/downtime_model.hpp"

#include <cmath>
#include <cstdio>

#include "simcore/check.hpp"

namespace rh::rejuv {

std::string LinearFn::to_string(const std::string& var) const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.2f%s %c %.2f", slope, var.c_str(),
                intercept < 0 ? '-' : '+', std::fabs(intercept));
  return buf;
}

double DowntimeModel::d_warm(double n) const {
  return reboot_vmm.at(n) + resume.at(n);
}

double DowntimeModel::d_cold(double n, double alpha) const {
  ensure(alpha > 0.0 && alpha <= 1.0, "DowntimeModel: alpha out of (0, 1]");
  return reset_hw + reboot_vmm.at(0) + reboot_os.at(n) -
         reboot_os.at(1) * alpha;
}

double DowntimeModel::reduction(double n, double alpha) const {
  return d_cold(n, alpha) - d_warm(n);
}

LinearFn DowntimeModel::reduction_fn(double alpha) const {
  // r(n) = reset_hw + reboot_vmm(0) - reboot_vmm(n)
  //      + reboot_os(n) - reboot_os(1)*alpha - resume(n)
  LinearFn r;
  r.slope = reboot_os.slope - reboot_vmm.slope - resume.slope;
  r.intercept = reset_hw + reboot_os.intercept -
                reboot_os.at(1) * alpha - resume.intercept;
  return r;
}

bool DowntimeModel::always_positive(int max_n, double alpha) const {
  for (int n = 1; n <= max_n; ++n) {
    if (reduction(n, alpha) <= 0.0) return false;
  }
  return true;
}

DowntimeModel DowntimeModel::paper() {
  DowntimeModel m;
  m.reboot_vmm = {-0.55, 43.0};
  m.resume = {0.43, -0.07};
  m.reboot_os = {3.8, 13.0};
  m.boot = {3.4, 2.8};
  m.reset_hw = 47.0;
  return m;
}

}  // namespace rh::rejuv
