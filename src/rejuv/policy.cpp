#include "rejuv/policy.hpp"

#include <utility>

#include "simcore/check.hpp"

namespace rh::rejuv {

RejuvenationPolicy::RejuvenationPolicy(vmm::Host& host,
                                       std::vector<guest::GuestOs*> guests,
                                       Config config)
    : host_(host), guests_(std::move(guests)), config_(config) {
  ensure(config_.os_interval > 0 && config_.vmm_interval > 0,
         "RejuvenationPolicy: intervals must be positive");
  os_timers_.assign(guests_.size(), sim::kInvalidEventId);
}

void RejuvenationPolicy::start() {
  const sim::SimTime now = host_.sim().now();
  for (std::size_t i = 0; i < guests_.size(); ++i) {
    schedule_os(i, now + config_.os_interval +
                       static_cast<sim::Duration>(i) * config_.os_stagger);
  }
  schedule_vmm(now + config_.vmm_interval);
  if (config_.heap_pressure_threshold > 0.0) {
    host_.sim().after(config_.heap_check_interval, [this] { check_heap(); });
  }
}

void RejuvenationPolicy::schedule_os(std::size_t i, sim::SimTime when) {
  os_timers_[i] = host_.sim().at(when, [this, i] { run_os_rejuvenation(i); });
}

void RejuvenationPolicy::run_os_rejuvenation(std::size_t i) {
  os_timers_[i] = sim::kInvalidEventId;
  if (vmm_busy_) {
    // A VMM rejuvenation is running; try again shortly.
    schedule_os(i, host_.sim().now() + config_.retry_delay);
    return;
  }
  guest::GuestOs& g = *guests_[i];
  if (g.state() != guest::OsState::kRunning) {
    schedule_os(i, host_.sim().now() + config_.retry_delay);
    return;
  }
  ++os_busy_count_;
  const sim::SimTime start = host_.sim().now();
  g.shutdown([this, i, start, &g] {
    g.create_and_boot([this, i, start] {
      --os_busy_count_;
      ++os_count_;
      events_.push_back({start, host_.sim().now() - start, /*is_vmm=*/false, i,
                         /*heap_triggered=*/false});
      schedule_os(i, host_.sim().now() + config_.os_interval);
    });
  });
}

void RejuvenationPolicy::schedule_vmm(sim::SimTime when) {
  vmm_timer_ = host_.sim().at(when, [this] {
    run_vmm_rejuvenation(/*heap_triggered=*/false);
  });
}

void RejuvenationPolicy::run_vmm_rejuvenation(bool heap_triggered) {
  vmm_timer_ = sim::kInvalidEventId;
  if (vmm_busy_ || os_busy_count_ > 0) {
    schedule_vmm(host_.sim().now() + config_.retry_delay);
    return;
  }
  // Load-aware deferral: wait for a trough, but not forever.
  if (config_.load_probe) {
    if (vmm_due_since_ < 0) vmm_due_since_ = host_.sim().now();
    const bool overdue =
        host_.sim().now() - vmm_due_since_ >= config_.max_load_defer;
    if (!overdue && config_.load_probe() > config_.load_defer_threshold) {
      ++load_deferrals_;
      schedule_vmm(host_.sim().now() + config_.retry_delay);
      return;
    }
  }
  vmm_due_since_ = -1;
  vmm_busy_ = true;
  const sim::SimTime start = host_.sim().now();
  active_driver_ =
      make_reboot_driver(config_.vmm_reboot_kind, host_, guests_);
  active_driver_->run([this, start, heap_triggered] {
    vmm_busy_ = false;
    ++vmm_count_;
    events_.push_back({start, host_.sim().now() - start, /*is_vmm=*/true, 0,
                       heap_triggered});
    // A cold-VM reboot rebooted every OS, so the OS timers restart from
    // now (Fig. 2b); warm/saved reboots leave the OS timers untouched.
    if (config_.vmm_reboot_kind == RebootKind::kCold) {
      for (std::size_t i = 0; i < guests_.size(); ++i) {
        if (os_timers_[i] != sim::kInvalidEventId) {
          host_.sim().cancel(os_timers_[i]);
        }
        schedule_os(i, host_.sim().now() + config_.os_interval +
                           static_cast<sim::Duration>(i) * config_.os_stagger);
      }
    }
    schedule_vmm(host_.sim().now() + config_.vmm_interval);
  });
}

void RejuvenationPolicy::check_heap() {
  if (host_.vmm_running() && !vmm_busy_ &&
      host_.vmm().heap().pressure() >= config_.heap_pressure_threshold) {
    if (vmm_timer_ != sim::kInvalidEventId) {
      host_.sim().cancel(vmm_timer_);
      vmm_timer_ = sim::kInvalidEventId;
    }
    run_vmm_rejuvenation(/*heap_triggered=*/true);
  }
  host_.sim().after(config_.heap_check_interval, [this] { check_heap(); });
}

}  // namespace rh::rejuv
