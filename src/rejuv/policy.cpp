#include "rejuv/policy.hpp"

#include <algorithm>
#include <utility>

#include "simcore/check.hpp"

namespace rh::rejuv {

RejuvenationPolicy::RejuvenationPolicy(vmm::Host& host,
                                       std::vector<guest::GuestOs*> guests,
                                       Config config)
    : host_(host), guests_(std::move(guests)), config_(config) {
  ensure(config_.os_interval > 0 && config_.vmm_interval > 0,
         "RejuvenationPolicy: intervals must be positive");
  ensure(config_.retry_delay > 0 &&
             config_.retry_delay_cap >= config_.retry_delay,
         "RejuvenationPolicy: retry cap must be >= delay > 0");
  os_timers_.assign(guests_.size(), sim::kInvalidEventId);
  os_deferrals_.assign(guests_.size(), 0);
}

sim::Duration RejuvenationPolicy::retry_backoff(std::uint64_t k) {
  // min(cap, delay * 2^k) without overflow: stop doubling at the cap.
  sim::Duration d = config_.retry_delay;
  for (std::uint64_t i = 0; i < k && d < config_.retry_delay_cap; ++i) d *= 2;
  d = std::min(d, config_.retry_delay_cap);
  if (config_.retry_jitter > 0.0) {
    const double u = host_.rng().uniform01();
    d = std::max<sim::Duration>(
        1, static_cast<sim::Duration>(
               static_cast<double>(d) *
               (1.0 + config_.retry_jitter * (2.0 * u - 1.0))));
  }
  return d;
}

void RejuvenationPolicy::start() {
  const sim::SimTime now = host_.sim().now();
  for (std::size_t i = 0; i < guests_.size(); ++i) {
    schedule_os(i, now + config_.os_interval +
                       static_cast<sim::Duration>(i) * config_.os_stagger);
  }
  schedule_vmm(now + config_.vmm_interval);
  if (config_.heap_pressure_threshold > 0.0) {
    host_.sim().after(config_.heap_check_interval, [this] { check_heap(); });
  }
}

void RejuvenationPolicy::schedule_os(std::size_t i, sim::SimTime when) {
  os_timers_[i] = host_.sim().at(when, [this, i] { run_os_rejuvenation(i); });
}

void RejuvenationPolicy::run_os_rejuvenation(std::size_t i) {
  os_timers_[i] = sim::kInvalidEventId;
  if (vmm_busy_ || guests_[i]->state() != guest::OsState::kRunning) {
    // A VMM rejuvenation is running (or the guest is mid-transition); back
    // off exponentially so repeated collisions do not poll every 10 min.
    schedule_os(i, host_.sim().now() + retry_backoff(os_deferrals_[i]++));
    return;
  }
  guest::GuestOs& g = *guests_[i];
  ++os_busy_count_;
  const sim::SimTime start = host_.sim().now();
  const std::uint64_t deferrals = os_deferrals_[i];
  os_deferrals_[i] = 0;
  g.shutdown([this, i, start, deferrals, &g] {
    g.create_and_boot([this, i, start, deferrals] {
      --os_busy_count_;
      ++os_count_;
      events_.push_back({start, host_.sim().now() - start, /*is_vmm=*/false, i,
                         /*heap_triggered=*/false, deferrals});
      schedule_os(i, host_.sim().now() + config_.os_interval);
    });
  });
}

void RejuvenationPolicy::schedule_vmm(sim::SimTime when) {
  vmm_timer_ = host_.sim().at(when, [this] {
    run_vmm_rejuvenation(/*heap_triggered=*/false);
  });
}

void RejuvenationPolicy::run_vmm_rejuvenation(bool heap_triggered) {
  vmm_timer_ = sim::kInvalidEventId;
  if (vmm_busy_ || os_busy_count_ > 0) {
    schedule_vmm(host_.sim().now() + retry_backoff(vmm_deferrals_++));
    return;
  }
  // Load-aware deferral: wait for a trough, but not forever. Unlike busy
  // collisions, load polling keeps its *fixed* cadence: the point is to
  // catch the trough promptly, and max_load_defer already bounds the
  // total wait.
  if (config_.load_probe) {
    if (vmm_due_since_ < 0) vmm_due_since_ = host_.sim().now();
    const bool overdue =
        host_.sim().now() - vmm_due_since_ >= config_.max_load_defer;
    if (!overdue && config_.load_probe() > config_.load_defer_threshold) {
      ++load_deferrals_;
      schedule_vmm(host_.sim().now() + config_.retry_delay);
      return;
    }
  }
  vmm_due_since_ = -1;
  vmm_busy_ = true;
  const sim::SimTime start = host_.sim().now();
  const std::uint64_t deferrals = vmm_deferrals_;
  vmm_deferrals_ = 0;
  active_driver_ =
      make_reboot_driver(config_.vmm_reboot_kind, host_, guests_);
  active_driver_->run([this, start, heap_triggered, deferrals] {
    vmm_busy_ = false;
    ++vmm_count_;
    events_.push_back({start, host_.sim().now() - start, /*is_vmm=*/true, 0,
                       heap_triggered, deferrals});
    // A cold-VM reboot rebooted every OS, so the OS timers restart from
    // now (Fig. 2b); warm/saved reboots leave the OS timers untouched.
    if (config_.vmm_reboot_kind == RebootKind::kCold) {
      for (std::size_t i = 0; i < guests_.size(); ++i) {
        if (os_timers_[i] != sim::kInvalidEventId) {
          host_.sim().cancel(os_timers_[i]);
        }
        schedule_os(i, host_.sim().now() + config_.os_interval +
                           static_cast<sim::Duration>(i) * config_.os_stagger);
      }
    }
    schedule_vmm(host_.sim().now() + config_.vmm_interval);
  });
}

void RejuvenationPolicy::check_heap() {
  if (host_.vmm_running() && !vmm_busy_ &&
      host_.vmm().heap().pressure() >= config_.heap_pressure_threshold) {
    if (vmm_timer_ != sim::kInvalidEventId) {
      host_.sim().cancel(vmm_timer_);
      vmm_timer_ = sim::kInvalidEventId;
    }
    run_vmm_rejuvenation(/*heap_triggered=*/true);
  }
  host_.sim().after(config_.heap_check_interval, [this] { check_heap(); });
}

}  // namespace rh::rejuv
