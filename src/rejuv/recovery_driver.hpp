#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "rejuv/supervisor.hpp"

namespace rh::guest {
class GuestOs;
}  // namespace rh::guest
namespace rh::vmm {
class Host;
}  // namespace rh::vmm

namespace rh::rejuv {

/// Long-lived in-service recovery entry for one host (DESIGN.md §14).
///
/// Supervisor is deliberately one-shot -- run / recover /
/// respond_to_failure are mutually exclusive and a finished ladder cannot
/// be rearmed -- so a host that must survive an arbitrary number of
/// steady-state VMM failures needs a fresh supervised ladder per arrival.
/// The driver owns that lifecycle: each failure either starts a new
/// Supervisor::respond_to_failure ladder or is *absorbed* when a ladder
/// (planned wave turn or a previous unplanned one) already owns the host,
/// which is exactly the host-level recovery overlap guard from PR 8.
///
/// The completed ladder is retired lazily: it is destroyed when the next
/// failure arrives, never from inside its own completion callback.
class RecoveryDriver {
 public:
  /// What on_failure did with one arrival. `report` is only valid for the
  /// duration of the callback and only when `absorbed` is false.
  struct Outcome {
    fault::FaultKind kind = fault::FaultKind::kVmmCrash;
    bool absorbed = false;
    const SupervisorReport* report = nullptr;
  };

  /// `host` and the guests must outlive the driver. `supervisor` is the
  /// ladder template used for every unplanned failure.
  RecoveryDriver(vmm::Host& host, std::vector<guest::GuestOs*> guests,
                 SupervisorConfig supervisor);

  /// Whether the next arrival would be absorbed instead of starting a
  /// ladder (host already down, or a recovery already in flight).
  [[nodiscard]] bool would_absorb() const;

  /// Handles one steady fault arrival. Absorbed arrivals invoke `done`
  /// synchronously with absorbed = true; otherwise a fresh Supervisor
  /// responds to the failure and `done` fires with its report when the
  /// ladder completes. `done` typically re-arms the SteadyFaultProcess.
  void on_failure(fault::FaultKind kind,
                  std::function<void(const Outcome&)> done);

  [[nodiscard]] std::uint64_t failures_handled() const { return handled_; }
  [[nodiscard]] std::uint64_t failures_absorbed() const { return absorbed_; }
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }
  [[nodiscard]] std::uint64_t micro_recoveries() const { return micro_; }
  [[nodiscard]] std::uint64_t unrecovered() const { return unrecovered_; }

 private:
  vmm::Host& host_;
  std::vector<guest::GuestOs*> guests_;
  SupervisorConfig config_;
  std::unique_ptr<Supervisor> active_;   ///< ladder in flight, if any
  std::unique_ptr<Supervisor> retired_;  ///< completed, freed on next arrival
  std::uint64_t handled_ = 0;
  std::uint64_t absorbed_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t micro_ = 0;
  std::uint64_t unrecovered_ = 0;
};

}  // namespace rh::rejuv
