#include "rejuv/reboot_driver.hpp"

#include <memory>
#include <utility>

#include "simcore/check.hpp"

namespace rh::rejuv {

const char* to_string(RebootKind k) {
  switch (k) {
    case RebootKind::kWarm: return "warm-VM reboot";
    case RebootKind::kSaved: return "saved-VM reboot";
    case RebootKind::kCold: return "cold-VM reboot";
  }
  return "unknown";
}

RebootDriver::RebootDriver(vmm::Host& host, std::vector<guest::GuestOs*> guests)
    : host_(host), guests_(std::move(guests)) {
  for (const auto* g : guests_) {
    ensure(g != nullptr, "RebootDriver: null guest");
  }
}

void RebootDriver::run(std::function<void()> on_complete) {
  ensure(static_cast<bool>(on_complete), "RebootDriver::run: callback required");
  ensure(!started_, "RebootDriver::run: drivers are one-shot");
  ensure(host_.up(), "RebootDriver::run: host is not up");
  started_ = true;
  started_at_ = host_.sim().now();
  if (host_.tracer().enabled()) {
    host_.tracer().emit(started_at_, "rejuv",
                        std::string("begin ") + to_string(kind()));
  }
  obs::Observer& obs = host_.obs();
  pass_span_ = obs.span_open(started_at_, obs::Phase::kPass, to_string(kind()));
  outer_ambient_ = obs.ambient();
  obs.set_ambient(pass_span_);
  script_ = std::make_unique<sim::Script>(host_.sim());
  // Mirror each completed step verbatim (same label, start and end) into a
  // kStep span under the pass span: Fig. 7's breakdown falls out of the
  // span tree byte-identical to breakdown().
  script_->set_step_observer([this](const sim::StepRecord& rec) {
    host_.obs().span_complete_under(rec.start, rec.end, obs::Phase::kStep,
                                    rec.label, pass_span_);
  });
  build(*script_);
  script_->run([this, on_complete = std::move(on_complete)] {
    completed_ = true;
    finished_at_ = host_.sim().now();
    if (host_.tracer().enabled()) {
      host_.tracer().emit(
          finished_at_, "rejuv",
          std::string("completed ") + to_string(kind()) + " in " +
              std::to_string(sim::to_seconds(total_duration())) + " s");
    }
    host_.obs().span_close(pass_span_, finished_at_);
    host_.obs().set_ambient(outer_ambient_);
    on_complete();
  });
}

const std::vector<sim::StepRecord>& RebootDriver::breakdown() const {
  ensure(script_ != nullptr, "RebootDriver::breakdown: not run yet");
  return script_->records();
}

namespace {

/// Runs `fn(guest, done)` for every guest in parallel; `done` fires when
/// the last completes (immediately when there are no guests).
void for_all_guests(
    vmm::Host& host, const std::vector<guest::GuestOs*>& guests,
    const std::function<void(guest::GuestOs&, std::function<void()>)>& fn,
    std::function<void()> done) {
  if (guests.empty()) {
    host.sim().after(0, std::move(done));
    return;
  }
  auto remaining = std::make_shared<std::size_t>(guests.size());
  auto shared_done = std::make_shared<std::function<void()>>(std::move(done));
  for (auto* g : guests) {
    fn(*g, [remaining, shared_done] {
      if (--*remaining == 0) (*shared_done)();
    });
  }
}

}  // namespace

RebootDriver::GuestList RebootDriver::suspendable_guests() const {
  GuestList out;
  for (auto* g : guests_) {
    if (!g->driver_domain()) out.push_back(g);
  }
  return out;
}

RebootDriver::GuestList RebootDriver::driver_domain_guests() const {
  GuestList out;
  for (auto* g : guests_) {
    if (g->driver_domain()) out.push_back(g);
  }
  return out;
}

void RebootDriver::resume_on_memory(const GuestList& guests,
                                    std::function<void()> done) {
  const int count = static_cast<int>(guests.size());
  for_all_guests(
      host_, guests,
      [this](guest::GuestOs& g, std::function<void()> guest_done) {
        host_.vmm().resume_domain_on_memory(
            g.name(), &g, [guest_done = std::move(guest_done)](DomainId) {
              guest_done();
            });
      },
      [this, count, done = std::move(done)] {
        host_.note_simultaneous_creations(count);
        done();
      });
}

void RebootDriver::save_to_disk(const GuestList& guests,
                                std::function<void()> done) {
  for_all_guests(
      host_, guests,
      [this](guest::GuestOs& g, std::function<void()> guest_done) {
        ensure(g.domain_id() != kNoDomain, "save: guest has no domain");
        host_.vmm().save_domain_to_disk(g.domain_id(), host_.images(),
                                        std::move(guest_done));
      },
      std::move(done));
}

void RebootDriver::restore_from_disk(const GuestList& guests,
                                     std::function<void()> done) {
  // Unlike on-memory resume, restores are spread out by their (long) disk
  // reads, so the domains are not created "simultaneously" and the Xen
  // creation artifact does not trigger.
  for_all_guests(
      host_, guests,
      [this](guest::GuestOs& g, std::function<void()> guest_done) {
        host_.vmm().restore_domain_from_disk(
            g.name(), host_.images(), &g,
            [guest_done = std::move(guest_done)](DomainId) { guest_done(); });
      },
      std::move(done));
}

void RebootDriver::shutdown_guests(const GuestList& guests,
                                   std::function<void()> done) {
  for_all_guests(
      host_, guests,
      [](guest::GuestOs& g, std::function<void()> guest_done) {
        g.shutdown(std::move(guest_done));
      },
      std::move(done));
}

void RebootDriver::boot_guests(const GuestList& guests,
                               std::function<void()> done) {
  // Cold boots are serialised by disk I/O (~3.4 s apart), so creation is
  // not simultaneous; no artifact here either (the paper's cold-reboot dip
  // comes from cache misses alone).
  for_all_guests(
      host_, guests,
      [](guest::GuestOs& g, std::function<void()> guest_done) {
        g.create_and_boot(std::move(guest_done));
      },
      std::move(done));
}

// --------------------------------------------------------------- warm

void WarmVmReboot::build(sim::Script& script) {
  // 1. dom0 loads the new VMM image via the xexec system call while
  //    everything still runs.
  script.step_async("load xexec image", [this](std::function<void()> done) {
    host_.vmm().xexec_load(std::move(done));
  });

  // 2. Driver domains cannot be suspended (Sec. 7): they get a cold
  //    shutdown/boot even in the warm path.
  if (!driver_domain_guests().empty()) {
    script.step_async("driver domain shutdown",
                      [this](std::function<void()> done) {
                        shutdown_guests(driver_domain_guests(), std::move(done));
                      });
  }

  if (host_.calib().suspend_by_vmm_after_dom0_shutdown) {
    // RootHammer ordering: dom0 shuts down first (services in domUs keep
    // answering), then the VMM itself suspends the domains.
    script.step_async("dom0 shutdown", [this](std::function<void()> done) {
      host_.shutdown_dom0(std::move(done));
    });
    script.step_async("on-memory suspend", [this](std::function<void()> done) {
      host_.vmm().suspend_all_on_memory(std::move(done));
    });
  } else {
    // Original-Xen ordering (ablation): domain 0 must suspend the domains
    // while it is still up, so services go down earlier.
    script.step_async("on-memory suspend", [this](std::function<void()> done) {
      host_.vmm().suspend_all_on_memory(std::move(done));
    });
    script.step_async("dom0 shutdown", [this](std::function<void()> done) {
      host_.shutdown_dom0(std::move(done));
    });
  }

  // 3. Quick reload: new VMM instance without a hardware reset; RAM (and
  //    the frozen images) survive. Includes dom0 kernel + userland boot.
  script.step_async("quick reload + VMM/dom0 boot",
                    [this](std::function<void()> done) {
                      host_.quick_reload(std::move(done));
                    });

  // 4. Resume every preserved domain; cold-boot the driver domains.
  script.step_async("on-memory resume", [this](std::function<void()> done) {
    resume_on_memory(suspendable_guests(), std::move(done));
  });
  if (!driver_domain_guests().empty()) {
    script.step_async("driver domain boot", [this](std::function<void()> done) {
      boot_guests(driver_domain_guests(), std::move(done));
    });
  }
}

// --------------------------------------------------------------- saved

void SavedVmReboot::build(sim::Script& script) {
  // 1. Every suspendable domain is suspended (down) almost immediately;
  //    the memory images then stream out through the single disk,
  //    serially. Driver domains cannot be suspended: plain shutdown.
  script.step_async("save VMs to disk", [this](std::function<void()> done) {
    save_to_disk(suspendable_guests(), std::move(done));
  });
  if (!driver_domain_guests().empty()) {
    script.step_async("driver domain shutdown",
                      [this](std::function<void()> done) {
                        shutdown_guests(driver_domain_guests(), std::move(done));
                      });
  }
  script.step_async("dom0 shutdown", [this](std::function<void()> done) {
    host_.shutdown_dom0(std::move(done));
  });
  // 2. Plain reboot: hardware reset (POST), boot loader, fresh VMM, dom0.
  script.step_async("hardware reset + VMM/dom0 boot",
                    [this](std::function<void()> done) {
                      host_.hardware_reboot(std::move(done));
                    });
  // 3. Read every image back and rebuild the domains.
  script.step_async("restore VMs from disk", [this](std::function<void()> done) {
    restore_from_disk(suspendable_guests(), std::move(done));
  });
  if (!driver_domain_guests().empty()) {
    script.step_async("driver domain boot", [this](std::function<void()> done) {
      boot_guests(driver_domain_guests(), std::move(done));
    });
  }
}

// --------------------------------------------------------------- cold

void ColdVmReboot::build(sim::Script& script) {
  // 1. Every guest OS shuts down cleanly (services stop; sessions close).
  script.step_async("guest OS shutdown", [this](std::function<void()> done) {
    shutdown_guests(guests_, std::move(done));
  });
  script.step_async("dom0 shutdown", [this](std::function<void()> done) {
    host_.shutdown_dom0(std::move(done));
  });
  script.step_async("hardware reset + VMM/dom0 boot",
                    [this](std::function<void()> done) {
                      host_.hardware_reboot(std::move(done));
                    });
  // 2. Re-create all domains and boot the OSes and services from scratch.
  script.step_async("guest OS boot", [this](std::function<void()> done) {
    boot_guests(guests_, std::move(done));
  });
}

std::unique_ptr<RebootDriver> make_reboot_driver(
    RebootKind kind, vmm::Host& host, std::vector<guest::GuestOs*> guests) {
  switch (kind) {
    case RebootKind::kWarm:
      return std::make_unique<WarmVmReboot>(host, std::move(guests));
    case RebootKind::kSaved:
      return std::make_unique<SavedVmReboot>(host, std::move(guests));
    case RebootKind::kCold:
      return std::make_unique<ColdVmReboot>(host, std::move(guests));
  }
  throw InvariantViolation("make_reboot_driver: bad kind");
}

}  // namespace rh::rejuv
