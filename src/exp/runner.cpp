#include "exp/runner.hpp"

#include <chrono>
#include <exception>
#include <utility>

#include "exp/thread_pool.hpp"
#include "simcore/check.hpp"

namespace rh::exp {

namespace {

using Clock = std::chrono::steady_clock;

/// Derives the context of every (point, replication) task on the calling
/// thread, in lexicographic order, so each substream is a pure function
/// of (root seed, point index, replication index).
std::vector<ReplicationContext> derive_contexts(const GridSpec& spec) {
  std::vector<ReplicationContext> ctxs;
  ctxs.reserve(spec.points * spec.replications);
  sim::Rng root(spec.root_seed);
  for (std::size_t p = 0; p < spec.points; ++p) {
    sim::Rng point_rng = root.split();
    for (std::size_t r = 0; r < spec.replications; ++r) {
      ReplicationContext ctx;
      ctx.point_index = p;
      ctx.replication_index = r;
      ctx.rng = point_rng.split();
      ctx.seed = ctx.rng.next();
      ctxs.push_back(std::move(ctx));
    }
  }
  return ctxs;
}

GridResult reduce(const GridSpec& spec,
                  const std::vector<ReplicationResult>& results,
                  const std::vector<std::exception_ptr>& errors) {
  for (const auto& e : errors) {
    if (e != nullptr) std::rethrow_exception(e);
  }
  GridResult out;
  out.points.resize(spec.points);
  for (std::size_t p = 0; p < spec.points; ++p) {
    for (std::size_t r = 0; r < spec.replications; ++r) {
      out.points[p].add(results[p * spec.replications + r]);
    }
  }
  return out;
}

void check_spec(const GridSpec& spec) {
  ensure(spec.points > 0, "run_grid: need at least one point");
  ensure(spec.replications > 0, "run_grid: need at least one replication");
}

}  // namespace

void Reducer::add(const ReplicationResult& r) {
  if (count_ == 0) {
    metrics_.resize(r.values.size());
    histograms_.resize(r.histograms.size());
    series_.resize(r.series.size());
  } else {
    ensure(r.values.size() == metrics_.size() &&
               r.histograms.size() == histograms_.size() &&
               r.series.size() == series_.size(),
           "Reducer::add: replications of one point disagree on shape");
  }
  for (std::size_t i = 0; i < r.values.size(); ++i) metrics_[i].add(r.values[i]);
  for (std::size_t i = 0; i < r.histograms.size(); ++i) {
    histograms_[i].merge(r.histograms[i]);
  }
  for (std::size_t i = 0; i < r.series.size(); ++i) series_[i].merge(r.series[i]);
  merged_metrics_.merge(r.metrics);
  ++count_;
}

double Reducer::mean(std::size_t i) const {
  ensure(i < metrics_.size(), "Reducer::mean: metric index out of range");
  return metrics_[i].mean();
}

double Reducer::ci95(std::size_t i) const {
  ensure(i < metrics_.size(), "Reducer::ci95: metric index out of range");
  return sim::ci95_half_width(metrics_[i]);
}

GridResult run_grid(const GridSpec& spec, const ReplicationBody& body) {
  check_spec(spec);
  const auto t0 = Clock::now();
  const auto ctxs = derive_contexts(spec);
  std::vector<ReplicationResult> results(ctxs.size());
  std::vector<std::exception_ptr> errors(ctxs.size());

  ThreadPool pool(spec.threads);
  for (std::size_t i = 0; i < ctxs.size(); ++i) {
    pool.submit([&, i] {
      try {
        results[i] = body(ctxs[i]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  pool.wait_idle();

  GridResult out = reduce(spec, results, errors);
  out.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  out.threads_used = pool.worker_count();
  return out;
}

GridResult run_grid_sequential(const GridSpec& spec,
                               const ReplicationBody& body) {
  check_spec(spec);
  const auto t0 = Clock::now();
  const auto ctxs = derive_contexts(spec);
  std::vector<ReplicationResult> results(ctxs.size());
  std::vector<std::exception_ptr> errors(ctxs.size());
  for (std::size_t i = 0; i < ctxs.size(); ++i) {
    try {
      results[i] = body(ctxs[i]);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  }
  GridResult out = reduce(spec, results, errors);
  out.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  out.threads_used = 1;
  return out;
}

}  // namespace rh::exp
