// Parallel, deterministic replication runner.
//
// The paper's evaluation is a grid of independent experiment points
// (memory sizes, VM counts, reboot kinds), and each point should be
// replicated under different seeds to report a confidence interval
// instead of a single draw. This runner fans the (point x replication)
// grid out across a thread pool while keeping the merged output
// *byte-identical* no matter how many threads run it:
//
//  1. Every replication gets a private RNG substream derived on the
//     calling thread, before any task runs, by walking Rng::split() in
//     (point, replication) lexicographic order from the root seed. The
//     substream therefore depends only on (root seed, point index,
//     replication index), never on scheduling.
//  2. Every task owns its simulation outright and writes its
//     ReplicationResult into a preallocated slot; tasks share nothing.
//  3. Reduction happens after the pool drains, on the calling thread, in
//     replication-index order (Summary::merge and the series merges are
//     order-fixed), so floating-point reassociation cannot creep in.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/metrics.hpp"
#include "simcore/histogram.hpp"
#include "simcore/random.hpp"
#include "simcore/stats.hpp"
#include "simcore/time_series.hpp"

namespace rh::exp {

/// Identity and private random substream of one replication task.
struct ReplicationContext {
  std::size_t point_index = 0;
  std::size_t replication_index = 0;
  /// First draw of the substream, for components that take a plain seed
  /// (e.g. vmm::Host). Distinct across the whole grid.
  std::uint64_t seed = 0;
  /// The substream itself (already past the `seed` draw). Copy it if the
  /// replication needs several independent generators.
  sim::Rng rng;
};

/// Everything one replication reports back. `values` carries the scalar
/// metrics in the order the bench declares them; histograms/series are
/// optional and merged per point across replications.
struct ReplicationResult {
  std::vector<double> values;
  std::vector<sim::LatencyHistogram> histograms;
  std::vector<sim::TimeSeries> series;
  /// Named observability metrics of this replication (typically moved out
  /// of a host's Observer). Merged per point in replication-index order,
  /// like everything else, so the merged registry is thread-count
  /// independent.
  obs::MetricsRegistry metrics;
};

/// Order-fixed reduction of one grid point's replications. add() must be
/// called in replication-index order (run_grid does); the resulting
/// Summaries, histograms and series are then independent of how the
/// replications were scheduled.
class Reducer {
 public:
  /// Folds one replication in. All results of a point must agree on the
  /// number of values/histograms/series.
  void add(const ReplicationResult& r);

  [[nodiscard]] std::size_t replications() const { return count_; }
  [[nodiscard]] const std::vector<sim::Summary>& metrics() const {
    return metrics_;
  }
  [[nodiscard]] const std::vector<sim::LatencyHistogram>& histograms() const {
    return histograms_;
  }
  [[nodiscard]] const std::vector<sim::TimeSeries>& series() const {
    return series_;
  }
  /// Union of every replication's named metrics (counters summed,
  /// histograms/summaries merged in add() order).
  [[nodiscard]] const obs::MetricsRegistry& merged_metrics() const {
    return merged_metrics_;
  }

  /// Mean of metric `i` across replications.
  [[nodiscard]] double mean(std::size_t i) const;
  /// Half-width of the 95 % confidence interval of metric `i` (0 if < 2
  /// replications).
  [[nodiscard]] double ci95(std::size_t i) const;

 private:
  std::vector<sim::Summary> metrics_;
  std::vector<sim::LatencyHistogram> histograms_;
  std::vector<sim::TimeSeries> series_;
  obs::MetricsRegistry merged_metrics_;
  std::size_t count_ = 0;
};

/// Declares a replication grid: `points` sweep points, each replicated
/// `replications` times.
struct GridSpec {
  std::size_t points = 1;
  std::size_t replications = 1;
  std::uint64_t root_seed = 7;
  /// Worker threads; 0 = one per hardware thread.
  std::size_t threads = 0;
};

/// One replication body: maps (point, substream) to a result. Must be
/// deterministic given the context and must not touch shared state.
using ReplicationBody =
    std::function<ReplicationResult(const ReplicationContext&)>;

/// The reduced grid: one Reducer per point, plus run telemetry.
struct GridResult {
  std::vector<Reducer> points;
  double wall_seconds = 0.0;
  std::size_t threads_used = 0;

  [[nodiscard]] const Reducer& point(std::size_t p) const { return points[p]; }
};

/// Runs the grid on a thread pool and reduces in fixed order. The merged
/// result is byte-identical for any thread count (see file comment). An
/// exception thrown by a body is rethrown here, lowest task index first.
GridResult run_grid(const GridSpec& spec, const ReplicationBody& body);

/// Reference implementation: same contexts, same reduction, plain loop on
/// the calling thread with no pool. Baseline for runner_bench, and the
/// oracle the determinism tests compare against.
GridResult run_grid_sequential(const GridSpec& spec,
                               const ReplicationBody& body);

}  // namespace rh::exp
