#include "exp/thread_pool.hpp"

#include <utility>

#include "simcore/check.hpp"

namespace rh::exp {

std::size_t ThreadPool::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(Task task) {
  ensure(task != nullptr, "ThreadPool::submit: empty task");
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    target = next_queue_++ % queues_.size();
    ++queued_;
    ++pending_;
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return pending_ == 0; });
}

ThreadPool::Task ThreadPool::take_task(std::size_t self) {
  // The caller holds a reservation (decremented queued_), so the total
  // number of claimants never exceeds the number of pushed tasks; the
  // scan below terminates.
  for (std::size_t round = 0;; ++round) {
    for (std::size_t k = 0; k < queues_.size(); ++k) {
      auto& q = *queues_[(self + k) % queues_.size()];
      std::lock_guard<std::mutex> lock(q.mu);
      if (q.tasks.empty()) continue;
      Task t;
      if (k == 0) {  // own deque: LIFO for cache warmth
        t = std::move(q.tasks.back());
        q.tasks.pop_back();
      } else {  // steal: FIFO, take the victim's oldest task
        t = std::move(q.tasks.front());
        q.tasks.pop_front();
      }
      return t;
    }
    // Extremely unlikely: a submitter has incremented queued_ but not yet
    // pushed. Yield and rescan.
    std::this_thread::yield();
  }
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] { return stop_ || queued_ > 0; });
      if (queued_ == 0 && stop_) return;
      --queued_;
    }
    Task task = take_task(self);
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
      if (pending_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace rh::exp
