// Fixed-size thread pool with per-worker task deques and work stealing.
//
// The replication runner fans a grid of independent simulation tasks out
// across cores. Tasks vary wildly in cost (an 11-VM cold reboot vs a
// 1-VM warm one), so a single shared queue would serialise the cheap tasks
// behind the lock while stealing lets an idle worker pick up the slack of
// a loaded one. Determinism is unaffected: tasks only write their own
// result slot, and the reduction happens after wait_idle() on the caller.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rh::exp {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Starts `threads` workers; 0 means one per hardware thread (>= 1).
  explicit ThreadPool(std::size_t threads = 0);
  /// Drains remaining tasks, then joins the workers.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task (round-robin across worker deques). Safe from any
  /// thread, including from inside a running task.
  void submit(Task task);

  /// Blocks until every submitted task has finished. Must not be called
  /// from inside a task (it would wait on itself).
  void wait_idle();

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// 0-argument default for `threads`: hardware concurrency, at least 1.
  [[nodiscard]] static std::size_t default_thread_count();

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t self);
  // Pops one task, preferring `self`'s deque (LIFO, cache-warm), then
  // scanning the other deques round-robin (FIFO steal). Only called after
  // a reservation was taken from queued_, so a task is guaranteed to be
  // found eventually.
  Task take_task(std::size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;  // guards the counters below
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::size_t next_queue_ = 0;  // round-robin submit target
  std::size_t queued_ = 0;      // pushed, not yet claimed by a worker
  std::size_t pending_ = 0;     // submitted, not yet finished
  bool stop_ = false;
};

}  // namespace rh::exp
