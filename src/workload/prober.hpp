// Service-liveness prober: measures downtime the way the paper does.
//
// "We measured the time from when a networked service in each VM was down
// and until it was up again after the VMM was rebooted" (Sec. 5.3). The
// prober sends a probe every `interval` from the client host and records
// up/down transitions; downtime is the width of the down window.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "simcore/simulation.hpp"
#include "simcore/types.hpp"

namespace rh::workload {

class Prober {
 public:
  struct Config {
    sim::Duration interval = 100 * sim::kMillisecond;
  };

  /// `up` is evaluated at each probe instant and must say whether the
  /// target service would answer.
  Prober(sim::Simulation& sim, Config config, std::function<bool()> up);
  ~Prober();
  Prober(const Prober&) = delete;
  Prober& operator=(const Prober&) = delete;

  void start();
  void stop();

  struct Transition {
    sim::SimTime time = 0;
    bool up = false;
  };

  /// Recorded state changes (the first probe always records one).
  [[nodiscard]] const std::vector<Transition>& transitions() const {
    return transitions_;
  }

  [[nodiscard]] bool currently_up() const { return last_up_; }
  [[nodiscard]] std::uint64_t probes_sent() const { return probes_; }

  /// The first complete outage beginning at or after `from`:
  /// [went down, came back up). Empty if none completed yet.
  [[nodiscard]] std::optional<sim::Duration> outage_after(sim::SimTime from) const;

  /// When the service went down for the first outage at/after `from`.
  [[nodiscard]] std::optional<sim::SimTime> down_at_after(sim::SimTime from) const;

  /// Total down time within [from, to).
  [[nodiscard]] sim::Duration total_downtime(sim::SimTime from, sim::SimTime to) const;

 private:
  void probe();

  sim::Simulation& sim_;
  Config config_;
  std::function<bool()> up_;
  std::vector<Transition> transitions_;
  sim::EventId pending_ = sim::kInvalidEventId;
  bool running_ = false;
  bool last_up_ = false;
  bool first_probe_ = true;
  std::uint64_t probes_ = 0;
};

}  // namespace rh::workload
