// Closed-loop HTTP client fleet (the paper's httperf).
//
// N concurrent connections each issue the next request as soon as the
// previous response arrives; completions are recorded for throughput
// time series. Failed requests (service unreachable) are retried after a
// short delay, which is what produces the zero-throughput trough during a
// reboot in Fig. 7.
#pragma once

#include <cstdint>
#include <vector>

#include "guest/apache.hpp"
#include "guest/guest_os.hpp"
#include "simcore/histogram.hpp"
#include "simcore/time_series.hpp"

namespace rh::workload {

class HttpClientFleet {
 public:
  struct Config {
    int connections = 10;
    sim::Duration retry_interval = sim::kSecond;
    /// true: cycle the file list forever (Fig. 7); false: request each
    /// file exactly once across the fleet (Fig. 8b).
    bool cycle = true;
  };

  HttpClientFleet(guest::GuestOs& os, guest::ApacheService& apache,
                  std::vector<std::int64_t> files, Config config);
  HttpClientFleet(const HttpClientFleet&) = delete;
  HttpClientFleet& operator=(const HttpClientFleet&) = delete;

  void start();
  void stop();

  /// True when (non-cycle mode) all files have been served.
  [[nodiscard]] bool finished() const { return active_connections_ == 0 && started_; }

  [[nodiscard]] const sim::RateRecorder& completions() const { return completions_; }
  [[nodiscard]] std::uint64_t requests_ok() const { return ok_; }
  [[nodiscard]] std::uint64_t requests_failed() const { return failed_; }

  /// Per-request latency distribution of successful requests.
  [[nodiscard]] const sim::LatencyHistogram& latencies() const { return latencies_; }

 private:
  void issue();

  guest::GuestOs& os_;
  guest::ApacheService& apache_;
  std::vector<std::int64_t> files_;
  Config config_;
  sim::RateRecorder completions_;
  sim::LatencyHistogram latencies_;
  std::size_t next_index_ = 0;
  int active_connections_ = 0;
  bool started_ = false;
  bool stopped_ = false;
  std::uint64_t ok_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace rh::workload
