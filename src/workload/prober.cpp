#include "workload/prober.hpp"

#include <algorithm>
#include <utility>

#include "simcore/check.hpp"

namespace rh::workload {

Prober::Prober(sim::Simulation& sim, Config config, std::function<bool()> up)
    : sim_(sim), config_(config), up_(std::move(up)) {
  ensure(static_cast<bool>(up_), "Prober: liveness callback required");
  ensure(config_.interval > 0, "Prober: interval must be positive");
}

Prober::~Prober() { stop(); }

void Prober::start() {
  ensure(!running_, "Prober::start: already running");
  running_ = true;
  first_probe_ = true;
  probe();
}

void Prober::stop() {
  running_ = false;
  if (pending_ != sim::kInvalidEventId) {
    sim_.cancel(pending_);
    pending_ = sim::kInvalidEventId;
  }
}

void Prober::probe() {
  pending_ = sim::kInvalidEventId;
  if (!running_) return;
  ++probes_;
  const bool up = up_();
  if (first_probe_ || up != last_up_) {
    transitions_.push_back({sim_.now(), up});
    first_probe_ = false;
  }
  last_up_ = up;
  pending_ = sim_.after(config_.interval, [this] { probe(); });
}

std::optional<sim::Duration> Prober::outage_after(sim::SimTime from) const {
  const auto down = down_at_after(from);
  if (!down) return std::nullopt;
  for (const auto& t : transitions_) {
    if (t.time > *down && t.up) return t.time - *down;
  }
  return std::nullopt;  // still down
}

std::optional<sim::SimTime> Prober::down_at_after(sim::SimTime from) const {
  for (const auto& t : transitions_) {
    if (t.time >= from && !t.up) return t.time;
  }
  return std::nullopt;
}

sim::Duration Prober::total_downtime(sim::SimTime from, sim::SimTime to) const {
  ensure(to >= from, "Prober::total_downtime: bad window");
  sim::Duration down = 0;
  // Walk the transition list, tracking state over [from, to).
  bool up = true;
  sim::SimTime cursor = from;
  for (const auto& t : transitions_) {
    if (t.time <= from) {
      up = t.up;
      continue;
    }
    if (t.time >= to) break;
    if (!up) down += t.time - cursor;
    cursor = t.time;
    up = t.up;
  }
  if (!up) down += to - cursor;
  return down;
}

}  // namespace rh::workload
