#include "workload/http_client.hpp"

#include <utility>

#include "simcore/check.hpp"

namespace rh::workload {

HttpClientFleet::HttpClientFleet(guest::GuestOs& os,
                                 guest::ApacheService& apache,
                                 std::vector<std::int64_t> files, Config config)
    : os_(os), apache_(apache), files_(std::move(files)), config_(config) {
  ensure(!files_.empty(), "HttpClientFleet: need at least one file");
  ensure(config_.connections > 0, "HttpClientFleet: need at least one connection");
}

void HttpClientFleet::start() {
  ensure(!started_, "HttpClientFleet::start: already started");
  started_ = true;
  active_connections_ = config_.connections;
  for (int c = 0; c < config_.connections; ++c) issue();
}

void HttpClientFleet::stop() { stopped_ = true; }

void HttpClientFleet::issue() {
  if (stopped_) {
    --active_connections_;
    return;
  }
  if (!config_.cycle && next_index_ >= files_.size()) {
    --active_connections_;
    return;
  }
  const std::int64_t file = files_[next_index_ % files_.size()];
  ++next_index_;
  const sim::SimTime issued_at = os_.host().sim().now();
  apache_.serve_file(os_, file, [this, issued_at](bool served) {
    if (stopped_) {
      --active_connections_;
      return;
    }
    if (served) {
      ++ok_;
      completions_.record(os_.host().sim().now());
      latencies_.add(os_.host().sim().now() - issued_at);
      issue();
    } else {
      ++failed_;
      // Service unreachable: back off and retry (the request slot is not
      // consumed in once-mode accounting terms -- a refused request served
      // nothing).
      if (!config_.cycle) --next_index_;
      os_.host().sim().after(config_.retry_interval, [this] { issue(); });
    }
  });
}

}  // namespace rh::workload
