#include "workload/throughput_recorder.hpp"

#include <algorithm>

#include "simcore/check.hpp"

namespace rh::workload {

DegradationReport ThroughputAnalyzer::analyze(
    const sim::RateRecorder& completions, sim::SimTime event_start,
    sim::SimTime restored_at, sim::SimTime horizon, sim::Duration bin,
    sim::Duration baseline_window) {
  ensure(bin > 0, "ThroughputAnalyzer: bin must be positive");
  ensure(restored_at >= event_start, "ThroughputAnalyzer: restore before event");
  ensure(horizon > restored_at, "ThroughputAnalyzer: empty post window");

  DegradationReport rep;
  const sim::SimTime base_from =
      std::max<sim::SimTime>(0, event_start - baseline_window);
  rep.baseline_rate = completions.rate_between(base_from, event_start);

  // First bin after restoration with any completions defines the restored
  // rate; the degraded window ends at the first bin back at >= 90 % of
  // baseline.
  bool found_restored = false;
  sim::SimTime recovered_at = horizon;
  for (sim::SimTime t = restored_at; t + bin <= horizon; t += bin) {
    const double r = completions.rate_between(t, t + bin);
    if (!found_restored && r > 0.0) {
      rep.restored_rate = r;
      found_restored = true;
    }
    if (found_restored && r >= 0.9 * rep.baseline_rate) {
      recovered_at = t;
      break;
    }
  }
  rep.degraded_window = recovered_at - restored_at;
  if (rep.baseline_rate > 0.0) {
    rep.degradation = std::clamp(1.0 - rep.restored_rate / rep.baseline_rate, 0.0, 1.0);
  }
  return rep;
}

}  // namespace rh::workload
