// Throughput timeline analysis around a reboot event (Figs. 7 and 8).
#pragma once

#include <optional>
#include <vector>

#include "simcore/time_series.hpp"
#include "simcore/types.hpp"

namespace rh::workload {

/// Quantifies post-reboot performance degradation from a completion log.
struct DegradationReport {
  double baseline_rate = 0.0;  ///< req/s before the event
  double restored_rate = 0.0;  ///< req/s in the first active bin after restore
  /// 1 - restored/baseline, clamped to [0, 1]; the paper's "degraded by X %".
  double degradation = 0.0;
  /// How long after restoration the rate stayed below 90 % of baseline.
  sim::Duration degraded_window = 0;
};

class ThroughputAnalyzer {
 public:
  /// `event_start`: when the reboot began (end of baseline window);
  /// `restored_at`: when the service answered again;
  /// `horizon`: end of the observation window.
  static DegradationReport analyze(const sim::RateRecorder& completions,
                                   sim::SimTime event_start,
                                   sim::SimTime restored_at, sim::SimTime horizon,
                                   sim::Duration bin = sim::kSecond,
                                   sim::Duration baseline_window = 10 * sim::kSecond);
};

}  // namespace rh::workload
