#include "hw/machine.hpp"

#include <algorithm>
#include <utility>

#include "simcore/check.hpp"

namespace rh::hw {

CpuPool::CpuPool(sim::Simulation& sim, int cores) : sim_(sim), cores_(cores) {
  ensure(cores > 0, "CpuPool: need at least one core");
}

double CpuPool::current_rate() const {
  if (tasks_.empty()) return 1.0;
  return std::min(1.0, static_cast<double>(cores_) /
                           static_cast<double>(tasks_.size()));
}

void CpuPool::settle() {
  const sim::SimTime now = sim_.now();
  if (!tasks_.empty() && now > last_settle_) {
    const double progress =
        static_cast<double>(now - last_settle_) * current_rate();
    for (auto& t : tasks_) t.remaining -= progress;
  }
  last_settle_ = now;
}

void CpuPool::reschedule() {
  if (pending_ != sim::kInvalidEventId) {
    sim_.cancel(pending_);
    pending_ = sim::kInvalidEventId;
  }
  if (tasks_.empty()) return;
  double min_remaining = tasks_.front().remaining;
  for (const auto& t : tasks_) min_remaining = std::min(min_remaining, t.remaining);
  const auto wall = static_cast<sim::Duration>(
      std::max(0.0, min_remaining / current_rate()) + 0.5);
  pending_ = sim_.after(wall, [this] { complete_due(); });
}

void CpuPool::complete_due() {
  pending_ = sim::kInvalidEventId;
  settle();
  // Collect all tasks that are done (remaining work exhausted, with a
  // half-microsecond rounding allowance).
  std::vector<sim::InlineCallback> finished;
  for (auto it = tasks_.begin(); it != tasks_.end();) {
    if (it->remaining <= 0.75) {
      finished.push_back(std::move(it->done));
      it = tasks_.erase(it);
    } else {
      ++it;
    }
  }
  reschedule();
  for (auto& fn : finished) fn();
}

void CpuPool::run(sim::Duration d, sim::InlineCallback on_done) {
  ensure(d >= 0, "CpuPool: negative duration");
  ensure(static_cast<bool>(on_done), "CpuPool: completion callback required");
  settle();
  tasks_.push_back({next_id_++, static_cast<double>(d), std::move(on_done)});
  reschedule();
}

Machine::Machine(sim::Simulation& sim, MachineSpec spec)
    : sim_(sim),
      spec_(spec),
      memory_(spec.ram),
      disk_(sim, spec.disk),
      ram_disk_(sim, spec.ram_disk),
      nic_(sim, spec.nic),
      bios_(spec.bios),
      cpu_(sim, spec.cpu_cores) {}

void Machine::hardware_reset(sim::InlineCallback on_post_complete) {
  ensure(static_cast<bool>(on_post_complete), "Machine: callback required");
  memory_.power_cycle();
  power_state_ = PowerState::kPost;
  ++resets_;
  // Firmware hands off to the boot loader at POST end; the software boot
  // path will call set_running() once an OS/VMM is up.
  sim_.after(bios_.post_duration(spec_.ram), std::move(on_post_complete));
}

}  // namespace rh::hw
