#include "hw/bios.hpp"

namespace rh::hw {

sim::Duration Bios::post_duration(sim::Bytes installed_ram) const {
  const double gib = sim::to_gib(installed_ram);
  return model_.post_base + model_.scsi_init +
         static_cast<sim::Duration>(
             gib * static_cast<double>(model_.memory_check_per_gib));
}

}  // namespace rh::hw
