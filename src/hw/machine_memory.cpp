#include "hw/machine_memory.hpp"

#include <algorithm>

#include "simcore/check.hpp"

namespace rh::hw {

MachineMemory::MachineMemory(sim::Bytes total_size) {
  ensure(total_size >= sim::kPageSize, "MachineMemory: size below one frame");
  frame_count_ = total_size / sim::kPageSize;
  frames_.assign(static_cast<std::size_t>(frame_count_), kScrubbed);
}

void MachineMemory::check_mfn(FrameNumber mfn) const {
  ensure(mfn >= 0 && mfn < frame_count_, "MachineMemory: MFN out of range");
}

ContentToken MachineMemory::read(FrameNumber mfn) const {
  check_mfn(mfn);
  return frames_[static_cast<std::size_t>(mfn)];
}

void MachineMemory::write(FrameNumber mfn, ContentToken content) {
  check_mfn(mfn);
  auto& slot = frames_[static_cast<std::size_t>(mfn)];
  if (slot == kScrubbed && content != kScrubbed) ++populated_;
  if (slot != kScrubbed && content == kScrubbed) --populated_;
  slot = content;
}

void MachineMemory::power_cycle() {
  std::fill(frames_.begin(), frames_.end(), kScrubbed);
  populated_ = 0;
  ++power_cycles_;
}

}  // namespace rh::hw
