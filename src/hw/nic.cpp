#include "hw/nic.hpp"

#include <algorithm>
#include <utility>

#include "simcore/check.hpp"

namespace rh::hw {

void Nic::transmit(sim::Bytes size, sim::InlineCallback on_done) {
  ensure(size >= 0, "Nic: negative transfer size");
  ensure(static_cast<bool>(on_done), "Nic: completion callback required");
  const sim::SimTime start = std::max(sim_.now(), busy_until_);
  const sim::Duration service =
      sim::transfer_time(size, model_.bandwidth_bps) + model_.per_packet_overhead;
  busy_until_ = start + service;
  bytes_sent_ += size;
  ++packets_;
  sim_.at(busy_until_, std::move(on_done));
}

}  // namespace rh::hw
