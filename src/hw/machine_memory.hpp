// Frame-granular model of the machine's physical RAM.
//
// Each 4 KiB machine frame carries a 64-bit *content token*: an opaque
// stand-in for the frame's real contents. A token of zero means "scrubbed"
// (the frame holds no meaningful data). Content tokens are how the
// simulation *proves* the paper's central property: a warm-VM reboot must
// leave the tokens of every frozen frame intact, while a hardware reset
// (power cycle) destroys all of them.
#pragma once

#include <cstdint>
#include <vector>

#include "simcore/types.hpp"

namespace rh::hw {

/// Machine frame number, numbered consecutively from 0 (as in Xen).
using FrameNumber = std::int64_t;

/// Opaque stand-in for a frame's contents; 0 == scrubbed/empty.
using ContentToken = std::uint64_t;

inline constexpr ContentToken kScrubbed = 0;

/// The machine's physical memory as an array of frame content tokens.
class MachineMemory {
 public:
  /// Creates memory of the given size (rounded down to whole frames).
  /// All frames start scrubbed.
  explicit MachineMemory(sim::Bytes total_size);

  [[nodiscard]] sim::Bytes size() const { return frame_count_ * sim::kPageSize; }
  [[nodiscard]] std::int64_t frame_count() const { return frame_count_; }

  [[nodiscard]] ContentToken read(FrameNumber mfn) const;
  void write(FrameNumber mfn, ContentToken content);

  /// Destroys the frame's contents.
  void scrub(FrameNumber mfn) { write(mfn, kScrubbed); }

  /// Models loss of power / hardware reset: every frame's contents are
  /// destroyed. (Real DRAM decays when the machine resets; the BIOS memory
  /// check then overwrites it.)
  void power_cycle();

  /// Number of generations (power cycles) this memory has been through.
  [[nodiscard]] std::uint64_t power_cycles() const { return power_cycles_; }

  /// Count of frames whose content is not scrubbed (diagnostics).
  [[nodiscard]] std::int64_t populated_frames() const { return populated_; }

 private:
  void check_mfn(FrameNumber mfn) const;

  std::vector<ContentToken> frames_;
  std::int64_t frame_count_ = 0;
  std::int64_t populated_ = 0;
  std::uint64_t power_cycles_ = 0;
};

}  // namespace rh::hw
