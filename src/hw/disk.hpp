// Single-spindle disk model with a FIFO request queue.
//
// The paper's machine has one 15,000 rpm SCSI disk; nearly every timing
// result that scales with memory size or VM count does so because this one
// device serialises work: Xen's save/restore writes whole memory images
// through it, parallel OS boots contend on it, and post-cold-reboot cache
// misses are bounded by it. The model charges each request an access
// latency (seeks/rotation, waived for sequential continuation) plus a
// size/throughput transfer time, and services requests strictly in order.
#pragma once

#include <cstdint>
#include <string>

#include "simcore/inline_callback.hpp"
#include "simcore/simulation.hpp"
#include "simcore/types.hpp"

namespace rh::hw {

/// Physical characteristics of the disk.
struct DiskModel {
  double sequential_read_bps = 88.0e6;   ///< bytes/second
  double sequential_write_bps = 85.0e6;  ///< bytes/second
  sim::Duration random_access = 8 * sim::kMillisecond;  ///< seek + rotation
};

/// FIFO disk device. Requests complete in submission order.
class Disk {
 public:
  Disk(sim::Simulation& sim, DiskModel model) : sim_(sim), model_(model) {}
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  enum class Access : std::uint8_t { kSequential, kRandom };

  /// Submits a read of `size` bytes; `on_done` fires at completion time.
  void read(sim::Bytes size, Access access, sim::InlineCallback on_done);

  /// Submits a write of `size` bytes; `on_done` fires at completion time.
  void write(sim::Bytes size, Access access, sim::InlineCallback on_done);

  /// Occupies the device for an externally-computed service time (e.g. a
  /// Xen save whose effective rate includes format overhead). Queues FIFO
  /// with reads/writes.
  void occupy(sim::Duration service, sim::InlineCallback on_done);

  /// Time at which the device becomes idle given current queue.
  [[nodiscard]] sim::SimTime busy_until() const { return busy_until_; }

  /// Whether a request submitted now would start immediately.
  [[nodiscard]] bool idle() const;

  [[nodiscard]] sim::Bytes bytes_read() const { return bytes_read_; }
  [[nodiscard]] sim::Bytes bytes_written() const { return bytes_written_; }
  [[nodiscard]] std::uint64_t requests_served() const { return requests_; }

  /// Cumulative time the device has spent servicing requests.
  [[nodiscard]] sim::Duration busy_time() const { return busy_time_; }

  [[nodiscard]] const DiskModel& model() const { return model_; }

 private:
  void submit(sim::Bytes size, Access access, double bps,
              sim::InlineCallback on_done);

  sim::Simulation& sim_;
  DiskModel model_;
  sim::SimTime busy_until_ = 0;
  sim::Bytes bytes_read_ = 0;
  sim::Bytes bytes_written_ = 0;
  sim::Duration busy_time_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace rh::hw
