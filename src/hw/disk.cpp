#include "hw/disk.hpp"

#include <algorithm>
#include <utility>

#include "simcore/check.hpp"

namespace rh::hw {

bool Disk::idle() const { return busy_until_ <= sim_.now(); }

void Disk::read(sim::Bytes size, Access access, sim::InlineCallback on_done) {
  bytes_read_ += size;
  submit(size, access, model_.sequential_read_bps, std::move(on_done));
}

void Disk::write(sim::Bytes size, Access access, sim::InlineCallback on_done) {
  bytes_written_ += size;
  submit(size, access, model_.sequential_write_bps, std::move(on_done));
}

void Disk::occupy(sim::Duration service, sim::InlineCallback on_done) {
  ensure(service >= 0, "Disk::occupy: negative duration");
  ensure(static_cast<bool>(on_done), "Disk: completion callback required");
  const sim::SimTime start = std::max(sim_.now(), busy_until_);
  busy_until_ = start + service;
  busy_time_ += service;
  ++requests_;
  sim_.at(busy_until_, std::move(on_done));
}

void Disk::submit(sim::Bytes size, Access access, double bps,
                  sim::InlineCallback on_done) {
  ensure(size >= 0, "Disk: negative transfer size");
  sim::Duration service = sim::transfer_time(size, bps);
  if (access == Access::kRandom) service += model_.random_access;
  occupy(service, std::move(on_done));
}

}  // namespace rh::hw
