// Network interface model: a shared-bandwidth FIFO link endpoint.
//
// The testbed uses gigabit Ethernet (~117 MB/s of usable payload
// bandwidth). As with the disk, the NIC is a serialising resource: HTTP
// responses from all VMs on a host share it, which caps cached web-server
// throughput (Figure 8b's baseline).
#pragma once

#include <cstdint>

#include "simcore/inline_callback.hpp"
#include "simcore/simulation.hpp"
#include "simcore/types.hpp"

namespace rh::hw {

struct NicModel {
  double bandwidth_bps = 117.0e6;                      ///< usable payload bytes/second
  sim::Duration per_packet_overhead = 50;              ///< microseconds
};

/// Transmit-side NIC queue; transfers complete in submission order.
class Nic {
 public:
  Nic(sim::Simulation& sim, NicModel model) : sim_(sim), model_(model) {}
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  /// Queues `size` payload bytes for transmission; `on_done` fires when the
  /// last byte has left the wire.
  void transmit(sim::Bytes size, sim::InlineCallback on_done);

  [[nodiscard]] sim::SimTime busy_until() const { return busy_until_; }
  [[nodiscard]] sim::Bytes bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return packets_; }
  [[nodiscard]] const NicModel& model() const { return model_; }

 private:
  sim::Simulation& sim_;
  NicModel model_;
  sim::SimTime busy_until_ = 0;
  sim::Bytes bytes_sent_ = 0;
  std::uint64_t packets_ = 0;
};

}  // namespace rh::hw
