// BIOS / firmware model: power-on self-test timing.
//
// A hardware reset forces the machine through POST, whose dominant cost on
// the paper's testbed is the memory check of 12 GB of RAM plus SCSI bus
// initialisation. The paper measures this as reset_hw in [43, 48] seconds
// (Fig. 7 vs Sec. 5.6). We model POST as a base cost plus a per-GiB memory
// check term, which reproduces that range and, importantly, its dependence
// on installed RAM.
#pragma once

#include "simcore/types.hpp"

namespace rh::hw {

struct BiosModel {
  sim::Duration post_base = 8 * sim::kSecond;          ///< chipset + option ROMs
  sim::Duration scsi_init = 6'600 * sim::kMillisecond; ///< SCSI bus scan
  sim::Duration memory_check_per_gib = 2'700 * sim::kMillisecond;
};

/// Computes POST durations; stateless apart from its model parameters.
class Bios {
 public:
  explicit Bios(BiosModel model) : model_(model) {}

  /// Full POST duration for a machine with `installed_ram` bytes of RAM.
  [[nodiscard]] sim::Duration post_duration(sim::Bytes installed_ram) const;

  [[nodiscard]] const BiosModel& model() const { return model_; }

 private:
  BiosModel model_;
};

}  // namespace rh::hw
