// The physical machine: RAM, disk, NIC, BIOS and CPU pool.
#pragma once

#include <memory>
#include <vector>

#include "hw/bios.hpp"
#include "hw/disk.hpp"
#include "hw/machine_memory.hpp"
#include "hw/nic.hpp"
#include "simcore/inline_callback.hpp"
#include "simcore/simulation.hpp"
#include "simcore/types.hpp"

namespace rh::hw {

/// Static configuration of a machine (the paper's testbed by default:
/// 2x dual-core Opteron 280, 12 GB RAM, one 15 krpm SCSI disk, GbE).
struct MachineSpec {
  sim::Bytes ram = 12 * sim::kGiB;
  int cpu_cores = 4;
  DiskModel disk;
  NicModel nic;
  BiosModel bios;
  /// Optional battery-backed RAM disk (GIGABYTE i-RAM class: SATA-attached
  /// DRAM, ~150 MB/s, negligible seek). Used by the saved-VM-reboot
  /// related-work variant.
  DiskModel ram_disk{150.0e6, 150.0e6, 50};
};

/// Processor-sharing CPU model.
///
/// All active CPU-bound tasks share `cores` cores fairly: with n > cores
/// active tasks, each progresses at rate cores/n. Work accounting is
/// settled at every arrival and departure, so a task's wall-clock duration
/// correctly reflects the contention over its whole lifetime -- this is
/// what makes parallel OS boots and service starts (JBoss on 11 VMs over
/// 4 cores) stretch the way the paper measures.
class CpuPool {
 public:
  CpuPool(sim::Simulation& sim, int cores);

  /// Runs a CPU task of nominal duration `d`; `on_done` fires when its
  /// work completes under fair sharing.
  void run(sim::Duration d, sim::InlineCallback on_done);

  [[nodiscard]] int active_tasks() const { return static_cast<int>(tasks_.size()); }
  [[nodiscard]] int cores() const { return cores_; }

  /// Per-task progress rate right now (1.0 = full speed).
  [[nodiscard]] double current_rate() const;

 private:
  struct Task {
    std::uint64_t id = 0;
    double remaining = 0.0;  // microseconds of nominal work left
    sim::InlineCallback done;
  };

  /// Charges elapsed progress to all active tasks.
  void settle();
  /// (Re)schedules the completion event for the task finishing first.
  void reschedule();
  void complete_due();

  sim::Simulation& sim_;
  int cores_;
  std::vector<Task> tasks_;
  sim::SimTime last_settle_ = 0;
  sim::EventId pending_ = sim::kInvalidEventId;
  std::uint64_t next_id_ = 1;
};

/// Power state of the machine.
enum class PowerState : std::uint8_t { kOff, kPost, kRunning };

/// Composition of all hardware devices of one physical host.
class Machine {
 public:
  Machine(sim::Simulation& sim, MachineSpec spec);
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] const MachineSpec& spec() const { return spec_; }

  [[nodiscard]] MachineMemory& memory() { return memory_; }
  [[nodiscard]] const MachineMemory& memory() const { return memory_; }
  [[nodiscard]] Disk& disk() { return disk_; }
  [[nodiscard]] Disk& ram_disk() { return ram_disk_; }
  [[nodiscard]] Nic& nic() { return nic_; }
  [[nodiscard]] const Bios& bios() const { return bios_; }
  [[nodiscard]] CpuPool& cpu() { return cpu_; }

  [[nodiscard]] PowerState power_state() const { return power_state_; }

  /// Performs a hardware reset: memory contents are destroyed, then the
  /// machine goes through POST; `on_post_complete` fires when firmware
  /// hands control to the boot loader.
  void hardware_reset(sim::InlineCallback on_post_complete);

  /// Marks the machine as running (firmware handed off). Called by the
  /// boot path; also the initial state for convenience.
  void set_running() { power_state_ = PowerState::kRunning; }

  /// Count of hardware resets performed (for tests/benches).
  [[nodiscard]] std::uint64_t reset_count() const { return resets_; }

 private:
  sim::Simulation& sim_;
  MachineSpec spec_;
  MachineMemory memory_;
  Disk disk_;
  Disk ram_disk_;
  Nic nic_;
  Bios bios_;
  CpuPool cpu_;
  PowerState power_state_ = PowerState::kRunning;
  std::uint64_t resets_ = 0;
};

}  // namespace rh::hw
