#include "cluster/sharded_balancer.hpp"

#include <utility>

#include "simcore/check.hpp"
#include "simcore/simulation.hpp"

namespace rh::cluster {

ShardedBalancer::ShardedBalancer(std::size_t shards) {
  ensure(shards >= 1, "ShardedBalancer: need at least one shard");
  shards_.resize(shards);
}

std::uint64_t ShardedBalancer::hash_key(std::uint64_t key) {
  std::uint64_t z = key + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void ShardedBalancer::add_backend(Backend backend) {
  ensure(backend.os != nullptr && backend.apache != nullptr,
         "ShardedBalancer: backend needs an OS and a service");
  ensure(!backend.files.empty(), "ShardedBalancer: backend needs content");
  ensure(backend.partition < 0 || engine_ != nullptr,
         "ShardedBalancer: remote backend without bind_parallel");
  ensure(quiescent(), "ShardedBalancer::add_backend: topology is fixed once "
                      "the engine runs");
  const auto b = static_cast<std::uint32_t>(backends_.size());
  const std::size_t owner = backend.host_index % shards_.size();
  backends_.push_back(std::move(backend));
  for (auto& sh : shards_) {
    sh.evicted.push_back(0);
    sh.pressured.push_back(0);
    sh.crashed.push_back(0);
    sh.next_file.push_back(0);
  }
  shards_[owner].owned.push_back(b);
}

void ShardedBalancer::bind_parallel(sim::ParallelSimulation& engine,
                                    std::int32_t first_shard_partition,
                                    sim::Duration rpc_latency) {
  ensure(engine_ == nullptr, "ShardedBalancer::bind_parallel: already bound");
  ensure(rpc_latency >= engine.lookahead(),
         "ShardedBalancer::bind_parallel: RPC latency below the lookahead");
  ensure(first_shard_partition >= 0 &&
             first_shard_partition + static_cast<std::int32_t>(shards_.size()) <=
                 engine.partition_count(),
         "ShardedBalancer::bind_parallel: shard partitions out of range");
  engine_ = &engine;
  first_shard_partition_ = first_shard_partition;
  rpc_latency_ = rpc_latency;
}

void ShardedBalancer::set_host_evicted(std::size_t host_index, bool evicted) {
  if (quiescent()) {
    for (std::size_t b = 0; b < backends_.size(); ++b) {
      if (backends_[b].host_index != host_index) continue;
      for (auto& sh : shards_) sh.evicted[b] = evicted ? 1 : 0;
    }
    return;
  }
  // Mid-run: each shard's view is partition-local state, so the change is
  // broadcast through the mailboxes and applied shard-side.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    engine_->post(shard_partition(s), rpc_latency_,
                  [this, s, host_index, evicted] {
      Shard& sh = shards_[s];
      for (std::size_t b = 0; b < backends_.size(); ++b) {
        if (backends_[b].host_index == host_index) {
          sh.evicted[b] = evicted ? 1 : 0;
        }
      }
    });
  }
}

void ShardedBalancer::set_host_pressured(std::size_t host_index,
                                         bool pressured) {
  if (quiescent()) {
    for (std::size_t b = 0; b < backends_.size(); ++b) {
      if (backends_[b].host_index != host_index) continue;
      for (auto& sh : shards_) sh.pressured[b] = pressured ? 1 : 0;
    }
    return;
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    engine_->post(shard_partition(s), rpc_latency_,
                  [this, s, host_index, pressured] {
      Shard& sh = shards_[s];
      for (std::size_t b = 0; b < backends_.size(); ++b) {
        if (backends_[b].host_index == host_index) {
          sh.pressured[b] = pressured ? 1 : 0;
        }
      }
    });
  }
}

void ShardedBalancer::set_host_crashed(std::size_t host_index, bool crashed) {
  // Shard-side application; tracks whether the host's membership actually
  // flipped so crashed_hosts stays balanced under repeated broadcasts.
  auto apply = [this, host_index, crashed](Shard& sh) {
    const std::uint8_t want = crashed ? 1 : 0;
    bool changed = false;
    for (std::size_t b = 0; b < backends_.size(); ++b) {
      if (backends_[b].host_index != host_index) continue;
      if (sh.crashed[b] != want) {
        sh.crashed[b] = want;
        changed = true;
      }
    }
    if (changed) {
      sh.crashed_hosts += crashed ? 1u : -1u;
      ++sh.crash_events;
    }
  };
  if (quiescent()) {
    for (auto& sh : shards_) apply(sh);
    return;
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    engine_->post(shard_partition(s), rpc_latency_,
                  [this, s, apply] { apply(shards_[s]); });
  }
}

void ShardedBalancer::dispatch(std::uint64_t key,
                               std::function<void(bool)> done) {
  start_on(home_shard(key), std::move(done));
}

void ShardedBalancer::dispatch_on(std::size_t shard, std::uint64_t /*key*/,
                                  std::function<void(bool)> done) {
  ensure(shard < shards_.size(), "ShardedBalancer::dispatch_on: bad shard");
  start_on(shard, std::move(done));
}

void ShardedBalancer::start_on(std::size_t shard,
                               std::function<void(bool)> done) {
  ensure(static_cast<bool>(done), "ShardedBalancer: callback required");
  ensure(!backends_.empty(), "ShardedBalancer: no backends");
  auto state = std::make_shared<Request>();
  state->done = std::move(done);
  state->home_shard = static_cast<std::uint32_t>(shard);
  state->current_shard = state->home_shard;
  state->shards_left = static_cast<std::uint32_t>(shards_.size());
  state->probes_left = static_cast<std::uint32_t>(shards_[shard].owned.size());
  if (engine_ == nullptr) {
    try_shard(std::move(state));
    return;
  }
  const std::int32_t caller = sim::current_partition();
  ensure(caller >= 0, "ShardedBalancer::dispatch: call from inside partition "
                      "execution (seed with ParallelSimulation::run_on)");
  state->reply_partition = caller;
  if (caller == shard_partition(shard)) {
    try_shard(std::move(state));
    return;
  }
  engine_->post(shard_partition(shard), rpc_latency_,
                [this, state = std::move(state)]() mutable {
    try_shard(std::move(state));
  });
}

// Runs on the current shard's partition under the engine (inline in
// sequential mode). One candidate per iteration; a remote probe suspends
// the loop until its reply lands back on this shard.
void ShardedBalancer::try_shard(std::shared_ptr<Request> state) {
  Shard& sh = shards_[state->current_shard];
  while (state->probes_left > 0) {
    --state->probes_left;
    const std::uint32_t b = sh.owned[sh.rr % sh.owned.size()];
    ++sh.rr;
    if (sh.evicted[b] != 0 || sh.crashed[b] != 0) continue;
    if (sh.pressured[b] != 0 && !state->allow_pressured) continue;
    const Backend& be = backends_[b];
    if (engine_ == nullptr) {
      if (!be.os->service_reachable(*be.apache)) continue;
      serve(sh, b, std::move(state));
      return;
    }
    // Probe RPC: reachability lives host-side. The reply re-checks the
    // shard's membership view before anything is served.
    guest::GuestOs* os = be.os;
    guest::ApacheService* apache = be.apache;
    engine_->post(backend_partition(b), rpc_latency_,
                  [this, os, apache, b, state = std::move(state)]() mutable {
      const bool up = os->service_reachable(*apache);
      const auto shard = static_cast<std::size_t>(state->current_shard);
      engine_->post(shard_partition(shard), rpc_latency_,
                    [this, up, b, state = std::move(state)]() mutable {
        probe_reply(up, b, std::move(state));
      });
    });
    return;
  }
  next_ring_hop(std::move(state));
}

void ShardedBalancer::probe_reply(bool up, std::uint32_t b,
                                  std::shared_ptr<Request> state) {
  Shard& sh = shards_[state->current_shard];
  // Membership re-check: an eviction (or pressure flag) that landed while
  // the probe was in flight must win -- the stale "up" reply alone never
  // puts a backend back in rotation.
  if (!up || sh.evicted[b] != 0 || sh.crashed[b] != 0 ||
      (sh.pressured[b] != 0 && !state->allow_pressured)) {
    try_shard(std::move(state));
    return;
  }
  serve(sh, b, std::move(state));
}

void ShardedBalancer::serve(Shard& sh, std::uint32_t b,
                            std::shared_ptr<Request> state) {
  const Backend& be = backends_[b];
  const std::int64_t file = be.files[sh.next_file[b] % be.files.size()];
  ++sh.next_file[b];
  ++sh.dispatched;
  if (state->current_shard != state->home_shard) ++sh.federated;
  if (engine_ == nullptr) {
    be.apache->serve_file(*be.os, file, std::move(state->done));
    return;
  }
  guest::GuestOs* os = be.os;
  guest::ApacheService* apache = be.apache;
  engine_->post(backend_partition(b), rpc_latency_,
                [this, os, apache, file, state = std::move(state)]() mutable {
    // serve_file itself reports failure if the host went down between the
    // probe reply and this serve landing; the fleet retries on done(false).
    apache->serve_file(*os, file,
                       [this, state = std::move(state)](bool ok) mutable {
      const std::int32_t reply = state->reply_partition;
      engine_->post(reply, rpc_latency_, [ok, state = std::move(state)] {
        state->done(ok);
      });
    });
  });
}

void ShardedBalancer::next_ring_hop(std::shared_ptr<Request> state) {
  if (state->shards_left > 1) {
    // Spill over to the next shard on the ring; it continues with its own
    // cursors and membership view.
    --state->shards_left;
    const auto next = static_cast<std::size_t>(
        (state->current_shard + 1) % shards_.size());
    state->current_shard = static_cast<std::uint32_t>(next);
    state->probes_left =
        static_cast<std::uint32_t>(shards_[next].owned.size());
    if (engine_ == nullptr) {
      try_shard(std::move(state));
      return;
    }
    engine_->post(shard_partition(next), rpc_latency_,
                  [this, state = std::move(state)]() mutable {
      try_shard(std::move(state));
    });
    return;
  }
  if (!state->allow_pressured) {
    // Second lap: nothing unpressured answered anywhere on the ring, so
    // accept pressured backends as a last resort, starting back at home.
    state->allow_pressured = true;
    state->shards_left = static_cast<std::uint32_t>(shards_.size());
    const auto home = static_cast<std::size_t>(state->home_shard);
    state->current_shard = state->home_shard;
    state->probes_left =
        static_cast<std::uint32_t>(shards_[home].owned.size());
    if (engine_ == nullptr) {
      try_shard(std::move(state));
      return;
    }
    engine_->post(shard_partition(home), rpc_latency_,
                  [this, state = std::move(state)]() mutable {
      try_shard(std::move(state));
    });
    return;
  }
  ++shards_[state->current_shard].rejected;
  if (engine_ == nullptr) {
    state->done(false);
    return;
  }
  const std::int32_t reply = state->reply_partition;
  engine_->post(reply, rpc_latency_, [state = std::move(state)] {
    state->done(false);
  });
}

std::int32_t ShardedBalancer::backend_partition(std::uint32_t b) const {
  const std::int32_t p = backends_[b].partition;
  return p >= 0 ? p : sim::current_partition();
}

std::uint64_t ShardedBalancer::dispatched() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh.dispatched;
  return n;
}

std::uint64_t ShardedBalancer::rejected() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh.rejected;
  return n;
}

std::uint64_t ShardedBalancer::federated() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh.federated;
  return n;
}

std::size_t ShardedBalancer::evicted_backends() const {
  std::size_t n = 0;
  for (const auto e : shards_.front().evicted) n += e != 0 ? 1 : 0;
  return n;
}

std::size_t ShardedBalancer::crashed_backends() const {
  std::size_t n = 0;
  for (const auto c : shards_.front().crashed) n += c != 0 ? 1 : 0;
  return n;
}

std::uint64_t ShardedBalancer::state_digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  for (const auto& sh : shards_) {
    mix(sh.rr);
    mix(sh.dispatched);
    mix(sh.rejected);
    mix(sh.federated);
    for (const auto f : sh.next_file) mix(f);
    for (const auto e : sh.evicted) mix(e);
    for (const auto p : sh.pressured) mix(p);
    // Crash-membership state is mixed only once a broadcast has touched
    // this shard: crash-free runs keep the exact pre-crash digest chain.
    if (sh.crash_events != 0) {
      mix(sh.crash_events);
      mix(sh.crashed_hosts);
      for (const auto c : sh.crashed) mix(c);
    }
  }
  return h;
}

}  // namespace rh::cluster
