// Pre-copy live migration model (Clark et al., NSDI'05), the alternative
// the paper's Section 6 compares the warm-VM reboot against.
//
// Round 0 pushes the whole memory image while the VM runs and dirties
// pages; each subsequent round pushes the pages dirtied during the
// previous round, until the residue is small enough for a brief
// stop-and-copy. The paper quotes 72 s for one 800 MB VM and a 12 %
// throughput degradation during migration; the defaults reproduce those.
#pragma once

#include <functional>
#include <vector>

#include "simcore/simulation.hpp"
#include "simcore/types.hpp"

namespace rh::cluster {

struct MigrationConfig {
  /// Effective transfer rate (rate-limited adaptive algorithm; the 72 s /
  /// 800 MB data point gives ~11.6 MB/s).
  double effective_bps = 11.6e6;
  /// Rate at which the running guest dirties memory.
  double dirty_bps = 1.2e6;
  /// Stop-and-copy once the residue falls below this.
  sim::Bytes stop_threshold = 8 * sim::kMiB;
  int max_rounds = 30;
  /// Server throughput degradation on the migrating host (Clark et al.:
  /// 12 % for Apache).
  double degradation = 0.12;
};

/// Closed-form per-VM migration outcome.
struct MigrationEstimate {
  sim::Duration total = 0;              ///< start -> VM running on target
  sim::Duration stop_and_copy = 0;      ///< the actual service downtime
  int rounds = 0;                       ///< pre-copy rounds (excl. stop-and-copy)
  sim::Bytes bytes_transferred = 0;

  [[nodiscard]] double overhead_factor(sim::Bytes memory) const {
    return static_cast<double>(bytes_transferred) / static_cast<double>(memory);
  }
};

/// Analytic pre-copy iteration.
[[nodiscard]] MigrationEstimate estimate_migration(sim::Bytes memory,
                                                   const MigrationConfig& config);

/// Sequential migration of `vm_count` VMs of `memory` each (the paper's
/// 17-minute estimate for 11 x 1 GiB).
[[nodiscard]] sim::Duration estimate_host_evacuation(int vm_count, sim::Bytes memory,
                                                     const MigrationConfig& config);

/// Event-driven migration session: emits one event per pre-copy round and
/// a stop-and-copy window during which the VM is down.
class MigrationSession {
 public:
  MigrationSession(sim::Simulation& sim, sim::Bytes memory,
                   MigrationConfig config);

  /// Runs the migration; `on_done` receives the realised estimate.
  void run(std::function<void(const MigrationEstimate&)> on_done);

  /// True during the stop-and-copy phase (the VM answers no requests).
  [[nodiscard]] bool vm_paused() const { return paused_; }
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] int rounds_completed() const { return rounds_; }

 private:
  void next_round(sim::Bytes to_send);

  sim::Simulation& sim_;
  sim::Bytes memory_;
  MigrationConfig config_;
  std::function<void(const MigrationEstimate&)> on_done_;
  sim::SimTime started_at_ = 0;
  sim::Bytes transferred_ = 0;
  int rounds_ = 0;
  bool running_ = false;
  bool paused_ = false;
};

}  // namespace rh::cluster
