// Control-plane metrics scraper: the pull half of the telemetry plane
// (DESIGN.md §15).
//
// One MetricsExporter per host (living on the host's own partition)
// answers scrapes with the host's registry rendered as Prometheus text;
// this scraper runs rounds from the control partition, paying real link
// latency both ways through the same mailboxes every other RPC uses. A
// host that is down simply never replies -- the scraper's timeout is the
// only failure signal, so the control plane's view of the fleet is
// exactly what the telemetry shows: parsed samples in a
// TimeSeriesStore, per-host staleness, an SloEvaluator turning scrape
// outcomes into burn-rate admission gating and dark-host flags, and a
// detection-latency histogram comparing "went dark" against the
// watchdog's ground truth.
//
// All scraper state mutates on the control partition only (replies
// arrive over each host's uplink, which the cluster binds to partition
// 0), so scraped runs are digest-identical for any worker count.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "obs/metrics_exporter.hpp"
#include "simcore/histogram.hpp"

namespace rh::cluster {

class MetricsScraper {
 public:
  /// Cumulative control-plane scrape accounting.
  struct Stats {
    std::uint64_t rounds_started = 0;
    std::uint64_t rounds_completed = 0;
    std::uint64_t scrapes_ok = 0;
    std::uint64_t scrapes_failed = 0;
    /// Scrape reply payload bytes carried over the links (the plane's
    /// bandwidth cost; requests are header-sized and not counted).
    std::uint64_t bytes_transferred = 0;
    /// Dark transitions that could be timed against a known outage start.
    std::uint64_t detections = 0;
  };

  /// A host whose ladder exhausted, flagged for a flight-recorder dump.
  struct FlightRecord {
    std::size_t host = 0;
    sim::SimTime at = 0;
  };

  MetricsScraper(Cluster& cluster, Cluster::ScrapeConfig config);

  /// Schedules the first round one interval out. Quiescent callers only.
  void start();
  /// No further rounds start; in-flight scrapes resolve normally.
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  [[nodiscard]] const Cluster::ScrapeConfig& config() const { return config_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] obs::TimeSeriesStore& tsdb() { return tsdb_; }
  [[nodiscard]] const obs::TimeSeriesStore& tsdb() const { return tsdb_; }
  [[nodiscard]] const obs::SloEvaluator& slo() const { return slo_; }
  [[nodiscard]] obs::MetricsExporter& exporter(std::size_t host) {
    return *exporters_[host];
  }

  /// (load, headroom) for the wave scheduler, from the latest scraped
  /// samples alone. Missing/never-scraped series read as unloaded
  /// (load 0) / unconstrained (headroom max) -- the scheduler acts on
  /// what the telemetry shows, not on the truth.
  [[nodiscard]] std::pair<std::uint64_t, std::int64_t> wave_signals(
      std::size_t host) const;

  /// Scrape-visible detection latency (dark transition minus the
  /// control plane's unplanned-down marker), over all timed detections.
  [[nodiscard]] const sim::LatencyHistogram& detection_latency() const {
    return detection_hist_;
  }

  /// Hosts flagged for flight-recorder dumps (ladder exhausted), in
  /// flag order, deduplicated.
  [[nodiscard]] const std::vector<FlightRecord>& flight_records() const {
    return flight_records_;
  }

  /// Dumps one host's recent telemetry as JSON: scrape state, every
  /// series' ring window and sketch percentiles, and the tail of the
  /// host's EventRing. Reads host-partition state, so call it only when
  /// the engine is quiescent (post-run, which is when a flight recorder
  /// is read anyway).
  void write_flight_record(std::ostream& os, std::size_t host) const;

  /// Control-plane notifications from the cluster's fault machinery
  /// (all on partition 0): outage ground truth for detection timing and
  /// flight-recorder flagging.
  void note_host_down(std::size_t host);
  void note_host_up(std::size_t host);
  void note_unrecovered(std::size_t host);

  /// Deterministic fold over the full scraper state for the
  /// worker-count-invariance digest grids.
  [[nodiscard]] std::uint64_t state_digest() const;

 private:
  void run_round();
  void scrape_host(std::size_t host);
  /// Host-partition half of one scrape: ask the exporter, ship the body
  /// back over the host's uplink (bound to partition 0).
  void scrape_arrive(std::size_t host, std::uint64_t round);
  void on_reply(std::size_t host, std::uint64_t round, std::string body);
  void on_timeout(std::size_t host, std::uint64_t round);
  void finish_scrape();

  Cluster& cluster_;
  Cluster::ScrapeConfig config_;
  sim::Simulation& sim_;  ///< the cluster's control-partition calendar
  std::vector<std::unique_ptr<obs::MetricsExporter>> exporters_;
  obs::TimeSeriesStore tsdb_;
  obs::SloEvaluator slo_;
  Stats stats_;
  bool started_ = false;
  bool running_ = false;
  bool blocked_ = false;  ///< last admission-gate state pushed to Cluster
  std::uint64_t round_seq_ = 0;
  std::size_t outstanding_ = 0;  ///< scrapes unresolved in this round
  /// Round whose scrape of host h is unresolved (0: none). A reply and
  /// its timeout race benignly: whichever runs second sees the slot
  /// cleared and drops out, so no event cancellation is needed.
  std::vector<std::uint64_t> pending_round_;
  std::vector<std::uint64_t> ok_;      ///< per-host successful scrapes
  std::vector<std::uint64_t> failed_;  ///< per-host failed scrapes
  /// Ground truth: when the control plane learned the host went down
  /// (-1: not down). Detection latency is dark-transition minus this.
  std::vector<sim::SimTime> down_since_;
  sim::LatencyHistogram detection_hist_;
  std::vector<std::uint8_t> flagged_;  ///< flight record already queued
  std::vector<FlightRecord> flight_records_;
};

}  // namespace rh::cluster
