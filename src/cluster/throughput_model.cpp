#include "cluster/throughput_model.hpp"

#include "simcore/check.hpp"

namespace rh::cluster {

const char* to_string(ClusterStrategy s) {
  switch (s) {
    case ClusterStrategy::kWarm: return "warm-VM reboot";
    case ClusterStrategy::kCold: return "cold-VM reboot";
    case ClusterStrategy::kLiveMigration: return "live migration";
  }
  return "unknown";
}

ClusterThroughputModel::ClusterThroughputModel(ClusterThroughputParams params)
    : params_(params) {
  ensure(params_.hosts >= 2, "ClusterThroughputModel: need >= 2 hosts");
  ensure(params_.per_host_throughput > 0,
         "ClusterThroughputModel: throughput must be positive");
  ensure(params_.cold_cache_delta >= 0.0 && params_.cold_cache_delta <= 1.0,
         "ClusterThroughputModel: delta out of [0, 1]");
}

double ClusterThroughputModel::throughput_at(ClusterStrategy strategy,
                                             double t_s) const {
  const double m = params_.hosts;
  const double p = params_.per_host_throughput;
  switch (strategy) {
    case ClusterStrategy::kWarm:
      return (t_s < params_.warm_downtime_s ? m - 1 : m) * p;
    case ClusterStrategy::kCold:
      if (t_s < params_.cold_downtime_s) return (m - 1) * p;
      if (t_s < params_.cold_downtime_s + params_.cold_cache_window_s) {
        return (m - params_.cold_cache_delta) * p;
      }
      return m * p;
    case ClusterStrategy::kLiveMigration:
      // One host is always reserved as the migration target; the
      // migrating host additionally loses `degradation` while it runs.
      if (t_s < params_.migration_duration_s) {
        return (m - 1 - params_.migration_degradation) * p;
      }
      return (m - 1) * p;
  }
  return 0.0;
}

double ClusterThroughputModel::lost_work(ClusterStrategy strategy,
                                         double horizon_s) const {
  const double m = params_.hosts;
  const double p = params_.per_host_throughput;
  const double ideal = m * p;
  switch (strategy) {
    case ClusterStrategy::kWarm:
      return params_.warm_downtime_s * p;
    case ClusterStrategy::kCold:
      return params_.cold_downtime_s * p +
             params_.cold_cache_window_s * params_.cold_cache_delta * p;
    case ClusterStrategy::kLiveMigration: {
      // Reserved host for the whole horizon + extra loss while migrating.
      const double migrating =
          std::min(horizon_s, params_.migration_duration_s);
      return horizon_s * p + migrating * params_.migration_degradation * p;
    }
  }
  (void)ideal;
  return 0.0;
}

std::vector<ClusterThroughputModel::Point> ClusterThroughputModel::series(
    double horizon_s, double step_s) const {
  ensure(step_s > 0, "ClusterThroughputModel::series: step must be positive");
  std::vector<Point> out;
  for (double t = 0.0; t <= horizon_s; t += step_s) {
    out.push_back({t, throughput_at(ClusterStrategy::kWarm, t),
                   throughput_at(ClusterStrategy::kCold, t),
                   throughput_at(ClusterStrategy::kLiveMigration, t)});
  }
  return out;
}

}  // namespace rh::cluster
