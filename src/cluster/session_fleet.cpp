#include "cluster/session_fleet.hpp"

#include <algorithm>

#include "simcore/check.hpp"

namespace rh::cluster {

SessionFleet::SessionFleet(ShardedBalancer& balancer, Config config)
    : balancer_(balancer), config_(config) {
  ensure(config_.sessions >= 1, "SessionFleet: need at least one session");
  ensure(config_.think_base >= 0 && config_.think_spread >= 0,
         "SessionFleet: negative think time");
  ensure(config_.retry_interval > 0, "SessionFleet: need a retry interval");
  ensure(config_.tick > 0, "SessionFleet: need a tick period");
  const std::uint64_t shards = balancer_.shard_count();
  slices_.resize(shards);
  // Block assignment: slice s holds sessions [s*M/S, (s+1)*M/S). Every
  // session is pinned to its slice's shard for dispatch.
  for (std::uint64_t s = 0; s < shards; ++s) {
    Slice& sl = slices_[s];
    sl.first = s * config_.sessions / shards;
    const std::uint64_t end = (s + 1) * config_.sessions / shards;
    const auto n = static_cast<std::size_t>(end - sl.first);
    sl.next_due.assign(n, 0);
    sl.issued_at.assign(n, kIdle);
    sl.down_since.assign(n, kUp);
    sl.downtime.assign(n, 0);
    sl.downtime_unplanned.assign(n, 0);
    sl.down_unplanned.assign(n, 0);
    sl.completions.assign(n, 0);
    sl.failures.assign(n, 0);
  }
}

sim::Duration SessionFleet::think_of(std::uint64_t global) const {
  if (config_.think_spread == 0) return config_.think_base;
  const auto offset = static_cast<sim::Duration>(
      ShardedBalancer::hash_key(global) %
      static_cast<std::uint64_t>(config_.think_spread));
  return config_.think_base + offset;
}

void SessionFleet::start(sim::Simulation& sim) {
  ensure(!started_, "SessionFleet::start: already started");
  started_ = true;
  const sim::SimTime now = sim.now();
  for (std::uint32_t s = 0; s < slices_.size(); ++s) {
    Slice& sl = slices_[s];
    sl.sim = &sim;
    for (std::size_t i = 0; i < sl.next_due.size(); ++i) {
      // Hash-staggered first issue so a million sessions do not arrive in
      // one tick-aligned burst.
      sl.next_due[i] =
          now + static_cast<sim::Duration>(
                    ShardedBalancer::hash_key(~(sl.first + i)) %
                    static_cast<std::uint64_t>(config_.think_base +
                                               config_.think_spread + 1));
    }
    if (!sl.next_due.empty()) {
      sim.after(config_.tick, [this, s] { tick(s); });
    }
  }
  window_start_ = now;
}

void SessionFleet::start(sim::ParallelSimulation& engine) {
  ensure(!started_, "SessionFleet::start: already started");
  ensure(balancer_.shard_partition(0) >= 0,
         "SessionFleet::start: balancer is not bound to the engine");
  started_ = true;
  for (std::uint32_t s = 0; s < slices_.size(); ++s) {
    Slice& sl = slices_[s];
    const std::int32_t p = balancer_.shard_partition(s);
    sl.sim = &engine.partition(p);
    const sim::SimTime now = sl.sim->now();
    for (std::size_t i = 0; i < sl.next_due.size(); ++i) {
      sl.next_due[i] =
          now + static_cast<sim::Duration>(
                    ShardedBalancer::hash_key(~(sl.first + i)) %
                    static_cast<std::uint64_t>(config_.think_base +
                                               config_.think_spread + 1));
    }
    if (!sl.next_due.empty()) {
      engine.run_on(p, [this, s] { tick(s); });
    }
    window_start_ = now;
  }
}

void SessionFleet::stop() { stopped_ = true; }

// The batched walk: one linear scan of the slice's columns per tick,
// issuing every due idle session. This replaces a per-session timer per
// request -- the scan touches flat arrays in index order.
void SessionFleet::tick(std::uint32_t shard) {
  if (stopped_) return;
  Slice& sl = slices_[shard];
  const sim::SimTime now = sl.sim->now();
  const std::size_t n = sl.next_due.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (sl.issued_at[i] == kIdle && sl.next_due[i] <= now) {
      issue(shard, static_cast<std::uint32_t>(i));
    }
  }
  sl.sim->after(config_.tick, [this, shard] { tick(shard); });
}

void SessionFleet::issue(std::uint32_t shard, std::uint32_t i) {
  Slice& sl = slices_[shard];
  sl.issued_at[i] = sl.sim->now();
  balancer_.dispatch_on(shard, sl.first + i, [this, shard, i](bool ok) {
    on_reply(shard, i, ok);
  });
}

void SessionFleet::on_reply(std::uint32_t shard, std::uint32_t i, bool ok) {
  if (stopped_) return;
  Slice& sl = slices_[shard];
  const sim::SimTime now = sl.sim->now();
  const sim::SimTime issued = sl.issued_at[i];
  sl.issued_at[i] = kIdle;
  if (ok) {
    ++sl.completions[i];
    sl.latency.add(now - issued);
    if (sl.down_since[i] != kUp) {
      // Recovery: the outage ran from the first failed issue to this
      // completion.
      const sim::Duration d = now - sl.down_since[i];
      sl.downtime[i] += d;
      if (sl.down_unplanned[i] != 0) {
        sl.downtime_unplanned[i] += d;
        sl.down_unplanned[i] = 0;
      }
      sl.down_since[i] = kUp;
    }
    sl.next_due[i] = now + think_of(sl.first + i);
  } else {
    ++sl.failures[i];
    if (sl.down_since[i] == kUp) {
      sl.down_since[i] = issued;
      // Cause attribution, sampled once at outage start from the shard's
      // own membership view (partition-local, so worker-count invariant).
      if (balancer_.shard_unplanned_down(shard) > 0) {
        sl.down_unplanned[i] = 1;
        ++sl.unplanned_marks;
      }
    }
    sl.next_due[i] = now + config_.retry_interval;
  }
}

void SessionFleet::begin_window(sim::SimTime now) {
  for (auto& sl : slices_) {
    std::fill(sl.downtime.begin(), sl.downtime.end(), 0);
    std::fill(sl.downtime_unplanned.begin(), sl.downtime_unplanned.end(), 0);
    std::fill(sl.completions.begin(), sl.completions.end(), 0);
    std::fill(sl.failures.begin(), sl.failures.end(), 0);
    sl.latency.clear();
    for (auto& d : sl.down_since) {
      if (d != kUp) d = now;
    }
  }
  window_start_ = now;
}

SessionFleet::Stats SessionFleet::stats(sim::SimTime window_end) const {
  ensure(window_end > window_start_, "SessionFleet::stats: empty window");
  const auto window = static_cast<double>(window_end - window_start_);
  Stats out;
  double total_down = 0.0;
  for (const auto& sl : slices_) {
    out.request_latency.merge(sl.latency);
    for (std::size_t i = 0; i < sl.downtime.size(); ++i) {
      out.completions += sl.completions[i];
      out.failures += sl.failures[i];
      sim::Duration d = sl.downtime[i];
      sim::Duration unplanned = sl.downtime_unplanned[i];
      if (sl.down_since[i] != kUp) {
        const sim::Duration open = window_end - sl.down_since[i];
        d += open;
        if (sl.down_unplanned[i] != 0) unplanned += open;
        ++out.sessions_down_at_end;
      }
      d = std::min<sim::Duration>(d, window_end - window_start_);
      unplanned = std::min(unplanned, d);
      out.unplanned_downtime += unplanned;
      out.planned_downtime += d - unplanned;
      out.session_downtime.add(d);
      total_down += static_cast<double>(d);
    }
  }
  const auto avail = [&](double p) {
    const auto d =
        static_cast<double>(out.session_downtime.percentile(p));
    return std::max(0.0, 1.0 - std::min(d, window) / window);
  };
  out.availability_p99 = avail(99.0);
  out.availability_p999 = avail(99.9);
  const auto sessions = static_cast<double>(config_.sessions);
  out.pooled_availability =
      std::max(0.0, 1.0 - total_down / (sessions * window));
  return out;
}

std::uint64_t SessionFleet::state_digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  for (const auto& sl : slices_) {
    mix(sl.first);
    for (std::size_t i = 0; i < sl.downtime.size(); ++i) {
      mix(static_cast<std::uint64_t>(sl.completions[i]));
      mix(static_cast<std::uint64_t>(sl.failures[i]));
      mix(static_cast<std::uint64_t>(sl.downtime[i]));
      mix(static_cast<std::uint64_t>(sl.next_due[i]));
    }
    // Attribution columns join the digest only once an outage on this
    // slice was ever charged unplanned: crash-free runs keep the exact
    // pre-crash digest chain.
    if (sl.unplanned_marks != 0) {
      mix(sl.unplanned_marks);
      for (const auto u : sl.downtime_unplanned) {
        mix(static_cast<std::uint64_t>(u));
      }
    }
  }
  return h;
}

}  // namespace rh::cluster
