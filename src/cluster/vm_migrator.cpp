#include "cluster/vm_migrator.hpp"

#include <utility>

#include "simcore/check.hpp"

namespace rh::cluster {

void VmMigrator::migrate(guest::GuestOs& vm, vmm::Host& dst,
                         std::function<void(const Result&)> done) {
  ensure(static_cast<bool>(done), "VmMigrator: callback required");
  ensure(!in_progress_, "VmMigrator: one migration at a time");
  ensure(vm.state() == guest::OsState::kRunning,
         "VmMigrator: VM must be running");
  vmm::Host& src = vm.host();
  ensure(&src != &dst, "VmMigrator: source and destination are the same host");
  // Migration mutates both hosts synchronously (allocator checks, rebind,
  // restore), which only stays race-free when both calendars are the same
  // partition. Cross-partition migration would need an ownership-transfer
  // protocol through the engine mailboxes -- rejected loudly until then.
  ensure(src.sim().partition_id() == dst.sim().partition_id(),
         "VmMigrator: cross-partition migration is not supported -- "
         "co-locate the hosts on one partition");
  ensure(src.up() && dst.up(), "VmMigrator: both hosts must be up");
  ensure(config_.effective_bps > config_.dirty_bps,
         "VmMigrator: dirty rate exceeds transfer rate");
  const auto pages = vm.memory() / sim::kPageSize;
  ensure(dst.vmm().allocator().free_frames() >= pages,
         "VmMigrator: destination lacks free memory");
  ensure(dst.vmm().find_domain_by_name(vm.name()) == nullptr,
         "VmMigrator: destination already hosts a domain of this name");

  in_progress_ = true;
  vm_ = &vm;
  src_ = &src;
  dst_ = &dst;
  done_ = std::move(done);
  started_at_ = src.sim().now();
  transferred_ = 0;
  rounds_ = 0;
  result_ = {};
  src.set_background_transfer(true);
  dst.set_background_transfer(true);
  if (src.tracer().enabled()) {
    src.tracer().emit(src.sim().now(), "migrate",
                      "live migration of '" + vm.name() + "' begins (" +
                          std::to_string(sim::to_gib(vm.memory())) + " GiB)");
  }
  // The migration span (and its pre-copy/stop-and-copy children) live in
  // the *source* host's observer: that host carries the transfer.
  if (src.obs().enabled()) {
    outer_ambient_ = src.obs().ambient();
    migration_span_ = src.obs().span_open(
        started_at_, obs::Phase::kMigration, "migrate " + vm.name());
    src.obs().set_ambient(migration_span_);
  }
  precopy_round(vm.memory());
}

void VmMigrator::precopy_round(sim::Bytes to_send) {
  if (rounds_ >= config_.max_rounds || to_send <= config_.stop_threshold) {
    stop_and_copy(to_send);
    return;
  }
  // The migration stream can die mid-pre-copy (TCP reset, destination
  // daemon crash). Safe failure mode: the VM never stopped running on the
  // source, so aborting costs only the bandwidth already spent.
  if (src_->faults().roll(fault::FaultKind::kMigrationAbort, src_->sim().now(),
                          "migrate:" + vm_->name() + ":round" +
                              std::to_string(rounds_))) {
    abort("stream lost in pre-copy round " + std::to_string(rounds_));
    return;
  }
  // The VM keeps running and dirtying memory while this round streams at
  // the migration algorithm's (rate-limited) effective bandwidth.
  const sim::SimTime round_start = src_->sim().now();
  obs::SpanId round_span = obs::kNoSpan;
  if (src_->obs().enabled()) {
    round_span = src_->obs().span_open_under(
        round_start, obs::Phase::kPreCopyRound,
        "pre-copy round " + std::to_string(rounds_), migration_span_);
  }
  src_->link().bulk_transfer_at(to_send, config_.effective_bps,
                                [this, to_send, round_start, round_span] {
    transferred_ += to_send;
    ++rounds_;
    src_->obs().span_close(round_span, src_->sim().now());
    const auto elapsed = src_->sim().now() - round_start;
    const auto dirtied = static_cast<sim::Bytes>(
        sim::to_seconds(elapsed) * config_.dirty_bps);
    precopy_round(dirtied);
  });
}

void VmMigrator::stop_and_copy(sim::Bytes residue) {
  // Final phase: suspend the domain with the same on-memory machinery the
  // warm-VM reboot uses, capture its state, ship the residue, rebuild on
  // the destination.
  suspended_at_ = src_->sim().now();
  stop_copy_span_ = src_->obs().span_open_under(
      suspended_at_, obs::Phase::kStopAndCopy, "stop-and-copy",
      migration_span_);
  const DomainId src_id = vm_->domain_id();
  src_->vmm().suspend_domain_on_memory(src_id, [this, src_id, residue] {
    auto image = src_->vmm().capture_image(src_id);
    // The source is done with the domain: release its frames and drop the
    // preserved record the suspend created.
    src_->preserved().erase(std::string(vmm::Vmm::kRegionPrefix) +
                            vm_->name());
    src_->vmm().destroy_domain(src_id);
    // Ship the dirty residue plus the execution state.
    const auto final_bytes = residue + vmm::ExecState::kFootprint;
    src_->link().bulk_transfer_at(final_bytes, config_.effective_bps,
                                  [this, final_bytes,
                                   image = std::move(image)] {
      transferred_ += final_bytes;
      vm_->rebind_host(*dst_);
      dst_->vmm().restore_domain_from_image(
          image, vm_, [this](DomainId new_id) {
            result_.destination_domain = new_id;
            finish();
          });
    });
  });
}

void VmMigrator::abort(const std::string& why) {
  result_.success = false;
  result_.estimate.total = src_->sim().now() - started_at_;
  result_.estimate.rounds = rounds_;
  result_.estimate.bytes_transferred = transferred_;
  src_->set_background_transfer(false);
  dst_->set_background_transfer(false);
  if (src_->tracer().enabled()) {
    src_->tracer().emit(src_->sim().now(), "migrate",
                        "migration of '" + vm_->name() + "' ABORTED: " + why);
  }
  obs::Observer& obs = src_->obs();
  if (obs.enabled()) {
    obs.emit(src_->sim().now(), obs::Category::kMigrate,
             obs::EventKind::kDomain, "migration aborted", -1,
             static_cast<std::uint64_t>(rounds_),
             static_cast<std::uint64_t>(transferred_));
    obs.span_close(migration_span_, src_->sim().now());
    obs.set_ambient(outer_ambient_);
    migration_span_ = obs::kNoSpan;
    ++obs.metrics().counter("migrate.aborted");
  }
  in_progress_ = false;
  auto done = std::move(done_);
  done(result_);
}

void VmMigrator::finish() {
  result_.success = true;
  result_.estimate.total = src_->sim().now() - started_at_;
  result_.estimate.rounds = rounds_;
  result_.estimate.bytes_transferred = transferred_;
  result_.estimate.stop_and_copy = src_->sim().now() - suspended_at_;
  result_.observed_downtime = src_->sim().now() - suspended_at_;
  src_->set_background_transfer(false);
  dst_->set_background_transfer(false);
  if (src_->tracer().enabled()) {
    src_->tracer().emit(src_->sim().now(), "migrate",
                        "'" + vm_->name() + "' migrated in " +
                            std::to_string(sim::to_seconds(result_.estimate.total)) +
                            " s (downtime " +
                            std::to_string(sim::to_seconds(result_.observed_downtime)) +
                            " s)");
  }
  obs::Observer& obs = src_->obs();
  if (obs.enabled()) {
    obs.span_close(stop_copy_span_, src_->sim().now());
    obs.span_close(migration_span_, src_->sim().now());
    obs.set_ambient(outer_ambient_);
    stop_copy_span_ = obs::kNoSpan;
    migration_span_ = obs::kNoSpan;
    obs::MetricsRegistry& m = obs.metrics();
    ++m.counter("migrate.completed");
    m.histogram("migrate.downtime_us").add(result_.observed_downtime);
    m.histogram("migrate.total_us").add(result_.estimate.total);
  }
  in_progress_ = false;
  auto done = std::move(done_);
  done(result_);
}

}  // namespace rh::cluster
