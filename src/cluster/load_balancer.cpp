#include "cluster/load_balancer.hpp"

#include <utility>

#include "simcore/check.hpp"

namespace rh::cluster {

void LoadBalancer::add_backend(Backend backend) {
  ensure(backend.os != nullptr && backend.apache != nullptr,
         "LoadBalancer: backend needs an OS and a service");
  ensure(!backend.files.empty(), "LoadBalancer: backend needs content");
  ensure(backend.partition < 0 || engine_ != nullptr,
         "LoadBalancer: remote backend without bind_parallel");
  backends_.push_back({std::move(backend), 0});
}

void LoadBalancer::bind_parallel(sim::ParallelSimulation& engine,
                                 std::int32_t self_partition,
                                 sim::Duration rpc_latency) {
  ensure(engine_ == nullptr, "LoadBalancer::bind_parallel: already bound");
  ensure(rpc_latency >= engine.lookahead(),
         "LoadBalancer::bind_parallel: RPC latency below the lookahead");
  engine_ = &engine;
  self_partition_ = self_partition;
  rpc_latency_ = rpc_latency;
}

std::size_t LoadBalancer::reachable_backends() const {
  std::size_t n = 0;
  for (const auto& s : backends_) {
    if (!s.evicted && s.backend.os->service_reachable(*s.backend.apache)) ++n;
  }
  return n;
}

void LoadBalancer::set_host_evicted(const vmm::Host* host, bool evicted) {
  ensure(host != nullptr, "LoadBalancer::set_host_evicted: null host");
  for (auto& s : backends_) {
    if (&s.backend.os->host() == host) s.evicted = evicted;
  }
}

std::size_t LoadBalancer::evicted_backends() const {
  std::size_t n = 0;
  for (const auto& s : backends_) {
    if (s.evicted) ++n;
  }
  return n;
}

void LoadBalancer::set_host_pressured(const vmm::Host* host, bool pressured) {
  ensure(host != nullptr, "LoadBalancer::set_host_pressured: null host");
  for (auto& s : backends_) {
    if (&s.backend.os->host() == host) s.pressured = pressured;
  }
}

std::size_t LoadBalancer::pressured_backends() const {
  std::size_t n = 0;
  for (const auto& s : backends_) {
    if (s.pressured) ++n;
  }
  return n;
}

bool LoadBalancer::try_dispatch(bool allow_pressured,
                                std::function<void(bool)>& done) {
  // Round-robin, skipping evicted and unreachable backends.
  for (std::size_t probe = 0; probe < backends_.size(); ++probe) {
    Slot& slot = backends_[rr_ % backends_.size()];
    ++rr_;
    if (slot.evicted) continue;
    if (slot.pressured && !allow_pressured) continue;
    if (!slot.backend.os->service_reachable(*slot.backend.apache)) continue;
    const auto file = slot.backend.files[slot.next_file % slot.backend.files.size()];
    ++slot.next_file;
    ++dispatched_;
    slot.backend.apache->serve_file(*slot.backend.os, file, std::move(done));
    return true;
  }
  return false;
}

void LoadBalancer::dispatch(std::function<void(bool)> done) {
  ensure(static_cast<bool>(done), "LoadBalancer::dispatch: callback required");
  ensure(!backends_.empty(), "LoadBalancer::dispatch: no backends");
  if (engine_ != nullptr) {
    auto state = std::make_shared<RemoteDispatch>();
    state->done = std::move(done);
    state->allow_pressured = false;
    state->probes_left = backends_.size();
    remote_try_next(std::move(state));
    return;
  }
  // Pressured backends are a last resort: take them only when nothing
  // unpressured answers, rather than failing the request outright.
  if (try_dispatch(/*allow_pressured=*/false, done)) return;
  if (try_dispatch(/*allow_pressured=*/true, done)) return;
  ++rejected_;
  done(false);
}

void LoadBalancer::remote_try_next(std::shared_ptr<RemoteDispatch> state) {
  // Administrative flags (evicted/pressured) are balancer-partition state
  // and filter candidates synchronously; reachability lives on the
  // backend's host and needs a round trip.
  while (state->probes_left > 0) {
    const std::size_t index = rr_ % backends_.size();
    ++rr_;
    --state->probes_left;
    Slot& slot = backends_[index];
    if (slot.evicted) continue;
    if (slot.pressured && !state->allow_pressured) continue;
    // Capture the backend by raw pointers and its stable index, never by
    // Slot reference: add_backend on the balancer partition may
    // reallocate backends_ while this probe is in flight on the host
    // partition (the vector is append-only, so indices stay valid).
    guest::GuestOs* os = slot.backend.os;
    guest::ApacheService* apache = slot.backend.apache;
    const auto slot_index = static_cast<std::uint32_t>(index);
    const std::int32_t backend_partition =
        slot.backend.partition >= 0 ? slot.backend.partition : self_partition_;
    engine_->post(backend_partition, rpc_latency_,
                  [this, os, apache, slot_index, backend_partition,
                   state = std::move(state)]() mutable {
      // Host partition: probe only. The serve decision belongs to the
      // balancer partition, which re-checks membership when the reply
      // lands -- an eviction during the probe's flight must win, so a
      // stale "up" reply can never resurrect an evicted backend.
      const bool up = os->service_reachable(*apache);
      engine_->post(self_partition_, rpc_latency_,
                    [this, up, slot_index, backend_partition,
                     state = std::move(state)]() mutable {
        if (!up) {
          remote_try_next(std::move(state));
          return;
        }
        Slot& current = backends_[slot_index];
        if (current.evicted ||
            (current.pressured && !state->allow_pressured)) {
          remote_try_next(std::move(state));
          return;
        }
        const std::int64_t file =
            current.backend.files[current.next_file %
                                  current.backend.files.size()];
        ++current.next_file;
        guest::GuestOs* serve_os = current.backend.os;
        guest::ApacheService* serve_apache = current.backend.apache;
        engine_->post(backend_partition, rpc_latency_,
                      [this, serve_os, serve_apache, file,
                       state = std::move(state)]() mutable {
          serve_apache->serve_file(*serve_os, file,
                                   [this, state = std::move(state)](
                                       bool ok) mutable {
            engine_->post(self_partition_, rpc_latency_,
                          [this, ok, state = std::move(state)]() mutable {
              ++dispatched_;
              state->done(ok);
            });
          });
        });
      });
    });
    return;
  }
  if (!state->allow_pressured) {
    state->allow_pressured = true;
    state->probes_left = backends_.size();
    remote_try_next(std::move(state));
    return;
  }
  ++rejected_;
  state->done(false);
}

ClusterClientFleet::ClusterClientFleet(sim::Simulation& sim,
                                       LoadBalancer& balancer, Config config)
    : sim_(sim), balancer_(balancer), config_(config) {
  ensure(config.connections > 0, "ClusterClientFleet: need connections");
}

void ClusterClientFleet::start() {
  ensure(!started_, "ClusterClientFleet::start: already started");
  started_ = true;
  for (int c = 0; c < config_.connections; ++c) issue();
}

void ClusterClientFleet::stop() { stopped_ = true; }

void ClusterClientFleet::issue() {
  if (stopped_) return;
  balancer_.dispatch([this](bool served) {
    if (stopped_) return;
    if (served) {
      completions_.record(sim_.now());
      issue();
    } else {
      sim_.after(config_.retry_interval, [this] { issue(); });
    }
  });
}

}  // namespace rh::cluster
