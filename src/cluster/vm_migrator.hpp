// Full live migration of a VM between two simulated hosts.
//
// Implements Clark et al.'s pre-copy algorithm end to end on this
// simulator's real mechanisms: iterative image pushes over the source
// host's link while the guest keeps running (and its host's services lose
// ~12 % throughput), then a stop-and-copy built from the *same* on-memory
// suspend machinery RootHammer uses -- the domain is suspended, its image
// captured and shipped, and the GuestOs object rebinds to the destination
// host, where the domain is rebuilt and the guest's resume handler runs.
//
// This is the paper's Section 6 comparison point made concrete: per-VM
// downtime is just the stop-and-copy (sub-second), but evacuating a host
// takes minutes and requires a second machine.
#pragma once

#include <functional>

#include "cluster/migration.hpp"
#include "guest/guest_os.hpp"
#include "vmm/host.hpp"

namespace rh::cluster {

class VmMigrator {
 public:
  explicit VmMigrator(MigrationConfig config = {}) : config_(config) {}

  struct Result {
    MigrationEstimate estimate;
    DomainId destination_domain = kNoDomain;
    /// Service downtime: suspend on the source -> running on destination.
    sim::Duration observed_downtime = 0;
    /// False when an injected fault aborted the migration mid-pre-copy.
    /// The VM is untouched on the source (pre-copy never disturbs it);
    /// the bandwidth already spent is recorded in the estimate.
    bool success = false;
  };

  /// Live-migrates `vm` from its current host to `dst`. The VM must be
  /// running, both hosts up and distinct, and `dst` must have room.
  /// One migration at a time per migrator.
  void migrate(guest::GuestOs& vm, vmm::Host& dst,
               std::function<void(const Result&)> done);

  [[nodiscard]] bool in_progress() const { return in_progress_; }
  [[nodiscard]] int rounds_completed() const { return rounds_; }

 private:
  void precopy_round(sim::Bytes to_send);
  void stop_and_copy(sim::Bytes residue);
  void finish();
  void abort(const std::string& why);

  MigrationConfig config_;
  bool in_progress_ = false;
  guest::GuestOs* vm_ = nullptr;
  vmm::Host* src_ = nullptr;
  vmm::Host* dst_ = nullptr;
  std::function<void(const Result&)> done_;
  sim::SimTime started_at_ = 0;
  sim::SimTime suspended_at_ = 0;
  sim::Bytes transferred_ = 0;
  int rounds_ = 0;
  obs::SpanId migration_span_ = obs::kNoSpan;
  obs::SpanId stop_copy_span_ = obs::kNoSpan;
  obs::SpanId outer_ambient_ = obs::kNoSpan;
  Result result_;
};

}  // namespace rh::cluster
