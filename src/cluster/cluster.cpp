#include "cluster/cluster.hpp"

#include <memory>
#include <string>
#include <utility>

#include "simcore/check.hpp"

namespace rh::cluster {

Cluster::Cluster(sim::Simulation& sim, Config config)
    : sim_(sim), config_(config) {
  ensure(config_.hosts >= 1, "Cluster: need at least one host");
  ensure(config_.vms_per_host >= 1, "Cluster: need at least one VM per host");
  for (int h = 0; h < config_.hosts; ++h) {
    hosts_.push_back(std::make_unique<vmm::Host>(
        sim_, config_.calib, config_.seed + static_cast<std::uint64_t>(h)));
    guests_.emplace_back();
    for (int v = 0; v < config_.vms_per_host; ++v) {
      auto g = std::make_unique<guest::GuestOs>(
          *hosts_.back(),
          "web-h" + std::to_string(h) + "-v" + std::to_string(v),
          config_.vm_memory);
      g->add_service(std::make_unique<guest::ApacheService>());
      for (int f = 0; f < config_.files_per_vm; ++f) {
        g->vfs().create_file("doc" + std::to_string(f), config_.file_size);
      }
      guests_.back().push_back(std::move(g));
    }
  }
}

vmm::Host& Cluster::host(int i) {
  ensure(i >= 0 && i < config_.hosts, "Cluster::host: index out of range");
  return *hosts_[static_cast<std::size_t>(i)];
}

guest::GuestOs& Cluster::guest(int host, int vm) {
  ensure(host >= 0 && host < config_.hosts, "Cluster::guest: bad host");
  ensure(vm >= 0 && vm < config_.vms_per_host, "Cluster::guest: bad vm");
  return *guests_[static_cast<std::size_t>(host)][static_cast<std::size_t>(vm)];
}

std::vector<guest::GuestOs*> Cluster::guests_of(int host) {
  ensure(host >= 0 && host < config_.hosts, "Cluster::guests_of: bad host");
  std::vector<guest::GuestOs*> out;
  for (auto& g : guests_[static_cast<std::size_t>(host)]) out.push_back(g.get());
  return out;
}

void Cluster::start(std::function<void()> on_ready) {
  ensure(static_cast<bool>(on_ready), "Cluster::start: callback required");
  auto remaining =
      std::make_shared<std::size_t>(static_cast<std::size_t>(config_.hosts) *
                                    static_cast<std::size_t>(config_.vms_per_host));
  auto shared_ready = std::make_shared<std::function<void()>>(std::move(on_ready));
  for (int h = 0; h < config_.hosts; ++h) {
    hosts_[static_cast<std::size_t>(h)]->instant_start();
    for (auto& g : guests_[static_cast<std::size_t>(h)]) {
      guest::GuestOs* os = g.get();
      os->create_and_boot([this, os, remaining, shared_ready] {
        auto* apache =
            static_cast<guest::ApacheService*>(os->find_service("httpd"));
        std::vector<std::int64_t> files;
        for (std::size_t f = 0; f < os->vfs().file_count(); ++f) {
          files.push_back(static_cast<std::int64_t>(f));
        }
        balancer_.add_backend({os, apache, std::move(files)});
        if (--*remaining == 0) (*shared_ready)();
      });
    }
  }
}

void Cluster::rolling_rejuvenation(rejuv::RebootKind kind,
                                   std::function<void()> on_done) {
  ensure(static_cast<bool>(on_done), "rolling_rejuvenation: callback required");
  durations_.clear();
  rejuvenate_from(0, kind, std::move(on_done));
}

void Cluster::rejuvenate_from(std::size_t host_index, rejuv::RebootKind kind,
                              std::function<void()> on_done) {
  if (host_index == hosts_.size()) {
    active_driver_.reset();
    on_done();
    return;
  }
  active_driver_ = rejuv::make_reboot_driver(
      kind, *hosts_[host_index], guests_of(static_cast<int>(host_index)));
  active_driver_->run([this, host_index, kind, on_done = std::move(on_done)]() mutable {
    durations_.push_back(active_driver_->total_duration());
    rejuvenate_from(host_index + 1, kind, std::move(on_done));
  });
}

}  // namespace rh::cluster
