#include "cluster/cluster.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "cluster/metrics_scraper.hpp"
#include "simcore/check.hpp"

namespace rh::cluster {

Cluster::Cluster(sim::Simulation& sim, Config config)
    : sim_(sim), config_(config) {
  ensure(config_.hosts >= 1, "Cluster: need at least one host");
  ensure(config_.vms_per_host >= 1, "Cluster: need at least one VM per host");
  ensure(config_.shards >= 0, "Cluster: negative shard count");
  if (config_.engine != nullptr) {
    ensure(config_.engine->partition_count() ==
               1 + config_.shards + config_.hosts,
           "Cluster: engine needs 1 + shards + hosts partitions (control "
           "plane, one per balancer shard, one per host)");
    ensure(&sim_ == &config_.engine->partition(0),
           "Cluster: sim must be the engine's control partition (0)");
    // Every host reaches the control plane over its calibrated link; the
    // minimum of those latencies is the engine's lookahead.
    config_.engine->register_link(config_.calib.link.latency);
    balancer_.bind_parallel(*config_.engine, /*self_partition=*/0,
                            config_.calib.link.latency);
  }
  // Waves launch several drivers/supervisors concurrently, so per-host
  // slots are needed in sequential mode too.
  host_drivers_.resize(static_cast<std::size_t>(config_.hosts));
  host_supervisors_.resize(static_cast<std::size_t>(config_.hosts));
  steady_slots_.resize(static_cast<std::size_t>(config_.hosts));
  crash_down_.assign(static_cast<std::size_t>(config_.hosts), 0);
  crash_evicted_.assign(static_cast<std::size_t>(config_.hosts), 0);
  admin_evicted_.assign(static_cast<std::size_t>(config_.hosts), 0);
  recently_recovered_.assign(static_cast<std::size_t>(config_.hosts), 0);
  if (config_.shards > 0) {
    sharded_ =
        std::make_unique<ShardedBalancer>(static_cast<std::size_t>(config_.shards));
    if (config_.engine != nullptr) {
      sharded_->bind_parallel(*config_.engine, /*first_shard_partition=*/1,
                              config_.calib.link.latency);
    }
  }
  for (int h = 0; h < config_.hosts; ++h) {
    sim::Simulation& host_sim = config_.engine != nullptr
                                    ? config_.engine->partition(partition_of(h))
                                    : sim_;
    hosts_.push_back(std::make_unique<vmm::Host>(
        host_sim, config_.calib, config_.seed + static_cast<std::uint64_t>(h)));
    // The host's uplink terminates at the control plane: deliveries cross
    // the partition boundary through the engine's mailboxes.
    if (config_.engine != nullptr) {
      hosts_.back()->link().bind_remote(*config_.engine, /*dst_partition=*/0);
    }
    // Arm fault injection (a no-op drawing nothing when all rates are
    // zero) before any other per-host RNG use, so the fault substream is
    // a fixed function of the host seed alone.
    hosts_.back()->configure_faults(config_.faults);
    if (config_.observe) hosts_.back()->obs().set_enabled(true);
    guests_.emplace_back();
    for (int v = 0; v < config_.vms_per_host; ++v) {
      auto g = std::make_unique<guest::GuestOs>(
          *hosts_.back(),
          "web-h" + std::to_string(h) + "-v" + std::to_string(v),
          config_.vm_memory);
      g->add_service(std::make_unique<guest::ApacheService>());
      for (int f = 0; f < config_.files_per_vm; ++f) {
        g->vfs().create_file("doc" + std::to_string(f), config_.file_size);
      }
      if (sharded_ != nullptr) {
        // The sharded balancer probes reachability live (a request to a
        // still-booting VM fails and the session retries), so backends
        // register at construction instead of boot completion.
        auto* apache =
            static_cast<guest::ApacheService*>(g->find_service("httpd"));
        std::vector<std::int64_t> files;
        for (int f = 0; f < config_.files_per_vm; ++f) files.push_back(f);
        sharded_->add_backend({g.get(), apache, std::move(files),
                               static_cast<std::size_t>(h),
                               config_.engine != nullptr ? partition_of(h)
                                                         : -1});
      }
      guests_.back().push_back(std::move(g));
    }
  }
}

Cluster::~Cluster() = default;

vmm::Host& Cluster::host(int i) {
  ensure(i >= 0 && i < config_.hosts, "Cluster::host: index out of range");
  return *hosts_[static_cast<std::size_t>(i)];
}

guest::GuestOs& Cluster::guest(int host, int vm) {
  ensure(host >= 0 && host < config_.hosts, "Cluster::guest: bad host");
  ensure(vm >= 0 && vm < config_.vms_per_host, "Cluster::guest: bad vm");
  return *guests_[static_cast<std::size_t>(host)][static_cast<std::size_t>(vm)];
}

std::vector<guest::GuestOs*> Cluster::guests_of(int host) {
  ensure(host >= 0 && host < config_.hosts, "Cluster::guests_of: bad host");
  std::vector<guest::GuestOs*> out;
  for (auto& g : guests_[static_cast<std::size_t>(host)]) out.push_back(g.get());
  return out;
}

void Cluster::start(std::function<void()> on_ready) {
  ensure(static_cast<bool>(on_ready), "Cluster::start: callback required");
  auto remaining =
      std::make_shared<std::size_t>(static_cast<std::size_t>(config_.hosts) *
                                    static_cast<std::size_t>(config_.vms_per_host));
  auto shared_ready = std::make_shared<std::function<void()>>(std::move(on_ready));
  for (int h = 0; h < config_.hosts; ++h) {
    hosts_[static_cast<std::size_t>(h)]->instant_start();
    for (auto& g : guests_[static_cast<std::size_t>(h)]) {
      guest::GuestOs* os = g.get();
      os->create_and_boot([this, os, remaining, shared_ready] {
        if (config_.engine != nullptr) {
          // Boot completion fires on the host's partition; registration
          // mutates balancer state, so it crosses to the control plane
          // through the mailboxes (merge order makes it deterministic).
          config_.engine->post(0, config_.calib.link.latency,
                               [this, os, remaining, shared_ready] {
            register_backend(os, remaining, shared_ready);
          });
          return;
        }
        register_backend(os, remaining, shared_ready);
      });
    }
  }
}

void Cluster::register_backend(
    guest::GuestOs* os, const std::shared_ptr<std::size_t>& remaining,
    const std::shared_ptr<std::function<void()>>& ready) {
  auto* apache = static_cast<guest::ApacheService*>(os->find_service("httpd"));
  std::vector<std::int64_t> files;
  for (std::size_t f = 0; f < os->vfs().file_count(); ++f) {
    files.push_back(static_cast<std::int64_t>(f));
  }
  std::int32_t partition = -1;
  if (config_.engine != nullptr) {
    partition = os->host().sim().partition_id();
  }
  balancer_.add_backend({os, apache, std::move(files), partition});
  if (--*remaining == 0) (*ready)();
}

void Cluster::rolling_rejuvenation(rejuv::RebootKind kind,
                                   std::function<void()> on_done) {
  ensure(static_cast<bool>(on_done), "rolling_rejuvenation: callback required");
  ensure(!rolling_in_progress_,
         "rolling_rejuvenation: a rolling pass is already in progress");
  rolling_in_progress_ = true;
  durations_.clear();
  rejuvenate_from(0, kind, std::move(on_done));
}

void Cluster::rejuvenate_from(std::size_t host_index, rejuv::RebootKind kind,
                              std::function<void()> on_done) {
  if (host_index == hosts_.size()) {
    active_driver_.reset();
    rolling_in_progress_ = false;
    on_done();
    return;
  }
  if (config_.engine != nullptr) {
    rejuvenate_remote(host_index, kind, std::move(on_done));
    return;
  }
  vmm::Host& h = *hosts_[host_index];
  obs::SpanId turn = obs::kNoSpan;
  if (h.obs().enabled()) {
    turn = h.obs().span_open(sim_.now(), obs::Phase::kRollingPass,
                             "rolling turn host " + std::to_string(host_index));
    h.obs().set_ambient(turn);
  }
  active_driver_ = rejuv::make_reboot_driver(
      kind, h, guests_of(static_cast<int>(host_index)));
  active_driver_->run([this, host_index, kind, turn,
                       on_done = std::move(on_done)]() mutable {
    durations_.push_back(active_driver_->total_duration());
    vmm::Host& done_host = *hosts_[host_index];
    done_host.obs().span_close(turn, sim_.now());
    done_host.obs().set_ambient(obs::kNoSpan);
    rejuvenate_from(host_index + 1, kind, std::move(on_done));
  });
}

void Cluster::rejuvenate_remote(std::size_t host_index, rejuv::RebootKind kind,
                                std::function<void()> on_done) {
  // Control partition -> host partition hop. The driver is constructed,
  // run and destroyed only in the host's partition context; the reply
  // carries the measured duration by value so the control plane never
  // reads driver state across the boundary.
  config_.engine->post(
      partition_of(static_cast<int>(host_index)), config_.calib.link.latency,
      [this, host_index, kind, on_done = std::move(on_done)]() mutable {
        vmm::Host& h = *hosts_[host_index];
        obs::SpanId turn = obs::kNoSpan;
        if (h.obs().enabled()) {
          turn = h.obs().span_open(
              h.sim().now(), obs::Phase::kRollingPass,
              "rolling turn host " + std::to_string(host_index));
          h.obs().set_ambient(turn);
        }
        auto& slot = host_drivers_[host_index];
        slot = rejuv::make_reboot_driver(
            kind, h, guests_of(static_cast<int>(host_index)));
        slot->run([this, host_index, kind, turn,
                   on_done = std::move(on_done)]() mutable {
          vmm::Host& done_host = *hosts_[host_index];
          done_host.obs().span_close(turn, done_host.sim().now());
          done_host.obs().set_ambient(obs::kNoSpan);
          const sim::Duration took =
              host_drivers_[host_index]->total_duration();
          config_.engine->post(0, config_.calib.link.latency,
                               [this, host_index, kind, took,
                                on_done = std::move(on_done)]() mutable {
            durations_.push_back(took);
            rejuvenate_from(host_index + 1, kind, std::move(on_done));
          });
        });
      });
}

void Cluster::rolling_rejuvenation_supervised(
    SupervisionConfig config,
    std::function<void(const RollingReport&)> on_done) {
  ensure(static_cast<bool>(on_done),
         "rolling_rejuvenation_supervised: callback required");
  ensure(!rolling_in_progress_,
         "rolling_rejuvenation_supervised: a rolling pass is already in progress");
  ensure(config.max_host_retries >= 0,
         "rolling_rejuvenation_supervised: negative retry budget");
  ensure(config.host_retry_base > 0 &&
             config.host_retry_cap >= config.host_retry_base,
         "rolling_rejuvenation_supervised: need cap >= base > 0");
  rolling_in_progress_ = true;
  supervision_ = config;
  rolling_report_ = {};
  retry_queue_.clear();
  durations_.clear();
  supervise_from(0, std::move(on_done));
}

void Cluster::supervise_from(std::size_t host_index,
                             std::function<void(const RollingReport&)> on_done) {
  if (host_index == hosts_.size()) {
    if (retry_queue_.empty()) {
      finish_rolling(std::move(on_done));
    } else {
      retry_evicted(0, 0, std::move(on_done));
    }
    return;
  }
  if (config_.engine != nullptr) {
    supervise_remote(host_index, std::move(on_done));
    return;
  }
  vmm::Host& h = *hosts_[host_index];
  obs::SpanId turn = obs::kNoSpan;
  if (h.obs().enabled()) {
    turn = h.obs().span_open(sim_.now(), obs::Phase::kRollingPass,
                             "rolling turn host " + std::to_string(host_index));
    h.obs().set_ambient(turn);
  }
  active_supervisor_ = std::make_unique<rejuv::Supervisor>(
      h, guests_of(static_cast<int>(host_index)), supervision_.supervisor);
  active_supervisor_->run([this, host_index, turn,
                           on_done = std::move(on_done)](
                              const rejuv::SupervisorReport& report) mutable {
    hosts_[host_index]->obs().span_close(turn, sim_.now());
    hosts_[host_index]->obs().set_ambient(obs::kNoSpan);
    rolling_report_.passes.push_back(report);
    durations_.push_back(report.total_duration());
    if (!report.success) {
      // The ladder exhausted on this host: take its backends out of
      // rotation and queue it for an end-of-pass retry. The pass goes on.
      set_host_out_of_rotation(host_index, true);
      rolling_report_.evicted_hosts.push_back(host_index);
      retry_queue_.push_back(host_index);
    } else if (report.pressure.pressured) {
      // The host came back, but only by shedding preserved memory: its
      // admission controller had to reclaim or demote. Drain load away
      // from it rather than feeding the overcommit.
      set_host_backpressured(host_index, true);
      rolling_report_.pressured_hosts.push_back(host_index);
    }
    supervise_from(host_index + 1, std::move(on_done));
  });
}

void Cluster::supervise_remote(std::size_t host_index,
                               std::function<void(const RollingReport&)> on_done) {
  config_.engine->post(
      partition_of(static_cast<int>(host_index)), config_.calib.link.latency,
      [this, host_index, on_done = std::move(on_done)]() mutable {
        vmm::Host& h = *hosts_[host_index];
        obs::SpanId turn = obs::kNoSpan;
        if (h.obs().enabled()) {
          turn = h.obs().span_open(
              h.sim().now(), obs::Phase::kRollingPass,
              "rolling turn host " + std::to_string(host_index));
          h.obs().set_ambient(turn);
        }
        auto& slot = host_supervisors_[host_index];
        slot = std::make_unique<rejuv::Supervisor>(
            h, guests_of(static_cast<int>(host_index)),
            supervision_.supervisor);
        slot->run([this, host_index, turn, on_done = std::move(on_done)](
                      const rejuv::SupervisorReport& report) mutable {
          vmm::Host& done_host = *hosts_[host_index];
          done_host.obs().span_close(turn, done_host.sim().now());
          done_host.obs().set_ambient(obs::kNoSpan);
          // Reply carries the report by value: eviction/pressure flags
          // and the rolling report are control-plane state.
          config_.engine->post(0, config_.calib.link.latency,
                               [this, host_index, report,
                                on_done = std::move(on_done)]() mutable {
            rolling_report_.passes.push_back(report);
            durations_.push_back(report.total_duration());
            if (!report.success) {
              set_host_out_of_rotation(host_index, true);
              rolling_report_.evicted_hosts.push_back(host_index);
              retry_queue_.push_back(host_index);
            } else if (report.pressure.pressured) {
              set_host_backpressured(host_index, true);
              rolling_report_.pressured_hosts.push_back(host_index);
            }
            supervise_from(host_index + 1, std::move(on_done));
          });
        });
      });
}

void Cluster::retry_evicted(std::size_t queue_index, int attempt,
                            std::function<void(const RollingReport&)> on_done) {
  if (queue_index == retry_queue_.size()) {
    finish_rolling(std::move(on_done));
    return;
  }
  const std::size_t host_index = retry_queue_[queue_index];
  sim_.after(host_retry_backoff(attempt), [this, queue_index, attempt,
                                           host_index,
                                           on_done = std::move(on_done)]() mutable {
    if (config_.engine != nullptr) {
      recover_remote(queue_index, attempt, host_index, std::move(on_done));
      return;
    }
    active_supervisor_ = std::make_unique<rejuv::Supervisor>(
        *hosts_[host_index], guests_of(static_cast<int>(host_index)),
        supervision_.supervisor);
    active_supervisor_->recover(
        [this, queue_index, attempt, host_index, on_done = std::move(on_done)](
            const rejuv::SupervisorReport& report) mutable {
          rolling_report_.passes.push_back(report);
          if (report.success) {
            set_host_out_of_rotation(host_index, false);
            rolling_report_.recovered_hosts.push_back(host_index);
            retry_evicted(queue_index + 1, 0, std::move(on_done));
          } else if (attempt < supervision_.max_host_retries) {
            retry_evicted(queue_index, attempt + 1, std::move(on_done));
          } else {
            rolling_report_.failed_hosts.push_back(host_index);
            retry_evicted(queue_index + 1, 0, std::move(on_done));
          }
        });
  });
}

void Cluster::recover_remote(std::size_t queue_index, int attempt,
                             std::size_t host_index,
                             std::function<void(const RollingReport&)> on_done) {
  config_.engine->post(
      partition_of(static_cast<int>(host_index)), config_.calib.link.latency,
      [this, queue_index, attempt, host_index,
       on_done = std::move(on_done)]() mutable {
        auto& slot = host_supervisors_[host_index];
        slot = std::make_unique<rejuv::Supervisor>(
            *hosts_[host_index], guests_of(static_cast<int>(host_index)),
            supervision_.supervisor);
        slot->recover([this, queue_index, attempt, host_index,
                       on_done = std::move(on_done)](
                          const rejuv::SupervisorReport& report) mutable {
          config_.engine->post(
              0, config_.calib.link.latency,
              [this, queue_index, attempt, host_index, report,
               on_done = std::move(on_done)]() mutable {
                rolling_report_.passes.push_back(report);
                if (report.success) {
                  set_host_out_of_rotation(host_index, false);
                  rolling_report_.recovered_hosts.push_back(host_index);
                  retry_evicted(queue_index + 1, 0, std::move(on_done));
                } else if (attempt < supervision_.max_host_retries) {
                  retry_evicted(queue_index, attempt + 1, std::move(on_done));
                } else {
                  rolling_report_.failed_hosts.push_back(host_index);
                  retry_evicted(queue_index + 1, 0, std::move(on_done));
                }
              });
        });
      });
}

void Cluster::finish_rolling(std::function<void(const RollingReport&)> on_done) {
  active_supervisor_.reset();
  retry_queue_.clear();
  rolling_in_progress_ = false;
  on_done(rolling_report_);
}

void Cluster::set_host_out_of_rotation(std::size_t host_index, bool evicted) {
  admin_evicted_[host_index] = evicted ? 1 : 0;
  // The single balancer has one membership flag, so administrative and
  // crash eviction compose by OR; the sharded balancer keeps them apart.
  balancer_.set_host_evicted(hosts_[host_index].get(),
                             evicted || crash_evicted_[host_index] != 0);
  if (sharded_ != nullptr) sharded_->set_host_evicted(host_index, evicted);
}

void Cluster::apply_crash_rotation(std::size_t host_index, bool crashed) {
  crash_evicted_[host_index] = crashed ? 1 : 0;
  balancer_.set_host_evicted(hosts_[host_index].get(),
                             crashed || admin_evicted_[host_index] != 0);
  if (sharded_ != nullptr) sharded_->set_host_crashed(host_index, crashed);
}

void Cluster::to_control(std::function<void()> fn) {
  if (config_.engine == nullptr) {
    fn();
    return;
  }
  config_.engine->post(0, config_.calib.link.latency, std::move(fn));
}

void Cluster::start_steady_faults(const SteadyFaultsConfig& config) {
  ensure(!steady_started_, "start_steady_faults: already armed");
  steady_started_ = true;
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    auto arm = [this, h, config] {
      vmm::Host& host = *hosts_[h];
      SteadySlot& slot = steady_slots_[h];
      slot.driver = std::make_unique<rejuv::RecoveryDriver>(
          host, guests_of(static_cast<int>(h)), config.supervisor);
      slot.process = std::make_unique<fault::SteadyFaultProcess>(
          host.sim(), host.faults(), config.process);
      // With both steady rates zero this schedules nothing and draws
      // nothing: arming is free on fault-free runs.
      slot.process->start(
          [this, h](fault::FaultKind kind) { steady_fault(h, kind); });
    };
    if (config_.engine == nullptr) {
      arm();
    } else {
      config_.engine->run_on(partition_of(static_cast<int>(h)),
                             std::move(arm));
    }
  }
}

void Cluster::stop_steady_faults() {
  for (std::size_t h = 0; h < steady_slots_.size(); ++h) {
    auto disarm = [this, h] {
      if (steady_slots_[h].process != nullptr) steady_slots_[h].process->stop();
    };
    if (config_.engine == nullptr) {
      disarm();
    } else {
      // The process lives on the host's partition; disarm it there.
      config_.engine->run_on(partition_of(static_cast<int>(h)),
                             std::move(disarm));
    }
  }
  steady_started_ = false;
}

std::size_t Cluster::unplanned_down_hosts() const {
  std::size_t n = 0;
  for (const auto d : crash_down_) n += d != 0 ? 1 : 0;
  return n;
}

// Runs on the host's partition: one steady fault arrival. The driver
// either absorbs it (a ladder already owns the host) or answers with a
// fresh supervised ladder; the control plane learns of the outage start
// and the outcome over the mailboxes, exactly like any other RPC.
void Cluster::steady_fault(std::size_t host_index, fault::FaultKind kind) {
  vmm::Host& host = *hosts_[host_index];
  SteadySlot& slot = steady_slots_[host_index];
  if (host.obs().enabled()) {
    host.obs().emit(host.sim().now(), obs::Category::kFault,
                    obs::EventKind::kSteadyFault, fault::to_string(kind),
                    static_cast<std::int32_t>(host_index),
                    static_cast<std::uint64_t>(kind));
    ++host.obs().metrics().counter("host.steady_faults");
  }
  if (!slot.driver->would_absorb()) {
    to_control([this, host_index] { on_unplanned_down(host_index); });
  }
  slot.driver->on_failure(
      kind, [this, host_index,
             &slot](const rejuv::RecoveryDriver::Outcome& out) {
        vmm::Host& h = *hosts_[host_index];
        if (out.absorbed) {
          if (h.obs().enabled()) {
            ++h.obs().metrics().counter("host.unplanned_absorbed");
          }
          to_control([this] { ++unplanned_.absorbed; });
          if (slot.process->running()) slot.process->resume();
          return;
        }
        const bool success = out.report->success;
        const bool micro = out.report->micro_recovered;
        const sim::Duration took = out.report->total_duration();
        if (h.obs().enabled()) {
          auto& m = h.obs().metrics();
          m.counter("host.unplanned_downtime_us") +=
              static_cast<std::uint64_t>(took);
          ++m.counter(success ? "host.unplanned_recoveries"
                              : "host.unplanned_unrecovered");
        }
        to_control([this, host_index, success, micro, took] {
          on_unplanned_outcome(host_index, success, micro, took);
        });
        // A ladder that outlived stop_steady_faults() must not re-arm the
        // dropped handler.
        if (slot.process->running()) slot.process->resume();
      });
}

void Cluster::on_unplanned_down(std::size_t host_index) {
  ++unplanned_.failures;
  crash_down_[host_index] = 1;
  // Ground truth for the telemetry plane's detection-latency metric.
  if (scraper_ != nullptr) scraper_->note_host_down(host_index);
  // Crash-evict: federated spillover absorbs the outage like a planned
  // wave; the readmit rides the recovery outcome.
  apply_crash_rotation(host_index, true);
}

void Cluster::on_unplanned_outcome(std::size_t host_index, bool success,
                                   bool micro, sim::Duration took) {
  crash_down_[host_index] = 0;
  unplanned_.downtime += took;
  if (success) {
    ++unplanned_.recoveries;
    if (micro) ++unplanned_.micro_recoveries;
    apply_crash_rotation(host_index, false);
    recently_recovered_[host_index] = 1;
    if (scraper_ != nullptr) scraper_->note_host_up(host_index);
  } else {
    // The unplanned ladder exhausted: the host stays crash-evicted. If a
    // wave pass still had it pending, skip it -- running a planned turn
    // on a dead host is pointless (and the Supervisor would refuse).
    ++unplanned_.unrecovered;
    if (wave_ != nullptr && wave_->scheduled[host_index] == 0) {
      wave_->scheduled[host_index] = 1;
      --wave_->remaining;
      wave_report_.unrecovered_hosts.push_back(host_index);
    }
    // The host stays down (down_since_ keeps its mark); flag it for a
    // flight-recorder dump.
    if (scraper_ != nullptr) scraper_->note_unrecovered(host_index);
  }
  wave_kick();
}

void Cluster::set_host_backpressured(std::size_t host_index, bool pressured) {
  balancer_.set_host_pressured(hosts_[host_index].get(), pressured);
  if (sharded_ != nullptr) sharded_->set_host_pressured(host_index, pressured);
}

std::pair<std::uint64_t, std::int64_t> Cluster::host_signals(
    std::size_t host_index) {
  vmm::Host& h = *hosts_[host_index];
  std::uint64_t load = 0;
  for (auto& g : guests_[host_index]) {
    auto* apache =
        static_cast<guest::ApacheService*>(g->find_service("httpd"));
    if (apache != nullptr) load += apache->requests_served();
  }
  const std::int64_t budget = h.preserved().frame_budget();
  // 0 == unlimited budget: headroom is effectively infinite, so those
  // hosts sort after every budget-constrained one.
  const std::int64_t headroom =
      budget == 0 ? std::numeric_limits<std::int64_t>::max()
                  : budget - h.preserved().reserved_frames();
  if (h.obs().enabled()) {
    h.obs().metrics().gauge("host.load") = static_cast<double>(load);
    h.obs().metrics().gauge("host.preserved_headroom") =
        headroom == std::numeric_limits<std::int64_t>::max()
            ? std::numeric_limits<double>::infinity()
            : static_cast<double>(headroom);
  }
  return {load, headroom};
}

// Exporter collect hook, on the host's partition. Same signal math as
// host_signals, but writes the registry unconditionally: scraping may run
// with Config::observe off, where host_signals would skip the mirror, and
// the scraped samples ARE the control plane's only view of the host.
void Cluster::collect_host_metrics(std::size_t host_index) {
  vmm::Host& h = *hosts_[host_index];
  std::uint64_t load = 0;
  for (auto& g : guests_[host_index]) {
    auto* apache =
        static_cast<guest::ApacheService*>(g->find_service("httpd"));
    if (apache != nullptr) load += apache->requests_served();
  }
  const std::int64_t budget = h.preserved().frame_budget();
  const std::int64_t headroom =
      budget == 0 ? std::numeric_limits<std::int64_t>::max()
                  : budget - h.preserved().reserved_frames();
  auto& m = h.obs().metrics();
  m.gauge("host.load") = static_cast<double>(load);
  m.gauge("host.preserved_headroom") =
      headroom == std::numeric_limits<std::int64_t>::max()
          ? std::numeric_limits<double>::infinity()
          : static_cast<double>(headroom);
  m.counter("host.vmm_generation") =
      static_cast<std::uint64_t>(h.vmm_generation());
}

void Cluster::start_scraping(const ScrapeConfig& config) {
  ensure(scraper_ == nullptr, "start_scraping: already armed");
  scraper_ = std::make_unique<MetricsScraper>(*this, config);
  scraper_->start();
}

void Cluster::stop_scraping() {
  ensure(scraper_ != nullptr, "stop_scraping: scraping was never started");
  scraper_->stop();
}

void Cluster::set_scrape_admission_blocked(bool blocked) {
  if (scrape_blocked_ == blocked) return;
  scrape_blocked_ = blocked;
  // Burn rate cooled down: resume a pass the gate paused.
  if (!blocked) wave_kick();
}

void Cluster::rolling_rejuvenation_waves(
    WaveConfig config, std::function<void(const WaveReport&)> on_done) {
  ensure(static_cast<bool>(on_done),
         "rolling_rejuvenation_waves: callback required");
  ensure(!rolling_in_progress_,
         "rolling_rejuvenation_waves: a rolling pass is already in progress");
  ensure(config.wave_size >= 1, "rolling_rejuvenation_waves: wave_size >= 1");
  ensure(config.max_concurrent_down >= 0,
         "rolling_rejuvenation_waves: negative downtime budget");
  rolling_in_progress_ = true;
  durations_.clear();
  wave_report_ = {};
  wave_ = std::make_unique<WaveState>();
  wave_->config = config;
  wave_->on_done = std::move(on_done);
  const auto n = hosts_.size();
  wave_->scheduled.assign(n, 0);
  wave_->load.assign(n, 0);
  wave_->headroom.assign(n, 0);
  wave_->remaining = n;
  wave_gather();
}

// Fans one signal probe out to every pending host. Under the engine the
// probe runs on the host's partition and the values travel back over the
// mailboxes, so the schedule derived from them is worker-count invariant.
void Cluster::wave_gather() {
  if (wave_->remaining == 0) {
    wave_report_.hosts_rejuvenated = hosts_.size();
    rolling_in_progress_ = false;
    auto on_done = std::move(wave_->on_done);
    wave_.reset();
    on_done(wave_report_);
    return;
  }
  if (wave_->config.signals == WaveSignalSource::kScraped) {
    // Production-shaped ordering: the latest scraped samples, read
    // straight off the control partition's TimeSeriesStore. No
    // host-partition probe at all -- the scheduler sees exactly what the
    // telemetry plane saw, up to one scrape interval old.
    ensure(scraper_ != nullptr,
           "rolling_rejuvenation_waves: scraped signals require "
           "start_scraping()");
    for (std::size_t h = 0; h < hosts_.size(); ++h) {
      if (wave_->scheduled[h] != 0) continue;
      const auto [load, headroom] = scraper_->wave_signals(h);
      wave_->load[h] = load;
      wave_->headroom[h] = headroom;
    }
    wave_launch();
    return;
  }
  wave_->replies_pending = wave_->remaining;
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    if (wave_->scheduled[h] != 0) continue;
    if (config_.engine == nullptr) {
      const auto [load, headroom] = host_signals(h);
      wave_collect(h, load, headroom);
      continue;
    }
    config_.engine->post(partition_of(static_cast<int>(h)),
                         config_.calib.link.latency, [this, h] {
      const auto [load, headroom] = host_signals(h);
      config_.engine->post(0, config_.calib.link.latency,
                           [this, h, load, headroom] {
        wave_collect(h, load, headroom);
      });
    });
  }
}

void Cluster::wave_collect(std::size_t host_index, std::uint64_t load,
                           std::int64_t headroom) {
  wave_->load[host_index] = load;
  wave_->headroom[host_index] = headroom;
  if (--wave_->replies_pending == 0) wave_launch();
}

void Cluster::wave_launch() {
  // SLO burn-rate gate (DESIGN.md §15): while the telemetry plane says
  // the fleet is eating error budget too fast, planned maintenance
  // admits nothing; the gate clearing kicks the pass awake.
  if (scrape_blocked_) {
    wave_->paused = true;
    ++wave_report_.admission_pauses;
    return;
  }
  // Hosts currently down from an unplanned crash are not candidates (a
  // turn cannot run on a dead host) but still count against the
  // concurrent-downtime budget below.
  std::vector<std::size_t> candidates;
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    if (wave_->scheduled[h] == 0 && crash_down_[h] == 0) candidates.push_back(h);
  }
  // Least-loaded hosts first so the wave drains as few active sessions as
  // possible; among equals, the memory-tightest (smallest preserved
  // headroom) host rejuvenates first; host index breaks remaining ties so
  // the schedule is a pure function of the gathered signals. Hosts that
  // just micro-recovered sort last: they were freshly rebuilt moments ago
  // and their sessions just finished failing over.
  std::sort(candidates.begin(), candidates.end(),
            [this](std::size_t a, std::size_t b) {
              if (recently_recovered_[a] != recently_recovered_[b]) {
                return recently_recovered_[a] < recently_recovered_[b];
              }
              if (wave_->load[a] != wave_->load[b]) {
                return wave_->load[a] < wave_->load[b];
              }
              if (wave_->headroom[a] != wave_->headroom[b]) {
                return wave_->headroom[a] < wave_->headroom[b];
              }
              return a < b;
            });
  std::size_t k = static_cast<std::size_t>(wave_->config.wave_size);
  // Unplanned crashes spend the same budget as planned turns: admission
  // pauses when crashes alone exhaust it, and the next unplanned recovery
  // replans the remaining order from live outcomes (wave_kick).
  const std::size_t budget =
      wave_->config.max_concurrent_down > 0
          ? static_cast<std::size_t>(wave_->config.max_concurrent_down)
          : static_cast<std::size_t>(wave_->config.wave_size);
  const std::size_t down_now = unplanned_down_hosts();
  k = std::min(k, budget > down_now ? budget - down_now : 0);
  k = std::min(k, candidates.size());
  if (k == 0) {
    wave_->paused = true;
    ++wave_report_.admission_pauses;
    return;
  }
  WaveReport::Wave wave;
  wave.started = sim_.now();
  wave.hosts.assign(candidates.begin(),
                    candidates.begin() + static_cast<std::ptrdiff_t>(k));
  wave_report_.waves.push_back(std::move(wave));
  wave_->inflight = k;
  wave_->remaining -= k;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t h = wave_report_.waves.back().hosts[i];
    wave_->scheduled[h] = 1;
    recently_recovered_[h] = 0;
    wave_run_host(h);
  }
}

void Cluster::wave_kick() {
  if (wave_ == nullptr || !wave_->paused || wave_->inflight != 0) return;
  wave_->paused = false;
  wave_gather();
}

void Cluster::wave_run_host(std::size_t host_index) {
  // Every wave turn is supervised: a mid-wave VMM failure walks the
  // degradation ladder instead of aborting the pass. The wave's reboot
  // kind overrides the supervisor's preferred mechanism.
  rejuv::SupervisorConfig scfg = wave_->config.supervisor;
  scfg.preferred = wave_->config.kind;
  if (config_.engine == nullptr) {
    vmm::Host& h = *hosts_[host_index];
    if (!h.up() || h.recovery_in_progress()) {
      wave_host_deferred(host_index);
      return;
    }
    obs::SpanId turn = obs::kNoSpan;
    if (h.obs().enabled()) {
      turn = h.obs().span_open(sim_.now(), obs::Phase::kRollingPass,
                               "wave turn host " + std::to_string(host_index));
      h.obs().set_ambient(turn);
    }
    auto& slot = host_supervisors_[host_index];
    slot = std::make_unique<rejuv::Supervisor>(
        h, guests_of(static_cast<int>(host_index)), scfg);
    slot->run([this, host_index,
               turn](const rejuv::SupervisorReport& report) {
      vmm::Host& done_host = *hosts_[host_index];
      done_host.obs().span_close(turn, sim_.now());
      done_host.obs().set_ambient(obs::kNoSpan);
      wave_host_done(host_index, report);
    });
    return;
  }
  // Control partition -> host partition hop, same discipline as
  // supervise_remote: the supervisor lives and dies on the host's
  // partition, the reply carries the report by value.
  config_.engine->post(
      partition_of(static_cast<int>(host_index)), config_.calib.link.latency,
      [this, host_index, scfg] {
        vmm::Host& h = *hosts_[host_index];
        if (!h.up() || h.recovery_in_progress()) {
          // An unplanned ladder took the host between launch and arrival
          // (the crash notification is still in flight): hand the turn
          // back instead of colliding with the overlap guard.
          config_.engine->post(0, config_.calib.link.latency,
                               [this, host_index] {
            wave_host_deferred(host_index);
          });
          return;
        }
        obs::SpanId turn = obs::kNoSpan;
        if (h.obs().enabled()) {
          turn = h.obs().span_open(
              h.sim().now(), obs::Phase::kRollingPass,
              "wave turn host " + std::to_string(host_index));
          h.obs().set_ambient(turn);
        }
        auto& slot = host_supervisors_[host_index];
        slot = std::make_unique<rejuv::Supervisor>(
            h, guests_of(static_cast<int>(host_index)), scfg);
        slot->run([this, host_index,
                   turn](const rejuv::SupervisorReport& report) {
          vmm::Host& done_host = *hosts_[host_index];
          done_host.obs().span_close(turn, done_host.sim().now());
          done_host.obs().set_ambient(obs::kNoSpan);
          config_.engine->post(0, config_.calib.link.latency,
                               [this, host_index, report] {
            wave_host_done(host_index, report);
          });
        });
      });
}

void Cluster::wave_host_deferred(std::size_t host_index) {
  ++wave_report_.deferred_turns;
  wave_->scheduled[host_index] = 0;
  ++wave_->remaining;
  if (--wave_->inflight == 0) {
    wave_report_.waves.back().finished = sim_.now();
    wave_gather();
  }
}

void Cluster::wave_host_done(std::size_t host_index,
                             rejuv::SupervisorReport report) {
  durations_.push_back(report.total_duration());
  wave_report_.planned_downtime += report.total_duration();
  WaveReport::Wave& wave = wave_report_.waves.back();
  wave.outcome_hosts.push_back(host_index);
  if (!report.success) {
    // The ladder exhausted mid-wave: take the host's backends out of
    // rotation. Waves have no retry queue; the eviction is the outcome.
    set_host_out_of_rotation(host_index, true);
    wave_report_.unrecovered_hosts.push_back(host_index);
  } else if (report.completed != report.attempted) {
    wave_report_.degraded_hosts.push_back(host_index);
  }
  wave.outcomes.push_back(std::move(report));
  if (--wave_->inflight == 0) {
    // Wave barrier: the next gather (and wave) starts only when every
    // host in this wave is back -- the budget is never exceeded.
    wave_report_.waves.back().finished = sim_.now();
    wave_gather();
  }
}

sim::Duration Cluster::host_retry_backoff(int attempt) const {
  sim::Duration delay = supervision_.host_retry_base;
  for (int k = 0; k < attempt && delay < supervision_.host_retry_cap; ++k) {
    delay *= 2;
  }
  return delay < supervision_.host_retry_cap ? delay
                                             : supervision_.host_retry_cap;
}

}  // namespace rh::cluster
