// Batched closed-loop session store for the datacenter-scale fig9 run.
//
// ClusterClientFleet keeps one heap-allocated callback chain alive per
// connection, which tops out around thousands of sessions. SessionFleet
// holds a million-session closed loop as struct-of-arrays: per shard, a
// flat slice of (next_due, issued_at, down_since, downtime, counters)
// columns, walked once per tick by a single batched scan that issues
// every due request through the session's pinned balancer shard. No
// per-session allocations, no per-session timers: one ticker event per
// shard drives the whole slice (DESIGN.md §12).
//
// Sessions are block-assigned to shards; under the parallel engine each
// slice lives on its shard's partition, so the scans themselves are
// parallel-in-run and every mutation of a slice happens on its owning
// partition.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/sharded_balancer.hpp"
#include "simcore/histogram.hpp"
#include "simcore/simulation.hpp"

namespace rh::cluster {

class SessionFleet {
 public:
  struct Config {
    std::uint64_t sessions = 0;
    /// Closed-loop think time: session g waits think_base plus a
    /// deterministic per-session offset in [0, think_spread) between its
    /// completions (hash-staggered, zero RNG draws).
    sim::Duration think_base = 10 * sim::kSecond;
    sim::Duration think_spread = 10 * sim::kSecond;
    /// Back-off after a failed request (the session is down until a
    /// retry succeeds).
    sim::Duration retry_interval = 1 * sim::kSecond;
    /// Batched-scan period: each shard's slice is walked once per tick.
    sim::Duration tick = 250 * sim::kMillisecond;
  };

  /// Pooled results over the measurement window (begin_window .. end).
  struct Stats {
    std::uint64_t completions = 0;
    std::uint64_t failures = 0;
    std::uint64_t sessions_down_at_end = 0;
    sim::LatencyHistogram request_latency;
    /// Per-session total downtime inside the window (one sample per
    /// session, including the zero-downtime majority).
    sim::LatencyHistogram session_downtime;
    /// 1 - p(downtime)/window: the availability the worst 1% / 0.1% of
    /// sessions still saw.
    double availability_p99 = 1.0;
    double availability_p999 = 1.0;
    /// 1 - total_downtime / (sessions * window).
    double pooled_availability = 1.0;
    /// Pooled downtime split by cause (DESIGN.md §14): an outage is
    /// charged as unplanned when the session's shard knew of at least one
    /// crash-downed host at the moment the outage began, and as planned
    /// (wave / admin eviction) otherwise.
    sim::Duration planned_downtime = 0;
    sim::Duration unplanned_downtime = 0;
  };

  SessionFleet(ShardedBalancer& balancer, Config config);
  SessionFleet(const SessionFleet&) = delete;
  SessionFleet& operator=(const SessionFleet&) = delete;

  /// Sequential mode: every slice ticks on the one calendar.
  void start(sim::Simulation& sim);
  /// Partitioned mode: slice s ticks on its shard's partition. Call while
  /// the engine is quiescent (seeds the tickers with run_on).
  void start(sim::ParallelSimulation& engine);
  void stop();

  /// Resets the measurement window at `now`: zeroes per-session downtime
  /// and counters; sessions currently down start the window down at
  /// `now`. Quiescent callers only (after boot/warmup).
  void begin_window(sim::SimTime now);

  /// Pooled stats for [begin_window .. window_end]. Open downtime is
  /// charged up to window_end. Quiescent callers only.
  [[nodiscard]] Stats stats(sim::SimTime window_end) const;

  [[nodiscard]] std::uint64_t session_count() const { return config_.sessions; }
  /// FNV-1a over every session's outcome columns; worker-count invariant
  /// under the engine. Quiescent reads only.
  [[nodiscard]] std::uint64_t state_digest() const;

 private:
  /// One shard's session columns, cache-line padded: under the engine a
  /// slice is touched only from its shard's partition.
  struct alignas(64) Slice {
    std::uint64_t first = 0;  ///< global index of this slice's session 0
    sim::Simulation* sim = nullptr;
    std::vector<sim::SimTime> next_due;
    std::vector<sim::SimTime> issued_at;   ///< kIdle when not in flight
    std::vector<sim::SimTime> down_since;  ///< kUp when healthy
    std::vector<sim::Duration> downtime;   ///< closed downtime this window
    /// Unplanned share of `downtime` (cause sampled at outage start).
    std::vector<sim::Duration> downtime_unplanned;
    /// 1 while the open outage began under a known crash-down host.
    std::vector<std::uint8_t> down_unplanned;
    std::vector<std::uint32_t> completions;
    std::vector<std::uint32_t> failures;
    sim::LatencyHistogram latency;
    /// Outages ever attributed unplanned on this slice (monotone; gates
    /// digest mixing so crash-free runs keep the pre-crash digest chain).
    std::uint64_t unplanned_marks = 0;
  };
  static constexpr sim::SimTime kIdle = -1;
  static constexpr sim::SimTime kUp = -1;

  void tick(std::uint32_t shard);
  void issue(std::uint32_t shard, std::uint32_t i);
  void on_reply(std::uint32_t shard, std::uint32_t i, bool ok);
  [[nodiscard]] sim::Duration think_of(std::uint64_t global) const;

  ShardedBalancer& balancer_;
  Config config_;
  std::vector<Slice> slices_;
  sim::SimTime window_start_ = 0;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace rh::cluster
