#include "cluster/metrics_scraper.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <string_view>

#include "obs/export.hpp"
#include "obs/prometheus.hpp"
#include "simcore/check.hpp"

namespace rh::cluster {

namespace {

// Minimal JSON string escaping for flight-recorder text (labels and
// series names are our own short ASCII, but a truncated label could in
// principle carry anything printable).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
  }
  return out;
}

// JSON number: finite doubles bare, inf/nan quoted (JSON has no literal
// for them; fmt_double spells them "inf"/"-inf"/"nan").
std::string json_number(double v) {
  return std::isfinite(v) ? obs::fmt_double(v) : "\"" + obs::fmt_double(v) + "\"";
}

}  // namespace

MetricsScraper::MetricsScraper(Cluster& cluster, Cluster::ScrapeConfig config)
    : cluster_(cluster),
      config_(config),
      sim_(cluster.sim_),
      tsdb_(cluster.hosts_.size(), config.tsdb),
      slo_(cluster.hosts_.size(), config.slo) {
  // A timeout that a healthy round trip could exceed would mark live
  // hosts dark; a round that outlives the interval would overlap the
  // next one and break the single-outstanding-round accounting.
  ensure(config_.timeout > 2 * cluster_.config_.calib.link.latency,
         "MetricsScraper: timeout must exceed the scrape round trip");
  ensure(config_.interval > config_.timeout,
         "MetricsScraper: interval must exceed the timeout");
  const std::size_t n = cluster_.hosts_.size();
  pending_round_.assign(n, 0);
  ok_.assign(n, 0);
  failed_.assign(n, 0);
  down_since_.assign(n, -1);
  flagged_.assign(n, 0);
  exporters_.reserve(n);
  for (std::size_t h = 0; h < n; ++h) {
    vmm::Host* host = cluster_.hosts_[h].get();
    exporters_.push_back(std::make_unique<obs::MetricsExporter>(
        host->obs(), "host-" + std::to_string(h),
        /*serving=*/[host] { return host->up(); },
        /*collect=*/[this, h] { cluster_.collect_host_metrics(h); }));
  }
}

void MetricsScraper::start() {
  ensure(!started_, "MetricsScraper::start: already started");
  started_ = true;
  running_ = true;
  auto arm = [this] { sim_.after(config_.interval, [this] { run_round(); }); };
  if (cluster_.config_.engine != nullptr) {
    cluster_.config_.engine->run_on(0, std::move(arm));
  } else {
    arm();
  }
}

void MetricsScraper::stop() { running_ = false; }

void MetricsScraper::run_round() {
  if (!running_) return;
  ++stats_.rounds_started;
  ++round_seq_;
  outstanding_ = cluster_.hosts_.size();
  for (std::size_t h = 0; h < cluster_.hosts_.size(); ++h) scrape_host(h);
  // Fixed cadence regardless of round outcome; interval > timeout keeps
  // rounds from overlapping.
  sim_.after(config_.interval, [this] { run_round(); });
}

void MetricsScraper::scrape_host(std::size_t host) {
  pending_round_[host] = round_seq_;
  const std::uint64_t round = round_seq_;
  sim_.after(config_.timeout,
             [this, host, round] { on_timeout(host, round); });
  auto request = [this, host, round] { scrape_arrive(host, round); };
  if (cluster_.config_.engine != nullptr) {
    cluster_.config_.engine->post(
        cluster_.partition_of(static_cast<int>(host)),
        cluster_.config_.calib.link.latency, std::move(request));
  } else {
    sim_.after(cluster_.config_.calib.link.latency, std::move(request));
  }
}

void MetricsScraper::scrape_arrive(std::size_t host, std::uint64_t round) {
  // Host partition. A non-serving exporter replies with nothing at all;
  // the control-side timeout is the only failure signal.
  exporters_[host]->handle_scrape([this, host, round](std::string body) {
    cluster_.hosts_[host]->link().deliver(
        [this, host, round, body = std::move(body)]() mutable {
          on_reply(host, round, std::move(body));
        });
  });
}

void MetricsScraper::on_reply(std::size_t host, std::uint64_t round,
                              std::string body) {
  if (pending_round_[host] != round) return;  // its timeout already ran
  pending_round_[host] = 0;
  ++stats_.scrapes_ok;
  ++ok_[host];
  stats_.bytes_transferred += body.size();
  tsdb_.mark_fresh(host);
  const sim::SimTime t = sim_.now();
  obs::parse_prometheus_text(
      body, [this, host, t](std::string_view key, double value) {
        tsdb_.ingest(host, key, t, value);
      });
  slo_.record(host, true);
  finish_scrape();
}

void MetricsScraper::on_timeout(std::size_t host, std::uint64_t round) {
  if (pending_round_[host] != round) return;  // the reply beat us
  pending_round_[host] = 0;
  ++stats_.scrapes_failed;
  ++failed_[host];
  tsdb_.mark_stale(host, sim_.now());
  const bool went_dark = slo_.record(host, false);
  if (went_dark && down_since_[host] >= 0) {
    // The telemetry plane just concluded what the watchdog already
    // knows: the gap is the scrape-visible detection latency.
    detection_hist_.add(sim_.now() - down_since_[host]);
    ++stats_.detections;
  }
  finish_scrape();
}

void MetricsScraper::finish_scrape() {
  if (--outstanding_ != 0) return;
  slo_.end_round();
  ++stats_.rounds_completed;
  if (!config_.gate_admission) return;
  const bool blocked = slo_.admission_paused();
  if (blocked == blocked_) return;
  blocked_ = blocked;
  cluster_.set_scrape_admission_blocked(blocked);
}

std::pair<std::uint64_t, std::int64_t> MetricsScraper::wave_signals(
    std::size_t host) const {
  std::uint64_t load = 0;
  std::int64_t headroom = std::numeric_limits<std::int64_t>::max();
  if (const auto s = tsdb_.latest(host, "host_load");
      s.has_value() && std::isfinite(s->value) && s->value > 0.0) {
    load = static_cast<std::uint64_t>(s->value);
  }
  if (const auto s = tsdb_.latest(host, "host_preserved_headroom");
      s.has_value() && std::isfinite(s->value) && s->value < 9.0e18) {
    headroom = static_cast<std::int64_t>(s->value);
  }
  return {load, headroom};
}

void MetricsScraper::note_host_down(std::size_t host) {
  if (down_since_[host] < 0) down_since_[host] = sim_.now();
}

void MetricsScraper::note_host_up(std::size_t host) {
  down_since_[host] = -1;
}

void MetricsScraper::note_unrecovered(std::size_t host) {
  if (flagged_[host] != 0) return;
  flagged_[host] = 1;
  flight_records_.push_back({host, sim_.now()});
}

void MetricsScraper::write_flight_record(std::ostream& os,
                                         std::size_t host) const {
  const obs::MetricsExporter& ex = *exporters_[host];
  os << "{\n";
  os << "  \"host\": " << host << ",\n";
  os << "  \"instance\": \"" << json_escape(ex.instance()) << "\",\n";
  os << "  \"at\": " << sim_.now() << ",\n";
  os << "  \"down_since\": " << down_since_[host] << ",\n";
  os << "  \"dark\": " << (slo_.dark(host) ? "true" : "false") << ",\n";
  os << "  \"consecutive_misses\": " << slo_.consecutive_misses(host) << ",\n";
  os << "  \"stale\": " << (tsdb_.stale(host) ? "true" : "false") << ",\n";
  os << "  \"stale_since\": "
     << (tsdb_.stale(host) ? tsdb_.stale_since(host) : -1) << ",\n";
  os << "  \"scrapes\": {\"ok\": " << ok_[host]
     << ", \"failed\": " << failed_[host]
     << ", \"served\": " << ex.scrapes_served()
     << ", \"dropped\": " << ex.scrapes_dropped() << "},\n";
  os << "  \"series\": [";
  bool first_series = true;
  tsdb_.for_each_series(
      host, [&](std::string_view name,
                const std::vector<obs::TimeSeriesStore::Sample>& window,
                const sim::LatencyHistogram& sketch) {
        os << (first_series ? "\n" : ",\n");
        first_series = false;
        os << "    {\"name\": \"" << json_escape(name) << "\", \"samples\": [";
        for (std::size_t i = 0; i < window.size(); ++i) {
          os << (i == 0 ? "" : ", ") << "[" << window[i].time << ", "
             << json_number(window[i].value) << "]";
        }
        os << "], \"sketch\": {\"count\": " << sketch.count()
           << ", \"p50_us\": " << sketch.percentile(50)
           << ", \"p99_us\": " << sketch.percentile(99)
           << ", \"max_us\": " << sketch.max() << "}}";
      });
  os << (first_series ? "" : "\n  ") << "],\n";
  // The tail of the host's typed event ring: the last things the host
  // said before (or while) it went dark.
  const obs::EventRing& ring = cluster_.hosts_[host]->obs().events();
  const std::size_t tail = config_.flight_recorder_tail;
  const std::size_t skip = ring.size() > tail ? ring.size() - tail : 0;
  os << "  \"events_retained\": " << ring.size()
     << ", \"events_dropped\": " << ring.dropped() << ",\n";
  os << "  \"events\": [";
  std::size_t index = 0;
  bool first_event = true;
  ring.for_each([&](const obs::TraceEvent& e) {
    if (index++ < skip) return;
    os << (first_event ? "\n" : ",\n");
    first_event = false;
    os << "    {\"t\": " << e.time << ", \"category\": \""
       << obs::to_string(e.category) << "\", \"kind\": \""
       << obs::to_string(e.kind) << "\", \"subject\": " << e.subject
       << ", \"a\": " << e.a << ", \"b\": " << e.b << ", \"label\": \""
       << json_escape(e.label) << "\"}";
  });
  os << (first_event ? "" : "\n  ") << "]\n";
  os << "}\n";
}

std::uint64_t MetricsScraper::state_digest() const {
  std::uint64_t h = 0;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(stats_.rounds_started);
  mix(stats_.rounds_completed);
  mix(stats_.scrapes_ok);
  mix(stats_.scrapes_failed);
  mix(stats_.bytes_transferred);
  mix(stats_.detections);
  mix(blocked_ ? 1 : 0);
  for (std::size_t i = 0; i < ok_.size(); ++i) {
    mix(ok_[i]);
    mix(failed_[i]);
    mix(std::bit_cast<std::uint64_t>(down_since_[i]));
    mix(flagged_[i]);
  }
  for (const FlightRecord& r : flight_records_) {
    mix(r.host);
    mix(std::bit_cast<std::uint64_t>(r.at));
  }
  mix(detection_hist_.count());
  mix(std::bit_cast<std::uint64_t>(detection_hist_.sum()));
  mix(tsdb_.state_digest());
  mix(slo_.state_digest());
  for (const auto& ex : exporters_) {
    mix(ex->scrapes_served());
    mix(ex->scrapes_dropped());
  }
  return h;
}

}  // namespace rh::cluster
