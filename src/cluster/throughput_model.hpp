// Analytic cluster-throughput timelines of Figure 9.
//
// m hosts each contribute throughput p. During a VMM rejuvenation of one
// host the cluster delivers (m-1)p; afterwards a cold-rebooted host also
// runs at reduced throughput (m - delta)p while its caches refill. Under
// live migration one host is permanently reserved as the migration target
// ((m-1)p baseline) and the migrating host loses a fraction during the
// (long) migration window.
#pragma once

#include <vector>

#include "cluster/migration.hpp"
#include "simcore/types.hpp"

namespace rh::cluster {

struct ClusterThroughputParams {
  int hosts = 4;                     ///< m
  double per_host_throughput = 1.0;  ///< p (arbitrary unit)

  // Host-level measurements (defaults: the paper's 11-VM JBoss results).
  double warm_downtime_s = 42.0;
  double cold_downtime_s = 241.0;
  /// delta: fractional throughput loss of the rejuvenated host while its
  /// file caches refill after a cold reboot (Sec. 5.5: 0.69).
  double cold_cache_delta = 0.69;
  /// How long the cache-refill degradation lasts (Fig. 7: ~8 s for the
  /// measured web workload).
  double cold_cache_window_s = 8.0;

  // Live migration (Sec. 6: 17 min to evacuate 11 x 1 GiB, 12 % loss).
  double migration_duration_s = 17.0 * 60.0;
  double migration_degradation = 0.12;
};

enum class ClusterStrategy : std::uint8_t { kWarm, kCold, kLiveMigration };

[[nodiscard]] const char* to_string(ClusterStrategy s);

class ClusterThroughputModel {
 public:
  explicit ClusterThroughputModel(ClusterThroughputParams params);

  /// Total cluster throughput `t_s` seconds after one host's rejuvenation
  /// begins.
  [[nodiscard]] double throughput_at(ClusterStrategy strategy, double t_s) const;

  /// Throughput-seconds lost versus the no-rejuvenation ideal (m*p for
  /// warm/cold; note migration's loss grows without bound because a host
  /// is reserved permanently -- we report it over [0, horizon]).
  [[nodiscard]] double lost_work(ClusterStrategy strategy, double horizon_s) const;

  /// Sampled timeline for printing/plotting.
  struct Point {
    double t_s = 0.0;
    double warm = 0.0;
    double cold = 0.0;
    double migration = 0.0;
  };
  [[nodiscard]] std::vector<Point> series(double horizon_s, double step_s) const;

  [[nodiscard]] const ClusterThroughputParams& params() const { return params_; }

 private:
  ClusterThroughputParams params_;
};

}  // namespace rh::cluster
