// A simulated cluster: m full hosts behind a load balancer, with rolling
// VMM rejuvenation (the Section 6 scenario, simulated rather than only
// analysed).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cluster/load_balancer.hpp"
#include "rejuv/reboot_driver.hpp"

namespace rh::cluster {

class Cluster {
 public:
  struct Config {
    int hosts = 3;
    int vms_per_host = 4;
    sim::Bytes vm_memory = sim::kGiB;
    int files_per_vm = 50;
    sim::Bytes file_size = 512 * sim::kKiB;
    Calibration calib;
    /// Base RNG seed; host h is seeded with `seed + h`. The default keeps
    /// the historical single-run behaviour; replicated experiments pass a
    /// per-replication seed from exp::ReplicationContext.
    std::uint64_t seed = 1000;
  };

  Cluster(sim::Simulation& sim, Config config);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Starts every host instantly, then creates and boots all VMs (taking
  /// simulated time); registers each VM's web server with the balancer.
  /// `on_ready` fires when every backend answers.
  void start(std::function<void()> on_ready);

  [[nodiscard]] int host_count() const { return config_.hosts; }
  [[nodiscard]] vmm::Host& host(int i);
  [[nodiscard]] guest::GuestOs& guest(int host, int vm);
  [[nodiscard]] std::vector<guest::GuestOs*> guests_of(int host);
  [[nodiscard]] LoadBalancer& balancer() { return balancer_; }

  /// Rejuvenates every host's VMM in turn (never two at once), using the
  /// given reboot strategy. `on_done` fires after the last host is back.
  void rolling_rejuvenation(rejuv::RebootKind kind, std::function<void()> on_done);

  /// Duration of each host's rejuvenation in the last rolling pass.
  [[nodiscard]] const std::vector<sim::Duration>& rejuvenation_durations() const {
    return durations_;
  }

 private:
  void rejuvenate_from(std::size_t host_index, rejuv::RebootKind kind,
                       std::function<void()> on_done);

  sim::Simulation& sim_;
  Config config_;
  std::vector<std::unique_ptr<vmm::Host>> hosts_;
  std::vector<std::vector<std::unique_ptr<guest::GuestOs>>> guests_;
  LoadBalancer balancer_;
  std::unique_ptr<rejuv::RebootDriver> active_driver_;
  std::vector<sim::Duration> durations_;
};

}  // namespace rh::cluster
