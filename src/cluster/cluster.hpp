// A simulated cluster: m full hosts behind a load balancer, with rolling
// VMM rejuvenation (the Section 6 scenario, simulated rather than only
// analysed).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/load_balancer.hpp"
#include "cluster/sharded_balancer.hpp"
#include "fault/fault.hpp"
#include "obs/slo.hpp"
#include "obs/tsdb.hpp"
#include "rejuv/reboot_driver.hpp"
#include "rejuv/recovery_driver.hpp"
#include "rejuv/supervisor.hpp"

namespace rh::cluster {

class MetricsScraper;

class Cluster {
 public:
  struct Config {
    int hosts = 3;
    int vms_per_host = 4;
    sim::Bytes vm_memory = sim::kGiB;
    int files_per_vm = 50;
    sim::Bytes file_size = 512 * sim::kKiB;
    Calibration calib;
    /// Base RNG seed; host h is seeded with `seed + h`. The default keeps
    /// the historical single-run behaviour; replicated experiments pass a
    /// per-replication seed from exp::ReplicationContext.
    std::uint64_t seed = 1000;
    /// Per-host fault plan. All-zero (the default) arms nothing and draws
    /// nothing, so fault-free clusters reproduce historical runs exactly.
    fault::FaultConfig faults;
    /// Enables every host's typed observer (events/spans/metrics) plus the
    /// cluster-level rolling-pass spans. Off by default: disabled
    /// observability is one predicted branch per site and the run stays
    /// byte-identical to pre-observability builds.
    bool observe = false;
    /// Conservative parallel-in-run engine (DESIGN.md §11), non-owning.
    /// When set it must have exactly 1 + shards + hosts partitions:
    /// partition 0 is the control plane (balancer + client fleet +
    /// rolling-pass control, driven by the engine's partition(0)
    /// Simulation, which must be the `sim` passed to the constructor),
    /// balancer shard s lives on partition 1 + s, and host h lives on
    /// partition 1 + shards + h. All cross-host interaction then flows
    /// through the engine's mailboxes; results are bitwise identical for
    /// any worker count, but not byte-identical to the null-engine fast
    /// path (balancer RPCs gain real link latency). Null (default):
    /// today's single-calendar behaviour, byte-identical to historical
    /// runs.
    sim::ParallelSimulation* engine = nullptr;
    /// Balancer shards (DESIGN.md §12). 0 (default): the single
    /// LoadBalancer only, byte-identical to historical runs. > 0: a
    /// ShardedBalancer is built alongside it, every VM pre-registered
    /// with its host's shard (host h's backends belong to shard
    /// h % shards); under the engine each shard gets its own partition
    /// so dispatch is parallel-in-run. Eviction/pressure decisions from
    /// supervised rolling passes propagate to both balancers.
    int shards = 0;
  };

  /// Knobs for the supervised rolling pass (rolling_rejuvenation_supervised).
  struct SupervisionConfig {
    rejuv::SupervisorConfig supervisor;
    /// A host whose pass left VMs unrecovered is evicted from the balancer
    /// and retried at the end of the pass, up to this many times, with
    /// capped exponential backoff between attempts.
    int max_host_retries = 2;
    sim::Duration host_retry_base = 30 * sim::kMinute;
    sim::Duration host_retry_cap = 2 * sim::kHour;
  };

  /// Outcome of one supervised rolling pass.
  struct RollingReport {
    /// One report per supervisor run, in execution order (initial pass
    /// over every host, then end-of-pass host retries).
    std::vector<rejuv::SupervisorReport> passes;
    /// Hosts evicted mid-pass because their ladder exhausted.
    std::vector<std::size_t> evicted_hosts;
    /// Evicted hosts brought back by the end-of-pass retries.
    std::vector<std::size_t> recovered_hosts;
    /// Hosts still evicted when the pass ended (retries exhausted too).
    std::vector<std::size_t> failed_hosts;
    /// Hosts whose pass succeeded but whose admission controller reported
    /// preserved-memory pressure (demand over budget). They stay in
    /// service as a last resort, but the balancer stops preferring them
    /// (LoadBalancer::set_host_pressured) -- backpressure instead of
    /// deepening the overcommit.
    std::vector<std::size_t> pressured_hosts;
    [[nodiscard]] bool fully_recovered() const { return failed_hosts.empty(); }
  };

  Cluster(sim::Simulation& sim, Config config);
  ~Cluster();  ///< out-of-line: scraper_ is a unique_ptr of a fwd decl
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Starts every host instantly, then creates and boots all VMs (taking
  /// simulated time); registers each VM's web server with the balancer.
  /// `on_ready` fires when every backend answers. Call while the engine
  /// (if any) is quiescent, then drive the engine: on_ready fires on the
  /// control partition once the boot events have run.
  void start(std::function<void()> on_ready);

  /// Partition carrying host `i` under the parallel engine
  /// (1 + shards + i), or 0 when the cluster runs on a single calendar.
  [[nodiscard]] std::int32_t partition_of(int i) const {
    return config_.engine != nullptr ? 1 + config_.shards + i : 0;
  }

  [[nodiscard]] int host_count() const { return config_.hosts; }
  [[nodiscard]] vmm::Host& host(int i);
  [[nodiscard]] guest::GuestOs& guest(int host, int vm);
  [[nodiscard]] std::vector<guest::GuestOs*> guests_of(int host);
  [[nodiscard]] LoadBalancer& balancer() { return balancer_; }
  /// The sharded control plane; null unless Config::shards > 0.
  [[nodiscard]] ShardedBalancer* sharded_balancer() { return sharded_.get(); }

  /// Rejuvenates every host's VMM in turn (never two at once), using the
  /// given reboot strategy. `on_done` fires after the last host is back.
  /// Overlapping passes are an invariant violation: a second call while a
  /// pass is in flight would silently drop the first pass's driver
  /// mid-reboot, so it fails fast instead. Partitioned mode: invoke from
  /// control-partition context (engine.run_on(0, ...)) -- each turn hops
  /// to the host's partition and back through the mailboxes.
  void rolling_rejuvenation(rejuv::RebootKind kind, std::function<void()> on_done);

  /// Fault-tolerant rolling pass: each host runs under a rejuv::Supervisor
  /// (watchdogs, retries, the warm->saved->cold degradation ladder). A
  /// host whose ladder exhausts is evicted from the balancer and the pass
  /// continues; evicted hosts are retried with backoff once the pass has
  /// covered every other host. Same overlap rule as the plain pass.
  void rolling_rejuvenation_supervised(
      SupervisionConfig config,
      std::function<void(const RollingReport&)> on_done);

  /// Where rolling_rejuvenation_waves reads its per-host ordering
  /// signals from.
  enum class WaveSignalSource : std::uint8_t {
    /// Wire-tap: probe every pending host's in-process gauges over the
    /// mailboxes before each wave (the historical behaviour).
    kWireTap,
    /// Production-shaped: read the latest scraped samples from the
    /// MetricsScraper's TimeSeriesStore -- no direct gauge reads at all.
    /// Requires start_scraping(); hosts whose series are missing or
    /// stale are treated as unloaded/unconstrained (the scheduler acts
    /// on what the telemetry shows, not on the truth).
    kScraped,
  };

  /// Knobs for the wave-based rolling pass (rolling_rejuvenation_waves).
  struct WaveConfig {
    /// Hosts rejuvenated concurrently per wave.
    int wave_size = 1;
    /// Global concurrent-downtime budget: never more than this many hosts
    /// down at once, across all causes the scheduler controls. 0 means
    /// "the wave size is the budget". Waves are clamped to the budget.
    int max_concurrent_down = 0;
    rejuv::RebootKind kind = rejuv::RebootKind::kWarm;
    /// Every wave turn runs under a rejuv::Supervisor (watchdogs, retries,
    /// the full degradation ladder incl. micro-recovery). `kind` above
    /// overrides `supervisor.preferred`, so historical call sites keep
    /// their meaning.
    rejuv::SupervisorConfig supervisor;
    /// Signal source for the wave ordering (DESIGN.md §15).
    WaveSignalSource signals = WaveSignalSource::kWireTap;
  };

  /// Knobs for the telemetry plane (DESIGN.md §15): per-host /metrics
  /// exporters scraped by a control-plane MetricsScraper over the
  /// simulated links.
  struct ScrapeConfig {
    /// Scrape round cadence. Every host is scraped once per round.
    sim::Duration interval = 15 * sim::kSecond;
    /// A scrape unanswered for this long counts as failed; must exceed
    /// the round-trip link latency and fit inside the interval.
    sim::Duration timeout = 2 * sim::kSecond;
    obs::TimeSeriesStore::Config tsdb;
    obs::SloConfig slo;
    /// Let the SLO evaluator's burn-rate rule pause wave admission.
    bool gate_admission = true;
    /// EventRing tail length snapshotted into flight-recorder dumps.
    std::size_t flight_recorder_tail = 64;
  };

  /// Arms the telemetry plane: one MetricsExporter per host (on the
  /// host's own partition) and a control-plane scraper round every
  /// `interval`, paying real link latency both ways and timing out on
  /// hosts that are down. Scraping off (the default) schedules nothing
  /// and the run stays byte-identical to pre-telemetry builds. Call
  /// while the engine (if any) is quiescent.
  void start_scraping(const ScrapeConfig& config);
  /// Stops future scrape rounds (in-flight ones resolve); the scraper
  /// and its TimeSeriesStore stay readable. Quiescent callers only.
  void stop_scraping();
  /// The telemetry plane, or null before start_scraping().
  [[nodiscard]] MetricsScraper* scraper() { return scraper_.get(); }

  /// Knobs for steady in-service faults at cluster scale (DESIGN.md §14).
  struct SteadyFaultsConfig {
    /// Per-host check cadence; the rates come from Config::faults.
    fault::SteadyFaultProcess::Config process;
    /// Ladder template for every unplanned failure (micro-recovery etc.).
    rejuv::SupervisorConfig supervisor;
  };

  /// Control-plane accounting of unplanned (steady-fault) downtime.
  struct UnplannedReport {
    std::uint64_t failures = 0;  ///< steady faults that started a ladder
    std::uint64_t absorbed = 0;  ///< arrivals covered by in-flight recovery
    std::uint64_t recoveries = 0;
    std::uint64_t micro_recoveries = 0;
    std::uint64_t unrecovered = 0;  ///< ladders that exhausted (host evicted)
    /// Summed unplanned ladder durations (host-level wall of downtime).
    sim::Duration downtime = 0;
  };

  /// Arms a SteadyFaultProcess plus a rejuv::RecoveryDriver on every
  /// host's own partition: hosts crash and recover in service, each
  /// failure is answered by a fresh supervised ladder (or absorbed when a
  /// planned wave turn already owns the host), and outcomes are notified
  /// to the control plane over the mailboxes -- crash-evicting/readmitting
  /// the host's backends on every balancer and steering wave admission.
  /// With both steady rates zero nothing is scheduled and no RNG is drawn,
  /// so fault-free runs stay digest-identical. Call while the engine (if
  /// any) is quiescent.
  void start_steady_faults(const SteadyFaultsConfig& config);
  /// Disarms every host's steady process. Quiescent callers only.
  void stop_steady_faults();
  [[nodiscard]] const UnplannedReport& unplanned_report() const {
    return unplanned_;
  }
  /// Hosts the control plane currently believes to be crash-down.
  [[nodiscard]] std::size_t unplanned_down_hosts() const;

  /// Outcome of one wave-based rolling pass.
  struct WaveReport {
    struct Wave {
      /// Hosts in this wave, in the order the scheduler picked them.
      std::vector<std::size_t> hosts;
      /// Ladder outcome of each host in this wave, in *completion* order
      /// (a wave's hosts finish in signal-dependent order;
      /// outcome_hosts[i] names the host whose ladder produced
      /// outcomes[i]).
      std::vector<std::size_t> outcome_hosts;
      std::vector<rejuv::SupervisorReport> outcomes;
      sim::SimTime started = 0;
      sim::SimTime finished = 0;
    };
    std::vector<Wave> waves;
    std::size_t hosts_rejuvenated = 0;
    /// Hosts that came back, but on a lower rung than the wave asked for
    /// (completed != attempted: a mid-wave ladder descent).
    std::vector<std::size_t> degraded_hosts;
    /// Hosts whose ladder exhausted with VMs unrecovered; evicted from
    /// every balancer (waves have no end-of-pass retry queue). With steady
    /// faults armed this also lists hosts an *unplanned* ladder lost while
    /// they were still pending -- the pass skips them instead of running a
    /// turn on a dead host.
    std::vector<std::size_t> unrecovered_hosts;
    /// Planned host-level downtime: summed wave-turn ladder durations
    /// (the unplanned share lives in Cluster::unplanned_report()).
    sim::Duration planned_downtime = 0;
    /// Times wave admission paused because unplanned crashes exhausted the
    /// concurrent-downtime budget (or every pending host was crash-down);
    /// the next unplanned recovery replans and resumes the pass.
    std::size_t admission_pauses = 0;
    /// Wave turns that arrived at a host an unplanned ladder already
    /// owned; the turn was requeued and replanned, not run.
    std::size_t deferred_turns = 0;
    [[nodiscard]] bool fully_recovered() const {
      return unrecovered_hosts.empty();
    }
  };

  /// Wave-based rolling pass: rejuvenates wave_size hosts per wave, a
  /// barrier between waves, under the concurrent-downtime budget. Each
  /// host's turn runs under a rejuv::Supervisor, so a mid-wave fault walks
  /// the degradation ladder (micro-recovery, warm->saved->cold) instead of
  /// aborting the pass; outcomes land in the WaveReport and a host left
  /// unrecovered is evicted from every balancer. Before
  /// each wave the scheduler gathers live signals from every pending host
  /// -- served-request load and preserved-budget headroom, mirrored into
  /// the host's MetricsRegistry when observability is on -- and
  /// rejuvenates the least-loaded hosts first (tie-break: smaller
  /// headroom, then host index), so the wave drains as few active
  /// sessions as possible while prioritising memory-tight hosts.
  /// Signals are gathered over the mailboxes under the engine, so the
  /// schedule is bitwise reproducible for any worker count. Same overlap
  /// rule as the other passes. Partitioned mode: invoke from
  /// control-partition context (engine.run_on(0, ...)).
  void rolling_rejuvenation_waves(
      WaveConfig config, std::function<void(const WaveReport&)> on_done);

  /// Report of the last wave-based pass (valid after it completes).
  [[nodiscard]] const WaveReport& last_wave_report() const {
    return wave_report_;
  }

  /// True while either flavour of rolling pass is in flight.
  [[nodiscard]] bool rolling_in_progress() const { return rolling_in_progress_; }

  /// Report of the last supervised rolling pass (valid after it completes).
  [[nodiscard]] const RollingReport& last_rolling_report() const {
    return rolling_report_;
  }

  /// Duration of each host's rejuvenation in the last rolling pass.
  [[nodiscard]] const std::vector<sim::Duration>& rejuvenation_durations() const {
    return durations_;
  }

 private:
  friend class MetricsScraper;

  void register_backend(guest::GuestOs* os,
                        const std::shared_ptr<std::size_t>& remaining,
                        const std::shared_ptr<std::function<void()>>& ready);
  void rejuvenate_from(std::size_t host_index, rejuv::RebootKind kind,
                       std::function<void()> on_done);
  /// Partitioned rolling turn: hops to the host's partition, runs the
  /// reboot driver there, and posts the completion (with the measured
  /// duration) back to the control partition.
  void rejuvenate_remote(std::size_t host_index, rejuv::RebootKind kind,
                         std::function<void()> on_done);
  void supervise_from(std::size_t host_index,
                      std::function<void(const RollingReport&)> on_done);
  void supervise_remote(std::size_t host_index,
                        std::function<void(const RollingReport&)> on_done);
  void recover_remote(std::size_t queue_index, int attempt,
                      std::size_t host_index,
                      std::function<void(const RollingReport&)> on_done);
  void retry_evicted(std::size_t queue_index, int attempt,
                     std::function<void(const RollingReport&)> on_done);
  void finish_rolling(std::function<void(const RollingReport&)> on_done);
  [[nodiscard]] sim::Duration host_retry_backoff(int attempt) const;
  /// Applies an administrative eviction / pressure decision to every
  /// balancer the cluster runs (the single LoadBalancer and, when
  /// sharded, every shard's membership view).
  void set_host_out_of_rotation(std::size_t host_index, bool evicted);
  void set_host_backpressured(std::size_t host_index, bool pressured);
  /// (served-request load, preserved-budget headroom) for one host; runs
  /// on the host's partition under the engine and mirrors the signals
  /// into the host's MetricsRegistry when observability is on.
  [[nodiscard]] std::pair<std::uint64_t, std::int64_t> host_signals(
      std::size_t host_index);
  /// Exporter-side collection hook: recomputes the wave signals (and a
  /// few host facts) into the host's MetricsRegistry unconditionally --
  /// scraping may run with Config::observe off, where host_signals()
  /// would skip the mirror. Runs on the host's partition.
  void collect_host_metrics(std::size_t host_index);
  /// The scraper's SLO gate (control partition): while blocked,
  /// wave_launch admits nothing; clearing the block kicks a paused pass.
  void set_scrape_admission_blocked(bool blocked);
  /// Crash-evict/readmit: unplanned membership changes compose with
  /// administrative evictions instead of overwriting them.
  void apply_crash_rotation(std::size_t host_index, bool crashed);
  /// Host-partition handler for one steady fault arrival.
  void steady_fault(std::size_t host_index, fault::FaultKind kind);
  /// Control-partition notifications from the per-host recovery drivers.
  void on_unplanned_down(std::size_t host_index);
  void on_unplanned_outcome(std::size_t host_index, bool success, bool micro,
                            sim::Duration took);
  /// Runs `fn` on the control partition (posted under the engine, inline
  /// on the single calendar).
  void to_control(std::function<void()> fn);
  void wave_gather();
  void wave_collect(std::size_t host_index, std::uint64_t load,
                    std::int64_t headroom);
  void wave_launch();
  void wave_run_host(std::size_t host_index);
  void wave_host_done(std::size_t host_index, rejuv::SupervisorReport report);
  /// A launched turn found its host owned by an unplanned ladder: requeue.
  void wave_host_deferred(std::size_t host_index);
  /// Resumes a paused pass after an unplanned recovery (replans from the
  /// next signal gather).
  void wave_kick();

  sim::Simulation& sim_;
  Config config_;
  std::vector<std::unique_ptr<vmm::Host>> hosts_;
  std::vector<std::vector<std::unique_ptr<guest::GuestOs>>> guests_;
  LoadBalancer balancer_;
  std::unique_ptr<ShardedBalancer> sharded_;
  std::unique_ptr<rejuv::RebootDriver> active_driver_;
  std::unique_ptr<rejuv::Supervisor> active_supervisor_;
  /// Partitioned mode: per-host driver/supervisor slots, created and
  /// destroyed only in the owning host's partition context (the window
  /// barriers order those accesses against the control partition).
  std::vector<std::unique_ptr<rejuv::RebootDriver>> host_drivers_;
  std::vector<std::unique_ptr<rejuv::Supervisor>> host_supervisors_;
  std::vector<sim::Duration> durations_;
  bool rolling_in_progress_ = false;
  SupervisionConfig supervision_;
  RollingReport rolling_report_;
  std::vector<std::size_t> retry_queue_;
  /// In-flight wave pass. The gather fan-out and the wave barrier both
  /// count down control-side, so all mutation happens on partition 0.
  struct WaveState {
    WaveConfig config;
    std::function<void(const WaveReport&)> on_done;
    std::vector<std::uint8_t> scheduled;  ///< host already covered
    std::vector<std::uint64_t> load;
    std::vector<std::int64_t> headroom;
    std::size_t replies_pending = 0;
    std::size_t inflight = 0;
    std::size_t remaining = 0;
    /// Admission paused on an exhausted crash budget; an unplanned
    /// recovery clears it and re-gathers.
    bool paused = false;
  };
  std::unique_ptr<WaveState> wave_;
  WaveReport wave_report_;
  /// Per-host steady fault machinery; each slot is constructed, driven and
  /// destroyed on its host's own partition.
  struct SteadySlot {
    std::unique_ptr<fault::SteadyFaultProcess> process;
    std::unique_ptr<rejuv::RecoveryDriver> driver;
  };
  std::vector<SteadySlot> steady_slots_;
  bool steady_started_ = false;
  /// Control-plane crash state (all mutated on partition 0 only).
  UnplannedReport unplanned_;
  std::vector<std::uint8_t> crash_down_;       ///< unplanned ladder in flight
  std::vector<std::uint8_t> crash_evicted_;    ///< crash-evicted from rotation
  std::vector<std::uint8_t> admin_evicted_;    ///< planned/ladder eviction
  /// Hosts that just micro-recovered; deprioritised in the next wave sort
  /// (cleared once the pass schedules them).
  std::vector<std::uint8_t> recently_recovered_;
  /// Telemetry plane (DESIGN.md §15); null until start_scraping().
  std::unique_ptr<MetricsScraper> scraper_;
  /// SLO burn-rate gate: wave admission pauses while set.
  bool scrape_blocked_ = false;
};

}  // namespace rh::cluster
