// A simulated cluster: m full hosts behind a load balancer, with rolling
// VMM rejuvenation (the Section 6 scenario, simulated rather than only
// analysed).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cluster/load_balancer.hpp"
#include "rejuv/reboot_driver.hpp"
#include "rejuv/supervisor.hpp"

namespace rh::cluster {

class Cluster {
 public:
  struct Config {
    int hosts = 3;
    int vms_per_host = 4;
    sim::Bytes vm_memory = sim::kGiB;
    int files_per_vm = 50;
    sim::Bytes file_size = 512 * sim::kKiB;
    Calibration calib;
    /// Base RNG seed; host h is seeded with `seed + h`. The default keeps
    /// the historical single-run behaviour; replicated experiments pass a
    /// per-replication seed from exp::ReplicationContext.
    std::uint64_t seed = 1000;
    /// Per-host fault plan. All-zero (the default) arms nothing and draws
    /// nothing, so fault-free clusters reproduce historical runs exactly.
    fault::FaultConfig faults;
    /// Enables every host's typed observer (events/spans/metrics) plus the
    /// cluster-level rolling-pass spans. Off by default: disabled
    /// observability is one predicted branch per site and the run stays
    /// byte-identical to pre-observability builds.
    bool observe = false;
    /// Conservative parallel-in-run engine (DESIGN.md §11), non-owning.
    /// When set it must have exactly hosts + 1 partitions: partition 0 is
    /// the control plane (balancer + client fleet + rolling-pass control,
    /// driven by the engine's partition(0) Simulation, which must be the
    /// `sim` passed to the constructor) and host h lives on partition
    /// 1 + h. All cross-host interaction then flows through the engine's
    /// mailboxes; results are bitwise identical for any worker count, but
    /// not byte-identical to the null-engine fast path (balancer RPCs
    /// gain real link latency). Null (default): today's single-calendar
    /// behaviour, byte-identical to historical runs.
    sim::ParallelSimulation* engine = nullptr;
  };

  /// Knobs for the supervised rolling pass (rolling_rejuvenation_supervised).
  struct SupervisionConfig {
    rejuv::SupervisorConfig supervisor;
    /// A host whose pass left VMs unrecovered is evicted from the balancer
    /// and retried at the end of the pass, up to this many times, with
    /// capped exponential backoff between attempts.
    int max_host_retries = 2;
    sim::Duration host_retry_base = 30 * sim::kMinute;
    sim::Duration host_retry_cap = 2 * sim::kHour;
  };

  /// Outcome of one supervised rolling pass.
  struct RollingReport {
    /// One report per supervisor run, in execution order (initial pass
    /// over every host, then end-of-pass host retries).
    std::vector<rejuv::SupervisorReport> passes;
    /// Hosts evicted mid-pass because their ladder exhausted.
    std::vector<std::size_t> evicted_hosts;
    /// Evicted hosts brought back by the end-of-pass retries.
    std::vector<std::size_t> recovered_hosts;
    /// Hosts still evicted when the pass ended (retries exhausted too).
    std::vector<std::size_t> failed_hosts;
    /// Hosts whose pass succeeded but whose admission controller reported
    /// preserved-memory pressure (demand over budget). They stay in
    /// service as a last resort, but the balancer stops preferring them
    /// (LoadBalancer::set_host_pressured) -- backpressure instead of
    /// deepening the overcommit.
    std::vector<std::size_t> pressured_hosts;
    [[nodiscard]] bool fully_recovered() const { return failed_hosts.empty(); }
  };

  Cluster(sim::Simulation& sim, Config config);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Starts every host instantly, then creates and boots all VMs (taking
  /// simulated time); registers each VM's web server with the balancer.
  /// `on_ready` fires when every backend answers. Call while the engine
  /// (if any) is quiescent, then drive the engine: on_ready fires on the
  /// control partition once the boot events have run.
  void start(std::function<void()> on_ready);

  /// Partition carrying host `i` under the parallel engine (1 + i), or 0
  /// when the cluster runs on a single calendar.
  [[nodiscard]] std::int32_t partition_of(int i) const {
    return config_.engine != nullptr ? 1 + i : 0;
  }

  [[nodiscard]] int host_count() const { return config_.hosts; }
  [[nodiscard]] vmm::Host& host(int i);
  [[nodiscard]] guest::GuestOs& guest(int host, int vm);
  [[nodiscard]] std::vector<guest::GuestOs*> guests_of(int host);
  [[nodiscard]] LoadBalancer& balancer() { return balancer_; }

  /// Rejuvenates every host's VMM in turn (never two at once), using the
  /// given reboot strategy. `on_done` fires after the last host is back.
  /// Overlapping passes are an invariant violation: a second call while a
  /// pass is in flight would silently drop the first pass's driver
  /// mid-reboot, so it fails fast instead. Partitioned mode: invoke from
  /// control-partition context (engine.run_on(0, ...)) -- each turn hops
  /// to the host's partition and back through the mailboxes.
  void rolling_rejuvenation(rejuv::RebootKind kind, std::function<void()> on_done);

  /// Fault-tolerant rolling pass: each host runs under a rejuv::Supervisor
  /// (watchdogs, retries, the warm->saved->cold degradation ladder). A
  /// host whose ladder exhausts is evicted from the balancer and the pass
  /// continues; evicted hosts are retried with backoff once the pass has
  /// covered every other host. Same overlap rule as the plain pass.
  void rolling_rejuvenation_supervised(
      SupervisionConfig config,
      std::function<void(const RollingReport&)> on_done);

  /// True while either flavour of rolling pass is in flight.
  [[nodiscard]] bool rolling_in_progress() const { return rolling_in_progress_; }

  /// Report of the last supervised rolling pass (valid after it completes).
  [[nodiscard]] const RollingReport& last_rolling_report() const {
    return rolling_report_;
  }

  /// Duration of each host's rejuvenation in the last rolling pass.
  [[nodiscard]] const std::vector<sim::Duration>& rejuvenation_durations() const {
    return durations_;
  }

 private:
  void register_backend(guest::GuestOs* os,
                        const std::shared_ptr<std::size_t>& remaining,
                        const std::shared_ptr<std::function<void()>>& ready);
  void rejuvenate_from(std::size_t host_index, rejuv::RebootKind kind,
                       std::function<void()> on_done);
  /// Partitioned rolling turn: hops to the host's partition, runs the
  /// reboot driver there, and posts the completion (with the measured
  /// duration) back to the control partition.
  void rejuvenate_remote(std::size_t host_index, rejuv::RebootKind kind,
                         std::function<void()> on_done);
  void supervise_from(std::size_t host_index,
                      std::function<void(const RollingReport&)> on_done);
  void supervise_remote(std::size_t host_index,
                        std::function<void(const RollingReport&)> on_done);
  void recover_remote(std::size_t queue_index, int attempt,
                      std::size_t host_index,
                      std::function<void(const RollingReport&)> on_done);
  void retry_evicted(std::size_t queue_index, int attempt,
                     std::function<void(const RollingReport&)> on_done);
  void finish_rolling(std::function<void(const RollingReport&)> on_done);
  [[nodiscard]] sim::Duration host_retry_backoff(int attempt) const;

  sim::Simulation& sim_;
  Config config_;
  std::vector<std::unique_ptr<vmm::Host>> hosts_;
  std::vector<std::vector<std::unique_ptr<guest::GuestOs>>> guests_;
  LoadBalancer balancer_;
  std::unique_ptr<rejuv::RebootDriver> active_driver_;
  std::unique_ptr<rejuv::Supervisor> active_supervisor_;
  /// Partitioned mode: per-host driver/supervisor slots, created and
  /// destroyed only in the owning host's partition context (the window
  /// barriers order those accesses against the control partition).
  std::vector<std::unique_ptr<rejuv::RebootDriver>> host_drivers_;
  std::vector<std::unique_ptr<rejuv::Supervisor>> host_supervisors_;
  std::vector<sim::Duration> durations_;
  bool rolling_in_progress_ = false;
  SupervisionConfig supervision_;
  RollingReport rolling_report_;
  std::vector<std::size_t> retry_queue_;
};

}  // namespace rh::cluster
