// Cluster load balancer and cluster-level client fleet (Section 6).
//
// "multiple hosts provide the same service and a load balancer dispatches
// requests to one of these hosts. Even if some of the hosts are rebooted
// ... the service downtime is zero" -- but total throughput drops while a
// host is down. The balancer skips unreachable backends, so the cluster
// keeps answering during a rolling rejuvenation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "guest/apache.hpp"
#include "guest/guest_os.hpp"
#include "simcore/parallel.hpp"
#include "simcore/time_series.hpp"

namespace rh::cluster {

class LoadBalancer {
 public:
  struct Backend {
    guest::GuestOs* os = nullptr;
    guest::ApacheService* apache = nullptr;
    std::vector<std::int64_t> files;  ///< replicated content on this backend
    /// Event partition the backend's host lives on (-1 = same partition
    /// as the balancer, i.e. the sequential fast path).
    std::int32_t partition = -1;
  };

  void add_backend(Backend backend);

  /// Partitioned mode: the balancer lives on `self_partition` of `engine`
  /// and reaches backends on other partitions via request/reply RPCs with
  /// one-way latency `rpc_latency` (>= the engine lookahead). In this
  /// mode dispatch() must be called from inside partition execution
  /// (seed control flow with ParallelSimulation::run_on). Reachability is
  /// probed host-side, but the serve decision is made balancer-side when
  /// the probe reply lands, after re-checking the slot's membership
  /// flags: a backend evicted while its probe was in flight is skipped,
  /// never resurrected by the stale reply. Deterministic, but not
  /// byte-identical to the sequential path (probe + serve RPC pairs add
  /// 4x one-way latency).
  void bind_parallel(sim::ParallelSimulation& engine, std::int32_t self_partition,
                     sim::Duration rpc_latency);

  [[nodiscard]] std::size_t backend_count() const { return backends_.size(); }
  /// Counts backends answering right now. Reads host-side state, so in
  /// partitioned mode call it only while the engine is quiescent.
  [[nodiscard]] std::size_t reachable_backends() const;

  /// Administratively removes (or restores) every backend on `host` from
  /// the rotation, independent of reachability. The supervised rolling
  /// rejuvenation evicts a host whose recovery ladder exhausted -- its
  /// surviving VMs may still answer probes, but the operator does not
  /// want traffic on a half-recovered machine until it is fixed.
  void set_host_evicted(const vmm::Host* host, bool evicted);
  [[nodiscard]] std::size_t evicted_backends() const;

  /// Marks (or clears) every backend on `host` as memory-pressured. A
  /// pressured host stays in service but stops receiving new placements:
  /// dispatch only falls back to it when no unpressured backend is
  /// reachable. The supervised rolling pass sets this on hosts whose
  /// admission controller reported preserved-memory pressure (demand
  /// exceeded the budget), so load drains away instead of deepening the
  /// overcommit.
  void set_host_pressured(const vmm::Host* host, bool pressured);
  [[nodiscard]] std::size_t pressured_backends() const;

  /// Dispatches one request round-robin across reachable backends
  /// (preferring unpressured ones); done(false) when no backend is
  /// reachable or the chosen backend went down mid-request.
  void dispatch(std::function<void(bool)> done);

  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }

 private:
  struct Slot {
    Backend backend;
    std::size_t next_file = 0;
    bool evicted = false;
    bool pressured = false;
  };
  /// One in-flight partitioned dispatch: candidates are probed one RPC at
  /// a time (the balancer cannot read a remote host's reachability
  /// synchronously), unpressured backends first, pressured as a last
  /// resort -- the same two-phase policy as the sequential path.
  struct RemoteDispatch {
    std::function<void(bool)> done;
    bool allow_pressured = false;
    std::size_t probes_left = 0;
  };
  bool try_dispatch(bool allow_pressured, std::function<void(bool)>& done);
  void remote_try_next(std::shared_ptr<RemoteDispatch> state);
  std::vector<Slot> backends_;
  std::size_t rr_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t rejected_ = 0;
  sim::ParallelSimulation* engine_ = nullptr;
  std::int32_t self_partition_ = -1;
  sim::Duration rpc_latency_ = 0;
};

/// Closed-loop client fleet driving the whole cluster through the
/// balancer; completions feed the Fig. 9-style throughput timeline.
class ClusterClientFleet {
 public:
  struct Config {
    int connections = 16;
    sim::Duration retry_interval = 500 * sim::kMillisecond;
  };

  ClusterClientFleet(sim::Simulation& sim, LoadBalancer& balancer, Config config);
  ClusterClientFleet(const ClusterClientFleet&) = delete;
  ClusterClientFleet& operator=(const ClusterClientFleet&) = delete;

  void start();
  void stop();

  [[nodiscard]] const sim::RateRecorder& completions() const { return completions_; }

 private:
  void issue();

  sim::Simulation& sim_;
  LoadBalancer& balancer_;
  Config config_;
  sim::RateRecorder completions_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace rh::cluster
