// Sharded, federated request dispatch for the datacenter-scale fig9 run.
//
// One LoadBalancer is a scaling bottleneck past tens of hosts: every
// dispatch serialises through a single round-robin cursor on the control
// partition. The ShardedBalancer partitions the session space by
// session-key hash across N shards. Each shard owns a disjoint subset of
// the backends (host h's VMs belong to shard h % N), keeps its own
// round-robin cursor and per-backend file cursors, and -- under the
// parallel engine -- lives on its own event partition so dispatch is
// parallel-in-run (DESIGN.md §12).
//
// Federation: when a shard's own backends are all evicted, pressured or
// unreachable, the request spills over to the next shard in ring order,
// first refusing pressured backends everywhere, then (second lap)
// accepting them as a last resort -- the same two-phase policy as the
// single LoadBalancer, lifted to the ring. Ring order from the home
// shard is a pure function of the session key, so failover is
// deterministic and bitwise identical for any worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "guest/apache.hpp"
#include "guest/guest_os.hpp"
#include "simcore/parallel.hpp"

namespace rh::cluster {

class ShardedBalancer {
 public:
  struct Backend {
    guest::GuestOs* os = nullptr;
    guest::ApacheService* apache = nullptr;
    std::vector<std::int64_t> files;  ///< replicated content on this backend
    std::size_t host_index = 0;       ///< owning host; decides the shard
    /// Event partition the backend's host lives on (-1 = same calendar as
    /// the shards, i.e. the sequential fast path).
    std::int32_t partition = -1;
  };

  explicit ShardedBalancer(std::size_t shards);
  ShardedBalancer(const ShardedBalancer&) = delete;
  ShardedBalancer& operator=(const ShardedBalancer&) = delete;

  /// splitmix64 finaliser: decorrelates dense session keys before the
  /// modulo so shard assignment is uniform even for keys 0..M-1.
  [[nodiscard]] static std::uint64_t hash_key(std::uint64_t key);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t backend_count() const { return backends_.size(); }
  [[nodiscard]] std::size_t home_shard(std::uint64_t key) const {
    return static_cast<std::size_t>(hash_key(key) % shards_.size());
  }

  /// Registers a backend with its owning shard (host_index % shards).
  /// Topology is fixed at setup: call only while the engine (if any) is
  /// quiescent.
  void add_backend(Backend backend);

  /// Partitioned mode: shard s lives on partition first_shard_partition+s
  /// and reaches backends over request/reply RPCs with one-way latency
  /// `rpc_latency` (>= the engine lookahead). dispatch()/dispatch_on()
  /// must then be called from inside partition execution.
  void bind_parallel(sim::ParallelSimulation& engine,
                     std::int32_t first_shard_partition,
                     sim::Duration rpc_latency);

  [[nodiscard]] std::int32_t shard_partition(std::size_t shard) const {
    return engine_ != nullptr
               ? first_shard_partition_ + static_cast<std::int32_t>(shard)
               : -1;
  }

  /// Administratively removes (or restores) every backend on `host_index`
  /// from rotation, on every shard's membership view. Quiescent callers
  /// update the views directly; while the engine runs, the change is
  /// broadcast through the mailboxes and lands on all shards one RPC
  /// latency later (deterministically, like any other message).
  void set_host_evicted(std::size_t host_index, bool evicted);
  /// Same broadcast for the memory-pressure flag: a pressured host stays
  /// in service but only receives requests when nothing unpressured
  /// answers anywhere on the ring.
  void set_host_pressured(std::size_t host_index, bool pressured);
  /// Crash-evict/readmit membership broadcast for *unplanned* downtime
  /// (DESIGN.md §14): takes a crashed host's backends out of every shard's
  /// view like an administrative eviction, but on its own flag so a crash
  /// readmit can never cancel an administrative eviction (or vice versa).
  /// Re-broadcasting the current state is a no-op shard-side, so the
  /// membership counters stay balanced.
  void set_host_crashed(std::size_t host_index, bool crashed);

  /// Dispatches one request for `key` starting at its home shard.
  /// Sequential mode: runs inline. Engine mode: call from inside
  /// partition execution; `done` fires on the calling partition.
  void dispatch(std::uint64_t key, std::function<void(bool)> done);

  /// Fast path for callers already executing on `shard`'s partition (the
  /// batched session fleet pins sessions to shards): skips the initial
  /// routing hop; `done` fires on that same partition.
  void dispatch_on(std::size_t shard, std::uint64_t key,
                   std::function<void(bool)> done);

  /// Aggregate counters (sum over shards). Quiescent reads only.
  [[nodiscard]] std::uint64_t dispatched() const;
  [[nodiscard]] std::uint64_t rejected() const;
  /// Requests served by a shard other than their home shard (spillover).
  [[nodiscard]] std::uint64_t federated() const;
  [[nodiscard]] std::uint64_t shard_dispatched(std::size_t shard) const {
    return shards_[shard].dispatched;
  }
  [[nodiscard]] std::uint64_t shard_rejected(std::size_t shard) const {
    return shards_[shard].rejected;
  }
  [[nodiscard]] std::uint64_t shard_federated(std::size_t shard) const {
    return shards_[shard].federated;
  }
  /// Backends evicted on shard 0's view (all views agree when quiescent).
  [[nodiscard]] std::size_t evicted_backends() const;
  /// Backends crash-evicted on shard 0's view. Quiescent reads only.
  [[nodiscard]] std::size_t crashed_backends() const;
  /// Hosts this shard's view currently knows to be crash-down. Safe to
  /// read from the shard's own partition mid-run: the session fleet uses
  /// it to attribute a beginning outage as planned vs unplanned.
  [[nodiscard]] std::uint32_t shard_unplanned_down(std::size_t shard) const {
    return shards_[shard].crashed_hosts;
  }
  /// Crash-evict/readmit broadcasts applied to shard 0's view (monotone).
  [[nodiscard]] std::uint64_t crash_broadcasts() const {
    return shards_.front().crash_events;
  }

  /// FNV-1a over every shard's cursors and counters; worker-count
  /// invariant under the engine. Quiescent reads only.
  [[nodiscard]] std::uint64_t state_digest() const;

 private:
  /// Per-shard hot state, cache-line padded: under the engine each shard
  /// is touched only from its own partition, so shards never share lines.
  struct alignas(64) Shard {
    std::vector<std::uint32_t> owned;      ///< backend indices, add order
    std::size_t rr = 0;                    ///< shard-local round-robin
    std::vector<std::uint8_t> evicted;     ///< per-backend membership view
    std::vector<std::uint8_t> pressured;   ///< per-backend pressure view
    std::vector<std::uint8_t> crashed;     ///< per-backend crash-down view
    std::vector<std::uint32_t> next_file;  ///< shard-local file cursors
    std::uint64_t dispatched = 0;
    std::uint64_t rejected = 0;
    std::uint64_t federated = 0;
    std::uint32_t crashed_hosts = 0;  ///< hosts currently crash-down here
    std::uint64_t crash_events = 0;   ///< crash broadcasts applied (monotone)
  };
  /// One in-flight request walking the ring. Probes are one RPC at a
  /// time; the reply re-checks the shard's membership view before the
  /// serve is issued (an eviction during the probe's flight must win).
  struct Request {
    std::function<void(bool)> done;
    std::int32_t reply_partition = -1;  ///< where done() must run
    std::uint32_t home_shard = 0;
    std::uint32_t current_shard = 0;
    std::uint32_t shards_left = 0;   ///< ring hops left in this lap
    std::uint32_t probes_left = 0;   ///< candidates left on current shard
    bool allow_pressured = false;    ///< second-lap last-resort flag
  };

  void start_on(std::size_t shard, std::function<void(bool)> done);
  void try_shard(std::shared_ptr<Request> state);
  void probe_reply(bool up, std::uint32_t b, std::shared_ptr<Request> state);
  void serve(Shard& sh, std::uint32_t b, std::shared_ptr<Request> state);
  void next_ring_hop(std::shared_ptr<Request> state);
  [[nodiscard]] std::int32_t backend_partition(std::uint32_t b) const;
  [[nodiscard]] bool quiescent() const {
    return engine_ == nullptr || !engine_->running();
  }

  std::vector<Backend> backends_;  ///< append-only; frozen once running
  std::vector<Shard> shards_;
  sim::ParallelSimulation* engine_ = nullptr;
  std::int32_t first_shard_partition_ = -1;
  sim::Duration rpc_latency_ = 0;
};

}  // namespace rh::cluster
