#include "cluster/migration.hpp"

#include <utility>

#include "simcore/check.hpp"

namespace rh::cluster {

namespace {

sim::Bytes dirtied_during(sim::Duration d, const MigrationConfig& c) {
  return static_cast<sim::Bytes>(sim::to_seconds(d) * c.dirty_bps);
}

}  // namespace

MigrationEstimate estimate_migration(sim::Bytes memory,
                                     const MigrationConfig& config) {
  ensure(memory > 0, "estimate_migration: memory must be positive");
  ensure(config.effective_bps > config.dirty_bps,
         "estimate_migration: dirty rate exceeds transfer rate (never converges)");
  MigrationEstimate est;
  sim::Bytes to_send = memory;
  while (est.rounds < config.max_rounds && to_send > config.stop_threshold) {
    const sim::Duration round = sim::transfer_time(to_send, config.effective_bps);
    est.total += round;
    est.bytes_transferred += to_send;
    to_send = dirtied_during(round, config);
    ++est.rounds;
  }
  est.stop_and_copy = sim::transfer_time(to_send, config.effective_bps);
  est.total += est.stop_and_copy;
  est.bytes_transferred += to_send;
  return est;
}

sim::Duration estimate_host_evacuation(int vm_count, sim::Bytes memory,
                                       const MigrationConfig& config) {
  ensure(vm_count > 0, "estimate_host_evacuation: need VMs");
  return static_cast<sim::Duration>(vm_count) *
         estimate_migration(memory, config).total;
}

MigrationSession::MigrationSession(sim::Simulation& sim, sim::Bytes memory,
                                   MigrationConfig config)
    : sim_(sim), memory_(memory), config_(config) {
  ensure(memory > 0, "MigrationSession: memory must be positive");
  ensure(config.effective_bps > config.dirty_bps,
         "MigrationSession: dirty rate exceeds transfer rate");
}

void MigrationSession::run(std::function<void(const MigrationEstimate&)> on_done) {
  ensure(static_cast<bool>(on_done), "MigrationSession::run: callback required");
  ensure(!running_, "MigrationSession::run: already running");
  running_ = true;
  started_at_ = sim_.now();
  on_done_ = std::move(on_done);
  next_round(memory_);
}

void MigrationSession::next_round(sim::Bytes to_send) {
  const bool final_round =
      rounds_ >= config_.max_rounds || to_send <= config_.stop_threshold;
  const sim::Duration round_time =
      sim::transfer_time(to_send, config_.effective_bps);
  if (final_round) {
    // Stop-and-copy: the VM pauses while the residue moves.
    paused_ = true;
    sim_.after(round_time, [this, to_send, round_time] {
      transferred_ += to_send;
      paused_ = false;
      running_ = false;
      MigrationEstimate est;
      est.total = sim_.now() - started_at_;
      est.stop_and_copy = round_time;
      est.rounds = rounds_;
      est.bytes_transferred = transferred_;
      on_done_(est);
    });
    return;
  }
  sim_.after(round_time, [this, to_send, round_time] {
    transferred_ += to_send;
    ++rounds_;
    next_round(dirtied_during(round_time, config_));
  });
}

}  // namespace rh::cluster
