#include "vmm/host.hpp"

#include <utility>

#include "simcore/check.hpp"

namespace rh::vmm {

Host::Host(sim::Simulation& sim, Calibration calib, std::uint64_t seed)
    : sim_(sim),
      calib_(calib),
      rng_(seed),
      machine_(sim, calib.machine),
      link_(sim, calib.link) {
  calib_.validate();
  preserved_.set_frame_budget(calib_.preserved_frame_budget);
}

sim::Duration Host::jittered(sim::Duration d) {
  if (calib_.timing_jitter <= 0.0 || d <= 0) return d;
  const auto stddev = static_cast<sim::Duration>(
      calib_.timing_jitter * static_cast<double>(d));
  return rng_.normal_duration(d, stddev, d / 2);
}

Vmm& Host::vmm() {
  ensure(vmm_ != nullptr, "Host::vmm: no VMM instance (rebooting?)");
  return *vmm_;
}

std::unique_ptr<Vmm> Host::new_vmm(BootMode mode) {
  ++vmm_generation_;
  return std::make_unique<Vmm>(sim_, calib_, machine_, preserved_, xenstore_,
                               tracer_, rng_, faults_, mode);
}

void Host::configure_faults(const fault::FaultConfig& config) {
  if (!config.enabled()) {
    // Keep the injector disarmed without splitting the RNG: a host that
    // never enables faults draws exactly the same sequence as before this
    // feature existed.
    faults_ = fault::FaultInjector();
    return;
  }
  faults_ = fault::FaultInjector(config, rng_.split());
  tracer_.emit(sim_.now(), "host", "fault injection armed");
  obs_.emit(sim_.now(), obs::Category::kFault, obs::EventKind::kLifecycle,
            "fault injection armed");
}

void Host::crash_vmm() {
  ensure(vmm_ != nullptr, "crash_vmm: no VMM instance to crash");
  tracer_.emit(sim_.now(), "host", "VMM CRASHED (injected): all domains lost");
  obs_.emit(sim_.now(), obs::Category::kHost, obs::EventKind::kLifecycle,
            "vmm crash", -1, vmm_generation_);
  vmm_.reset();
  dom0_state_ = Dom0State::kDown;
  // The crash scribbles over RAM on the way down (no orderly handover), so
  // nothing recorded in the preserved-region registry can be trusted.
  preserved_.clear();
}

void Host::fail_vmm(fault::FaultKind kind) {
  ensure(vmm_ != nullptr, "fail_vmm: no VMM instance to fail");
  ensure(kind == fault::FaultKind::kVmmCrash ||
             kind == fault::FaultKind::kVmmHang,
         "fail_vmm: not a VMM failure kind");
  tracer_.emit(sim_.now(), "host",
               std::string("VMM FAILED (") + fault::to_string(kind) +
                   "): domains frozen in RAM");
  obs_.emit(sim_.now(), obs::Category::kHost, obs::EventKind::kLifecycle,
            fault::to_string(kind), -1, vmm_generation_);
  // The dying instance cuts crash-consistent records of its running
  // domains before control is lost -- ReHype's preserved-state premise.
  // RAM survives, so the registry does too (contrast crash_vmm()).
  vmm_->snapshot_domains_for_recovery();
  vmm_.reset();
  dom0_state_ = Dom0State::kDown;
}

Vmm::MicroRecoveryReport Host::micro_recover_vmm() {
  ensure(vmm_ == nullptr, "micro_recover_vmm: a VMM instance is still up");
  ensure(dom0_state_ == Dom0State::kDown,
         "micro_recover_vmm: dom0 must be down");
  vmm_ = new_vmm(BootMode::kQuickReload);
  vmm_->boot_instantly();  // re-reserves the preserved regions
  dom0_state_ = Dom0State::kRunning;
  vmm_ready_at_ = sim_.now();
  dom0_up_at_ = sim_.now();
  restart_daemons();
  tracer_.emit(sim_.now(), "host",
               "micro-recovery: VMM rebuilt in place over preserved RAM");
  return vmm_->micro_recover();
}

void Host::abandon_recovery() {
  tracer_.emit(sim_.now(), "host",
               "micro-recovery abandoned; preserved state discarded");
  vmm_.reset();
  dom0_state_ = Dom0State::kDown;
  preserved_.clear();
}

void Host::begin_recovery() {
  ensure(!recovery_in_progress_,
         "Host::begin_recovery: a recovery ladder is already in flight on "
         "this host");
  recovery_in_progress_ = true;
}

void Host::end_recovery() {
  ensure(recovery_in_progress_, "Host::end_recovery: no ladder in flight");
  recovery_in_progress_ = false;
}

void Host::restart_daemons() {
  // xenstored restarts with dom0: fresh state, repopulated from the
  // hypervisor's view of the live domains.
  xenstore_.clear();
  if (vmm_ != nullptr) vmm_->repopulate_store();
}

void Host::instant_start() {
  ensure(vmm_ == nullptr, "Host::instant_start: already started");
  vmm_ = new_vmm(BootMode::kFresh);
  vmm_->boot_instantly();
  dom0_state_ = Dom0State::kRunning;
  vmm_ready_at_ = sim_.now();
  dom0_up_at_ = sim_.now();
  restart_daemons();
  tracer_.emit(sim_.now(), "host", "instant start: host fully up");
}

void Host::shutdown_dom0(std::function<void()> on_down) {
  ensure(static_cast<bool>(on_down), "shutdown_dom0: callback required");
  ensure(dom0_state_ == Dom0State::kRunning, "shutdown_dom0: dom0 not running");
  dom0_state_ = Dom0State::kShuttingDown;
  tracer_.emit(sim_.now(), "host", "dom0 shutting down");
  const obs::SpanId span =
      obs_.span_open(sim_.now(), obs::Phase::kDom0Shutdown, "dom0 shutdown");
  sim_.after(jittered(calib_.dom0_shutdown),
             [this, span, on_down = std::move(on_down)] {
    dom0_state_ = Dom0State::kDown;
    tracer_.emit(sim_.now(), "host", "dom0 down");
    obs_.span_close(span, sim_.now());
    on_down();
  });
}

void Host::boot_vmm(BootMode mode, std::function<void()> on_up) {
  vmm_ = new_vmm(mode);
  const obs::SpanId span =
      obs_.span_open(sim_.now(), obs::Phase::kVmmInit,
                     mode == BootMode::kQuickReload ? "vmm re-init"
                                                    : "vmm boot");
  vmm_->boot([this, span, on_up = std::move(on_up)] {
    vmm_ready_at_ = sim_.now();
    dom0_state_ = Dom0State::kBooting;
    sim_.after(jittered(calib_.dom0_userland_boot), [this, span, on_up] {
      dom0_state_ = Dom0State::kRunning;
      dom0_up_at_ = sim_.now();
      restart_daemons();
      tracer_.emit(sim_.now(), "host", "dom0 userland up");
      obs_.span_close(span, sim_.now());
      on_up();
    });
  });
}

void Host::restart_dom0(std::function<void()> on_up) {
  ensure(static_cast<bool>(on_up), "restart_dom0: callback required");
  ensure(up(), "restart_dom0: host not fully up");
  tracer_.emit(sim_.now(), "host", "restarting dom0 only (VMM untouched)");
  shutdown_dom0([this, on_up = std::move(on_up)]() mutable {
    dom0_state_ = Dom0State::kBooting;
    sim_.after(jittered(calib_.dom0_userland_boot), [this, on_up = std::move(on_up)] {
      dom0_state_ = Dom0State::kRunning;
      dom0_up_at_ = sim_.now();
      restart_daemons();
      tracer_.emit(sim_.now(), "host", "dom0 restarted; daemons fresh");
      on_up();
    });
  });
}

sim::Bytes Host::xenstored_memory() const {
  return calib_.xenstored_base_memory + xenstore_.memory_footprint();
}

double Host::dom0_daemon_pressure() const {
  return static_cast<double>(xenstored_memory()) /
         static_cast<double>(calib_.dom0_daemon_budget);
}

void Host::quick_reload(std::function<void()> on_up) {
  ensure(static_cast<bool>(on_up), "quick_reload: callback required");
  ensure(vmm_ != nullptr && vmm_->ready(), "quick_reload: no running VMM");
  ensure(vmm_->xexec_loaded(), "quick_reload: no xexec image loaded");
  ensure(dom0_state_ == Dom0State::kDown,
         "quick_reload: dom0 must be shut down first");
  tracer_.emit(sim_.now(), "host", "quick reload: jumping to new VMM");
  const obs::SpanId span =
      obs_.span_open(sim_.now(), obs::Phase::kQuickReload, "quick reload");
  // The old VMM instance is gone the moment control transfers; machine
  // memory and the preserved-region registry survive untouched.
  vmm_.reset();
  sim_.after(calib_.xexec_jump, [this, span, on_up = std::move(on_up)]() mutable {
    // Nest the VMM re-init under the quick-reload span; restore the
    // previous ambient once dom0 userland is back.
    const obs::SpanId outer = obs_.ambient();
    obs_.set_ambient(span);
    boot_vmm(BootMode::kQuickReload,
             [this, span, outer, on_up = std::move(on_up)] {
               obs_.span_close(span, sim_.now());
               obs_.set_ambient(outer);
               on_up();
             });
  });
}

void Host::hardware_reboot(std::function<void()> on_up) {
  ensure(static_cast<bool>(on_up), "hardware_reboot: callback required");
  ensure(dom0_state_ == Dom0State::kDown,
         "hardware_reboot: dom0 must be shut down first");
  tracer_.emit(sim_.now(), "host", "hardware reset");
  const obs::SpanId span =
      obs_.span_open(sim_.now(), obs::Phase::kHardwareReset, "hardware reset");
  vmm_.reset();
  // The power cycle destroys RAM contents; everything the registry
  // described is gone with them.
  preserved_.clear();
  machine_.hardware_reset([this, span, on_up = std::move(on_up)]() mutable {
    tracer_.emit(sim_.now(), "host", "POST complete; boot loader");
    sim_.after(calib_.bootloader,
               [this, span, on_up = std::move(on_up)]() mutable {
      const obs::SpanId outer = obs_.ambient();
      obs_.set_ambient(span);
      boot_vmm(BootMode::kFresh, [this, span, outer, on_up = std::move(on_up)] {
        obs_.span_close(span, sim_.now());
        obs_.set_ambient(outer);
        on_up();
      });
    });
  });
}

void Host::note_simultaneous_creations(int count) {
  if (calib_.model_xen_creation_artifact && count >= 2) {
    artifact_until_ = sim_.now() + calib_.creation_artifact_duration;
    if (tracer_.enabled()) {
      tracer_.emit(sim_.now(), "host",
                   "Xen creation artifact: network degraded for " +
                       std::to_string(sim::to_seconds(calib_.creation_artifact_duration)) +
                       " s");
    }
    // The degradation window is known up front, so record it as a
    // completed span immediately rather than scheduling a close event
    // (which would perturb the event stream of instrumented runs).
    obs_.span_complete(sim_.now(), artifact_until_, obs::Phase::kCacheRewarm,
                       "creation artifact");
  }
}

double Host::throughput_factor() const {
  double factor =
      sim_.now() < artifact_until_ ? calib_.creation_artifact_nic_factor : 1.0;
  if (background_transfer_) factor *= 1.0 - calib_.migration_degradation;
  return factor;
}

}  // namespace rh::vmm
