// The xexec mechanism: loading a new VMM executable for quick reload.
//
// Mirrors the paper's Section 4.3: domain 0 issues the xexec system call,
// which reads the new executable image (VMM + dom0 kernel + initial RAM
// disk) from disk and hands it to the VMM via the xexec hypercall. The
// actual control transfer happens later, from Host::quick_reload().
#include <utility>

#include "simcore/check.hpp"
#include "vmm/vmm.hpp"

namespace rh::vmm {

void Vmm::xexec_load(std::function<void()> done) {
  ensure(static_cast<bool>(done), "xexec_load: callback required");
  ensure(ready_, "xexec_load: VMM not booted");
  if (tracer_.enabled()) {
    trace("xexec: loading new VMM image (" +
          std::to_string(sim::to_mib(calib_.xexec_image_size)) + " MiB)");
  }
  machine_.disk().read(calib_.xexec_image_size, hw::Disk::Access::kSequential,
                       [this, done = std::move(done)] {
                         sim_.after(calib_.xexec_hypercall, [this, done] {
                           // The hypercall can reject the image (bad read,
                           // version check): the time is spent, but the
                           // caller must check xexec_loaded() before
                           // relying on the quick-reload path.
                           if (faults_.roll(fault::FaultKind::kXexecLoadFailure,
                                            sim_.now(), "xexec_load")) {
                             xexec_loaded_ = false;
                             trace("xexec: image load FAILED (injected)");
                             done();
                             return;
                           }
                           xexec_loaded_ = true;
                           trace("xexec: new VMM image loaded");
                           done();
                         });
                       });
}

}  // namespace rh::vmm
