#include "vmm/vmm.hpp"

#include <algorithm>
#include <functional>
#include <queue>
#include <utility>

#include "simcore/check.hpp"

namespace rh::vmm {

void XendQueue::enqueue(sim::Duration d, sim::InlineCallback done) {
  ensure(d >= 0, "XendQueue: negative duration");
  ensure(static_cast<bool>(done), "XendQueue: callback required");
  const sim::SimTime start = std::max(sim_.now(), busy_until_);
  busy_until_ = start + d;
  sim_.at(busy_until_, std::move(done));
}

Vmm::Vmm(sim::Simulation& sim, const Calibration& calib, hw::Machine& machine,
         mm::PreservedRegionRegistry& preserved, XenStore& xenstore,
         sim::Tracer& tracer, sim::Rng& rng, fault::FaultInjector& faults,
         BootMode mode)
    : sim_(sim),
      calib_(calib),
      machine_(machine),
      preserved_(preserved),
      xenstore_(xenstore),
      tracer_(tracer),
      rng_(rng),
      faults_(faults),
      mode_(mode),
      allocator_(machine.memory().frame_count()),
      heap_(calib.vmm_heap_size),
      xend_(sim) {
  // Hypervisor text/data and static tables occupy machine frames.
  allocator_.allocate(kVmmOwner,
                      calib_.vmm_reserved_memory / sim::kPageSize);
}

void Vmm::trace(const std::string& msg) {
  if (!tracer_.enabled()) return;
  tracer_.emit(sim_.now(), "vmm", msg);
}

sim::Duration Vmm::create_duration(sim::Bytes memory) const {
  return calib_.domain_create_base +
         static_cast<sim::Duration>(
             sim::to_gib(memory) *
             static_cast<double>(calib_.domain_create_per_gib));
}

void Vmm::reserve_preserved_regions() {
  // Re-reserve preserved memory before anything else can take it. A fresh
  // boot finds the registry empty (RAM was power-cycled). If the registry
  // is dishonoured (ablation), frozen frames stay free and are handed out
  // or scrubbed -- the corruption quick reload exists to prevent.
  if (mode_ != BootMode::kQuickReload || !calib_.honor_preserved_regions) return;
  // Claim every region's frozen frames before allocating any metadata
  // frames: a metadata allocation placed first could grab a later region's
  // still-free frozen frames and turn a healthy reload into a claim
  // conflict.
  for (const auto& name : preserved_.names()) {
    allocator_.claim(kVmmOwner, preserved_.find(name)->frozen_frames);
  }
  // Frames backing the serialised metadata itself. Whatever those frames
  // held before is overwritten by the metadata copy. Under pressure this
  // allocation can fail (stale leaked regions, or -- in contiguous mode --
  // fragmentation); the region is then dropped: its frozen claim is
  // released and the record erased, and the resume path reports the VM as
  // having lost its image rather than the whole reload failing.
  std::vector<std::string> dropped;
  for (const auto& name : preserved_.names()) {
    const auto* region = preserved_.find(name);
    const auto meta_frames =
        (static_cast<std::int64_t>(region->payload.size()) + sim::kPageSize - 1) /
        sim::kPageSize;
    try {
      const auto got = calib_.contiguous_preserved_metadata
                           ? allocator_.allocate_contiguous(kVmmOwner, meta_frames)
                           : allocator_.allocate(kVmmOwner, meta_frames);
      for (const auto mfn : got) machine_.memory().scrub(mfn);
    } catch (const mm::OutOfMachineMemory& e) {
      for (const auto mfn : region->frozen_frames) allocator_.release(mfn);
      dropped.push_back(name);
      if (tracer_.enabled()) {
        trace("dropped preserved region '" + name + "' at reload: " + e.what());
      }
    }
  }
  for (const auto& name : dropped) preserved_.erase(name);
  if (tracer_.enabled()) {
    trace("re-reserved " + std::to_string(preserved_.size()) +
          " preserved region(s)" +
          (dropped.empty() ? std::string()
                           : " (dropped " + std::to_string(dropped.size()) + ")"));
  }
}

void Vmm::build_dom0() {
  // Domain 0 is built by the VMM at boot (its userland boot timing is the
  // Host's concern).
  Domain& dom0 = make_domain("Domain-0", calib_.dom0_memory,
                             /*hooks=*/nullptr, /*privileged=*/true);
  dom0.set_state(DomainState::kRunning);
}

void Vmm::scrub_free_memory() {
  // Frozen frames are owned (claimed by reserve_preserved_regions), so the
  // scrubber never touches them.
  const auto free_frames = allocator_.free_frame_list();
  for (const auto mfn : free_frames) machine_.memory().scrub(mfn);
  if (tracer_.enabled()) {
    trace("scrubbed " + std::to_string(free_frames.size()) + " free frames");
  }
}

void Vmm::finish_boot() {
  ready_ = true;
  machine_.set_running();
  trace("reboot of the VMM completed");
}

void Vmm::boot(std::function<void()> on_ready) {
  ensure(!ready_, "Vmm::boot: already booted");
  ensure(static_cast<bool>(on_ready), "Vmm::boot: callback required");
  trace(mode_ == BootMode::kQuickReload ? "boot begin (quick reload)"
                                        : "boot begin (fresh)");
  sim_.after(calib_.vmm_core_init, [this, on_ready = std::move(on_ready)]() mutable {
    reserve_preserved_regions();
    build_dom0();
    const auto scrub_bytes = allocator_.free_frames() * sim::kPageSize;
    scrub_duration_ = sim::transfer_time(scrub_bytes, calib_.scrub_bps);
    sim_.after(scrub_duration_, [this, on_ready = std::move(on_ready)]() mutable {
      scrub_free_memory();
      sim_.after(calib_.dom0_kernel_boot,
                 [this, on_ready = std::move(on_ready)] {
                   finish_boot();
                   on_ready();
                 });
    });
  });
}

void Vmm::boot_instantly() {
  ensure(!ready_, "Vmm::boot_instantly: already booted");
  reserve_preserved_regions();
  build_dom0();
  scrub_free_memory();
  scrub_duration_ = 0;
  finish_boot();
}

Domain& Vmm::make_domain(const std::string& name, sim::Bytes memory,
                         GuestHooks* hooks, bool privileged,
                         sim::Bytes initial_allocation) {
  ensure(find_domain_by_name(name) == nullptr,
         "Vmm: domain '" + name + "' already exists");
  ensure(initial_allocation >= 0 && initial_allocation <= memory,
         "Vmm: initial_allocation out of [0, memory]");
  const DomainId id = next_domain_id_++;
  // Per-domain hypervisor structures live on the (small) VMM heap; this is
  // the allocation that an aged, leaking heap eventually fails.
  heap_.allocate("domain/" + name, kDomainHeapCost);
  auto dom = std::make_unique<Domain>(id, name, memory, privileged);
  const auto pages = Domain::pages_for(memory);
  // Xen's memory= < maxmem= boot: the P2M spans all `pages` nominal PFNs
  // but only the lowest `populated` get machine frames; the top PFNs start
  // as balloon holes (0 == populate everything).
  const auto populated =
      initial_allocation == 0 ? pages : Domain::pages_for(initial_allocation);
  const auto frames = allocator_.allocate(id, populated);
  for (mm::Pfn pfn = 0; pfn < populated; ++pfn) {
    const auto mfn = frames[static_cast<std::size_t>(pfn)];
    // Pages are scrubbed before being handed to a domain (isolation: no
    // stale data crosses domains).
    machine_.memory().scrub(mfn);
    dom->p2m().add(pfn, mfn);
  }
  // Fresh execution state: unique tokens per instantiation.
  dom->exec().cpu_context = rng_.next();
  dom->exec().shared_info = rng_.next();
  dom->exec().device_config = rng_.next();
  if (!privileged) {
    const EventPort port = dom->event_channels().alloc_unbound(kDomain0);
    dom->event_channels().bind(port);
  }
  dom->exec().event_channels = dom->event_channels().state_token();
  dom->set_hooks(hooks);
  if (tracer_.enabled()) {
    trace("created domain '" + name + "' (" + std::to_string(id) + ", " +
          std::to_string(sim::to_gib(memory)) + " GiB)");
  }
  Domain& ref = *dom;
  domains_[id] = std::move(dom);
  register_domain_in_store(ref);
  if (!privileged) note_domain_op();
  return ref;
}

void Vmm::register_domain_in_store(const Domain& d) {
  const std::string base = "/local/domain/" + std::to_string(d.id());
  xenstore_.write(base + "/name", d.name());
  xenstore_.write(base + "/memory/target",
                  std::to_string(d.memory_size() / sim::kKiB));
  if (!d.privileged()) {
    xenstore_.write(base + "/device/vbd/768/state", "4");   // connected
    xenstore_.write(base + "/device/vif/0/state", "4");
    xenstore_.write("/vm/" + d.name() + "/uuid",
                    std::to_string(d.exec().cpu_context));
  }
}

void Vmm::repopulate_store() {
  for (const auto& [id, dom] : domains_) {
    if (dom->state() != DomainState::kDead) register_domain_in_store(*dom);
  }
}

void Vmm::note_domain_op() {
  ++domain_ops_;
  // The changeset-8640 bug class: stale transaction buffers pile up in
  // xenstored on every domain-management operation. Modelled as backlog
  // nodes whose footprint equals the configured per-op leak exactly.
  const sim::Bytes leak = calib_.xenstored_leak_per_domain_op;
  if (leak > 0) {
    const std::string name = "tx" + std::to_string(domain_ops_);
    const auto pad = std::max<sim::Bytes>(
        0, leak - XenStore::kNodeOverhead - static_cast<sim::Bytes>(name.size()));
    xenstore_.write("/stale/" + name,
                    std::string(static_cast<std::size_t>(pad), 'x'));
  }
}

void Vmm::create_domain(const std::string& name, sim::Bytes memory,
                        GuestHooks* hooks, std::function<void(DomainId)> done,
                        sim::Bytes initial_allocation) {
  ensure(static_cast<bool>(done), "Vmm::create_domain: callback required");
  xend_.enqueue(create_duration(memory),
                [this, name, memory, hooks, initial_allocation,
                 done = std::move(done)] {
                  Domain& d =
                      make_domain(name, memory, hooks, false, initial_allocation);
                  d.set_state(DomainState::kRunning);
                  done(d.id());
                });
}

DomainId Vmm::create_domain_now(const std::string& name, sim::Bytes memory,
                                GuestHooks* hooks,
                                sim::Bytes initial_allocation) {
  Domain& d = make_domain(name, memory, hooks, false, initial_allocation);
  d.set_state(DomainState::kRunning);
  return d.id();
}

void Vmm::destroy_domain(DomainId id) {
  Domain& d = domain(id);
  ensure(!d.privileged(), "Vmm::destroy_domain: cannot destroy domain 0");
  allocator_.release_all(id);
  heap_.free("domain/" + d.name(), kDomainHeapCost);
  // Aging injection: buggy teardown paths leak hypervisor heap (the Xen
  // changeset-9392 class of bug).
  if (calib_.heap_leak_per_domain_cycle > 0) {
    heap_.leak(calib_.heap_leak_per_domain_cycle);
  }
  d.set_state(DomainState::kDead);
  if (tracer_.enabled()) trace("destroyed domain '" + d.name() + "'");
  xenstore_.remove("/local/domain/" + std::to_string(id));
  xenstore_.remove("/vm/" + d.name());
  note_domain_op();
  domains_.erase(id);
}

Domain& Vmm::domain(DomainId id) {
  Domain* d = find_domain(id);
  ensure(d != nullptr, "Vmm::domain: no such domain " + std::to_string(id));
  return *d;
}

const Domain& Vmm::domain(DomainId id) const {
  const auto it = domains_.find(id);
  ensure(it != domains_.end(), "Vmm::domain: no such domain " + std::to_string(id));
  return *it->second;
}

Domain* Vmm::find_domain(DomainId id) {
  const auto it = domains_.find(id);
  return it == domains_.end() ? nullptr : it->second.get();
}

Domain* Vmm::find_domain_by_name(const std::string& name) {
  for (auto& [id, dom] : domains_) {
    if (dom->name() == name) return dom.get();
  }
  return nullptr;
}

std::vector<DomainId> Vmm::unprivileged_domain_ids() const {
  std::vector<DomainId> out;
  for (const auto& [id, dom] : domains_) {
    if (!dom->privileged() && dom->state() != DomainState::kDead) {
      out.push_back(id);
    }
  }
  return out;
}

std::size_t Vmm::live_domain_count() const { return domains_.size(); }

sim::Bytes Vmm::trigger_error_path() {
  const sim::Bytes leak = calib_.heap_leak_per_error_path;
  if (leak > 0) {
    heap_.leak(leak);
    if (tracer_.enabled()) {
      trace("error path executed: leaked " + std::to_string(leak) + " bytes");
    }
  }
  return leak;
}

std::int64_t Vmm::compact_memory() {
  // Min-heap of free MFNs: each relocation consumes the lowest candidate
  // and returns the vacated (higher) frame to the pool, so later pages can
  // slide into it. Iteration order -- domains ascending by id, PFNs
  // ascending -- is fixed, so the pass is deterministic.
  std::priority_queue<hw::FrameNumber, std::vector<hw::FrameNumber>,
                      std::greater<hw::FrameNumber>>
      free_pool;
  for (const auto mfn : allocator_.free_frame_list()) free_pool.push(mfn);
  std::int64_t moved = 0;
  for (auto& [id, dom] : domains_) {
    if (dom->state() == DomainState::kDead) continue;
    const auto pages = dom->p2m().pfn_count();
    for (mm::Pfn pfn = 0; pfn < pages; ++pfn) {
      const auto mfn = dom->p2m().mfn_of(pfn);
      if (mfn == mm::kNoFrame) continue;
      if (free_pool.empty() || free_pool.top() >= mfn) continue;
      const hw::FrameNumber target = free_pool.top();
      free_pool.pop();
      const hw::FrameNumber single[] = {target};
      allocator_.claim(id, single);
      machine_.memory().write(target, machine_.memory().read(mfn));
      dom->p2m().remove(pfn);
      dom->p2m().add(pfn, target);
      allocator_.release(mfn);
      free_pool.push(mfn);
      ++moved;
    }
  }
  if (moved > 0 && tracer_.enabled()) {
    trace("compaction moved " + std::to_string(moved) + " frames");
  }
  return moved;
}

Vmm::ConservationReport Vmm::frame_conservation_report() const {
  ConservationReport r;
  r.allocator_consistent = allocator_.accounting_ok();
  r.registry_frames = preserved_.reserved_frames();
  // Every frozen frame recorded in the registry must be held by the VMM
  // itself -- neither free (the scrubber would eat it) nor handed to a
  // domain (double ownership).
  r.frozen_frames_reserved = true;
  for (const auto mfn : preserved_.all_frozen_frames()) {
    if (allocator_.owner_of(mfn) != kVmmOwner) {
      r.frozen_frames_reserved = false;
      break;
    }
  }
  // Every live domain's mapped MFNs must be owned by that domain, and its
  // allocator count must equal its populated page count -- no orphaned or
  // shared frames.
  r.p2m_ownership_consistent = true;
  for (const auto& [id, dom] : domains_) {
    if (dom->state() == DomainState::kDead) continue;
    if (allocator_.owned_frames(id) != dom->p2m().populated()) {
      r.p2m_ownership_consistent = false;
      break;
    }
    for (const auto mfn : dom->p2m().mapped_frames()) {
      if (allocator_.owner_of(mfn) != id) {
        r.p2m_ownership_consistent = false;
        break;
      }
    }
    if (!r.p2m_ownership_consistent) break;
  }
  return r;
}

void Vmm::guest_write(DomainId id, mm::Pfn pfn, hw::ContentToken token) {
  Domain& d = domain(id);
  const auto mfn = d.p2m().mfn_of(pfn);
  ensure(mfn != mm::kNoFrame, "Vmm::guest_write: PFN is ballooned out");
  machine_.memory().write(mfn, token);
}

hw::ContentToken Vmm::guest_read(DomainId id, mm::Pfn pfn) const {
  const Domain& d = domain(id);
  const auto mfn = d.p2m().mfn_of(pfn);
  ensure(mfn != mm::kNoFrame, "Vmm::guest_read: PFN is ballooned out");
  return machine_.memory().read(mfn);
}

}  // namespace rh::vmm
