#include "vmm/domain.hpp"

#include <utility>

#include "simcore/check.hpp"

namespace rh::vmm {

void ExecState::serialize(mm::ByteWriter& w) const {
  w.u64(cpu_context);
  w.u64(shared_info);
  w.u64(device_config);
  w.u64(event_channels);
}

ExecState ExecState::deserialize(mm::ByteReader& r) {
  ExecState s;
  s.cpu_context = r.u64();
  s.shared_info = r.u64();
  s.device_config = r.u64();
  s.event_channels = r.u64();
  return s;
}

const char* to_string(DomainState s) {
  switch (s) {
    case DomainState::kCreated: return "created";
    case DomainState::kRunning: return "running";
    case DomainState::kSuspending: return "suspending";
    case DomainState::kSuspendedInMemory: return "suspended-in-memory";
    case DomainState::kSavedToDisk: return "saved-to-disk";
    case DomainState::kShuttingDown: return "shutting-down";
    case DomainState::kHalted: return "halted";
    case DomainState::kDead: return "dead";
  }
  return "unknown";
}

Domain::Domain(DomainId id, std::string name, sim::Bytes memory_size,
               bool privileged)
    : id_(id),
      name_(std::move(name)),
      memory_size_(memory_size),
      privileged_(privileged),
      p2m_(pages_for(memory_size)) {
  ensure(memory_size > 0 && memory_size % sim::kPageSize == 0,
         "Domain: memory size must be a positive multiple of the page size");
}

}  // namespace rh::vmm
