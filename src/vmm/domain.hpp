// Domain: a virtual machine as the VMM sees it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "mm/domain_id.hpp"
#include "mm/p2m_table.hpp"
#include "simcore/types.hpp"
#include "vmm/event_channel.hpp"

namespace rh::vmm {

/// Hooks the guest kernel registers with the VMM. The VMM delivers the
/// suspend event through these (Sec. 4.2: in RootHammer the *VMM*, not
/// domain 0, sends the suspend event), and invokes the resume handler
/// after restoring domain state.
class GuestHooks {
 public:
  virtual ~GuestHooks() = default;

  /// Suspend event: the guest must run its suspend handler (detach
  /// devices) and then invoke `suspend_hypercall` exactly once.
  virtual void on_suspend_event(std::function<void()> suspend_hypercall) = 0;

  /// Called after the VMM restored the domain's execution state; the guest
  /// runs its resume handler (reattach devices, re-establish event
  /// channels) and then invokes `done` exactly once. `new_id` is the id of
  /// the re-created domain (domain ids change across resume, as in Xen).
  virtual void on_resume(DomainId new_id, std::function<void()> done) = 0;
};

/// Execution state saved by the on-memory suspend mechanism: "execution
/// context such as CPU registers and shared information such as the status
/// of event channels" plus the domain configuration -- 16 KB in the paper.
struct ExecState {
  static constexpr sim::Bytes kFootprint = 16 * sim::kKiB;

  std::uint64_t cpu_context = 0;    ///< token: all VCPU register files
  std::uint64_t shared_info = 0;    ///< token: shared-info page contents
  std::uint64_t device_config = 0;  ///< token: virtual device configuration
  std::uint64_t event_channels = 0; ///< EventChannelTable::state_token()

  void serialize(mm::ByteWriter& w) const;
  static ExecState deserialize(mm::ByteReader& r);

  bool operator==(const ExecState&) const = default;
};

/// Lifecycle of a domain within one VMM instance.
enum class DomainState : std::uint8_t {
  kCreated,            ///< shell exists, memory allocated, not running
  kRunning,
  kSuspending,         ///< suspend event delivered, handler running
  kSuspendedInMemory,  ///< frozen: image preserved in RAM (on-memory)
  kSavedToDisk,        ///< image written to disk (Xen-style save)
  kShuttingDown,
  kHalted,             ///< guest OS cleanly shut down
  kDead,               ///< destroyed; memory released
};

[[nodiscard]] const char* to_string(DomainState s);

class Domain {
 public:
  Domain(DomainId id, std::string name, sim::Bytes memory_size, bool privileged);

  [[nodiscard]] DomainId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Bytes memory_size() const { return memory_size_; }
  [[nodiscard]] bool privileged() const { return privileged_; }

  [[nodiscard]] DomainState state() const { return state_; }
  void set_state(DomainState s) { state_ = s; }
  [[nodiscard]] bool running() const { return state_ == DomainState::kRunning; }

  [[nodiscard]] mm::P2mTable& p2m() { return p2m_; }
  [[nodiscard]] const mm::P2mTable& p2m() const { return p2m_; }

  [[nodiscard]] ExecState& exec() { return exec_; }
  [[nodiscard]] const ExecState& exec() const { return exec_; }

  [[nodiscard]] EventChannelTable& event_channels() { return event_channels_; }
  [[nodiscard]] const EventChannelTable& event_channels() const {
    return event_channels_;
  }

  [[nodiscard]] GuestHooks* hooks() const { return hooks_; }
  void set_hooks(GuestHooks* hooks) { hooks_ = hooks; }

  /// Number of pseudo-physical pages for `bytes` of domain memory.
  [[nodiscard]] static mm::Pfn pages_for(sim::Bytes bytes) {
    return static_cast<mm::Pfn>(bytes / sim::kPageSize);
  }

 private:
  DomainId id_;
  std::string name_;
  sim::Bytes memory_size_;
  bool privileged_;
  DomainState state_ = DomainState::kCreated;
  mm::P2mTable p2m_;
  ExecState exec_;
  EventChannelTable event_channels_;
  GuestHooks* hooks_ = nullptr;  // non-owning; guest kernel object
};

}  // namespace rh::vmm
