// Event channels: the Xen-style notification primitive between a domain
// and the VMM / other domains.
//
// The table's state is part of the "shared information" the on-memory
// suspend mechanism saves (Sec. 4.2); after resume the guest's resume
// handler re-establishes its channels. We model ports and bindings and
// derive a state token so tests can verify exact preservation.
#pragma once

#include <cstdint>
#include <vector>

#include "mm/domain_id.hpp"
#include "mm/serde.hpp"

namespace rh::vmm {

using EventPort = std::int32_t;

class EventChannelTable {
 public:
  /// Allocates an unbound port for communication with `remote`.
  EventPort alloc_unbound(DomainId remote);

  /// Marks the port as bound (remote end connected).
  void bind(EventPort port);

  /// Closes the port.
  void close(EventPort port);

  [[nodiscard]] bool is_bound(EventPort port) const;
  [[nodiscard]] std::size_t open_ports() const;
  [[nodiscard]] std::size_t bound_ports() const;

  /// Deterministic hash of the full table state; equal tokens <=> equal
  /// state for the purposes of preservation checks.
  [[nodiscard]] std::uint64_t state_token() const;

  void serialize(mm::ByteWriter& w) const;
  static EventChannelTable deserialize(mm::ByteReader& r);

  bool operator==(const EventChannelTable&) const = default;

 private:
  struct Slot {
    DomainId remote = kNoDomain;
    bool open = false;
    bool bound = false;

    bool operator==(const Slot&) const = default;
  };
  std::vector<Slot> slots_;
};

}  // namespace rh::vmm
