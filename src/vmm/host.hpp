// Host: one physical machine plus the software running on it.
//
// The Host owns what *outlives* a VMM reboot -- the hardware, the
// preserved-region registry (RAM-resident: cleared by a power cycle, kept
// by quick reload) and the disk image store -- and manages the lifecycle
// of VMM instances and domain 0's userland across the three reboot styles.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "fault/fault.hpp"
#include "hw/machine.hpp"
#include "mm/preserved_registry.hpp"
#include "net/network.hpp"
#include "obs/observer.hpp"
#include "simcore/random.hpp"
#include "simcore/simulation.hpp"
#include "simcore/trace.hpp"
#include "vmm/calibration.hpp"
#include "vmm/vmm.hpp"

namespace rh::vmm {

/// Domain 0 userland state (the control stack: xend, drivers, bridge).
enum class Dom0State : std::uint8_t { kDown, kBooting, kRunning, kShuttingDown };

class Host {
 public:
  Host(sim::Simulation& sim, Calibration calib, std::uint64_t seed = 1);
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  // ----------------------------------------------------------- accessors
  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] const Calibration& calib() const { return calib_; }
  [[nodiscard]] Calibration& calib_mutable() { return calib_; }
  [[nodiscard]] hw::Machine& machine() { return machine_; }
  [[nodiscard]] mm::PreservedRegionRegistry& preserved() { return preserved_; }
  [[nodiscard]] ImageStore& images() { return images_; }
  [[nodiscard]] sim::Tracer& tracer() { return tracer_; }
  /// Typed observability (events/spans/metrics); disabled by default so
  /// hot runs pay one branch per instrumentation point and nothing else.
  [[nodiscard]] obs::Observer& obs() { return obs_; }
  [[nodiscard]] const obs::Observer& obs() const { return obs_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }
  [[nodiscard]] net::Link& link() { return link_; }
  [[nodiscard]] fault::FaultInjector& faults() { return faults_; }

  /// Arms fault injection for this host: the injector is rebuilt over a
  /// dedicated RNG substream (one split of the host RNG), so the fault
  /// schedule depends only on the host seed and the configured rates --
  /// never on thread count or unrelated timing draws. Calling this with a
  /// config whose rates are all zero keeps the injector disarmed without
  /// splitting the RNG, so default-path runs stay byte-identical.
  void configure_faults(const fault::FaultConfig& config);

  /// The running VMM instance. Precondition: vmm_running().
  [[nodiscard]] Vmm& vmm();
  [[nodiscard]] bool vmm_running() const { return vmm_ != nullptr && vmm_->ready(); }

  [[nodiscard]] Dom0State dom0_state() const { return dom0_state_; }
  /// Fully operational: VMM ready and dom0 userland up.
  [[nodiscard]] bool up() const {
    return vmm_running() && dom0_state_ == Dom0State::kRunning;
  }
  /// Whether guest network traffic can flow. The bridge lives in dom0: it
  /// keeps forwarding until dom0 is fully down (which is why warm-reboot
  /// services stay reachable through dom0's shutdown) and comes back only
  /// once dom0's userland is up.
  [[nodiscard]] bool network_path_up() const {
    return vmm_running() && (dom0_state_ == Dom0State::kRunning ||
                             dom0_state_ == Dom0State::kShuttingDown);
  }

  // ------------------------------------------------------------- startup
  /// Brings the host fully up taking zero simulated time (experiment
  /// setup: "the machine is already running at t=0").
  void instant_start();

  // ------------------------------------------------------ reboot pieces
  /// Shuts down domain 0's userland (services in domUs keep running; with
  /// RootHammer the VMM suspends them only afterwards).
  void shutdown_dom0(std::function<void()> on_down);

  /// Quick reload: transfers control to the previously xexec-loaded VMM
  /// image without a hardware reset. RAM (and thus the preserved-region
  /// registry) survives. Requires dom0 down and the image loaded.
  /// `on_up` fires when the new VMM *and* dom0 userland are up.
  void quick_reload(std::function<void()> on_up);

  /// Full hardware reboot: power cycle (RAM and registry destroyed), POST,
  /// boot loader, fresh VMM, dom0.
  void hardware_reboot(std::function<void()> on_up);

  /// Sudden VMM crash (injected aging failure before the rejuvenation
  /// timer fires): the hypervisor instance dies on the spot, taking every
  /// domain -- and dom0's userland -- with it. RAM contents are garbage
  /// afterwards, so the preserved-region registry is cleared too; only a
  /// hardware_reboot() and cold boots can bring the host back. Guests must
  /// be force-powered-off by the caller (their domains no longer exist).
  void crash_vmm();

  // --------------------------------- in-place micro-recovery (DESIGN §13)

  /// Recoverable VMM failure (ReHype's premise): the hypervisor is dead --
  /// crashed or hung past its watchdog -- but it died *cleanly enough*
  /// that guest memory images survive. Each running domain is snapshotted
  /// crash-consistently into the preserved registry (zero simulated time;
  /// the state was already in RAM), then the instance and dom0 go down.
  /// Unlike crash_vmm(), the registry is NOT cleared: micro_recover_vmm()
  /// can rebuild from it. Guests must be interrupted by the caller
  /// (GuestOs::interrupt_for_vmm_failure).
  void fail_vmm(fault::FaultKind kind);

  /// In-place recovery boot after fail_vmm(): constructs a new VMM
  /// instance in quick-reload mode over the untouched RAM (re-reserving
  /// every preserved region), brings it and dom0 up instantly -- the
  /// repair time was already charged by the Supervisor at mem_copy_bps --
  /// and returns the metadata-validation report. The caller inspects the
  /// report and either resumes the preserved domains or abandons.
  Vmm::MicroRecoveryReport micro_recover_vmm();

  /// Gives up on an in-place recovery: tears down any half-built VMM
  /// instance, forces dom0 down and clears the registry, leaving the host
  /// in the same state a crash_vmm() would -- ready for hardware_reboot().
  void abandon_recovery();

  // ------------------------------------------------ recovery overlap guard
  /// Whether a supervised recovery ladder is in flight on this host. The
  /// Supervisor sets this for its whole pass; a second Supervisor trying
  /// to start (run/recover/respond_to_failure) while it is held is an
  /// InvariantViolation -- two ladders interleaving on one host would
  /// corrupt each other's rung state, exactly like overlapping rolling
  /// passes at cluster level.
  [[nodiscard]] bool recovery_in_progress() const { return recovery_in_progress_; }
  void begin_recovery();
  void end_recovery();

  /// EXTENSION (the paper's stated future work): reboot *only* domain 0's
  /// userland, without rebooting the VMM or touching the domain Us. The
  /// guests keep running but are unreachable while the bridge is down;
  /// dom0's control daemons (xenstored) restart with fresh state.
  void restart_dom0(std::function<void()> on_up);

  // ------------------------------------------------ dom0 daemon aging
  /// The control-plane store (xenstored's contents). Restarted (emptied
  /// and repopulated from live domains) whenever dom0 boots.
  [[nodiscard]] XenStore& xenstore() { return xenstore_; }

  /// Memory held by xenstored right now: its base footprint plus every
  /// live store node (including leaked backlog; Sec. 2's privileged-VM
  /// aging).
  [[nodiscard]] sim::Bytes xenstored_memory() const;
  /// xenstored memory as a fraction of the dom0 daemon budget.
  [[nodiscard]] double dom0_daemon_pressure() const;

  // ----------------------------------------------------------- telemetry
  /// When the current VMM instance became ready ("reboot completed").
  [[nodiscard]] sim::SimTime vmm_ready_at() const { return vmm_ready_at_; }
  /// When dom0 userland last came up.
  [[nodiscard]] sim::SimTime dom0_up_at() const { return dom0_up_at_; }
  /// Number of VMM instances booted on this host (1 after instant_start).
  [[nodiscard]] std::uint64_t vmm_generation() const { return vmm_generation_; }

  // --------------------------------------------- Xen creation artifact
  /// Records that `count` domains were just created/resumed near-
  /// simultaneously; Xen 3.0.0 degraded network throughput for ~25 s
  /// afterwards (Fig. 7's warm-reboot dip).
  void note_simultaneous_creations(int count);

  /// Marks this host as sourcing/sinking a live-migration bulk transfer;
  /// services on it lose `migration_degradation` while it is active.
  void set_background_transfer(bool active) { background_transfer_ = active; }
  [[nodiscard]] bool background_transfer() const { return background_transfer_; }

  /// Current network throughput factor in (0, 1]; services multiply their
  /// delivery rate by this.
  [[nodiscard]] double throughput_factor() const;

  /// Applies the calibration's timing_jitter to a nominal duration: a
  /// normal draw with stddev = jitter * d, clamped to >= d/2. Identity
  /// (no RNG draw, so existing seeds reproduce exactly) when
  /// timing_jitter == 0.
  [[nodiscard]] sim::Duration jittered(sim::Duration d);

 private:
  void boot_vmm(BootMode mode, std::function<void()> on_up);
  std::unique_ptr<Vmm> new_vmm(BootMode mode);
  void restart_daemons();

  sim::Simulation& sim_;
  Calibration calib_;
  sim::Tracer tracer_;
  obs::Observer obs_;
  sim::Rng rng_;
  hw::Machine machine_;
  mm::PreservedRegionRegistry preserved_;
  ImageStore images_;
  XenStore xenstore_;
  net::Link link_;
  fault::FaultInjector faults_;
  std::unique_ptr<Vmm> vmm_;
  Dom0State dom0_state_ = Dom0State::kDown;
  sim::SimTime vmm_ready_at_ = 0;
  sim::SimTime dom0_up_at_ = 0;
  std::uint64_t vmm_generation_ = 0;
  sim::SimTime artifact_until_ = 0;
  bool background_transfer_ = false;
  bool recovery_in_progress_ = false;
};

}  // namespace rh::vmm
