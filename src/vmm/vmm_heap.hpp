// The hypervisor's internal heap -- the aging-critical resource.
//
// Xen's VMM heap is only 16 MB regardless of machine memory (Sec. 2 of the
// paper); historical bugs leaked heap on every domain reboot or on error
// paths, eventually exhausting it and degrading or crashing the VMM.
// We model the heap as a tagged allocator with explicit leak injection:
// leaked bytes stay unreclaimable until the VMM instance is rebuilt
// (rejuvenated), which is precisely what rejuvenation restores.
#pragma once

#include <stdexcept>
#include <string>
#include <unordered_map>

#include "simcore/types.hpp"

namespace rh::vmm {

/// Thrown when a heap allocation cannot be satisfied -- the modelled
/// "crash failure or performance degradation" of an aged VMM.
class VmmHeapExhausted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class VmmHeap {
 public:
  explicit VmmHeap(sim::Bytes capacity);

  /// Allocates `size` bytes under `tag`; throws VmmHeapExhausted if the
  /// heap cannot satisfy it.
  void allocate(const std::string& tag, sim::Bytes size);

  /// Frees `size` bytes from `tag`; it is an error to free more than was
  /// allocated under that tag.
  void free(const std::string& tag, sim::Bytes size);

  /// Injects a leak: `size` bytes become permanently unreclaimable for the
  /// lifetime of this heap (i.e. of this VMM instance).
  void leak(sim::Bytes size);

  [[nodiscard]] sim::Bytes capacity() const { return capacity_; }
  [[nodiscard]] sim::Bytes used() const { return used_; }
  [[nodiscard]] sim::Bytes leaked() const { return leaked_; }
  [[nodiscard]] sim::Bytes available() const { return capacity_ - used_ - leaked_; }
  [[nodiscard]] sim::Bytes allocated_under(const std::string& tag) const;

  /// Heap pressure in [0,1]; rejuvenation policies can trigger on this.
  [[nodiscard]] double pressure() const {
    return 1.0 - static_cast<double>(available()) / static_cast<double>(capacity_);
  }

 private:
  sim::Bytes capacity_;
  sim::Bytes used_ = 0;
  sim::Bytes leaked_ = 0;
  std::unordered_map<std::string, sim::Bytes> tags_;
};

}  // namespace rh::vmm
