// The virtual machine monitor (hypervisor) -- one instance per boot.
//
// Modelled on Xen 3.0.0 with the RootHammer extensions: a VMM instance
// owns the machine-frame allocator, the hypervisor heap, and the domain
// table. Rebooting the VMM means destroying this object and constructing
// a new one over the same physical machine; what survives that transition
// is exactly what the hardware preserves -- disk contents always, RAM
// contents only across a quick reload (never across a hardware reset).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "hw/machine.hpp"
#include "mm/frame_allocator.hpp"
#include "mm/preserved_registry.hpp"
#include "simcore/random.hpp"
#include "simcore/simulation.hpp"
#include "simcore/trace.hpp"
#include "vmm/calibration.hpp"
#include "vmm/domain.hpp"
#include "vmm/save_restore.hpp"
#include "vmm/vmm_heap.hpp"
#include "vmm/xenstore.hpp"

namespace rh::vmm {

/// How this VMM instance came to run.
enum class BootMode : std::uint8_t {
  kFresh,        ///< after a hardware reset (RAM contents lost)
  kQuickReload,  ///< via xexec (RAM contents preserved)
};

/// Serialised domain-management operations (the paper's xend in dom0):
/// domain creation/restoration runs one at a time, which is why resume(n)
/// and creation costs scale linearly with the number of VMs.
class XendQueue {
 public:
  explicit XendQueue(sim::Simulation& sim) : sim_(sim) {}

  /// Enqueues an operation of the given duration; `done` fires when the
  /// operation completes (after all previously queued operations).
  void enqueue(sim::Duration d, sim::InlineCallback done);

  [[nodiscard]] sim::SimTime busy_until() const { return busy_until_; }

 private:
  sim::Simulation& sim_;
  sim::SimTime busy_until_ = 0;
};

class Vmm {
 public:
  /// Heap charged per live domain (shadow of Xen's per-domain structures).
  static constexpr sim::Bytes kDomainHeapCost = 48 * sim::kKiB;
  /// Registry region name prefix for suspended domains.
  static constexpr const char* kRegionPrefix = "domain/";

  Vmm(sim::Simulation& sim, const Calibration& calib, hw::Machine& machine,
      mm::PreservedRegionRegistry& preserved, XenStore& xenstore,
      sim::Tracer& tracer, sim::Rng& rng, fault::FaultInjector& faults,
      BootMode mode);

  Vmm(const Vmm&) = delete;
  Vmm& operator=(const Vmm&) = delete;

  /// Boots the hypervisor: core init, re-reservation of preserved regions
  /// (quick reload), scrub of free memory, domain-0 construction and
  /// kernel boot. `on_ready` fires at the point the paper calls "the
  /// reboot of the VMM completed".
  void boot(std::function<void()> on_ready);

  /// Synchronous variant of boot() taking zero simulated time. Intended
  /// for experiment setup ("the machine is already up at t=0") and tests.
  void boot_instantly();

  [[nodiscard]] bool ready() const { return ready_; }
  [[nodiscard]] BootMode boot_mode() const { return mode_; }

  // ------------------------------------------------------------ domains

  /// Creates a domain through the management queue (xend): allocates
  /// machine frames, builds the P2M table, charges the hypervisor heap.
  /// `done` receives the new domain's id once the operation completes.
  ///
  /// `initial_allocation` models Xen's memory= < maxmem= reduced-allocation
  /// boot: the P2M table spans the full nominal `memory`, but only the
  /// lowest pages_for(initial_allocation) PFNs are populated with machine
  /// frames -- the rest start as balloon holes. 0 (the default) populates
  /// everything. This is what lets an overcommitted VM cold-boot on a host
  /// that cannot back its nominal size.
  void create_domain(const std::string& name, sim::Bytes memory,
                     GuestHooks* hooks, std::function<void(DomainId)> done,
                     sim::Bytes initial_allocation = 0);

  /// Immediate variant for tests and setup code (no xend delay).
  DomainId create_domain_now(const std::string& name, sim::Bytes memory,
                             GuestHooks* hooks,
                             sim::Bytes initial_allocation = 0);

  /// Destroys a domain: releases its frames, frees (and possibly leaks)
  /// hypervisor heap.
  void destroy_domain(DomainId id);

  [[nodiscard]] Domain& domain(DomainId id);
  [[nodiscard]] const Domain& domain(DomainId id) const;
  [[nodiscard]] Domain* find_domain(DomainId id);
  [[nodiscard]] Domain* find_domain_by_name(const std::string& name);

  /// Ids of all live (non-dead) domains except domain 0, ascending.
  [[nodiscard]] std::vector<DomainId> unprivileged_domain_ids() const;
  [[nodiscard]] std::size_t live_domain_count() const;

  // ----------------------------------------------------- guest memory

  void guest_write(DomainId id, mm::Pfn pfn, hw::ContentToken token);
  [[nodiscard]] hw::ContentToken guest_read(DomainId id, mm::Pfn pfn) const;

  // ------------------------------------- on-memory suspend / resume
  // (implementation in suspend.cpp)

  /// Suspends one running domain on-memory: delivers the suspend event,
  /// waits for the guest's suspend hypercall, freezes the memory image in
  /// place and records the preserved region.
  void suspend_domain_on_memory(DomainId id, std::function<void()> done);

  /// Suspends every running unprivileged domain (in parallel).
  void suspend_all_on_memory(std::function<void()> done);

  /// Names of domains with preserved in-memory images.
  [[nodiscard]] std::vector<std::string> preserved_domain_names() const;

  /// Whether a preserved in-memory image exists for `name`. Under memory
  /// pressure a suspend can complete without recording one (budget
  /// exhaustion or an injected frame-allocation failure), and a quick
  /// reload can drop one it cannot re-reserve -- so resume paths must
  /// check this before preserved_image_intact(), which hard-requires
  /// existence.
  [[nodiscard]] bool has_preserved_image(const std::string& name) const;

  /// Whether the named domain's preserved image still passes its checksum.
  /// The supervised resume path verifies this before resuming; a mismatch
  /// means the image rotted in RAM and only a cold boot can recover the VM.
  /// Precondition: a preserved image for `name` exists.
  [[nodiscard]] bool preserved_image_intact(const std::string& name) const;

  /// Resumes a previously on-memory-suspended domain in this VMM instance:
  /// re-creates the domain (serialised through xend), re-attaches the
  /// preserved frames recorded in the P2M table, restores execution state,
  /// and runs the guest resume handler.
  void resume_domain_on_memory(const std::string& name, GuestHooks* hooks,
                               std::function<void(DomainId)> done);

  // --------------------------------- in-place micro-recovery (§13)
  // (implementation in suspend.cpp -- it reuses the preserved-record
  // format, so a crash snapshot is resumable by resume_domain_on_memory)

  /// Crash-consistent snapshot of every running unprivileged domain into
  /// the preserved registry, taken by the dying VMM's failure handler
  /// (ReHype's "preserve VM state" step). Unlike suspend, no suspend event
  /// is delivered and zero simulated time passes: the state was already in
  /// RAM; only the metadata record is cut. Per domain the record can be
  /// dropped (injected kFrameAllocFailure, preserved-frame budget) or rot
  /// (kCorruptPreservedImage), both at the "crash:<name>" site. Returns
  /// the number of images recorded.
  std::size_t snapshot_domains_for_recovery();

  /// What Vmm::micro_recover() found when it rebuilt VMM metadata from the
  /// preserved regions after an in-place recovery boot.
  struct MicroRecoveryReport {
    std::size_t regions_checked = 0;  ///< preserved domain images seen
    std::size_t intact_regions = 0;   ///< images passing their checksum
    std::vector<std::string> corrupt_domains;  ///< checksum mismatches
    sim::Bytes metadata_bytes = 0;    ///< serialised metadata re-validated
    bool frames_consistent = false;   ///< frame_conservation_report().ok()
    /// The attempt is usable when frame conservation holds and at least
    /// one image survived (individual corrupt images degrade to per-VM
    /// cold boots, exactly like the warm path's intact check).
    [[nodiscard]] bool ok() const {
      return frames_consistent && (regions_checked == 0 || intact_regions > 0);
    }
  };

  /// Validates the rebuilt state of a quick-reload-booted VMM against the
  /// preserved registry: every domain image's FNV checksum, every frozen
  /// frame's re-reservation, and the global frame-conservation invariant.
  /// Read-only -- the Supervisor decides how to act on the report.
  [[nodiscard]] MicroRecoveryReport micro_recover() const;

  // ------------------------------------------- Xen-style save / restore
  // (implementation in save_restore.cpp)

  /// Saves a running domain to disk (the paper's baseline): suspend event,
  /// then the whole memory image is written out; the domain is destroyed.
  void save_domain_to_disk(DomainId id, ImageStore& store,
                           std::function<void()> done);

  /// Restores a domain from its save file.
  void restore_domain_from_disk(const std::string& name, ImageStore& store,
                                GuestHooks* hooks,
                                std::function<void(DomainId)> done);

  /// Snapshot of a (suspended) domain's full state as an image. Used by
  /// the save path and by live migration's stop-and-copy.
  [[nodiscard]] SavedImage capture_image(DomainId id) const;

  /// Rebuilds a domain from an in-memory image (live migration's receive
  /// side): xend-serialised creation, content write, guest resume handler.
  /// Transfer time is the caller's concern (it depends on the medium).
  void restore_domain_from_image(const SavedImage& image, GuestHooks* hooks,
                                 std::function<void(DomainId)> done);

  // ------------------------------------------------------------- xexec
  // (implementation in xexec.cpp)

  /// Loads a new VMM executable image (VMM + dom0 kernel + initrd) into
  /// memory via the xexec hypercall. Must be done before quick reload.
  /// Under fault injection the load can fail: `done` still fires (the
  /// time was spent) but xexec_loaded() stays false -- callers that care
  /// must check the postcondition, as rejuv::Supervisor does.
  void xexec_load(std::function<void()> done);

  [[nodiscard]] bool xexec_loaded() const { return xexec_loaded_; }

  /// Simulates one execution of a buggy hypervisor error path (the Xen
  /// changeset-11752 bug class): leaks heap per the calibration. Returns
  /// the bytes leaked.
  sim::Bytes trigger_error_path();

  // -------------------------------------------- memory-pressure plumbing

  /// Relocates live domains' machine frames to the lowest free MFNs,
  /// copying contents and rewriting P2M entries. Defragments machine
  /// memory so the frames a subsequent suspend freezes in place -- and the
  /// free runs the incoming VMM needs for contiguous metadata -- are
  /// compact. Takes zero simulated time itself; callers charge
  /// moved-bytes / Calibration::mem_copy_bps (the Supervisor records the
  /// pass as a kCompactionPass RecoveryEvent). Returns frames moved.
  std::int64_t compact_memory();

  /// Frame-conservation invariant snapshot; see ConservationReport.
  struct ConservationReport {
    bool allocator_consistent = false;  ///< counters agree with owner map
    bool frozen_frames_reserved = false;  ///< registry frames VMM-owned
    bool p2m_ownership_consistent = false;  ///< mapped MFNs owned by mapper
    std::int64_t registry_frames = 0;  ///< preserved_.reserved_frames()
    [[nodiscard]] bool ok() const {
      return allocator_consistent && frozen_frames_reserved &&
             p2m_ownership_consistent;
    }
  };

  /// Cross-checks frame ownership between the allocator, the preserved
  /// registry and every live domain's P2M table: no double-ownership, no
  /// unreserved frozen frame, no miscounted owner. The Supervisor runs
  /// this after every quick reload (the reload is exactly where ownership
  /// is rebuilt from the registry, so it is where conservation can break).
  [[nodiscard]] ConservationReport frame_conservation_report() const;

  // ------------------------------------------------------ introspection

  [[nodiscard]] VmmHeap& heap() { return heap_; }
  [[nodiscard]] const VmmHeap& heap() const { return heap_; }
  [[nodiscard]] mm::FrameAllocator& allocator() { return allocator_; }
  [[nodiscard]] XendQueue& xend() { return xend_; }
  [[nodiscard]] sim::Duration boot_scrub_duration() const { return scrub_duration_; }
  /// Count of domain-management operations (create/resume/restore/destroy)
  /// processed by this VMM instance; drives the xenstored aging model.
  [[nodiscard]] std::uint64_t domain_ops() const { return domain_ops_; }

  /// Re-registers every live domain in the (freshly restarted) store.
  void repopulate_store();
  [[nodiscard]] const Calibration& calib() const { return calib_; }
  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] hw::Machine& machine() { return machine_; }
  [[nodiscard]] mm::PreservedRegionRegistry& preserved() { return preserved_; }
  [[nodiscard]] sim::Tracer& tracer() { return tracer_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }
  [[nodiscard]] fault::FaultInjector& faults() { return faults_; }

 private:
  friend class SuspendMechanism;

  /// Shared domain-construction bookkeeping (allocates frames, heap).
  /// `initial_allocation` as in create_domain (0 == populate fully).
  Domain& make_domain(const std::string& name, sim::Bytes memory,
                      GuestHooks* hooks, bool privileged,
                      sim::Bytes initial_allocation = 0);

  /// Writes an image's shape and contents into an existing fresh domain.
  void apply_image(DomainId id, const SavedImage& img);

  /// Registers a domain's control-plane entries in the xenstore.
  void register_domain_in_store(const Domain& d);
  /// Accounts one domain-management operation (and its xenstored leak).
  void note_domain_op();

  // Boot-sequence stages shared by boot() and boot_instantly().
  void reserve_preserved_regions();
  void build_dom0();
  void scrub_free_memory();
  void finish_boot();

  void trace(const std::string& msg);
  [[nodiscard]] sim::Duration create_duration(sim::Bytes memory) const;

  sim::Simulation& sim_;
  const Calibration& calib_;
  hw::Machine& machine_;
  mm::PreservedRegionRegistry& preserved_;
  XenStore& xenstore_;
  sim::Tracer& tracer_;
  sim::Rng& rng_;
  fault::FaultInjector& faults_;
  BootMode mode_;

  mm::FrameAllocator allocator_;
  VmmHeap heap_;
  XendQueue xend_;
  std::map<DomainId, std::unique_ptr<Domain>> domains_;
  DomainId next_domain_id_ = kDomain0;
  bool ready_ = false;
  bool xexec_loaded_ = false;
  sim::Duration scrub_duration_ = 0;
  std::uint64_t domain_ops_ = 0;
};

}  // namespace rh::vmm
