#include "vmm/vmm_heap.hpp"

#include "simcore/check.hpp"

namespace rh::vmm {

VmmHeap::VmmHeap(sim::Bytes capacity) : capacity_(capacity) {
  ensure(capacity > 0, "VmmHeap: capacity must be positive");
}

void VmmHeap::allocate(const std::string& tag, sim::Bytes size) {
  ensure(size >= 0, "VmmHeap::allocate: negative size");
  if (size > available()) {
    throw VmmHeapExhausted("VMM heap exhausted: need " + std::to_string(size) +
                           " bytes, " + std::to_string(available()) +
                           " available (leaked: " + std::to_string(leaked_) + ")");
  }
  used_ += size;
  tags_[tag] += size;
}

void VmmHeap::free(const std::string& tag, sim::Bytes size) {
  ensure(size >= 0, "VmmHeap::free: negative size");
  const auto it = tags_.find(tag);
  ensure(it != tags_.end() && it->second >= size,
         "VmmHeap::free: freeing more than allocated under tag '" + tag + "'");
  it->second -= size;
  if (it->second == 0) tags_.erase(it);
  used_ -= size;
}

void VmmHeap::leak(sim::Bytes size) {
  ensure(size >= 0, "VmmHeap::leak: negative size");
  // A leak can at most consume what is currently available; beyond that
  // the allocator has already failed.
  if (size > available()) size = available();
  leaked_ += size;
}

sim::Bytes VmmHeap::allocated_under(const std::string& tag) const {
  const auto it = tags_.find(tag);
  return it == tags_.end() ? 0 : it->second;
}

}  // namespace rh::vmm
