// XenStore: the hierarchical key-value store of the Xen control plane.
//
// xenstored (a daemon in domain 0) holds every domain's configuration
// under /local/domain/<id> and backs the device handshake protocol via
// watches. The paper's Section 2 singles it out: it leaked memory
// (changeset 8640), it is not restartable in place, and restoring from
// its leaks "needs to reboot the privileged VM" -- which, without the
// paper's future-work extension, drags the whole VMM down with it.
//
// This is a real store: paths, subtree listing/removal, watches with
// prefix matching, and byte-level memory accounting that drives the
// privileged-VM aging model.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "simcore/types.hpp"

namespace rh::vmm {

class XenStore {
 public:
  using WatchId = std::int32_t;
  using WatchFn = std::function<void(const std::string& path)>;

  /// Accounting overhead per node (struct + hash slot in the daemon).
  static constexpr sim::Bytes kNodeOverhead = 128;

  XenStore() = default;
  XenStore(const XenStore&) = delete;
  XenStore& operator=(const XenStore&) = delete;

  /// Writes `value` at `path` ("/a/b/c"), creating missing parents.
  /// Fires watches whose prefix covers the path.
  void write(const std::string& path, std::string value);

  /// Value at `path`; nullopt if the node does not exist.
  [[nodiscard]] std::optional<std::string> read(const std::string& path) const;

  [[nodiscard]] bool exists(const std::string& path) const;

  /// Names of the direct children of `path` (empty if none/missing).
  [[nodiscard]] std::vector<std::string> list(const std::string& path) const;

  /// Removes the node and its whole subtree; returns nodes removed.
  /// Fires watches covering the removed root.
  std::size_t remove(const std::string& path);

  /// Registers a watch on a path prefix; the callback fires on any write
  /// or removal at or below it.
  WatchId watch(const std::string& prefix, WatchFn fn);
  void unwatch(WatchId id);

  /// Total live nodes (excluding the implicit root).
  [[nodiscard]] std::size_t node_count() const { return node_count_; }

  /// Daemon-resident bytes: per-node overhead + path component + value.
  [[nodiscard]] sim::Bytes memory_footprint() const { return footprint_; }

  [[nodiscard]] std::size_t watch_count() const { return watches_.size(); }

  /// Daemon restart: everything (nodes and watches) is gone.
  void clear();

 private:
  struct Node {
    std::string value;
    std::map<std::string, std::unique_ptr<Node>> children;
  };

  static std::vector<std::string> split(const std::string& path);
  [[nodiscard]] const Node* find(const std::string& path) const;
  void fire_watches(const std::string& path);
  sim::Bytes subtree_bytes(const std::string& name, const Node& node) const;
  std::size_t subtree_nodes(const Node& node) const;

  Node root_;
  std::size_t node_count_ = 0;
  sim::Bytes footprint_ = 0;
  std::map<WatchId, std::pair<std::string, WatchFn>> watches_;
  WatchId next_watch_ = 1;
};

}  // namespace rh::vmm
