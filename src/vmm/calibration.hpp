// Calibration: every physical constant of the simulated testbed.
//
// Defaults reproduce the paper's machine (dual dual-core Opteron 280,
// 12 GB PC3200, one 15 krpm Ultra320 SCSI disk, gigabit Ethernet) closely
// enough that the evaluation's fitted functions emerge from the model:
//
//   reboot_vmm(n) ~= -0.55 n + 43      (Sec. 5.6)
//   resume(n)     ~=  0.43 n - 0.07
//   reboot_os(n)  ~=  3.8 n + 13
//   boot(n)       ~=  3.4 n + 2.8
//   reset_hw      ~=  47
//
// Each constant documents which measurement pins it down. Experiments
// mutate copies of this struct (e.g. the ablation flags at the bottom).
#pragma once

#include "hw/machine.hpp"
#include "net/network.hpp"
#include "simcore/types.hpp"

namespace rh {

struct Calibration {
  // ------------------------------------------------------------------ hw
  hw::MachineSpec machine{
      /*ram=*/12 * sim::kGiB,
      /*cpu_cores=*/4,
      // 15 krpm Ultra320 SCSI: the paper's Xen save/restore rates imply
      // ~85 MB/s writes and ~88 MB/s reads (Fig. 4); 8 ms random access
      // reproduces the 69 % uncached web-throughput drop (Fig. 8b).
      hw::DiskModel{88.0e6, 85.0e6, 8 * sim::kMillisecond},
      // Gigabit Ethernet, ~117 MB/s usable payload: caps cached web
      // throughput at ~220 req/s for 512 KiB files (Fig. 8b baseline).
      hw::NicModel{117.0e6, 50},
      // POST(12 GiB) = 8 + 3 + 12*2.7 = 43.4 s (Fig. 7 shows 43 s); adding
      // the boot loader gives reset_hw ~= 48 s (Sec. 5.6 fits 47 s).
      hw::BiosModel{8 * sim::kSecond, 3 * sim::kSecond, 2700 * sim::kMillisecond},
  };
  net::LinkModel link{200, 117.0e6};

  // ----------------------------------------------------------------- vmm
  /// Xen's default hypervisor heap (the aging-critical resource, Sec. 2).
  sim::Bytes vmm_heap_size = 16 * sim::kMiB;
  /// Hypervisor text/data + static reservations.
  sim::Bytes vmm_reserved_memory = 64 * sim::kMiB;
  /// Hypervisor init before memory scrub begins.
  sim::Duration vmm_core_init = 2 * sim::kSecond;
  /// Boot-time scrub rate of *free* memory. 1 GiB / 0.55 s gives the paper's
  /// -0.55 s/VM slope of reboot_vmm(n): frozen frames are skipped.
  double scrub_bps = 1.95e9;
  /// GRUB etc. between POST handoff and VMM entry (hardware path only).
  sim::Duration bootloader = 5 * sim::kSecond;

  // -------------------------------------------------------------- dom0
  sim::Bytes dom0_memory = 512 * sim::kMiB;
  sim::Duration dom0_kernel_boot = 2700 * sim::kMillisecond;
  /// Userland boot of the control domain (xend, drivers, network).
  sim::Duration dom0_userland_boot = 31500 * sim::kMillisecond;
  sim::Duration dom0_shutdown = 10 * sim::kSecond;

  // ------------------------------------------------------------- xexec
  /// New VMM+dom0-kernel+initrd image loaded by the xexec hypercall.
  sim::Bytes xexec_image_size = 20 * sim::kMiB;
  sim::Duration xexec_hypercall = 150 * sim::kMillisecond;
  /// CPU handoff + copy of the loaded image to its boot address.
  sim::Duration xexec_jump = 400 * sim::kMillisecond;

  // ------------------------------------------- domain management (xend)
  /// Domain creation is serialised through the management daemon in dom0;
  /// this is the paper's resume(n) ~ 0.43 n slope (with state restore).
  sim::Duration domain_create_base = 310 * sim::kMillisecond;
  sim::Duration domain_create_per_gib = 30 * sim::kMillisecond;
  sim::Duration domain_destroy = 150 * sim::kMillisecond;

  // -------------------------------------------- on-memory suspend/resume
  sim::Duration suspend_event_delivery = 2 * sim::kMillisecond;
  /// Guest suspend handler: detach virtual devices.
  sim::Duration suspend_handler = 30 * sim::kMillisecond;
  /// Freeze = reserve frames + save 16 KiB exec state; walking the
  /// P2M table costs ~4 ms/GiB, giving Fig. 4's near-flat suspend line
  /// (0.08 s at 11 GiB).
  sim::Duration suspend_freeze_base = 5 * sim::kMillisecond;
  sim::Duration suspend_freeze_per_gib = 4 * sim::kMillisecond;
  /// Restoring exec state, serialised in dom0 after domain re-creation.
  sim::Duration resume_state_restore = 60 * sim::kMillisecond;
  /// Re-attaching preserved frames from the P2M table.
  sim::Duration resume_claim_per_gib = 45 * sim::kMillisecond;
  /// Guest resume handler: reattach devices, re-establish event channels.
  sim::Duration resume_handler = 120 * sim::kMillisecond;

  // ------------------------------------------ Xen save/restore (to disk)
  /// Per-domain fixed overhead of xm save / xm restore (fork xc_save,
  /// header, canonicalise page tables...). Fig. 5's per-VM Xen cost.
  sim::Duration xen_save_prep = 5 * sim::kSecond;
  sim::Duration xen_restore_prep = 1500 * sim::kMillisecond;
  /// Effective image throughput (format overhead on top of raw disk).
  double xen_save_bps = 75.0e6;
  double xen_restore_bps = 80.0e6;

  // ---------------------- saved-VM variants (related work, Sec. 7)
  /// Image compression before writing (Windows XP hibernation style):
  /// bytes on disk = memory * ratio. 1.0 disables compression.
  double xen_save_compression_ratio = 1.0;
  /// CPU cost of (de)compression; 0 disables the charge.
  double xen_save_compress_bps = 200.0e6;
  /// Save to a battery-backed RAM disk (GIGABYTE i-RAM style) instead of
  /// the rotating disk. Faster medium, but the image is still copied both
  /// ways -- unlike the on-memory mechanism, which copies nothing.
  bool save_to_ram_disk = false;

  // ------------------------------------------------------------ guest OS
  sim::Duration os_kernel_boot_cpu = 800 * sim::kMillisecond;
  /// Disk reads during boot; serialisation on the shared disk produces the
  /// paper's boot(n) ~ 3.4 n slope.
  sim::Bytes os_boot_io = 280 * sim::kMiB;
  sim::Duration os_userland_wait = 2 * sim::kSecond;
  /// Early shutdown-script phase before services are stopped; services
  /// keep answering during it. Its absence from the warm-reboot path (the
  /// VMM suspends domains only after dom0 is down) is part of Fig. 7's
  /// "stopped 7 s later" observation.
  sim::Duration os_shutdown_grace = 3 * sim::kSecond;
  /// Remaining shutdown: mostly waiting on service stop and sync, not CPU.
  sim::Duration os_shutdown_wait = 6500 * sim::kMillisecond;
  sim::Duration os_shutdown_cpu = 500 * sim::kMillisecond;
  sim::Bytes os_shutdown_io = 8 * sim::kMiB;
  /// Fraction of domain memory usable as page cache.
  double page_cache_fraction = 0.85;
  sim::Bytes cache_block_size = 64 * sim::kKiB;
  /// Effective rate of serving file data out of the page cache; the ratio
  /// to disk throughput yields Fig. 8a's 91 % first-read degradation.
  double mem_copy_bps = 1.0e9;

  // ------------------------------------------------------------- aging
  /// Hypervisor heap bytes leaked per domain create/destroy cycle
  /// (models the Xen changeset-9392 bug class). 0 = no aging.
  sim::Bytes heap_leak_per_domain_cycle = 0;
  /// Heap bytes leaked when an error path runs (changeset-11752 class).
  sim::Bytes heap_leak_per_error_path = 0;
  /// Memory xenstored holds right after dom0 boots.
  sim::Bytes xenstored_base_memory = 4 * sim::kMiB;
  /// Bytes xenstored leaks per domain-management operation (the
  /// changeset-8640 bug class in the privileged VM; Sec. 2). 0 = no aging.
  sim::Bytes xenstored_leak_per_domain_op = 0;
  /// Memory budget for dom0's control daemons; exceeding it models the
  /// privileged VM's out-of-memory degradation.
  sim::Bytes dom0_daemon_budget = 64 * sim::kMiB;

  // ------------------------------------------------- artifacts/ablations
  /// If false, the post-reload VMM ignores the preserved-region registry
  /// and scrubs everything -- the bug quick reload exists to prevent.
  bool honor_preserved_regions = true;
  /// Cap on total preserved-region frames (frozen + metadata) the registry
  /// will record; 0 = unlimited (historical behaviour). A suspend whose
  /// image would exceed it completes without recording an image -- the
  /// pressure the admission controller exists to relieve (DESIGN.md §9).
  std::int64_t preserved_frame_budget = 0;
  /// If true, the reloading VMM places each preserved region's metadata
  /// frames in one contiguous MFN run, so reload can fail on fragmentation
  /// even with enough free frames in total; the failing region is dropped
  /// (its VM loses the warm path). Compaction before suspend avoids this.
  bool contiguous_preserved_metadata = false;
  /// Xen 3.0.0 degraded network performance for ~25 s after creating many
  /// VMs simultaneously (the paper's Fig. 7 warm-reboot artifact).
  bool model_xen_creation_artifact = true;
  sim::Duration creation_artifact_duration = 25 * sim::kSecond;
  double creation_artifact_nic_factor = 0.45;
  /// RootHammer suspends domains from the VMM *after* dom0 has shut down,
  /// keeping services up ~7 s longer (Fig. 7). false = original-Xen
  /// ordering (suspend first, then shut dom0 down).
  bool suspend_by_vmm_after_dom0_shutdown = true;
  /// Server-throughput loss on a host while it sources a live migration
  /// (Clark et al.: 12 % for Apache; the paper's Sec. 6 analysis).
  double migration_degradation = 0.12;

  // -------------------------------------------------- measurement noise
  /// Run-to-run timing variation as a fraction (stddev/nominal) applied to
  /// the wait-dominated phases (userland boots, shutdown waits) through
  /// Host::jittered(). 0 (the default) keeps every duration at its exact
  /// calibrated constant -- the historical single-run behaviour. The
  /// replicated benches set it (~2 %, the paper's testbed showed seconds
  /// of spread on ~40 s reboots) so confidence intervals across seeds are
  /// non-degenerate.
  double timing_jitter = 0.0;

  /// Paper-testbed defaults (same as value-initialisation; named for
  /// readability at call sites).
  [[nodiscard]] static Calibration paper_testbed() { return {}; }

  /// Throws InvariantViolation if any constant is nonsensical.
  void validate() const;
};

}  // namespace rh
