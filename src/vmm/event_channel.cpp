#include "vmm/event_channel.hpp"

#include "simcore/check.hpp"

namespace rh::vmm {

EventPort EventChannelTable::alloc_unbound(DomainId remote) {
  // Reuse the first closed slot, else grow.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].open) {
      slots_[i] = {remote, true, false};
      return static_cast<EventPort>(i);
    }
  }
  slots_.push_back({remote, true, false});
  return static_cast<EventPort>(slots_.size() - 1);
}

void EventChannelTable::bind(EventPort port) {
  ensure(port >= 0 && static_cast<std::size_t>(port) < slots_.size() &&
             slots_[static_cast<std::size_t>(port)].open,
         "EventChannelTable::bind: port not open");
  slots_[static_cast<std::size_t>(port)].bound = true;
}

void EventChannelTable::close(EventPort port) {
  ensure(port >= 0 && static_cast<std::size_t>(port) < slots_.size() &&
             slots_[static_cast<std::size_t>(port)].open,
         "EventChannelTable::close: port not open");
  slots_[static_cast<std::size_t>(port)] = {};
}

bool EventChannelTable::is_bound(EventPort port) const {
  return port >= 0 && static_cast<std::size_t>(port) < slots_.size() &&
         slots_[static_cast<std::size_t>(port)].open &&
         slots_[static_cast<std::size_t>(port)].bound;
}

std::size_t EventChannelTable::open_ports() const {
  std::size_t n = 0;
  for (const auto& s : slots_) n += s.open ? 1 : 0;
  return n;
}

std::size_t EventChannelTable::bound_ports() const {
  std::size_t n = 0;
  for (const auto& s : slots_) n += (s.open && s.bound) ? 1 : 0;
  return n;
}

std::uint64_t EventChannelTable::state_token() const {
  // FNV-1a over the slot contents.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const auto& s : slots_) {
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(s.remote)));
    mix((s.open ? 2u : 0u) | (s.bound ? 1u : 0u));
  }
  return h;
}

void EventChannelTable::serialize(mm::ByteWriter& w) const {
  w.u64(slots_.size());
  for (const auto& s : slots_) {
    w.u32(static_cast<std::uint32_t>(s.remote));
    w.u8(static_cast<std::uint8_t>((s.open ? 2u : 0u) | (s.bound ? 1u : 0u)));
  }
}

EventChannelTable EventChannelTable::deserialize(mm::ByteReader& r) {
  EventChannelTable t;
  const std::uint64_t n = r.u64();
  t.slots_.resize(static_cast<std::size_t>(n));
  for (auto& s : t.slots_) {
    s.remote = static_cast<DomainId>(static_cast<std::int32_t>(r.u32()));
    const std::uint8_t bits = r.u8();
    s.open = (bits & 2u) != 0;
    s.bound = (bits & 1u) != 0;
  }
  return t;
}

}  // namespace rh::vmm
