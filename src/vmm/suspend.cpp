// On-memory suspend/resume: the first of the paper's two mechanisms.
//
// Suspend "freezes" a domain's memory image in place: no page is copied
// anywhere. Only the 16 KiB execution state, the event-channel status and
// the P2M table are serialised into the preserved-region registry, along
// with the list of frozen machine frames. Resume (typically in a *new* VMM
// instance after quick reload) re-creates the domain shell, re-claims the
// exact frozen frames via the preserved P2M table, restores the execution
// state and runs the guest's resume handler.
#include <memory>
#include <utility>

#include "simcore/check.hpp"
#include "vmm/vmm.hpp"

namespace rh::vmm {

namespace {

/// Parsed preserved-domain record.
struct PreservedDomainRecord {
  std::string name;
  sim::Bytes memory_size = 0;
  ExecState exec;
  EventChannelTable event_channels;
  mm::P2mTable p2m;
};

PreservedDomainRecord parse_record(const mm::PreservedRegion& region) {
  mm::ByteReader r(region.payload);
  PreservedDomainRecord rec;
  rec.name = r.str();
  rec.memory_size = r.i64();
  rec.exec = ExecState::deserialize(r);
  rec.event_channels = EventChannelTable::deserialize(r);
  rec.p2m = mm::P2mTable::deserialize(r);
  ensure(r.exhausted(), "preserved domain record: trailing bytes");
  return rec;
}

}  // namespace

void Vmm::suspend_domain_on_memory(DomainId id, std::function<void()> done) {
  ensure(static_cast<bool>(done), "suspend: callback required");
  Domain& d = domain(id);
  ensure(!d.privileged(), "suspend: cannot suspend domain 0");
  ensure(d.running(), "suspend: domain '" + d.name() + "' is not running");
  ensure(d.hooks() != nullptr, "suspend: domain has no guest hooks");
  d.set_state(DomainState::kSuspending);
  if (tracer_.enabled()) trace("suspend event -> domain '" + d.name() + "'");

  sim_.after(calib_.suspend_event_delivery, [this, id, done = std::move(done)] {
    // The guest runs its suspend handler (detaching devices) and then
    // issues the suspend hypercall, which we receive as this continuation.
    domain(id).hooks()->on_suspend_event([this, id, done] {
      Domain& d = domain(id);
      const auto freeze =
          calib_.suspend_freeze_base +
          static_cast<sim::Duration>(
              sim::to_gib(d.memory_size()) *
              static_cast<double>(calib_.suspend_freeze_per_gib));
      sim_.after(freeze, [this, id, done] {
        Domain& d = domain(id);
        // Capture the live event-channel status into the execution state.
        d.exec().event_channels = d.event_channels().state_token();

        mm::ByteWriter w;
        w.str(d.name());
        w.i64(d.memory_size());
        d.exec().serialize(w);
        d.event_channels().serialize(w);
        d.p2m().serialize(w);

        mm::PreservedRegion region;
        region.name = std::string(kRegionPrefix) + d.name();
        region.payload = w.take();
        region.frozen_frames = d.p2m().mapped_frames();
        const std::string region_name = region.name;
        // The suspend path itself needs frames (region bookkeeping, the
        // metadata copy). Two ways that can fail: an injected allocation
        // failure, or the registry's preserved-frame budget. Either way
        // the domain still ends up suspended -- the guest already ran its
        // suspend handler -- but with NO preserved image, so only a
        // restore or cold boot can bring it back. Supervisors detect this
        // via has_preserved_image().
        bool recorded = false;
        if (faults_.roll(fault::FaultKind::kFrameAllocFailure, sim_.now(),
                         "suspend:" + d.name())) {
          if (tracer_.enabled()) {
            trace("domain '" + d.name() +
                  "' suspend frame allocation failed (injected); no image");
          }
        } else {
          try {
            preserved_.put(std::move(region));
            recorded = true;
          } catch (const mm::PreservedBudgetExceeded& e) {
            if (tracer_.enabled()) {
              trace("domain '" + d.name() +
                    "' image rejected by preserved-frame budget: " + e.what());
            }
          }
        }
        // Bit-rot injection: the image is recorded but a payload byte flips
        // in RAM before anyone reads it back. The stamped checksum still
        // reflects the original bytes, so resume-time verification catches
        // it (preserved_image_intact() goes false).
        if (recorded &&
            faults_.roll(fault::FaultKind::kCorruptPreservedImage, sim_.now(),
                         "suspend:" + d.name())) {
          preserved_.corrupt_payload(region_name);
          if (tracer_.enabled()) {
            trace("domain '" + d.name() +
                  "' preserved image corrupted in RAM (injected)");
          }
        }

        d.set_state(DomainState::kSuspendedInMemory);
        if (tracer_.enabled()) {
          trace("domain '" + d.name() + "' suspended on-memory (" +
                std::to_string(d.p2m().populated()) + " frames frozen)");
        }
        done();
      });
    });
  });
}

void Vmm::suspend_all_on_memory(std::function<void()> done) {
  ensure(static_cast<bool>(done), "suspend_all: callback required");
  std::vector<DomainId> targets;
  for (const auto id : unprivileged_domain_ids()) {
    if (domain(id).running()) targets.push_back(id);
  }
  if (targets.empty()) {
    sim_.after(0, std::move(done));
    return;
  }
  // All domains receive their suspend events in parallel; completion when
  // the last hypercall finishes.
  auto remaining = std::make_shared<std::size_t>(targets.size());
  auto shared_done = std::make_shared<std::function<void()>>(std::move(done));
  for (const auto id : targets) {
    suspend_domain_on_memory(id, [remaining, shared_done] {
      if (--*remaining == 0) (*shared_done)();
    });
  }
}

std::size_t Vmm::snapshot_domains_for_recovery() {
  std::size_t recorded = 0;
  for (const auto id : unprivileged_domain_ids()) {
    Domain& d = domain(id);
    if (!d.running()) continue;
    // Same record format as a suspend, cut at the instant of death: the
    // frozen frames are wherever the P2M says they are, the execution
    // state is whatever the vCPUs held when scheduling stopped.
    d.exec().event_channels = d.event_channels().state_token();
    mm::ByteWriter w;
    w.str(d.name());
    w.i64(d.memory_size());
    d.exec().serialize(w);
    d.event_channels().serialize(w);
    d.p2m().serialize(w);

    mm::PreservedRegion region;
    region.name = std::string(kRegionPrefix) + d.name();
    region.payload = w.take();
    region.frozen_frames = d.p2m().mapped_frames();
    const std::string region_name = region.name;
    // A stale record (leaked by an earlier incarnation) would block the
    // fresh snapshot; the crash handler overwrites it.
    if (preserved_.contains(region_name)) preserved_.erase(region_name);
    bool put_ok = false;
    if (faults_.roll(fault::FaultKind::kFrameAllocFailure, sim_.now(),
                     "crash:" + d.name())) {
      if (tracer_.enabled()) {
        trace("domain '" + d.name() +
              "' crash snapshot lost (injected allocation failure)");
      }
    } else {
      try {
        preserved_.put(std::move(region));
        put_ok = true;
        ++recorded;
      } catch (const mm::PreservedBudgetExceeded& e) {
        if (tracer_.enabled()) {
          trace("domain '" + d.name() +
                "' crash snapshot rejected by preserved-frame budget: " +
                e.what());
        }
      }
    }
    if (put_ok &&
        faults_.roll(fault::FaultKind::kCorruptPreservedImage, sim_.now(),
                     "crash:" + d.name())) {
      preserved_.corrupt_payload(region_name);
      if (tracer_.enabled()) {
        trace("domain '" + d.name() +
              "' crash snapshot corrupted in RAM (injected)");
      }
    }
  }
  if (tracer_.enabled()) {
    trace("crash snapshot: " + std::to_string(recorded) +
          " domain image(s) preserved in RAM");
  }
  return recorded;
}

Vmm::MicroRecoveryReport Vmm::micro_recover() const {
  MicroRecoveryReport out;
  const std::string prefix = kRegionPrefix;
  for (const auto& name : preserved_.names()) {
    if (name.rfind(prefix, 0) != 0) continue;
    ++out.regions_checked;
    const auto* region = preserved_.find(name);
    ensure(region != nullptr, "micro_recover: region vanished mid-walk");
    if (!preserved_.intact(name)) {
      out.corrupt_domains.push_back(name.substr(prefix.size()));
      continue;
    }
    // Re-parse the record end to end: this is the metadata rebuild -- heap
    // shadow, P2M, event channels -- the recovered VMM will resume from.
    const PreservedDomainRecord rec = parse_record(*region);
    ensure(rec.name == name.substr(prefix.size()),
           "micro_recover: record/region name mismatch");
    ++out.intact_regions;
    out.metadata_bytes += static_cast<sim::Bytes>(region->payload.size());
  }
  out.frames_consistent = frame_conservation_report().ok();
  return out;
}

bool Vmm::has_preserved_image(const std::string& name) const {
  return preserved_.contains(std::string(kRegionPrefix) + name);
}

bool Vmm::preserved_image_intact(const std::string& name) const {
  return preserved_.intact(std::string(kRegionPrefix) + name);
}

std::vector<std::string> Vmm::preserved_domain_names() const {
  std::vector<std::string> out;
  const std::string prefix = kRegionPrefix;
  for (const auto& name : preserved_.names()) {
    if (name.rfind(prefix, 0) == 0) out.push_back(name.substr(prefix.size()));
  }
  return out;
}

void Vmm::resume_domain_on_memory(const std::string& name, GuestHooks* hooks,
                                  std::function<void(DomainId)> done) {
  ensure(static_cast<bool>(done), "resume: callback required");
  ensure(hooks != nullptr, "resume: guest hooks required");
  const std::string region_name = std::string(kRegionPrefix) + name;
  ensure(preserved_.find(region_name) != nullptr,
         "resume: no preserved image for domain '" + name + "'");

  // Domain re-creation and state restoration are serialised through the
  // management stack in domain 0 -- the resume(n) ~ 0.43 n slope.
  xend_.enqueue(
      calib_.domain_create_base + calib_.resume_state_restore,
      [this, name, region_name, hooks, done = std::move(done)] {
        const auto* region = preserved_.find(region_name);
        ensure(region != nullptr, "resume: preserved image vanished");
        ensure(mm::payload_checksum(region->payload) == region->checksum,
               "resume: preserved image for domain '" + name +
                   "' failed its checksum (corrupted in RAM); a supervisor "
                   "must check preserved_image_intact() and cold-boot instead");
        PreservedDomainRecord rec = parse_record(*region);

        // Resuming within the same VMM instance (no reload in between):
        // the suspended domain's shell still exists and owns the frozen
        // frames; retire it so its successor can claim them.
        if (Domain* old_dom = find_domain_by_name(name)) {
          ensure(old_dom->state() == DomainState::kSuspendedInMemory,
                 "resume: domain '" + name + "' exists and is not suspended");
          const DomainId old_id = old_dom->id();
          allocator_.release_all(old_id);
          heap_.free("domain/" + name, kDomainHeapCost);
          domains_.erase(old_id);
        }

        const DomainId id = next_domain_id_++;
        heap_.allocate("domain/" + name, kDomainHeapCost);
        auto dom = std::make_unique<Domain>(id, name, rec.memory_size,
                                            /*privileged=*/false);
        // Re-attach the frozen frames. If the incoming VMM did not honour
        // the preserved regions, these frames were handed out or scrubbed
        // and this claim (or the guest's later integrity check) fails --
        // the corruption the quick reload mechanism exists to prevent.
        const auto frames = rec.p2m.mapped_frames();
        for (const auto mfn : frames) {
          if (allocator_.owner_of(mfn) == kVmmOwner) allocator_.release(mfn);
        }
        allocator_.claim(id, frames);
        dom->p2m() = std::move(rec.p2m);
        dom->exec() = rec.exec;
        dom->event_channels() = rec.event_channels;
        dom->set_hooks(hooks);
        dom->set_state(DomainState::kCreated);
        Domain& ref = *dom;
        domains_[id] = std::move(dom);
        register_domain_in_store(ref);
        note_domain_op();
        preserved_.erase(region_name);
        if (tracer_.enabled()) {
          trace("re-created domain '" + name + "' from preserved image");
        }

        // Re-attaching memory scales (mildly) with image size and runs
        // outside the management queue; the guest resume handler follows.
        const auto claim_walk = static_cast<sim::Duration>(
            sim::to_gib(ref.memory_size()) *
            static_cast<double>(calib_.resume_claim_per_gib));
        sim_.after(claim_walk, [this, id, hooks, done] {
          hooks->on_resume(id, [this, id, done] {
            domain(id).set_state(DomainState::kRunning);
            if (tracer_.enabled()) {
              trace("domain '" + domain(id).name() + "' resumed on-memory");
            }
            done(id);
          });
        });
      });
}

}  // namespace rh::vmm
