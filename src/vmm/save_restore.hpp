// Xen-style (disk-backed) domain save/restore -- the paper's baseline.
//
// "xm save" suspends a domain and writes its whole memory image to a file;
// "xm restore" reads it back and rebuilds the domain. These are the slow,
// memory-size-proportional operations the on-memory mechanism replaces.
// The ImageStore models save files: it lives on disk, so it survives
// power cycles (unlike the preserved-region registry).
#pragma once

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "hw/machine_memory.hpp"
#include "mm/p2m_table.hpp"
#include "simcore/types.hpp"
#include "vmm/domain.hpp"

namespace rh::vmm {

/// A domain memory image saved to disk.
struct SavedImage {
  std::string domain_name;
  sim::Bytes memory_size = 0;
  mm::Pfn pfn_count = 0;
  ExecState exec;
  EventChannelTable event_channels;
  /// Populated pages only: (pfn, content token) in PFN order.
  std::vector<std::pair<mm::Pfn, hw::ContentToken>> pages;

  [[nodiscard]] sim::Bytes image_bytes() const { return memory_size; }
};

/// The disk's collection of save files, keyed by domain name.
class ImageStore {
 public:
  void put(SavedImage image);
  [[nodiscard]] const SavedImage* find(const std::string& name) const;
  bool erase(const std::string& name);
  [[nodiscard]] std::size_t size() const { return images_.size(); }
  [[nodiscard]] bool empty() const { return images_.empty(); }

 private:
  std::unordered_map<std::string, SavedImage> images_;
};

}  // namespace rh::vmm
