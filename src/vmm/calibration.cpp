#include "vmm/calibration.hpp"

#include "simcore/check.hpp"

namespace rh {

void Calibration::validate() const {
  ensure(machine.ram >= dom0_memory + vmm_reserved_memory,
         "Calibration: machine RAM cannot hold dom0 + VMM");
  ensure(machine.cpu_cores > 0, "Calibration: need CPU cores");
  ensure(machine.disk.sequential_read_bps > 0 && machine.disk.sequential_write_bps > 0,
         "Calibration: disk throughput must be positive");
  ensure(machine.nic.bandwidth_bps > 0, "Calibration: NIC bandwidth must be positive");
  ensure(scrub_bps > 0, "Calibration: scrub rate must be positive");
  ensure(vmm_heap_size > 0, "Calibration: VMM heap must be positive");
  ensure(page_cache_fraction > 0.0 && page_cache_fraction <= 1.0,
         "Calibration: page_cache_fraction out of (0,1]");
  ensure(cache_block_size >= sim::kPageSize &&
             cache_block_size % sim::kPageSize == 0,
         "Calibration: cache block must be a positive multiple of the page size");
  ensure(mem_copy_bps > 0, "Calibration: memory copy rate must be positive");
  ensure(xen_save_bps > 0 && xen_restore_bps > 0,
         "Calibration: save/restore throughput must be positive");
  ensure(creation_artifact_nic_factor > 0.0 && creation_artifact_nic_factor <= 1.0,
         "Calibration: artifact NIC factor out of (0,1]");
  ensure(timing_jitter >= 0.0 && timing_jitter < 1.0,
         "Calibration: timing_jitter out of [0,1)");
}

}  // namespace rh
