// Xen-style disk-backed save/restore -- the saved-VM baseline.
//
// Unlike the on-memory mechanism, save writes the domain's *entire* memory
// image through the single disk, and restore reads it back: both costs are
// proportional to domain memory and serialise across domains on the disk
// queue. These are the curves the paper's Figures 4 and 5 compare against.
#include <utility>

#include "simcore/check.hpp"
#include "vmm/vmm.hpp"

namespace rh::vmm {

void ImageStore::put(SavedImage image) {
  ensure(!image.domain_name.empty(), "ImageStore: image needs a name");
  images_[image.domain_name] = std::move(image);
}

const SavedImage* ImageStore::find(const std::string& name) const {
  const auto it = images_.find(name);
  return it == images_.end() ? nullptr : &it->second;
}

bool ImageStore::erase(const std::string& name) { return images_.erase(name) > 0; }

void Vmm::save_domain_to_disk(DomainId id, ImageStore& store,
                              std::function<void()> done) {
  ensure(static_cast<bool>(done), "save: callback required");
  Domain& d = domain(id);
  ensure(!d.privileged(), "save: cannot save domain 0");
  ensure(d.running(), "save: domain '" + d.name() + "' is not running");
  ensure(d.hooks() != nullptr, "save: domain has no guest hooks");
  d.set_state(DomainState::kSuspending);
  if (tracer_.enabled()) trace("xm save -> domain '" + d.name() + "'");

  sim_.after(calib_.suspend_event_delivery, [this, id, &store,
                                             done = std::move(done)] {
    domain(id).hooks()->on_suspend_event([this, id, &store, done] {
      Domain& d = domain(id);
      d.set_state(DomainState::kSavedToDisk);
      // Whole-image write at the effective save rate; the device queue
      // serialises concurrent saves. Related-work variants: optional
      // compression (smaller image, CPU cost) and/or a RAM-disk target.
      const auto image_bytes = static_cast<sim::Bytes>(
          static_cast<double>(d.memory_size()) * calib_.xen_save_compression_ratio);
      const bool compressed = calib_.xen_save_compression_ratio < 1.0;
      const auto compress_cpu =
          compressed && calib_.xen_save_compress_bps > 0
              ? sim::transfer_time(d.memory_size(), calib_.xen_save_compress_bps)
              : 0;
      hw::Disk& device =
          calib_.save_to_ram_disk ? machine_.ram_disk() : machine_.disk();
      const auto write_rate = calib_.save_to_ram_disk
                                  ? device.model().sequential_write_bps
                                  : calib_.xen_save_bps;
      const auto service =
          calib_.xen_save_prep + sim::transfer_time(image_bytes, write_rate);
      machine_.cpu().run(compress_cpu, [this, id, &store, dev = &device,
                                        service, done] {
      dev->occupy(service, [this, id, &store, done] {
        // An injected write error loses the image partway through: the
        // domain was already quiesced and torn down, but no usable save
        // file exists. The caller must check the store before restoring.
        if (faults_.roll(fault::FaultKind::kDiskWriteError, sim_.now(),
                         "save:" + domain(id).name())) {
          if (tracer_.enabled()) {
            trace("domain '" + domain(id).name() +
                  "' save FAILED: disk write error (injected)");
          }
          destroy_domain(id);
          done();
          return;
        }
        store.put(capture_image(id));
        if (tracer_.enabled()) {
          trace("domain '" + domain(id).name() + "' image written to disk");
        }
        destroy_domain(id);
        done();
      });
      });
    });
  });
}

void Vmm::restore_domain_from_disk(const std::string& name, ImageStore& store,
                                   GuestHooks* hooks,
                                   std::function<void(DomainId)> done) {
  ensure(static_cast<bool>(done), "restore: callback required");
  ensure(hooks != nullptr, "restore: guest hooks required");
  const SavedImage* img = store.find(name);
  ensure(img != nullptr, "restore: no saved image for domain '" + name + "'");
  const sim::Bytes memory = img->memory_size;

  // Domain creation is serialised through xend; the image read then
  // occupies the disk.
  // Populate only as many pages as the image actually carries (its holes
  // stay holes): a ballooned-down VM restores onto a host that cannot back
  // its nominal size -- the overcommit case.
  const sim::Bytes initial_allocation =
      static_cast<sim::Bytes>(img->pages.size()) * sim::kPageSize;
  xend_.enqueue(create_duration(memory), [this, name, &store, hooks, memory,
                                          initial_allocation,
                                          done = std::move(done)] {
    Domain& d = make_domain(name, memory, hooks, /*privileged=*/false,
                            initial_allocation);
    const DomainId id = d.id();
    const auto image_bytes = static_cast<sim::Bytes>(
        static_cast<double>(memory) * calib_.xen_save_compression_ratio);
    hw::Disk& device =
        calib_.save_to_ram_disk ? machine_.ram_disk() : machine_.disk();
    const auto read_rate = calib_.save_to_ram_disk
                               ? device.model().sequential_read_bps
                               : calib_.xen_restore_bps;
    // Decompression streams roughly twice as fast as compression.
    const auto decompress_cpu =
        calib_.xen_save_compression_ratio < 1.0 &&
                calib_.xen_save_compress_bps > 0
            ? sim::transfer_time(memory, 2.0 * calib_.xen_save_compress_bps)
            : 0;
    const auto service = calib_.xen_restore_prep + decompress_cpu +
                         sim::transfer_time(image_bytes, read_rate);
    device.occupy(service, [this, id, name, &store, hooks, done] {
      // An injected read error means the save file is unreadable: tear the
      // half-built domain back down, drop the dead image, and report
      // failure via kNoDomain so a supervisor can fall back to cold boot.
      if (faults_.roll(fault::FaultKind::kDiskReadError, sim_.now(),
                       "restore:" + name)) {
        if (tracer_.enabled()) {
          trace("domain '" + name +
                "' restore FAILED: disk read error (injected)");
        }
        destroy_domain(id);
        store.erase(name);
        done(kNoDomain);
        return;
      }
      const SavedImage* img = store.find(name);
      ensure(img != nullptr, "restore: saved image vanished mid-restore");
      apply_image(id, *img);
      store.erase(name);
      if (tracer_.enabled()) {
        trace("domain '" + name + "' image read from disk");
      }
      hooks->on_resume(id, [this, id, done] {
        domain(id).set_state(DomainState::kRunning);
        if (tracer_.enabled()) {
          trace("domain '" + domain(id).name() + "' restored from disk");
        }
        done(id);
      });
    });
  });
}

SavedImage Vmm::capture_image(DomainId id) const {
  const Domain& d = domain(id);
  SavedImage img;
  img.domain_name = d.name();
  img.memory_size = d.memory_size();
  img.pfn_count = d.p2m().pfn_count();
  img.exec = d.exec();
  img.exec.event_channels = d.event_channels().state_token();
  img.event_channels = d.event_channels();
  for (mm::Pfn pfn = 0; pfn < d.p2m().pfn_count(); ++pfn) {
    const auto mfn = d.p2m().mfn_of(pfn);
    if (mfn != mm::kNoFrame) {
      img.pages.emplace_back(pfn, machine_.memory().read(mfn));
    }
  }
  return img;
}

void Vmm::apply_image(DomainId id, const SavedImage& img) {
  Domain& d = domain(id);
  // Rebuild pseudo-physical shape symmetrically: balloon out pages that
  // were holes at capture time, populate pages the fresh domain started
  // without (a reduced-allocation shell restoring a bigger image), then
  // write back every captured page's contents. Releases run before
  // allocations so the net frame demand is only the true delta.
  ensure(img.pfn_count == d.p2m().pfn_count(), "apply_image: shape mismatch");
  std::vector<bool> populated(static_cast<std::size_t>(img.pfn_count), false);
  for (const auto& [pfn, token] : img.pages) {
    populated[static_cast<std::size_t>(pfn)] = true;
  }
  for (mm::Pfn pfn = 0; pfn < img.pfn_count; ++pfn) {
    if (!populated[static_cast<std::size_t>(pfn)] && !d.p2m().is_hole(pfn)) {
      allocator_.release(d.p2m().remove(pfn));
    }
  }
  std::vector<mm::Pfn> missing;
  for (mm::Pfn pfn = 0; pfn < img.pfn_count; ++pfn) {
    if (populated[static_cast<std::size_t>(pfn)] && d.p2m().is_hole(pfn)) {
      missing.push_back(pfn);
    }
  }
  if (!missing.empty()) {
    const auto frames =
        allocator_.allocate(id, static_cast<std::int64_t>(missing.size()));
    for (std::size_t i = 0; i < missing.size(); ++i) {
      machine_.memory().scrub(frames[i]);
      d.p2m().add(missing[i], frames[i]);
    }
  }
  for (const auto& [pfn, token] : img.pages) {
    guest_write(id, pfn, token);
  }
  d.exec() = img.exec;
  d.event_channels() = img.event_channels;
}

void Vmm::restore_domain_from_image(const SavedImage& image, GuestHooks* hooks,
                                    std::function<void(DomainId)> done) {
  ensure(static_cast<bool>(done), "restore_from_image: callback required");
  ensure(hooks != nullptr, "restore_from_image: guest hooks required");
  // Copy the image: the caller's buffer need not outlive the operation.
  auto img = std::make_shared<SavedImage>(image);
  xend_.enqueue(create_duration(img->memory_size),
                [this, img, hooks, done = std::move(done)] {
                  Domain& d = make_domain(
                      img->domain_name, img->memory_size, hooks,
                      /*privileged=*/false,
                      static_cast<sim::Bytes>(img->pages.size()) * sim::kPageSize);
                  const DomainId id = d.id();
                  apply_image(id, *img);
                  if (tracer_.enabled()) {
                    trace("domain '" + img->domain_name +
                          "' rebuilt from migrated image");
                  }
                  hooks->on_resume(id, [this, id, done] {
                    domain(id).set_state(DomainState::kRunning);
                    if (tracer_.enabled()) {
                      trace("domain '" + domain(id).name() +
                            "' live on destination");
                    }
                    done(id);
                  });
                });
}

}  // namespace rh::vmm
