#include "vmm/xenstore.hpp"

#include <utility>

#include "simcore/check.hpp"

namespace rh::vmm {

std::vector<std::string> XenStore::split(const std::string& path) {
  ensure(!path.empty() && path.front() == '/',
         "XenStore: path must start with '/'");
  std::vector<std::string> parts;
  std::string current;
  for (std::size_t i = 1; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      ensure(!current.empty(), "XenStore: empty path component in '" + path + "'");
      parts.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(path[i]);
    }
  }
  return parts;
}

const XenStore::Node* XenStore::find(const std::string& path) const {
  const Node* node = &root_;
  for (const auto& part : split(path)) {
    const auto it = node->children.find(part);
    if (it == node->children.end()) return nullptr;
    node = it->second.get();
  }
  return node;
}

void XenStore::write(const std::string& path, std::string value) {
  Node* node = &root_;
  for (const auto& part : split(path)) {
    auto it = node->children.find(part);
    if (it == node->children.end()) {
      auto child = std::make_unique<Node>();
      it = node->children.emplace(part, std::move(child)).first;
      ++node_count_;
      footprint_ += kNodeOverhead + static_cast<sim::Bytes>(part.size());
    }
    node = it->second.get();
  }
  footprint_ += static_cast<sim::Bytes>(value.size()) -
                static_cast<sim::Bytes>(node->value.size());
  node->value = std::move(value);
  fire_watches(path);
}

std::optional<std::string> XenStore::read(const std::string& path) const {
  const Node* node = find(path);
  if (node == nullptr) return std::nullopt;
  return node->value;
}

bool XenStore::exists(const std::string& path) const {
  return find(path) != nullptr;
}

std::vector<std::string> XenStore::list(const std::string& path) const {
  const Node* node = find(path);
  std::vector<std::string> out;
  if (node == nullptr) return out;
  for (const auto& [name, child] : node->children) out.push_back(name);
  return out;
}

sim::Bytes XenStore::subtree_bytes(const std::string& name,
                                   const Node& node) const {
  sim::Bytes total = kNodeOverhead + static_cast<sim::Bytes>(name.size()) +
                     static_cast<sim::Bytes>(node.value.size());
  for (const auto& [child_name, child] : node.children) {
    total += subtree_bytes(child_name, *child);
  }
  return total;
}

std::size_t XenStore::subtree_nodes(const Node& node) const {
  std::size_t n = 1;
  for (const auto& [name, child] : node.children) n += subtree_nodes(*child);
  return n;
}

std::size_t XenStore::remove(const std::string& path) {
  const auto parts = split(path);
  Node* parent = &root_;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    const auto it = parent->children.find(parts[i]);
    if (it == parent->children.end()) return 0;
    parent = it->second.get();
  }
  const auto it = parent->children.find(parts.back());
  if (it == parent->children.end()) return 0;
  const std::size_t removed = subtree_nodes(*it->second);
  footprint_ -= subtree_bytes(parts.back(), *it->second);
  node_count_ -= removed;
  parent->children.erase(it);
  fire_watches(path);
  return removed;
}

XenStore::WatchId XenStore::watch(const std::string& prefix, WatchFn fn) {
  ensure(static_cast<bool>(fn), "XenStore::watch: callback required");
  (void)split(prefix);  // validate syntax
  const WatchId id = next_watch_++;
  watches_[id] = {prefix, std::move(fn)};
  return id;
}

void XenStore::unwatch(WatchId id) { watches_.erase(id); }

void XenStore::fire_watches(const std::string& path) {
  // Copy: a watch callback may add/remove watches.
  const auto snapshot = watches_;
  for (const auto& [id, entry] : snapshot) {
    const auto& prefix = entry.first;
    if (path.size() >= prefix.size() &&
        path.compare(0, prefix.size(), prefix) == 0 &&
        (path.size() == prefix.size() || path[prefix.size()] == '/' ||
         prefix == "/")) {
      entry.second(path);
    }
  }
}

void XenStore::clear() {
  root_.children.clear();
  root_.value.clear();
  node_count_ = 0;
  footprint_ = 0;
  watches_.clear();
}

}  // namespace rh::vmm
