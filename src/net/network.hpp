// Point-to-point network link model.
//
// Client and server hosts are connected by gigabit Ethernet. The link adds
// propagation latency; bulk bandwidth is modelled at the NIC (transmit
// queue) so that all VMs on a host share the host's uplink.
#pragma once

#include <cstdint>

#include "simcore/inline_callback.hpp"
#include "simcore/simulation.hpp"
#include "simcore/types.hpp"

namespace rh::sim {
class ParallelSimulation;
}  // namespace rh::sim

namespace rh::net {

struct LinkModel {
  sim::Duration latency = 200;  ///< one-way propagation, microseconds
  double bulk_bandwidth_bps = 117.0e6;  ///< for link-level bulk transfers
};

/// A network link: delivers messages after one-way latency, and supports
/// bulk transfers (used by live migration) that occupy the link FIFO-style.
class Link {
 public:
  Link(sim::Simulation& sim, LinkModel model) : sim_(sim), model_(model) {}
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Delivers a small message (latency only; no bandwidth occupancy).
  /// When the link is bound to a remote partition the delivery routes
  /// through the parallel engine's mailboxes instead of the local
  /// calendar; unbound links keep the inline fast path.
  void deliver(sim::InlineCallback on_delivered);

  /// Binds the link's deliveries to partition `dst_partition` of a
  /// parallel engine: the far end of this link lives on another event
  /// partition, and the link's one-way latency (which must be >= the
  /// engine's lookahead) carries messages across the partition boundary.
  void bind_remote(sim::ParallelSimulation& engine, std::int32_t dst_partition);

  [[nodiscard]] bool remote() const { return remote_engine_ != nullptr; }

  /// Transfers `size` bytes over the link; the link is occupied for the
  /// transfer's duration (subsequent bulk transfers queue behind it).
  void bulk_transfer(sim::Bytes size, sim::InlineCallback on_done);

  /// Like bulk_transfer but rate-limited to `bps` (capped at the link's
  /// own bandwidth). Live migration throttles itself this way.
  void bulk_transfer_at(sim::Bytes size, double bps,
                        sim::InlineCallback on_done);

  [[nodiscard]] sim::Duration latency() const { return model_.latency; }
  [[nodiscard]] sim::Bytes bulk_bytes_sent() const { return bulk_bytes_; }

  /// Duration a bulk transfer of `size` bytes takes in isolation.
  [[nodiscard]] sim::Duration bulk_duration(sim::Bytes size) const;

 private:
  sim::Simulation& sim_;
  LinkModel model_;
  sim::SimTime bulk_busy_until_ = 0;
  sim::Bytes bulk_bytes_ = 0;
  sim::ParallelSimulation* remote_engine_ = nullptr;
  std::int32_t remote_dst_ = -1;
};

}  // namespace rh::net
