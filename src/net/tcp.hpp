// Simplified TCP connection model: retransmission, backoff, timeouts.
//
// Section 5.3 of the paper observes that an ssh session *survives* a
// warm-VM or saved-VM reboot thanks to TCP retransmission -- unless a
// client-side timeout shorter than the outage fires -- and always dies
// across a cold-VM reboot because the server was shut down. This model
// captures exactly that behaviour: a client endpoint sends periodic
// keepalive segments; the peer's reply (ACK / silently dropped / RST /
// FIN) drives the connection state machine.
#pragma once

#include <cstdint>
#include <functional>

#include "simcore/simulation.hpp"
#include "simcore/types.hpp"

namespace rh::net {

/// What happens to a segment that reaches (or fails to reach) the server.
enum class SegmentOutcome : std::uint8_t {
  kAck,      ///< server alive, connection state intact
  kDropped,  ///< host unreachable (suspended / powered off): no reply
  kRst,      ///< host alive but connection state lost (server restarted)
  kFin,      ///< server closed the connection gracefully (clean shutdown)
};

/// Terminal and live states of the (client view of the) connection.
enum class TcpState : std::uint8_t {
  kEstablished,
  kRecovering,    ///< segments being retransmitted, not yet acked
  kClosedByPeer,  ///< received FIN
  kReset,         ///< received RST
  kTimedOut,      ///< client-side timeout expired during an outage
  kClosedLocal,   ///< close() called
};

/// Client-side TCP connection with exponential-backoff retransmission.
class TcpConnection {
 public:
  struct Config {
    sim::Duration keepalive_interval = sim::kSecond;
    /// 0 disables the client-side timeout (like the paper's server-side
    /// only configuration); otherwise the connection times out after this
    /// long without an ACK (the paper's 60 s ssh client timeout).
    sim::Duration client_timeout = 0;
    sim::Duration rto_initial = sim::kSecond;
    /// Retry-interval cap. Pure TCP RTO doubles up to ~64 s, but an
    /// interactive session (ssh keepalives, user keystrokes) keeps placing
    /// new data on the wire, so the *effective* probe interval stays
    /// bounded; 8 s reproduces the paper's observation that a session
    /// survives a ~40 s warm reboot with a 60 s client timeout.
    sim::Duration rto_max = 8 * sim::kSecond;
    sim::Duration round_trip = 400;  ///< microseconds
  };

  /// `peer` is queried once per transmitted segment and reports the
  /// segment's fate given the server's state at that instant.
  TcpConnection(sim::Simulation& sim, Config config,
                std::function<SegmentOutcome()> peer);
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;
  ~TcpConnection();

  /// Starts the keepalive loop. Must be called at most once.
  void open();

  /// Local close; stops all activity.
  void close();

  [[nodiscard]] TcpState state() const { return state_; }
  [[nodiscard]] bool alive() const {
    return state_ == TcpState::kEstablished || state_ == TcpState::kRecovering;
  }

  [[nodiscard]] std::uint64_t segments_sent() const { return segments_sent_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }

  /// Longest gap (so far) between an ACKed segment and the next ACK.
  [[nodiscard]] sim::Duration longest_outage() const { return longest_outage_; }

 private:
  void send_segment(bool is_retransmission);
  void handle_outcome(SegmentOutcome outcome);
  void terminate(TcpState s);
  void schedule_keepalive();

  sim::Simulation& sim_;
  Config config_;
  std::function<SegmentOutcome()> peer_;
  TcpState state_ = TcpState::kEstablished;
  bool opened_ = false;

  sim::EventId pending_event_ = sim::kInvalidEventId;
  sim::Duration current_rto_ = 0;
  sim::SimTime outage_start_ = 0;
  sim::SimTime last_ack_ = 0;

  std::uint64_t segments_sent_ = 0;
  std::uint64_t retransmissions_ = 0;
  sim::Duration longest_outage_ = 0;
};

}  // namespace rh::net
