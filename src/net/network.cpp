#include "net/network.hpp"

#include <algorithm>
#include <utility>

#include "simcore/check.hpp"

namespace rh::net {

void Link::deliver(sim::InlineCallback on_delivered) {
  ensure(static_cast<bool>(on_delivered), "Link::deliver: callback required");
  sim_.after(model_.latency, std::move(on_delivered));
}

sim::Duration Link::bulk_duration(sim::Bytes size) const {
  return model_.latency + sim::transfer_time(size, model_.bulk_bandwidth_bps);
}

void Link::bulk_transfer(sim::Bytes size, sim::InlineCallback on_done) {
  bulk_transfer_at(size, model_.bulk_bandwidth_bps, std::move(on_done));
}

void Link::bulk_transfer_at(sim::Bytes size, double bps,
                            sim::InlineCallback on_done) {
  ensure(size >= 0, "Link::bulk_transfer: negative size");
  ensure(bps > 0, "Link::bulk_transfer: rate must be positive");
  ensure(static_cast<bool>(on_done), "Link::bulk_transfer: callback required");
  const double rate = std::min(bps, model_.bulk_bandwidth_bps);
  const sim::SimTime start = std::max(sim_.now(), bulk_busy_until_);
  bulk_busy_until_ = start + model_.latency + sim::transfer_time(size, rate);
  bulk_bytes_ += size;
  sim_.at(bulk_busy_until_, std::move(on_done));
}

}  // namespace rh::net
