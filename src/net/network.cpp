#include "net/network.hpp"

#include <algorithm>
#include <utility>

#include "simcore/check.hpp"
#include "simcore/parallel.hpp"

namespace rh::net {

void Link::deliver(sim::InlineCallback on_delivered) {
  ensure(static_cast<bool>(on_delivered), "Link::deliver: callback required");
  if (remote_engine_ != nullptr) {
    remote_engine_->post(remote_dst_, model_.latency, std::move(on_delivered));
    return;
  }
  sim_.after(model_.latency, std::move(on_delivered));
}

void Link::bind_remote(sim::ParallelSimulation& engine,
                       std::int32_t dst_partition) {
  ensure(model_.latency >= engine.lookahead(),
         "Link::bind_remote: link latency below the engine lookahead");
  remote_engine_ = &engine;
  remote_dst_ = dst_partition;
}

sim::Duration Link::bulk_duration(sim::Bytes size) const {
  return model_.latency + sim::transfer_time(size, model_.bulk_bandwidth_bps);
}

void Link::bulk_transfer(sim::Bytes size, sim::InlineCallback on_done) {
  bulk_transfer_at(size, model_.bulk_bandwidth_bps, std::move(on_done));
}

void Link::bulk_transfer_at(sim::Bytes size, double bps,
                            sim::InlineCallback on_done) {
  ensure(size >= 0, "Link::bulk_transfer: negative size");
  ensure(bps > 0, "Link::bulk_transfer: rate must be positive");
  ensure(static_cast<bool>(on_done), "Link::bulk_transfer: callback required");
  const double rate = std::min(bps, model_.bulk_bandwidth_bps);
  const sim::SimTime start = std::max(sim_.now(), bulk_busy_until_);
  bulk_busy_until_ = start + model_.latency + sim::transfer_time(size, rate);
  bulk_bytes_ += size;
  sim_.at(bulk_busy_until_, std::move(on_done));
}

}  // namespace rh::net
