#include "net/tcp.hpp"

#include <algorithm>
#include <utility>

#include "simcore/check.hpp"

namespace rh::net {

TcpConnection::TcpConnection(sim::Simulation& sim, Config config,
                             std::function<SegmentOutcome()> peer)
    : sim_(sim), config_(config), peer_(std::move(peer)) {
  ensure(static_cast<bool>(peer_), "TcpConnection: peer callback required");
  ensure(config_.keepalive_interval > 0, "TcpConnection: keepalive must be > 0");
  ensure(config_.rto_initial > 0, "TcpConnection: rto_initial must be > 0");
}

TcpConnection::~TcpConnection() {
  if (pending_event_ != sim::kInvalidEventId) sim_.cancel(pending_event_);
}

void TcpConnection::open() {
  ensure(!opened_, "TcpConnection::open: already opened");
  opened_ = true;
  last_ack_ = sim_.now();
  schedule_keepalive();
}

void TcpConnection::close() {
  if (!alive()) return;
  terminate(TcpState::kClosedLocal);
}

void TcpConnection::schedule_keepalive() {
  pending_event_ = sim_.after(config_.keepalive_interval,
                              [this] { send_segment(/*is_retransmission=*/false); });
}

void TcpConnection::send_segment(bool is_retransmission) {
  pending_event_ = sim::kInvalidEventId;
  if (!alive()) return;
  ++segments_sent_;
  if (is_retransmission) ++retransmissions_;
  // The segment's fate is decided by the server's state when it arrives;
  // we sample the peer after one round trip and then act on the reply.
  pending_event_ = sim_.after(config_.round_trip, [this] {
    pending_event_ = sim::kInvalidEventId;
    handle_outcome(peer_());
  });
}

void TcpConnection::handle_outcome(SegmentOutcome outcome) {
  if (!alive()) return;
  switch (outcome) {
    case SegmentOutcome::kAck: {
      if (state_ == TcpState::kRecovering) {
        longest_outage_ = std::max(longest_outage_, sim_.now() - outage_start_);
        state_ = TcpState::kEstablished;
      }
      last_ack_ = sim_.now();
      schedule_keepalive();
      return;
    }
    case SegmentOutcome::kDropped: {
      if (state_ == TcpState::kEstablished) {
        state_ = TcpState::kRecovering;
        outage_start_ = sim_.now();
        current_rto_ = config_.rto_initial;
      }
      // Client-side timeout: measured from the last successful exchange.
      if (config_.client_timeout > 0 &&
          sim_.now() + current_rto_ - last_ack_ > config_.client_timeout) {
        // The timeout fires while waiting for the next retransmission.
        pending_event_ =
            sim_.after(std::max<sim::Duration>(
                           0, config_.client_timeout - (sim_.now() - last_ack_)),
                       [this] {
                         pending_event_ = sim::kInvalidEventId;
                         terminate(TcpState::kTimedOut);
                       });
        return;
      }
      pending_event_ = sim_.after(current_rto_, [this] {
        send_segment(/*is_retransmission=*/true);
      });
      current_rto_ = std::min(current_rto_ * 2, config_.rto_max);
      return;
    }
    case SegmentOutcome::kRst:
      terminate(TcpState::kReset);
      return;
    case SegmentOutcome::kFin:
      terminate(TcpState::kClosedByPeer);
      return;
  }
}

void TcpConnection::terminate(TcpState s) {
  state_ = s;
  if (pending_event_ != sim::kInvalidEventId) {
    sim_.cancel(pending_event_);
    pending_event_ = sim::kInvalidEventId;
  }
}

}  // namespace rh::net
