// Phase spans: nested [start, end] windows over simulated time.
//
// The rejuvenation pipeline is a tree of phases -- a pass contains an
// admission phase, a suspend, the xexec quick reload (which itself
// contains the VMM re-init), the resume, the cache re-warm -- and Fig. 7's
// downtime breakdown is exactly the first level of that tree. Spans record
// it directly: every span has a phase tag, a short inline label, a start
// and end in simulated microseconds, and an explicit parent, so the tree
// survives the callback-driven control flow (RAII scoping cannot: most
// phases end inside a completion callback, not at scope exit).
//
// Records are POD (no heap per span) and append-only; open/close are
// checked (no double close, no close of an unknown span, monotonic time),
// which is what the `obs` test label's nesting-invariant suite asserts.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "simcore/types.hpp"

namespace rh::obs {

/// Taxonomy of rejuvenation/migration phases (DESIGN.md §10).
enum class Phase : std::uint8_t {
  kPass,           ///< one whole rejuvenation pass (driver or supervised)
  kStep,           ///< one sim::Script step of a reboot driver
  kAdmission,      ///< pre-suspend preserved-memory admission
  kXexecLoad,      ///< loading the new VMM image via xexec
  kSuspend,        ///< on-memory suspend of all domains
  kDom0Shutdown,   ///< domain 0 userland shutdown
  kQuickReload,    ///< xexec jump + new VMM + dom0 boot (no hardware reset)
  kVmmInit,        ///< new VMM instance boot + dom0 userland (re-)init
  kHardwareReset,  ///< power cycle + POST + boot loader
  kResume,         ///< on-memory resume of preserved domains
  kRestore,        ///< disk restore of saved domains
  kSaveToDisk,     ///< disk save of domains
  kGuestShutdown,  ///< guest OS shutdowns
  kGuestBoot,      ///< guest OS cold boots
  kCacheRewarm,    ///< post-resume degradation window (creation artifact)
  kPreCopyRound,   ///< one live-migration pre-copy round
  kStopAndCopy,    ///< live-migration stop-and-copy
  kMigration,      ///< one whole live migration
  kLadderRung,     ///< one rung of the supervisor's degradation ladder
  kRollingPass,    ///< cluster-level rolling rejuvenation
  kMicroRecovery,  ///< one in-place VMM micro-recovery attempt (§13)
  kOther,
};

[[nodiscard]] const char* to_string(Phase p);

/// Index of a span within its recorder. kNoSpan = "no parent"/"disabled".
using SpanId = std::uint32_t;
inline constexpr SpanId kNoSpan = 0xffffffffu;

/// One recorded span. POD; label is inline and truncated to 31 chars.
struct SpanRecord {
  sim::SimTime start = 0;
  sim::SimTime end = kOpenEnd;
  SpanId parent = kNoSpan;
  Phase phase = Phase::kOther;
  char label[32] = {};

  static constexpr sim::SimTime kOpenEnd = -1;

  [[nodiscard]] bool open() const { return end == kOpenEnd; }
  [[nodiscard]] sim::Duration duration() const { return end - start; }

  void set_label(std::string_view s) {
    const std::size_t n = s.size() < sizeof label - 1 ? s.size() : sizeof label - 1;
    std::memcpy(label, s.data(), n);
    label[n] = '\0';
  }
};

/// Append-only store of phase spans with checked open/close.
class SpanRecorder {
 public:
  /// Opens a span at `now` under `parent` (kNoSpan for a root).
  SpanId open(sim::SimTime now, Phase phase, std::string_view label,
              SpanId parent = kNoSpan);

  /// Closes an open span at `now` (must be >= its start).
  void close(SpanId id, sim::SimTime now);

  /// Records an already-completed window in one call (used for windows
  /// whose end is known up front, e.g. the cache re-warm artifact).
  SpanId complete(sim::SimTime start, sim::SimTime end, Phase phase,
                  std::string_view label, SpanId parent = kNoSpan);

  [[nodiscard]] const std::vector<SpanRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t open_count() const { return open_count_; }

  /// Direct children of `parent` (kNoSpan = the roots), in open order.
  [[nodiscard]] std::vector<SpanId> children_of(SpanId parent) const;

  void clear();

 private:
  std::vector<SpanRecord> records_;
  std::size_t open_count_ = 0;
};

}  // namespace rh::obs
