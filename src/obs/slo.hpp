// SLO evaluation over scrape outcomes: burn-rate admission gating and
// dark-host detection.
//
// The only availability signal a production control plane really has is
// whether targets answer their scrapes. This evaluator consumes exactly
// that: per-round (ok, miss) outcomes. Two rules come out of it:
//
//  - a *burn rate* over a trailing window of rounds -- the observed
//    scrape error rate divided by the SLO's error budget (1 - target).
//    Burn >= pause_burn_rate means the fleet is eating budget too fast
//    for planned maintenance to continue, so wave admission pauses until
//    the window cools down (the ReHype/Kourai motivation: react to what
//    the telemetry shows, not to an omniscient callback);
//  - a per-host *dark* flag after N consecutive missed scrapes -- the
//    scrape-visible proxy for "this VMM hung/crashed", which fires from
//    telemetry alone, before (or without) any watchdog notification.
//
// Pure deterministic control-partition state; state_digest() joins the
// worker-count-invariance checks.
#pragma once

#include <cstdint>
#include <vector>

#include "simcore/types.hpp"

namespace rh::obs {

struct SloConfig {
  /// Scrape-availability objective (fraction of scrapes that answer).
  double availability_target = 0.99;
  /// Pause wave admission when burn rate reaches this multiple of the
  /// error budget.
  double pause_burn_rate = 2.0;
  /// Trailing scrape rounds in the burn-rate window.
  std::size_t window_rounds = 8;
  /// Consecutive missed scrapes before a host is flagged dark.
  int dark_after_misses = 3;
};

class SloEvaluator {
 public:
  SloEvaluator(std::size_t instances, SloConfig config);

  /// Records one scrape outcome for `instance` in the current round.
  /// Returns true exactly when this outcome flipped the host dark (the
  /// dark_after_misses-th consecutive miss).
  bool record(std::size_t instance, bool ok);

  /// Closes the current round's (ok, miss) bucket into the window.
  void end_round();

  /// Burn rate over the completed rounds in the window (0 when none).
  [[nodiscard]] double burn_rate() const;
  /// True when the burn rate has reached the pause threshold.
  [[nodiscard]] bool admission_paused() const {
    return completed_rounds_ > 0 && burn_rate() >= config_.pause_burn_rate;
  }

  [[nodiscard]] bool dark(std::size_t instance) const {
    return dark_[instance] != 0;
  }
  [[nodiscard]] std::size_t dark_hosts() const;
  [[nodiscard]] int consecutive_misses(std::size_t instance) const {
    return misses_[instance];
  }
  [[nodiscard]] std::uint64_t rounds_completed() const {
    return completed_rounds_;
  }

  [[nodiscard]] std::uint64_t state_digest() const;

 private:
  struct Round {
    std::uint64_t ok = 0;
    std::uint64_t miss = 0;
  };

  SloConfig config_;
  std::vector<int> misses_;         ///< consecutive misses per instance
  std::vector<std::uint8_t> dark_;  ///< currently dark
  std::vector<Round> window_;       ///< ring of completed rounds
  std::size_t window_head_ = 0;
  std::size_t window_filled_ = 0;
  Round current_;
  std::uint64_t completed_rounds_ = 0;
  std::uint64_t dark_transitions_ = 0;
};

}  // namespace rh::obs
