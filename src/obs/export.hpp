// Exporters: Chrome trace_event JSON (chrome://tracing, Perfetto) and a
// flat metrics JSON consumed by benches and CI artifacts.
#pragma once

#include <ostream>
#include <string>
#include <string_view>

#include "obs/observer.hpp"

namespace rh::obs {

/// Locale-independent, round-trip-exact double formatting
/// (std::to_chars shortest form: strtod(fmt_double(v)) == v bit-for-bit).
/// printf's %g honours the C locale's decimal point, so exporter output
/// and BENCH_*.json digests could vary with the environment; every float
/// the exporters and the Prometheus renderer emit goes through here
/// instead. Infinities and NaN render as "inf"/"-inf"/"nan" (callers
/// embedding the result in JSON must quote or gate non-finite values).
[[nodiscard]] std::string fmt_double(double v);

/// Appends one process's spans and events to a Chrome trace. Spans become
/// async "b"/"e" pairs (async events tolerate the overlapping siblings a
/// parallel resume produces); typed events become instants. Call once per
/// host with a distinct `pid`, between write_chrome_trace_header/_footer.
class ChromeTraceWriter {
 public:
  explicit ChromeTraceWriter(std::ostream& os);
  ~ChromeTraceWriter();
  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

  /// Emits process metadata + all spans and events of `obs` under `pid`.
  void add_process(int pid, std::string_view name, const Observer& obs);

 private:
  void event_prefix();

  std::ostream& os_;
  bool first_ = true;
  bool closed_ = false;
};

/// Writes one Observer as a complete Chrome trace file.
void write_chrome_trace(std::ostream& os, const Observer& obs, int pid = 0,
                        std::string_view process_name = "host");

/// Flat metrics JSON: {"counters": {...}, "gauges": {...},
/// "summaries": {...}, "histograms": {...}}.
void write_metrics_json(std::ostream& os, const MetricsRegistry& m);

}  // namespace rh::obs
