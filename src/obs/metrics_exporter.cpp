#include "obs/metrics_exporter.hpp"

#include <sstream>

#include "obs/prometheus.hpp"
#include "simcore/check.hpp"

namespace rh::obs {

MetricsExporter::MetricsExporter(Observer& obs, std::string instance,
                                 std::function<bool()> serving,
                                 std::function<void()> collect)
    : obs_(obs),
      instance_(std::move(instance)),
      serving_(std::move(serving)),
      collect_(std::move(collect)) {
  ensure(static_cast<bool>(serving_),
         "MetricsExporter: serving predicate required");
}

bool MetricsExporter::handle_scrape(
    const std::function<void(std::string body)>& reply) {
  ensure(static_cast<bool>(reply), "MetricsExporter: reply callback required");
  if (!serving_()) {
    ++dropped_;
    return false;
  }
  if (collect_) collect_();
  obs_.mirror_ring_stats();
  ++served_;
  // The exporter's own serve count is itself a scraped metric, so the
  // control plane can tell "first scrape" from "exporter restarted".
  obs_.metrics().counter("obs.exporter_scrapes") = served_;
  std::ostringstream os;
  write_prometheus_text(os, obs_.metrics(), instance_);
  reply(std::move(os).str());
  return true;
}

}  // namespace rh::obs
