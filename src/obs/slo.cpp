#include "obs/slo.hpp"

#include "simcore/check.hpp"

namespace rh::obs {

SloEvaluator::SloEvaluator(std::size_t instances, SloConfig config)
    : config_(config) {
  ensure(config_.availability_target > 0.0 &&
             config_.availability_target < 1.0,
         "SloEvaluator: availability target must be in (0, 1)");
  ensure(config_.pause_burn_rate > 0.0,
         "SloEvaluator: pause burn rate must be positive");
  ensure(config_.window_rounds >= 1, "SloEvaluator: empty burn window");
  ensure(config_.dark_after_misses >= 1,
         "SloEvaluator: dark threshold must be positive");
  misses_.assign(instances, 0);
  dark_.assign(instances, 0);
  window_.resize(config_.window_rounds);
}

bool SloEvaluator::record(std::size_t instance, bool ok) {
  ensure(instance < misses_.size(), "SloEvaluator: bad instance");
  if (ok) {
    ++current_.ok;
    misses_[instance] = 0;
    dark_[instance] = 0;
    return false;
  }
  ++current_.miss;
  ++misses_[instance];
  if (dark_[instance] == 0 && misses_[instance] >= config_.dark_after_misses) {
    dark_[instance] = 1;
    ++dark_transitions_;
    return true;
  }
  return false;
}

void SloEvaluator::end_round() {
  window_[window_head_] = current_;
  window_head_ = (window_head_ + 1) % window_.size();
  if (window_filled_ < window_.size()) ++window_filled_;
  current_ = {};
  ++completed_rounds_;
}

double SloEvaluator::burn_rate() const {
  std::uint64_t ok = 0, miss = 0;
  for (std::size_t i = 0; i < window_filled_; ++i) {
    ok += window_[i].ok;
    miss += window_[i].miss;
  }
  const std::uint64_t total = ok + miss;
  if (total == 0) return 0.0;
  const double error_rate =
      static_cast<double>(miss) / static_cast<double>(total);
  return error_rate / (1.0 - config_.availability_target);
}

std::size_t SloEvaluator::dark_hosts() const {
  std::size_t n = 0;
  for (const auto d : dark_) n += d != 0 ? 1 : 0;
  return n;
}

std::uint64_t SloEvaluator::state_digest() const {
  std::uint64_t h = 0;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  for (std::size_t i = 0; i < misses_.size(); ++i) {
    mix(static_cast<std::uint64_t>(misses_[i]));
    mix(dark_[i]);
  }
  for (std::size_t i = 0; i < window_filled_; ++i) {
    mix(window_[i].ok);
    mix(window_[i].miss);
  }
  mix(current_.ok);
  mix(current_.miss);
  mix(completed_rounds_);
  mix(dark_transitions_);
  return h;
}

}  // namespace rh::obs
