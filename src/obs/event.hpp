// Typed trace events: fixed-size POD records in a slab ring.
//
// This is the allocation-free replacement for the std::string hot path of
// sim::Tracer (which stays available as a human-readable facade). A
// TraceEvent is 64 bytes of plain data -- enum kind/category, a numeric
// subject id, two integer payload words and a short inline label -- so
// emitting one is a bounds check plus a memcpy-sized store. Storage is a
// ring of lazily allocated fixed-size slabs: steady-state emission never
// allocates, and a bounded ring recycles the oldest slab instead of
// growing without limit on week-long simulations.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "simcore/types.hpp"

namespace rh::obs {

/// Which layer emitted the event (mirrors the Tracer's string categories).
enum class Category : std::uint8_t {
  kHost,
  kVmm,
  kGuest,
  kRejuv,
  kSupervisor,
  kMigrate,
  kCluster,
  kFault,
  kOther,
};

/// What happened. Kept deliberately coarse: the payload words and label
/// carry the specifics, and spans carry the durations.
enum class EventKind : std::uint8_t {
  kPhaseBegin,     ///< a phase span opened (mirrored for flat consumers)
  kPhaseEnd,       ///< a phase span closed
  kLifecycle,      ///< boot/shutdown/reload/crash state change
  kRecovery,       ///< a rejuv::RecoveryAction (payload a = action enum)
  kFaultInjected,  ///< a fault::FaultKind fired (payload a = kind enum)
  kDomain,         ///< domain created/destroyed/suspended/resumed
  kMark,           ///< generic numeric observation
  kSteadyFault,    ///< a steady in-service fault struck (payload a = kind)
};

[[nodiscard]] const char* to_string(Category c);
[[nodiscard]] const char* to_string(EventKind k);

/// One typed record. POD, exactly 64 bytes, no heap anywhere.
struct TraceEvent {
  sim::SimTime time = 0;      ///< simulated microseconds
  std::int32_t subject = -1;  ///< domain/host id, or -1
  Category category = Category::kOther;
  EventKind kind = EventKind::kMark;
  std::uint16_t reserved = 0;
  std::uint64_t a = 0;  ///< payload word (enum value, count, bytes, ...)
  std::uint64_t b = 0;  ///< second payload word
  char label[32] = {};  ///< NUL-terminated, truncated to 31 chars

  void set_label(std::string_view s) {
    const std::size_t n = s.size() < sizeof label - 1 ? s.size() : sizeof label - 1;
    std::memcpy(label, s.data(), n);
    label[n] = '\0';
  }
};
static_assert(sizeof(TraceEvent) == 64, "TraceEvent must stay one cache line");

/// Slab ring of TraceEvents. Slabs are allocated on demand; once
/// `max_slabs` are live, the oldest slab is recycled (its events are
/// dropped and `dropped()` counts them), so memory stays bounded.
class EventRing {
 public:
  static constexpr std::size_t kSlabEvents = 4096;

  explicit EventRing(std::size_t max_slabs = 64) : max_slabs_(max_slabs) {}

  /// Appends and returns a slot to fill in place. Never invalidated by
  /// later pushes until the slab it sits in is recycled.
  TraceEvent& push();

  /// Events currently retained (post-recycling).
  [[nodiscard]] std::size_t size() const { return size_; }
  /// Events discarded by ring recycling.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Slabs currently allocated (bounded by max_slabs).
  [[nodiscard]] std::size_t slabs() const { return slabs_.size(); }
  /// Times the ring reused its oldest slab instead of growing. Together
  /// with dropped() this makes trace loss observable instead of silent.
  [[nodiscard]] std::uint64_t recycled_slabs() const { return recycled_; }

  /// Oldest-to-newest iteration over the retained events.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < slabs_.size(); ++i) {
      const Slab& s = *slabs_[(first_slab_ + i) % slabs_.size()];
      for (std::size_t j = 0; j < s.used; ++j) fn(s.events[j]);
    }
  }

  void clear();

 private:
  struct Slab {
    TraceEvent events[kSlabEvents];
    std::size_t used = 0;
  };

  std::vector<std::unique_ptr<Slab>> slabs_;
  std::size_t first_slab_ = 0;  ///< index of the oldest slab in the ring
  std::size_t max_slabs_;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t recycled_ = 0;
};

}  // namespace rh::obs
