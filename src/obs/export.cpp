#include "obs/export.hpp"

#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>

#include "simcore/check.hpp"

namespace rh::obs {

std::string fmt_double(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v < 0 ? "-inf" : "inf";
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  ensure(ec == std::errc{}, "fmt_double: to_chars failed");
  return std::string(buf, end);
}

namespace {

/// Escapes the few characters our labels can legally contain. Labels come
/// from fixed string literals plus VM names, so this stays minimal.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
  }
  return out;
}

}  // namespace

ChromeTraceWriter::ChromeTraceWriter(std::ostream& os) : os_(os) {
  os_ << "{\"traceEvents\":[\n";
}

ChromeTraceWriter::~ChromeTraceWriter() { os_ << "\n],\"displayTimeUnit\":\"ms\"}\n"; }

void ChromeTraceWriter::event_prefix() {
  if (!first_) os_ << ",\n";
  first_ = false;
}

void ChromeTraceWriter::add_process(int pid, std::string_view name,
                                    const Observer& obs) {
  char buf[256];
  event_prefix();
  std::snprintf(buf, sizeof buf,
                "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
                "\"args\":{\"name\":\"%s\"}}",
                pid, json_escape(name).c_str());
  os_ << buf;

  const auto& spans = obs.spans().records();
  for (SpanId i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    const sim::SimTime end = s.open() ? s.start : s.end;
    // Async begin/end pair keyed by the span index: async tracks render
    // overlapping sibling spans (parallel guest boots) without the strict
    // stack nesting "X" events require.
    event_prefix();
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"b\",\"cat\":\"%s\",\"id\":%u,\"pid\":%d,"
                  "\"tid\":0,\"ts\":%" PRId64
                  ",\"name\":\"%s\",\"args\":{\"parent\":%d}}",
                  to_string(s.phase), i, pid, s.start,
                  json_escape(s.label).c_str(),
                  s.parent == kNoSpan ? -1 : static_cast<int>(s.parent));
    os_ << buf;
    event_prefix();
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"e\",\"cat\":\"%s\",\"id\":%u,\"pid\":%d,"
                  "\"tid\":0,\"ts\":%" PRId64 ",\"name\":\"%s\"}",
                  to_string(s.phase), i, pid, end,
                  json_escape(s.label).c_str());
    os_ << buf;
  }

  obs.events().for_each([&](const TraceEvent& e) {
    event_prefix();
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"i\",\"s\":\"p\",\"cat\":\"%s\",\"pid\":%d,"
                  "\"tid\":0,\"ts\":%" PRId64
                  ",\"name\":\"%s\",\"args\":{\"kind\":\"%s\",\"subject\":%d,"
                  "\"a\":%" PRIu64 ",\"b\":%" PRIu64 "}}",
                  to_string(e.category), pid, e.time,
                  json_escape(e.label).c_str(), to_string(e.kind), e.subject,
                  e.a, e.b);
    os_ << buf;
  });
}

void write_chrome_trace(std::ostream& os, const Observer& obs, int pid,
                        std::string_view process_name) {
  ChromeTraceWriter writer(os);
  writer.add_process(pid, process_name, obs);
}

void write_metrics_json(std::ostream& os, const MetricsRegistry& m) {
  char buf[256];
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& e : m.counters()) {
    std::snprintf(buf, sizeof buf, "%s\n    \"%s\": %" PRIu64,
                  first ? "" : ",", json_escape(e.name).c_str(), e.value);
    os << buf;
    first = false;
  }
  os << (m.counters().empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  // JSON has no literal for non-finite numbers; gauges can legitimately
  // hold infinity (e.g. unlimited-budget headroom), so those render as
  // quoted strings rather than producing invalid JSON.
  const auto json_number = [](double v) {
    return std::isfinite(v) ? fmt_double(v) : "\"" + fmt_double(v) + "\"";
  };
  for (const auto& e : m.gauges()) {
    os << (first ? "" : ",") << "\n    \"" << json_escape(e.name)
       << "\": " << json_number(e.value);
    first = false;
  }
  os << (m.gauges().empty() ? "" : "\n  ") << "},\n  \"summaries\": {";
  first = true;
  for (const auto& e : m.summaries()) {
    os << (first ? "" : ",") << "\n    \"" << json_escape(e.name)
       << "\": {\"count\": " << e.value.count()
       << ", \"mean\": " << json_number(e.value.count() ? e.value.mean() : 0.0)
       << ", \"stddev\": "
       << json_number(e.value.count() > 1 ? e.value.stddev() : 0.0)
       << ", \"min\": " << json_number(e.value.count() ? e.value.min() : 0.0)
       << ", \"max\": " << json_number(e.value.count() ? e.value.max() : 0.0)
       << "}";
    first = false;
  }
  os << (m.summaries().empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& e : m.histograms()) {
    std::snprintf(
        buf, sizeof buf,
        "%s\n    \"%s\": {\"count\": %" PRIu64
        ", \"mean_us\": %s, \"p50_us\": %" PRId64 ", \"p99_us\": %" PRId64
        ", \"max_us\": %" PRId64 "}",
        first ? "" : ",", json_escape(e.name).c_str(), e.value.count(),
        fmt_double(e.value.mean()).c_str(), e.value.percentile(50),
        e.value.percentile(99), e.value.max());
    os << buf;
    first = false;
  }
  os << (m.histograms().empty() ? "" : "\n  ") << "}\n}\n";
}

}  // namespace rh::obs
