#include "obs/event.hpp"

#include "simcore/check.hpp"

namespace rh::obs {

const char* to_string(Category c) {
  switch (c) {
    case Category::kHost: return "host";
    case Category::kVmm: return "vmm";
    case Category::kGuest: return "guest";
    case Category::kRejuv: return "rejuv";
    case Category::kSupervisor: return "supervisor";
    case Category::kMigrate: return "migrate";
    case Category::kCluster: return "cluster";
    case Category::kFault: return "fault";
    case Category::kOther: return "other";
  }
  return "unknown";
}

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kPhaseBegin: return "phase-begin";
    case EventKind::kPhaseEnd: return "phase-end";
    case EventKind::kLifecycle: return "lifecycle";
    case EventKind::kRecovery: return "recovery";
    case EventKind::kFaultInjected: return "fault-injected";
    case EventKind::kDomain: return "domain";
    case EventKind::kMark: return "mark";
    case EventKind::kSteadyFault: return "steady-fault";
  }
  return "unknown";
}

TraceEvent& EventRing::push() {
  ensure(max_slabs_ > 0, "EventRing: max_slabs must be positive");
  if (slabs_.empty() ||
      slabs_[(first_slab_ + slabs_.size() - 1) % slabs_.size()]->used ==
          kSlabEvents) {
    if (slabs_.size() < max_slabs_) {
      // Still growing: the newest slab is always the last element, so the
      // ring stays contiguous with first_slab_ == 0.
      slabs_.push_back(std::make_unique<Slab>());
    } else {
      // Recycle the oldest slab in place: it becomes the newest.
      Slab& oldest = *slabs_[first_slab_];
      dropped_ += oldest.used;
      ++recycled_;
      size_ -= oldest.used;
      oldest.used = 0;
      first_slab_ = (first_slab_ + 1) % slabs_.size();
    }
  }
  Slab& tail = *slabs_[(first_slab_ + slabs_.size() - 1) % slabs_.size()];
  ++size_;
  return tail.events[tail.used++];
}

void EventRing::clear() {
  slabs_.clear();
  first_slab_ = 0;
  size_ = 0;
  dropped_ = 0;
  recycled_ = 0;
}

}  // namespace rh::obs
