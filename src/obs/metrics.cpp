#include "obs/metrics.hpp"

#include "simcore/check.hpp"

namespace rh::obs {

MetricsRegistry::Slot& MetricsRegistry::slot(std::string_view name, Type type) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    ensure(it->second.type == type,
           "MetricsRegistry: name already registered with another type");
    return it->second;
  }
  std::size_t idx = 0;
  switch (type) {
    case Type::kCounter:
      idx = counters_.size();
      counters_.push_back({std::string(name), 0});
      break;
    case Type::kGauge:
      idx = gauges_.size();
      gauges_.push_back({std::string(name), 0.0});
      break;
    case Type::kHistogram:
      idx = histograms_.size();
      histograms_.push_back({std::string(name), {}});
      break;
    case Type::kSummary:
      idx = summaries_.size();
      summaries_.push_back({std::string(name), {}});
      break;
  }
  return index_.emplace(std::string(name), Slot{type, idx}).first->second;
}

std::uint64_t& MetricsRegistry::counter(std::string_view name) {
  return counters_[slot(name, Type::kCounter).index].value;
}

double& MetricsRegistry::gauge(std::string_view name) {
  return gauges_[slot(name, Type::kGauge).index].value;
}

sim::LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  return histograms_[slot(name, Type::kHistogram).index].value;
}

sim::Summary& MetricsRegistry::summary(std::string_view name) {
  return summaries_[slot(name, Type::kSummary).index].value;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  if (it == index_.end() || it->second.type != Type::kCounter) return 0;
  return counters_[it->second.index].value;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  if (it == index_.end() || it->second.type != Type::kGauge) return 0.0;
  return gauges_[it->second.index].value;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& e : other.counters_) counter(e.name) += e.value;
  for (const auto& e : other.gauges_) gauge(e.name) += e.value;
  for (const auto& e : other.histograms_) histogram(e.name).merge(e.value);
  for (const auto& e : other.summaries_) summary(e.name).merge(e.value);
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  summaries_.clear();
  index_.clear();
}

}  // namespace rh::obs
