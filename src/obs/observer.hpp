// Observer: the per-host observability bundle (events + spans + metrics).
//
// Disabled (the default) it is a single predicted branch per call site:
// no formatting, no allocation, no RNG draws, no scheduled events -- a
// fault-free hot run does zero observability work and stays byte-identical
// (BENCH_obs.json demonstrates the contract). Enabled, every emit is a
// POD store into the slab ring and every span a checked vector append.
//
// The ambient span is how layers that cannot see each other nest their
// spans: the supervisor (or reboot driver) opens its pass span and makes
// it ambient; Host::quick_reload opens its span under the ambient one and
// makes *that* ambient for the VMM re-init it triggers. The simulation is
// single-threaded and the phases are sequential per host, so a single
// ambient slot per Observer is exact.
#pragma once

#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace rh::obs {

class Observer {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  // ------------------------------------------------------- typed events
  /// Emits a typed event (no-op when disabled). `label` must not outlive
  /// the call -- it is copied (truncated) into the record.
  void emit(sim::SimTime t, Category c, EventKind k, std::string_view label,
            std::int32_t subject = -1, std::uint64_t a = 0,
            std::uint64_t b = 0) {
    if (!enabled_) return;
    TraceEvent& e = ring_.push();
    e.time = t;
    e.subject = subject;
    e.category = c;
    e.kind = k;
    e.a = a;
    e.b = b;
    e.set_label(label);
  }

  // -------------------------------------------------------------- spans
  /// Opens a span under `parent` (defaulting to the ambient span).
  /// Returns kNoSpan when disabled; span_close(kNoSpan, ...) is a no-op,
  /// so call sites need no second guard.
  SpanId span_open(sim::SimTime now, Phase phase, std::string_view label) {
    if (!enabled_) return kNoSpan;
    return spans_.open(now, phase, label, ambient_);
  }
  SpanId span_open_under(sim::SimTime now, Phase phase, std::string_view label,
                         SpanId parent) {
    if (!enabled_) return kNoSpan;
    return spans_.open(now, phase, label, parent);
  }
  void span_close(SpanId id, sim::SimTime now) {
    if (!enabled_ || id == kNoSpan) return;
    spans_.close(id, now);
  }
  /// Records a window whose end is already known (e.g. cache re-warm).
  void span_complete(sim::SimTime start, sim::SimTime end, Phase phase,
                     std::string_view label) {
    if (!enabled_) return;
    spans_.complete(start, end, phase, label, ambient_);
  }
  void span_complete_under(sim::SimTime start, sim::SimTime end, Phase phase,
                           std::string_view label, SpanId parent) {
    if (!enabled_) return;
    spans_.complete(start, end, phase, label, parent);
  }

  /// The span new spans nest under by default. Callers must restore the
  /// previous ambient value when their phase completes (sequential
  /// callback flow makes save/restore exact).
  [[nodiscard]] SpanId ambient() const { return ambient_; }
  void set_ambient(SpanId id) {
    if (!enabled_) return;
    ambient_ = id;
  }

  /// Mirrors the slab ring's loss/recycling stats into the registry as
  /// `obs.ring_*` counters so scraped output shows trace loss instead of
  /// hiding it. Deliberately NOT gated on enabled_: exporters collect from
  /// the registry even when event emission is off (the counters then
  /// simply read zero), and registry writes never affect the simulation.
  void mirror_ring_stats() {
    metrics_.counter("obs.ring_events") = ring_.size();
    metrics_.counter("obs.ring_dropped") = ring_.dropped();
    metrics_.counter("obs.ring_slabs") = ring_.slabs();
    metrics_.counter("obs.ring_recycled_slabs") = ring_.recycled_slabs();
  }

  // ------------------------------------------------------------ storage
  [[nodiscard]] const EventRing& events() const { return ring_; }
  [[nodiscard]] const SpanRecorder& spans() const { return spans_; }
  [[nodiscard]] SpanRecorder& spans_mutable() { return spans_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

  void clear() {
    ring_.clear();
    spans_.clear();
    metrics_.clear();
    ambient_ = kNoSpan;
  }

 private:
  bool enabled_ = false;
  SpanId ambient_ = kNoSpan;
  EventRing ring_;
  SpanRecorder spans_;
  MetricsRegistry metrics_;
};

}  // namespace rh::obs
