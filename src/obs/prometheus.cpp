#include "obs/prometheus.hpp"

#include <algorithm>
#include <charconv>
#include <cstddef>
#include <vector>

#include "obs/export.hpp"

namespace rh::obs {

namespace {

bool valid_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) out += valid_name_char(c) ? c : '_';
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

std::string prometheus_label_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

/// (rendered name, index into the registry section), sorted by name --
/// registration order is deterministic but scrape output should also be
/// *stable* under refactorings that reorder registration sites.
template <typename T>
std::vector<std::pair<std::string, std::size_t>> sorted_names(
    const std::vector<MetricsRegistry::Entry<T>>& entries) {
  std::vector<std::pair<std::string, std::size_t>> out;
  out.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out.emplace_back(prometheus_name(entries[i].name), i);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

void write_prometheus_text(std::ostream& os, const MetricsRegistry& m,
                           std::string_view instance) {
  const std::string inst = "instance=\"" + prometheus_label_escape(instance) + "\"";
  for (const auto& [name, i] : sorted_names(m.counters())) {
    os << "# TYPE " << name << " counter\n"
       << name << "{" << inst << "} " << m.counters()[i].value << "\n";
  }
  for (const auto& [name, i] : sorted_names(m.gauges())) {
    os << "# TYPE " << name << " gauge\n"
       << name << "{" << inst << "} " << fmt_double(m.gauges()[i].value)
       << "\n";
  }
  for (const auto& [name, i] : sorted_names(m.histograms())) {
    const sim::LatencyHistogram& h = m.histograms()[i].value;
    os << "# TYPE " << name << " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < sim::LatencyHistogram::kBuckets; ++b) {
      if (h.bucket_count(b) == 0) continue;
      cum += h.bucket_count(b);
      os << name << "_bucket{" << inst << ",le=\""
         << sim::LatencyHistogram::bucket_upper_bound(b) << "\"} " << cum
         << "\n";
    }
    os << name << "_bucket{" << inst << ",le=\"+Inf\"} " << h.count() << "\n"
       << name << "_sum{" << inst << "} " << fmt_double(h.sum()) << "\n"
       << name << "_count{" << inst << "} " << h.count() << "\n";
  }
  for (const auto& [name, i] : sorted_names(m.summaries())) {
    const sim::Summary& s = m.summaries()[i].value;
    os << "# TYPE " << name << " summary\n"
       << name << "{" << inst << ",quantile=\"0\"} "
       << fmt_double(s.count() ? s.min() : 0.0) << "\n"
       << name << "{" << inst << ",quantile=\"1\"} "
       << fmt_double(s.count() ? s.max() : 0.0) << "\n"
       << name << "_sum{" << inst << "} " << fmt_double(s.sum()) << "\n"
       << name << "_count{" << inst << "} " << s.count() << "\n";
  }
}

namespace {

/// Splits `labels` (the text between the braces) at top-level commas,
/// honouring quoted values with backslash escapes, and rebuilds it
/// without the instance label. Returns false on malformed label text.
bool strip_instance_label(std::string_view labels, std::string& rest) {
  rest.clear();
  std::size_t start = 0;
  bool in_quotes = false, escaped = false;
  const auto flush = [&](std::size_t end) {
    std::string_view one = labels.substr(start, end - start);
    if (one.substr(0, 9) != "instance=") {
      if (!rest.empty()) rest += ',';
      rest += one;
    }
  };
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const char c = labels[i];
    if (escaped) {
      escaped = false;
    } else if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_quotes = !in_quotes;
    } else if (c == ',' && !in_quotes) {
      flush(i);
      start = i + 1;
    }
  }
  if (in_quotes || escaped) return false;
  flush(labels.size());
  return true;
}

}  // namespace

void parse_prometheus_text(
    std::string_view body,
    const std::function<void(std::string_view key, double value)>& fn) {
  std::string key, rest;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string_view::npos) eol = body.size();
    const std::string_view line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    // `name{labels} value` or `name value`; the value is the last
    // space-separated token (we emit no timestamps).
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string_view::npos || sp + 1 >= line.size()) continue;
    const std::string_view value_text = line.substr(sp + 1);
    double value = 0.0;
    const auto [end, ec] = std::from_chars(
        value_text.data(), value_text.data() + value_text.size(), value);
    if (ec != std::errc{} || end != value_text.data() + value_text.size()) {
      continue;
    }
    std::string_view name_part = line.substr(0, sp);
    const std::size_t brace = name_part.find('{');
    if (brace == std::string_view::npos) {
      fn(name_part, value);
      continue;
    }
    if (name_part.back() != '}') continue;
    const std::string_view labels =
        name_part.substr(brace + 1, name_part.size() - brace - 2);
    if (!strip_instance_label(labels, rest)) continue;
    if (rest.empty()) {
      fn(name_part.substr(0, brace), value);
    } else {
      key.assign(name_part.substr(0, brace));
      key += '{';
      key += rest;
      key += '}';
      fn(key, value);
    }
  }
}

}  // namespace rh::obs
