// Per-host /metrics exporter: renders the host's MetricsRegistry as
// Prometheus text exposition in answer to a scrape.
//
// The exporter is the host-partition half of the telemetry plane
// (DESIGN.md §15). It is deliberately generic -- it knows an Observer, a
// "serving" predicate and an optional collect hook, never the vmm/cluster
// types above it -- so it lives in obs/ and the cluster layer wires the
// host-specific parts in: serving binds to Host::up() (a dom0 exporter
// daemon dies with its host), collect mirrors the wave signals into the
// registry. A scrape of a down host produces *no reply at all*: the
// scraper's timeout is the only failure signal, exactly like production.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "obs/observer.hpp"

namespace rh::obs {

class MetricsExporter {
 public:
  /// `serving`: answers scrapes only while true (required).
  /// `collect`: runs before each render to refresh registry values that
  /// are computed rather than incremented (optional).
  MetricsExporter(Observer& obs, std::string instance,
                  std::function<bool()> serving,
                  std::function<void()> collect = {});

  /// Handles one scrape on the exporter's own partition. Serving:
  /// refreshes collected metrics (including the obs.ring_* loss
  /// counters), renders the registry, invokes `reply` with the body and
  /// returns true. Not serving: counts the drop and returns false
  /// without replying -- the caller's timeout does the rest.
  bool handle_scrape(const std::function<void(std::string body)>& reply);

  [[nodiscard]] const std::string& instance() const { return instance_; }
  [[nodiscard]] std::uint64_t scrapes_served() const { return served_; }
  [[nodiscard]] std::uint64_t scrapes_dropped() const { return dropped_; }

 private:
  Observer& obs_;
  std::string instance_;
  std::function<bool()> serving_;
  std::function<void()> collect_;
  std::uint64_t served_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace rh::obs
