#include "obs/tsdb.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "simcore/check.hpp"

namespace rh::obs {

TimeSeriesStore::TimeSeriesStore(std::size_t instances)
    : TimeSeriesStore(instances, Config{}) {}

TimeSeriesStore::TimeSeriesStore(std::size_t instances, Config config)
    : config_(config) {
  ensure(config_.window >= 1, "TimeSeriesStore: window must be positive");
  instances_.resize(instances);
}

void TimeSeriesStore::ingest(std::size_t instance, std::string_view series,
                             sim::SimTime t, double value) {
  ensure(instance < instances_.size(), "TimeSeriesStore: bad instance");
  Instance& in = instances_[instance];
  auto it = in.index.find(std::string(series));
  if (it == in.index.end()) {
    it = in.index.emplace(std::string(series), in.series.size()).first;
    Series s;
    s.name = series;
    s.ring.resize(config_.window);
    in.series.push_back(std::move(s));
  }
  Series& s = in.series[it->second];
  s.ring[s.head] = {t, value};
  s.head = (s.head + 1) % config_.window;
  s.count = std::min(s.count + 1, config_.window);
  if (std::isfinite(value) && value >= 0.0) {
    // The sketch lives in the histogram's integer Duration domain; clamp
    // instead of overflowing on huge gauges.
    constexpr double kMax = 9.0e18;
    s.sketch.add(static_cast<sim::Duration>(std::min(value, kMax)));
  }
  ++ingested_;
}

void TimeSeriesStore::mark_stale(std::size_t instance, sim::SimTime t) {
  ensure(instance < instances_.size(), "TimeSeriesStore: bad instance");
  Instance& in = instances_[instance];
  if (!in.stale) {
    in.stale = true;
    in.stale_since = t;
  }
}

void TimeSeriesStore::mark_fresh(std::size_t instance) {
  ensure(instance < instances_.size(), "TimeSeriesStore: bad instance");
  instances_[instance].stale = false;
  instances_[instance].stale_since = 0;
}

std::optional<TimeSeriesStore::Sample> TimeSeriesStore::latest(
    std::size_t instance, std::string_view series) const {
  ensure(instance < instances_.size(), "TimeSeriesStore: bad instance");
  const Instance& in = instances_[instance];
  const auto it = in.index.find(std::string(series));
  if (it == in.index.end()) return std::nullopt;
  const Series& s = in.series[it->second];
  if (s.count == 0) return std::nullopt;
  return s.ring[(s.head + config_.window - 1) % config_.window];
}

std::uint64_t TimeSeriesStore::state_digest() const {
  std::uint64_t h = 0;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  for (const Instance& in : instances_) {
    mix(in.stale ? 1 : 0);
    mix(static_cast<std::uint64_t>(in.stale_since));
    mix(in.series.size());
    for (const Series& s : in.series) {
      std::uint64_t name_hash = 1469598103934665603ull;  // FNV-1a
      for (const char c : s.name) {
        name_hash = (name_hash ^ static_cast<unsigned char>(c)) *
                    1099511628211ull;
      }
      mix(name_hash);
      mix(s.count);
      const std::size_t n = s.count;
      for (std::size_t i = 0; i < n; ++i) {
        const Sample& sample =
            s.ring[(s.head + config_.window - n + i) % config_.window];
        mix(static_cast<std::uint64_t>(sample.time));
        mix(std::bit_cast<std::uint64_t>(sample.value));
      }
      mix(s.sketch.count());
    }
  }
  mix(ingested_);
  return h;
}

}  // namespace rh::obs
