// Control-plane time-series store for scraped samples.
//
// The scraper ingests every parsed sample into a per-(instance, series)
// slot: a fixed-capacity ring window of (time, value) points plus a
// log-bucketed percentile sketch over the values, so the control plane
// can answer both "what is host 17's load right now" (wave ordering) and
// "what did its last N scrapes look like" (the flight recorder) without
// ever touching host-partition state. Memory is bounded by
// instances x series x window; a series that stops arriving costs
// nothing further. Staleness is per instance: a scrape timeout marks
// every series of that host stale until the next successful scrape
// refreshes them -- exactly Prometheus' staleness semantics, coarsened
// to the scrape unit we have.
//
// Everything here is plain deterministic data owned by the control
// partition; state_digest() folds it into the worker-count-invariance
// checks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "simcore/histogram.hpp"
#include "simcore/types.hpp"

namespace rh::obs {

class TimeSeriesStore {
 public:
  struct Config {
    /// Samples retained per series (the ring window).
    std::size_t window = 64;
  };

  struct Sample {
    sim::SimTime time = 0;
    double value = 0.0;
  };

  explicit TimeSeriesStore(std::size_t instances);
  TimeSeriesStore(std::size_t instances, Config config);

  /// Appends one sample; creates the series on first sight. The sketch
  /// absorbs finite non-negative values (clamped into the histogram's
  /// Duration domain); the ring keeps the raw double either way.
  void ingest(std::size_t instance, std::string_view series, sim::SimTime t,
              double value);

  /// A scrape of `instance` failed: its series stop being trustworthy.
  void mark_stale(std::size_t instance, sim::SimTime t);
  /// A scrape of `instance` succeeded (called before its ingests).
  void mark_fresh(std::size_t instance);
  [[nodiscard]] bool stale(std::size_t instance) const {
    return instances_[instance].stale;
  }
  /// When the instance went stale (valid while stale() is true).
  [[nodiscard]] sim::SimTime stale_since(std::size_t instance) const {
    return instances_[instance].stale_since;
  }

  /// Latest sample of a series; nullopt for unknown series. Stale
  /// instances still answer (the last known value IS the signal the
  /// control plane acts on -- the staleness flag is the caveat).
  [[nodiscard]] std::optional<Sample> latest(std::size_t instance,
                                             std::string_view series) const;

  [[nodiscard]] std::size_t instance_count() const {
    return instances_.size();
  }
  /// Distinct series currently held for one instance.
  [[nodiscard]] std::size_t series_count(std::size_t instance) const {
    return instances_[instance].series.size();
  }
  [[nodiscard]] std::uint64_t samples_ingested() const { return ingested_; }

  /// Oldest-to-newest iteration over one instance's series windows, in
  /// series registration order:
  /// fn(name, samples (oldest first), sketch).
  template <typename Fn>
  void for_each_series(std::size_t instance, Fn&& fn) const {
    const Instance& in = instances_[instance];
    std::vector<Sample> window;
    for (const Series& s : in.series) {
      window.clear();
      const std::size_t n = s.count;
      for (std::size_t i = 0; i < n; ++i) {
        window.push_back(s.ring[(s.head + config_.window - n + i) %
                                config_.window]);
      }
      fn(std::string_view(s.name), window, s.sketch);
    }
  }

  /// Deterministic fold over every series' full state (names, windows,
  /// raw value bit patterns, staleness) for the digest-grid tests.
  [[nodiscard]] std::uint64_t state_digest() const;

 private:
  struct Series {
    std::string name;
    std::vector<Sample> ring;  ///< capacity == config_.window
    std::size_t head = 0;      ///< next write position
    std::size_t count = 0;     ///< samples held (<= window)
    sim::LatencyHistogram sketch;
  };
  struct Instance {
    std::vector<Series> series;  ///< registration order
    std::unordered_map<std::string, std::size_t> index;
    bool stale = false;
    sim::SimTime stale_since = 0;
  };

  Config config_;
  std::vector<Instance> instances_;
  std::uint64_t ingested_ = 0;
};

}  // namespace rh::obs
