// Named metrics registry: counters, gauges, latency histograms and
// streaming summaries, mergeable across exp::ThreadPool workers.
//
// Registration (the name lookup) happens once per metric; after that the
// caller holds a stable reference and increments plain integers, so the
// hot path costs nothing beyond the arithmetic. merge() folds another
// registry in by name, and -- like PR 2's grid reduction -- is only
// reproducible if callers merge in a fixed order (the exp::Reducer merges
// in replication-index order), because Summary/histogram merges are
// floating-point-order sensitive.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "simcore/histogram.hpp"
#include "simcore/stats.hpp"

namespace rh::obs {

class MetricsRegistry {
 public:
  /// Monotonic event count. merge() adds.
  [[nodiscard]] std::uint64_t& counter(std::string_view name);
  /// Last-set value. merge() adds (for cross-replication totals; use a
  /// summary when the distribution matters).
  [[nodiscard]] double& gauge(std::string_view name);
  /// Latency distribution. merge() merges buckets.
  [[nodiscard]] sim::LatencyHistogram& histogram(std::string_view name);
  /// Streaming mean/variance. merge() is the Chan parallel update.
  [[nodiscard]] sim::Summary& summary(std::string_view name);

  /// Read-only lookup; returns 0 / an empty object for unknown names.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  [[nodiscard]] double gauge_value(std::string_view name) const;

  template <typename T>
  struct Entry {
    std::string name;
    T value{};
  };

  [[nodiscard]] const std::vector<Entry<std::uint64_t>>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::vector<Entry<double>>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::vector<Entry<sim::LatencyHistogram>>& histograms()
      const {
    return histograms_;
  }
  [[nodiscard]] const std::vector<Entry<sim::Summary>>& summaries() const {
    return summaries_;
  }

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty() &&
           summaries_.empty();
  }

  /// Folds `other` in by name; names new to this registry are appended in
  /// `other`'s registration order. Deterministic given a fixed merge order
  /// (see file comment).
  void merge(const MetricsRegistry& other);

  void clear();

 private:
  enum class Type : std::uint8_t { kCounter, kGauge, kHistogram, kSummary };
  struct Slot {
    Type type;
    std::size_t index;
  };

  /// Finds or creates the slot for (name, type); throws on a type clash.
  Slot& slot(std::string_view name, Type type);

  std::vector<Entry<std::uint64_t>> counters_;
  std::vector<Entry<double>> gauges_;
  std::vector<Entry<sim::LatencyHistogram>> histograms_;
  std::vector<Entry<sim::Summary>> summaries_;
  std::unordered_map<std::string, Slot> index_;
};

}  // namespace rh::obs
