// Prometheus text-exposition rendering and parsing (format 0.0.4).
//
// The telemetry plane (DESIGN.md §15) serves each host's MetricsRegistry
// over the simulated network exactly the way a production exporter would:
// as `# TYPE`-annotated sample lines. The renderer is deterministic --
// sections sorted by sanitized metric name, floats through fmt_double
// (shortest round-trip form) -- so the same registry always produces the
// same bytes, and the scraper's parse-back reconstructs every value
// bit-for-bit. The parser is the scraper's ingestion path and
// deliberately tolerant: it reads sample lines, strips the instance
// label (the scraper keys series by host already), and skips comments.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace rh::obs {

/// Maps a registry name onto the Prometheus metric-name alphabet
/// [a-zA-Z0-9_:]; everything else (our dots, mostly) becomes '_'.
[[nodiscard]] std::string prometheus_name(std::string_view name);

/// Escapes a label value: backslash, double quote and newline, per the
/// exposition format.
[[nodiscard]] std::string prometheus_label_escape(std::string_view value);

/// Renders the registry as text exposition. Every sample carries an
/// `instance` label (the scrape target's identity, host index here).
/// Counters/gauges are single samples; histograms emit cumulative
/// `_bucket{le=...}` lines (non-empty buckets plus "+Inf") with `_sum`
/// and `_count`; summaries emit `quantile="0"`/`quantile="1"` (min/max)
/// plus `_sum` and `_count`. Sections are sorted by rendered name, so
/// the output is a pure function of the registry's contents.
void write_prometheus_text(std::ostream& os, const MetricsRegistry& m,
                           std::string_view instance);

/// Invokes `fn(key, value)` for every sample line in `body`. The key is
/// the metric name plus any labels other than `instance`, rendered as
/// `name` or `name{label="v",...}`; the value round-trips exactly for
/// anything write_prometheus_text produced (including inf/nan). Comment
/// and blank lines are skipped; malformed lines are ignored (a scrape
/// of a half-crashed exporter must not take the control plane down).
void parse_prometheus_text(
    std::string_view body,
    const std::function<void(std::string_view key, double value)>& fn);

}  // namespace rh::obs
