#include "obs/span.hpp"

#include "simcore/check.hpp"

namespace rh::obs {

const char* to_string(Phase p) {
  switch (p) {
    case Phase::kPass: return "pass";
    case Phase::kStep: return "step";
    case Phase::kAdmission: return "admission";
    case Phase::kXexecLoad: return "xexec-load";
    case Phase::kSuspend: return "suspend";
    case Phase::kDom0Shutdown: return "dom0-shutdown";
    case Phase::kQuickReload: return "quick-reload";
    case Phase::kVmmInit: return "vmm-init";
    case Phase::kHardwareReset: return "hardware-reset";
    case Phase::kResume: return "resume";
    case Phase::kRestore: return "restore";
    case Phase::kSaveToDisk: return "save-to-disk";
    case Phase::kGuestShutdown: return "guest-shutdown";
    case Phase::kGuestBoot: return "guest-boot";
    case Phase::kCacheRewarm: return "cache-rewarm";
    case Phase::kPreCopyRound: return "pre-copy-round";
    case Phase::kStopAndCopy: return "stop-and-copy";
    case Phase::kMigration: return "migration";
    case Phase::kLadderRung: return "ladder-rung";
    case Phase::kRollingPass: return "rolling-pass";
    case Phase::kMicroRecovery: return "micro-recovery";
    case Phase::kOther: return "other";
  }
  return "unknown";
}

SpanId SpanRecorder::open(sim::SimTime now, Phase phase, std::string_view label,
                          SpanId parent) {
  ensure(parent == kNoSpan || parent < records_.size(),
         "SpanRecorder::open: unknown parent span");
  SpanRecord r;
  r.start = now;
  r.parent = parent;
  r.phase = phase;
  r.set_label(label);
  records_.push_back(r);
  ++open_count_;
  return static_cast<SpanId>(records_.size() - 1);
}

void SpanRecorder::close(SpanId id, sim::SimTime now) {
  ensure(id < records_.size(), "SpanRecorder::close: unknown span");
  SpanRecord& r = records_[id];
  ensure(r.open(), "SpanRecorder::close: span already closed");
  ensure(now >= r.start, "SpanRecorder::close: end before start");
  r.end = now;
  --open_count_;
}

SpanId SpanRecorder::complete(sim::SimTime start, sim::SimTime end, Phase phase,
                              std::string_view label, SpanId parent) {
  ensure(end >= start, "SpanRecorder::complete: end before start");
  const SpanId id = open(start, phase, label, parent);
  records_[id].end = end;
  --open_count_;
  return id;
}

std::vector<SpanId> SpanRecorder::children_of(SpanId parent) const {
  std::vector<SpanId> out;
  for (SpanId i = 0; i < records_.size(); ++i) {
    if (records_[i].parent == parent) out.push_back(i);
  }
  return out;
}

void SpanRecorder::clear() {
  records_.clear();
  open_count_ = 0;
}

}  // namespace rh::obs
