// Time-series recording: sampled values and event-rate series.
//
// Figures 7-9 of the paper are time series (throughput over time around a
// reboot). These recorders collect raw points during a simulation and bin
// them for reporting.
#pragma once

#include <optional>
#include <vector>

#include "simcore/types.hpp"

namespace rh::sim {

/// One (time, value) sample.
struct Sample {
  SimTime time = 0;
  double value = 0.0;
};

/// A series of timestamped samples with binning/query helpers.
class TimeSeries {
 public:
  void add(SimTime t, double value);

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }

  /// Mean of sample values in [from, to). Empty optional if no samples.
  [[nodiscard]] std::optional<double> mean_between(SimTime from, SimTime to) const;

  /// Mean value per fixed-width bin over [start, end). Bins with no samples
  /// hold `fill`.
  [[nodiscard]] std::vector<Sample> binned_mean(SimTime start, SimTime end,
                                                Duration bin_width,
                                                double fill = 0.0) const;

  /// Merges `other`'s samples into this series, keeping global time
  /// order. Stable: where timestamps tie, this series' samples stay ahead
  /// of `other`'s, so a reduction that merges replications in index order
  /// produces one well-defined sample order.
  void merge(const TimeSeries& other);

  void clear() { samples_.clear(); }

 private:
  std::vector<Sample> samples_;  // kept in insertion (= time) order
};

/// Counts discrete events (e.g. completed HTTP requests) and reports rates.
class RateRecorder {
 public:
  /// Records `count` events at time t.
  void record(SimTime t, double count = 1.0);

  [[nodiscard]] double total() const { return total_; }

  /// Events per second within [from, to).
  [[nodiscard]] double rate_between(SimTime from, SimTime to) const;

  /// Rate series over [start, end) with the given bin width; each sample's
  /// time is the bin start and value is events/second within the bin.
  [[nodiscard]] std::vector<Sample> rate_series(SimTime start, SimTime end,
                                                Duration bin_width) const;

  /// Time of the first recorded event at or after `from`, if any.
  [[nodiscard]] std::optional<SimTime> first_event_at_or_after(SimTime from) const;

  /// Time of the last recorded event strictly before `before`, if any.
  [[nodiscard]] std::optional<SimTime> last_event_before(SimTime before) const;

  /// Merges `other`'s events into this recorder (same stability contract
  /// as TimeSeries::merge); totals add.
  void merge(const RateRecorder& other);

  void clear();

 private:
  std::vector<Sample> events_;
  double total_ = 0.0;
};

}  // namespace rh::sim
