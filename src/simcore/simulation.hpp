// The discrete-event simulation driver.
#pragma once

#include "simcore/event_queue.hpp"
#include "simcore/inline_callback.hpp"
#include "simcore/types.hpp"

namespace rh::sim {

/// Owns the simulated clock and the event queue, and runs events in order.
///
/// All model components hold a reference to one Simulation and schedule
/// their work through it. Time only advances by running events; there is no
/// wall-clock coupling, so simulations are deterministic and can cover
/// weeks of simulated time in milliseconds of real time.
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (must be >= now()).
  /// Accepts any void() callable; see InlineCallback for the (non-)
  /// allocation guarantees.
  EventId at(SimTime t, InlineCallback fn);

  /// Schedules `fn` to run `delay` from now (delay must be >= 0).
  EventId after(Duration delay, InlineCallback fn);

  /// Cancels a pending event; returns true if it had not yet fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs events until the queue is empty or stop() is called.
  void run();

  /// Runs events with time <= deadline, then sets now() to `deadline`
  /// (if the simulation was not stopped earlier).
  void run_until(SimTime deadline);

  /// Convenience: run_until(now() + d).
  void run_for(Duration d);

  /// Executes the single earliest event. Returns false if none remain.
  bool step();

  /// Stops the current run()/run_until() after the current event returns.
  void stop() { stopped_ = true; }

  /// True when stop() interrupted the last run.
  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Total events executed so far (for diagnostics and microbenchmarks).
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
};

}  // namespace rh::sim
