// The discrete-event simulation driver.
#pragma once

#include <atomic>
#include <cstdint>

#include "simcore/event_queue.hpp"
#include "simcore/inline_callback.hpp"
#include "simcore/types.hpp"

namespace rh::sim {

/// Index of the partition the calling thread is currently executing a
/// window for (-1 outside partitioned execution). Set by
/// ParallelSimulation around each Simulation::run_window call; the
/// cross-partition scheduling guard in Simulation::at compares it
/// against the target calendar's partition id.
[[nodiscard]] std::int32_t current_partition() noexcept;
void set_current_partition(std::int32_t p) noexcept;

/// Owns the simulated clock and the event queue, and runs events in order.
///
/// All model components hold a reference to one Simulation and schedule
/// their work through it. Time only advances by running events; there is no
/// wall-clock coupling, so simulations are deterministic and can cover
/// weeks of simulated time in milliseconds of real time.
///
/// Partitioned (parallel) execution: under ParallelSimulation there are
/// several Simulation instances, one per partition, and now() is a *local*
/// clock -- inside a safe window [T, T + L) two partitions' now() values
/// may differ by up to the window width. Components must therefore only
/// ever read time from, and schedule onto, their own partition's
/// Simulation; cross-partition work goes through
/// ParallelSimulation::post. A bound Simulation enforces this: at()/
/// after() from a foreign partition below the engine's safe horizon throw
/// InvariantViolation instead of silently racing/reordering.
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time. Under partitioned execution this is the
  /// partition-local clock (see the class comment).
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (must be >= now()).
  /// Accepts any void() callable; see InlineCallback for the (non-)
  /// allocation guarantees. When this Simulation is bound to a partition,
  /// calls from a different executing partition must target t >= the
  /// engine's safe horizon (use ParallelSimulation::post instead).
  EventId at(SimTime t, InlineCallback fn);

  /// Schedules `fn` to run `delay` from now (delay must be >= 0).
  EventId after(Duration delay, InlineCallback fn);

  /// Cancels a pending event; returns true if it had not yet fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs events until the queue is empty or stop() is called.
  void run();

  /// Runs events with time <= deadline, then sets now() to `deadline`
  /// (if the simulation was not stopped earlier).
  ///
  /// Sequential-driver semantics: this drives THIS calendar only. Under
  /// ParallelSimulation do not call it mid-run -- the engine drives every
  /// partition through run_window(); use ParallelSimulation::run_until,
  /// which provides the same "then advance the clock" contract across all
  /// partitions.
  void run_until(SimTime deadline);

  /// Convenience: run_until(now() + d).
  void run_for(Duration d);

  /// Executes the single earliest event. Returns false if none remain.
  bool step();

  /// Stops the current run()/run_until() after the current event returns.
  /// Not meaningful under windowed execution (run_window ignores it);
  /// stop a ParallelSimulation via its run_while predicate.
  void stop() { stopped_ = true; }

  /// True when stop() interrupted the last run.
  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Time of the earliest pending event. Precondition: pending_events() > 0.
  [[nodiscard]] SimTime next_event_time() const { return queue_.next_time(); }

  /// Total events executed so far (for diagnostics and microbenchmarks).
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  // ------------------------------------------- partitioned execution
  /// Runs every event with time < `end` (or <= `end` when `inclusive`,
  /// used by the engine for the final window of a run_until), then
  /// advances now() to `end`. Ignores stop() -- windows are driven by
  /// the engine, not by model code. In the default half-open form an
  /// event exactly at `end` does NOT run: it belongs to the next window.
  void run_window(SimTime end, bool inclusive = false);

  /// Advances now() to `t` without running anything. Requires that no
  /// pending event is scheduled at or before `t`.
  void advance_to(SimTime t);

  /// Binds this calendar to partition `id` of a parallel engine whose
  /// published safe-window end lives at `safe_horizon` (engine-owned,
  /// set to SimTime minimum while quiescent so setup-time scheduling
  /// from any thread stays legal).
  void bind_partition(std::int32_t id, const std::atomic<SimTime>* safe_horizon);

  /// Partition id under a parallel engine, -1 when unbound (sequential).
  [[nodiscard]] std::int32_t partition_id() const { return partition_id_; }

 private:
  void check_cross_partition(SimTime t) const;

  EventQueue queue_;
  SimTime now_ = 0;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
  std::int32_t partition_id_ = -1;
  const std::atomic<SimTime>* safe_horizon_ = nullptr;
};

}  // namespace rh::sim
