// Fundamental simulation types: time, durations, byte quantities.
//
// The whole simulator runs on a single integer clock with microsecond
// resolution. Using integers (not floating point) keeps event ordering
// exact and runs bit-for-bit reproducible across platforms.
#pragma once

#include <cstdint>

namespace rh::sim {

/// Absolute simulated time in microseconds since simulation start.
using SimTime = std::int64_t;

/// A span of simulated time in microseconds.
using Duration = std::int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000;
inline constexpr Duration kSecond = 1'000'000;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;
inline constexpr Duration kDay = 24 * kHour;
inline constexpr Duration kWeek = 7 * kDay;

/// Converts a simulated time or duration to seconds (for reporting).
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / kSecond; }

/// Converts seconds to a Duration, rounding to the nearest microsecond.
constexpr Duration from_seconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond) + (s >= 0 ? 0.5 : -0.5));
}

/// Byte quantities (memory sizes, disk transfer sizes).
using Bytes = std::int64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

/// Size of one machine page frame. Matches x86 (and Xen's) 4 KiB pages.
inline constexpr Bytes kPageSize = 4 * kKiB;

constexpr double to_gib(Bytes b) { return static_cast<double>(b) / static_cast<double>(kGiB); }
constexpr double to_mib(Bytes b) { return static_cast<double>(b) / static_cast<double>(kMiB); }

/// Duration for transferring `size` bytes at `bytes_per_second`.
constexpr Duration transfer_time(Bytes size, double bytes_per_second) {
  return static_cast<Duration>(static_cast<double>(size) / bytes_per_second *
                               static_cast<double>(kSecond));
}

}  // namespace rh::sim
