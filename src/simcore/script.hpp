// Sequential orchestration of multi-step procedures in simulated time.
//
// Reboot procedures (shut down domain 0 -> quick reload -> resume VMs, ...)
// are sequences of steps, some with computed durations and some completing
// asynchronously (e.g. when a disk transfer finishes). Script runs the
// steps in order and records each step's [start, end] window, which is
// exactly the "breakdown of the downtime" the paper's Figure 7 reports.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "simcore/inline_callback.hpp"
#include "simcore/simulation.hpp"
#include "simcore/types.hpp"

namespace rh::sim {

/// Timing record of one executed step.
struct StepRecord {
  std::string label;
  SimTime start = 0;
  SimTime end = 0;

  [[nodiscard]] Duration duration() const { return end - start; }
};

/// An ordered list of named steps executed back-to-back in simulated time.
///
/// The Script object must outlive the run; reboot drivers own theirs.
class Script {
 public:
  /// A step that performs its work instantly and returns how long the step
  /// occupies in simulated time.
  using SyncStep = std::function<Duration()>;

  /// A step that completes asynchronously; it must eventually invoke the
  /// provided continuation exactly once (at the step's end time).
  using AsyncStep = std::function<void(std::function<void()> done)>;

  explicit Script(Simulation& sim) : sim_(sim) {}
  Script(const Script&) = delete;
  Script& operator=(const Script&) = delete;

  /// Appends a synchronous step.
  Script& step(std::string label, SyncStep fn);

  /// Appends an asynchronous step.
  Script& step_async(std::string label, AsyncStep fn);

  /// Appends a fixed-duration pause.
  Script& pause(std::string label, Duration d);

  /// Starts executing from the first step; `on_complete` fires after the
  /// last step ends. Must not already be running; may be re-run afterwards
  /// (records are cleared at each start).
  void run(InlineCallback on_complete);

  /// Called with each step's completed record, the moment the step ends.
  /// The observability layer hooks this to mirror steps as phase spans
  /// without simcore depending on it; unset (the default) costs nothing.
  using StepObserver = std::function<void(const StepRecord&)>;
  void set_step_observer(StepObserver fn) { step_observer_ = std::move(fn); }

  [[nodiscard]] bool running() const { return running_; }

  /// Per-step timing of the most recent (or in-progress) run.
  [[nodiscard]] const std::vector<StepRecord>& records() const { return records_; }

  /// Record for the step with the given label (first match).
  /// Precondition: the step exists and has executed.
  [[nodiscard]] const StepRecord& record(const std::string& label) const;

  /// Total duration from first step start to last step end.
  /// Precondition: a run has completed.
  [[nodiscard]] Duration total_duration() const;

 private:
  struct Step {
    std::string label;
    AsyncStep fn;  // sync steps are adapted to async
  };

  void run_step(std::size_t i);

  Simulation& sim_;
  std::vector<Step> steps_;
  std::vector<StepRecord> records_;
  StepObserver step_observer_;
  InlineCallback on_complete_;
  bool running_ = false;
  bool completed_ = false;
};

}  // namespace rh::sim
