#include "simcore/script.hpp"

#include <utility>

#include "simcore/check.hpp"

namespace rh::sim {

Script& Script::step(std::string label, SyncStep fn) {
  ensure(!running_, "Script::step: cannot add steps while running");
  ensure(static_cast<bool>(fn), "Script::step: empty step");
  return step_async(std::move(label),
                    [this, fn = std::move(fn)](std::function<void()> done) {
                      const Duration d = fn();
                      ensure(d >= 0, "Script: step returned negative duration");
                      sim_.after(d, std::move(done));
                    });
}

Script& Script::step_async(std::string label, AsyncStep fn) {
  ensure(!running_, "Script::step_async: cannot add steps while running");
  ensure(static_cast<bool>(fn), "Script::step_async: empty step");
  steps_.push_back({std::move(label), std::move(fn)});
  return *this;
}

Script& Script::pause(std::string label, Duration d) {
  ensure(d >= 0, "Script::pause: negative duration");
  return step(std::move(label), [d] { return d; });
}

void Script::run(InlineCallback on_complete) {
  ensure(!running_, "Script::run: already running");
  ensure(!steps_.empty(), "Script::run: no steps");
  running_ = true;
  completed_ = false;
  records_.clear();
  on_complete_ = std::move(on_complete);
  run_step(0);
}

void Script::run_step(std::size_t i) {
  if (i == steps_.size()) {
    running_ = false;
    completed_ = true;
    if (on_complete_) {
      // Move out first: the completion callback may destroy this Script.
      auto done = std::move(on_complete_);
      done();
    }
    return;
  }
  records_.push_back({steps_[i].label, sim_.now(), sim_.now()});
  steps_[i].fn([this, i] {
    records_[i].end = sim_.now();
    if (step_observer_) step_observer_(records_[i]);
    run_step(i + 1);
  });
}

const StepRecord& Script::record(const std::string& label) const {
  for (const auto& r : records_) {
    if (r.label == label) return r;
  }
  throw InvariantViolation("Script::record: no step labelled '" + label + "'");
}

Duration Script::total_duration() const {
  ensure(completed_, "Script::total_duration: run not complete");
  return records_.back().end - records_.front().start;
}

}  // namespace rh::sim
