#include "simcore/trace.hpp"

#include <iomanip>

namespace rh::sim {

void Tracer::emit(SimTime t, std::string category, std::string message) {
  if (!enabled_) return;
  if (stream_ != nullptr) {
    *stream_ << "[" << std::fixed << std::setprecision(3) << to_seconds(t)
             << "s] " << category << ": " << message << "\n";
  }
  records_.push_back({t, std::move(category), std::move(message)});
}

std::vector<TraceRecord> Tracer::by_category(const std::string& category) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_) {
    if (r.category == category) out.push_back(r);
  }
  return out;
}

bool Tracer::contains(const std::string& needle) const {
  for (const auto& r : records_) {
    if (r.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

}  // namespace rh::sim
