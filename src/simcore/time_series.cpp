#include "simcore/time_series.hpp"

#include <algorithm>

#include "simcore/check.hpp"

namespace rh::sim {

namespace {

// Comparator for binary searches over time-ordered samples.
bool sample_before(const Sample& s, SimTime t) { return s.time < t; }

// Stable two-way merge of time-ordered sample vectors: on equal
// timestamps, samples from `a` precede samples from `b`.
std::vector<Sample> merge_samples(const std::vector<Sample>& a,
                                  const std::vector<Sample>& b) {
  std::vector<Sample> out;
  out.reserve(a.size() + b.size());
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (b[j].time < a[i].time) {
      out.push_back(b[j++]);
    } else {
      out.push_back(a[i++]);
    }
  }
  out.insert(out.end(), a.begin() + static_cast<std::ptrdiff_t>(i), a.end());
  out.insert(out.end(), b.begin() + static_cast<std::ptrdiff_t>(j), b.end());
  return out;
}

}  // namespace

void TimeSeries::add(SimTime t, double value) {
  ensure(samples_.empty() || samples_.back().time <= t,
         "TimeSeries::add: samples must be added in time order");
  samples_.push_back({t, value});
}

std::optional<double> TimeSeries::mean_between(SimTime from, SimTime to) const {
  const auto lo = std::lower_bound(samples_.begin(), samples_.end(), from, sample_before);
  const auto hi = std::lower_bound(samples_.begin(), samples_.end(), to, sample_before);
  if (lo == hi) return std::nullopt;
  double sum = 0.0;
  for (auto it = lo; it != hi; ++it) sum += it->value;
  return sum / static_cast<double>(hi - lo);
}

std::vector<Sample> TimeSeries::binned_mean(SimTime start, SimTime end,
                                            Duration bin_width, double fill) const {
  ensure(bin_width > 0, "TimeSeries::binned_mean: bin_width must be positive");
  std::vector<Sample> out;
  for (SimTime t = start; t < end; t += bin_width) {
    const auto m = mean_between(t, std::min<SimTime>(t + bin_width, end));
    out.push_back({t, m.value_or(fill)});
  }
  return out;
}

void TimeSeries::merge(const TimeSeries& other) {
  if (other.samples_.empty()) return;
  samples_ = merge_samples(samples_, other.samples_);
}

void RateRecorder::record(SimTime t, double count) {
  ensure(events_.empty() || events_.back().time <= t,
         "RateRecorder::record: events must be recorded in time order");
  events_.push_back({t, count});
  total_ += count;
}

double RateRecorder::rate_between(SimTime from, SimTime to) const {
  ensure(to > from, "RateRecorder::rate_between: empty window");
  const auto lo = std::lower_bound(events_.begin(), events_.end(), from, sample_before);
  const auto hi = std::lower_bound(events_.begin(), events_.end(), to, sample_before);
  double sum = 0.0;
  for (auto it = lo; it != hi; ++it) sum += it->value;
  return sum / to_seconds(to - from);
}

std::vector<Sample> RateRecorder::rate_series(SimTime start, SimTime end,
                                              Duration bin_width) const {
  ensure(bin_width > 0, "RateRecorder::rate_series: bin_width must be positive");
  std::vector<Sample> out;
  for (SimTime t = start; t < end; t += bin_width) {
    out.push_back({t, rate_between(t, t + bin_width)});
  }
  return out;
}

std::optional<SimTime> RateRecorder::first_event_at_or_after(SimTime from) const {
  const auto it = std::lower_bound(events_.begin(), events_.end(), from, sample_before);
  if (it == events_.end()) return std::nullopt;
  return it->time;
}

std::optional<SimTime> RateRecorder::last_event_before(SimTime before) const {
  const auto it = std::lower_bound(events_.begin(), events_.end(), before, sample_before);
  if (it == events_.begin()) return std::nullopt;
  return std::prev(it)->time;
}

void RateRecorder::merge(const RateRecorder& other) {
  if (other.events_.empty()) return;
  events_ = merge_samples(events_, other.events_);
  total_ += other.total_;
}

void RateRecorder::clear() {
  events_.clear();
  total_ = 0.0;
}

}  // namespace rh::sim
