#include "simcore/histogram.hpp"

#include <algorithm>
#include <bit>

#include "simcore/check.hpp"

namespace rh::sim {

std::size_t LatencyHistogram::bucket_of(Duration d) {
  if (d < 1) d = 1;
  const auto u = static_cast<std::uint64_t>(d);
  // 2 buckets per octave: bucket = 2*floor(log2 u) + [u in upper half].
  const int log2 = std::bit_width(u) - 1;
  const std::uint64_t base = std::uint64_t{1} << log2;
  const std::size_t bucket =
      2 * static_cast<std::size_t>(log2) + ((u - base) * 2 >= base ? 1 : 0);
  return std::min(bucket, kBuckets - 1);
}

Duration LatencyHistogram::bucket_upper(std::size_t bucket) {
  const auto log2 = bucket / 2;
  const std::uint64_t base = std::uint64_t{1} << log2;
  return static_cast<Duration>(bucket % 2 == 0 ? base + base / 2 : base * 2);
}

void LatencyHistogram::add(Duration latency) {
  ensure(latency >= 0, "LatencyHistogram: negative latency");
  if (count_ == 0) {
    min_ = max_ = latency;
  } else {
    min_ = std::min(min_, latency);
    max_ = std::max(max_, latency);
  }
  ++buckets_[bucket_of(latency)];
  ++count_;
  sum_ += static_cast<double>(latency);
}

Duration LatencyHistogram::percentile(double p) const {
  ensure(p >= 0.0 && p <= 100.0, "LatencyHistogram: percentile out of range");
  if (count_ == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(
      p / 100.0 * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) return std::min(bucket_upper(b), max_);
  }
  return max_;
}

void LatencyHistogram::clear() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0.0;
  min_ = max_ = 0;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_ += other.sum_;
}

}  // namespace rh::sim
