// Conservative synchronous parallel DES engine (PDES core).
//
// The sequential Simulation runs one calendar queue on one thread; a
// 1000-host cluster therefore saturates exactly one core no matter how
// many replications run in parallel. This engine partitions the event
// space (one Simulation -- calendar queue plus local clock -- per
// partition, in the cluster one partition per host plus one for the
// control plane) and executes partitions concurrently under the classic
// conservative synchronous-window protocol:
//
//   - partitions interact only through links with positive one-way
//     latency; the minimum latency over all inter-partition links is the
//     *lookahead* L;
//   - each iteration the leader computes T = min over partitions of the
//     next event time and opens the safe window [T, T + L): every event
//     in the window can be executed without ever receiving a message
//     that would have to land inside it, because a message sent at
//     s >= T travels at least L and so arrives at s + L >= T + L;
//   - partitions execute their window events in parallel on the PR-2
//     exp::ThreadPool (static partition -> worker assignment, so the
//     intra-partition event order never depends on scheduling);
//   - cross-partition sends (post()) are appended to the sending
//     partition's outbox and, at the window barrier, merged into the
//     destination calendars in (time, dst, src, seq) order -- a total
//     order independent of worker count, so 1-worker and N-worker runs
//     are bitwise identical.
//
// Determinism contract: a run's observable state is a pure function of
// (initial state, partitioning, lookahead); the worker count only moves
// wall-clock time. The `pdes` test suite pins this with digest grids.
//
// Zero lookahead is rejected loudly: with L == 0 no window can make
// progress without risking a straggler message, which is exactly the
// situation conservative PDES cannot execute in parallel.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "simcore/inline_callback.hpp"
#include "simcore/simulation.hpp"
#include "simcore/types.hpp"

namespace rh::exp {
class ThreadPool;
}  // namespace rh::exp

namespace rh::sim {

/// Sense-reversing barrier for the window loop: short spin (the windows
/// are microseconds of work, so the partners are usually already there),
/// then a condvar park so an oversubscribed or 1-core box does not burn
/// its only core spinning.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) : parties_(parties) {}
  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  void arrive_and_wait();

 private:
  std::size_t parties_;
  std::atomic<std::size_t> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

class ParallelSimulation {
 public:
  struct Config {
    /// Number of event partitions (>= 1). The cluster uses hosts + 1:
    /// partition 0 is the control plane (balancer, client fleet, rolling
    /// pass), partition 1 + h is host h.
    std::int32_t partitions = 1;
    /// Worker threads executing windows. 0 = one per hardware thread;
    /// clamped to [1, partitions]. Worker 0 is the calling thread; the
    /// rest run as long-lived exp::ThreadPool tasks.
    std::size_t workers = 1;
    /// Explicit lookahead override in microseconds. 0 (default) derives
    /// the lookahead from register_link() calls instead.
    Duration lookahead = 0;
  };

  explicit ParallelSimulation(Config config);
  ~ParallelSimulation();
  ParallelSimulation(const ParallelSimulation&) = delete;
  ParallelSimulation& operator=(const ParallelSimulation&) = delete;

  [[nodiscard]] std::int32_t partition_count() const {
    return static_cast<std::int32_t>(partitions_.size());
  }
  [[nodiscard]] std::size_t worker_count() const { return workers_; }
  [[nodiscard]] Simulation& partition(std::int32_t p);

  /// Declares an inter-partition link with the given one-way latency;
  /// the engine's lookahead is the minimum over every declared link (or
  /// Config::lookahead when set). Zero/negative latency is rejected: it
  /// would make the safe window empty.
  void register_link(Duration one_way_latency);
  [[nodiscard]] Duration lookahead() const { return lookahead_; }

  /// Cross-partition send: schedules `fn` on partition `dst` at
  /// (sending partition's now() + delay). Must be called from inside a
  /// partition's window execution (the sending partition is implicit),
  /// and `delay` must be >= lookahead() -- the conservative protocol's
  /// safety condition. Sends to the executing partition itself take the
  /// inline fast path (a plain local schedule, no mailbox).
  void post(std::int32_t dst, Duration delay, InlineCallback fn);

  /// Seeds partition `p` with an event at its current local time. Only
  /// valid while the engine is quiescent (between runs); this is how
  /// benches inject control actions (start the fleet, kick a rolling
  /// pass) so they execute in partition context.
  void run_on(std::int32_t p, InlineCallback fn);

  /// Runs windows until every event with time <= deadline has executed,
  /// then advances every partition clock to `deadline` (the windowed
  /// analogue of Simulation::run_until).
  void run_until(SimTime deadline);

  /// Runs windows while `keep_going()` returns true (evaluated by the
  /// leader at each window barrier -- deterministic, because barriers
  /// happen at the same simulated times for any worker count). Stops on
  /// its own when the event space drains empty.
  void run_while(const std::function<bool()>& keep_going);

  /// True between run_until()/run_while() entry and exit.
  [[nodiscard]] bool running() const { return running_; }

  // ------------------------------------------------------------- stats
  [[nodiscard]] std::uint64_t windows_executed() const { return windows_; }
  [[nodiscard]] std::uint64_t messages_routed() const { return messages_; }
  /// Sum of every partition's executed event count. Quiescent only.
  [[nodiscard]] std::uint64_t total_executed_events() const;
  /// End of the currently open safe window (test hook; meaningful only
  /// mid-run, otherwise SimTime minimum).
  [[nodiscard]] SimTime safe_horizon() const {
    return horizon_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr SimTime kNoHorizon = std::numeric_limits<SimTime>::min();
  static constexpr SimTime kNoDeadline = std::numeric_limits<SimTime>::max();

  /// One cross-partition message. seq is a per-sender counter, so the
  /// (time, dst, src, seq) sort key is a total order and preserves each
  /// sender's program order.
  struct Message {
    SimTime time = 0;
    std::int32_t dst = 0;
    std::int32_t src = 0;
    std::uint64_t seq = 0;
    InlineCallback fn;
  };

  /// Cache-line aligned so one worker's outbox appends and calendar
  /// operations never false-share with a neighbour partition's.
  struct alignas(64) Partition {
    Simulation sim;
    std::vector<Message> outbox;
    std::uint64_t next_seq = 1;
  };

  void run_loop(SimTime deadline, const std::function<bool()>* keep_going);
  void participant_loop(std::size_t worker);
  /// Leader-only, between barriers: drains outboxes, merges messages in
  /// (time, dst, src, seq) order, then either opens the next window or
  /// raises done_.
  void plan();
  void capture_failure() noexcept;

  std::vector<std::unique_ptr<Partition>> partitions_;
  std::size_t workers_ = 1;
  Duration lookahead_ = 0;
  bool lookahead_fixed_ = false;  // Config::lookahead override in force

  std::unique_ptr<exp::ThreadPool> pool_;
  SpinBarrier barrier_;

  // Window-loop state. Written by the leader strictly between barriers,
  // read by every participant after the next barrier, so plain fields
  // are race-free; horizon_ is atomic because the cross-partition
  // schedule guard reads it from inside windows.
  bool running_ = false;
  bool done_ = false;
  SimTime window_end_ = 0;
  bool window_inclusive_ = false;
  SimTime deadline_ = kNoDeadline;
  const std::function<bool()>* keep_going_ = nullptr;
  std::atomic<SimTime> horizon_{kNoHorizon};
  std::vector<Message> merge_buf_;

  std::mutex failure_mu_;
  std::exception_ptr failure_;

  std::uint64_t windows_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace rh::sim
