// Invariant checking helpers.
//
// Per the C++ Core Guidelines (I.6/I.8, E.12) we express preconditions and
// invariants as checked expressions that throw on violation. Exceptions
// (rather than abort) let tests assert that violations are detected.
#pragma once

#include <stdexcept>
#include <string>

namespace rh {

/// Thrown when a simulator invariant or precondition is violated.
class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Throws InvariantViolation with `message` unless `condition` holds.
inline void ensure(bool condition, const std::string& message) {
  if (!condition) throw InvariantViolation(message);
}

}  // namespace rh
