// Invariant checking helpers.
//
// Per the C++ Core Guidelines (I.6/I.8, E.12) we express preconditions and
// invariants as checked expressions that throw on violation. Exceptions
// (rather than abort) let tests assert that violations are detected.
//
// ensure() sits on the simulator's hottest paths (every event push/pop runs
// through it), so the success path must cost exactly one predicted branch:
// the message stays a const char* and the exception is materialized only in
// the out-of-line, cold throw helper. Passing a std::string temporary here
// would tax every call even when the invariant holds.
#pragma once

#include <stdexcept>
#include <string>

namespace rh {

/// Thrown when a simulator invariant or precondition is violated.
class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Cold path: constructs and throws InvariantViolation. Out of line so
/// ensure() inlines to a bare test-and-branch.
[[noreturn]] void throw_invariant_violation(const char* message);

/// Throws InvariantViolation with `message` unless `condition` holds.
inline void ensure(bool condition, const char* message) {
  if (!condition) [[unlikely]] {
    throw_invariant_violation(message);
  }
}

/// Overload for call sites that build the message dynamically; those are
/// all cold paths, so eager message construction there is acceptable.
inline void ensure(bool condition, const std::string& message) {
  if (!condition) [[unlikely]] {
    throw_invariant_violation(message.c_str());
  }
}

}  // namespace rh
