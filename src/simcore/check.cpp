#include "simcore/check.hpp"

namespace rh {

void throw_invariant_violation(const char* message) {
  throw InvariantViolation(message);
}

}  // namespace rh
