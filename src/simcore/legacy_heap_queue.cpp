#include "simcore/legacy_heap_queue.hpp"

#include <utility>

#include "simcore/check.hpp"

namespace rh::sim {

LegacyHeapQueue::EventId LegacyHeapQueue::push(SimTime t, std::function<void()> fn) {
  ensure(static_cast<bool>(fn), "LegacyHeapQueue::push: callback must not be empty");
  const EventId id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id, std::move(fn)});
  return id;
}

bool LegacyHeapQueue::cancel(EventId id) {
  if (id == kInvalid) return false;
  // An id is "pending" if it was issued and is not already cancelled. We do
  // not track popped ids individually; callers only cancel ids they own and
  // have not yet seen fire, so double-cancel of a fired event is benign.
  return cancelled_.insert(id).second;
}

void LegacyHeapQueue::skip_cancelled() const {
  while (!heap_.empty() && cancelled_.count(heap_.top().id) > 0) {
    cancelled_.erase(heap_.top().id);
    heap_.pop();
  }
}

bool LegacyHeapQueue::empty() const {
  skip_cancelled();
  return heap_.empty();
}

std::size_t LegacyHeapQueue::size() const {
  // Upper bound adjusted for not-yet-skipped tombstones: exact because each
  // cancelled id corresponds to exactly one heap entry.
  return heap_.size() - cancelled_.size();
}

SimTime LegacyHeapQueue::next_time() const {
  skip_cancelled();
  ensure(!heap_.empty(), "LegacyHeapQueue::next_time: queue is empty");
  return heap_.top().time;
}

LegacyHeapQueue::Popped LegacyHeapQueue::pop() {
  skip_cancelled();
  ensure(!heap_.empty(), "LegacyHeapQueue::pop: queue is empty");
  // priority_queue::top() returns const&; the callback must be moved out, so
  // we const_cast the owned entry. The entry is popped immediately after.
  auto& top = const_cast<Entry&>(heap_.top());
  Popped out{top.time, top.id, std::move(top.fn)};
  heap_.pop();
  return out;
}

void LegacyHeapQueue::clear() {
  heap_ = {};
  cancelled_.clear();
}

}  // namespace rh::sim
