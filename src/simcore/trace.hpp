// Human-readable tracing of simulation activity (compatibility facade).
//
// Components emit labelled trace records (category + message) with the
// simulated timestamp. Tests and benches consume the record list; the
// examples stream them to stdout to narrate a run.
//
// This is the *narrative* layer: strings for humans and tests. The typed,
// allocation-free machine-readable layer is obs::Observer (src/obs/) --
// POD events, phase spans and metrics. Call sites that build a message
// dynamically must guard on enabled() first (emit() drops records when
// disabled, but by then the caller has already paid for the formatting).
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "simcore/types.hpp"

namespace rh::sim {

/// One trace record.
struct TraceRecord {
  SimTime time = 0;
  std::string category;
  std::string message;
};

/// Collects trace records; optionally mirrors them to a stream.
class Tracer {
 public:
  /// Emits a record (no-op when disabled).
  void emit(SimTime t, std::string category, std::string message);

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Mirrors future records to `os` (pass nullptr to stop mirroring).
  void stream_to(std::ostream* os) { stream_ = os; }

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }

  /// Records whose category matches exactly.
  [[nodiscard]] std::vector<TraceRecord> by_category(const std::string& category) const;

  /// True if any record's message contains `needle`.
  [[nodiscard]] bool contains(const std::string& needle) const;

  void clear() { records_.clear(); }

 private:
  std::vector<TraceRecord> records_;
  std::ostream* stream_ = nullptr;
  bool enabled_ = true;
};

}  // namespace rh::sim
