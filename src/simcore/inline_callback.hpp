// Small-buffer-optimized, move-only `void()` callable for the scheduler.
//
// Every simulated mechanism schedules closures through the event queue, so
// the callable wrapper is on the hottest path in the whole system.
// std::function<void()> heap-allocates once its capture exceeds ~16 bytes
// (libstdc++), which the timer-heavy models (TCP retransmission, probers,
// rejuvenation policies) exceed routinely. InlineCallback instead embeds up
// to kInlineCapacity bytes of capture state directly in the event node:
//
//   - callables whose size/alignment fit (and that are nothrow-movable)
//     are stored inline -- scheduling them performs zero heap allocations;
//   - larger callables transparently fall back to a single heap allocation
//     (same behaviour as std::function, just rarer);
//   - move-only captures (std::unique_ptr, ...) are supported, unlike
//     std::function, because InlineCallback itself is move-only.
//
// The 48-byte capacity is sized to the closures actually scheduled across
// src/: a `this` pointer plus a handful of ids/durations, or a moved-in
// std::function<void()> continuation (32 bytes on libstdc++), all fit.
// Together with the two dispatch pointers the wrapper is exactly one cache
// line (64 bytes) on LP64 platforms.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "simcore/check.hpp"

namespace rh::sim {

class InlineCallback {
 public:
  /// Largest capture size stored without heap allocation.
  static constexpr std::size_t kInlineCapacity = 48;
  static constexpr std::size_t kInlineAlignment = alignof(std::max_align_t);

  /// True if callables of type `Fn` are stored inline (no allocation).
  template <typename Fn>
  static constexpr bool stores_inline() {
    return sizeof(Fn) <= kInlineCapacity && alignof(Fn) <= kInlineAlignment &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  InlineCallback() noexcept = default;
  InlineCallback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  /// Wraps any void() callable. A null function pointer or empty
  /// std::function produces an empty InlineCallback (so emptiness checks
  /// made by the queue keep working across the conversion).
  template <typename F, typename Fn = std::remove_cvref_t<F>,
            typename = std::enable_if_t<!std::is_same_v<Fn, InlineCallback> &&
                                        !std::is_same_v<Fn, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, Fn&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (requires { f == nullptr; }) {
      if (f == nullptr) return;
    }
    if constexpr (stores_inline<Fn>() && std::is_trivially_copyable_v<Fn> &&
                  std::is_trivially_destructible_v<Fn>) {
      // The common case across src/ (captures of pointers, ids, durations):
      // manage_ stays null, marking the callable trivially relocatable --
      // moves are a memcpy and destruction is a no-op, so the scheduler's
      // push/pop path performs no indirect calls until the final invoke.
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); };
    } else if constexpr (stores_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); };
      manage_ = [](Op op, void* self, void* other) {
        auto* fn = std::launder(reinterpret_cast<Fn*>(self));
        switch (op) {
          case Op::kDestroy:
            fn->~Fn();
            break;
          case Op::kMoveTo:
            ::new (other) Fn(std::move(*fn));
            fn->~Fn();
            break;
          case Op::kQueryInline:
            *static_cast<bool*>(other) = true;
            break;
        }
      };
    } else {
      // Over-size (or over-aligned, or throwing-move) callable: one heap
      // allocation, pointer stored in the buffer.
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      invoke_ = [](void* s) { (**static_cast<Fn**>(s))(); };
      manage_ = [](Op op, void* self, void* other) {
        switch (op) {
          case Op::kDestroy:
            delete *static_cast<Fn**>(self);
            break;
          case Op::kMoveTo:
            ::new (other) Fn*(*static_cast<Fn**>(self));
            break;
          case Op::kQueryInline:
            *static_cast<bool*>(other) = false;
            break;
        }
      };
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { move_from(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  /// Invokes the wrapped callable. Precondition: !empty.
  void operator()() {
    ensure(invoke_ != nullptr, "InlineCallback: invoking empty callback");
    invoke_(storage_);
  }

  [[nodiscard]] explicit operator bool() const noexcept { return invoke_ != nullptr; }

  /// True if the wrapped callable lives in the inline buffer (test hook).
  [[nodiscard]] bool is_inline() const noexcept {
    if (manage_ == nullptr) return invoke_ != nullptr;  // trivially relocatable
    bool inline_storage = false;
    manage_(Op::kQueryInline, const_cast<std::byte*>(storage_), &inline_storage);
    return inline_storage;
  }

 private:
  enum class Op { kDestroy, kMoveTo, kQueryInline };

  using InvokeFn = void (*)(void*);
  using ManageFn = void (*)(Op, void*, void*);

  void reset() noexcept {
    if (manage_ != nullptr) manage_(Op::kDestroy, storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  void move_from(InlineCallback& other) noexcept {
    if (other.manage_ != nullptr) {
      other.manage_(Op::kMoveTo, other.storage_, storage_);
    } else if (other.invoke_ != nullptr) {
      std::memcpy(storage_, other.storage_, kInlineCapacity);
    } else {
      return;
    }
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(kInlineAlignment) std::byte storage_[kInlineCapacity];
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

static_assert(sizeof(InlineCallback) ==
                  InlineCallback::kInlineCapacity + 2 * sizeof(void*),
              "InlineCallback must carry no hidden overhead");

}  // namespace rh::sim
