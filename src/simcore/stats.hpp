// Summary statistics and least-squares fitting.
//
// Used by the benches to regress simulated measurements into the linear
// model functions of the paper's Section 5.6 (reboot_vmm(n), resume(n), ...).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rh::sim {

/// Streaming summary statistics (Welford's algorithm).
class Summary {
 public:
  void add(double x);

  /// Combines another summary into this one (Chan et al.'s parallel
  /// Welford update), as if every sample of `other` had been add()ed
  /// here. Mathematically associative; floating-point results depend on
  /// merge order, so reductions that must be reproducible (the
  /// experiment runner) always merge in replication-index order.
  void merge(const Summary& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< Sample variance (n-1).
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Result of an ordinary-least-squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;

  [[nodiscard]] double at(double x) const { return slope * x + intercept; }

  /// Formats like the paper, e.g. "-0.55n + 43".
  [[nodiscard]] std::string to_string(const std::string& var = "n") const;
};

/// Ordinary least squares over paired samples. Requires >= 2 points.
LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

/// Percentile (nearest-rank) of a sample vector; p in [0, 100].
double percentile(std::vector<double> values, double p);

/// Two-sided critical value of Student's t distribution at 95 % confidence
/// for `dof` degrees of freedom (tabulated 1..30, stepped above that,
/// converging to the normal 1.960).
double t_critical_95(std::size_t dof);

/// Half-width of the 95 % confidence interval of the mean of `s`
/// (t_{.975,n-1} * stddev / sqrt(n)). Zero when fewer than two samples.
double ci95_half_width(const Summary& s);

}  // namespace rh::sim
