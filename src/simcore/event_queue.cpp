#include "simcore/event_queue.hpp"

#include <utility>

#include "simcore/check.hpp"

namespace rh::sim {

EventId EventQueue::push(SimTime t, std::function<void()> fn) {
  ensure(static_cast<bool>(fn), "EventQueue::push: callback must not be empty");
  const EventId id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id, std::move(fn)});
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == kInvalidEventId) return false;
  // An id is "pending" if it was issued and is not already cancelled. We do
  // not track popped ids individually; callers only cancel ids they own and
  // have not yet seen fire, so double-cancel of a fired event is benign.
  return cancelled_.insert(id).second;
}

void EventQueue::skip_cancelled() const {
  while (!heap_.empty() && cancelled_.count(heap_.top().id) > 0) {
    cancelled_.erase(heap_.top().id);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  skip_cancelled();
  return heap_.empty();
}

std::size_t EventQueue::size() const {
  // Upper bound adjusted for not-yet-skipped tombstones: exact because each
  // cancelled id corresponds to exactly one heap entry.
  return heap_.size() - cancelled_.size();
}

SimTime EventQueue::next_time() const {
  skip_cancelled();
  ensure(!heap_.empty(), "EventQueue::next_time: queue is empty");
  return heap_.top().time;
}

EventQueue::Popped EventQueue::pop() {
  skip_cancelled();
  ensure(!heap_.empty(), "EventQueue::pop: queue is empty");
  // priority_queue::top() returns const&; the callback must be moved out, so
  // we const_cast the owned entry. The entry is popped immediately after.
  auto& top = const_cast<Entry&>(heap_.top());
  Popped out{top.time, top.id, std::move(top.fn)};
  heap_.pop();
  return out;
}

void EventQueue::clear() {
  heap_ = {};
  cancelled_.clear();
}

}  // namespace rh::sim
