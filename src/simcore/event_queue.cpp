#include "simcore/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "simcore/check.hpp"

namespace rh::sim {

EventQueue::EventQueue() : buckets_(kMinBuckets) {}

std::uint32_t EventQueue::alloc_node() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  ensure(nodes_.size() < kNil, "EventQueue: node slab exhausted");
  if (nodes_.size() == nodes_.capacity()) {
    // Quadrupling (instead of the default doubling) keeps the amortized
    // relocation cost of the parallel slabs at ~1/3 element-move per push.
    const std::size_t cap = std::max<std::size_t>(64, nodes_.capacity() * 4);
    nodes_.reserve(cap);
    fns_.reserve(cap);
  }
  nodes_.emplace_back();
  fns_.emplace_back();
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void EventQueue::free_node(std::uint32_t slot) {
  Node& n = nodes_[slot];
  fns_[slot] = InlineCallback{};
  n.live = 0;
  // Bumping the generation staleness-proofs every EventId ever issued for
  // this slot. Generation 0 is skipped so (slot 0, gen) never collides with
  // kInvalidEventId.
  if (++n.gen == 0) n.gen = 1;
  free_.push_back(slot);
}

void EventQueue::insert_into_bucket(std::uint32_t slot) {
  Node& n = nodes_[slot];
  Bucket& b = buckets_[bucket_index(n.time)];
  // Unconditional tail append -- push never walks a list. `time > max_time`
  // proves the append preserves (time, seq) order without reading the tail
  // node (at time == max_time a fresh push also carries the highest seq);
  // anything else just clears `sorted` and the bucket is sorted once, when
  // the pop scan first reaches it.
  if (b.head == kNil) {
    n.prev = kNil;
    n.next = kNil;
    b.head = slot;
    b.tail = slot;
    b.min_time = n.time;
    b.max_time = n.time;
    b.sorted = 1;
    n.live = 1;
    return;
  }
  if (n.time > b.max_time ||
      (n.time == b.max_time && next_seq_ == n.seq + 1)) {
    b.max_time = n.time;
  } else if (b.sorted != 0) {
    // Out-of-order arrival into a sorted list: try a short walk from the
    // tail first. Under a well-tuned width the insertion point is 1-2 nodes
    // back, and keeping the list sorted preserves the pop fast paths; only
    // when the walk would be long (width far too coarse) do we fall back to
    // appending unsorted, capping the per-push cost at kMaxInsertWalk node
    // reads no matter how degenerate the bucket.
    constexpr std::size_t kMaxInsertWalk = 8;
    std::uint32_t at = b.tail;
    std::size_t steps = 0;
    while (at != kNil && steps < kMaxInsertWalk &&
           (nodes_[at].time > n.time ||
            (nodes_[at].time == n.time && nodes_[at].seq > n.seq))) {
      at = nodes_[at].prev;
      ++steps;
    }
    insert_stress_ += steps;
    if (at == kNil) {
      n.prev = kNil;
      n.next = b.head;
      nodes_[b.head].prev = slot;
      b.head = slot;
      b.min_time = n.time;
      n.live = 1;
      return;
    }
    if (nodes_[at].time < n.time ||
        (nodes_[at].time == n.time && nodes_[at].seq < n.seq)) {
      n.prev = at;
      n.next = nodes_[at].next;
      nodes_[at].next = slot;
      if (n.next != kNil) {
        nodes_[n.next].prev = slot;
      } else {
        b.tail = slot;
        b.max_time = n.time;
      }
      n.live = 1;
      return;
    }
    // Walk budget exhausted: append and let the scan sort lazily.
    b.sorted = 0;
    b.min_time = std::min(b.min_time, n.time);
  } else {
    b.min_time = std::min(b.min_time, n.time);
    b.max_time = std::max(b.max_time, n.time);
  }
  n.prev = b.tail;
  n.next = kNil;
  nodes_[b.tail].next = slot;
  b.tail = slot;
  n.live = 1;
}

void EventQueue::sort_bucket(Bucket& b) {
  // Collect the list into scratch_, order by (time, seq), relink. Cost is
  // k log k once per bucket per qualifying scan, charged to insert_stress_:
  // chronically large sorts mean the width is too coarse, and the stress
  // threshold converts that signal into a re-tuning rebuild.
  scratch_.clear();
  for (std::uint32_t s = b.head; s != kNil; s = nodes_[s].next) {
    scratch_.push_back(s);
  }
  std::sort(scratch_.begin(), scratch_.end(),
            [this](std::uint32_t a, std::uint32_t c) {
              const Node& na = nodes_[a];
              const Node& nc = nodes_[c];
              return na.time < nc.time || (na.time == nc.time && na.seq < nc.seq);
            });
  std::uint32_t prev = kNil;
  for (const std::uint32_t s : scratch_) {
    nodes_[s].prev = prev;
    if (prev != kNil) {
      nodes_[prev].next = s;
    }
    prev = s;
  }
  nodes_[prev].next = kNil;
  b.head = scratch_.front();
  b.tail = scratch_.back();
  b.min_time = nodes_[b.head].time;
  b.max_time = nodes_[b.tail].time;
  b.sorted = 1;
  insert_stress_ += scratch_.size();
}

void EventQueue::unlink(std::uint32_t slot) {
  Node& n = nodes_[slot];
  Bucket& b = buckets_[bucket_index(n.time)];
  if (n.prev != kNil) {
    nodes_[n.prev].next = n.next;
  } else {
    b.head = n.next;
    // Only a sorted bucket's min may be raised to the new head's time: in an
    // unsorted list the head is not the min, and a stale-LOW min_time is
    // harmless (wasted sort) where a stale-high one would corrupt pop order.
    if (n.next != kNil && b.sorted != 0) b.min_time = nodes_[n.next].time;
  }
  if (n.next != kNil) {
    nodes_[n.next].prev = n.prev;
  } else {
    b.tail = n.prev;
  }
}

void EventQueue::reset_scan(SimTime t) {
  cur_bucket_ = bucket_index(t);
  cur_slot_start_ = slot_start(t);
}

void EventQueue::find_min() {
  if (cached_min_ != kNil) return;
  // Phase 1: calendar scan. Starting from the current day, take the first
  // bucket whose head falls inside that bucket's slot of the current year.
  // The scan-state invariant (no live event before cur_slot_start_) makes
  // that head the global (time, seq) minimum: a bucket head from a later
  // slot sorts after every current-slot event, and same-time events share a
  // bucket in seq order. Qualification reads only bucket metadata
  // (min_time), so the wade through sparse days is a sequential pass over
  // the bucket array with no node accesses; an unsorted bucket is sorted
  // once, here, when it first qualifies. The scan never crosses horizon_:
  // every bucketed event is below it, and far events (live == 2) are not in
  // any bucket.
  const std::size_t nb = buckets_.size();
  const Duration w = width();
  for (std::size_t k = 0; k < nb && cur_slot_start_ < horizon_; ++k) {
    Bucket& b = buckets_[cur_bucket_];
    if (b.head != kNil && b.min_time < cur_slot_start_ + w) {
      if (b.sorted == 0) sort_bucket(b);
      if (b.min_time < cur_slot_start_ + w) {
        cached_min_ = b.head;
        scan_stress_ += k;
        return;
      }
      // min_time was stale-low; the sort tightened it and the bucket's real
      // minimum lies in a later slot -- keep scanning.
    }
    cur_bucket_ = (cur_bucket_ + 1) & (nb - 1);
    cur_slot_start_ += w;
  }
  // Phase 2: the bucketed year is exhausted -- only events at or beyond
  // horizon_ remain (e.g. the microsecond-scale timers drained and
  // week-scale rejuvenation timers are left). Rebuild the calendar around
  // the survivors: the new width matches their time scale, the new horizon
  // covers their leading year, and subsequent pops are O(1) again.
  rebuild(std::clamp(std::bit_ceil(std::max<std::size_t>(size_, 1)) * kLoadFactorInv,
                     kMinBuckets, kMaxBuckets),
          Retune::kResample);
  ensure(cached_min_ != kNil, "EventQueue: scan invariant broken");
}

int EventQueue::tune_width_shift(std::size_t new_count, Retune retune) {
  if (retune == Retune::kReuseEstimate && last_est_ > 0) {
    // Growth rebuilds reuse the last sampled span estimate: the distribution
    // rarely shifts within one growth step, and if it does the stress
    // counters force a resampling rebuild anyway. This keeps the common
    // grow chain free of sampling passes entirely.
    const auto per_slot = static_cast<std::uint64_t>(
        last_est_ / static_cast<SimTime>(new_count) + 1);
    return std::clamp(static_cast<int>(std::bit_width(per_slot - 1)), 0,
                      kMaxWidthShift);
  }
  // Estimate the live events' time span from quantiles, then size buckets
  // so the span maps to roughly one slot per event. The narrow windows
  // catch multi-modal distributions: with microsecond timers clustered next
  // to week-scale ones, (q90 - q10) straddles the gap between clusters and
  // would yield an uselessly coarse width, but at least one narrow window
  // lands inside the dense cluster and measures its true scale. The windows
  // are weighted toward the MINIMUM end: pop always takes the min and DES
  // pushes cluster near "now", so the bottom of the time distribution is
  // the busy region that must stay resolved even when it holds only a small
  // fraction of the live events. Preferring the smallest non-degenerate
  // estimate keeps that region fast; far-horizon events simply wrap
  // multiple years, which phase 2 and the stress counters already handle.
  // Quantiles are computed over a strided sample (<= ~2*kTuneSample times)
  // gathered by a sequential walk over the node slab: each quantile costs an
  // nth_element pass, and several are taken below, so sampling caps the
  // tuning cost of a rebuild at O(min(n, kTuneSample)) compares plus one
  // streaming slab pass -- without the cap the growth chain's repeated
  // tunings showed up as tens of ns per event in profiles.
  static constexpr std::size_t kTuneSample = 256;
  const std::size_t stride = size_ / kTuneSample + 1;
  std::vector<SimTime> ts;
  ts.reserve(size_ / stride + 1);
  std::size_t live_seen = 0;
  for (const Node& n : nodes_) {
    if (n.live == 0) continue;
    if (live_seen++ % stride == 0) ts.push_back(n.time);
  }
  const std::size_t k = ts.size();
  if (k < 2) return width_shift_;
  auto quantile = [&](std::size_t num, std::size_t den) {
    const auto idx = static_cast<std::ptrdiff_t>((k - 1) * num / den);
    std::nth_element(ts.begin(), ts.begin() + idx, ts.end());
    return ts[static_cast<std::size_t>(idx)];
  };
  SimTime est = std::max<SimTime>(1, (quantile(9, 10) - quantile(1, 10)) * 5 / 4);
  const auto consider = [&](SimTime window, SimTime scale) {
    if (window > 0) est = std::min(est, window * scale);
  };
  consider(quantile(5, 100) - quantile(0, 100), 20);
  consider(quantile(15, 100) - quantile(5, 100), 10);
  consider(quantile(40, 100) - quantile(30, 100), 10);
  consider(quantile(70, 100) - quantile(60, 100), 10);
  last_est_ = est;

  const auto per_slot = static_cast<std::uint64_t>(
      est / static_cast<SimTime>(new_count) + 1);
  int shift = std::bit_width(per_slot - 1);  // ceil(log2)
  shift = std::clamp(shift, 0, kMaxWidthShift);

  // Feedback nudge: if the quantile estimate lands on the current width but
  // the stress counters say it is wrong, move one notch in the indicated
  // direction (long insert walks => too coarse; empty-bucket wading => too
  // fine). This breaks re-tuning livelock on adversarial distributions.
  if (shift == width_shift_ && insert_stress_ + scan_stress_ > 0) {
    if (insert_stress_ > scan_stress_) {
      shift = std::max(0, shift - 1);
    } else {
      shift = std::min(kMaxWidthShift, shift + 1);
    }
  }
  return shift;
}

void EventQueue::rebuild(std::size_t new_count, Retune retune) {
  // Live nodes are found by walking the slab, not the bucket lists: the slab
  // walk is a sequential streaming read (two nodes per cache line), where
  // chasing list next-pointers is a dependent random miss per event. The
  // rebuild's only random accesses are the writes into the new bucket array.
  if (size_ >= 2) width_shift_ = tune_width_shift(new_count, retune);
  buckets_.assign(new_count, Bucket{});
  insert_stress_ = 0;
  scan_stress_ = 0;
  // Walk 1: global (time, seq) minimum, anchoring the scan and the horizon.
  std::uint32_t min_slot = kNil;
  SimTime min_time = 0;
  std::uint64_t min_seq = 0;
  const auto nn = static_cast<std::uint32_t>(nodes_.size());
  for (std::uint32_t s = 0; s < nn; ++s) {
    const Node& n = nodes_[s];
    if (n.live == 0) continue;
    if (min_slot == kNil || n.time < min_time ||
        (n.time == min_time && n.seq < min_seq)) {
      min_slot = s;
      min_time = n.time;
      min_seq = n.seq;
    }
  }
  if (min_slot == kNil) {
    reset_scan(0);
    horizon_ = span();
    cached_min_ = kNil;
    return;
  }
  reset_scan(min_time);
  horizon_ = slot_start(min_time) + span();
  // Walk 2: bucket the leading year, park everything beyond it as far
  // (live == 2, no list membership). Far events cost nothing to park and
  // nothing while parked; the next phase-2 rebuild re-examines them.
  for (std::uint32_t s = 0; s < nn; ++s) {
    Node& n = nodes_[s];
    if (n.live == 0) continue;
    if (n.time < horizon_) {
      insert_into_bucket(s);
    } else {
      n.live = 2;
    }
  }
  insert_stress_ = 0;  // reinsertion walks are rebuild cost, not width signal
  cached_min_ = min_slot;
}

EventId EventQueue::push(SimTime t, InlineCallback fn) {
  ensure(static_cast<bool>(fn), "EventQueue::push: callback must not be empty");
  const std::uint32_t slot = alloc_node();
  Node& n = nodes_[slot];
  n.time = t;
  n.seq = next_seq_++;
  fns_[slot] = std::move(fn);
  const EventId id = make_id(slot, n.gen);
  if (size_ == 0) {
    reset_scan(t);
    horizon_ = slot_start(t) + span();
    cached_min_ = slot;
    insert_into_bucket(slot);
  } else if (t >= horizon_) {
    // Far event: beyond the bucketed year. Park it in the slab untouched --
    // no bucket write, no list walk, no effect on the scan -- until a
    // phase-2 rebuild re-draws the horizon past it. This is what keeps
    // week-scale rejuvenation timers from polluting a calendar tuned for
    // microsecond TCP traffic.
    n.live = 2;
  } else {
    if (t < cur_slot_start_) reset_scan(t);
    if (cached_min_ != kNil && t < nodes_[cached_min_].time) cached_min_ = slot;
    insert_into_bucket(slot);
  }
  ++size_;
  // Growth triggers at load 2 and targets load 1/kLoadFactorInv, so each
  // step multiplies the bucket count ~4x: the growth chain's amortized
  // reinsertion cost stays under ~1/3 of pushes, and grow rebuilds reuse the
  // cached width estimate so they are pure streaming passes.
  if (size_ > buckets_.size() * 2 && buckets_.size() < kMaxBuckets) {
    rebuild(std::min(kMaxBuckets, std::bit_ceil(size_) * kLoadFactorInv),
            Retune::kReuseEstimate);
  } else if (insert_stress_ + scan_stress_ > size_ + buckets_.size() + 256) {
    rebuild(buckets_.size(), Retune::kResample);
  }
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == kInvalidEventId) return false;
  const auto slot = static_cast<std::uint32_t>(id >> 32);
  const auto gen = static_cast<std::uint32_t>(id);
  if (slot >= nodes_.size()) return false;
  Node& n = nodes_[slot];
  if (n.live == 0 || n.gen != gen) return false;
  if (cached_min_ == slot) cached_min_ = kNil;
  if (n.live == 1) unlink(slot);  // far events are in no bucket list
  free_node(slot);
  --size_;
  return true;
}

SimTime EventQueue::next_time() const {
  ensure(size_ > 0, "EventQueue::next_time: queue is empty");
  // Shares the scan (and a possible re-tuning rebuild) with pop(); the
  // observable pop order is unaffected, so this is logically const.
  auto* self = const_cast<EventQueue*>(this);
  self->find_min();
  return nodes_[cached_min_].time;
}

EventQueue::Popped EventQueue::pop() {
  ensure(size_ > 0, "EventQueue::pop: queue is empty");
  find_min();
  const std::uint32_t slot = cached_min_;
  cached_min_ = kNil;
  Node& n = nodes_[slot];
  Popped out{n.time, make_id(slot, n.gen), std::move(fns_[slot])};
  const std::uint32_t succ = n.next;
  unlink(slot);
  free_node(slot);
  --size_;
  // The popped head's successor is the new bucket head; if the bucket is
  // sorted and the successor's time still falls inside the current slot of
  // the current year, it is the global minimum by the same argument as the
  // phase-1 scan, so the next pop can skip find_min entirely (this is what
  // makes same-time bursts O(1)).
  if (succ != kNil && nodes_[succ].time < cur_slot_start_ + width() &&
      buckets_[bucket_index(out.time)].sorted != 0) {
    cached_min_ = succ;
  }
  // Shrink only once the calendar is far below the grow trigger (load 1/8
  // vs 2) and shrink back to the grow target -- the wide hysteresis band
  // keeps push-heavy / pop-heavy alternation from thrashing rebuilds. The
  // drain resamples the width: the surviving events' span is typically much
  // narrower than the last full-population estimate.
  if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 8) {
    rebuild(std::clamp(std::bit_ceil(std::max<std::size_t>(size_, 1)) * kLoadFactorInv,
                       kMinBuckets, kMaxBuckets),
            Retune::kResample);
  } else if (insert_stress_ + scan_stress_ > size_ + buckets_.size() + 256) {
    rebuild(buckets_.size(), Retune::kResample);
  }
  return out;
}

void EventQueue::clear() {
  // Slab walk rather than bucket-list chase: finds far (unbucketed) events
  // too, and streams sequentially.
  const auto nn = static_cast<std::uint32_t>(nodes_.size());
  for (std::uint32_t s = 0; s < nn; ++s) {
    if (nodes_[s].live != 0) free_node(s);
  }
  std::fill(buckets_.begin(), buckets_.end(), Bucket{});
  size_ = 0;
  cached_min_ = kNil;
  insert_stress_ = 0;
  scan_stress_ = 0;
  reset_scan(0);
  horizon_ = span();
}

}  // namespace rh::sim
