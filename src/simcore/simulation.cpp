#include "simcore/simulation.hpp"

#include <utility>

#include "simcore/check.hpp"

namespace rh::sim {

EventId Simulation::at(SimTime t, InlineCallback fn) {
  ensure(t >= now_, "Simulation::at: cannot schedule in the past");
  return queue_.push(t, std::move(fn));
}

EventId Simulation::after(Duration delay, InlineCallback fn) {
  ensure(delay >= 0, "Simulation::after: negative delay");
  return queue_.push(now_ + delay, std::move(fn));
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  auto ev = queue_.pop();
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

void Simulation::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulation::run_until(SimTime deadline) {
  ensure(deadline >= now_, "Simulation::run_until: deadline in the past");
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  if (!stopped_) now_ = deadline;
}

void Simulation::run_for(Duration d) { run_until(now_ + d); }

}  // namespace rh::sim
