#include "simcore/simulation.hpp"

#include <utility>

#include "simcore/check.hpp"

namespace rh::sim {

namespace {
thread_local std::int32_t tl_current_partition = -1;
}  // namespace

std::int32_t current_partition() noexcept { return tl_current_partition; }
void set_current_partition(std::int32_t p) noexcept { tl_current_partition = p; }

EventId Simulation::at(SimTime t, InlineCallback fn) {
  ensure(t >= now_, "Simulation::at: cannot schedule in the past");
  if (partition_id_ >= 0) check_cross_partition(t);
  return queue_.push(t, std::move(fn));
}

EventId Simulation::after(Duration delay, InlineCallback fn) {
  ensure(delay >= 0, "Simulation::after: negative delay");
  const SimTime t = now_ + delay;
  if (partition_id_ >= 0) check_cross_partition(t);
  return queue_.push(t, std::move(fn));
}

void Simulation::check_cross_partition(SimTime t) const {
  // Same-partition scheduling (the executing partition talking to its own
  // calendar) is always safe; so is any schedule at/above the published
  // safe-window end, which is where the engine's mailbox merge lands
  // messages. Everything else is a cross-partition race: it could inject
  // an event into a window another worker is executing right now, or
  // below times that partition already simulated past.
  if (current_partition() == partition_id_) return;
  const SimTime horizon = safe_horizon_->load(std::memory_order_relaxed);
  ensure(t >= horizon,
         "Simulation::at: cross-partition schedule below the safe horizon "
         "-- route it through ParallelSimulation::post instead");
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  auto ev = queue_.pop();
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

void Simulation::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulation::run_until(SimTime deadline) {
  ensure(deadline >= now_, "Simulation::run_until: deadline in the past");
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  if (!stopped_) now_ = deadline;
}

void Simulation::run_for(Duration d) { run_until(now_ + d); }

void Simulation::run_window(SimTime end, bool inclusive) {
  ensure(end >= now_, "Simulation::run_window: window end in the past");
  while (!queue_.empty() &&
         (queue_.next_time() < end || (inclusive && queue_.next_time() == end))) {
    step();
  }
  now_ = end;
}

void Simulation::advance_to(SimTime t) {
  ensure(t >= now_, "Simulation::advance_to: target in the past");
  ensure(queue_.empty() || queue_.next_time() > t,
         "Simulation::advance_to: would skip over a pending event");
  now_ = t;
}

void Simulation::bind_partition(std::int32_t id,
                                const std::atomic<SimTime>* safe_horizon) {
  ensure(id >= 0, "Simulation::bind_partition: negative partition id");
  ensure(safe_horizon != nullptr,
         "Simulation::bind_partition: null safe horizon");
  ensure(partition_id_ < 0, "Simulation::bind_partition: already bound");
  partition_id_ = id;
  safe_horizon_ = safe_horizon;
}

}  // namespace rh::sim
