#include "simcore/parallel.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "exp/thread_pool.hpp"
#include "simcore/check.hpp"

namespace rh::sim {

void SpinBarrier::arrive_and_wait() {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    // Last arriver: reset the count for the next round, then release the
    // generation. The reset must happen before the generation store --
    // a spinner that observes the new generation may immediately re-enter
    // arrive_and_wait for the next barrier.
    arrived_.store(0, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mu_);
      generation_.store(gen + 1, std::memory_order_release);
    }
    cv_.notify_all();
    return;
  }
  // Short adaptive spin: windows are typically microseconds of work, so
  // the partners usually arrive within a few hundred checks. Yield early
  // and park quickly so a 1-core (or oversubscribed) box makes progress
  // instead of burning its timeslice.
  for (int spin = 0; spin < 256; ++spin) {
    if (generation_.load(std::memory_order_acquire) != gen) return;
  }
  for (int spin = 0; spin < 64; ++spin) {
    std::this_thread::yield();
    if (generation_.load(std::memory_order_acquire) != gen) return;
  }
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return generation_.load(std::memory_order_acquire) != gen; });
}

namespace {
std::size_t clamp_workers(std::size_t requested, std::int32_t partitions) {
  std::size_t w = requested == 0 ? exp::ThreadPool::default_thread_count() : requested;
  w = std::min(w, static_cast<std::size_t>(partitions));
  return std::max<std::size_t>(w, 1);
}
}  // namespace

ParallelSimulation::ParallelSimulation(Config config)
    : workers_(clamp_workers(config.workers, config.partitions)),
      barrier_(clamp_workers(config.workers, config.partitions)) {
  ensure(config.partitions >= 1, "ParallelSimulation: need >= 1 partition");
  if (config.lookahead != 0) {
    ensure(config.lookahead > 0,
           "ParallelSimulation: negative lookahead override");
    lookahead_ = config.lookahead;
    lookahead_fixed_ = true;
  }
  partitions_.reserve(static_cast<std::size_t>(config.partitions));
  for (std::int32_t p = 0; p < config.partitions; ++p) {
    partitions_.push_back(std::make_unique<Partition>());
    partitions_.back()->sim.bind_partition(p, &horizon_);
  }
}

ParallelSimulation::~ParallelSimulation() = default;

Simulation& ParallelSimulation::partition(std::int32_t p) {
  ensure(p >= 0 && p < partition_count(),
         "ParallelSimulation: partition index out of range");
  return partitions_[static_cast<std::size_t>(p)]->sim;
}

void ParallelSimulation::register_link(Duration one_way_latency) {
  ensure(one_way_latency > 0,
         "ParallelSimulation: zero-lookahead link -- conservative parallel "
         "execution needs every inter-partition link latency > 0");
  ensure(!running_, "ParallelSimulation: register_link while running");
  if (lookahead_fixed_) return;
  if (lookahead_ == 0 || one_way_latency < lookahead_) {
    lookahead_ = one_way_latency;
  }
}

void ParallelSimulation::post(std::int32_t dst, Duration delay, InlineCallback fn) {
  ensure(dst >= 0 && dst < partition_count(),
         "ParallelSimulation::post: destination out of range");
  const std::int32_t src = current_partition();
  ensure(src >= 0,
         "ParallelSimulation::post: must be called from inside partition "
         "execution (use run_on to seed control events)");
  Partition& from = *partitions_[static_cast<std::size_t>(src)];
  if (dst == src) {
    // Same-partition fast path: an ordinary local schedule, no mailbox.
    from.sim.after(delay, std::move(fn));
    return;
  }
  ensure(delay >= lookahead_,
         "ParallelSimulation::post: cross-partition delay below the "
         "lookahead would deliver inside the current safe window");
  from.outbox.push_back(Message{from.sim.now() + delay, dst, src,
                                from.next_seq++, std::move(fn)});
}

void ParallelSimulation::run_on(std::int32_t p, InlineCallback fn) {
  ensure(!running_, "ParallelSimulation::run_on: engine is running");
  Simulation& target = partition(p);
  target.at(target.now(), std::move(fn));
}

void ParallelSimulation::run_until(SimTime deadline) {
  run_loop(deadline, nullptr);
}

void ParallelSimulation::run_while(const std::function<bool()>& keep_going) {
  run_loop(kNoDeadline, &keep_going);
}

void ParallelSimulation::run_loop(SimTime deadline,
                                  const std::function<bool()>* keep_going) {
  ensure(!running_, "ParallelSimulation: run re-entered");
  ensure(lookahead_ > 0,
         "ParallelSimulation: no positive lookahead -- register at least "
         "one inter-partition link (or set Config::lookahead)");
  running_ = true;
  done_ = false;
  deadline_ = deadline;
  keep_going_ = keep_going;
  failure_ = nullptr;
  plan();  // opens the first window (or raises done_ immediately)
  if (workers_ > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<exp::ThreadPool>(workers_ - 1);
  }
  for (std::size_t w = 1; w < workers_; ++w) {
    pool_->submit([this, w] { participant_loop(w); });
  }
  participant_loop(0);
  if (pool_ != nullptr) pool_->wait_idle();
  running_ = false;
  keep_going_ = nullptr;
  horizon_.store(kNoHorizon, std::memory_order_relaxed);
  if (failure_ != nullptr) std::rethrow_exception(failure_);
}

void ParallelSimulation::participant_loop(std::size_t worker) {
  const auto nparts = static_cast<std::size_t>(partition_count());
  for (;;) {
    if (workers_ > 1) barrier_.arrive_and_wait();  // window plan published
    if (done_) return;
    const SimTime end = window_end_;
    const bool inclusive = window_inclusive_;
    // Static partition -> worker assignment: partition p always runs on
    // worker p % W, so each partition's event order is independent of
    // thread scheduling and the 1-vs-N digest contract holds trivially.
    try {
      for (std::size_t p = worker; p < nparts; p += workers_) {
        set_current_partition(static_cast<std::int32_t>(p));
        partitions_[p]->sim.run_window(end, inclusive);
      }
    } catch (...) {
      capture_failure();
    }
    set_current_partition(-1);
    if (workers_ > 1) barrier_.arrive_and_wait();  // window fully executed
    if (worker == 0) plan();
  }
}

void ParallelSimulation::plan() {
  try {
    // Drain every outbox in partition order, then stable-sort into the
    // global (time, dst, src, seq) order. Insertion order into each
    // destination calendar is exactly that order, and EventQueue breaks
    // same-time ties by insertion order, so same-time deliveries from
    // different sources fire in (src, seq) order on every run regardless
    // of worker count.
    for (auto& part : partitions_) {
      if (part->outbox.empty()) continue;
      merge_buf_.insert(merge_buf_.end(),
                        std::make_move_iterator(part->outbox.begin()),
                        std::make_move_iterator(part->outbox.end()));
      part->outbox.clear();
    }
    if (!merge_buf_.empty()) {
      std::stable_sort(merge_buf_.begin(), merge_buf_.end(),
                       [](const Message& a, const Message& b) {
                         if (a.time != b.time) return a.time < b.time;
                         if (a.dst != b.dst) return a.dst < b.dst;
                         if (a.src != b.src) return a.src < b.src;
                         return a.seq < b.seq;
                       });
      for (auto& m : merge_buf_) {
        // The schedule is legal by construction: delivery >= send + L >=
        // previous window end = the destination's current local now().
        partitions_[static_cast<std::size_t>(m.dst)]->sim.at(m.time,
                                                             std::move(m.fn));
      }
      messages_ += merge_buf_.size();
      merge_buf_.clear();
    }

    if (failure_ != nullptr) {
      done_ = true;
      return;
    }
    if (keep_going_ != nullptr && !(*keep_going_)()) {
      done_ = true;
      return;
    }

    SimTime next = kNoDeadline;
    for (auto& part : partitions_) {
      if (part->sim.pending_events() == 0) continue;
      next = std::min(next, part->sim.next_event_time());
    }
    if (next == kNoDeadline || next > deadline_) {
      // Event space exhausted (or drained past the deadline): mirror
      // Simulation::run_until by advancing every clock to the deadline.
      if (keep_going_ == nullptr) {
        for (auto& part : partitions_) part->sim.advance_to(deadline_);
      }
      done_ = true;
      return;
    }
    // Safe window [next, next + L): no message sent at s >= next can
    // arrive before next + L. When the deadline falls inside that span
    // the run's *final* window covers [next, deadline] inclusively --
    // still safe, because arrivals land at >= next + L > deadline -- so
    // clocks end exactly at the deadline as run_until promises.
    if (deadline_ != kNoDeadline && deadline_ - next < lookahead_) {
      window_end_ = deadline_;
      window_inclusive_ = true;
      horizon_.store(deadline_ + 1, std::memory_order_release);
    } else {
      window_end_ = next > kNoDeadline - lookahead_ ? kNoDeadline
                                                    : next + lookahead_;
      window_inclusive_ = false;
      horizon_.store(window_end_, std::memory_order_release);
    }
    ++windows_;
  } catch (...) {
    capture_failure();
    done_ = true;
  }
}

void ParallelSimulation::capture_failure() noexcept {
  std::lock_guard<std::mutex> lk(failure_mu_);
  if (failure_ == nullptr) failure_ = std::current_exception();
}

std::uint64_t ParallelSimulation::total_executed_events() const {
  std::uint64_t total = 0;
  for (const auto& part : partitions_) total += part->sim.executed_events();
  return total;
}

}  // namespace rh::sim
