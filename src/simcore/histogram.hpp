// Log-bucketed latency histogram.
//
// Client fleets record per-request latencies here; benches report
// percentiles (p50/p99) alongside throughput, which exposes effects mean
// throughput hides -- e.g. after a cold reboot every request pays a disk
// seek, which multiplies tail latency even once throughput looks healthy.
#pragma once

#include <array>
#include <cstdint>

#include "simcore/types.hpp"

namespace rh::sim {

/// Histogram over Durations with logarithmic buckets (2 buckets/octave,
/// from 1 µs up to ~1 hour). Memory-constant, O(1) insert, percentile
/// queries accurate to ~±35 % of the value (half an octave).
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void add(Duration latency);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] Duration min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] Duration max() const { return count_ == 0 ? 0 : max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Value at percentile p in [0, 100] (upper bound of the bucket holding
  /// the rank). 0 when empty.
  [[nodiscard]] Duration percentile(double p) const;

  /// Raw bucket access for renderers that need the full distribution
  /// (e.g. Prometheus `_bucket{le=...}` lines): per-bucket count, the
  /// bucket's inclusive upper bound, and the running sum of inserts.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t bucket) const {
    return buckets_[bucket];
  }
  [[nodiscard]] static Duration bucket_upper_bound(std::size_t bucket) {
    return bucket_upper(bucket);
  }
  [[nodiscard]] double sum() const { return sum_; }

  void clear();

  /// Merges another histogram into this one.
  void merge(const LatencyHistogram& other);

 private:
  static std::size_t bucket_of(Duration d);
  static Duration bucket_upper(std::size_t bucket);

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  Duration min_ = 0;
  Duration max_ = 0;
};

}  // namespace rh::sim
