// The original binary-heap event queue, preserved as a reference
// implementation.
//
// This is the seed EventQueue verbatim (std::function callbacks, one heap
// allocation per non-trivial event, std::priority_queue storage, lazy
// cancellation through an unordered_set of tombstones). It is kept for two
// purposes only:
//
//   1. the determinism regression test cross-checks that the calendar-queue
//      EventQueue fires events in exactly the order this queue does;
//   2. bench/sched_bench.cpp measures both queues side by side, so the
//      speedup recorded in BENCH_sched.json is reproducible on any machine
//      rather than a number frozen in a doc.
//
// Production code must use EventQueue (simcore/event_queue.hpp); nothing
// under src/ may depend on this header.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "simcore/types.hpp"

namespace rh::sim {

/// Min-heap of events keyed by (time, insertion sequence); the pre-calendar
/// scheduler. Two events scheduled for the same instant fire in the order
/// they were scheduled (FIFO). Cancellation is lazy: cancelled ids are
/// skipped at pop time.
class LegacyHeapQueue {
 public:
  using EventId = std::uint64_t;
  static constexpr EventId kInvalid = 0;

  EventId push(SimTime t, std::function<void()> fn);
  bool cancel(EventId id);
  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] SimTime next_time() const;

  struct Popped {
    SimTime time = 0;
    EventId id = kInvalid;
    std::function<void()> fn;
  };
  Popped pop();

  void clear();

 private:
  struct Entry {
    SimTime time = 0;
    std::uint64_t seq = 0;
    EventId id = kInvalid;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void skip_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
};

}  // namespace rh::sim
