// Deterministic, seedable random number generation (xoshiro256**).
//
// The standard library's distributions are not guaranteed to produce the
// same sequences across implementations, so we implement both the engine
// and the distributions ourselves: simulations must be reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "simcore/types.hpp"

namespace rh::sim {

/// xoshiro256** PRNG (Blackman & Vigna). Fast, high quality, 2^256 period.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Normally distributed value (Box-Muller).
  double normal(double mean, double stddev);

  /// Exponential Duration with the given mean, clamped to >= 0.
  Duration exponential_duration(Duration mean);

  /// Normal Duration clamped to >= min_value.
  Duration normal_duration(Duration mean, Duration stddev, Duration min_value = 0);

  /// True with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Uniformly picks an index in [0, size). Precondition: size > 0.
  std::size_t index(std::size_t size);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

  /// Splits off an independently-seeded child generator.
  ///
  /// Contract (relied on by the experiment runner in src/exp/, which
  /// derives one substream per (point, replication) task; tested in
  /// tests/test_random.cpp):
  ///  - Deterministic: under a fixed root seed, the k-th split() of a
  ///    generator always yields the same child stream, so a sequence of
  ///    splits taken in a fixed order is fully reproducible.
  ///  - Independent: sibling substreams (and parent vs child) show no
  ///    measurable correlation across at least their first 10k draws --
  ///    the child is re-seeded through splitmix64, which decorrelates the
  ///    xoshiro lanes rather than sharing a state trajectory.
  ///  - Splitting advances this generator's state by one draw (so later
  ///    splits yield different children).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
  // Cached second value from Box-Muller.
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace rh::sim
