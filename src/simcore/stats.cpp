#include "simcore/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "simcore/check.hpp"

namespace rh::sim {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  mean_ += delta * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::mean() const {
  ensure(n_ > 0, "Summary::mean: no samples");
  return mean_;
}

double Summary::variance() const {
  ensure(n_ > 1, "Summary::variance: need >= 2 samples");
  return m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const {
  ensure(n_ > 0, "Summary::min: no samples");
  return min_;
}

double Summary::max() const {
  ensure(n_ > 0, "Summary::max: no samples");
  return max_;
}

std::string LinearFit::to_string(const std::string& var) const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.2f%s %c %.2f", slope, var.c_str(),
                intercept < 0 ? '-' : '+', std::fabs(intercept));
  return buf;
}

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  ensure(x.size() == y.size(), "fit_linear: size mismatch");
  ensure(x.size() >= 2, "fit_linear: need >= 2 points");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  ensure(denom != 0.0, "fit_linear: degenerate x values");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot <= 0.0) {
    fit.r_squared = 1.0;  // all y identical: the fit is exact
  } else {
    double ss_res = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double e = y[i] - fit.at(x[i]);
      ss_res += e * e;
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

double t_critical_95(std::size_t dof) {
  // Two-sided 95 % (i.e. t_{.975}) critical values, dof 1..30.
  static constexpr double kTable[30] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  ensure(dof >= 1, "t_critical_95: need dof >= 1");
  if (dof <= 30) return kTable[dof - 1];
  if (dof <= 40) return 2.021;
  if (dof <= 60) return 2.000;
  if (dof <= 120) return 1.980;
  return 1.960;
}

double ci95_half_width(const Summary& s) {
  if (s.count() < 2) return 0.0;
  return t_critical_95(s.count() - 1) * s.stddev() /
         std::sqrt(static_cast<double>(s.count()));
}

double percentile(std::vector<double> values, double p) {
  ensure(!values.empty(), "percentile: no samples");
  ensure(p >= 0.0 && p <= 100.0, "percentile: p out of range");
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  return values[rank == 0 ? 0 : rank - 1];
}

}  // namespace rh::sim
