#include "simcore/random.hpp"

#include <cmath>
#include <numbers>

#include "simcore/check.hpp"

namespace rh::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  ensure(lo <= hi, "Rng::uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Debiased modulo (rejection sampling on the tail).
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span + 1) % span;
  std::uint64_t raw = next();
  while (raw > limit) raw = next();
  return lo + static_cast<std::int64_t>(raw % span);
}

double Rng::exponential(double mean) {
  ensure(mean > 0.0, "Rng::exponential: mean must be positive");
  double u = uniform01();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return mean + stddev * radius * std::cos(angle);
}

Duration Rng::exponential_duration(Duration mean) {
  if (mean <= 0) return 0;
  return static_cast<Duration>(exponential(static_cast<double>(mean)));
}

Duration Rng::normal_duration(Duration mean, Duration stddev, Duration min_value) {
  const auto v = static_cast<Duration>(
      normal(static_cast<double>(mean), static_cast<double>(stddev)));
  return v < min_value ? min_value : v;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Rng::index(std::size_t size) {
  ensure(size > 0, "Rng::index: empty range");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace rh::sim
