// Priority queue of timed events with stable FIFO ordering and cancellation.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "simcore/types.hpp"

namespace rh::sim {

/// Opaque handle identifying a scheduled event; used for cancellation.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

/// Min-heap of events keyed by (time, insertion sequence).
///
/// Two events scheduled for the same instant fire in the order they were
/// scheduled (FIFO), which keeps simulations deterministic. Cancellation is
/// lazy: cancelled ids are skipped at pop time.
class EventQueue {
 public:
  /// Schedules `fn` at absolute time `t`; returns a handle for cancel().
  EventId push(SimTime t, std::function<void()> fn);

  /// Cancels a pending event. Returns true if the event was still pending.
  bool cancel(EventId id);

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const;

  /// Number of live events.
  [[nodiscard]] std::size_t size() const;

  /// Time of the earliest live event. Precondition: !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest live event's callback and time.
  /// Precondition: !empty().
  struct Popped {
    SimTime time = 0;
    EventId id = kInvalidEventId;
    std::function<void()> fn;
  };
  Popped pop();

  /// Drops all pending events.
  void clear();

 private:
  struct Entry {
    SimTime time = 0;
    std::uint64_t seq = 0;
    EventId id = kInvalidEventId;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void skip_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
};

}  // namespace rh::sim
