// Calendar-queue event scheduler with slab-allocated nodes, O(1)
// cancellation, and stable same-time FIFO ordering.
//
// This is the hot core of the whole simulator: every modelled mechanism
// (suspend/resume, quick reload, TCP retransmission, page-cache aging,
// migration rounds) is an event pushed through here. The structure is a
// Brown-style calendar queue [R. Brown, CACM 1988], the design used by
// ns-2/ns-3-class DES engines:
//
//   - events live in slab-allocated nodes (one contiguous vector, free-list
//     recycling); a node embeds its callback as an InlineCallback, so the
//     common push/pop cycle performs ZERO heap allocations;
//   - nodes hang off an array of bucket lists ("days"), each covering a
//     power-of-two time width (bucketing is shift+mask, no division). Only
//     the leading "year" is bucketed: events beyond the horizon are parked
//     in the slab unbucketed at zero structural cost. Pop scans forward from
//     the current day reading only bucket metadata; when the bucketed year
//     is exhausted, the queue rebuilds itself around the survivors (far
//     events included), re-tuning the bucket width from time quantiles.
//     Insert/scan stress counters trigger the same rebuild if the width
//     ever drifts away from the live distribution, so mixed horizons
//     (microsecond TCP timers next to week-scale rejuvenation timers)
//     cannot degenerate the structure. Amortized O(1) push/pop under
//     stationary loads;
//   - an EventId encodes (slot index, generation); cancel() validates the
//     generation and unlinks the node from its doubly-linked bucket list in
//     O(1) -- no tombstone set, no scan at pop, and ids from fired or
//     cancelled events are recognised as stale (cancel returns false);
//   - determinism guarantee (unchanged from the original heap queue): two
//     events scheduled for the same instant fire in the order they were
//     scheduled. Bucket lists are in (time, seq) order whenever the pop
//     scan consults them (out-of-order arrivals are sorted lazily, once,
//     before the bucket is read); same-time events always hash to the same
//     bucket, so the global pop order is exactly ascending (time, seq)
//     regardless of rebuilds. A golden-order regression test pins this
//     (tests/test_event_queue.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "simcore/inline_callback.hpp"
#include "simcore/types.hpp"

namespace rh::sim {

/// Opaque handle identifying a scheduled event; used for cancellation.
/// Encodes (node slot << 32 | generation); stale handles are detected.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  EventQueue();

  /// Schedules `fn` at absolute time `t`; returns a handle for cancel().
  /// The callback must be non-empty. Never allocates when `fn` fits
  /// InlineCallback's inline buffer and the node slab has free capacity.
  EventId push(SimTime t, InlineCallback fn);

  /// Cancels a pending event in O(1). Returns true if the event was still
  /// pending; false for kInvalidEventId, already-fired, or already-cancelled
  /// handles (generation mismatch).
  bool cancel(EventId id);

  /// True if no live events remain. O(1).
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Number of live events. O(1) and exact.
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Time of the earliest live event. Precondition: !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest live event's callback and time.
  /// Precondition: !empty().
  struct Popped {
    SimTime time = 0;
    EventId id = kInvalidEventId;
    InlineCallback fn;
  };
  Popped pop();

  /// Drops all pending events. Outstanding EventIds become stale.
  void clear();

 private:
  static constexpr std::uint32_t kNil = 0xffffffffU;
  static constexpr std::size_t kMinBuckets = 8;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
  // Rebuilds target kLoadFactorInv buckets per live event; growth triggers
  // at load 1 and shrink at load 1/4 of the target, so the hysteresis band
  // spans 4x and push/pop alternation cannot thrash rebuilds.
  static constexpr std::size_t kLoadFactorInv = 1;
  static constexpr int kMaxWidthShift = 40;  // widest day ~= 12.7 simulated days

  // Control data only -- exactly half a cache line, so bucket-list walks
  // (insert scans, unlink, min search) touch twice as many nodes per line.
  // The callbacks live in the parallel fns_ slab, written once at push and
  // read once at pop.
  struct Node {
    SimTime time = 0;
    std::uint64_t seq = 0;
    std::uint32_t gen = 1;
    std::uint32_t next = kNil;
    std::uint32_t prev = kNil;
    std::uint32_t live = 0;  // 0 = free, 1 = in a bucket list, 2 = far-parked
  };
  static_assert(sizeof(Node) == 32);
  // Buckets are append-only at push (O(1), no list walk) and lazily sorted:
  // `sorted` records whether the list is in (time, seq) order, and the pop
  // scan sorts a bucket once when it first qualifies -- k log k per bucket
  // per year instead of k^2 insertion-walk steps at push. min_time is a
  // lower bound on the times in the list, exact while sorted (it then
  // mirrors the head) and stale-low after out-of-order appends or removals
  // from an unsorted list; the scan re-checks after sorting, so stale-low
  // only costs a wasted sort, never a wrong pop. max_time is an upper bound
  // (stale-high is fine) that detects in-order appends without reading the
  // tail node. All four fields live in the bucket itself, so qualification
  // during the scan is a pure sequential pass touching no nodes.
  struct Bucket {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
    SimTime min_time = 0;
    SimTime max_time = 0;
    std::uint32_t sorted = 1;
  };

  static constexpr EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(slot) << 32) | gen;
  }

  [[nodiscard]] std::size_t bucket_index(SimTime t) const {
    return static_cast<std::size_t>(t >> width_shift_) & (buckets_.size() - 1);
  }
  [[nodiscard]] SimTime slot_start(SimTime t) const {
    return (t >> width_shift_) << width_shift_;
  }
  [[nodiscard]] Duration width() const { return Duration{1} << width_shift_; }
  /// One full calendar year: bucket count times bucket width.
  [[nodiscard]] SimTime span() const {
    return static_cast<SimTime>(buckets_.size()) << width_shift_;
  }

  std::uint32_t alloc_node();
  void free_node(std::uint32_t slot);
  void insert_into_bucket(std::uint32_t slot);
  void sort_bucket(Bucket& b);
  void unlink(std::uint32_t slot);
  void reset_scan(SimTime t);
  void find_min();
  enum class Retune { kReuseEstimate, kResample };
  void rebuild(std::size_t new_count, Retune retune);
  int tune_width_shift(std::size_t new_count, Retune retune);

  std::vector<Node> nodes_;        // slab; indices are stable across rebuilds
  std::vector<InlineCallback> fns_;  // parallel to nodes_
  // Free slots as an index stack rather than a list threaded through the
  // nodes: popping the stack is a contiguous access, where chasing next
  // pointers through the slab was a serialized cache miss per allocation.
  std::vector<std::uint32_t> free_;
  std::vector<std::uint32_t> scratch_;  // sort_bucket workspace (reused)
  std::vector<Bucket> buckets_;  // power-of-two count
  int width_shift_ = 0;          // one bucket covers 1 << width_shift_ us
  SimTime last_est_ = 0;         // last sampled span estimate (0 = none yet)
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 1;

  // Pop-scan state: no live event has time < cur_slot_start_, and
  // cur_bucket_ is the bucket whose current-year slot starts there.
  // cached_min_ is the slot of the known global minimum (kNil = unknown).
  std::size_t cur_bucket_ = 0;
  SimTime cur_slot_start_ = 0;
  std::uint32_t cached_min_ = kNil;

  // End of the bucketed year. Every bucketed event has time < horizon_;
  // events pushed at or beyond it are "far-parked" in the slab (live == 2,
  // member of no bucket list) at zero structural cost, and re-examined when
  // a rebuild re-draws the horizon. This keeps far-future timers from
  // polluting a calendar whose width is tuned for the busy near cluster.
  SimTime horizon_ = 0;

  // Wasted-work counters since the last rebuild: list steps walked by
  // out-of-order inserts (width too coarse) and empty buckets waded through
  // by the pop scan (width too fine). Crossing the threshold triggers a
  // re-tuning rebuild, keeping the overhead proportional to the work it
  // recovers.
  std::size_t insert_stress_ = 0;
  std::size_t scan_stress_ = 0;
};

}  // namespace rh::sim
