// Software aging of the VMM (Section 2 of the paper), made visible.
//
// The hypervisor heap is only 16 MiB. We inject the historical Xen bug
// class where every domain destroy leaks heap memory. A consolidation
// workload that reboots guest OSes on a weekly schedule then slowly kills
// the VMM -- unless a rejuvenation policy watches heap pressure and
// performs a warm-VM reboot in time.
#include <cstdio>
#include <memory>
#include <vector>

#include "guest/guest_os.hpp"
#include "guest/sshd.hpp"
#include "rejuv/policy.hpp"
#include "vmm/host.hpp"

namespace {

using namespace rh;

struct AgingBox {
  sim::Simulation sim;
  std::unique_ptr<vmm::Host> host;
  std::vector<std::unique_ptr<guest::GuestOs>> vms;

  AgingBox() {
    Calibration calib;
    // Each domain create/destroy cycle leaks 192 KiB of hypervisor heap
    // (the changeset-9392 bug class).
    calib.heap_leak_per_domain_cycle = 192 * sim::kKiB;
    host = std::make_unique<vmm::Host>(sim, calib);
    host->instant_start();
    int booted = 0;
    for (int i = 0; i < 4; ++i) {
      auto vm = std::make_unique<guest::GuestOs>(*host, "vm" + std::to_string(i),
                                                 sim::kGiB);
      vm->add_service(std::make_unique<guest::SshService>());
      vm->create_and_boot([&booted] { ++booted; });
      vms.push_back(std::move(vm));
    }
    while (booted < 4) sim.step();
  }

  std::vector<guest::GuestOs*> vm_ptrs() {
    std::vector<guest::GuestOs*> out;
    for (auto& v : vms) out.push_back(v.get());
    return out;
  }
};

void run(bool with_heap_watchdog) {
  AgingBox box;
  rejuv::RejuvenationPolicy::Config cfg;
  cfg.os_interval = 12 * sim::kHour;  // aggressive OS rejuvenation schedule
  cfg.vmm_interval = 365 * sim::kDay; // timer alone would never save us
  cfg.vmm_reboot_kind = rejuv::RebootKind::kWarm;
  if (with_heap_watchdog) {
    cfg.heap_pressure_threshold = 0.75;
  }
  rejuv::RejuvenationPolicy policy(*box.host, box.vm_ptrs(), cfg);
  policy.start();

  std::printf("\n=== heap watchdog %s ===\n", with_heap_watchdog ? "ON" : "OFF");
  bool crashed = false;
  std::string crash_reason;
  const sim::SimTime horizon = 45 * sim::kDay;
  try {
    while (box.sim.now() < horizon && box.sim.pending_events() > 0) {
      box.sim.step();
    }
  } catch (const vmm::VmmHeapExhausted& e) {
    crashed = true;
    crash_reason = e.what();
  }
  std::printf("  simulated %.1f days, %llu OS rejuvenations\n",
              sim::to_seconds(box.sim.now()) / 86400.0,
              static_cast<unsigned long long>(policy.os_rejuvenations()));
  if (crashed) {
    std::printf("  VMM CRASHED after %.1f days: %s\n",
                sim::to_seconds(box.sim.now()) / 86400.0, crash_reason.c_str());
    std::printf("  every VM on the host went down with it.\n");
  } else {
    std::printf("  VMM healthy; heap pressure now %.0f %%\n",
                box.host->vmm().heap().pressure() * 100.0);
    std::printf("  warm-VM rejuvenations performed: %llu "
                "(each ~40 s of downtime, guests never rebooted)\n",
                static_cast<unsigned long long>(policy.vmm_rejuvenations()));
  }
}

}  // namespace

int main() {
  std::printf("Aging injection: 192 KiB of hypervisor heap leak per domain\n"
              "lifecycle, 4 VMs rebooting their OSes every 12 h.\n");
  run(/*with_heap_watchdog=*/false);
  run(/*with_heap_watchdog=*/true);
  return 0;
}
