// Section 6's cluster scenario, simulated end to end: three hosts behind a
// load balancer, each running four web VMs. The whole cluster's VMMs are
// rejuvenated one host at a time with the warm-VM reboot; the client fleet
// never sees the service go away, only a throughput dip.
#include <cstdio>

#include "cluster/cluster.hpp"
#include "cluster/throughput_model.hpp"

int main() {
  using namespace rh;

  sim::Simulation sim;
  cluster::Cluster::Config cfg;
  cfg.hosts = 3;
  cfg.vms_per_host = 4;
  cluster::Cluster cl(sim, cfg);

  std::printf("starting %d hosts x %d web VMs...\n", cfg.hosts, cfg.vms_per_host);
  bool ready = false;
  cl.start([&ready] { ready = true; });
  while (!ready) sim.step();
  std::printf("cluster up at t=%.1f s; %zu backends registered\n",
              sim::to_seconds(sim.now()), cl.balancer().backend_count());

  cluster::ClusterClientFleet fleet(sim, cl.balancer(), {});
  fleet.start();
  sim.run_for(30 * sim::kSecond);
  const sim::SimTime t0 = sim.now();

  std::printf("\nrolling warm-VM rejuvenation across all hosts...\n");
  bool done = false;
  cl.rolling_rejuvenation(rejuv::RebootKind::kWarm, [&done] { done = true; });
  while (!done) sim.step();
  const sim::SimTime t1 = sim.now();
  sim.run_for(60 * sim::kSecond);
  fleet.stop();

  std::printf("per-host rejuvenation durations:");
  for (const auto d : cl.rejuvenation_durations()) {
    std::printf(" %.1f s", sim::to_seconds(d));
  }
  std::printf("\n\ncluster throughput timeline (10 s bins):\n");
  for (const auto& s : fleet.completions().rate_series(
           t0 - 30 * sim::kSecond, t1 + 50 * sim::kSecond, 10 * sim::kSecond)) {
    std::printf("  t=%5.0f s  %6.0f req/s  %s\n", sim::to_seconds(s.time - t0),
                s.value, s.time < t0 || s.time >= t1 ? "" : "<- rejuvenating");
  }
  std::printf("\nrequests rejected by the balancer during the whole run: %llu "
              "(zero = no service downtime)\n",
              static_cast<unsigned long long>(cl.balancer().rejected()));

  // Compare with the paper's analytic Fig. 9 expectation.
  cluster::ClusterThroughputParams p;
  p.hosts = cfg.hosts;
  cluster::ClusterThroughputModel model(p);
  std::printf("analytic expectation while one host is down: %.2f of full "
              "throughput\n",
              model.throughput_at(cluster::ClusterStrategy::kWarm, 10.0) /
                  model.throughput_at(cluster::ClusterStrategy::kWarm, 1e6));
  return 0;
}
