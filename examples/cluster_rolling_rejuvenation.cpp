// Section 6's cluster scenario, simulated end to end: three hosts behind a
// load balancer, each running four web VMs. The whole cluster's VMMs are
// rejuvenated one host at a time with the warm-VM reboot; the client fleet
// never sees the service go away, only a throughput dip.
//
// Part two repeats the scenario under 8 independent seeds through the
// replication runner (exp::run_grid) and reports mean ± 95 % CI instead
// of a single draw.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "cluster/cluster.hpp"
#include "cluster/throughput_model.hpp"
#include "exp/runner.hpp"
#include "obs/export.hpp"

namespace {

using namespace rh;

/// One full rolling-rejuvenation run under `seed`; returns
/// {during-throughput req/s, longest per-host rejuvenation s, deferred}.
exp::ReplicationResult replicated_run(const exp::ReplicationContext& ctx) {
  sim::Simulation sim;
  cluster::Cluster::Config cfg;
  cfg.hosts = 3;
  cfg.vms_per_host = 4;
  cfg.seed = ctx.seed;
  cfg.calib.timing_jitter = 0.02;  // run-to-run timing variation
  cluster::Cluster cl(sim, cfg);
  bool ready = false;
  cl.start([&ready] { ready = true; });
  while (!ready) sim.step();
  cluster::ClusterClientFleet fleet(sim, cl.balancer(), {});
  fleet.start();
  sim.run_for(30 * sim::kSecond);
  const sim::SimTime t0 = sim.now();
  bool done = false;
  cl.rolling_rejuvenation(rejuv::RebootKind::kWarm, [&done] { done = true; });
  while (!done) sim.step();
  const sim::SimTime t1 = sim.now();
  fleet.stop();

  double longest = 0;
  for (const auto d : cl.rejuvenation_durations()) {
    longest = std::max(longest, sim::to_seconds(d));
  }
  exp::ReplicationResult out;
  out.values = {fleet.completions().rate_between(t0, t1), longest,
                static_cast<double>(cl.balancer().rejected())};
  return out;
}

/// One *supervised* rolling pass with every host's observer on and a 5 %
/// uniform fault rate (armed after provisioning, so only the pass itself
/// is attacked), exported as a Chrome trace: one Perfetto process per
/// host, pass/rung/phase spans nested, recovery actions as instants.
/// This is the EXPERIMENTS.md "open it in Perfetto" recipe.
void write_supervised_trace(const char* path) {
  sim::Simulation sim;
  cluster::Cluster::Config cfg;
  cfg.hosts = 3;
  cfg.vms_per_host = 4;
  cfg.observe = true;
  cluster::Cluster cl(sim, cfg);
  bool ready = false;
  cl.start([&ready] { ready = true; });
  while (!ready) sim.step();
  for (int h = 0; h < cfg.hosts; ++h) {
    cl.host(h).configure_faults(fault::FaultConfig::uniform(0.05));
  }
  sim.run_for(5 * sim::kSecond);
  bool done = false;
  cl.rolling_rejuvenation_supervised(
      {}, [&done](const cluster::Cluster::RollingReport&) { done = true; });
  while (!done) sim.step();
  std::ofstream os(path);
  obs::ChromeTraceWriter writer(os);
  for (int h = 0; h < cfg.hosts; ++h) {
    writer.add_process(h, "host" + std::to_string(h), cl.host(h).obs());
  }
  std::printf("\nwrote Chrome trace of one supervised rolling pass to %s\n",
              path);
}

}  // namespace

int main(int argc, char** argv) {
  sim::Simulation sim;
  cluster::Cluster::Config cfg;
  cfg.hosts = 3;
  cfg.vms_per_host = 4;
  cluster::Cluster cl(sim, cfg);

  std::printf("starting %d hosts x %d web VMs...\n", cfg.hosts, cfg.vms_per_host);
  bool ready = false;
  cl.start([&ready] { ready = true; });
  while (!ready) sim.step();
  std::printf("cluster up at t=%.1f s; %zu backends registered\n",
              sim::to_seconds(sim.now()), cl.balancer().backend_count());

  cluster::ClusterClientFleet fleet(sim, cl.balancer(), {});
  fleet.start();
  sim.run_for(30 * sim::kSecond);
  const sim::SimTime t0 = sim.now();

  std::printf("\nrolling warm-VM rejuvenation across all hosts...\n");
  bool done = false;
  cl.rolling_rejuvenation(rejuv::RebootKind::kWarm, [&done] { done = true; });
  while (!done) sim.step();
  const sim::SimTime t1 = sim.now();
  sim.run_for(60 * sim::kSecond);
  fleet.stop();

  std::printf("per-host rejuvenation durations:");
  for (const auto d : cl.rejuvenation_durations()) {
    std::printf(" %.1f s", sim::to_seconds(d));
  }
  std::printf("\n\ncluster throughput timeline (10 s bins):\n");
  for (const auto& s : fleet.completions().rate_series(
           t0 - 30 * sim::kSecond, t1 + 50 * sim::kSecond, 10 * sim::kSecond)) {
    std::printf("  t=%5.0f s  %6.0f req/s  %s\n", sim::to_seconds(s.time - t0),
                s.value, s.time < t0 || s.time >= t1 ? "" : "<- rejuvenating");
  }
  std::printf("\nrequests rejected by the balancer during the whole run: %llu "
              "(zero = no service downtime)\n",
              static_cast<unsigned long long>(cl.balancer().rejected()));

  // Compare with the paper's analytic Fig. 9 expectation.
  cluster::ClusterThroughputParams p;
  p.hosts = cfg.hosts;
  cluster::ClusterThroughputModel model(p);
  std::printf("analytic expectation while one host is down: %.2f of full "
              "throughput\n",
              model.throughput_at(cluster::ClusterStrategy::kWarm, 10.0) /
                  model.throughput_at(cluster::ClusterStrategy::kWarm, 1e6));

  // Part two: the same scenario replicated under 8 independent seeds (2 %
  // timing jitter), reduced to mean ± 95 % CI by the replication runner.
  enum { kDuring, kLongest, kDeferred };
  exp::GridSpec spec;
  spec.points = 1;
  spec.replications = 8;
  spec.root_seed = 1000;
  const auto grid = exp::run_grid(spec, replicated_run);
  const auto& red = grid.point(0);
  std::printf("\nreplicated x%zu (seeds from root %llu, %zu threads, "
              "%.2f s wall):\n",
              red.replications(), static_cast<unsigned long long>(spec.root_seed),
              grid.threads_used, grid.wall_seconds);
  std::printf("  throughput during rolling rejuvenation: %.0f ± %.1f req/s "
              "(95 %% CI)\n",
              red.mean(kDuring), red.ci95(kDuring));
  std::printf("  longest per-host rejuvenation:          %.1f ± %.1f s\n",
              red.mean(kLongest), red.ci95(kLongest));
  std::printf("  requests deferred and retried:          %.0f ± %.0f "
              "(permanently failed: always 0)\n",
              red.mean(kDeferred), red.ci95(kDeferred));

  // Optional: a Chrome/Perfetto trace of a supervised pass under faults.
  if (argc > 1) write_supervised_trace(argv[1]);
  return 0;
}
