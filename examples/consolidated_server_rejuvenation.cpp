// The paper's motivating scenario: one machine consolidating many servers.
//
// Eleven 1-GiB VMs run a mix of services (ssh everywhere, JBoss on some,
// Apache on one). The example rejuvenates the VMM three times -- once per
// strategy -- and reports, for each: per-VM downtime, whether live ssh
// sessions survived, and whether the web server's cache was preserved.
#include <cstdio>
#include <memory>
#include <vector>

#include "guest/apache.hpp"
#include "guest/guest_os.hpp"
#include "guest/jboss.hpp"
#include "guest/sshd.hpp"
#include "net/tcp.hpp"
#include "rejuv/reboot_driver.hpp"
#include "vmm/host.hpp"
#include "workload/prober.hpp"

namespace {

using namespace rh;

struct Consolidated {
  sim::Simulation sim;
  std::unique_ptr<vmm::Host> host;
  std::vector<std::unique_ptr<guest::GuestOs>> vms;

  Consolidated() {
    host = std::make_unique<vmm::Host>(sim, Calibration::paper_testbed());
    host->instant_start();
    int booted = 0;
    for (int i = 0; i < 11; ++i) {
      auto vm = std::make_unique<guest::GuestOs>(*host, "srv" + std::to_string(i),
                                                 sim::kGiB);
      vm->add_service(std::make_unique<guest::SshService>());
      if (i < 4) vm->add_service(std::make_unique<guest::JbossService>());
      if (i == 10) vm->add_service(std::make_unique<guest::ApacheService>());
      vm->create_and_boot([&booted] { ++booted; });
      vms.push_back(std::move(vm));
    }
    while (booted < 11) sim.step();
  }

  std::vector<guest::GuestOs*> vm_ptrs() {
    std::vector<guest::GuestOs*> out;
    for (auto& v : vms) out.push_back(v.get());
    return out;
  }
};

void run_strategy(rejuv::RebootKind kind) {
  Consolidated box;
  auto& web = *box.vms[10];
  // Warm the web server's cache.
  const auto file = web.vfs().create_file("catalog", 64 * sim::kMiB);
  bool warmed = false;
  web.vfs().read(file, [&](const guest::Vfs::ReadResult&) { warmed = true; });
  while (!warmed) box.sim.step();

  // A live ssh session into srv0, and probers on every VM.
  auto* ssh0 = static_cast<guest::SshService*>(box.vms[0]->find_service("sshd"));
  const auto session_gen = ssh0->generation();
  net::TcpConnection session(box.sim, {}, [&] {
    return ssh0->segment_outcome(*box.vms[0], session_gen);
  });
  session.open();

  std::vector<std::unique_ptr<workload::Prober>> probers;
  for (auto& vm : box.vms) {
    auto* svc = vm->find_service("sshd");
    probers.push_back(std::make_unique<workload::Prober>(
        box.sim, workload::Prober::Config{},
        [vm = vm.get(), svc] { return vm->service_reachable(*svc); }));
    probers.back()->start();
  }
  box.sim.run_for(2 * sim::kSecond);
  const sim::SimTime start = box.sim.now();

  auto driver = rejuv::make_reboot_driver(kind, *box.host, box.vm_ptrs());
  bool done = false;
  driver->run([&done] { done = true; });
  while (!done) box.sim.step();
  box.sim.run_for(10 * sim::kSecond);

  double worst = 0, total = 0;
  for (auto& p : probers) {
    p->stop();
    const double d = sim::to_seconds(p->outage_after(start).value_or(0));
    worst = std::max(worst, d);
    total += d;
  }
  bool read_ok = false;
  guest::Vfs::ReadResult reread;
  web.vfs().read(file, [&](const guest::Vfs::ReadResult& r) {
    reread = r;
    read_ok = true;
  });
  while (!read_ok) box.sim.step();

  std::printf("\n=== %s ===\n", rejuv::to_string(kind));
  std::printf("  total procedure: %.1f s\n",
              sim::to_seconds(driver->total_duration()));
  std::printf("  ssh downtime: mean %.1f s, worst %.1f s\n", total / 11.0, worst);
  std::printf("  live ssh session: %s\n",
              session.alive() ? "SURVIVED (TCP retransmission)" : "lost");
  std::printf("  web cache after reboot: %lld hits / %lld misses (%s)\n",
              static_cast<long long>(reread.hit_blocks),
              static_cast<long long>(reread.miss_blocks),
              reread.fully_cached() ? "fully preserved" : "cold");
  std::printf("  JBoss restarted: %s\n",
              box.vms[0]->find_service("jboss") != nullptr &&
                      box.vms[0]->find_service("jboss")->generation() > 1
                  ? "yes (service state lost)"
                  : "no (kept running through the reboot)");
}

}  // namespace

int main() {
  std::printf("Consolidated server: 11 VMs (ssh everywhere, JBoss on 4, "
              "Apache on 1), one VMM rejuvenation per strategy.\n");
  run_strategy(rejuv::RebootKind::kWarm);
  run_strategy(rejuv::RebootKind::kSaved);
  run_strategy(rejuv::RebootKind::kCold);
  return 0;
}
