// Quickstart: bring up a consolidated server, rejuvenate its VMM with the
// warm-VM reboot, and watch the services survive.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <iostream>
#include <memory>

#include "guest/guest_os.hpp"
#include "guest/sshd.hpp"
#include "rejuv/reboot_driver.hpp"
#include "vmm/host.hpp"
#include "workload/prober.hpp"

int main() {
  using namespace rh;

  // 1. One physical host (the paper's testbed: 12 GiB RAM, 4 cores).
  sim::Simulation sim;
  vmm::Host host(sim, Calibration::paper_testbed());
  host.tracer().stream_to(&std::cout);  // narrate the run
  host.instant_start();

  // 2. Three 1-GiB VMs, each running an ssh server.
  std::vector<std::unique_ptr<guest::GuestOs>> vms;
  int booted = 0;
  for (int i = 0; i < 3; ++i) {
    vms.push_back(std::make_unique<guest::GuestOs>(
        host, "vm" + std::to_string(i), sim::kGiB));
    vms.back()->add_service(std::make_unique<guest::SshService>());
    vms.back()->create_and_boot([&booted] { ++booted; });
  }
  while (booted < 3) sim.step();
  std::printf("\n--- all VMs up at t=%.1f s ---\n\n", sim::to_seconds(sim.now()));

  // 3. Watch vm0's ssh service from a client.
  auto* ssh = vms[0]->find_service("sshd");
  workload::Prober prober(sim, {}, [&] { return vms[0]->service_reachable(*ssh); });
  prober.start();

  // 4. Rejuvenate the VMM with the warm-VM reboot.
  const sim::SimTime reboot_start = sim.now();
  std::vector<guest::GuestOs*> guest_ptrs;
  for (auto& v : vms) guest_ptrs.push_back(v.get());
  rejuv::WarmVmReboot reboot(host, guest_ptrs);
  bool done = false;
  reboot.run([&done] { done = true; });
  while (!done) sim.step();
  sim.run_for(5 * sim::kSecond);

  // 5. Report.
  std::printf("\n--- warm-VM reboot completed in %.1f s ---\n",
              sim::to_seconds(reboot.total_duration()));
  std::printf("operation breakdown:\n");
  for (const auto& step : reboot.breakdown()) {
    std::printf("  %-32s %7.2f s\n", step.label.c_str(),
                sim::to_seconds(step.duration()));
  }
  if (const auto outage = prober.outage_after(reboot_start)) {
    std::printf("observed ssh downtime: %.1f s\n", sim::to_seconds(*outage));
  }
  std::printf("vm0 integrity: %s, services never restarted (generation %llu)\n",
              vms[0]->integrity_ok() ? "OK" : "CORRUPTED",
              static_cast<unsigned long long>(ssh->generation()));
  return 0;
}
