#include <gtest/gtest.h>

#include <unordered_map>

#include "guest/page_cache.hpp"
#include "simcore/check.hpp"

namespace rh::test {
namespace {

/// In-memory backing that can be wiped to model a hardware reset.
class FakeBacking final : public guest::GuestMemoryBacking {
 public:
  void mem_write(mm::Pfn pfn, hw::ContentToken token) override {
    store_[pfn] = token;
  }
  [[nodiscard]] hw::ContentToken mem_read(mm::Pfn pfn) const override {
    const auto it = store_.find(pfn);
    return it == store_.end() ? hw::kScrubbed : it->second;
  }
  void wipe() { store_.clear(); }

 private:
  std::unordered_map<mm::Pfn, hw::ContentToken> store_;
};

TEST(PageCache, MissThenHit) {
  FakeBacking mem;
  guest::PageCache cache(mem, 0, 8, 16);
  EXPECT_FALSE(cache.lookup({1, 0}));
  cache.insert({1, 0});
  EXPECT_TRUE(cache.lookup({1, 0}));
  EXPECT_EQ(cache.hits(), std::uint64_t{1});
  EXPECT_EQ(cache.misses(), std::uint64_t{1});
  EXPECT_EQ(cache.cached_blocks(), 1);
}

TEST(PageCache, LruEvictionOrder) {
  FakeBacking mem;
  guest::PageCache cache(mem, 0, 3, 16);
  cache.insert({1, 0});
  cache.insert({1, 1});
  cache.insert({1, 2});
  // Touch block 0 so block 1 becomes LRU.
  EXPECT_TRUE(cache.lookup({1, 0}));
  cache.insert({1, 3});  // evicts {1,1}
  EXPECT_TRUE(cache.lookup({1, 0}));
  EXPECT_FALSE(cache.lookup({1, 1}));
  EXPECT_TRUE(cache.lookup({1, 2}));
  EXPECT_TRUE(cache.lookup({1, 3}));
  EXPECT_EQ(cache.cached_blocks(), 3);
}

TEST(PageCache, WipedBackingTurnsHitsIntoStaleMisses) {
  FakeBacking mem;
  guest::PageCache cache(mem, 0, 8, 16);
  cache.insert({1, 0});
  cache.insert({1, 1});
  mem.wipe();  // the "hardware reset"
  EXPECT_FALSE(cache.lookup({1, 0}));
  EXPECT_FALSE(cache.lookup({1, 1}));
  EXPECT_EQ(cache.stale_hits(), std::uint64_t{2});
  EXPECT_EQ(cache.cached_blocks(), 0);
  // Reinsertion works and hits again.
  cache.insert({1, 0});
  EXPECT_TRUE(cache.lookup({1, 0}));
}

TEST(PageCache, IntactBackingKeepsHitsAfterNothingHappened) {
  FakeBacking mem;
  guest::PageCache cache(mem, 0, 64, 16);
  for (std::int64_t b = 0; b < 64; ++b) cache.insert({1, b});
  for (std::int64_t b = 0; b < 64; ++b) EXPECT_TRUE(cache.lookup({1, b}));
  EXPECT_EQ(cache.stale_hits(), std::uint64_t{0});
}

TEST(PageCache, SlotsPlacedInDistinctRegions) {
  FakeBacking mem;
  guest::PageCache cache(mem, 100, 4, 16);
  cache.insert({1, 0});
  cache.insert({2, 0});
  // Two distinct slots got two distinct tokens at distinct PFNs >= 100.
  int populated = 0;
  for (mm::Pfn p = 100; p < 100 + 4 * 16; p += 16) {
    populated += mem.mem_read(p) != hw::kScrubbed ? 1 : 0;
  }
  EXPECT_EQ(populated, 2);
}

TEST(PageCache, ClearFreesAllSlots) {
  FakeBacking mem;
  guest::PageCache cache(mem, 0, 4, 16);
  for (std::int64_t b = 0; b < 4; ++b) cache.insert({1, b});
  cache.clear();
  EXPECT_EQ(cache.cached_blocks(), 0);
  // All four slots are reusable again.
  for (std::int64_t b = 10; b < 14; ++b) cache.insert({1, b});
  EXPECT_EQ(cache.cached_blocks(), 4);
}

TEST(PageCache, DuplicateInsertIsIdempotent) {
  FakeBacking mem;
  guest::PageCache cache(mem, 0, 4, 16);
  cache.insert({1, 0});
  cache.insert({1, 0});
  EXPECT_EQ(cache.cached_blocks(), 1);
}

TEST(PageCache, RejectsBadGeometry) {
  FakeBacking mem;
  EXPECT_THROW(guest::PageCache(mem, 0, 0, 16), InvariantViolation);
  EXPECT_THROW(guest::PageCache(mem, 0, 4, 0), InvariantViolation);
}

}  // namespace
}  // namespace rh::test
