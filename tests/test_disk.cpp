#include <gtest/gtest.h>

#include "hw/disk.hpp"
#include "simcore/simulation.hpp"

namespace rh::test {
namespace {

hw::DiskModel test_model() {
  // 100 MB/s read, 50 MB/s write, 10 ms access: round numbers for math.
  return {100.0e6, 50.0e6, 10 * sim::kMillisecond};
}

TEST(Disk, SequentialReadTiming) {
  sim::Simulation s;
  hw::Disk d(s, test_model());
  sim::SimTime done_at = 0;
  d.read(100'000'000, hw::Disk::Access::kSequential, [&] { done_at = s.now(); });
  s.run();
  EXPECT_EQ(done_at, sim::kSecond);  // 100 MB at 100 MB/s
}

TEST(Disk, RandomAccessAddsLatency) {
  sim::Simulation s;
  hw::Disk d(s, test_model());
  sim::SimTime done_at = 0;
  d.read(100'000'000, hw::Disk::Access::kRandom, [&] { done_at = s.now(); });
  s.run();
  EXPECT_EQ(done_at, sim::kSecond + 10 * sim::kMillisecond);
}

TEST(Disk, WritesUseWriteThroughput) {
  sim::Simulation s;
  hw::Disk d(s, test_model());
  sim::SimTime done_at = 0;
  d.write(100'000'000, hw::Disk::Access::kSequential, [&] { done_at = s.now(); });
  s.run();
  EXPECT_EQ(done_at, 2 * sim::kSecond);  // 50 MB/s
}

TEST(Disk, RequestsServeFifo) {
  sim::Simulation s;
  hw::Disk d(s, test_model());
  std::vector<int> order;
  sim::SimTime t1 = 0, t2 = 0;
  d.read(100'000'000, hw::Disk::Access::kSequential, [&] {
    order.push_back(1);
    t1 = s.now();
  });
  d.read(100'000'000, hw::Disk::Access::kSequential, [&] {
    order.push_back(2);
    t2 = s.now();
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(t1, sim::kSecond);
  EXPECT_EQ(t2, 2 * sim::kSecond);  // serialised, not parallel
}

TEST(Disk, QueueDrainsThenIdles) {
  sim::Simulation s;
  hw::Disk d(s, test_model());
  d.read(50'000'000, hw::Disk::Access::kSequential, [] {});
  EXPECT_FALSE(d.idle());
  s.run();
  EXPECT_TRUE(d.idle());
  // A new request after idle starts from now, not from busy_until.
  sim::SimTime done_at = 0;
  s.after(sim::kSecond, [&] {
    d.read(50'000'000, hw::Disk::Access::kSequential, [&] { done_at = s.now(); });
  });
  s.run();
  EXPECT_EQ(done_at, sim::kSecond + 500 * sim::kMillisecond + 500 * sim::kMillisecond);
}

TEST(Disk, OccupyBlocksQueue) {
  sim::Simulation s;
  hw::Disk d(s, test_model());
  sim::SimTime occupy_done = 0, read_done = 0;
  d.occupy(3 * sim::kSecond, [&] { occupy_done = s.now(); });
  d.read(100'000'000, hw::Disk::Access::kSequential, [&] { read_done = s.now(); });
  s.run();
  EXPECT_EQ(occupy_done, 3 * sim::kSecond);
  EXPECT_EQ(read_done, 4 * sim::kSecond);
}

TEST(Disk, StatisticsAccumulate) {
  sim::Simulation s;
  hw::Disk d(s, test_model());
  d.read(1000, hw::Disk::Access::kSequential, [] {});
  d.write(2000, hw::Disk::Access::kSequential, [] {});
  s.run();
  EXPECT_EQ(d.bytes_read(), 1000);
  EXPECT_EQ(d.bytes_written(), 2000);
  EXPECT_EQ(d.requests_served(), std::uint64_t{2});
  EXPECT_GT(d.busy_time(), 0);
}

}  // namespace
}  // namespace rh::test
