// Guest OS lifecycle: boot, shutdown, suspend/resume handlers, integrity.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace rh::test {
namespace {

TEST(GuestOs, BootSequenceStartsServices) {
  HostFixture fx(0);
  auto& g = fx.add_vm("web", sim::kGiB);
  EXPECT_EQ(g.state(), guest::OsState::kRunning);
  ASSERT_NE(g.find_service("sshd"), nullptr);
  EXPECT_TRUE(g.find_service("sshd")->running());
  EXPECT_TRUE(g.service_reachable(*g.find_service("sshd")));
  EXPECT_NE(g.domain_id(), kNoDomain);
}

TEST(GuestOs, SingleBootTakesAFewSeconds) {
  HostFixture fx(0);
  auto g = std::make_unique<guest::GuestOs>(*fx.host, "solo", sim::kGiB);
  g->add_service(std::make_unique<guest::SshService>());
  const sim::SimTime t0 = fx.sim.now();
  bool up = false;
  g->create_and_boot([&] { up = true; });
  run_until_flag(fx.sim, up);
  // boot(1) ~ 6-8 s in the paper's terms (incl. sshd).
  EXPECT_NEAR(sim::to_seconds(fx.sim.now() - t0), 7.0, 1.5);
}

TEST(GuestOs, ShutdownHaltsAndDestroysDomain) {
  HostFixture fx(1);
  auto& g = *fx.guests[0];
  const DomainId id = g.domain_id();
  bool halted = false;
  g.shutdown([&] { halted = true; });
  run_until_flag(fx.sim, halted);
  EXPECT_EQ(g.state(), guest::OsState::kHalted);
  EXPECT_EQ(g.domain_id(), kNoDomain);
  EXPECT_EQ(fx.host->vmm().find_domain(id), nullptr);
}

TEST(GuestOs, ServicesAnswerDuringShutdownGraceOnly) {
  HostFixture fx(1);
  auto& g = *fx.guests[0];
  auto* ssh = g.find_service("sshd");
  bool halted = false;
  g.shutdown([&] { halted = true; });
  // During the 3 s grace phase the service still answers.
  fx.sim.run_for(sim::kSecond);
  EXPECT_TRUE(g.service_reachable(*ssh));
  fx.sim.run_for(3 * sim::kSecond);
  EXPECT_FALSE(g.service_reachable(*ssh));
  run_until_flag(fx.sim, halted);
}

TEST(GuestOs, RebootResetsCacheButKeepsFiles) {
  HostFixture fx(1);
  auto& g = *fx.guests[0];
  const auto file = g.vfs().create_file("data", 10 * sim::kMiB);
  bool read_done = false;
  g.vfs().read(file, [&](const guest::Vfs::ReadResult&) { read_done = true; });
  run_until_flag(fx.sim, read_done);
  EXPECT_GT(g.cache().cached_blocks(), 0);

  bool halted = false;
  g.shutdown([&] { halted = true; });
  run_until_flag(fx.sim, halted);
  bool up = false;
  g.create_and_boot([&] { up = true; });
  run_until_flag(fx.sim, up);

  EXPECT_EQ(g.cache().cached_blocks(), 0);   // cache is volatile
  EXPECT_EQ(g.vfs().file_count(), std::size_t{1});  // files are on disk
  // Services restarted: generation bumped.
  EXPECT_EQ(g.find_service("sshd")->generation(), std::uint64_t{2});
}

TEST(GuestOs, SuspendHandlerMovesThroughStates) {
  HostFixture fx(1);
  auto& g = *fx.guests[0];
  bool suspended = false;
  fx.host->vmm().suspend_domain_on_memory(g.domain_id(), [&] { suspended = true; });
  fx.sim.run_for(5 * sim::kMillisecond);
  EXPECT_EQ(g.state(), guest::OsState::kSuspending);
  run_until_flag(fx.sim, suspended);
  EXPECT_EQ(g.state(), guest::OsState::kSuspended);
  // Not reachable while suspended.
  EXPECT_FALSE(g.service_reachable(*g.find_service("sshd")));
}

TEST(GuestOs, MemoryAccessIsSafeWhileSuspended) {
  HostFixture fx(1);
  auto& g = *fx.guests[0];
  bool suspended = false;
  fx.host->vmm().suspend_all_on_memory([&] { suspended = true; });
  run_until_flag(fx.sim, suspended);
  // Late I/O completions write through GuestOs::mem_write: dropped, no throw.
  g.mem_write(guest::GuestOs::kCacheRegionStart, 0x1);
  EXPECT_EQ(g.mem_read(guest::GuestOs::kCacheRegionStart), hw::kScrubbed);
}

TEST(GuestOs, CorruptedSignatureCrashesOnResume) {
  HostFixture fx(1);
  auto& g = *fx.guests[0];
  auto& vmm = fx.host->vmm();
  bool suspended = false;
  vmm.suspend_domain_on_memory(g.domain_id(), [&] { suspended = true; });
  run_until_flag(fx.sim, suspended);
  // Corrupt the frozen image behind the guest's back (what a buggy reload
  // would do).
  const auto* region = fx.host->preserved().find("domain/vm0");
  ASSERT_NE(region, nullptr);
  fx.host->machine().memory().scrub(region->frozen_frames.front());

  bool resumed = false;
  vmm.resume_domain_on_memory("vm0", &g, [&](DomainId) { resumed = true; });
  run_until_flag(fx.sim, resumed);
  EXPECT_FALSE(g.integrity_ok());
  EXPECT_EQ(g.state(), guest::OsState::kCrashed);
  EXPECT_FALSE(g.service_reachable(*g.find_service("sshd")));
}

TEST(GuestOs, CannotBootWhileHostDown) {
  HostFixture fx(0);
  auto g = std::make_unique<guest::GuestOs>(*fx.host, "late", sim::kGiB);
  bool down = false;
  fx.host->shutdown_dom0([&] { down = true; });
  run_until_flag(fx.sim, down);
  EXPECT_THROW(g->create_and_boot([] {}), InvariantViolation);
}

TEST(GuestOs, StateStringsAreStable) {
  EXPECT_STREQ(guest::to_string(guest::OsState::kRunning), "running");
  EXPECT_STREQ(guest::to_string(guest::OsState::kCrashed), "crashed");
}

}  // namespace
}  // namespace rh::test
