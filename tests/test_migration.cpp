// Pre-copy live migration model (Section 6's comparison point).
#include <gtest/gtest.h>

#include "cluster/migration.hpp"
#include "simcore/check.hpp"
#include "simcore/simulation.hpp"

namespace rh::test {
namespace {

TEST(Migration, ReproducesClarkDataPoint) {
  // One 800 MB VM migrates in ~72 s (Clark et al., as cited by the paper).
  const auto est = cluster::estimate_migration(800 * sim::kMiB, {});
  EXPECT_NEAR(sim::to_seconds(est.total), 72.0, 12.0);
  // Stop-and-copy downtime is tiny compared to any reboot technique.
  EXPECT_LT(est.stop_and_copy, sim::kSecond);
  EXPECT_GE(est.rounds, 1);
}

TEST(Migration, EvacuationOfElevenVmsTakesSeventeenMinutes) {
  const auto evac = cluster::estimate_host_evacuation(11, sim::kGiB, {});
  EXPECT_NEAR(sim::to_seconds(evac) / 60.0, 17.0, 3.0);
}

TEST(Migration, ConvergesFasterWithLowerDirtyRate) {
  cluster::MigrationConfig quiet;
  quiet.dirty_bps = 0.1e6;
  cluster::MigrationConfig busy;
  busy.dirty_bps = 8.0e6;
  const auto q = cluster::estimate_migration(sim::kGiB, quiet);
  const auto b = cluster::estimate_migration(sim::kGiB, busy);
  EXPECT_LT(q.total, b.total);
  EXPECT_LE(q.rounds, b.rounds);
  EXPECT_LT(q.bytes_transferred, b.bytes_transferred);
}

TEST(Migration, TransferOverheadBounded) {
  const auto est = cluster::estimate_migration(sim::kGiB, {});
  const double overhead = est.overhead_factor(sim::kGiB);
  EXPECT_GE(overhead, 1.0);   // at least the whole image
  EXPECT_LT(overhead, 1.5);   // pre-copy converges quickly at this ratio
}

TEST(Migration, DivergentDirtyRateRejected) {
  cluster::MigrationConfig c;
  c.dirty_bps = c.effective_bps * 2;
  EXPECT_THROW((void)cluster::estimate_migration(sim::kGiB, c), InvariantViolation);
  EXPECT_THROW((void)cluster::estimate_migration(0, {}), InvariantViolation);
}

TEST(Migration, SessionMatchesEstimate) {
  sim::Simulation s;
  cluster::MigrationSession session(s, sim::kGiB, {});
  const auto expected = cluster::estimate_migration(sim::kGiB, {});
  bool done = false;
  cluster::MigrationEstimate realised;
  session.run([&](const cluster::MigrationEstimate& e) {
    realised = e;
    done = true;
  });
  EXPECT_TRUE(session.running());
  s.run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(session.running());
  EXPECT_NEAR(sim::to_seconds(realised.total), sim::to_seconds(expected.total),
              1.0);
  EXPECT_EQ(realised.rounds, expected.rounds);
}

TEST(Migration, VmPausesOnlyDuringStopAndCopy) {
  sim::Simulation s;
  cluster::MigrationSession session(s, sim::kGiB, {});
  const auto expected = cluster::estimate_migration(sim::kGiB, {});
  bool done = false;
  session.run([&](const cluster::MigrationEstimate&) { done = true; });
  // Run until just before the stop-and-copy phase.
  s.run_until(expected.total - expected.stop_and_copy - 1000);
  EXPECT_FALSE(session.vm_paused());
  // Inside stop-and-copy.
  s.run_until(expected.total - expected.stop_and_copy / 2);
  EXPECT_TRUE(session.vm_paused());
  s.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(session.vm_paused());
}

TEST(Migration, RunIsOneShot) {
  sim::Simulation s;
  cluster::MigrationSession session(s, sim::kGiB, {});
  session.run([](const cluster::MigrationEstimate&) {});
  EXPECT_THROW(session.run([](const cluster::MigrationEstimate&) {}),
               InvariantViolation);
}

}  // namespace
}  // namespace rh::test
