// Conservative parallel DES engine (DESIGN.md §11): safe-window
// computation, mailbox merge order, zero-lookahead rejection, the
// cross-partition scheduling guard, and the bitwise 1-vs-N-worker digest
// contract on the fig9 cluster topology.
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/vm_migrator.hpp"
#include "simcore/check.hpp"
#include "simcore/parallel.hpp"

namespace {

using namespace rh;

TEST(PdesEngine, LookaheadIsMinRegisteredLink) {
  sim::ParallelSimulation eng({.partitions = 3, .workers = 1});
  eng.register_link(500);
  eng.register_link(300);
  eng.register_link(450);
  EXPECT_EQ(eng.lookahead(), 300);
}

TEST(PdesEngine, ExplicitLookaheadOverridesLinks) {
  sim::ParallelSimulation eng(
      {.partitions = 2, .workers = 1, .lookahead = 250});
  eng.register_link(100);  // ignored: Config::lookahead is in force
  EXPECT_EQ(eng.lookahead(), 250);
}

TEST(PdesEngine, ZeroLookaheadRejected) {
  sim::ParallelSimulation eng({.partitions = 2, .workers = 1});
  EXPECT_THROW(eng.register_link(0), InvariantViolation);
  EXPECT_THROW(eng.register_link(-5), InvariantViolation);
  // No links registered at all: the engine cannot open any safe window.
  EXPECT_THROW(eng.run_until(10), InvariantViolation);
}

TEST(PdesEngine, CrossPartitionPostBelowLookaheadThrows) {
  sim::ParallelSimulation eng(
      {.partitions = 2, .workers = 1, .lookahead = 100});
  eng.run_on(0, [&eng] { eng.post(1, 99, [] {}); });
  EXPECT_THROW(eng.run_until(1000), InvariantViolation);
}

TEST(PdesEngine, SamePartitionPostMayUndercutLookahead) {
  sim::ParallelSimulation eng(
      {.partitions = 2, .workers = 1, .lookahead = 100});
  bool fired = false;
  eng.run_on(0, [&eng, &fired] { eng.post(0, 1, [&fired] { fired = true; }); });
  eng.run_until(1000);
  EXPECT_TRUE(fired);
}

TEST(PdesEngine, PostOutsidePartitionContextThrows) {
  sim::ParallelSimulation eng(
      {.partitions = 2, .workers = 1, .lookahead = 100});
  EXPECT_THROW(eng.post(1, 200, [] {}), InvariantViolation);
}

TEST(PdesEngine, MessageArrivesAtSendTimePlusDelay) {
  sim::ParallelSimulation eng(
      {.partitions = 2, .workers = 1, .lookahead = 300});
  sim::SimTime arrived_at = -1;
  eng.run_on(0, [&] { eng.post(1, 300, [&] { arrived_at = eng.partition(1).now(); }); });
  eng.run_until(1000);
  EXPECT_EQ(arrived_at, 300);
  EXPECT_EQ(eng.messages_routed(), 1u);
  EXPECT_EQ(eng.partition(0).now(), 1000);
  EXPECT_EQ(eng.partition(1).now(), 1000);
}

TEST(PdesEngine, RunUntilExecutesEventsExactlyAtDeadline) {
  sim::ParallelSimulation eng(
      {.partitions = 2, .workers = 1, .lookahead = 100});
  bool fired = false;
  eng.run_on(0, [&] { eng.partition(0).after(250, [&fired] { fired = true; }); });
  eng.run_until(250);
  EXPECT_TRUE(fired);
  EXPECT_EQ(eng.partition(0).now(), 250);
  EXPECT_EQ(eng.partition(1).now(), 250);
}

// Same-time cross-partition deliveries must merge in (time, dst, src,
// seq) order -- per-sender program order preserved, senders ordered by
// partition id -- for every worker count.
TEST(PdesEngine, MailboxMergeOrderIsTimeDstSrcSeq) {
  std::vector<std::vector<std::pair<int, int>>> logs;
  for (std::size_t workers : {1u, 2u, 3u}) {
    sim::ParallelSimulation eng(
        {.partitions = 3, .workers = workers, .lookahead = 100});
    std::vector<std::pair<int, int>> log;
    // Seed partition 2 first: arrival order must come from the sort key,
    // not from seeding or execution order.
    eng.run_on(2, [&] {
      eng.post(0, 100, [&log] { log.emplace_back(2, 0); });
      eng.post(0, 100, [&log] { log.emplace_back(2, 1); });
    });
    eng.run_on(1, [&] {
      eng.post(0, 100, [&log] { log.emplace_back(1, 0); });
      eng.post(0, 100, [&log] { log.emplace_back(1, 1); });
    });
    eng.run_until(500);
    logs.push_back(std::move(log));
  }
  const std::vector<std::pair<int, int>> want = {{1, 0}, {1, 1}, {2, 0}, {2, 1}};
  for (const auto& log : logs) EXPECT_EQ(log, want);
}

TEST(PdesEngine, CrossPartitionAtBelowHorizonThrowsLoudly) {
  sim::ParallelSimulation eng(
      {.partitions = 2, .workers = 1, .lookahead = 100});
  // A partition-0 event reaching directly into partition 1's calendar
  // below the published safe horizon: must fail loudly, never reorder.
  eng.run_on(0, [&eng] { eng.partition(1).at(5, [] {}); });
  EXPECT_THROW(eng.run_until(1000), InvariantViolation);
}

TEST(PdesEngine, QuiescentSchedulingIsUnrestricted) {
  sim::ParallelSimulation eng(
      {.partitions = 2, .workers = 1, .lookahead = 100});
  // Setup-time scheduling from the main thread onto any partition is
  // legal: the horizon is parked at SimTime minimum while quiescent.
  bool fired = false;
  eng.partition(1).at(5, [&fired] { fired = true; });
  eng.run_until(10);
  EXPECT_TRUE(fired);
}

TEST(PdesEngine, RunWhileStopsAtPredicateAndDrain) {
  sim::ParallelSimulation eng(
      {.partitions = 2, .workers = 2, .lookahead = 100});
  int ticks = 0;
  eng.run_on(0, [&] {
    // Self-rescheduling ticker: only the predicate can stop it.
    struct Tick {
      sim::ParallelSimulation& eng;
      int& ticks;
      void operator()() {
        ++ticks;
        eng.partition(0).after(1000, Tick{eng, ticks});
      }
    };
    Tick{eng, ticks}();
  });
  eng.run_while([&ticks] { return ticks < 5; });
  EXPECT_GE(ticks, 5);
  // Drained-empty stop: no events at all ends the run instead of hanging.
  sim::ParallelSimulation idle(
      {.partitions = 2, .workers = 1, .lookahead = 100});
  idle.run_while([] { return true; });
  EXPECT_EQ(idle.windows_executed(), 0u);
}

// ------------------------------------------------------ run_window units

TEST(SimulationWindow, RunWindowIsHalfOpenByDefault) {
  sim::Simulation s;
  bool inside = false, boundary = false;
  s.at(5, [&inside] { inside = true; });
  s.at(10, [&boundary] { boundary = true; });
  s.run_window(10);
  EXPECT_TRUE(inside);
  EXPECT_FALSE(boundary);
  EXPECT_EQ(s.now(), 10);
  s.run_window(10, /*inclusive=*/true);
  EXPECT_TRUE(boundary);
}

TEST(SimulationWindow, AdvanceToRefusesToSkipEvents) {
  sim::Simulation s;
  s.at(7, [] {});
  EXPECT_THROW(s.advance_to(7), InvariantViolation);
  s.run_window(8);
  s.advance_to(20);
  EXPECT_EQ(s.now(), 20);
}

// --------------------------------------------- fig9-topology digest grid

struct ClusterDigest {
  std::uint64_t h = 0;
  void mix(std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
};

enum class Variant { kPlain, kFaults, kObserve };

std::uint64_t cluster_digest(std::size_t workers, Variant variant) {
  sim::ParallelSimulation engine({.partitions = 4, .workers = workers});
  cluster::Cluster::Config cfg;
  cfg.hosts = 3;
  cfg.vms_per_host = 2;
  cfg.files_per_vm = 8;
  cfg.file_size = 64 * sim::kKiB;
  cfg.engine = &engine;
  if (variant == Variant::kFaults) {
    cfg.faults = fault::FaultConfig::uniform(0.05);
  }
  cfg.observe = variant == Variant::kObserve;
  cluster::Cluster cl(engine.partition(0), cfg);

  bool ready = false;
  cl.start([&ready] { ready = true; });
  engine.run_while([&ready] { return !ready; });

  cluster::ClusterClientFleet fleet(engine.partition(0), cl.balancer(),
                                    {.connections = 8});
  engine.run_on(0, [&fleet] { fleet.start(); });
  engine.run_until(engine.partition(0).now() + 10 * sim::kSecond);

  bool done = false;
  if (variant == Variant::kFaults) {
    engine.run_on(0, [&cl, &done] {
      cl.rolling_rejuvenation_supervised(
          {}, [&done](const cluster::Cluster::RollingReport&) { done = true; });
    });
  } else {
    engine.run_on(0, [&cl, &done] {
      cl.rolling_rejuvenation(rejuv::RebootKind::kWarm,
                              [&done] { done = true; });
    });
  }
  engine.run_while([&done] { return !done; });
  engine.run_until(engine.partition(0).now() + 20 * sim::kSecond);

  ClusterDigest d;
  for (std::int32_t p = 0; p < engine.partition_count(); ++p) {
    d.mix(static_cast<std::uint64_t>(engine.partition(p).now()));
    d.mix(engine.partition(p).executed_events());
  }
  d.mix(static_cast<std::uint64_t>(fleet.completions().total()));
  d.mix(cl.balancer().dispatched());
  d.mix(cl.balancer().rejected());
  for (const auto dur : cl.rejuvenation_durations()) {
    d.mix(static_cast<std::uint64_t>(dur));
  }
  if (variant == Variant::kFaults) {
    const auto& report = cl.last_rolling_report();
    d.mix(report.passes.size());
    d.mix(report.evicted_hosts.size());
    d.mix(report.recovered_hosts.size());
    d.mix(report.failed_hosts.size());
    d.mix(report.pressured_hosts.size());
  }
  for (int h = 0; h < cfg.hosts; ++h) {
    d.mix(cl.host(h).obs().spans().records().size());
    d.mix(cl.host(h).obs().events().size());
    d.mix(cl.host(h).vmm_generation());
  }
  d.mix(engine.messages_routed());
  return d.h;
}

class PdesClusterDigestGrid : public ::testing::TestWithParam<Variant> {};

TEST_P(PdesClusterDigestGrid, OneVsNWorkersBitwiseIdentical) {
  const std::uint64_t one = cluster_digest(1, GetParam());
  EXPECT_EQ(cluster_digest(2, GetParam()), one);
  EXPECT_EQ(cluster_digest(4, GetParam()), one);
}

INSTANTIATE_TEST_SUITE_P(Fig9Topology, PdesClusterDigestGrid,
                         ::testing::Values(Variant::kPlain, Variant::kFaults,
                                           Variant::kObserve),
                         [](const auto& info) {
                           switch (info.param) {
                             case Variant::kPlain: return "plain";
                             case Variant::kFaults: return "faults";
                             case Variant::kObserve: return "observe";
                           }
                           return "unknown";
                         });

TEST(PdesCluster, CrossPartitionMigrationRejected) {
  sim::ParallelSimulation engine(
      {.partitions = 3, .workers = 1, .lookahead = 200});
  cluster::Cluster::Config cfg;
  cfg.hosts = 2;
  cfg.vms_per_host = 1;
  cfg.files_per_vm = 2;
  cfg.engine = &engine;
  cluster::Cluster cl(engine.partition(0), cfg);
  bool ready = false;
  cl.start([&ready] { ready = true; });
  engine.run_while([&ready] { return !ready; });

  cluster::VmMigrator migrator;
  EXPECT_THROW(migrator.migrate(cl.guest(0, 0), cl.host(1),
                                [](const cluster::VmMigrator::Result&) {}),
               InvariantViolation);
}

}  // namespace
